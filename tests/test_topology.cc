// Topology internals: backbone wiring, ISP reachability, blocking-resolver
// plumbing, external interceptor scope, and pipeline replication flag.
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "dnswire/debug_queries.h"
#include "isp/backbone.h"
#include "isp/isp_network.h"

namespace dnslocate {
namespace {

using resolvers::PublicResolverKind;

TEST(Backbone, AllServiceAddressesAreLocalOnTheirSites) {
  simnet::Simulator sim(1);
  auto backbone = isp::build_backbone(sim, {});
  for (PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    simnet::Device* device = backbone.resolver_devices.at(kind);
    for (const auto& addr : spec.service_v4) EXPECT_TRUE(device->has_local_ip(addr));
    for (const auto& addr : spec.service_v6) EXPECT_TRUE(device->has_local_ip(addr));
    EXPECT_TRUE(device->is_udp_bound(netbase::kDnsPort));
    EXPECT_TRUE(device->is_udp_bound(netbase::kDotPort));
  }
  // The core routes every service address.
  for (PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    for (const auto& addr : spec.service_v4)
      EXPECT_TRUE(backbone.core->route_for(addr).has_value()) << addr.to_string();
  }
}

TEST(Backbone, ExternalInterceptorOnlyWhenRequested) {
  simnet::Simulator sim(1);
  auto plain = isp::build_backbone(sim, {});
  EXPECT_EQ(plain.external_interceptor, nullptr);
  EXPECT_EQ(plain.external_alt_resolver, nullptr);

  isp::BackboneConfig config;
  config.external_interceptor = true;
  auto intercepting = isp::build_backbone(sim, config);
  EXPECT_NE(intercepting.external_interceptor, nullptr);
  ASSERT_NE(intercepting.external_alt_resolver, nullptr);
  EXPECT_TRUE(
      intercepting.external_alt_resolver->has_local_ip(intercepting.external_alt_address));
}

TEST(Backbone, SiteIndexChangesAnswers) {
  simnet::Simulator sim(1);
  isp::BackboneConfig iad_config;
  iad_config.site_index = 0;
  auto iad = isp::build_backbone(sim, iad_config);
  isp::BackboneConfig sfo_config;
  sfo_config.site_index = 1;
  auto sfo = isp::build_backbone(sim, sfo_config);
  EXPECT_EQ(iad.behaviors.at(PublicResolverKind::cloudflare)->expected_location_answer(),
            "IAD");
  EXPECT_EQ(sfo.behaviors.at(PublicResolverKind::cloudflare)->expected_location_answer(),
            "SFO");
}

TEST(IspTopology, BlockingResolverIsRoutableEverywhere) {
  simnet::Simulator sim(1);
  auto backbone = isp::build_backbone(sim, {});
  isp::IspConfig config;
  config.policy.middlebox_enabled = true;
  config.policy.target_actions[PublicResolverKind::quad9] = isp::TargetAction::divert_block;
  auto handles = isp::build_isp(sim, config, *backbone.core);
  ASSERT_TRUE(handles.blocking_address_v4.has_value());
  // Reachable from the access router and from the core.
  EXPECT_TRUE(handles.access->route_for(*handles.blocking_address_v4).has_value());
  EXPECT_TRUE(backbone.core->route_for(*handles.blocking_address_v4).has_value());
  EXPECT_TRUE(handles.blocking_resolver->is_udp_bound(netbase::kDnsPort));
}

TEST(IspTopology, RoutersHaveInterfaceAddressesForIcmp) {
  simnet::Simulator sim(1);
  auto backbone = isp::build_backbone(sim, {});
  isp::IspConfig config;
  auto handles = isp::build_isp(sim, config, *backbone.core);
  EXPECT_TRUE(handles.access->local_ip(netbase::IpFamily::v4).has_value());
  EXPECT_TRUE(handles.border->local_ip(netbase::IpFamily::v4).has_value());
  EXPECT_TRUE(backbone.core->local_ip(netbase::IpFamily::v4).has_value());
  // The access and border addresses sit inside the ISP's own space.
  EXPECT_TRUE(config.customer_prefix_v4.contains(
      *handles.access->local_ip(netbase::IpFamily::v4)));
}

TEST(IspTopology, CountersSeeTheFleetTraffic) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  core::LocalizationPipeline pipeline(scenario.pipeline_config());
  pipeline.run(scenario.transport());
  // Everything the host sent traversed the CPE and the access router.
  const auto& cpe_counters = scenario.cpe_handles().device->counters();
  const auto& access_counters = scenario.isp_handles().access->counters();
  EXPECT_GT(cpe_counters.forwarded, 10u);
  EXPECT_GT(access_counters.forwarded, 10u);
  EXPECT_EQ(access_counters.delivered, 0u);  // nothing addressed to it
}

TEST(Pipeline, ReplicationFlagRecordsDuplicates) {
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.replicate = true;
  atlas::Scenario scenario(config);
  core::PipelineConfig pipeline_config = scenario.pipeline_config();
  pipeline_config.detect_replication = true;
  core::LocalizationPipeline pipeline(pipeline_config);
  auto verdict = pipeline.run(scenario.transport());
  ASSERT_TRUE(verdict.replication.has_value());
  EXPECT_TRUE(verdict.replication->any_replicated());

  // Flag off (default): no report.
  core::LocalizationPipeline plain(scenario.pipeline_config());
  EXPECT_FALSE(plain.run(scenario.transport()).replication.has_value());
}

TEST(Pipeline, NonInterceptedSkipsReplicationProbe) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  core::PipelineConfig pipeline_config = scenario.pipeline_config();
  pipeline_config.detect_replication = true;
  core::LocalizationPipeline pipeline(pipeline_config);
  auto verdict = pipeline.run(scenario.transport());
  EXPECT_EQ(verdict.location, core::InterceptorLocation::not_intercepted);
  EXPECT_FALSE(verdict.replication.has_value());  // short-circuited at step 1
}

}  // namespace
}  // namespace dnslocate
