// RFC 5452 acceptance corners, exercised as one shared corpus across all
// four transports: SimTransport (adversary knobs on a scenario world),
// UdpTransport (one real socket per attempt), UdpEngine (shared-socket
// demux) and TcpTransport (RFC 7766 framed stream). The corners:
//
//   wrong_source             response from an endpoint other than the
//                            queried server — rejected, spoof-suspected;
//   case_mismatch            echoed question re-cased in path — accepted
//                            (RFC 5452 compares names case-insensitively)
//                            but counted as 0x20 evidence;
//   duplicate_inside_window  conflicting second answer inside the
//                            duplicate-collection window — surfaced as a
//                            conflict for the classifier;
//   duplicate_after_window   conflicting second answer after the window —
//                            never reaches the result; the shared-socket
//                            engine also *counts* the drop.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "atlas/scenario.h"
#include "core/pipeline.h"
#include "core/query_batch.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "simnet/adversary.h"
#include "sockets/tcp_transport.h"
#include "sockets/udp_engine.h"
#include "sockets/udp_transport.h"

namespace dnslocate::sockets {
namespace {

// ---------------------------------------------------------------------------
// The shared corner table.

enum class Corner {
  wrong_source,
  case_mismatch,
  duplicate_inside_window,
  duplicate_after_window,
};

struct CornerExpectation {
  const char* name;
  bool answered;
  bool spoof_suspected;  // arbitration.spoof_suspected >= 1
  bool case_mismatch;    // arbitration.case_mismatches >= 1
  bool conflict;         // arbitration.conflicts >= 1
};

const CornerExpectation& expectation(Corner corner) {
  static const CornerExpectation table[] = {
      {"wrong_source", false, true, false, false},
      {"case_mismatch", true, false, true, false},
      {"duplicate_inside_window", true, false, false, true},
      {"duplicate_after_window", true, false, false, false},
  };
  return table[static_cast<std::size_t>(corner)];
}

void expect_corner(Corner corner, const core::QueryResult& result, const char* transport_name) {
  const CornerExpectation& e = expectation(corner);
  std::string label = std::string(transport_name) + " / " + e.name;
  EXPECT_EQ(result.answered(), e.answered) << label;
  if (e.spoof_suspected)
    EXPECT_GE(result.arbitration.spoof_suspected, 1u) << label;
  else
    EXPECT_EQ(result.arbitration.spoof_suspected, 0u) << label;
  if (e.case_mismatch)
    EXPECT_GE(result.arbitration.case_mismatches, 1u) << label;
  else
    EXPECT_EQ(result.arbitration.case_mismatches, 0u) << label;
  if (e.conflict) {
    EXPECT_GE(result.arbitration.conflicts, 1u) << label;
    EXPECT_EQ(result.all_responses.size(), 2u) << label;
  } else {
    EXPECT_EQ(result.arbitration.conflicts, 0u) << label;
  }
}

// ---------------------------------------------------------------------------
// A raw UDP responder whose per-query behaviour is scripted, so each corner
// can send from the wrong socket, re-case the echo, or time a duplicate
// around the collection window — things no well-behaved DnsResponder does.

class CornerServer {
 public:
  using Script = std::function<void(CornerServer&, const dnswire::Message&,
                                    const sockaddr_storage&, socklen_t)>;

  explicit CornerServer(Script script) : script_(std::move(script)) {
    fd_ = bind_loopback(&port_);
    decoy_fd_ = bind_loopback(nullptr);
    thread_ = std::thread([this] { serve(); });
  }

  ~CornerServer() {
    running_.store(false);
    if (thread_.joinable()) thread_.join();
    if (fd_ >= 0) ::close(fd_);
    if (decoy_fd_ >= 0) ::close(decoy_fd_);
  }

  CornerServer(const CornerServer&) = delete;
  CornerServer& operator=(const CornerServer&) = delete;

  [[nodiscard]] netbase::Endpoint endpoint() const {
    return netbase::Endpoint{netbase::Ipv4Address(127, 0, 0, 1), port_};
  }

  /// Send `message` back to the querying client — from the queried socket,
  /// or (wrong_source) from a second socket bound to a different port.
  void send(const dnswire::Message& message, const sockaddr_storage& to, socklen_t to_len,
            bool wrong_source = false) {
    auto wire = dnswire::encode_message(message);
    ::sendto(wrong_source ? decoy_fd_ : fd_, wire.data(), wire.size(), 0,
             reinterpret_cast<const sockaddr*>(&to), to_len);
  }

 private:
  static int bind_loopback(std::uint16_t* port_out) {
    int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) throw std::runtime_error("CornerServer: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd);
      throw std::runtime_error("CornerServer: bind() failed");
    }
    if (port_out != nullptr) {
      socklen_t len = sizeof addr;
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
      *port_out = ntohs(addr.sin_port);
    }
    return fd;
  }

  void serve() {
    while (running_.load()) {
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, 20) <= 0) continue;
      std::uint8_t buffer[4096];
      sockaddr_storage from{};
      socklen_t from_len = sizeof from;
      ssize_t n = ::recvfrom(fd_, buffer, sizeof buffer, 0,
                             reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n <= 0) continue;
      auto query = dnswire::decode_message({buffer, static_cast<std::size_t>(n)});
      if (!query) continue;
      script_(*this, *query, from, from_len);
    }
  }

  Script script_;
  int fd_ = -1;
  int decoy_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{true};
  std::thread thread_;
};

dnswire::DnsName lowercased(const dnswire::DnsName& name) {
  std::vector<std::string> labels = name.labels();
  for (auto& label : labels)
    for (auto& c : label) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return *dnswire::DnsName::from_labels(std::move(labels));
}

CornerServer::Script script_for(Corner corner) {
  switch (corner) {
    case Corner::wrong_source:
      return [](CornerServer& s, const dnswire::Message& q, const sockaddr_storage& to,
                socklen_t len) {
        s.send(dnswire::make_response(q), to, len, /*wrong_source=*/true);
      };
    case Corner::case_mismatch:
      return [](CornerServer& s, const dnswire::Message& q, const sockaddr_storage& to,
                socklen_t len) {
        auto response = dnswire::make_response(q);
        response.questions.front().name = lowercased(response.questions.front().name);
        s.send(response, to, len);
      };
    case Corner::duplicate_inside_window:
      return [](CornerServer& s, const dnswire::Message& q, const sockaddr_storage& to,
                socklen_t len) {
        s.send(dnswire::make_response(q), to, len);
        s.send(dnswire::make_response(q, dnswire::Rcode::NXDOMAIN), to, len);
      };
    case Corner::duplicate_after_window:
      return [](CornerServer& s, const dnswire::Message& q, const sockaddr_storage& to,
                socklen_t len) {
        s.send(dnswire::make_response(q), to, len);
        // Outlive the client's 50 ms duplicate window by a wide margin
        // before the conflicting duplicate goes out.
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        s.send(dnswire::make_response(q, dnswire::Rcode::NXDOMAIN), to, len);
      };
  }
  return {};
}

/// Mixed-case question so a re-cased echo differs byte-wise from the sent
/// name (the byte-exact comparison behind the case_mismatches tally).
dnswire::Message corner_query(std::uint16_t id) {
  return dnswire::make_query(id, *dnswire::DnsName::parse("RfC.FiveFourFiveTwo.Test"),
                             dnswire::RecordType::A);
}

core::QueryResult run_corner(core::QueryTransport& transport, Corner corner,
                             std::chrono::milliseconds timeout) {
  CornerServer server(script_for(corner));
  core::QueryOptions options;
  options.timeout = timeout;
  return transport.query(server.endpoint(), corner_query(0x2b1d), options);
}

// ---------------------------------------------------------------------------
// UdpTransport: one socket per attempt.

TEST(Rfc5452CornersUdpTransport, SharedCorpus) {
  for (Corner corner : {Corner::wrong_source, Corner::case_mismatch,
                        Corner::duplicate_inside_window}) {
    UdpTransport transport;
    auto result = run_corner(transport, corner, std::chrono::milliseconds(400));
    expect_corner(corner, result, "UdpTransport");
  }
}

TEST(Rfc5452CornersUdpTransport, DuplicateAfterWindowNeverReachesTheResult) {
  UdpTransport::Config config;
  config.duplicate_window = std::chrono::milliseconds(50);
  UdpTransport transport(config);
  auto result = run_corner(transport, Corner::duplicate_after_window,
                           std::chrono::milliseconds(1000));
  expect_corner(Corner::duplicate_after_window, result, "UdpTransport");
  // The per-attempt socket is closed when the window ends: the straggler
  // has nowhere to land and the accepted answer stands alone.
  EXPECT_EQ(result.all_responses.size(), 1u);
}

// ---------------------------------------------------------------------------
// UdpEngine: every query of a batch multiplexed over one shared socket.

TEST(Rfc5452CornersUdpEngine, SharedCorpus) {
  for (Corner corner : {Corner::wrong_source, Corner::case_mismatch,
                        Corner::duplicate_inside_window}) {
    UdpEngine engine;
    auto result = run_corner(engine, corner, std::chrono::milliseconds(400));
    expect_corner(corner, result, "UdpEngine");
  }
}

TEST(Rfc5452CornersUdpEngine, DuplicateAfterWindowIsDroppedAndCounted) {
  // Query 0's server answers, then sends a conflicting duplicate well after
  // the 50 ms window; query 1's server stalls so the shared socket is still
  // open when the straggler lands. Unlike the per-attempt transport (whose
  // closed socket simply unreceives it), the engine must drop the duplicate
  // AND count it: its transaction is retired, not unknown.
  CornerServer corner(script_for(Corner::duplicate_after_window));
  CornerServer slow([](CornerServer& s, const dnswire::Message& q, const sockaddr_storage& to,
                       socklen_t len) {
    std::this_thread::sleep_for(std::chrono::milliseconds(450));
    s.send(dnswire::make_response(q), to, len);
  });

  UdpEngine::Config config;
  config.duplicate_window = std::chrono::milliseconds(50);
  UdpEngine engine(config);

  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(2000);
  core::QueryBatch batch;
  batch.add(corner.endpoint(), corner_query(0x7001), options);
  batch.add(slow.endpoint(), corner_query(0x7002), options);
  engine.run(batch);

  expect_corner(Corner::duplicate_after_window, batch.result(0), "UdpEngine");
  EXPECT_EQ(batch.result(0).all_responses.size(), 1u);
  EXPECT_TRUE(batch.result(1).answered());
  EXPECT_GE(engine.telemetry().late_duplicates, 1u)
      << "late duplicate to a retired transaction must be counted, not silently ignored";
}

// ---------------------------------------------------------------------------
// TcpTransport: the corpus over a loopback RFC 7766 stream. A connected
// stream pins the source endpoint, so the off-path corner maps onto what an
// in-path middlebox can actually do to a stream: answer with the wrong
// transaction ID. The kernel tallies that frame exactly like a UDP
// off-path guess (spoof_suspected) and keeps listening.

class TcpCornerServer {
 public:
  using Script = std::function<void(TcpCornerServer&, const dnswire::Message&)>;

  explicit TcpCornerServer(Script script) : script_(std::move(script)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("TcpCornerServer: socket() failed");
    int on = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof on);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(listen_fd_, 4) < 0) {
      ::close(listen_fd_);
      throw std::runtime_error("TcpCornerServer: bind/listen failed");
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serve(); });
  }

  ~TcpCornerServer() {
    running_.store(false);
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  TcpCornerServer(const TcpCornerServer&) = delete;
  TcpCornerServer& operator=(const TcpCornerServer&) = delete;

  [[nodiscard]] netbase::Endpoint endpoint() const {
    return netbase::Endpoint{netbase::Ipv4Address(127, 0, 0, 1), port_};
  }

  /// Send one RFC 7766 framed message on the live connection.
  void send(const dnswire::Message& message) {
    auto wire = dnswire::encode_message(message);
    std::vector<std::uint8_t> framed;
    framed.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
    framed.push_back(static_cast<std::uint8_t>(wire.size() & 0xff));
    framed.insert(framed.end(), wire.begin(), wire.end());
    ::send(client_fd_, framed.data(), framed.size(), MSG_NOSIGNAL);
  }

 private:
  bool read_exact(int fd, std::uint8_t* data, std::size_t size) {
    std::size_t got = 0;
    while (got < size && running_.load()) {
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, 20) <= 0) continue;
      ssize_t n = ::recv(fd, data + got, size - got, 0);
      if (n <= 0) return false;
      got += static_cast<std::size_t>(n);
    }
    return got == size;
  }

  void serve() {
    while (running_.load()) {
      pollfd p{listen_fd_, POLLIN, 0};
      if (::poll(&p, 1, 20) <= 0) continue;
      client_fd_ = ::accept(listen_fd_, nullptr, nullptr);
      if (client_fd_ < 0) continue;
      std::uint8_t prefix[2];
      if (read_exact(client_fd_, prefix, 2)) {
        std::size_t length = static_cast<std::size_t>(prefix[0]) << 8 | prefix[1];
        std::vector<std::uint8_t> body(length);
        if (read_exact(client_fd_, body.data(), length)) {
          auto query = dnswire::decode_message({body.data(), body.size()});
          if (query) script_(*this, *query);
        }
      }
      ::close(client_fd_);
      client_fd_ = -1;
    }
  }

  Script script_;
  int listen_fd_ = -1;
  int client_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{true};
  std::thread thread_;
};

TcpCornerServer::Script tcp_script_for(Corner corner) {
  switch (corner) {
    case Corner::wrong_source:
      // The stream analogue of an off-path forgery: a frame whose
      // transaction ID is not the one we asked with.
      return [](TcpCornerServer& s, const dnswire::Message& q) {
        auto response = dnswire::make_response(q);
        response.id = static_cast<std::uint16_t>(response.id ^ 0x55aa);
        s.send(response);
      };
    case Corner::case_mismatch:
      return [](TcpCornerServer& s, const dnswire::Message& q) {
        auto response = dnswire::make_response(q);
        response.questions.front().name = lowercased(response.questions.front().name);
        s.send(response);
      };
    case Corner::duplicate_inside_window:
      // Two frames back to back on the same stream: a pipelining rewriter
      // contesting its own first answer.
      return [](TcpCornerServer& s, const dnswire::Message& q) {
        s.send(dnswire::make_response(q));
        s.send(dnswire::make_response(q, dnswire::Rcode::NXDOMAIN));
      };
    case Corner::duplicate_after_window:
      break;  // a closed connection has no after-window straggler path
  }
  return {};
}

TEST(Rfc5452CornersTcpTransport, SharedCorpus) {
  for (Corner corner : {Corner::wrong_source, Corner::case_mismatch,
                        Corner::duplicate_inside_window}) {
    TcpCornerServer server(tcp_script_for(corner));
    TcpTransport transport;
    core::QueryOptions options;
    options.timeout = std::chrono::milliseconds(400);
    auto result = transport.query(server.endpoint(), corner_query(0x2b1d), options);
    expect_corner(corner, result, "TcpTransport");
  }
}

TEST(Rfc5452CornersTcpTransport, ClosedConnectionEndsTheDuplicateWindowEarly) {
  // A server that closes after one answer costs the client nothing: the
  // duplicate-collection window ends at the FIN, not at the timer.
  TcpCornerServer server([](TcpCornerServer& s, const dnswire::Message& q) {
    s.send(dnswire::make_response(q));
  });
  TcpTransport::Config config;
  config.duplicate_window = std::chrono::milliseconds(5000);
  TcpTransport transport(config);
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(2000);
  auto started = std::chrono::steady_clock::now();
  auto result = transport.query(server.endpoint(), corner_query(0x2b1d), options);
  auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_TRUE(result.answered());
  EXPECT_EQ(result.all_responses.size(), 1u);
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));
}

// ---------------------------------------------------------------------------
// SimTransport: the same corners driven by the adversary knobs on a clean
// scenario world, asserted through the pipeline's telemetry delta.

core::ProbeVerdict run_sim(const atlas::ScenarioConfig& config) {
  atlas::Scenario scenario(config);
  core::LocalizationPipeline pipeline(scenario.pipeline_config());
  return pipeline.run(scenario.transport());
}

TEST(Rfc5452CornersSim, WrongSourceEndpointIsRejected) {
  atlas::ScenarioConfig config;
  simnet::SpooferConfig spoofer;
  spoofer.forge_source = true;
  config.adversary.transit_spoofer = spoofer;
  auto verdict = run_sim(config);
  // The forgery is sourced from the wrong egress: it dies before acceptance
  // and never contests the genuine answers.
  EXPECT_EQ(verdict.telemetry.conflicts, 0u);
  EXPECT_EQ(verdict.location, core::InterceptorLocation::not_intercepted);
}

TEST(Rfc5452CornersSim, CaseMismatchIsAcceptedAndCounted) {
  atlas::ScenarioConfig config;
  config.adversary.isp_dpi = simnet::dpi_foldix();
  // The stock location queries are all-lowercase, so folding them is a
  // byte-identity: the corner needs a mixed-case question, which is exactly
  // the fingerprint prober's 0x20 probe.
  config.run_fingerprint = true;
  auto verdict = run_sim(config);
  // The case-folded echo still passes RFC 5452 (names compare
  // case-insensitively) so the answer flows — but it is tallied as 0x20
  // evidence and surfaces in the fingerprint.
  EXPECT_GT(verdict.telemetry.answered, 0u);
  EXPECT_GE(verdict.telemetry.case_mismatches, 1u);
  EXPECT_EQ(verdict.telemetry.conflicts, 0u);
  EXPECT_EQ(verdict.location, core::InterceptorLocation::not_intercepted);
  ASSERT_TRUE(verdict.fingerprint.has_value());
  EXPECT_TRUE(verdict.fingerprint->case_folded);
}

TEST(Rfc5452CornersSim, DuplicateInsideWindowSurfacesConflict) {
  atlas::ScenarioConfig config;
  config.adversary.transit_spoofer = simnet::SpooferConfig{};  // on-path race
  auto verdict = run_sim(config);
  EXPECT_GE(verdict.telemetry.conflicts, 1u);
  EXPECT_EQ(verdict.location, core::InterceptorLocation::contested);
}

TEST(Rfc5452CornersSim, DuplicateAfterWindowIsDropped) {
  atlas::ScenarioConfig config;
  simnet::SpooferConfig spoofer;
  // SimTransport collects to the attempt's full timeout horizon (3 s):
  // inject well past it, after the client port is unbound.
  spoofer.injection_delay = std::chrono::seconds(5);
  config.adversary.transit_spoofer = spoofer;
  atlas::Scenario scenario(config);
  core::LocalizationPipeline pipeline(scenario.pipeline_config());
  auto verdict = pipeline.run(scenario.transport());
  ASSERT_NE(scenario.spoofer(), nullptr);
  EXPECT_GT(scenario.spoofer()->injections(), 0u);
  EXPECT_EQ(verdict.telemetry.conflicts, 0u);
  EXPECT_EQ(verdict.location, core::InterceptorLocation::not_intercepted);
}

}  // namespace
}  // namespace dnslocate::sockets
