// Zone store tests: lookups, CNAME chasing, NODATA vs NXDOMAIN, depth limit.
#include <gtest/gtest.h>

#include "resolvers/special_names.h"
#include "resolvers/zone.h"

namespace dnslocate::resolvers {
namespace {

dnswire::DnsName name(const char* text) { return *dnswire::DnsName::parse(text); }

TEST(ZoneStore, DirectLookup) {
  ZoneStore zones;
  zones.add(dnswire::make_a(name("example.com"), netbase::Ipv4Address(1, 2, 3, 4)));
  auto result = zones.lookup(name("example.com"), dnswire::RecordType::A);
  EXPECT_EQ(result.rcode, dnswire::Rcode::NOERROR);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(std::get<dnswire::ARecord>(result.answers[0].rdata).address,
            netbase::Ipv4Address(1, 2, 3, 4));
}

TEST(ZoneStore, LookupIsCaseInsensitive) {
  ZoneStore zones;
  zones.add(dnswire::make_a(name("Example.COM"), netbase::Ipv4Address(1, 2, 3, 4)));
  EXPECT_EQ(zones.lookup(name("eXaMpLe.CoM"), dnswire::RecordType::A).rcode,
            dnswire::Rcode::NOERROR);
  EXPECT_TRUE(zones.has_name(name("EXAMPLE.COM")));
}

TEST(ZoneStore, MissingNameIsNxdomain) {
  ZoneStore zones;
  zones.add(dnswire::make_a(name("example.com"), netbase::Ipv4Address(1, 2, 3, 4)));
  EXPECT_EQ(zones.lookup(name("other.com"), dnswire::RecordType::A).rcode,
            dnswire::Rcode::NXDOMAIN);
}

TEST(ZoneStore, WrongTypeIsNodata) {
  ZoneStore zones;
  zones.add(dnswire::make_a(name("example.com"), netbase::Ipv4Address(1, 2, 3, 4)));
  auto result = zones.lookup(name("example.com"), dnswire::RecordType::AAAA);
  EXPECT_EQ(result.rcode, dnswire::Rcode::NOERROR);  // name exists
  EXPECT_TRUE(result.answers.empty());
}

TEST(ZoneStore, FollowsCnameChain) {
  ZoneStore zones;
  zones.add(dnswire::make_cname(name("a.example.com"), name("b.example.com")));
  zones.add(dnswire::make_cname(name("b.example.com"), name("c.example.com")));
  zones.add(dnswire::make_a(name("c.example.com"), netbase::Ipv4Address(9, 9, 9, 9)));
  auto result = zones.lookup(name("a.example.com"), dnswire::RecordType::A);
  EXPECT_EQ(result.rcode, dnswire::Rcode::NOERROR);
  ASSERT_EQ(result.answers.size(), 3u);  // both CNAMEs + the A
  EXPECT_EQ(result.answers[0].type, dnswire::RecordType::CNAME);
  EXPECT_EQ(result.answers[2].type, dnswire::RecordType::A);
}

TEST(ZoneStore, CnameToMissingNameKeepsPartialChain) {
  ZoneStore zones;
  zones.add(dnswire::make_cname(name("a.example.com"), name("gone.example.com")));
  auto result = zones.lookup(name("a.example.com"), dnswire::RecordType::A);
  // The chain was followed; the terminal is missing. Real resolvers return
  // the partial chain with NOERROR or NXDOMAIN; we keep the chain.
  EXPECT_EQ(result.answers.size(), 1u);
}

TEST(ZoneStore, CnameLoopHitsDepthLimit) {
  ZoneStore zones;
  zones.add(dnswire::make_cname(name("x.example.com"), name("y.example.com")));
  zones.add(dnswire::make_cname(name("y.example.com"), name("x.example.com")));
  auto result = zones.lookup(name("x.example.com"), dnswire::RecordType::A);
  EXPECT_EQ(result.rcode, dnswire::Rcode::SERVFAIL);
}

TEST(ZoneStore, AnyQueryReturnsEverything) {
  ZoneStore zones;
  zones.add(dnswire::make_a(name("example.com"), netbase::Ipv4Address(1, 2, 3, 4)));
  zones.add(dnswire::make_txt(name("example.com"), "hi"));
  auto result = zones.lookup(name("example.com"), dnswire::RecordType::ANY);
  EXPECT_EQ(result.answers.size(), 2u);
}

TEST(ZoneStore, GlobalInternetHasTheProbeDomain) {
  auto zones = ZoneStore::global_internet();
  EXPECT_GT(zones->record_count(), 5u);
  auto result = zones->lookup(bogon_probe_domain(), dnswire::RecordType::A);
  EXPECT_EQ(result.rcode, dnswire::Rcode::NOERROR);
  EXPECT_FALSE(result.answers.empty());
  // Both families resolvable for the probe domain.
  EXPECT_FALSE(zones->lookup(bogon_probe_domain(), dnswire::RecordType::AAAA).answers.empty());
}

}  // namespace
}  // namespace dnslocate::resolvers
