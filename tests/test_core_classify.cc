// Classifier tests: per-resolver standard-response validation and the
// LocationVerdict mapping (§3.1), parameterized over answer corpora.
#include <gtest/gtest.h>

#include "core/classify.h"
#include "dnswire/debug_queries.h"

namespace dnslocate::core {
namespace {

using resolvers::PublicResolverKind;

QueryResult answered_txt(const std::string& text, dnswire::Rcode rcode = dnswire::Rcode::NOERROR) {
  QueryResult result;
  result.status = QueryResult::Status::answered;
  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  if (rcode == dnswire::Rcode::NOERROR) {
    result.response = dnswire::make_txt_response(query, text);
  } else {
    result.response = dnswire::make_response(query, rcode);
  }
  result.all_responses.push_back(*result.response);
  return result;
}

QueryResult timeout() { return QueryResult{}; }

// --- per-resolver format validators ---

struct FormatCase {
  const char* text;
  bool standard;
};

struct CloudflareFormat : ::testing::TestWithParam<FormatCase> {};
TEST_P(CloudflareFormat, Validates) {
  EXPECT_EQ(is_cloudflare_standard(GetParam().text), GetParam().standard) << GetParam().text;
}
INSTANTIATE_TEST_SUITE_P(Corpus, CloudflareFormat,
                         ::testing::Values(FormatCase{"IAD", true}, FormatCase{"SFO", true},
                                           FormatCase{"FRA", true}, FormatCase{"NRT", true},
                                           FormatCase{"iad", false},       // must be uppercase
                                           FormatCase{"ZZZ", false},       // unknown site
                                           FormatCase{"IA", false}, FormatCase{"IADX", false},
                                           FormatCase{"", false},
                                           FormatCase{"routing.v2.pw", false},
                                           FormatCase{"unbound 1.9.0", false}));

struct GoogleFormat : ::testing::TestWithParam<FormatCase> {};
TEST_P(GoogleFormat, Validates) {
  EXPECT_EQ(is_google_standard(GetParam().text), GetParam().standard) << GetParam().text;
}
INSTANTIATE_TEST_SUITE_P(Corpus, GoogleFormat,
                         ::testing::Values(FormatCase{"172.253.211.15", true},
                                           FormatCase{"172.217.34.9", true},
                                           FormatCase{"74.125.41.1", true},
                                           FormatCase{"2404:6800:4000::5", true},
                                           FormatCase{"62.183.62.69", false},   // not Google space
                                           FormatCase{"185.194.112.32", false},
                                           FormatCase{"192.168.1.1", false},
                                           FormatCase{"not-an-ip", false}, FormatCase{"", false}));

struct Quad9Format : ::testing::TestWithParam<FormatCase> {};
TEST_P(Quad9Format, Validates) {
  EXPECT_EQ(is_quad9_standard(GetParam().text), GetParam().standard) << GetParam().text;
}
INSTANTIATE_TEST_SUITE_P(Corpus, Quad9Format,
                         ::testing::Values(FormatCase{"res100.iad.rrdns.pch.net", true},
                                           FormatCase{"res1.sfo.rrdns.pch.net", true},
                                           FormatCase{"res.iad.rrdns.pch.net", false},
                                           FormatCase{"res100.zzz.rrdns.pch.net", false},
                                           FormatCase{"res100.iad.rrdns.pch.org", false},
                                           FormatCase{"res100.iad.pch.net", false},
                                           FormatCase{"resXX.iad.rrdns.pch.net", false},
                                           FormatCase{"", false}));

struct OpenDnsFormat : ::testing::TestWithParam<FormatCase> {};
TEST_P(OpenDnsFormat, Validates) {
  EXPECT_EQ(is_opendns_standard(GetParam().text), GetParam().standard) << GetParam().text;
}
INSTANTIATE_TEST_SUITE_P(Corpus, OpenDnsFormat,
                         ::testing::Values(FormatCase{"server m84.iad", true},
                                           FormatCase{"server m1.fra", true},
                                           FormatCase{"server 84.iad", false},
                                           FormatCase{"server m84.zzz", false},
                                           FormatCase{"m84.iad", false},
                                           FormatCase{"server m84", false},
                                           FormatCase{"server mXX.iad", false}));

// --- verdict mapping ---

TEST(ClassifyLocation, StandardAnswerIsStandard) {
  EXPECT_EQ(classify_location_response(PublicResolverKind::cloudflare, answered_txt("ORD")),
            LocationVerdict::standard);
  EXPECT_EQ(
      classify_location_response(PublicResolverKind::google, answered_txt("172.253.211.15")),
      LocationVerdict::standard);
}

TEST(ClassifyLocation, WrongShapeIsNonstandard) {
  EXPECT_EQ(classify_location_response(PublicResolverKind::cloudflare,
                                       answered_txt("routing.v2.pw")),
            LocationVerdict::nonstandard);
  EXPECT_EQ(classify_location_response(PublicResolverKind::google, answered_txt("10.0.0.1")),
            LocationVerdict::nonstandard);
}

TEST(ClassifyLocation, ErrorRcodeIsErrorStatus) {
  for (auto rcode : {dnswire::Rcode::NOTIMP, dnswire::Rcode::REFUSED, dnswire::Rcode::SERVFAIL,
                     dnswire::Rcode::NXDOMAIN}) {
    EXPECT_EQ(classify_location_response(PublicResolverKind::quad9, answered_txt("", rcode)),
              LocationVerdict::error_status);
  }
}

TEST(ClassifyLocation, TimeoutIsTimeoutNotInterception) {
  EXPECT_EQ(classify_location_response(PublicResolverKind::opendns, timeout()),
            LocationVerdict::timed_out);
  EXPECT_FALSE(indicates_interception(LocationVerdict::timed_out));
  EXPECT_FALSE(indicates_interception(LocationVerdict::standard));
  EXPECT_TRUE(indicates_interception(LocationVerdict::nonstandard));
  EXPECT_TRUE(indicates_interception(LocationVerdict::error_status));
}

TEST(ClassifyLocation, EmptyNoerrorAnswerIsNonstandard) {
  QueryResult result;
  result.status = QueryResult::Status::answered;
  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  result.response = dnswire::make_response(query);  // NOERROR, no answers
  EXPECT_EQ(classify_location_response(PublicResolverKind::cloudflare, result),
            LocationVerdict::nonstandard);
}

TEST(ClassifyLocation, DisplayRendering) {
  EXPECT_EQ(location_response_display(answered_txt("IAD")), "IAD");
  EXPECT_EQ(location_response_display(answered_txt("", dnswire::Rcode::NOTIMP)), "NOTIMP");
  EXPECT_EQ(location_response_display(timeout()), "timeout");

  // An A answer renders as the address.
  QueryResult a_result;
  a_result.status = QueryResult::Status::answered;
  auto query = dnswire::make_query(1, *dnswire::DnsName::parse("x.com"), dnswire::RecordType::A);
  auto response = dnswire::make_response(query);
  response.answers.push_back(
      dnswire::make_a(*dnswire::DnsName::parse("x.com"), netbase::Ipv4Address(9, 8, 7, 6)));
  a_result.response = response;
  EXPECT_EQ(location_response_display(a_result), "9.8.7.6");
}

}  // namespace
}  // namespace dnslocate::core
