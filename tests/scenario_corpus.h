// The shared scenario corpus: one configuration per scenario family the
// pipeline distinguishes — every verdict class, both interception locations,
// scoped and blocking policies, v6-only interception, and a faulty lossy link
// with retries. Used by the engine-equivalence suite (blocking vs async) and
// the fleet-sharding suite (1 vs N shards); both prove their executors
// byte-identical over exactly this corpus, so the two invariances compose.
#pragma once

#include <string>
#include <vector>

#include "atlas/scenario.h"
#include "core/describe.h"
#include "core/pipeline.h"

namespace dnslocate::testing_corpus {

/// Everything the equality gates compare: the rendered evidence trail plus
/// the location, the skipped-stage mask, and the telemetry counts. RTTs are
/// the one engine-dependent field and are not part of describe().
inline std::string signature(const core::ProbeVerdict& verdict) {
  std::string s = core::describe(verdict);
  s += "\nlocation=" + std::string(core::to_string(verdict.location));
  s += " skipped=" + std::to_string(verdict.skipped_stages);
  s += " queries=" + std::to_string(verdict.telemetry.queries);
  s += " attempts=" + std::to_string(verdict.telemetry.attempts);
  s += " retries=" + std::to_string(verdict.telemetry.retries);
  s += " timeouts=" + std::to_string(verdict.telemetry.timeouts);
  s += " answered=" + std::to_string(verdict.telemetry.answered);
  return s;
}

struct Case {
  const char* name;
  atlas::ScenarioConfig config;
};

inline std::vector<Case> corpus() {
  using atlas::CpeStyle;
  using atlas::ScenarioConfig;
  using resolvers::PublicResolverKind;

  std::vector<Case> cases;

  cases.push_back({"benign_closed", {}});

  {
    ScenarioConfig c;
    c.cpe.kind = CpeStyle::Kind::benign_open_dnsmasq;
    cases.push_back({"benign_open_dnsmasq", c});
  }
  {
    ScenarioConfig c;
    c.cpe.kind = CpeStyle::Kind::xb6_buggy;
    cases.push_back({"xb6_buggy", c});
  }
  {
    ScenarioConfig c;
    c.cpe.kind = CpeStyle::Kind::xb6_healthy;
    cases.push_back({"xb6_healthy", c});
  }
  {
    ScenarioConfig c;
    c.cpe.kind = CpeStyle::Kind::pihole;
    c.cpe.version = "2.87";
    cases.push_back({"pihole", c});
  }
  {
    ScenarioConfig c;
    c.cpe.kind = CpeStyle::Kind::intercept_unbound;
    c.cpe.version = "1.9.0";
    c.cpe.identity = "routing.v2.pw";
    cases.push_back({"intercept_unbound", c});
  }
  {
    ScenarioConfig c;
    c.isp_policy.middlebox_enabled = true;
    cases.push_back({"isp_middlebox", c});
  }
  {
    ScenarioConfig c;
    c.cpe.kind = CpeStyle::Kind::benign_open_dnsmasq;
    c.isp_policy.middlebox_enabled = true;
    cases.push_back({"isp_middlebox_open_cpe", c});
  }
  {
    ScenarioConfig c;
    c.isp_policy.middlebox_enabled = true;
    c.isp_policy.ignore_bogon_queries = true;
    cases.push_back({"bogon_discarding", c});
  }
  {
    ScenarioConfig c;
    c.external_interceptor = true;
    cases.push_back({"external_interceptor", c});
  }
  {
    ScenarioConfig c;
    c.isp_policy.middlebox_enabled = true;
    c.isp_policy.intercept_all_port53 = false;
    c.isp_policy.target_actions[PublicResolverKind::cloudflare] = isp::TargetAction::divert;
    c.isp_policy.scoped_answers_bogons = true;
    cases.push_back({"scoped_cloudflare", c});
  }
  {
    ScenarioConfig c;
    c.isp_policy.middlebox_enabled = true;
    c.isp_policy.default_action = isp::TargetAction::divert_block;
    cases.push_back({"blocking_interceptor", c});
  }
  {
    ScenarioConfig c;
    c.home_ipv6 = true;
    c.isp_policy.middlebox_enabled = true;
    c.isp_policy.intercept_all_port53 = false;
    c.isp_policy.target_actions_v6[PublicResolverKind::google] = isp::TargetAction::divert;
    cases.push_back({"v6_only_interception", c});
  }
  {
    // Lossy access link + retries: the retry/backoff/re-randomization
    // machinery must also replay identically under the batched cascade.
    atlas::ScenarioConfig c;
    c.isp_policy.middlebox_enabled = true;
    c.faults.p_good_to_bad = 0.05;
    c.faults.jitter_max = std::chrono::milliseconds(5);
    c.retry.max_attempts = 3;
    cases.push_back({"faulty_link_with_retries", c});
  }

  return cases;
}

}  // namespace dnslocate::testing_corpus
