// The resident measurement service, in-process: the HTTP message layer,
// the runtime kernel (admission, tenancy, cancellation, drain-and-resume),
// the JSON API routing over a real socket, and the metrics/census agreement
// the control plane promises.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "atlas/fleet_json.h"
#include "atlas/measurement.h"
#include "obs/metrics.h"
#include "report/results_io.h"
#include "service/api.h"
#include "service/http.h"
#include "service/http_server.h"
#include "service/service.h"
#include "service_test_util.h"

namespace dnslocate {
namespace {

using service::MeasurementService;
using service::RunState;
using service::ServiceConfig;
using testutil::http_request;
using testutil::make_scratch_dir;

constexpr const char* kSmallPlan =
    R"({"seed": 7, "ipv6_fraction": 0.5, "orgs": [
         {"org": "SvcNet", "asn": 64710, "country": "US", "probes": 24,
          "cpe_xb6": 2, "isp_allfour": 1},
         {"org": "CtrlNet", "asn": 64711, "country": "DE", "probes": 12}]})";

std::string paced_plan(const std::string& tenant, int probes, int pace_ms) {
  return R"({"seed": 7, "tenant": ")" + tenant + R"(", "pace_ms": )" +
         std::to_string(pace_ms) + R"(, "orgs": [
           {"org": "PaceNet", "asn": 64712, "country": "US", "probes": )" +
         std::to_string(probes) + R"(, "cpe_xb6": 2}]})";
}

/// The exact options MeasurementService::execute uses for a default-config
/// run — the baseline for every byte-identity assertion below.
std::string baseline_jsonl(const std::string& plan) {
  auto parsed = atlas::fleet_from_json(plan);
  EXPECT_TRUE(parsed.ok());
  atlas::MeasurementOptions options;
  options.strip_raw_responses = true;
  options.threads = 1;
  return report::run_to_jsonl(atlas::run_fleet(parsed.generate(), options));
}

bool wait_for_state(MeasurementService& svc, const std::string& id, RunState state,
                    std::chrono::seconds timeout = std::chrono::seconds(60)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    auto status = svc.status(id);
    if (status && status->state == state) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// --- HTTP message layer ---

TEST(ServiceHttp, ParserHandlesRequestLineQueryAndBody) {
  service::RequestParser parser;
  const std::string wire =
      "POST /v1/fleets/run-000001/verdicts?from_seq=12&x=a%20b HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 4\r\n"
      "X-Mixed-Case: Yes\r\n"
      "\r\nbody";
  // Feed byte by byte: the parser must be fully incremental.
  auto state = service::RequestParser::State::need_more;
  for (char c : wire) state = parser.feed(std::string_view(&c, 1));
  ASSERT_EQ(state, service::RequestParser::State::done);
  const auto& request = parser.request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.path, "/v1/fleets/run-000001/verdicts");
  EXPECT_EQ(request.query_value("from_seq"), "12");
  EXPECT_EQ(request.query_value("x"), "a b");
  EXPECT_EQ(request.query_value("missing", "fallback"), "fallback");
  EXPECT_EQ(request.headers.at("x-mixed-case"), "Yes");
  EXPECT_EQ(request.body, "body");
}

TEST(ServiceHttp, ParserRejectsGarbageAndOversizedHeads) {
  service::RequestParser bad_line;
  EXPECT_EQ(bad_line.feed("nonsense\r\n\r\n"), service::RequestParser::State::bad);
  EXPECT_FALSE(bad_line.error().empty());

  service::RequestParser oversized;
  std::string huge = "GET / HTTP/1.1\r\nX-Pad: ";
  huge.append(20 * 1024, 'a');
  EXPECT_EQ(oversized.feed(huge), service::RequestParser::State::bad);

  service::RequestParser chunked_body;
  EXPECT_EQ(chunked_body.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            service::RequestParser::State::bad);
}

TEST(ServiceHttp, ChunkFramingAndHeadSerialization) {
  EXPECT_EQ(service::encode_chunk("hello"), "5\r\nhello\r\n");
  EXPECT_EQ(service::final_chunk(), "0\r\n\r\n");

  service::HttpResponse plain;
  plain.status = 404;
  plain.body = "xy";
  auto head = service::serialize_head(plain);
  EXPECT_NE(head.find("HTTP/1.1 404 Not Found"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 2"), std::string::npos);

  service::HttpResponse streaming;
  streaming.stream = []() -> std::optional<std::string> { return std::nullopt; };
  auto stream_head = service::serialize_head(streaming);
  EXPECT_NE(stream_head.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_EQ(stream_head.find("Content-Length"), std::string::npos);
}

// --- admission ---

TEST(Service, RejectsMalformedJsonWithByteContext) {
  ServiceConfig config;
  config.state_dir = make_scratch_dir("svc-badjson");
  MeasurementService svc(config);

  auto result = svc.submit("{\"probes\": 5,\n \"orgs\": [,]}");
  EXPECT_EQ(result.status, 400);
  // Satellite #1: the 400 carries the jsonio offset/line/column/context.
  EXPECT_EQ(result.detail["offset"].as_int(), 24);
  EXPECT_EQ(result.detail["line"].as_int(), 2);
  EXPECT_EQ(result.detail["column"].as_int(), 11);
  EXPECT_NE(result.detail["context"].as_string().find("-->"), std::string::npos);
  EXPECT_NE(result.error.find("line 2"), std::string::npos);
}

TEST(Service, RejectsBadPlansTenantsAndOversizedFleets) {
  ServiceConfig config;
  config.state_dir = make_scratch_dir("svc-reject");
  config.max_probes = 10;
  MeasurementService svc(config);

  // Valid JSON, invalid plan (no orgs).
  auto no_probes = svc.submit(R"({"seed": 1, "orgs": []})");
  EXPECT_EQ(no_probes.status, 400);

  auto bad_tenant = svc.submit(
      R"({"seed": 1, "tenant": "no spaces!", "orgs": [{"org": "A", "asn": 1, "probes": 2}]})");
  EXPECT_EQ(bad_tenant.status, 400);

  auto bad_pace = svc.submit(
      R"({"seed": 1, "pace_ms": -5, "orgs": [{"org": "A", "asn": 1, "probes": 2}]})");
  EXPECT_EQ(bad_pace.status, 400);

  auto too_big = svc.submit(R"({"seed": 1, "orgs": [{"org": "A", "asn": 1, "probes": 50}]})");
  EXPECT_EQ(too_big.status, 413);
}

TEST(Service, DrainingAnswers503AndStopsAdmitting) {
  ServiceConfig config;
  config.state_dir = make_scratch_dir("svc-drain503");
  MeasurementService svc(config);
  svc.drain();
  EXPECT_TRUE(svc.draining());
  auto result = svc.submit(kSmallPlan);
  EXPECT_EQ(result.status, 503);
}

// --- lifecycle ---

TEST(Service, RunCompletesWithStreamedVerdictsAndByteIdenticalRecords) {
  ServiceConfig config;
  config.state_dir = make_scratch_dir("svc-lifecycle");
  MeasurementService svc(config);

  auto submitted = svc.submit(kSmallPlan);
  ASSERT_EQ(submitted.status, 202) << submitted.error;
  ASSERT_TRUE(wait_for_state(svc, submitted.id, RunState::completed));

  auto status = svc.status(submitted.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->probes_total, 36u);
  EXPECT_EQ(status->probes_done, 36u);
  EXPECT_EQ(status->not_run, 0u);
  EXPECT_FALSE(status->recovered);
  ASSERT_TRUE(status->census.is_object());
  EXPECT_EQ(status->census["probes"].as_int(), 36);

  // The verdict stream carries every record exactly once, and the cursor
  // pages through it.
  auto all = svc.verdicts(submitted.id, 0);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->lines.size(), 36u);
  EXPECT_TRUE(all->finished);
  auto tail = svc.verdicts(submitted.id, 30);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->lines.size(), 6u);
  EXPECT_EQ(tail->next_seq, 36u);

  // Byte identity: the service's record surface equals a plain in-process
  // run of the same plan.
  auto jsonl = svc.records_jsonl(submitted.id);
  ASSERT_TRUE(jsonl.has_value());
  EXPECT_EQ(*jsonl, baseline_jsonl(kSmallPlan));
}

TEST(Service, TenantCapAnswers429AndTenantsAreIsolated) {
  ServiceConfig config;
  config.state_dir = make_scratch_dir("svc-tenants");
  config.workers = 2;
  config.tenant_cap = 1;
  MeasurementService svc(config);

  // A paced run keeps tenant "alice" at her cap.
  auto alice = svc.submit(paced_plan("alice", 200, 20));
  ASSERT_EQ(alice.status, 202) << alice.error;
  auto alice_again = svc.submit(paced_plan("alice", 10, 0));
  EXPECT_EQ(alice_again.status, 429);
  // A different tenant is unaffected by alice's cap.
  auto bob = svc.submit(paced_plan("bob", 10, 0));
  EXPECT_EQ(bob.status, 202) << bob.error;

  ASSERT_TRUE(wait_for_state(svc, bob.id, RunState::completed));
  EXPECT_TRUE(svc.cancel(alice.id));
  ASSERT_TRUE(wait_for_state(svc, alice.id, RunState::cancelled));
  // Once alice's run is terminal she is under the cap again.
  auto alice_after = svc.submit(paced_plan("alice", 5, 0));
  EXPECT_EQ(alice_after.status, 202) << alice_after.error;
  ASSERT_TRUE(wait_for_state(svc, alice_after.id, RunState::completed));
}

TEST(Service, CancelDrainsInFlightProbesAndKeepsCompletedRecords) {
  ServiceConfig config;
  config.state_dir = make_scratch_dir("svc-cancel");
  MeasurementService svc(config);

  auto submitted = svc.submit(paced_plan("carol", 300, 15));
  ASSERT_EQ(submitted.status, 202) << submitted.error;
  // Let some probes complete, then cancel.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    auto status = svc.status(submitted.id);
    if (status && status->probes_done >= 10) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(svc.cancel(submitted.id));
  ASSERT_TRUE(wait_for_state(svc, submitted.id, RunState::cancelled));

  auto status = svc.status(submitted.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_GE(status->probes_done, 10u);
  EXPECT_GT(status->not_run, 0u);
  EXPECT_EQ(status->probes_done + status->not_run, 300u);
  auto page = svc.verdicts(submitted.id, 0);
  ASSERT_TRUE(page.has_value());
  EXPECT_TRUE(page->finished);
  EXPECT_EQ(page->lines.size(), status->probes_done);
  EXPECT_FALSE(svc.cancel("run-999999"));
}

TEST(Service, DrainThenNewServiceResumesToByteIdenticalRecords) {
  const std::string state_dir = make_scratch_dir("svc-resume");
  const std::string plan = paced_plan("dave", 120, 10);
  std::string id;
  {
    ServiceConfig config;
    config.state_dir = state_dir;
    MeasurementService svc(config);
    auto submitted = svc.submit(plan);
    ASSERT_EQ(submitted.status, 202) << submitted.error;
    id = submitted.id;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      auto status = svc.status(id);
      if (status && status->probes_done >= 20) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    svc.drain();  // SIGTERM path: journals sync, manifest stays unmarked
  }

  ServiceConfig config;
  config.state_dir = state_dir;
  MeasurementService svc(config);
  EXPECT_EQ(svc.recovered_runs(), 1u);
  auto status = svc.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->recovered);
  ASSERT_TRUE(wait_for_state(svc, id, RunState::completed));

  auto jsonl = svc.records_jsonl(id);
  ASSERT_TRUE(jsonl.has_value());
  EXPECT_EQ(*jsonl, baseline_jsonl(plan));
  // Every verdict is replayed exactly once across the two processes' worth
  // of publication (restored records first, fresh ones after).
  auto page = svc.verdicts(id, 0);
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(page->lines.size(), 120u);
}

TEST(Service, ConcurrentTenantRunsKeepIsolatedJournalsAndRecords) {
  ServiceConfig config;
  config.state_dir = make_scratch_dir("svc-concurrent");
  config.workers = 2;
  MeasurementService svc(config);

  const std::string plan_a =
      R"({"seed": 11, "tenant": "alice", "orgs": [
           {"org": "NetA", "asn": 64720, "country": "US", "probes": 30, "cpe_xb6": 2}]})";
  const std::string plan_b =
      R"({"seed": 22, "tenant": "bob", "orgs": [
           {"org": "NetB", "asn": 64721, "country": "DE", "probes": 20, "isp_allfour": 1}]})";
  auto a = svc.submit(plan_a);
  auto b = svc.submit(plan_b);
  ASSERT_EQ(a.status, 202) << a.error;
  ASSERT_EQ(b.status, 202) << b.error;
  ASSERT_TRUE(wait_for_state(svc, a.id, RunState::completed));
  ASSERT_TRUE(wait_for_state(svc, b.id, RunState::completed));

  // Concurrent execution changed nothing: each run's records equal its own
  // single-run baseline, so the runs shared no journal and no state.
  EXPECT_EQ(*svc.records_jsonl(a.id), baseline_jsonl(plan_a));
  EXPECT_EQ(*svc.records_jsonl(b.id), baseline_jsonl(plan_b));
  EXPECT_NE(*svc.records_jsonl(a.id), *svc.records_jsonl(b.id));

  auto list = svc.list();
  EXPECT_EQ(list.size(), 2u);
}

TEST(Service, TerminalRunRetentionSpillsAndReloadsFromJournal) {
  ServiceConfig config;
  config.state_dir = make_scratch_dir("svc-retain");
  config.retain_terminal_runs = 1;
  MeasurementService svc(config);

  const std::string plan_a =
      R"({"seed": 31, "orgs": [{"org": "OldNet", "asn": 64730, "country": "US",
           "probes": 12, "cpe_xb6": 1}]})";
  const std::string plan_b =
      R"({"seed": 32, "orgs": [{"org": "NewNet", "asn": 64731, "country": "DE",
           "probes": 8}]})";
  auto a = svc.submit(plan_a);
  ASSERT_EQ(a.status, 202) << a.error;
  ASSERT_TRUE(wait_for_state(svc, a.id, RunState::completed));
  auto b = svc.submit(plan_b);
  ASSERT_EQ(b.status, 202) << b.error;
  ASSERT_TRUE(wait_for_state(svc, b.id, RunState::completed));

  // With retain_terminal_runs = 1, completing b spilled a's in-memory
  // records. Status still answers from the done marker without a reload...
  auto status = svc.status(a.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, RunState::completed);
  EXPECT_EQ(status->probes_done, 12u);

  // ...and the verdict / record surfaces lazily reload from the journal,
  // byte-identical to what the run produced while resident.
  auto page = svc.verdicts(a.id, 0);
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(page->lines.size(), 12u);
  EXPECT_TRUE(page->finished);
  auto jsonl = svc.records_jsonl(a.id);
  ASSERT_TRUE(jsonl.has_value());
  EXPECT_EQ(*jsonl, baseline_jsonl(plan_a));
  EXPECT_EQ(*svc.records_jsonl(b.id), baseline_jsonl(plan_b));
}

// --- metrics / census agreement ---

TEST(Service, MetricsTotalsAgreeWithRunCensusToTheDigit) {
  obs::Config obs_config;
  obs_config.metrics = true;
  obs::enable(obs_config);
  auto& registry = obs::registry();
  const auto queries_before = registry.counter("transport_queries_total").value();
  const auto attempts_before = registry.counter("transport_attempts_total").value();
  const auto answered_before = registry.counter("transport_answered_total").value();
  const auto ok_before = registry.counter("probe_ok_total").value();

  ServiceConfig config;
  config.state_dir = make_scratch_dir("svc-metrics");
  MeasurementService svc(config);
  auto submitted = svc.submit(kSmallPlan);
  ASSERT_EQ(submitted.status, 202) << submitted.error;
  ASSERT_TRUE(wait_for_state(svc, submitted.id, RunState::completed));

  auto status = svc.status(submitted.id);
  ASSERT_TRUE(status.has_value());
  const auto& census = status->census;
  ASSERT_TRUE(census.is_object());
  // The registry deltas equal the census telemetry exactly — the promise
  // that a /metrics scrape and the run's own accounting never disagree.
  EXPECT_EQ(registry.counter("transport_queries_total").value() - queries_before,
            static_cast<std::uint64_t>(census["telemetry"]["queries"].as_int()));
  EXPECT_EQ(registry.counter("transport_attempts_total").value() - attempts_before,
            static_cast<std::uint64_t>(census["telemetry"]["attempts"].as_int()));
  EXPECT_EQ(registry.counter("transport_answered_total").value() - answered_before,
            static_cast<std::uint64_t>(census["telemetry"]["answered"].as_int()));
  EXPECT_EQ(registry.counter("probe_ok_total").value() - ok_before,
            static_cast<std::uint64_t>(census["ok"].as_int()));
  obs::disable();
}

// --- the HTTP API over a real socket ---

TEST(ServiceApi, EndToEndOverLoopbackSocket) {
  ServiceConfig config;
  config.state_dir = make_scratch_dir("svc-api");
  MeasurementService svc(config);
  service::HttpServer server({}, [&svc](const service::HttpRequest& request) {
    return service::route_request(svc, request);
  });
  const std::uint16_t port = server.port();
  ASSERT_GT(port, 0);

  auto health = http_request(port, "GET", "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);

  auto submitted = http_request(port, "POST", "/v1/fleets", kSmallPlan);
  ASSERT_TRUE(submitted.ok);
  ASSERT_EQ(submitted.status, 202) << submitted.body;
  EXPECT_NE(submitted.body.find("run-000001"), std::string::npos);

  // Malformed body → 400 with the parse-error detail on the wire.
  auto bad = http_request(port, "POST", "/v1/fleets", "{\"orgs\": [,]}");
  ASSERT_TRUE(bad.ok);
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("\"offset\""), std::string::npos);
  EXPECT_NE(bad.body.find("-->"), std::string::npos);

  // Poll status over HTTP until completed.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool completed = false;
  while (std::chrono::steady_clock::now() < deadline && !completed) {
    auto status = http_request(port, "GET", "/v1/fleets/run-000001");
    completed = status.ok && status.body.find("\"state\":\"completed\"") != std::string::npos;
    if (!completed) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(completed);

  // The chunked verdict stream decodes to one JSON object per probe, and
  // the from_seq cursor resumes mid-stream.
  auto verdicts = http_request(port, "GET", "/v1/fleets/run-000001/verdicts");
  ASSERT_TRUE(verdicts.ok);
  EXPECT_EQ(verdicts.status, 200);
  EXPECT_EQ(verdicts.headers.at("transfer-encoding"), "chunked");
  std::size_t lines = 0;
  for (char c : verdicts.body) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 36u);
  auto resumed = http_request(port, "GET", "/v1/fleets/run-000001/verdicts?from_seq=30");
  ASSERT_TRUE(resumed.ok);
  std::size_t resumed_lines = 0;
  for (char c : resumed.body) resumed_lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(resumed_lines, 6u);

  // A malformed cursor is a 400, never a silent full replay ("abc" → 0) or
  // a silently empty stream ("-1" → 2^64-1).
  EXPECT_EQ(http_request(port, "GET", "/v1/fleets/run-000001/verdicts?from_seq=abc").status,
            400);
  EXPECT_EQ(http_request(port, "GET", "/v1/fleets/run-000001/verdicts?from_seq=-1").status,
            400);

  // Records endpoint serves the byte-identity surface over the wire.
  auto records = http_request(port, "GET", "/v1/fleets/run-000001/records");
  ASSERT_TRUE(records.ok);
  EXPECT_EQ(records.body, baseline_jsonl(kSmallPlan));

  auto metrics = http_request(port, "GET", "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.at("content-type").find("text/plain"), std::string::npos);

  // Routing edges: unknown paths, unknown ids, wrong methods.
  EXPECT_EQ(http_request(port, "GET", "/nope").status, 404);
  EXPECT_EQ(http_request(port, "GET", "/v1/fleets/run-424242").status, 404);
  EXPECT_EQ(http_request(port, "DELETE", "/v1/fleets").status, 405);
  EXPECT_EQ(http_request(port, "GET", "/v1/fleets/run-000001/cancel").status, 405);

  auto listing = http_request(port, "GET", "/v1/fleets");
  ASSERT_TRUE(listing.ok);
  EXPECT_NE(listing.body.find("\"fleets\""), std::string::npos);

  server.stop();
  svc.drain();
}

}  // namespace
}  // namespace dnslocate
