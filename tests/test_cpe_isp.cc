// CPE and ISP construction tests: preset configurations, datapath wiring,
// interception rule materialization, and border behaviour.
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "cpe/presets.h"
#include "dnswire/debug_queries.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "isp/isp_network.h"

namespace dnslocate {
namespace {

cpe::HomeAddressing home() {
  cpe::HomeAddressing h;
  h.wan_v4 = *netbase::IpAddress::parse("203.0.113.7");
  h.isp_resolver_v4 = netbase::Endpoint{*netbase::IpAddress::parse("198.51.100.2"), 53};
  return h;
}

TEST(CpePresets, BenignClosedHasNoForwarderNoIntercept) {
  auto config = cpe::benign_closed(home());
  EXPECT_FALSE(config.forwarder_enabled);
  EXPECT_EQ(config.intercept_v4, cpe::InterceptMode::none);
  EXPECT_EQ(config.intercept_v6, cpe::InterceptMode::none);
}

TEST(CpePresets, OpenDnsmasqForwardsButDoesNotIntercept) {
  auto config = cpe::benign_open_dnsmasq(home(), "2.80");
  EXPECT_TRUE(config.forwarder_enabled);
  EXPECT_EQ(config.intercept_v4, cpe::InterceptMode::none);
  EXPECT_EQ(*config.forwarder.software.version_bind, "dnsmasq-2.80");
}

TEST(CpePresets, Xb6VariantsShareSoftwareDifferInDnat) {
  auto buggy = cpe::xb6_buggy(home());
  auto healthy = cpe::xb6_healthy(home());
  EXPECT_EQ(buggy.forwarder.software.version_bind, healthy.forwarder.software.version_bind);
  EXPECT_EQ(buggy.intercept_v4, cpe::InterceptMode::dnat_to_self);
  EXPECT_EQ(buggy.intercept_v6, cpe::InterceptMode::none);  // v4-only, §4.1.1
  EXPECT_EQ(healthy.intercept_v4, cpe::InterceptMode::none);
}

TEST(CpePresets, PiholeInterceptsToItsDnsmasq) {
  auto config = cpe::pihole(home(), "2.87");
  EXPECT_EQ(config.intercept_v4, cpe::InterceptMode::dnat_to_self);
  EXPECT_EQ(*config.forwarder.software.version_bind, "dnsmasq-pi-hole-2.87");
}

TEST(CpePresets, UnboundIdentityIsConfigurable) {
  auto config = cpe::intercepting_unbound(home(), "1.9.0", "routing.v2.pw");
  EXPECT_EQ(*config.forwarder.software.id_server, "routing.v2.pw");
  EXPECT_EQ(*config.forwarder.software.version_bind, "unbound 1.9.0");
}

TEST(CpePresets, DnatToResolverHasNoLocalForwarder) {
  auto config = cpe::intercepting_to_resolver(home());
  EXPECT_FALSE(config.forwarder_enabled);
  EXPECT_EQ(config.intercept_v4, cpe::InterceptMode::dnat_to_resolver);
}

TEST(CpePresets, InterceptModeNames) {
  EXPECT_EQ(to_string(cpe::InterceptMode::none), "none");
  EXPECT_EQ(to_string(cpe::InterceptMode::dnat_to_self), "dnat_to_self");
  EXPECT_EQ(to_string(cpe::InterceptMode::dnat_to_resolver), "dnat_to_resolver");
}

TEST(CpeBuild, HandlesExposeWiring) {
  simnet::Simulator sim(1);
  auto& host = sim.add_device<simnet::Device>("host");
  auto& wan_peer = sim.add_device<simnet::Device>("wan");
  auto config = cpe::benign_open_dnsmasq(home());
  auto handles = cpe::build_cpe(sim, config, host, wan_peer);
  ASSERT_NE(handles.device, nullptr);
  EXPECT_TRUE(handles.device->has_local_ip(*netbase::IpAddress::parse("203.0.113.7")));
  EXPECT_TRUE(handles.device->has_local_ip(*netbase::IpAddress::parse("192.168.1.1")));
  EXPECT_TRUE(handles.device->is_udp_bound(53));
  EXPECT_NE(handles.forwarder, nullptr);
  EXPECT_NE(handles.nat, nullptr);
  // Routes resolve: LAN addresses out the LAN port, world out the WAN port.
  EXPECT_EQ(handles.device->route_for(*netbase::IpAddress::parse("192.168.1.10")),
            handles.lan_port);
  EXPECT_EQ(handles.device->route_for(*netbase::IpAddress::parse("8.8.8.8")),
            handles.wan_port);
}

TEST(CpeBuild, ClosedCpeBindsNothing) {
  simnet::Simulator sim(1);
  auto& host = sim.add_device<simnet::Device>("host");
  auto& wan_peer = sim.add_device<simnet::Device>("wan");
  auto handles = cpe::build_cpe(sim, cpe::benign_closed(home()), host, wan_peer);
  EXPECT_FALSE(handles.device->is_udp_bound(53));
  EXPECT_EQ(handles.forwarder, nullptr);
}

// --- ISP construction ---

TEST(IspBuild, MiddleboxOnlyWhenEnabled) {
  simnet::Simulator sim(1);
  auto& core_router = sim.add_device<simnet::Device>("core");
  core_router.set_forwarding(true);

  isp::IspConfig off;
  auto handles_off = isp::build_isp(sim, off, core_router);
  EXPECT_EQ(handles_off.middlebox, nullptr);
  EXPECT_EQ(handles_off.blocking_resolver, nullptr);
  EXPECT_NE(handles_off.resolver, nullptr);

  isp::IspConfig on;
  on.name = "isp2";
  on.policy.middlebox_enabled = true;
  auto handles_on = isp::build_isp(sim, on, core_router);
  EXPECT_NE(handles_on.middlebox, nullptr);
}

TEST(IspBuild, BlockingResolverOnlyWhenPolicyNeedsIt) {
  simnet::Simulator sim(1);
  auto& core_router = sim.add_device<simnet::Device>("core");
  core_router.set_forwarding(true);

  isp::IspConfig plain;
  plain.policy.middlebox_enabled = true;  // transparent divert
  EXPECT_EQ(isp::build_isp(sim, plain, core_router).blocking_resolver, nullptr);

  isp::IspConfig blocking;
  blocking.name = "isp2";
  blocking.policy.middlebox_enabled = true;
  blocking.policy.target_actions[resolvers::PublicResolverKind::quad9] =
      isp::TargetAction::divert_block;
  auto handles = isp::build_isp(sim, blocking, core_router);
  EXPECT_NE(handles.blocking_resolver, nullptr);
  EXPECT_TRUE(handles.blocking_address_v4.has_value());
  // The filter lives next to the resolver.
  EXPECT_EQ(handles.blocking_address_v4->v4().value(),
            handles.resolver_address_v4.v4().value() + 1);
}

TEST(IspBuild, ResolverAnswersItsOwnCustomers) {
  simnet::Simulator sim(1);
  auto& core_router = sim.add_device<simnet::Device>("core");
  core_router.set_forwarding(true);
  isp::IspConfig config;
  auto handles = isp::build_isp(sim, config, core_router);

  // A host attached directly to the access router.
  auto& host = sim.add_device<simnet::Device>("host");
  auto [host_up, access_down] = sim.connect(host, *handles.access);
  host.add_local_ip(*netbase::IpAddress::parse("203.0.113.10"));
  host.set_default_route(host_up);
  handles.access->add_route(*netbase::Prefix::parse("203.0.113.10/32"), access_down);

  struct Sink : simnet::UdpApp {
    std::vector<simnet::UdpPacket> received;
    void on_datagram(simnet::Simulator&, simnet::Device&, const simnet::UdpPacket& p) override {
      received.push_back(p);
    }
  } sink;
  host.bind_udp(5555, &sink);

  auto query = dnswire::make_query(1, *dnswire::DnsName::parse("example.com"),
                                   dnswire::RecordType::A);
  simnet::UdpPacket packet;
  packet.src = *netbase::IpAddress::parse("203.0.113.10");
  packet.dst = config.resolver_v4;
  packet.sport = 5555;
  packet.dport = 53;
  packet.payload = dnswire::encode_message(query);
  host.send_local(sim, packet);
  sim.run_until_idle();

  ASSERT_EQ(sink.received.size(), 1u);
  auto response = dnswire::decode_message(sink.received[0].payload);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->first_address().has_value());
  EXPECT_EQ(handles.resolver_app->queries_seen(), 1u);
}

TEST(Scenario, AddressingHelpersAreConsistent) {
  for (std::uint32_t asn : {7922u, 3320u, 64512u}) {
    auto prefix = atlas::customer_prefix_v4(asn);
    EXPECT_TRUE(prefix.contains(atlas::customer_address_v4(asn, 1)));
    EXPECT_TRUE(prefix.contains(atlas::customer_address_v4(asn, 9999)));
    EXPECT_TRUE(prefix.contains(atlas::isp_resolver_v4(asn)));
    EXPECT_FALSE(atlas::customer_address_v4(asn, 1).is_bogon());
    EXPECT_NE(atlas::customer_address_v4(asn, 1), atlas::customer_address_v4(asn, 2));
    EXPECT_NE(atlas::customer_address_v4(asn, 1), atlas::isp_resolver_v4(asn));

    auto prefix6 = atlas::customer_prefix_v6(asn);
    EXPECT_TRUE(prefix6.contains(atlas::customer_address_v6(asn, 1)));
    EXPECT_TRUE(prefix6.contains(atlas::isp_resolver_v6(asn)));
    EXPECT_FALSE(atlas::customer_address_v6(asn, 1).is_bogon());
  }
  // Different ASNs get disjoint v6 space (v4 may collide only mod 251).
  EXPECT_NE(atlas::customer_prefix_v6(7922), atlas::customer_prefix_v6(3320));
}

TEST(Scenario, GroundTruthExpectations) {
  atlas::ScenarioConfig config;
  config.cpe.kind = atlas::CpeStyle::Kind::pihole;
  EXPECT_EQ(atlas::Scenario(config).ground_truth().expected, core::InterceptorLocation::cpe);

  atlas::ScenarioConfig isp_config;
  isp_config.isp_policy.middlebox_enabled = true;
  auto truth = atlas::Scenario(isp_config).ground_truth();
  EXPECT_TRUE(truth.isp_intercepts_v4);
  EXPECT_TRUE(truth.isp_answers_bogons);
  EXPECT_EQ(truth.expected, core::InterceptorLocation::isp);

  atlas::ScenarioConfig scoped;
  scoped.isp_policy.middlebox_enabled = true;
  scoped.isp_policy.intercept_all_port53 = false;
  scoped.isp_policy.target_actions[resolvers::PublicResolverKind::google] =
      isp::TargetAction::divert;
  auto scoped_truth = atlas::Scenario(scoped).ground_truth();
  EXPECT_TRUE(scoped_truth.isp_intercepts_v4);
  EXPECT_FALSE(scoped_truth.isp_answers_bogons);
  EXPECT_EQ(scoped_truth.expected, core::InterceptorLocation::unknown);
}

}  // namespace
}  // namespace dnslocate
