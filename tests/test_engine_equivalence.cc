// The refactor's central promise: the batched engine and the historical
// sequential loop produce byte-identical evidence. Checked three ways —
// the full scenario corpus through SimTransport under both engines, the
// UdpEngine against UdpTransport over real loopback sockets, and the
// cancellation path (a drained batch reports honest timeouts and skipped
// stages, never fabricated answers).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "atlas/scenario.h"
#include "scenario_corpus.h"
#include "core/describe.h"
#include "core/mapped_transport.h"
#include "core/pipeline.h"
#include "dnswire/debug_queries.h"
#include "sockets/loopback_server.h"
#include "sockets/udp_engine.h"
#include "sockets/udp_transport.h"

namespace dnslocate {
namespace {

using namespace std::chrono_literals;
using atlas::CpeStyle;
using atlas::Scenario;
using atlas::ScenarioConfig;
using core::LocalizationPipeline;
using resolvers::PublicResolverKind;

using testing_corpus::Case;
using testing_corpus::corpus;
using testing_corpus::signature;

/// Run one scenario through the chosen engine. Each call builds a fresh
/// world from the config, so both engines see bit-identical simulations.
core::ProbeVerdict run_with(const ScenarioConfig& config, bool async) {
  Scenario scenario(config);
  LocalizationPipeline pipeline(scenario.pipeline_config());
  return async
             ? pipeline.run(static_cast<core::AsyncQueryTransport&>(scenario.transport()))
             : pipeline.run(static_cast<core::QueryTransport&>(scenario.transport()));
}

TEST(EngineEquivalence, SimCorpusVerdictsAreByteIdentical) {
  for (const Case& c : corpus()) {
    auto blocking = run_with(c.config, /*async=*/false);
    auto async = run_with(c.config, /*async=*/true);
    EXPECT_EQ(signature(blocking), signature(async)) << c.name;
  }
}

TEST(EngineEquivalence, AsyncEngineStillMatchesGroundTruth) {
  // Equality alone could hide two engines that are identically wrong; pin a
  // few corpus verdicts to the simulator's ground truth under the async path.
  for (const Case& c : corpus()) {
    Scenario scenario(c.config);
    if (scenario.ground_truth().expected == core::InterceptorLocation::unknown) continue;
    auto verdict = run_with(c.config, /*async=*/true);
    EXPECT_EQ(verdict.location, scenario.ground_truth().expected) << c.name;
  }
}

TEST(EngineEquivalence, UdpEngineMatchesUdpTransportOverLoopback) {
  resolvers::ResolverConfig behavior;
  behavior.software = resolvers::custom_string("engine-check");
  sockets::LoopbackDnsServer server(std::make_shared<resolvers::ResolverBehavior>(behavior));

  core::QueryOptions options;
  options.timeout = 1500ms;
  auto query = dnswire::make_chaos_query(0x1234, dnswire::version_bind());

  sockets::UdpTransport udp;
  auto blocking = udp.query(server.endpoint(), query, options);
  sockets::UdpEngine engine;
  auto batched = engine.query(server.endpoint(), query, options);

  ASSERT_TRUE(blocking.answered());
  ASSERT_TRUE(batched.answered());
  EXPECT_EQ(blocking.response->first_txt(), "engine-check");
  EXPECT_EQ(batched.response->first_txt(), blocking.response->first_txt());
  EXPECT_EQ(batched.retry.attempts, blocking.retry.attempts);
  EXPECT_EQ(batched.retry.timeouts, blocking.retry.timeouts);
  EXPECT_EQ(batched.all_responses.size(), blocking.all_responses.size());
}

TEST(EngineEquivalence, BatchOverlapsQueriesInsteadOfSummingDelays) {
  // Six queries against a server that delays every answer by 100ms and then
  // each sits out the 200ms duplicate window: sequentially that is ~1.8s,
  // in one fan-out it is the max (~0.3s). The generous 1s bound still only
  // passes if the queries genuinely overlapped.
  resolvers::ResolverConfig behavior;
  behavior.software = resolvers::custom_string("overlap");
  sockets::LoopbackDnsServer server(std::make_shared<resolvers::ResolverBehavior>(behavior),
                                    /*serve_tcp=*/false, 100ms);

  sockets::UdpEngine engine;
  core::QueryOptions options;
  options.timeout = 2000ms;
  core::QueryBatch batch;
  for (std::uint16_t i = 0; i < 6; ++i)
    batch.add(server.endpoint(), dnswire::make_chaos_query(static_cast<std::uint16_t>(0x2000 + i),
                                                           dnswire::version_bind()),
              options);

  auto start = std::chrono::steady_clock::now();
  engine.run(batch);
  auto elapsed = std::chrono::steady_clock::now() - start;

  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch.result(i).answered()) << "slot " << i;
    EXPECT_EQ(batch.result(i).response->first_txt(), "overlap");
  }
  EXPECT_FALSE(batch.drained());
  EXPECT_LT(elapsed, 1000ms);
  EXPECT_EQ(server.queries_served(), 6u);
}

TEST(EngineEquivalence, CancellationMidBatchDrainsWithHonestTimeouts) {
  // Answers are held back for 600ms but the token expires at 100ms: the
  // engine must abandon the in-flight queries promptly, report them as
  // timeouts (the attempt WAS sent), and mark the batch drained — without
  // waiting out the 5s per-query timeout and without inventing answers.
  resolvers::ResolverConfig behavior;
  behavior.software = resolvers::custom_string("too-late");
  sockets::LoopbackDnsServer server(std::make_shared<resolvers::ResolverBehavior>(behavior),
                                    /*serve_tcp=*/false, 600ms);

  sockets::UdpEngine engine;
  core::QueryOptions options;
  options.timeout = 5000ms;
  options.cancel = core::CancelToken::after(100ms);
  core::QueryBatch batch;
  for (std::uint16_t i = 0; i < 4; ++i)
    batch.add(server.endpoint(), dnswire::make_chaos_query(static_cast<std::uint16_t>(0x3000 + i),
                                                           dnswire::version_bind()),
              options);

  auto start = std::chrono::steady_clock::now();
  engine.run(batch);
  auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_TRUE(batch.drained());
  EXPECT_LT(elapsed, 500ms);  // drained at the next cancel slice, not at 5s
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& result = batch.result(i);
    EXPECT_FALSE(result.answered()) << "slot " << i;
    EXPECT_FALSE(result.response.has_value());
    EXPECT_TRUE(result.all_responses.empty());
    EXPECT_EQ(result.retry.attempts, 1u);
    EXPECT_GE(result.retry.timeouts, 1u);
  }
}

TEST(EngineEquivalence, PreCancelledBatchNeverTouchesTheWire) {
  sockets::UdpEngine engine;
  core::QueryOptions options;
  options.cancel = core::CancelToken::manual();
  options.cancel.cancel();
  core::QueryBatch batch;
  batch.add({*netbase::IpAddress::parse("127.0.0.1"), 9},
            dnswire::make_chaos_query(1, dnswire::version_bind()), options);
  batch.add({*netbase::IpAddress::parse("127.0.0.1"), 9},
            dnswire::make_chaos_query(2, dnswire::version_bind()), options);

  engine.run(batch);

  EXPECT_TRUE(batch.drained());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_FALSE(batch.result(i).answered());
    // Nothing hit the wire: no timeout was ever observed. (Both engines
    // report the RetryTelemetry default of one nominal attempt here —
    // UdpTransport breaks out of its attempt loop the same way.)
    EXPECT_EQ(batch.result(i).retry.attempts, 1u);
    EXPECT_EQ(batch.result(i).retry.timeouts, 0u);
  }
}

TEST(EngineEquivalence, PipelineOverEngineSkipsDrainedStages) {
  // Full pipeline over the async engine with a budget that expires while
  // detection's batch is in flight (answers arrive at 600ms, token dies at
  // 120ms): the drained detection stage is marked skipped, the tail never
  // runs, and the partial verdict claims nothing it did not observe.
  resolvers::ResolverConfig alternate;
  alternate.software = resolvers::dnsmasq("2.78");
  alternate.egress_v4 = *netbase::IpAddress::parse("127.0.0.1");
  sockets::LoopbackDnsServer interceptor(
      std::make_shared<resolvers::ResolverBehavior>(alternate), /*serve_tcp=*/false, 600ms);

  sockets::UdpEngine engine;
  core::MappedBatchTransport transport(engine);
  for (PublicResolverKind kind : resolvers::all_public_resolvers())
    transport.map_address(resolvers::PublicResolverSpec::get(kind).service_v4[0],
                          interceptor.endpoint());

  core::PipelineConfig config;
  config.detection.test_v6 = false;
  config.detection.use_secondary_addresses = false;
  core::QueryOptions slow;
  slow.timeout = 5000ms;
  config.detection.query = slow;
  config.cpe_public_ip = *netbase::IpAddress::parse("203.0.113.7");

  LocalizationPipeline pipeline(config);
  auto start = std::chrono::steady_clock::now();
  auto verdict = pipeline.run(static_cast<core::AsyncQueryTransport&>(transport),
                              core::CancelToken::after(120ms));
  auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_LT(elapsed, 1000ms);
  EXPECT_TRUE(verdict.partial());
  EXPECT_TRUE(verdict.stage_skipped(core::PipelineStage::detection));
  EXPECT_TRUE(verdict.stage_skipped(core::PipelineStage::cpe_check));
  EXPECT_TRUE(verdict.stage_skipped(core::PipelineStage::bogon));
  EXPECT_TRUE(verdict.stage_skipped(core::PipelineStage::transparency));
  // Nothing answered, so nothing is claimed beyond "no evidence".
  EXPECT_EQ(verdict.location, core::InterceptorLocation::not_intercepted);
  EXPECT_EQ(verdict.telemetry.answered, 0u);
  EXPECT_FALSE(verdict.cpe_check.has_value());
  EXPECT_FALSE(verdict.bogon.has_value());
  EXPECT_FALSE(verdict.transparency.has_value());
}

}  // namespace
}  // namespace dnslocate
