// Extended scenario coverage: CPE-level partial interception patterns,
// replication at the CPE, combined CPE+ISP deployments, v6-only homes,
// DoT-intercepting CPE, and a longitudinal firmware-flip experiment.
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "core/dot_probe.h"
#include "dnswire/debug_queries.h"

namespace dnslocate {
namespace {

using atlas::CpeStyle;
using atlas::Scenario;
using atlas::ScenarioConfig;
using core::InterceptorLocation;
using resolvers::PublicResolverKind;

core::ProbeVerdict run_pipeline(Scenario& scenario) {
  core::LocalizationPipeline pipeline(scenario.pipeline_config());
  return pipeline.run(scenario.transport());
}

TEST(ScenariosExtended, CpeInterceptOnlyOneResolver) {
  // The "one intercepted" pattern implemented at the CPE: DNAT only flows
  // towards Cloudflare's addresses.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::benign_closed;
  Scenario scenario(config);
  const auto& cf = resolvers::PublicResolverSpec::get(PublicResolverKind::cloudflare);
  simnet::DnatRule rule;
  rule.in_port = scenario.cpe_handles().lan_port;
  rule.match_dsts = {cf.service_v4[0], cf.service_v4[1]};
  rule.new_dst_v4 = atlas::isp_resolver_v4(config.asn);
  scenario.cpe_handles().nat->add_dnat_rule(rule);

  auto verdict = run_pipeline(scenario);
  auto intercepted = verdict.detection.intercepted_kinds(netbase::IpFamily::v4);
  ASSERT_EQ(intercepted.size(), 1u);
  EXPECT_EQ(intercepted[0], PublicResolverKind::cloudflare);
}

TEST(ScenariosExtended, CpeWithExemptResolver) {
  // "One allowed" at the CPE: intercept everything except Quad9.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::intercept_dnsmasq;
  Scenario base(config);  // style has no exempt knob; build manually below
  (void)base;

  cpe::HomeAddressing home;
  home.wan_v4 = atlas::customer_address_v4(config.asn, 7);
  home.isp_resolver_v4 = netbase::Endpoint{atlas::isp_resolver_v4(config.asn), 53};
  cpe::CpeConfig cpe_config = cpe::intercepting_dnsmasq(home);
  const auto& quad9 = resolvers::PublicResolverSpec::get(PublicResolverKind::quad9);
  cpe_config.intercept_exempt = {quad9.service_v4[0], quad9.service_v4[1]};

  // Assemble a world around the custom CPE.
  ScenarioConfig shell_config;
  shell_config.home_index = 7;
  shell_config.cpe.kind = CpeStyle::Kind::benign_open_dnsmasq;  // forwarder on :53
  Scenario shell(shell_config);
  // The stock CPE in `shell` is benign; add the interception rule set of
  // the custom config to its NAT (same effect as building from scratch).
  simnet::DnatRule rule;
  rule.in_port = shell.cpe_handles().lan_port;
  rule.exempt_dsts = cpe_config.intercept_exempt;
  rule.new_dst_v4 = *netbase::IpAddress::parse("192.168.1.1");
  shell.cpe_handles().nat->add_dnat_rule(rule);

  auto verdict = run_pipeline(shell);
  EXPECT_FALSE(verdict.detection.of(PublicResolverKind::quad9).intercepted_v4);
  EXPECT_TRUE(verdict.detection.of(PublicResolverKind::google).intercepted_v4);
  EXPECT_TRUE(verdict.detection.of(PublicResolverKind::cloudflare).intercepted_v4);
}

TEST(ScenariosExtended, ReplicatingCpeStillLocalizedAtCpe) {
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::benign_open_dnsmasq;
  Scenario scenario(config);
  // Replication DNAT at the CPE: copies go to the CPE's own forwarder.
  simnet::DnatRule rule;
  rule.in_port = scenario.cpe_handles().lan_port;
  rule.new_dst_v4 = *netbase::IpAddress::parse("192.168.1.1");
  rule.replicate = true;
  scenario.cpe_handles().nat->add_dnat_rule(rule);

  auto verdict = run_pipeline(scenario);
  // The forwarder's copy (local) beats the real resolver's answer, so the
  // probe classifies as intercepted, and version.bind strings all match the
  // CPE's dnsmasq.
  EXPECT_EQ(verdict.location, InterceptorLocation::cpe);
}

TEST(ScenariosExtended, CpeInterceptorShadowsIspInterceptor) {
  // Both boxes intercept; the query never reaches the ISP middlebox, so the
  // CPE (the first interceptor on the path) is what the technique reports —
  // the correct answer for "who diverts this client's queries".
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::xb6_buggy;
  config.isp_policy.middlebox_enabled = true;
  Scenario scenario(config);
  auto verdict = run_pipeline(scenario);
  EXPECT_EQ(verdict.location, InterceptorLocation::cpe);
  EXPECT_EQ(scenario.ground_truth().expected, InterceptorLocation::cpe);
}

TEST(ScenariosExtended, V6OnlyHomeStillLocalizesViaV4CpeAddress) {
  // v6-only interception: the pipeline falls back to the v6 family for the
  // comparison queries but still reaches a verdict.
  ScenarioConfig config;
  config.home_ipv6 = true;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.intercept_all_port53 = false;
  config.isp_policy.target_actions_v6[PublicResolverKind::google] = isp::TargetAction::divert;
  config.isp_policy.scoped_answers_bogons = true;
  Scenario scenario(config);
  auto verdict = run_pipeline(scenario);
  EXPECT_TRUE(verdict.intercepted());
  EXPECT_TRUE(verdict.cpe_check.has_value());
  EXPECT_FALSE(verdict.cpe_check->cpe_is_interceptor);
  // The scoped v4 bogon-answering rule localizes it within the ISP.
  EXPECT_EQ(verdict.location, InterceptorLocation::isp);
}

TEST(ScenariosExtended, DotInterceptingCpe) {
  // Build a CPE that also DNATs port 853 and verify the DoT prober sees the
  // opportunistic hijack at the home-router level.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::intercept_dnsmasq;
  Scenario scenario(config);
  auto& handles = scenario.cpe_handles();
  simnet::DnatRule dot_rule;
  dot_rule.in_port = handles.lan_port;
  dot_rule.match_dport = netbase::kDotPort;
  dot_rule.new_dst_v4 = *netbase::IpAddress::parse("192.168.1.1");
  handles.nat->add_dnat_rule(dot_rule);
  // The forwarder must serve 853 for the hijack to answer.
  resolvers::ForwarderConfig dot_config = handles.forwarder->config();
  dot_config.serve_dot = true;
  auto dot_forwarder = std::make_shared<resolvers::DnsForwarderApp>(dot_config);
  dot_forwarder->attach(*handles.device);

  core::DotProber prober;
  auto report = prober.run(scenario.transport());
  for (const auto& [kind, resolver_report] : report.per_resolver)
    EXPECT_EQ(resolver_report.finding, core::DotFinding::opportunistic_hijacked)
        << to_string(kind);
}

TEST(ScenariosExtended, LongitudinalFirmwareFlip) {
  // The paper's XB6 story is a firmware bug appearing in the field. Model a
  // probe measured before and after the DNAT rule appears: the verdict must
  // flip from clean to CPE within the same simulated world.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::xb6_healthy;
  Scenario scenario(config);

  auto before = run_pipeline(scenario);
  EXPECT_EQ(before.location, InterceptorLocation::not_intercepted);

  // The "firmware update": XDNS's DNAT redirect switches on.
  simnet::DnatRule rule;
  rule.in_port = scenario.cpe_handles().lan_port;
  rule.family = netbase::IpFamily::v4;
  rule.new_dst_v4 = *netbase::IpAddress::parse("192.168.1.1");
  scenario.cpe_handles().nat->add_dnat_rule(rule);

  auto after = run_pipeline(scenario);
  EXPECT_EQ(after.location, InterceptorLocation::cpe);
  ASSERT_TRUE(after.cpe_check.has_value());
  EXPECT_EQ(after.cpe_check->cpe.txt->substr(0, 7), "dnsmasq");  // XDNS string
}

TEST(ScenariosExtended, NxdomainChaosCpeBehindScopedIsp) {
  // Probe-11992 variant: chaos-NXDOMAIN CPE, ISP intercepts only Google,
  // proxy answers bogons -> detection scoped, not CPE, within ISP.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::benign_open_chaos_nxdomain;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.intercept_all_port53 = false;
  config.isp_policy.target_actions[PublicResolverKind::google] = isp::TargetAction::divert;
  config.isp_policy.scoped_answers_bogons = true;
  Scenario scenario(config);
  auto verdict = run_pipeline(scenario);
  ASSERT_TRUE(verdict.cpe_check.has_value());
  EXPECT_EQ(verdict.cpe_check->cpe.display, "NXDOMAIN");
  EXPECT_FALSE(verdict.cpe_check->cpe_is_interceptor);
  EXPECT_EQ(verdict.location, InterceptorLocation::isp);
}

TEST(ScenariosExtended, ExternalInterceptorWithIspResolverUser) {
  // A client already using its ISP resolver via the CPE forwarder: the
  // transit interceptor never sees those flows (they stay inside the AS),
  // but the location queries to public resolvers are still diverted.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::benign_open_dnsmasq;
  config.external_interceptor = true;
  Scenario scenario(config);
  auto verdict = run_pipeline(scenario);
  EXPECT_TRUE(verdict.detection.all_four_intercepted(netbase::IpFamily::v4));
  EXPECT_EQ(verdict.location, InterceptorLocation::unknown);
  // And an ordinary resolution through the CPE forwarder still works.
  auto query = dnswire::make_query(0x42, *dnswire::DnsName::parse("example.com"),
                                   dnswire::RecordType::A);
  auto result = scenario.transport().query(
      {*netbase::IpAddress::parse("192.168.1.1"), netbase::kDnsPort}, query);
  ASSERT_TRUE(result.answered());
  EXPECT_TRUE(result.response->first_address().has_value());
}

}  // namespace
}  // namespace dnslocate

#include "atlas/longitudinal.h"

namespace dnslocate {
namespace {

TEST(Longitudinal, DetectsTheFirmwareFlipAndTheFix) {
  // Five rounds: clean, clean, bug appears, intercepted, bug fixed.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::xb6_healthy;
  Scenario scenario(config);

  auto rounds = atlas::run_longitudinal(
      scenario, 5, [](Scenario& world, std::size_t completed) {
        if (completed == 1) {
          // Firmware update enables the XDNS redirect.
          simnet::DnatRule rule;
          rule.in_port = world.cpe_handles().lan_port;
          rule.family = netbase::IpFamily::v4;
          rule.new_dst_v4 = *netbase::IpAddress::parse("192.168.1.1");
          world.cpe_handles().nat->add_dnat_rule(rule);
        }
        // (A "fix" would need rule removal; rounds 3-4 stay intercepted.)
      });

  ASSERT_EQ(rounds.size(), 5u);
  EXPECT_EQ(rounds[0].verdict.location, InterceptorLocation::not_intercepted);
  EXPECT_EQ(rounds[1].verdict.location, InterceptorLocation::not_intercepted);
  EXPECT_EQ(rounds[2].verdict.location, InterceptorLocation::cpe);
  EXPECT_EQ(rounds[4].verdict.location, InterceptorLocation::cpe);
  auto points = atlas::change_points(rounds);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], 2u);
  EXPECT_FALSE(rounds[0].changed);
  EXPECT_TRUE(rounds[2].changed);
  EXPECT_FALSE(rounds[3].changed);
}

TEST(Longitudinal, StableWorldNeverChanges) {
  ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  Scenario scenario(config);
  auto rounds = atlas::run_longitudinal(scenario, 3);
  EXPECT_TRUE(atlas::change_points(rounds).empty());
  for (const auto& entry : rounds)
    EXPECT_EQ(entry.verdict.location, InterceptorLocation::isp);
}

}  // namespace
}  // namespace dnslocate
