// Satellite #3 — the daemon's crash story, end to end: start dnslocated as
// a real child process, submit a paced fleet, `kill -9` it mid-run, start a
// fresh daemon on the same state directory, and assert the resumed
// MeasurementRun is byte-identical to an uninterrupted in-process run of
// the same plan. Also exercises the SIGTERM clean-drain exit path.
//
// The daemon binary's path arrives via the DNSLOCATED_BIN compile
// definition (tests/CMakeLists.txt points it at the built target).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "atlas/fleet_json.h"
#include "atlas/measurement.h"
#include "report/results_io.h"
#include "service_test_util.h"

namespace dnslocate {
namespace {

using testutil::http_request;
using testutil::make_scratch_dir;
using testutil::wait_for_port_file;

// 300 paced probes ≈ seconds of runtime: long enough to kill mid-run with
// dozens of records journaled, short enough for CI.
constexpr const char* kPlan =
    R"({"seed": 7, "tenant": "restart", "pace_ms": 15, "ipv6_fraction": 0.4, "orgs": [
         {"org": "RestartNet", "asn": 64730, "country": "US", "probes": 240,
          "cpe_xb6": 4, "isp_allfour": 2},
         {"org": "SideNet", "asn": 64731, "country": "DE", "probes": 60,
          "one_allowed": 2}]})";

pid_t spawn_daemon(const std::string& state_dir, const std::string& port_file) {
  // Unlink before forking so wait_for_port_file can never read a previous
  // daemon's port.
  ::unlink(port_file.c_str());
  pid_t pid = fork();
  if (pid == 0) {
    execl(DNSLOCATED_BIN, DNSLOCATED_BIN, "--state-dir", state_dir.c_str(), "--port-file",
          port_file.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  return pid;
}

std::size_t probes_done(std::uint16_t port, const std::string& id) {
  auto status = http_request(port, "GET", "/v1/fleets/" + id);
  if (!status.ok) return 0;
  const std::string needle = "\"probes_done\":";
  std::size_t pos = status.body.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(status.body.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(ServiceRestart, Kill9MidRunThenResumeIsByteIdenticalToUninterrupted) {
  const std::string state_dir = make_scratch_dir("svc-kill9");
  const std::string port_file = state_dir + "/port";

  // --- first daemon: submit, let it journal some records, kill -9 ---
  pid_t first = spawn_daemon(state_dir, port_file);
  ASSERT_GT(first, 0);
  std::uint16_t port = wait_for_port_file(port_file);
  ASSERT_GT(port, 0) << "daemon never wrote its port file";

  auto submitted = http_request(port, "POST", "/v1/fleets", kPlan);
  ASSERT_TRUE(submitted.ok);
  ASSERT_EQ(submitted.status, 202) << submitted.body;
  const std::string id = "run-000001";
  ASSERT_NE(submitted.body.find(id), std::string::npos);

  // Wait until well past one journal batch (32 records) so the resumed run
  // genuinely reuses journaled work instead of re-running everything.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::size_t done = 0;
  while (std::chrono::steady_clock::now() < deadline && done < 60) {
    done = probes_done(port, id);
    if (done < 60) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_GE(done, 60u) << "fleet never reached the kill point";
  ASSERT_EQ(kill(first, SIGKILL), 0);
  int wait_status = 0;
  ASSERT_EQ(waitpid(first, &wait_status, 0), first);
  ASSERT_TRUE(WIFSIGNALED(wait_status));

  // --- second daemon: same state dir; must recover and finish the run ---
  pid_t second = spawn_daemon(state_dir, port_file);
  ASSERT_GT(second, 0);
  port = wait_for_port_file(port_file);
  ASSERT_GT(port, 0);

  auto health = http_request(port, "GET", "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_NE(health.body.find("\"recovered_runs\":1"), std::string::npos) << health.body;

  bool completed = false;
  const auto resume_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < resume_deadline && !completed) {
    auto status = http_request(port, "GET", "/v1/fleets/" + id);
    if (status.ok) {
      EXPECT_NE(status.body.find("\"recovered\":true"), std::string::npos) << status.body;
      completed = status.body.find("\"state\":\"completed\"") != std::string::npos;
    }
    if (!completed) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_TRUE(completed) << "recovered run never completed";

  auto records = http_request(port, "GET", "/v1/fleets/" + id + "/records");
  ASSERT_TRUE(records.ok);
  ASSERT_EQ(records.status, 200);

  // The heart of the test: kill -9 + restart + resume produced exactly the
  // bytes an uninterrupted run produces (run_to_jsonl is wall-clock-free;
  // the daemon runs fleets with strip_raw_responses=true, threads=1).
  auto parsed = atlas::fleet_from_json(kPlan);
  ASSERT_TRUE(parsed.ok());
  atlas::MeasurementOptions options;
  options.strip_raw_responses = true;
  options.threads = 1;
  const std::string uninterrupted = report::run_to_jsonl(atlas::run_fleet(parsed.generate(), options));
  EXPECT_EQ(records.body, uninterrupted);

  // The verdict stream saw every probe exactly once too.
  auto verdicts = http_request(port, "GET", "/v1/fleets/" + id + "/verdicts");
  ASSERT_TRUE(verdicts.ok);
  std::size_t lines = 0;
  for (char c : verdicts.body) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 300u);

  // --- SIGTERM: clean drain, exit 0 ---
  ASSERT_EQ(kill(second, SIGTERM), 0);
  ASSERT_EQ(waitpid(second, &wait_status, 0), second);
  ASSERT_TRUE(WIFEXITED(wait_status));
  EXPECT_EQ(WEXITSTATUS(wait_status), 0);
}

}  // namespace
}  // namespace dnslocate
