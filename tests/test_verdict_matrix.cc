// Parameterized verdict matrix: every (CPE style × ISP policy) combination
// in a grid, asserting the pipeline's verdict equals the scenario's ground
// truth everywhere outside the single documented §6 limitation. This is the
// property the whole reproduction rests on, swept exhaustively.
#include <gtest/gtest.h>

#include "atlas/scenario.h"

namespace dnslocate {
namespace {

using atlas::CpeStyle;
using atlas::Scenario;
using atlas::ScenarioConfig;
using core::InterceptorLocation;
using resolvers::PublicResolverKind;

enum class IspFlavor {
  none,
  allfour,           // catch-all divert, answers bogons
  allfour_nobogon,   // catch-all divert, discards bogons
  blocker,           // catch-all divert_block
  scoped_bogon,      // Google only, proxy answers bogons
  scoped_silent,     // Google only, bogons die normally
  one_allowed,       // catch-all except Quad9
};

const char* isp_name(IspFlavor flavor) {
  switch (flavor) {
    case IspFlavor::none: return "none";
    case IspFlavor::allfour: return "allfour";
    case IspFlavor::allfour_nobogon: return "allfour_nobogon";
    case IspFlavor::blocker: return "blocker";
    case IspFlavor::scoped_bogon: return "scoped_bogon";
    case IspFlavor::scoped_silent: return "scoped_silent";
    case IspFlavor::one_allowed: return "one_allowed";
  }
  return "?";
}

isp::IspPolicy make_policy(IspFlavor flavor) {
  isp::IspPolicy policy;
  switch (flavor) {
    case IspFlavor::none:
      break;
    case IspFlavor::allfour:
      policy.middlebox_enabled = true;
      break;
    case IspFlavor::allfour_nobogon:
      policy.middlebox_enabled = true;
      policy.ignore_bogon_queries = true;
      break;
    case IspFlavor::blocker:
      policy.middlebox_enabled = true;
      policy.default_action = isp::TargetAction::divert_block;
      break;
    case IspFlavor::scoped_bogon:
      policy.middlebox_enabled = true;
      policy.intercept_all_port53 = false;
      policy.target_actions[PublicResolverKind::google] = isp::TargetAction::divert;
      policy.scoped_answers_bogons = true;
      break;
    case IspFlavor::scoped_silent:
      policy.middlebox_enabled = true;
      policy.intercept_all_port53 = false;
      policy.target_actions[PublicResolverKind::google] = isp::TargetAction::divert;
      break;
    case IspFlavor::one_allowed:
      policy.middlebox_enabled = true;
      policy.target_actions[PublicResolverKind::quad9] = isp::TargetAction::pass;
      break;
  }
  return policy;
}

struct MatrixCase {
  CpeStyle::Kind cpe;
  IspFlavor isp;
};

/// The grid cells where the technique is *documented* to misattribute
/// (§6): a CHAOS-forwarding open-port CPE behind an interceptor that
/// diverts to the SAME resolver the CPE forwards to. A blocking middlebox
/// escapes the trap — its filtering resolver's CHAOS rcode differs from the
/// upstream resolver's string, so the comparison correctly fails.
bool is_known_limitation(const MatrixCase& c) {
  return c.cpe == CpeStyle::Kind::benign_open_chaos_forwarder &&
         c.isp != IspFlavor::none && c.isp != IspFlavor::blocker;
}

struct VerdictMatrix : ::testing::TestWithParam<MatrixCase> {};

TEST_P(VerdictMatrix, VerdictMatchesGroundTruth) {
  ScenarioConfig config;
  config.cpe.kind = GetParam().cpe;
  config.isp_policy = make_policy(GetParam().isp);
  Scenario scenario(config);
  core::LocalizationPipeline pipeline(scenario.pipeline_config());
  auto verdict = pipeline.run(scenario.transport());

  if (is_known_limitation(GetParam())) {
    // The documented failure mode: attributed to the CPE instead.
    EXPECT_EQ(verdict.location, InterceptorLocation::cpe)
        << "cpe=" << static_cast<int>(GetParam().cpe) << " isp=" << isp_name(GetParam().isp);
    return;
  }
  EXPECT_EQ(verdict.location, scenario.ground_truth().expected)
      << "cpe=" << static_cast<int>(GetParam().cpe) << " isp=" << isp_name(GetParam().isp);

  // Interception evidence consistency: a CPE verdict always carries the
  // matching version.bind strings; an ISP verdict always carries bogon
  // evidence.
  if (verdict.location == InterceptorLocation::cpe) {
    ASSERT_TRUE(verdict.cpe_check.has_value());
    EXPECT_TRUE(verdict.cpe_check->cpe_is_interceptor);
  }
  if (verdict.location == InterceptorLocation::isp) {
    ASSERT_TRUE(verdict.bogon.has_value());
    EXPECT_TRUE(verdict.bogon->within_isp());
  }
}

std::vector<MatrixCase> matrix() {
  std::vector<MatrixCase> cases;
  for (CpeStyle::Kind cpe :
       {CpeStyle::Kind::benign_closed, CpeStyle::Kind::benign_open_dnsmasq,
        CpeStyle::Kind::benign_open_chaos_nxdomain, CpeStyle::Kind::benign_open_chaos_forwarder,
        CpeStyle::Kind::xb6_healthy, CpeStyle::Kind::xb6_buggy, CpeStyle::Kind::pihole,
        CpeStyle::Kind::intercept_dnsmasq, CpeStyle::Kind::intercept_unbound,
        CpeStyle::Kind::intercept_to_resolver}) {
    for (IspFlavor isp :
         {IspFlavor::none, IspFlavor::allfour, IspFlavor::allfour_nobogon, IspFlavor::blocker,
          IspFlavor::scoped_bogon, IspFlavor::scoped_silent, IspFlavor::one_allowed}) {
      cases.push_back({cpe, isp});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  return "cpe" + std::to_string(static_cast<int>(info.param.cpe)) + "_" +
         isp_name(info.param.isp);
}

INSTANTIATE_TEST_SUITE_P(Grid, VerdictMatrix, ::testing::ValuesIn(matrix()), case_name);

}  // namespace
}  // namespace dnslocate
