// Full-pipeline integration over REAL sockets: loopback DNS servers play
// the four public resolvers (or an interceptor), MappedTransport routes the
// well-known addresses to them, and the unmodified LocalizationPipeline
// runs end-to-end through the kernel's UDP stack.
#include <gtest/gtest.h>

#include "core/describe.h"
#include "dnswire/debug_queries.h"
#include "core/mapped_transport.h"
#include "core/pipeline.h"
#include "sockets/loopback_server.h"
#include "sockets/udp_transport.h"

namespace dnslocate {
namespace {

using resolvers::PublicResolverKind;

core::QueryOptions fast_query() {
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(400);
  return options;
}

core::PipelineConfig fast_config() {
  core::PipelineConfig config;
  config.detection.query = fast_query();
  config.detection.use_secondary_addresses = false;  // halve the socket traffic
  config.detection.test_v6 = false;
  config.cpe_check.query = fast_query();
  config.bogon.query = fast_query();
  config.bogon.test_v6 = false;
  config.transparency.query = fast_query();
  return config;
}

/// Map every public resolver's primary v4 address to `target`.
void map_all_resolvers(core::MappedTransport& transport, const netbase::Endpoint& target) {
  for (PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    transport.map_address(spec.service_v4[0], target);
  }
}

TEST(LoopbackPipeline, CleanWorldOverRealSockets) {
  // Four loopback servers, each running the right public-resolver
  // personality for its address.
  std::vector<std::unique_ptr<sockets::LoopbackDnsServer>> servers;
  sockets::UdpTransport udp;
  core::MappedTransport transport(udp);
  for (PublicResolverKind kind : resolvers::all_public_resolvers()) {
    auto behavior = std::make_shared<resolvers::PublicResolverBehavior>(kind, 0, 0);
    servers.push_back(std::make_unique<sockets::LoopbackDnsServer>(behavior));
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    transport.map_address(spec.service_v4[0], servers.back()->endpoint());
  }

  core::LocalizationPipeline pipeline(fast_config());
  auto verdict = pipeline.run(transport);
  EXPECT_EQ(verdict.location, core::InterceptorLocation::not_intercepted)
      << core::describe(verdict);
  for (const auto& probe : verdict.detection.probes)
    EXPECT_EQ(probe.verdict, core::LocationVerdict::standard) << probe.display;
}

TEST(LoopbackPipeline, InterceptedWorldOverRealSockets) {
  // One loopback server plays the interceptor's alternate resolver; every
  // public-resolver address and the CPE's public IP land on it — the
  // socket-level equivalent of CPE DNAT. The bogon address is also mapped
  // (the interceptor answers unroutable destinations), so the §3.2 + §3.3
  // evidence comes out exactly as for a DNAT box.
  resolvers::ResolverConfig alternate;
  alternate.software = resolvers::dnsmasq("2.78");
  alternate.egress_v4 = *netbase::IpAddress::parse("127.0.0.1");
  sockets::LoopbackDnsServer interceptor(
      std::make_shared<resolvers::ResolverBehavior>(alternate));

  sockets::UdpTransport udp;
  core::MappedTransport transport(udp);
  map_all_resolvers(transport, interceptor.endpoint());
  auto cpe_ip = *netbase::IpAddress::parse("203.0.113.7");
  transport.map_address(cpe_ip, interceptor.endpoint());
  transport.map_address(netbase::BogonCatalog::default_probe_v4(), interceptor.endpoint());

  core::PipelineConfig config = fast_config();
  config.cpe_public_ip = cpe_ip;
  core::LocalizationPipeline pipeline(config);
  auto verdict = pipeline.run(transport);

  EXPECT_TRUE(verdict.detection.all_four_intercepted(netbase::IpFamily::v4));
  ASSERT_TRUE(verdict.cpe_check.has_value());
  EXPECT_TRUE(verdict.cpe_check->cpe_is_interceptor);
  EXPECT_EQ(*verdict.cpe_check->cpe.txt, "dnsmasq-2.78");
  EXPECT_EQ(verdict.location, core::InterceptorLocation::cpe);
  EXPECT_GT(interceptor.queries_served(), 8u);
}

TEST(LoopbackPipeline, IspStyleInterceptionOverRealSockets) {
  // The alternate resolver answers the resolver addresses and the bogon,
  // but NOT the CPE address (port 53 closed on the home router): verdict
  // must be "within ISP".
  resolvers::ResolverConfig alternate;
  alternate.software = resolvers::unbound("1.13.1");
  alternate.egress_v4 = *netbase::IpAddress::parse("127.0.0.1");
  sockets::LoopbackDnsServer interceptor(
      std::make_shared<resolvers::ResolverBehavior>(alternate));

  sockets::UdpTransport udp;
  core::MappedTransport transport(udp);
  map_all_resolvers(transport, interceptor.endpoint());
  transport.map_address(netbase::BogonCatalog::default_probe_v4(), interceptor.endpoint());

  core::PipelineConfig config = fast_config();
  config.cpe_public_ip = *netbase::IpAddress::parse("203.0.113.7");  // unmapped: timeout
  core::LocalizationPipeline pipeline(config);
  auto verdict = pipeline.run(transport);

  ASSERT_TRUE(verdict.cpe_check.has_value());
  EXPECT_FALSE(verdict.cpe_check->cpe_is_interceptor);
  EXPECT_FALSE(verdict.cpe_check->cpe.answered);
  ASSERT_TRUE(verdict.bogon.has_value());
  EXPECT_TRUE(verdict.bogon->within_isp());
  EXPECT_EQ(verdict.location, core::InterceptorLocation::isp);
}

TEST(LoopbackPipeline, HermeticPolicySilencesUnmapped) {
  sockets::UdpTransport udp;
  core::MappedTransport transport(udp);  // nothing mapped, timeout policy
  auto query = dnswire::make_query(1, *dnswire::DnsName::parse("example.com"),
                                   dnswire::RecordType::A);
  auto result = transport.query({*netbase::IpAddress::parse("8.8.8.8"), 53}, query,
                                fast_query());
  EXPECT_FALSE(result.answered());
}

TEST(LoopbackPipeline, ExactMappingBeatsAddressMapping) {
  resolvers::ResolverConfig config_a;
  config_a.software = resolvers::custom_string("server-a");
  sockets::LoopbackDnsServer server_a(
      std::make_shared<resolvers::ResolverBehavior>(config_a));
  resolvers::ResolverConfig config_b;
  config_b.software = resolvers::custom_string("server-b");
  sockets::LoopbackDnsServer server_b(
      std::make_shared<resolvers::ResolverBehavior>(config_b));

  sockets::UdpTransport udp;
  core::MappedTransport transport(udp);
  auto addr = *netbase::IpAddress::parse("9.9.9.9");
  transport.map_address(addr, server_a.endpoint());
  transport.map(netbase::Endpoint{addr, 5353}, server_b.endpoint());

  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  auto via_53 = transport.query({addr, 53}, query, fast_query());
  auto via_5353 = transport.query({addr, 5353}, query, fast_query());
  ASSERT_TRUE(via_53.answered());
  ASSERT_TRUE(via_5353.answered());
  EXPECT_EQ(via_53.response->first_txt(), "server-a");
  EXPECT_EQ(via_5353.response->first_txt(), "server-b");
}

}  // namespace
}  // namespace dnslocate
