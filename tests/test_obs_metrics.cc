// The metrics registry: counters sum exactly under contention, the
// enable flag really gates recording, and histogram bucketing/merging is
// deterministic.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"

using namespace dnslocate::obs;

namespace {

/// Every test starts from a disabled, zeroed registry.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disable();
    registry().reset();
  }
  void TearDown() override {
    disable();
    registry().reset();
  }
};

TEST_F(ObsMetricsTest, ConcurrentCounterIncrementsSumExactly) {
  Config config;
  config.metrics = true;
  enable(config);
  Counter& counter = registry().counter("test_concurrent_total");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  for (auto& thread : pool) thread.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST_F(ObsMetricsTest, DisabledCounterRecordsNothing) {
  Counter& counter = registry().counter("test_disabled_total");
  counter.add(5);
  EXPECT_EQ(counter.value(), 0u);
  counter.add_always(5);  // the always path ignores the flag
  EXPECT_EQ(counter.value(), 5u);
}

TEST_F(ObsMetricsTest, GaugeSetAndAdd) {
  Config config;
  config.metrics = true;
  enable(config);
  Gauge& gauge = registry().gauge("test_gauge");
  gauge.set(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.add(-50);
  EXPECT_EQ(gauge.value(), -8);
}

TEST_F(ObsMetricsTest, HistogramBucketBoundaries) {
  // Values below 16 land in unit buckets...
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower_bound(v), v);
  }
  // ...and above, each bucket's lower bound maps back to its own index,
  // and every value maps to a bucket whose range contains it.
  for (std::size_t index = 16; index < 600; ++index) {
    std::uint64_t lower = Histogram::bucket_lower_bound(index);
    EXPECT_EQ(Histogram::bucket_index(lower), index) << "lower bound of " << index;
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower_bound(index + 1) - 1), index)
        << "last value of " << index;
  }
  // Relative error is bounded: bucket width / lower bound <= 1/16.
  std::uint64_t lower = Histogram::bucket_lower_bound(300);
  std::uint64_t width = Histogram::bucket_lower_bound(301) - lower;
  EXPECT_LE(width * 16, lower + 15);
}

TEST_F(ObsMetricsTest, HistogramMergeIsAssociativeAndDeterministic) {
  Histogram a("a"), b("b"), c("c");
  for (std::uint64_t v : {1ull, 17ull, 1000ull, 123456ull}) a.record_always(v);
  for (std::uint64_t v : {2ull, 17ull, 99999ull}) b.record_always(v);
  for (std::uint64_t v : {1ull, 1ull, 7'000'000'000ull}) c.record_always(v);

  // (a + b) + c == a + (b + c), element for element.
  Histogram::Snapshot ab = a.snapshot();
  ab.merge(b.snapshot());
  Histogram::Snapshot ab_c = ab;
  ab_c.merge(c.snapshot());

  Histogram::Snapshot bc = b.snapshot();
  bc.merge(c.snapshot());
  Histogram::Snapshot a_bc = a.snapshot();
  a_bc.merge(bc);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c.count, 10u);
  EXPECT_EQ(ab_c.sum, 1 + 17 + 1000 + 123456 + 2 + 17 + 99999ull + 1 + 1 + 7'000'000'000ull);

  // Merging is commutative too.
  Histogram::Snapshot ba = b.snapshot();
  ba.merge(a.snapshot());
  EXPECT_EQ(ab, ba);
}

TEST_F(ObsMetricsTest, HistogramConcurrentRecordCountsExactly) {
  Config config;
  config.metrics = true;
  enable(config);
  Histogram& hist = registry().histogram("test_hist_us");

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        hist.record(static_cast<std::uint64_t>(t) * 1000 + (i % 97));
    });
  for (auto& thread : pool) thread.join();

  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto& [index, count] : hist.snapshot().buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST_F(ObsMetricsTest, SnapshotIsNameOrderedAndResetZeroes) {
  Config config;
  config.metrics = true;
  enable(config);
  registry().counter("zz_total").add(1);
  registry().counter("aa_total").add(2);
  registry().gauge("mm_gauge").set(3);

  MetricsSnapshot snapshot = registry().snapshot();
  ASSERT_GE(snapshot.counters.size(), 2u);
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i)
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);

  // Reset zeroes values but keeps handles (and names) alive.
  Counter& held = registry().counter("aa_total");
  registry().reset();
  EXPECT_EQ(held.value(), 0u);
  held.add(7);
  EXPECT_EQ(registry().counter("aa_total").value(), 7u);
}

}  // namespace
