// The batch layer's contracts: QueryBatch slot bookkeeping, the
// BlockingBatchAdapter's exact-sequential-loop semantics, the seeded
// transaction-ID streams the stage builders draw from, and the timer wheel
// that drives the async engine's deadlines.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "core/detector.h"
#include "core/query_batch.h"
#include "dnswire/debug_queries.h"
#include "sockets/timer_wheel.h"

namespace dnslocate {
namespace {

using namespace std::chrono_literals;

/// Answers every query instantly by echoing it back, recording the call
/// order — a microscope for what an engine actually sends, and when.
class RecordingTransport final : public core::QueryTransport {
 public:
  core::QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                          const core::QueryOptions& options) override {
    (void)options;
    ids.push_back(message.id);
    servers.push_back(server);
    core::QueryResult result;
    result.retry.attempts = 1;
    if (answer) {
      result.status = core::QueryResult::Status::answered;
      result.response = message;  // an echo is enough for slot checks
      result.rtt = std::chrono::microseconds(ids.size());
    } else {
      result.retry.timeouts = 1;
    }
    record_telemetry(result);
    return result;
  }

  [[nodiscard]] bool supports_family(netbase::IpFamily) const override { return true; }

  bool answer = true;
  std::vector<std::uint16_t> ids;
  std::vector<netbase::Endpoint> servers;
};

netbase::Endpoint endpoint(std::uint16_t port) {
  return {*netbase::IpAddress::parse("192.0.2.1"), port};
}

TEST(QueryBatch, SlotsCorrelateSpecsAndResultsByIndex) {
  core::QueryBatch batch;
  EXPECT_TRUE(batch.empty());

  auto first = dnswire::make_query(0x1111, *dnswire::DnsName::parse("a.example"),
                                   dnswire::RecordType::A);
  auto second = dnswire::make_query(0x2222, *dnswire::DnsName::parse("b.example"),
                                    dnswire::RecordType::A);
  EXPECT_EQ(batch.add(endpoint(53), first), 0u);
  EXPECT_EQ(batch.add(endpoint(5353), second), 1u);
  ASSERT_EQ(batch.size(), 2u);

  EXPECT_EQ(batch.spec(0).message.id, 0x1111);
  EXPECT_EQ(batch.spec(1).message.id, 0x2222);
  EXPECT_EQ(batch.spec(1).server.port, 5353);

  // Fresh slots report timeouts until an engine fills them.
  EXPECT_FALSE(batch.result(0).answered());
  batch.result(1).status = core::QueryResult::Status::answered;
  EXPECT_TRUE(batch.result(1).answered());
  EXPECT_FALSE(batch.result(0).answered());

  EXPECT_FALSE(batch.drained());
  batch.mark_drained();
  EXPECT_TRUE(batch.drained());
}

TEST(QueryBatch, BlockingAdapterRunsInSubmissionOrderAndFillsEverySlot) {
  RecordingTransport transport;
  core::BlockingBatchAdapter adapter(transport);
  EXPECT_EQ(&adapter.transport(), static_cast<core::QueryTransport*>(&transport));

  core::QueryBatch batch;
  for (std::uint16_t i = 0; i < 5; ++i)
    batch.add(endpoint(static_cast<std::uint16_t>(1000 + i)),
              dnswire::make_query(static_cast<std::uint16_t>(0x4000 + i),
                                  *dnswire::DnsName::parse("seq.example"),
                                  dnswire::RecordType::A));
  adapter.run(batch);

  // Exactly the historical loop: one query() per spec, in submission order.
  ASSERT_EQ(transport.ids.size(), 5u);
  for (std::uint16_t i = 0; i < 5; ++i) {
    EXPECT_EQ(transport.ids[i], 0x4000 + i);
    EXPECT_EQ(transport.servers[i].port, 1000 + i);
    ASSERT_TRUE(batch.result(i).answered());
    EXPECT_EQ(batch.result(i).response->id, 0x4000 + i);
  }
  EXPECT_EQ(transport.telemetry().queries, 5u);
  EXPECT_EQ(transport.telemetry().answered, 5u);
}

TEST(QueryBatch, BlockingAdapterNeverMarksDrained) {
  // Per-query cancellation semantics belong to the inner transport; the
  // adapter reports every slot as executed, even when all of them time out
  // under a cancelled token — that is what the pre-batch loop did.
  RecordingTransport transport;
  transport.answer = false;
  core::BlockingBatchAdapter adapter(transport);

  core::QueryOptions cancelled;
  cancelled.cancel = core::CancelToken::manual();
  cancelled.cancel.cancel();
  core::QueryBatch batch;
  batch.add(endpoint(53),
            dnswire::make_query(1, *dnswire::DnsName::parse("x.example"),
                                dnswire::RecordType::A),
            cancelled);
  batch.add(endpoint(53),
            dnswire::make_query(2, *dnswire::DnsName::parse("y.example"),
                                dnswire::RecordType::A),
            cancelled);
  adapter.run(batch);

  EXPECT_FALSE(batch.drained());
  EXPECT_EQ(transport.ids.size(), 2u);  // both were handed to the transport
  EXPECT_FALSE(batch.result(0).answered());
  EXPECT_FALSE(batch.result(1).answered());
}

TEST(QueryBatch, RandomQueryIdStreamReplaysFromSeed) {
  simnet::Rng a(0xfeedULL);
  simnet::Rng b(0xfeedULL);
  simnet::Rng c(0xbeefULL);
  std::vector<std::uint16_t> from_a, from_b, from_c;
  for (int i = 0; i < 16; ++i) {
    from_a.push_back(core::random_query_id(a));
    from_b.push_back(core::random_query_id(b));
    from_c.push_back(core::random_query_id(c));
  }
  EXPECT_EQ(from_a, from_b);   // same seed -> bit-identical replay
  EXPECT_NE(from_a, from_c);   // different seed -> different stream
}

TEST(QueryBatch, DetectorIdsAreSeededUnpredictableAndReplayable) {
  // The stage builder draws every transaction ID from its configured seed:
  // two runs with the same seed put identical IDs on the wire; a different
  // seed shifts the whole stream (the paper's hard-to-spoof requirement,
  // without losing replayability).
  auto ids_with_seed = [](std::uint64_t id_seed) {
    core::InterceptionDetector::Config config;
    config.test_v6 = false;
    config.use_secondary_addresses = false;
    config.id_seed = id_seed;
    RecordingTransport transport;
    core::InterceptionDetector(config).run(transport);
    return transport.ids;
  };

  auto first = ids_with_seed(42);
  auto replay = ids_with_seed(42);
  auto other = ids_with_seed(43);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, replay);
  EXPECT_NE(first, other);
  // IDs within one run must not collide (demux would be ambiguous).
  for (std::size_t i = 0; i < first.size(); ++i)
    for (std::size_t j = i + 1; j < first.size(); ++j)
      EXPECT_NE(first[i], first[j]) << "slots " << i << " and " << j;
}

TEST(TimerWheel, OrdersDeadlinesAndDisarmsDueKeys) {
  sockets::TimerWheel wheel;
  EXPECT_TRUE(wheel.empty());
  EXPECT_FALSE(wheel.next_deadline().has_value());

  auto t0 = sockets::TimerWheel::Clock::now();
  wheel.schedule(1, t0 + 30ms);
  wheel.schedule(2, t0 + 120ms);
  EXPECT_EQ(wheel.size(), 2u);
  EXPECT_EQ(*wheel.next_deadline(), t0 + 30ms);

  auto due = wheel.advance(t0 + 50ms);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 1u);
  EXPECT_EQ(wheel.size(), 1u);  // due keys are disarmed on return
  EXPECT_EQ(*wheel.next_deadline(), t0 + 120ms);

  due = wheel.advance(t0 + 200ms);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 2u);
  EXPECT_TRUE(wheel.empty());
  EXPECT_TRUE(wheel.advance(t0 + 300ms).empty());
}

TEST(TimerWheel, RescheduleSupersedesAndStaleEntriesDieLazily) {
  sockets::TimerWheel wheel;
  auto t0 = sockets::TimerWheel::Clock::now();
  wheel.schedule(7, t0 + 100ms);
  wheel.schedule(7, t0 + 40ms);  // re-arm earlier: one live deadline per key
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_EQ(*wheel.next_deadline(), t0 + 40ms);

  auto due = wheel.advance(t0 + 60ms);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 7u);
  // The stale 100ms entry must not resurrect the key.
  EXPECT_TRUE(wheel.advance(t0 + 150ms).empty());
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, CancelRemovesTheKeyBeforeItFires) {
  sockets::TimerWheel wheel;
  auto t0 = sockets::TimerWheel::Clock::now();
  wheel.schedule(3, t0 + 20ms);
  wheel.schedule(4, t0 + 25ms);
  wheel.cancel(3);
  wheel.cancel(99);  // cancelling an unknown key is a no-op
  EXPECT_EQ(wheel.size(), 1u);

  auto due = wheel.advance(t0 + 80ms);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 4u);
}

}  // namespace
}  // namespace dnslocate
