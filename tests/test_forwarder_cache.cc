// Forwarder cache tests: hits, TTL aging and expiry, negative caching, LRU
// eviction, and the CH-class exclusion.
#include <gtest/gtest.h>

#include "dnswire/debug_queries.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "resolvers/forwarder.h"
#include "resolvers/resolver_behavior.h"
#include "resolvers/server_app.h"
#include "simnet/simulator.h"

namespace dnslocate::resolvers {
namespace {

netbase::IpAddress ip(const char* text) { return *netbase::IpAddress::parse(text); }
dnswire::DnsName name(const char* text) { return *dnswire::DnsName::parse(text); }

struct SinkApp : simnet::UdpApp {
  std::vector<simnet::UdpPacket> received;
  void on_datagram(simnet::Simulator&, simnet::Device&, const simnet::UdpPacket& p) override {
    received.push_back(p);
  }
  std::optional<dnswire::Message> message(std::size_t i) const {
    return dnswire::decode_message(received.at(i).payload);
  }
};

struct CacheWorld {
  simnet::Simulator sim{1};
  simnet::Device& client;
  simnet::Device& gateway;
  simnet::Device& upstream;
  std::unique_ptr<DnsForwarderApp> forwarder;
  std::shared_ptr<DnsServerApp> upstream_app;
  std::shared_ptr<ZoneStore> zones = std::make_shared<ZoneStore>();
  SinkApp client_app;
  std::uint16_t next_id = 1;

  explicit CacheWorld(std::size_t capacity = 150)
      : client(sim.add_device<simnet::Device>("client")),
        gateway(sim.add_device<simnet::Device>("gateway")),
        upstream(sim.add_device<simnet::Device>("upstream")) {
    gateway.set_forwarding(true);
    auto [c_up, gw_lan] = sim.connect(client, gateway);
    auto [gw_wan, up_down] = sim.connect(gateway, upstream);
    client.add_local_ip(ip("192.168.1.10"));
    client.set_default_route(c_up);
    gateway.add_local_ip(ip("192.168.1.1"));
    gateway.add_route(*netbase::Prefix::parse("192.168.1.0/24"), gw_lan);
    gateway.set_default_route(gw_wan);
    upstream.add_local_ip(ip("198.51.100.2"));
    upstream.set_default_route(up_down);

    zones->add(dnswire::make_a(name("a.example"), netbase::Ipv4Address(1, 1, 1, 10), 100));
    zones->add(dnswire::make_a(name("b.example"), netbase::Ipv4Address(1, 1, 1, 11), 100));
    zones->add(dnswire::make_a(name("c.example"), netbase::Ipv4Address(1, 1, 1, 12), 100));

    ForwarderConfig config;
    config.software = dnsmasq();
    config.upstream_v4 = netbase::Endpoint{ip("198.51.100.2"), 53};
    config.cache_enabled = true;
    config.cache_capacity = capacity;
    forwarder = std::make_unique<DnsForwarderApp>(config);
    forwarder->attach(gateway);

    ResolverConfig resolver_config;
    resolver_config.software = bind9();
    resolver_config.egress_v4 = ip("198.51.100.2");
    resolver_config.zones = zones;
    upstream_app =
        std::make_shared<DnsServerApp>(std::make_shared<ResolverBehavior>(resolver_config));
    upstream.bind_udp(53, upstream_app.get());
    client.bind_udp(5555, &client_app);
  }

  void query(const char* qname, dnswire::RecordClass klass = dnswire::RecordClass::IN) {
    auto message = dnswire::make_query(next_id++, name(qname), dnswire::RecordType::A, klass);
    simnet::UdpPacket p;
    p.src = ip("192.168.1.10");
    p.dst = ip("192.168.1.1");
    p.sport = 5555;
    p.dport = 53;
    p.payload = dnswire::encode_message(message);
    client.send_local(sim, p);
    sim.run_until_idle();
  }
};

TEST(ForwarderCache, SecondQueryIsServedFromCache) {
  CacheWorld world;
  world.query("a.example");
  world.query("a.example");
  EXPECT_EQ(world.forwarder->forwarded_upstream(), 1u);  // only the first
  EXPECT_EQ(world.forwarder->cache_hits(), 1u);
  EXPECT_EQ(world.upstream_app->queries_seen(), 1u);
  ASSERT_EQ(world.client_app.received.size(), 2u);
  // Both answers carry the same address.
  EXPECT_EQ(world.client_app.message(0)->first_address(),
            world.client_app.message(1)->first_address());
  // Ids match each client query, not the cached copy's.
  EXPECT_EQ(world.client_app.message(1)->id, 2);
}

TEST(ForwarderCache, TtlAgesWhileCached) {
  CacheWorld world;
  world.query("a.example");
  std::uint32_t fresh_ttl = world.client_app.message(0)->answers[0].ttl;
  // Let 40 simulated seconds pass before re-asking.
  world.sim.schedule(std::chrono::seconds(40), [] {});
  world.sim.run_until_idle();
  world.query("a.example");
  std::uint32_t aged_ttl = world.client_app.message(1)->answers[0].ttl;
  EXPECT_EQ(fresh_ttl, 100u);
  EXPECT_LE(aged_ttl, 60u);
  EXPECT_GT(aged_ttl, 0u);
}

TEST(ForwarderCache, ExpiredEntryGoesUpstreamAgain) {
  CacheWorld world;
  world.query("a.example");
  world.sim.schedule(std::chrono::seconds(150), [] {});  // > TTL 100
  world.sim.run_until_idle();
  world.query("a.example");
  EXPECT_EQ(world.forwarder->forwarded_upstream(), 2u);
  EXPECT_EQ(world.forwarder->cache_hits(), 0u);
}

TEST(ForwarderCache, NegativeAnswersAreCachedBriefly) {
  CacheWorld world;
  world.query("missing.example");
  world.query("missing.example");
  EXPECT_EQ(world.forwarder->forwarded_upstream(), 1u);
  EXPECT_EQ(world.client_app.message(1)->rcode(), dnswire::Rcode::NXDOMAIN);
}

TEST(ForwarderCache, ChaosQueriesBypassTheCache) {
  CacheWorld world;
  world.query("version.bind", dnswire::RecordClass::CH);
  world.query("version.bind", dnswire::RecordClass::CH);
  EXPECT_EQ(world.forwarder->cache_hits(), 0u);
  EXPECT_EQ(world.forwarder->cache_misses(), 0u);
  EXPECT_EQ(world.forwarder->chaos_answered(), 2u);
}

TEST(ForwarderCache, LruEvictsTheColdestEntry) {
  CacheWorld world(/*capacity=*/2);
  world.query("a.example");
  world.query("b.example");
  world.query("a.example");  // refresh a -> b becomes coldest
  world.query("c.example");  // evicts b
  EXPECT_EQ(world.forwarder->cache_size(), 2u);
  world.query("a.example");  // hit
  EXPECT_EQ(world.forwarder->cache_hits(), 2u);
  world.query("b.example");  // miss -> upstream again
  EXPECT_EQ(world.forwarder->forwarded_upstream(), 4u);  // a, b, c, b
}

TEST(ForwarderCache, CacheKeyIsCaseInsensitive) {
  CacheWorld world;
  world.query("a.example");
  world.query("A.EXAMPLE");
  EXPECT_EQ(world.forwarder->cache_hits(), 1u);
}

TEST(ForwarderCache, DisabledByDefault) {
  simnet::Simulator sim(1);
  ForwarderConfig config;
  EXPECT_FALSE(config.cache_enabled);
}

}  // namespace
}  // namespace dnslocate::resolvers
