// Unit tests: IPv6 parsing (RFC 4291) and canonical formatting (RFC 5952).
#include <gtest/gtest.h>

#include "netbase/ipv6.h"

namespace dnslocate::netbase {
namespace {

TEST(Ipv6Address, ParsesFullForm) {
  auto addr = Ipv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->hextet(0), 0x2001);
  EXPECT_EQ(addr->hextet(1), 0x0db8);
  EXPECT_EQ(addr->hextet(7), 0x0001);
}

/// (input, canonical output) pairs covering the RFC 5952 rules.
struct CanonicalCase {
  const char* input;
  const char* canonical;
};

struct Canonical6 : ::testing::TestWithParam<CanonicalCase> {};

TEST_P(Canonical6, ParseAndFormat) {
  auto addr = Ipv6Address::parse(GetParam().input);
  ASSERT_TRUE(addr.has_value()) << GetParam().input;
  EXPECT_EQ(addr->to_string(), GetParam().canonical);
  // Canonical form must reparse to the same address.
  auto reparsed = Ipv6Address::parse(addr->to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, *addr);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc5952, Canonical6,
    ::testing::Values(
        CanonicalCase{"2001:db8::1", "2001:db8::1"},
        CanonicalCase{"2001:DB8::1", "2001:db8::1"},                  // lowercase
        CanonicalCase{"::", "::"},                                    // all zero
        CanonicalCase{"::1", "::1"},                                  // loopback
        CanonicalCase{"1::", "1::"},                                  // trailing run
        CanonicalCase{"2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"},   // leftmost tie...
        CanonicalCase{"2001:0:0:1:0:0:0:1", "2001:0:0:1::1"},         // longest run wins
        CanonicalCase{"2001:db8:0:1:1:1:1:1", "2001:db8:0:1:1:1:1:1"},// single 0 not compressed
        CanonicalCase{"2606:4700:4700::1111", "2606:4700:4700::1111"},
        CanonicalCase{"2001:4860:4860::8888", "2001:4860:4860::8888"},
        CanonicalCase{"2620:fe::fe", "2620:fe::fe"},
        CanonicalCase{"100::9", "100::9"},
        CanonicalCase{"0:0:0:0:0:0:0:0", "::"},
        CanonicalCase{"fe80:0:0:0:0:0:0:1", "fe80::1"}));

TEST(Ipv6Address, ParsesEmbeddedV4) {
  auto addr = Ipv6Address::parse("::ffff:192.0.2.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_TRUE(addr->is_v4_mapped());
  EXPECT_EQ(addr->hextet(6), 0xc000);
  EXPECT_EQ(addr->hextet(7), 0x0201);
  EXPECT_EQ(*addr, Ipv6Address::mapped_v4(Ipv4Address(192, 0, 2, 1)));
}

TEST(Ipv6Address, ParsesFullFormWithEmbeddedV4) {
  auto addr = Ipv6Address::parse("64:ff9b:0:0:0:0:192.0.2.33");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->hextet(0), 0x64);
  EXPECT_EQ(addr->hextet(7), 0x0221);
}

struct BadV6 : ::testing::TestWithParam<const char*> {};

TEST_P(BadV6, Rejected) { EXPECT_FALSE(Ipv6Address::parse(GetParam()).has_value()); }

INSTANTIATE_TEST_SUITE_P(Malformed, BadV6,
                         ::testing::Values("", ":", ":::", "1:2:3:4:5:6:7",      // too few
                                           "1:2:3:4:5:6:7:8:9",                  // too many
                                           "1::2::3",                            // two ::
                                           "12345::", "g::1", "1:2:3:4:5:6:7:8::",
                                           "::1.2.3.256", "1.2.3.4",
                                           "2001:db8::1::"));

TEST(Ipv6Address, Classification) {
  EXPECT_TRUE(Ipv6Address::parse("::")->is_unspecified());
  EXPECT_TRUE(Ipv6Address::parse("::1")->is_loopback());
  EXPECT_TRUE(Ipv6Address::parse("fe80::1")->is_link_local());
  EXPECT_TRUE(Ipv6Address::parse("febf::1")->is_link_local());
  EXPECT_FALSE(Ipv6Address::parse("fec0::1")->is_link_local());
  EXPECT_TRUE(Ipv6Address::parse("fd00:1::1")->is_unique_local());
  EXPECT_TRUE(Ipv6Address::parse("fc00::1")->is_unique_local());
  EXPECT_TRUE(Ipv6Address::parse("ff02::1")->is_multicast());
  EXPECT_TRUE(Ipv6Address::parse("2001:db8::7")->is_documentation());
  EXPECT_TRUE(Ipv6Address::parse("100::9")->is_discard_only());
  EXPECT_FALSE(Ipv6Address::parse("100:0:0:1::9")->is_discard_only());
}

TEST(Ipv6Address, BogonUnion) {
  const char* bogons[] = {"::", "::1",      "fe80::1", "fd00::1", "ff02::1",
                          "2001:db8::1", "100::9",  "::ffff:10.0.0.1"};
  for (const char* text : bogons)
    EXPECT_TRUE(Ipv6Address::parse(text)->is_bogon()) << text;

  const char* routable[] = {"2606:4700:4700::1111", "2001:4860:4860::8888", "2620:fe::fe",
                            "2a00:1450::1", "2001:db7::1"};
  for (const char* text : routable)
    EXPECT_FALSE(Ipv6Address::parse(text)->is_bogon()) << text;
}

TEST(Ipv6Address, HextetRoundTrip) {
  auto addr = Ipv6Address::from_hextets({0x2a00, 0x1234, 0, 0, 0, 0, 0xbeef, 0x1});
  EXPECT_EQ(addr.to_string(), "2a00:1234::beef:1");
  EXPECT_EQ(addr.hextet(6), 0xbeef);
}

}  // namespace
}  // namespace dnslocate::netbase
