// End-to-end observability: a measured fleet must leave registry totals
// that agree exactly with the census sums computed from the per-record
// structs, traces must be deterministic under the simulated clock, and a
// run with obs disabled must leave no trace at all.
#include <gtest/gtest.h>

#include "atlas/measurement.h"
#include "jsonio/json.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "report/aggregate.h"
#include "report/html_report.h"

using namespace dnslocate;

namespace {

class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::disable();
    obs::registry().reset();
    obs::collector().clear();
  }
  void TearDown() override {
    obs::disable();
    obs::registry().reset();
    obs::collector().clear();
  }

  static std::vector<atlas::ProbeSpec> small_fleet() {
    atlas::FleetConfig config;
    config.scale = 0.004;  // ~46 probes: fast, but covers every stage
    return atlas::generate_fleet(config);
  }
};

TEST_F(ObsPipelineTest, RegistryTotalsAgreeExactlyWithCensus) {
  obs::Config config;
  config.metrics = true;
  obs::enable(config);

  auto fleet = small_fleet();
  auto run = atlas::run_fleet(fleet);
  auto census = report::run_census(run);
  auto retry = report::retry_census(run);
  auto counter = [](const char* name) { return obs::registry().counter(name).value(); };

  // Transport telemetry: the registry mirrors record_telemetry, the census
  // sums the same per-probe structs — they must agree to the digit.
  EXPECT_EQ(counter("transport_queries_total"), census.telemetry.queries);
  EXPECT_EQ(counter("transport_attempts_total"), census.telemetry.attempts);
  EXPECT_EQ(counter("transport_retries_total"), census.telemetry.retries);
  EXPECT_EQ(counter("transport_timeouts_total"), census.telemetry.timeouts);
  EXPECT_EQ(counter("transport_answered_total"), census.telemetry.answered);
  EXPECT_EQ(counter("transport_queries_total"), retry.totals.queries);
  EXPECT_EQ(counter("transport_retries_total"), retry.totals.retries);

  // Drop and fault counters, mirrored once per completed probe.
  EXPECT_EQ(counter("sim_drop_no_route_total"), census.drops.no_route);
  EXPECT_EQ(counter("sim_drop_ttl_expired_total"), census.drops.ttl_expired);
  EXPECT_EQ(counter("sim_drop_no_listener_total"), census.drops.no_listener);
  EXPECT_EQ(counter("sim_drop_by_hook_total"), census.drops.by_hook);
  EXPECT_EQ(counter("sim_drop_link_loss_total"), census.drops.link_loss);
  EXPECT_EQ(counter("sim_drop_queue_overflow_total"), census.drops.queue_overflow);
  EXPECT_EQ(counter("sim_drop_fault_burst_total"), census.drops.fault_burst);
  EXPECT_EQ(counter("sim_drop_fault_random_total"), census.drops.fault_random);
  EXPECT_EQ(counter("fault_burst_drops_total"), census.faults.burst_drops);
  EXPECT_EQ(counter("fault_random_drops_total"), census.faults.random_drops);
  EXPECT_EQ(counter("fault_reordered_total"), census.faults.reordered);
  EXPECT_EQ(counter("fault_duplicated_total"), census.faults.duplicated);
  EXPECT_EQ(counter("fault_truncated_total"), census.faults.truncated);
  EXPECT_EQ(counter("fault_jittered_total"), census.faults.jittered);

  // Supervision outcomes.
  EXPECT_EQ(counter("probe_ok_total"), census.ok);
  EXPECT_EQ(counter("probe_failed_total"), census.failed);
  EXPECT_EQ(counter("probe_deadline_total"), census.deadline_exceeded);
  EXPECT_EQ(counter("probe_partial_total"), census.partial_verdicts);
  EXPECT_EQ(counter("pipeline_runs_total"), run.records.size());
  EXPECT_EQ(obs::registry().histogram("probe_wall_us").count(), run.records.size());

  // The answered-RTT histogram saw exactly the answered queries.
  EXPECT_EQ(obs::registry().histogram("transport_rtt_us").count(),
            census.telemetry.answered);
}

TEST_F(ObsPipelineTest, DisabledRunRecordsNothing) {
  auto fleet = small_fleet();
  auto run = atlas::run_fleet(fleet);
  ASSERT_FALSE(run.records.empty());
  auto snapshot = obs::registry().snapshot();
  for (const auto& [name, value] : snapshot.counters) EXPECT_EQ(value, 0u) << name;
  for (const auto& [name, hist] : snapshot.histograms) EXPECT_EQ(hist.count, 0u) << name;
  EXPECT_TRUE(obs::collector().gather().empty());
}

TEST_F(ObsPipelineTest, ProbeTraceIsDeterministic) {
  obs::Config config;
  config.metrics = true;
  config.tracing = true;
  obs::enable(config);

  auto fleet = small_fleet();
  const atlas::ProbeSpec& spec = fleet.front();

  atlas::run_probe(spec);
  std::string first = obs::chrome_trace_json();
  obs::collector().clear();
  atlas::run_probe(spec);
  std::string second = obs::chrome_trace_json();

  // Simulated clock + per-probe lane: byte-identical across runs.
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"clock\":\"sim\""), std::string::npos);
  EXPECT_NE(first.find("pipeline/run"), std::string::npos);
  EXPECT_NE(first.find("transport/query"), std::string::npos);
  EXPECT_NE(first.find("probe/run"), std::string::npos);
}

TEST_F(ObsPipelineTest, HtmlReportEmbedsMetricsWhenEnabled) {
  auto fleet = small_fleet();

  // Disabled: the report must not change shape.
  auto run = atlas::run_fleet(fleet);
  std::string plain = report::html_report(run);
  EXPECT_EQ(plain.find("Observability"), std::string::npos);
  EXPECT_EQ(plain.find("dnslocate-metrics"), std::string::npos);

  obs::Config config;
  config.metrics = true;
  obs::enable(config);
  run = atlas::run_fleet(fleet);
  std::string html = report::html_report(run);
  EXPECT_NE(html.find("<h2>Observability</h2>"), std::string::npos);

  // The embedded snapshot parses back and matches the live registry.
  auto begin = html.find("<script type=\"application/json\" id=\"dnslocate-metrics\">");
  ASSERT_NE(begin, std::string::npos);
  begin = html.find('>', begin) + 1;
  auto end = html.find("</script>", begin);
  ASSERT_NE(end, std::string::npos);
  auto parsed = jsonio::parse(html.substr(begin, end - begin));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>((*parsed)["counters"]["pipeline_runs_total"].as_int()),
            run.records.size());
}

}  // namespace
