// ICMP Time Exceeded modelling and traceroute-style path probing: the
// extension that names the intercepting hop (§6 future work).
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "core/path_probe.h"
#include "core/ttl_probe.h"
#include "dnswire/debug_queries.h"

namespace dnslocate::core {
namespace {

netbase::Endpoint google53() {
  return {*netbase::IpAddress::parse("8.8.8.8"), netbase::kDnsPort};
}

TEST(Icmp, TtlExpiryReportsTheRouter) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  QueryOptions options;
  options.ttl = 2;  // dies at the access router (hop 2 after the CPE)
  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  auto result = scenario.transport().query(google53(), query, options);
  EXPECT_FALSE(result.answered());
  ASSERT_TRUE(result.icmp_from.has_value());
  // The access router's interface address is x.y.0.1 of the customer prefix.
  auto prefix = atlas::customer_prefix_v4(config.asn);
  EXPECT_TRUE(prefix.contains(*result.icmp_from)) << result.icmp_from->to_string();
}

TEST(Icmp, RelatedErrorsTraverseTheNat) {
  // The ICMP error is addressed to the CPE's WAN address (the expired
  // packet was already masqueraded); conntrack's RELATED handling must
  // translate it back to the host. Receiving it at all proves that worked.
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  QueryOptions options;
  options.ttl = 3;  // border router
  auto query = dnswire::make_chaos_query(2, dnswire::version_bind());
  auto result = scenario.transport().query(google53(), query, options);
  EXPECT_FALSE(result.answered());
  EXPECT_TRUE(result.icmp_from.has_value());
}

TEST(Icmp, NoErrorWhenPacketIsDelivered) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  auto query = dnswire::make_chaos_query(3, dnswire::version_bind());
  auto result = scenario.transport().query(google53(), query);
  EXPECT_TRUE(result.answered());
  EXPECT_FALSE(result.icmp_from.has_value());
}

TEST(PathProber, CleanPathReachesTheResolverSite) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  PathProber prober;
  auto report = prober.trace(scenario.transport(), google53());
  ASSERT_TRUE(report.responder_hop.has_value());
  EXPECT_EQ(*report.responder_hop, 5);  // cpe, access, border, core, site
  auto routers = report.routers();
  ASSERT_EQ(routers.size(), 4u);
  // Hop 4 is the transit core.
  EXPECT_EQ(routers[3].to_string(), "62.115.0.1");
}

TEST(PathProber, CpeInterceptorAnswersAtHopOne) {
  atlas::ScenarioConfig config;
  config.cpe.kind = atlas::CpeStyle::Kind::xb6_buggy;
  atlas::Scenario scenario(config);
  PathProber prober;
  auto report = prober.trace(scenario.transport(), google53());
  ASSERT_TRUE(report.responder_hop.has_value());
  EXPECT_EQ(*report.responder_hop, 1);
  EXPECT_TRUE(report.routers().empty());  // nothing expired before it
}

TEST(PathProber, IspInterceptorHopNamesTheIspRouter) {
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  atlas::Scenario scenario(config);
  PathProber prober;
  auto report = prober.trace(scenario.transport(), google53());
  ASSERT_TRUE(report.responder_hop.has_value());
  EXPECT_EQ(*report.responder_hop, 3);  // cpe, access(+DNAT), resolver
  // The hop-2 router (last before the responder) is inside the ISP.
  auto routers = report.routers();
  ASSERT_EQ(routers.size(), 2u);
  EXPECT_TRUE(atlas::customer_prefix_v4(config.asn).contains(routers[1]));
}

TEST(PathProber, InterceptorHopPrecedesTheCleanResponderHop) {
  auto hop_for = [](bool middlebox, bool external) {
    atlas::ScenarioConfig config;
    config.isp_policy.middlebox_enabled = middlebox;
    config.external_interceptor = external;
    atlas::Scenario scenario(config);
    PathProber prober;
    return prober.trace(scenario.transport(), google53()).responder_hop;
  };
  auto clean = hop_for(false, false);
  auto isp = hop_for(true, false);
  auto transit = hop_for(false, true);
  ASSERT_TRUE(clean && isp && transit);
  EXPECT_LT(*isp, *transit);
  EXPECT_LE(*transit, *clean);
}

TEST(PathProber, UnsupportedTransportYieldsEmptyReport) {
  struct NoTtl : QueryTransport {
    QueryResult query(const netbase::Endpoint&, const dnswire::Message&,
                      const QueryOptions&) override {
      return {};
    }
    bool supports_family(netbase::IpFamily) const override { return true; }
  } transport;
  PathProber prober;
  auto report = prober.trace(transport, google53());
  EXPECT_TRUE(report.hops.empty());
  EXPECT_FALSE(report.responder_hop.has_value());
}

TEST(TtlLocalizer, AgreesWithPathProber) {
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  atlas::Scenario scenario(config);
  TtlLocalizer ttl;
  PathProber path;
  EXPECT_EQ(ttl.responder_hop(scenario.transport(), google53()),
            path.trace(scenario.transport(), google53()).responder_hop);
}

}  // namespace
}  // namespace dnslocate::core
