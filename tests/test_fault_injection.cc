// FaultPlan unit tests: Gilbert–Elliott burst loss statistics, per-link
// stream independence, deterministic replay, and the simulator's per-cause
// drop accounting when a plan is attached.
#include <gtest/gtest.h>

#include "simnet/fault.h"
#include "simnet/simulator.h"

namespace dnslocate::simnet {
namespace {

netbase::IpAddress ip(const char* text) { return *netbase::IpAddress::parse(text); }

UdpPacket dns_response(std::size_t payload_bytes = 64) {
  UdpPacket packet;
  packet.src = ip("8.8.8.8");
  packet.dst = ip("192.0.2.10");
  packet.sport = netbase::kDnsPort;
  packet.dport = 40000;
  packet.payload.assign(payload_bytes, 0xab);
  return packet;
}

TEST(FaultProfile, BurstLossSolvesForStationaryRate) {
  auto profile = FaultProfile::burst_loss(0.05, 4.0);
  EXPECT_DOUBLE_EQ(profile.p_bad_to_good, 0.25);
  // pi_b = p_gb / (p_gb + p_bg) must equal the requested mean loss.
  double pi_b = profile.p_good_to_bad / (profile.p_good_to_bad + profile.p_bad_to_good);
  EXPECT_NEAR(pi_b, 0.05, 1e-12);
  EXPECT_FALSE(FaultProfile{}.active());
  EXPECT_TRUE(profile.active());
  EXPECT_FALSE(FaultProfile::burst_loss(0.0).active());
}

TEST(FaultProfile, EmpiricalLossAndBurstLengthMatch) {
  FaultPlan plan(77);
  plan.set_default_profile(FaultProfile::burst_loss(0.05, 4.0));
  auto packet = dns_response();

  int drops = 0, bursts = 0;
  bool in_burst = false;
  constexpr int kPackets = 50'000;
  for (int i = 0; i < kPackets; ++i) {
    auto decision = plan.decide(1, "", packet);
    if (decision.drop) {
      ++drops;
      if (!in_burst) ++bursts;
      in_burst = true;
    } else {
      in_burst = false;
    }
  }
  double rate = static_cast<double>(drops) / kPackets;
  EXPECT_NEAR(rate, 0.05, 0.01);
  // Mean burst length 1/p_bg = 4 packets (loose tolerance: bursts can abut).
  double mean_burst = static_cast<double>(drops) / bursts;
  EXPECT_GT(mean_burst, 2.5);
  EXPECT_LT(mean_burst, 6.0);
  EXPECT_EQ(plan.counters().drops(), static_cast<std::uint64_t>(drops));
}

TEST(FaultPlan, SameSeedReplaysIdentically) {
  FaultPlan a(42), b(42);
  auto profile = FaultProfile::burst_loss(0.10, 3.0);
  profile.duplicate_rate = 0.05;
  profile.jitter_max = std::chrono::milliseconds(2);
  profile.truncate_rate = 0.05;
  a.set_default_profile(profile);
  b.set_default_profile(profile);

  auto packet = dns_response();
  for (int i = 0; i < 2'000; ++i) {
    auto da = a.decide(9, "", packet);
    auto db = b.decide(9, "", packet);
    ASSERT_EQ(da.drop, db.drop) << "packet " << i;
    ASSERT_EQ(da.burst, db.burst);
    ASSERT_EQ(da.duplicate, db.duplicate);
    ASSERT_EQ(da.extra_delay, db.extra_delay);
    ASSERT_EQ(da.truncate_to, db.truncate_to);
  }
  EXPECT_EQ(a.counters().burst_drops, b.counters().burst_drops);
  EXPECT_EQ(a.counters().duplicated, b.counters().duplicated);
  EXPECT_EQ(a.counters().truncated, b.counters().truncated);
  EXPECT_EQ(a.counters().jittered, b.counters().jittered);
}

TEST(FaultPlan, LinksDrawIndependentStreams) {
  // Link 2's decisions must be the same whether or not link 1 sees traffic
  // in between — each link owns a stream seeded from (plan seed, link key).
  FaultPlan solo(7), interleaved(7);
  auto profile = FaultProfile::burst_loss(0.20, 2.0);
  solo.set_default_profile(profile);
  interleaved.set_default_profile(profile);

  auto packet = dns_response();
  std::vector<bool> solo_drops, mixed_drops;
  for (int i = 0; i < 1'000; ++i) solo_drops.push_back(solo.decide(2, "", packet).drop);
  for (int i = 0; i < 1'000; ++i) {
    (void)interleaved.decide(1, "", packet);  // extra traffic on another link
    mixed_drops.push_back(interleaved.decide(2, "", packet).drop);
    (void)interleaved.decide(1, "", packet);
  }
  EXPECT_EQ(solo_drops, mixed_drops);
}

TEST(FaultPlan, ClassProfilesSelectPerLink) {
  FaultPlan plan(1);
  auto lossy = FaultProfile::burst_loss(0.5, 2.0);
  plan.set_class_profile("access", lossy);

  EXPECT_DOUBLE_EQ(plan.profile_for("access").p_good_to_bad, lossy.p_good_to_bad);
  // Unknown classes (and the empty class) fall back to the default profile,
  // which injects nothing.
  EXPECT_FALSE(plan.profile_for("transit").active());
  EXPECT_FALSE(plan.profile_for("").active());

  auto packet = dns_response();
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(plan.decide(5, "transit", packet).drop);
}

TEST(FaultPlan, TruncationChopsOnlyDnsResponses) {
  FaultPlan plan(3);
  FaultProfile profile;
  profile.truncate_rate = 1.0;
  plan.set_default_profile(profile);

  auto response = dns_response(100);
  for (int i = 0; i < 50; ++i) {
    auto decision = plan.decide(1, "", response);
    ASSERT_TRUE(decision.truncate_to.has_value());
    EXPECT_GE(*decision.truncate_to, 1u);
    EXPECT_LT(*decision.truncate_to, 100u);
    EXPECT_FALSE(decision.drop);
  }

  // Client->server datagrams (sport is ephemeral) are never truncated.
  UdpPacket query = dns_response(100);
  query.sport = 40000;
  query.dport = netbase::kDnsPort;
  EXPECT_FALSE(plan.decide(1, "", query).truncate_to.has_value());
  EXPECT_EQ(plan.counters().truncated, 50u);
}

TEST(FaultPlan, JitterAndReorderExtendDelivery) {
  FaultPlan plan(5);
  FaultProfile profile;
  profile.reorder_rate = 1.0;
  profile.reorder_hold = std::chrono::milliseconds(8);
  profile.jitter_max = std::chrono::milliseconds(2);
  plan.set_default_profile(profile);

  auto packet = dns_response();
  auto decision = plan.decide(1, "", packet);
  EXPECT_FALSE(decision.drop);
  EXPECT_GE(decision.extra_delay, std::chrono::milliseconds(8));
  EXPECT_LT(decision.extra_delay, std::chrono::milliseconds(10));
  EXPECT_EQ(plan.counters().reordered, 1u);
}

/// Sink that remembers every datagram it sees.
struct SinkApp : UdpApp {
  std::vector<UdpPacket> received;
  void on_datagram(Simulator&, Device&, const UdpPacket& packet) override {
    received.push_back(packet);
  }
};

struct FaultWorld {
  Simulator sim{1};
  FaultPlan plan{99};
  Device& client;
  Device& server;
  PortId client_up = 0;
  SinkApp server_app;

  explicit FaultWorld(const FaultProfile& profile) :
      client(sim.add_device<Device>("client")), server(sim.add_device<Device>("server")) {
    plan.set_class_profile("wild", profile);
    sim.set_fault_plan(&plan);
    LinkConfig link;
    link.fault_class = "wild";
    auto [c, s] = sim.connect(client, server, link);
    client_up = c;
    client.add_local_ip(ip("192.0.2.10"));
    client.set_default_route(client_up);
    server.add_local_ip(ip("8.8.8.8"));
    server.bind_udp(53, &server_app);
  }

  void send(std::uint8_t marker) {
    UdpPacket p;
    p.src = ip("192.0.2.10");
    p.dst = ip("8.8.8.8");
    p.sport = 40000;
    p.dport = 53;
    p.payload = {marker};
    client.send_local(sim, p);
  }
};

TEST(SimulatorFaults, BurstDropsAreCountedPerCause) {
  FaultProfile always_bad;
  always_bad.p_good_to_bad = 1.0;
  always_bad.p_bad_to_good = 0.0;
  always_bad.loss_bad = 1.0;
  FaultWorld world(always_bad);

  for (int i = 0; i < 10; ++i) world.send(static_cast<std::uint8_t>(i));
  world.sim.run_until_idle();

  EXPECT_TRUE(world.server_app.received.empty());
  EXPECT_EQ(world.sim.drops().fault_burst, 10u);
  EXPECT_EQ(world.sim.drops().fault_random, 0u);
  EXPECT_EQ(world.sim.drops().total(), 10u);
  EXPECT_EQ(world.plan.counters().burst_drops, 10u);
}

TEST(SimulatorFaults, DuplicationDeliversAByteIdenticalCopy) {
  FaultProfile duplicating;
  duplicating.duplicate_rate = 1.0;
  FaultWorld world(duplicating);

  world.send(0x42);
  world.sim.run_until_idle();

  ASSERT_EQ(world.server_app.received.size(), 2u);
  EXPECT_EQ(world.server_app.received[0].payload, world.server_app.received[1].payload);
  EXPECT_EQ(world.plan.counters().duplicated, 1u);
  EXPECT_EQ(world.sim.drops().total(), 0u);
}

TEST(SimulatorFaults, InertProfileLeavesTrafficAlone) {
  FaultWorld world(FaultProfile{});
  for (int i = 0; i < 5; ++i) world.send(static_cast<std::uint8_t>(i));
  world.sim.run_until_idle();
  EXPECT_EQ(world.server_app.received.size(), 5u);
  EXPECT_EQ(world.sim.drops().total(), 0u);
}

TEST(SimulatorFaults, UnroutableTrafficCountsAsNoRoute) {
  FaultWorld world(FaultProfile{});
  UdpPacket p;
  p.src = ip("192.0.2.10");
  p.dst = ip("198.51.100.77");
  p.sport = 40000;
  p.dport = 53;
  p.payload = {1};
  world.server.send_local(world.sim, p);  // server has no route to that dst
  world.sim.run_until_idle();
  EXPECT_EQ(world.sim.drops().no_route, 1u);
}

}  // namespace
}  // namespace dnslocate::simnet
