// Tracing spans and exporters: nesting depth, ring overflow semantics,
// probe attribution, and the validity/determinism of the Chrome-trace and
// Prometheus outputs.
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <utility>

#include "jsonio/json.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"

using namespace dnslocate::obs;
namespace jsonio = dnslocate::jsonio;

namespace {

/// Deterministic test clock: returns a fixed sequence of instants.
class StepClock final : public ClockSource {
 public:
  [[nodiscard]] std::uint64_t now_ns() const override { return now_ += 1000; }

 private:
  mutable std::uint64_t now_ = 0;
};

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disable();
    registry().reset();
    collector().clear();
  }
  void TearDown() override {
    disable();
    registry().reset();
    collector().clear();
  }

  void enable_tracing(std::size_t ring = 64) {
    Config config;
    config.metrics = true;
    config.tracing = true;
    config.trace_buffer_events = ring;
    enable(config);
  }
};

TEST_F(ObsTraceTest, SpansNestAndRecordDepth) {
  enable_tracing();
  {
    Span outer("outer");
    {
      Span inner("inner");
    }
  }
  auto events = collector().gather();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it is recorded first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].end_ns, events[0].end_ns);
}

TEST_F(ObsTraceTest, DisabledSpansRecordNothing) {
  {
    Span span("never");
  }
  EXPECT_TRUE(collector().gather().empty());
}

TEST_F(ObsTraceTest, RingOverwritesOldestAndCountsDrops) {
  enable_tracing(/*ring=*/4);
  for (int i = 0; i < 10; ++i) {
    Span span("looped");
  }
  auto events = collector().gather();
  EXPECT_EQ(events.size(), 4u);  // capacity bounds retention
  EXPECT_EQ(collector().dropped(), 6u);
}

TEST_F(ObsTraceTest, ScopedProbeAttributesSpans) {
  enable_tracing();
  EXPECT_EQ(current_probe(), 0u);
  {
    ScopedProbe probe(41);
    EXPECT_EQ(current_probe(), 42u);  // stored as probe_id + 1
    Span span("attributed");
  }
  EXPECT_EQ(current_probe(), 0u);
  {
    Span span("unattributed");
  }
  auto events = collector().gather();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].probe, 42u);
  EXPECT_EQ(events[1].probe, 0u);
}

TEST_F(ObsTraceTest, ChromeTraceIsValidJsonWithMonotoneTsPerLane) {
  enable_tracing();
  std::thread worker([] {
    for (int i = 0; i < 5; ++i) {
      Span span("worker_span");
    }
  });
  worker.join();
  {
    ScopedProbe probe(7);
    Span span("probe_span");
  }
  for (int i = 0; i < 5; ++i) {
    Span span("main_span");
  }

  auto parsed = jsonio::parse(chrome_trace_json());
  ASSERT_TRUE(parsed.has_value());
  const auto& events = (*parsed)["traceEvents"];
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.as_array().empty());

  // ts must be monotone within each (pid, tid) lane, and every complete
  // event needs name/ph/ts/dur.
  std::map<std::pair<double, double>, double> last_ts;
  std::size_t complete = 0;
  for (const auto& event : events.as_array()) {
    const std::string& ph = event["ph"].as_string();
    if (ph == "M") continue;  // metadata names the lanes
    EXPECT_EQ(ph, "X");
    EXPECT_TRUE(event["name"].is_string());
    EXPECT_TRUE(event["dur"].is_number());
    ++complete;
    auto lane = std::make_pair(event["pid"].as_number(), event["tid"].as_number());
    double ts = event["ts"].as_number();
    auto it = last_ts.find(lane);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second);
    }
    last_ts[lane] = ts;
  }
  EXPECT_EQ(complete, 11u);
  // The probe-attributed span got its own deterministic lane (pid 2).
  bool saw_probe_lane = false;
  for (const auto& entry : last_ts) saw_probe_lane |= entry.first.first == 2.0;
  EXPECT_TRUE(saw_probe_lane);
}

TEST_F(ObsTraceTest, TraceExportIsDeterministicUnderAFixedClock) {
  enable_tracing();
  auto record = [] {
    StepClock clock;
    ScopedClock scope(&clock);
    ScopedProbe probe(3);
    Span outer("outer");
    Span inner("inner");
  };
  record();
  std::string first = chrome_trace_json();
  collector().clear();
  record();
  std::string second = chrome_trace_json();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"clock\":\"sim\""), std::string::npos);
}

TEST_F(ObsTraceTest, PrometheusTextShape) {
  Config config;
  config.metrics = true;
  enable(config);
  registry().counter("shape_total").add(3);
  registry().gauge("shape_gauge").set(-2);
  registry().histogram("shape_us").record(100);
  registry().histogram("shape_us").record(100000);

  std::string text = prometheus_text();
  EXPECT_NE(text.find("# TYPE shape_total counter"), std::string::npos);
  EXPECT_NE(text.find("shape_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE shape_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("shape_gauge -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE shape_us histogram"), std::string::npos);
  EXPECT_NE(text.find("shape_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("shape_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("shape_us_sum 100100"), std::string::npos);
}

TEST_F(ObsTraceTest, MetricsJsonRoundTrips) {
  Config config;
  config.metrics = true;
  enable(config);
  registry().counter("json_total").add(9);
  registry().histogram("json_us").record(50);

  auto parsed = jsonio::parse(metrics_json(registry().snapshot()).dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["counters"]["json_total"].as_int(), 9);
  EXPECT_EQ((*parsed)["histograms"]["json_us"]["count"].as_int(), 1);
}

}  // namespace
