// Fleet supervision: a throwing probe becomes a failed record, a hanging
// probe is cancelled at its deadline with a partial verdict, healthy probes
// are untouched, and max_failures stops a doomed campaign cleanly — the
// worker pool itself never aborts.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <thread>

#include "atlas/journal.h"
#include "atlas/measurement.h"
#include "atlas/scenario.h"
#include "core/pipeline.h"
#include "report/aggregate.h"

namespace dnslocate {
namespace {

std::vector<atlas::ProbeSpec> small_fleet(std::size_t count) {
  atlas::FleetConfig config;
  config.scale = 0.02;
  auto fleet = atlas::generate_fleet(config);
  if (fleet.size() > count) fleet.resize(count);
  return fleet;
}

atlas::ProbeSpec interceptor_spec() {
  for (const auto& spec : small_fleet(200))
    if (spec.scenario.cpe.intercepts()) return spec;
  ADD_FAILURE() << "no CPE interceptor in the small fleet";
  return {};
}

TEST(FleetSupervision, MixedFleetCompletesWithoutAbort) {
  auto fleet = small_fleet(9);
  ASSERT_EQ(fleet.size(), 9u);

  // Roles by fleet position: throw / hang / healthy, three of each.
  std::map<std::uint32_t, int> role;
  for (std::size_t i = 0; i < fleet.size(); ++i)
    role[fleet[i].probe_id] = static_cast<int>(i % 3);

  atlas::MeasurementOptions options;
  options.threads = 4;
  options.probe_deadline = std::chrono::milliseconds(100);
  options.runner = [&role](const atlas::ProbeSpec& spec, const core::CancelToken& token) {
    switch (role.at(spec.probe_id)) {
      case 0: throw std::runtime_error("rigged to throw");
      case 1:  // Hang (cooperatively) until the deadline token fires.
        while (!token.cancelled())
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return atlas::ProbeRecord{};
      default: return atlas::run_probe(spec, token, true);
    }
  };
  auto run = atlas::run_fleet(fleet, options);

  ASSERT_EQ(run.records.size(), 9u);
  EXPECT_EQ(run.not_run, 0u);
  auto census = report::run_census(run);
  EXPECT_EQ(census.probes, 9u);
  EXPECT_EQ(census.ok, run.count_outcome(atlas::ProbeOutcome::ok));
  EXPECT_EQ(census.failed, 3u);
  EXPECT_EQ(census.deadline_exceeded, 3u);
  EXPECT_EQ(census.ok, 3u);
  EXPECT_EQ(census.failures.size(), 5u);  // capped at top_n

  for (const auto& record : run.records) {
    // Identity fields survive even for probes that never produced a verdict.
    EXPECT_FALSE(record.org.org.empty());
    switch (role.at(record.probe_id)) {
      case 0:
        EXPECT_EQ(record.outcome, atlas::ProbeOutcome::failed);
        EXPECT_EQ(record.error, "rigged to throw");
        break;
      case 1:
        EXPECT_EQ(record.outcome, atlas::ProbeOutcome::deadline_exceeded);
        EXPECT_NE(record.error.find("deadline"), std::string::npos);
        EXPECT_GE(record.elapsed, std::chrono::milliseconds(100));
        break;
      default:
        EXPECT_EQ(record.outcome, atlas::ProbeOutcome::ok);
        EXPECT_TRUE(record.error.empty());
    }
  }
  // The census table renders the outcome counts.
  std::string table = report::render_run_census(census).render();
  EXPECT_NE(table.find("deadline exceeded"), std::string::npos);
}

TEST(FleetSupervision, ThrowingScenarioBecomesFailedRecord) {
  // Regression: a scenario whose construction throws must not take down the
  // worker (std::terminate) — it records a failed probe and the rest of the
  // fleet completes under the *default* runner.
  auto fleet = small_fleet(4);
  ASSERT_EQ(fleet.size(), 4u);
  fleet[1].scenario.home_index = 0;  // rigged: Scenario rejects index 0

  auto run = atlas::run_fleet(fleet, {});
  ASSERT_EQ(run.records.size(), 4u);
  EXPECT_EQ(run.count_outcome(atlas::ProbeOutcome::failed), 1u);
  EXPECT_EQ(run.count_outcome(atlas::ProbeOutcome::ok), 3u);
  const auto& failed = run.records[1];
  EXPECT_EQ(failed.outcome, atlas::ProbeOutcome::failed);
  EXPECT_NE(failed.error.find("home_index"), std::string::npos);
  EXPECT_EQ(failed.probe_id, fleet[1].probe_id);
  EXPECT_FALSE(failed.verdict.intercepted());  // nothing fabricated
}

TEST(FleetSupervision, ExpiredTokenYieldsFullySkippedVerdict) {
  auto spec = interceptor_spec();
  auto token = core::CancelToken::manual();
  token.cancel();
  auto record = atlas::run_probe(spec, token);

  EXPECT_TRUE(record.verdict.partial());
  EXPECT_TRUE(record.verdict.stage_skipped(core::PipelineStage::detection));
  EXPECT_TRUE(record.verdict.stage_skipped(core::PipelineStage::cpe_check));
  EXPECT_TRUE(record.verdict.stage_skipped(core::PipelineStage::bogon));
  // Nothing ran, so nothing is claimed.
  EXPECT_FALSE(record.verdict.intercepted());
  EXPECT_EQ(record.verdict.location, core::InterceptorLocation::not_intercepted);
  EXPECT_EQ(record.verdict.telemetry.queries, 0u);
}

/// Forwards to an inner transport and cancels `token` after `after` queries.
class CancellingTransport : public core::QueryTransport {
 public:
  CancellingTransport(core::QueryTransport& inner, core::CancelToken token,
                      std::size_t after)
      : inner_(inner), token_(std::move(token)), after_(after) {}

  core::QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                          const core::QueryOptions& options) override {
    auto result = inner_.query(server, message, options);
    if (++seen_ >= after_) token_.cancel();
    return result;
  }
  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override {
    return inner_.supports_family(family);
  }
  [[nodiscard]] bool supports_ttl() const override { return inner_.supports_ttl(); }
  [[nodiscard]] bool supports_channel(simnet::Channel channel) const override {
    return inner_.supports_channel(channel);
  }

 private:
  core::QueryTransport& inner_;
  core::CancelToken token_;
  std::size_t after_;
  std::size_t seen_ = 0;
};

TEST(FleetSupervision, MidRunCancellationKeepsDetectionSkipsLocalization) {
  // The budget dies right after the first query: detection (already in
  // flight) completes and is kept; localization is honestly "unknown",
  // never a fabricated CPE or ISP attribution.
  auto spec = interceptor_spec();
  atlas::Scenario scenario(spec.scenario);
  auto token = core::CancelToken::manual();
  CancellingTransport transport(scenario.transport(), token, 1);

  core::LocalizationPipeline pipeline(scenario.pipeline_config());
  auto verdict = pipeline.run(transport, token);

  EXPECT_FALSE(verdict.stage_skipped(core::PipelineStage::detection));
  EXPECT_TRUE(verdict.detection.any_intercepted(netbase::IpFamily::v4));
  EXPECT_EQ(verdict.location, core::InterceptorLocation::unknown);
  EXPECT_TRUE(verdict.stage_skipped(core::PipelineStage::cpe_check));
  EXPECT_TRUE(verdict.stage_skipped(core::PipelineStage::bogon));
  EXPECT_FALSE(verdict.cpe_check.has_value());
  EXPECT_FALSE(verdict.bogon.has_value());
  EXPECT_TRUE(verdict.partial());
}

TEST(FleetSupervision, MaxFailuresStopsCleanlyWithJournalIntact) {
  auto fleet = small_fleet(10);
  ASSERT_EQ(fleet.size(), 10u);
  std::string journal = testing::TempDir() + "max_failures.journal";

  atlas::MeasurementOptions options;
  options.threads = 1;  // deterministic dispatch order
  options.max_failures = 3;
  options.journal_path = journal;
  options.runner = [](const atlas::ProbeSpec&, const core::CancelToken&) -> atlas::ProbeRecord {
    throw std::runtime_error("every probe fails");
  };
  auto run = atlas::run_fleet(fleet, options);

  EXPECT_TRUE(run.stopped_early());
  EXPECT_EQ(run.records.size(), 3u);
  EXPECT_EQ(run.count_outcome(atlas::ProbeOutcome::failed), 3u);
  EXPECT_EQ(run.not_run, 7u);
  EXPECT_EQ(report::run_census(run).not_run, 7u);

  // The journal survived the early stop and holds exactly the attempts made.
  auto loaded = atlas::load_journal(journal);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.header.fleet_size, 10u);
  EXPECT_EQ(loaded.records.size(), 3u);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace dnslocate
