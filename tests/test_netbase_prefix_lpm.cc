// Unit & property tests: prefixes, longest-prefix matching, bogon catalog,
// endpoints.
#include <gtest/gtest.h>

#include "netbase/bogon.h"
#include "netbase/endpoint.h"
#include "netbase/lpm.h"
#include "simnet/rng.h"

namespace dnslocate::netbase {
namespace {

TEST(Prefix, ParsesAndMasks) {
  auto prefix = Prefix::parse("192.0.2.77/24");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->to_string(), "192.0.2.0/24");  // host bits cleared
  EXPECT_EQ(prefix->length(), 24u);
}

TEST(Prefix, BareAddressIsHostPrefix) {
  EXPECT_EQ(Prefix::parse("10.0.0.1")->length(), 32u);
  EXPECT_EQ(Prefix::parse("2001:db8::1")->length(), 128u);
}

TEST(Prefix, RejectsBadInput) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("banana/8").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/8x").has_value());
}

TEST(Prefix, ContainsAddress) {
  auto prefix = *Prefix::parse("172.16.0.0/12");
  EXPECT_TRUE(prefix.contains(*IpAddress::parse("172.16.0.1")));
  EXPECT_TRUE(prefix.contains(*IpAddress::parse("172.31.255.255")));
  EXPECT_FALSE(prefix.contains(*IpAddress::parse("172.32.0.0")));
  EXPECT_FALSE(prefix.contains(*IpAddress::parse("2001:db8::1")));  // family mismatch
}

TEST(Prefix, ContainsPrefix) {
  auto outer = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(outer.contains(*Prefix::parse("10.1.0.0/16")));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(*Prefix::parse("0.0.0.0/0")));
  EXPECT_FALSE((*Prefix::parse("10.1.0.0/16")).contains(outer));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  auto all_v4 = *Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(all_v4.contains(*IpAddress::parse("255.255.255.255")));
  auto all_v6 = *Prefix::parse("::/0");
  EXPECT_TRUE(all_v6.contains(*IpAddress::parse("2001:db8::1")));
  EXPECT_FALSE(all_v4.contains(*IpAddress::parse("::1")));
}

TEST(Prefix, V6Masking) {
  auto prefix = *Prefix::parse("2001:db8:abcd:1234::/48");
  EXPECT_EQ(prefix.to_string(), "2001:db8:abcd::/48");
  auto odd = *Prefix::parse("ffff:ffff:ffff:ffff::/37");
  EXPECT_EQ(odd.to_string(), "ffff:ffff:f800::/37");
}

TEST(CommonPrefixLength, Basics) {
  EXPECT_EQ(common_prefix_length(*IpAddress::parse("10.0.0.0"), *IpAddress::parse("10.0.0.0")),
            32u);
  EXPECT_EQ(common_prefix_length(*IpAddress::parse("10.0.0.0"), *IpAddress::parse("11.0.0.0")),
            7u);
  EXPECT_EQ(common_prefix_length(*IpAddress::parse("0.0.0.0"), *IpAddress::parse("128.0.0.0")),
            0u);
  EXPECT_EQ(common_prefix_length(*IpAddress::parse("2001:db8::"),
                                 *IpAddress::parse("2001:db8::1")),
            127u);
  EXPECT_EQ(common_prefix_length(*IpAddress::parse("10.0.0.0"), *IpAddress::parse("::1")), 0u);
}

TEST(LpmTable, LongestMatchWins) {
  LpmTable<std::string> table;
  table.insert(*Prefix::parse("0.0.0.0/0"), "default");
  table.insert(*Prefix::parse("10.0.0.0/8"), "ten");
  table.insert(*Prefix::parse("10.1.0.0/16"), "ten-one");
  table.insert(*Prefix::parse("10.1.2.0/24"), "ten-one-two");

  EXPECT_EQ(*table.lookup(*IpAddress::parse("10.1.2.3")), "ten-one-two");
  EXPECT_EQ(*table.lookup(*IpAddress::parse("10.1.9.9")), "ten-one");
  EXPECT_EQ(*table.lookup(*IpAddress::parse("10.9.9.9")), "ten");
  EXPECT_EQ(*table.lookup(*IpAddress::parse("11.0.0.1")), "default");
}

TEST(LpmTable, FamiliesAreSeparate) {
  LpmTable<int> table;
  table.insert(*Prefix::parse("0.0.0.0/0"), 4);
  EXPECT_EQ(table.lookup(*IpAddress::parse("2001:db8::1")), nullptr);
  table.insert(*Prefix::parse("::/0"), 6);
  EXPECT_EQ(*table.lookup(*IpAddress::parse("2001:db8::1")), 6);
  EXPECT_EQ(*table.lookup(*IpAddress::parse("8.8.8.8")), 4);
}

TEST(LpmTable, InsertReplacesAndCounts) {
  LpmTable<int> table;
  EXPECT_TRUE(table.empty());
  table.insert(*Prefix::parse("10.0.0.0/8"), 1);
  table.insert(*Prefix::parse("10.0.0.0/8"), 2);  // replacement
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(*table.lookup(*IpAddress::parse("10.1.1.1")), 2);
  EXPECT_EQ(*table.lookup_exact(*Prefix::parse("10.0.0.0/8")), 2);
  EXPECT_EQ(table.lookup_exact(*Prefix::parse("10.0.0.0/9")), nullptr);
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.lookup(*IpAddress::parse("10.1.1.1")), nullptr);
}

// Property: for random prefix sets, the trie agrees with a brute-force scan.
TEST(LpmTable, AgreesWithBruteForce) {
  simnet::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    LpmTable<std::size_t> table;
    std::vector<Prefix> prefixes;
    for (int i = 0; i < 60; ++i) {
      Ipv4Address addr(static_cast<std::uint32_t>(rng.next_u64()));
      unsigned length = static_cast<unsigned>(rng.uniform(33));
      Prefix prefix(IpAddress(addr), length);
      // Last insert wins in the trie; mirror that by deduplicating.
      bool duplicate = false;
      for (auto& existing : prefixes)
        if (existing == prefix) duplicate = true;
      if (duplicate) continue;
      prefixes.push_back(prefix);
      table.insert(prefix, prefixes.size() - 1);
    }
    for (int probe = 0; probe < 200; ++probe) {
      IpAddress addr{Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()))};
      const std::size_t* got = table.lookup(addr);
      // Brute force: best (longest) containing prefix.
      std::optional<std::size_t> want;
      unsigned best = 0;
      for (std::size_t i = 0; i < prefixes.size(); ++i) {
        if (prefixes[i].contains(addr) && (!want || prefixes[i].length() >= best)) {
          // Ties cannot happen: equal-length containing prefixes are equal.
          want = i;
          best = prefixes[i].length();
        }
      }
      if (want.has_value()) {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, *want);
      } else {
        EXPECT_EQ(got, nullptr);
      }
    }
  }
}

TEST(BogonCatalog, StandardCatalogMatchesAddressClassifiers) {
  BogonCatalog catalog = BogonCatalog::standard();
  simnet::Rng rng(7);
  // Property: catalog membership must equal the per-address is_bogon() for
  // both families, across random addresses.
  for (int i = 0; i < 2000; ++i) {
    Ipv4Address v4(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(catalog.is_bogon(IpAddress(v4)), v4.is_bogon()) << v4.to_string();
  }
  for (int i = 0; i < 2000; ++i) {
    Ipv6Address::Bytes bytes{};
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    Ipv6Address v6(bytes);
    EXPECT_EQ(catalog.is_bogon(IpAddress(v6)), v6.is_bogon()) << v6.to_string();
  }
}

TEST(BogonCatalog, ClassifiesByRegistryName) {
  BogonCatalog catalog = BogonCatalog::standard();
  EXPECT_EQ(catalog.classify(*IpAddress::parse("10.1.2.3")), "private-use (RFC 1918)");
  EXPECT_EQ(catalog.classify(*IpAddress::parse("100::1")), "discard-only (RFC 6666)");
  EXPECT_EQ(catalog.classify(*IpAddress::parse("8.8.8.8")), "");
}

TEST(BogonCatalog, DefaultProbesAreBogons) {
  BogonCatalog catalog = BogonCatalog::standard();
  EXPECT_TRUE(catalog.is_bogon(BogonCatalog::default_probe_v4()));
  EXPECT_TRUE(catalog.is_bogon(BogonCatalog::default_probe_v6()));
}

TEST(Endpoint, ParseAndFormat) {
  auto v4 = Endpoint::parse("192.0.2.1:53");
  ASSERT_TRUE(v4.has_value());
  EXPECT_EQ(v4->port, 53);
  EXPECT_EQ(v4->to_string(), "192.0.2.1:53");

  auto v6 = Endpoint::parse("[2001:db8::1]:5353");
  ASSERT_TRUE(v6.has_value());
  EXPECT_EQ(v6->port, 5353);
  EXPECT_EQ(v6->to_string(), "[2001:db8::1]:5353");
}

TEST(Endpoint, RejectsBadInput) {
  EXPECT_FALSE(Endpoint::parse("192.0.2.1").has_value());
  EXPECT_FALSE(Endpoint::parse("192.0.2.1:65536").has_value());
  EXPECT_FALSE(Endpoint::parse("2001:db8::1:53").has_value());  // needs brackets
  EXPECT_FALSE(Endpoint::parse("[2001:db8::1]53").has_value());
  EXPECT_FALSE(Endpoint::parse(":53").has_value());
  EXPECT_FALSE(Endpoint::parse("192.0.2.1:").has_value());
}

TEST(IpAddress, ParsePrefersV4ThenV6) {
  EXPECT_TRUE(IpAddress::parse("1.2.3.4")->is_v4());
  EXPECT_TRUE(IpAddress::parse("::1")->is_v6());
  EXPECT_FALSE(IpAddress::parse("nonsense").has_value());
}

TEST(IpAddress, HashDistinguishesFamilies) {
  std::hash<IpAddress> hasher;
  auto v4 = *IpAddress::parse("1.2.3.4");
  auto mapped = *IpAddress::parse("::ffff:1.2.3.4");
  EXPECT_NE(v4, mapped);
  // Not a strict requirement, but they should not collide in practice.
  EXPECT_NE(hasher(v4), hasher(mapped));
}

}  // namespace
}  // namespace dnslocate::netbase

namespace dnslocate::netbase {
namespace {

// v6 counterpart of the v4 brute-force property.
TEST(LpmTable, AgreesWithBruteForceV6) {
  simnet::Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    LpmTable<std::size_t> table;
    std::vector<Prefix> prefixes;
    for (int i = 0; i < 40; ++i) {
      Ipv6Address::Bytes bytes{};
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
      unsigned length = static_cast<unsigned>(rng.uniform(129));
      Prefix prefix(IpAddress(Ipv6Address(bytes)), length);
      bool duplicate = false;
      for (auto& existing : prefixes)
        if (existing == prefix) duplicate = true;
      if (duplicate) continue;
      prefixes.push_back(prefix);
      table.insert(prefix, prefixes.size() - 1);
    }
    for (int probe = 0; probe < 100; ++probe) {
      Ipv6Address::Bytes bytes{};
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
      // Half the probes land inside a random prefix to exercise matches.
      if (probe % 2 == 0 && !prefixes.empty()) {
        const Prefix& base = prefixes[rng.uniform(prefixes.size())];
        bytes = base.address().v6().bytes();
        bytes[15] ^= static_cast<std::uint8_t>(rng.next_u64());
      }
      IpAddress addr{Ipv6Address(bytes)};
      const std::size_t* got = table.lookup(addr);
      std::optional<std::size_t> want;
      unsigned best = 0;
      for (std::size_t i = 0; i < prefixes.size(); ++i) {
        if (prefixes[i].contains(addr) && (!want || prefixes[i].length() >= best)) {
          want = i;
          best = prefixes[i].length();
        }
      }
      if (want.has_value()) {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, *want);
      } else {
        EXPECT_EQ(got, nullptr);
      }
    }
  }
}

}  // namespace
}  // namespace dnslocate::netbase
