// Shard-count invariance: the sharded fleet executor must produce
// byte-identical per-probe verdicts — and identical downstream aggregates —
// at any shard count, because a shard decides only *where* a probe runs,
// never *how*. Proved over the shared scenario corpus at 1, 2, 4, and 7
// shards, including an interrupted journaled run that resumes under a
// *different* shard count.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "atlas/journal.h"
#include "atlas/measurement.h"
#include "atlas/sharding.h"
#include "report/aggregate.h"
#include "report/results_io.h"
#include "scenario_corpus.h"

namespace dnslocate {
namespace {

using atlas::MeasurementOptions;
using atlas::MeasurementRun;
using atlas::ProbeSpec;
using testing_corpus::corpus;
using testing_corpus::signature;

/// One probe per corpus scenario, with ids spread out so the stable hash
/// distributes them non-trivially across shard counts.
std::vector<ProbeSpec> corpus_fleet() {
  std::vector<ProbeSpec> fleet;
  std::uint32_t id = 1000;
  for (const auto& c : corpus()) {
    ProbeSpec spec;
    spec.probe_id = id;
    id += 7;  // non-contiguous ids: shard_of must not depend on density
    spec.org.org = c.name;
    spec.org.asn = 64500 + (id % 17);
    spec.org.country = "--";
    spec.scenario = c.config;
    fleet.push_back(std::move(spec));
  }
  return fleet;
}

/// probe_id -> full verdict signature, the byte-level equality gate.
std::map<std::uint32_t, std::string> signatures_of(const MeasurementRun& run) {
  std::map<std::uint32_t, std::string> out;
  for (const auto& record : run.records) out[record.probe_id] = signature(record.verdict);
  return out;
}

MeasurementRun run_with_shards(const std::vector<ProbeSpec>& fleet, unsigned shards) {
  MeasurementOptions options;
  options.shards = shards;
  return atlas::run_fleet(fleet, options);
}

TEST(FleetSharding, ShardAssignmentIsStableAndComplete) {
  auto fleet = corpus_fleet();
  for (unsigned shards : {1u, 2u, 4u, 7u}) {
    auto parts = atlas::partition_fleet(fleet, shards);
    ASSERT_EQ(parts.size(), shards);
    std::set<std::size_t> seen;
    for (unsigned k = 0; k < shards; ++k) {
      std::size_t previous = 0;
      bool first = true;
      for (std::size_t i : parts[k]) {
        EXPECT_TRUE(seen.insert(i).second) << "index " << i << " in two shards";
        EXPECT_EQ(atlas::shard_of(fleet[i].probe_id, shards), k);
        // Fleet order is preserved within a shard.
        if (!first) {
          EXPECT_GT(i, previous);
        }
        previous = i;
        first = false;
      }
    }
    EXPECT_EQ(seen.size(), fleet.size());
  }
  // Assignment is a function of the probe id alone: repeated calls agree.
  for (const auto& spec : fleet)
    EXPECT_EQ(atlas::shard_of(spec.probe_id, 4), atlas::shard_of(spec.probe_id, 4));
}

TEST(FleetSharding, ShardSeedsAreDistinctPerShard) {
  std::set<std::uint64_t> seeds;
  for (unsigned k = 0; k < 8; ++k) seeds.insert(atlas::shard_seed(0x9650u, k));
  EXPECT_EQ(seeds.size(), 8u);
}

TEST(FleetSharding, VerdictsAreByteIdenticalAcrossShardCounts) {
  auto fleet = corpus_fleet();
  auto baseline = run_with_shards(fleet, 1);
  ASSERT_EQ(baseline.records.size(), fleet.size());
  auto expected = signatures_of(baseline);

  for (unsigned shards : {2u, 4u, 7u}) {
    auto run = run_with_shards(fleet, shards);
    ASSERT_EQ(run.records.size(), fleet.size()) << shards << " shards";
    EXPECT_EQ(signatures_of(run), expected) << shards << " shards";
    // Record order is the fleet order regardless of which shard ran what.
    for (std::size_t i = 0; i < fleet.size(); ++i)
      EXPECT_EQ(run.records[i].probe_id, fleet[i].probe_id);
  }
}

TEST(FleetSharding, AccuracyMatrixIsIdenticalAcrossShardCounts) {
  auto fleet = corpus_fleet();
  auto baseline = report::accuracy_matrix(run_with_shards(fleet, 1));
  for (unsigned shards : {2u, 4u, 7u}) {
    auto matrix = report::accuracy_matrix(run_with_shards(fleet, shards));
    for (int expected = 0; expected < 4; ++expected)
      for (int measured = 0; measured < 4; ++measured)
        EXPECT_EQ(matrix.cells[expected][measured], baseline.cells[expected][measured])
            << shards << " shards, cell [" << expected << "][" << measured << "]";
    EXPECT_EQ(matrix.total(), baseline.total());
    EXPECT_EQ(matrix.correct(), baseline.correct());
  }
}

TEST(FleetSharding, CleanShardedRunConsolidatesJournalSegments) {
  auto fleet = corpus_fleet();
  std::string journal = ::testing::TempDir() + "sharded_clean.journal";
  std::remove(journal.c_str());

  MeasurementOptions options;
  options.shards = 4;
  options.journal_path = journal;
  auto run = atlas::run_fleet(fleet, options);
  ASSERT_EQ(run.records.size(), fleet.size());

  // Segments were consolidated into the base journal and removed.
  EXPECT_TRUE(atlas::find_shard_segments(journal).empty());
  auto loaded = atlas::load_journal(journal);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.records.size(), fleet.size());
  EXPECT_EQ(loaded.header.fingerprint, atlas::fleet_fingerprint(fleet));
}

TEST(FleetSharding, InterruptedShardedRunResumesUnderDifferentShardCount) {
  auto fleet = corpus_fleet();
  auto baseline = run_with_shards(fleet, 1);

  std::string journal = ::testing::TempDir() + "sharded_interrupt.journal";
  std::remove(journal.c_str());
  for (const std::string& stale : atlas::find_shard_segments(journal))
    std::remove(stale.c_str());

  // First attempt: 4 shards, and the probe in the middle of the fleet dies.
  // max_failures stops the run early, so some probes never start and the
  // shard segments stay on disk — the crash-shaped state resume must handle.
  std::uint32_t doomed = fleet[fleet.size() / 2].probe_id;
  MeasurementOptions interrupted;
  interrupted.shards = 4;
  interrupted.journal_path = journal;
  interrupted.max_failures = 1;
  interrupted.runner = [doomed](const ProbeSpec& spec, const core::CancelToken& cancel) {
    if (spec.probe_id == doomed) throw std::runtime_error("injected crash");
    return atlas::run_probe(spec, cancel, /*strip_raw_responses=*/true);
  };
  auto first = atlas::run_fleet(fleet, interrupted);
  ASSERT_TRUE(first.stopped_early());
  ASSERT_FALSE(atlas::find_shard_segments(journal).empty());

  // Resume under a *different* shard count (7): the failed probe gets a
  // fresh (healthy) attempt, completed probes are reused from the base
  // journal and the segments, and the merged result matches an
  // uninterrupted 1-shard run at the journal's fidelity contract —
  // byte-identical through the export paths (the journal persists the
  // verdict summary, not the rendered evidence prose, so describe() text of
  // reused records is not part of the contract; location, outcome, and
  // telemetry are).
  MeasurementOptions resumed_options;
  resumed_options.shards = 7;
  atlas::ResumeReport report;
  auto resumed = atlas::resume_fleet(journal, fleet, resumed_options, &report);
  EXPECT_TRUE(report.journal_matched);
  EXPECT_GT(report.reused, 0u);
  EXPECT_LT(report.reused, fleet.size());  // the interruption left real work
  ASSERT_EQ(resumed.records.size(), fleet.size());
  EXPECT_EQ(report::run_to_jsonl(resumed), report::run_to_jsonl(baseline));
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto& got = resumed.records[i];
    const auto& want = baseline.records[i];
    EXPECT_EQ(got.probe_id, want.probe_id);
    EXPECT_EQ(got.outcome, want.outcome) << "probe " << got.probe_id;
    EXPECT_EQ(got.verdict.location, want.verdict.location) << "probe " << got.probe_id;
    EXPECT_EQ(got.verdict.skipped_stages, want.verdict.skipped_stages)
        << "probe " << got.probe_id;
    EXPECT_EQ(got.verdict.telemetry.queries, want.verdict.telemetry.queries)
        << "probe " << got.probe_id;
    EXPECT_EQ(got.verdict.telemetry.answered, want.verdict.telemetry.answered)
        << "probe " << got.probe_id;
  }

  // The resumed run completed cleanly, so it consolidated: no segments
  // remain and the base journal alone replays the whole fleet.
  EXPECT_TRUE(atlas::find_shard_segments(journal).empty());
  auto loaded = atlas::load_journal(journal);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.records.size(), fleet.size());
}

TEST(FleetSharding, ShardSegmentPathsNameShardAndCount) {
  EXPECT_EQ(atlas::shard_segment_path("run.journal", 0, 4), "run.journal.shard-0-of-4");
  EXPECT_EQ(atlas::shard_segment_path("/tmp/x/run.journal", 3, 7),
            "/tmp/x/run.journal.shard-3-of-7");
}

}  // namespace
}  // namespace dnslocate
