// DoT modelling tests: certificate semantics of the strict/opportunistic
// profiles under DNAT diversion, blocking middleboxes, and the prober's
// cross-channel findings.
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "core/dot_probe.h"
#include "dnswire/debug_queries.h"

namespace dnslocate::core {
namespace {

using simnet::Channel;

QueryResult dot_query(atlas::Scenario& scenario, Channel channel,
                      const netbase::IpAddress& server) {
  QueryOptions options;
  options.channel = channel;
  std::uint16_t port = channel == Channel::udp ? netbase::kDnsPort : netbase::kDotPort;
  auto query = dnswire::make_chaos_query(0x77, dnswire::version_bind());
  return scenario.transport().query({server, port}, query, options);
}

netbase::IpAddress quad9() { return *netbase::IpAddress::parse("9.9.9.9"); }

TEST(Dot, CleanPathAnswersAllChannels) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  for (Channel channel : {Channel::udp, Channel::dot_strict, Channel::dot_opportunistic}) {
    auto result = dot_query(scenario, channel, quad9());
    ASSERT_TRUE(result.answered()) << to_string(channel);
    EXPECT_EQ(result.response->first_txt(), "Q9-P-9.16.15") << to_string(channel);
  }
}

TEST(Dot, StrictProfileFailsClosedUnderDiversion) {
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.dot_action = isp::DotAction::divert;
  atlas::Scenario scenario(config);

  // Strict: the diverted handshake cannot validate -> silence.
  EXPECT_FALSE(dot_query(scenario, Channel::dot_strict, quad9()).answered());
  EXPECT_GT(scenario.isp_handles().resolver_app->tls_rejected(), 0u);

  // Opportunistic: hijacked; the ISP resolver's version string comes back
  // "from" Quad9.
  auto result = dot_query(scenario, Channel::dot_opportunistic, quad9());
  ASSERT_TRUE(result.answered());
  EXPECT_NE(result.response->first_txt(), "Q9-P-9.16.15");
}

TEST(Dot, Port53OnlyInterceptorLeavesDotAlone) {
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;  // dot_action defaults to pass
  atlas::Scenario scenario(config);
  for (Channel channel : {Channel::dot_strict, Channel::dot_opportunistic}) {
    auto result = dot_query(scenario, channel, quad9());
    ASSERT_TRUE(result.answered()) << to_string(channel);
    EXPECT_EQ(result.response->first_txt(), "Q9-P-9.16.15");
  }
  // ...while UDP/53 is still intercepted.
  auto udp = dot_query(scenario, Channel::udp, quad9());
  ASSERT_TRUE(udp.answered());
  EXPECT_NE(udp.response->first_txt(), "Q9-P-9.16.15");
}

TEST(Dot, BlockingMiddleboxSilencesBothProfiles) {
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.dot_action = isp::DotAction::block;
  atlas::Scenario scenario(config);
  EXPECT_FALSE(dot_query(scenario, Channel::dot_strict, quad9()).answered());
  EXPECT_FALSE(dot_query(scenario, Channel::dot_opportunistic, quad9()).answered());
  EXPECT_TRUE(dot_query(scenario, Channel::udp, quad9()).answered());
}

TEST(Dot, InterceptingCpeCanGrabOpportunisticDot) {
  atlas::ScenarioConfig config;
  config.cpe.kind = atlas::CpeStyle::Kind::intercept_dnsmasq;
  atlas::Scenario scenario(config);
  // Patch: rebuild with DoT interception via a raw CPE config is not exposed
  // through CpeStyle, so exercise the mechanism at the ISP level instead and
  // via cpe::CpeConfig in test_cpe_isp. Here: UDP intercepted, DoT escapes
  // (the CPE rule matches port 53 only).
  auto udp = dot_query(scenario, Channel::udp, quad9());
  ASSERT_TRUE(udp.answered());
  EXPECT_EQ(udp.response->first_txt(), "dnsmasq-2.85");
  auto strict = dot_query(scenario, Channel::dot_strict, quad9());
  ASSERT_TRUE(strict.answered());
  EXPECT_EQ(strict.response->first_txt(), "Q9-P-9.16.15");
}

TEST(DotProber, FindingsPerDeployment) {
  struct Case {
    isp::DotAction action;
    DotFinding expected;
  };
  for (const Case& c : {Case{isp::DotAction::pass, DotFinding::dot_escapes},
                        Case{isp::DotAction::divert, DotFinding::opportunistic_hijacked},
                        Case{isp::DotAction::block, DotFinding::dot_blocked}}) {
    atlas::ScenarioConfig config;
    config.isp_policy.middlebox_enabled = true;
    config.isp_policy.dot_action = c.action;
    atlas::Scenario scenario(config);
    DotProber prober;
    auto report = prober.run(scenario.transport());
    for (const auto& [kind, resolver_report] : report.per_resolver)
      EXPECT_EQ(resolver_report.finding, c.expected)
          << to_string(kind) << " under action " << static_cast<int>(c.action);
  }
}

TEST(DotProber, CleanNetworkIsNotIntercepted) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  DotProber prober;
  auto report = prober.run(scenario.transport());
  for (const auto& [kind, resolver_report] : report.per_resolver)
    EXPECT_EQ(resolver_report.finding, DotFinding::not_intercepted) << to_string(kind);
}

TEST(DotProber, ClassifierTruthTable) {
  auto make = [](LocationVerdict udp, LocationVerdict strict, LocationVerdict opp) {
    DotResolverReport report;
    report.channels[Channel::udp] = {udp, ""};
    report.channels[Channel::dot_strict] = {strict, ""};
    report.channels[Channel::dot_opportunistic] = {opp, ""};
    return report;
  };
  using V = LocationVerdict;
  EXPECT_EQ(DotProber::classify(make(V::standard, V::standard, V::standard)),
            DotFinding::not_intercepted);
  EXPECT_EQ(DotProber::classify(make(V::nonstandard, V::timed_out, V::nonstandard)),
            DotFinding::opportunistic_hijacked);
  EXPECT_EQ(DotProber::classify(make(V::error_status, V::timed_out, V::timed_out)),
            DotFinding::dot_blocked);
  EXPECT_EQ(DotProber::classify(make(V::nonstandard, V::standard, V::standard)),
            DotFinding::dot_escapes);
  EXPECT_EQ(DotProber::classify(make(V::timed_out, V::timed_out, V::timed_out)),
            DotFinding::inconsistent);
}

}  // namespace
}  // namespace dnslocate::core
