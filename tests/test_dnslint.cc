// dnslint's own tests: every rule R1-R9 fires on its fixture, suppressions
// with reasons are honoured, reasonless/unknown allows are findings, and
// clean code stays clean. Fixture trees live under tests/lint_fixtures/
// (DNSLINT_FIXTURES points there; the same trees gate the CLI via the
// dnslint_fixture_* ctest entries).
#include "dnslint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace lint = dnslocate::lint;

namespace {

std::vector<lint::Finding> lint_tree(const std::string& root) {
  std::vector<std::string> files = lint::discover_sources(root, "");
  return lint::lint_paths(root, files);
}

std::set<std::string> rules_fired(const std::vector<lint::Finding>& findings) {
  std::set<std::string> rules;
  for (const auto& f : findings) rules.insert(f.rule);
  return rules;
}

std::size_t count_rule(const std::vector<lint::Finding>& findings, std::string_view rule,
                       std::string_view path_fragment = "") {
  return static_cast<std::size_t>(std::count_if(findings.begin(), findings.end(), [&](const auto& f) {
    return f.rule == rule && f.path.find(path_fragment) != std::string::npos;
  }));
}

const std::string kViolations = std::string(DNSLINT_FIXTURES) + "/violations";
const std::string kClean = std::string(DNSLINT_FIXTURES) + "/clean";

TEST(DnslintFixtures, EveryRuleFiresOnViolationTree) {
  auto findings = lint_tree(kViolations);
  auto rules = rules_fired(findings);
  EXPECT_TRUE(rules.count(std::string(lint::kRuleDeterminism)));
  EXPECT_TRUE(rules.count(std::string(lint::kRuleWireBounds)));
  EXPECT_TRUE(rules.count(std::string(lint::kRuleRaiiSockets)));
  EXPECT_TRUE(rules.count(std::string(lint::kRuleHeaderHygiene)));
  EXPECT_TRUE(rules.count(std::string(lint::kRuleHttpBlocking)));
  EXPECT_TRUE(rules.count(std::string(lint::kRuleAcceptanceSeam)));
  EXPECT_TRUE(rules.count(std::string(lint::kRuleNoBlockingUnderLock)));
  EXPECT_TRUE(rules.count(std::string(lint::kRuleLockOrder)));
  EXPECT_TRUE(rules.count(std::string(lint::kRuleAnnotationCoverage)));
  EXPECT_TRUE(rules.count(std::string(lint::kRuleBadSuppression)));
}

TEST(DnslintFixtures, DeterminismCatchesEveryEntropySource) {
  auto findings = lint_tree(kViolations);
  // random_device, two unseeded engines, srand, rand, system_clock, time().
  EXPECT_GE(count_rule(findings, lint::kRuleDeterminism, "bad_determinism"), 7u);
}

TEST(DnslintFixtures, WireBoundsCatchesRawAccess) {
  auto findings = lint_tree(kViolations);
  // memcpy, reinterpret_cast, .data() arithmetic (x2: memcpy line + raw line).
  EXPECT_GE(count_rule(findings, lint::kRuleWireBounds, "bad_wire"), 3u);
}

TEST(DnslintFixtures, RaiiSocketsCatchesNakedCallsAndInfinitePoll) {
  auto findings = lint_tree(kViolations);
  EXPECT_GE(count_rule(findings, lint::kRuleRaiiSockets, "bad_sockets"), 4u);
  // The deadline half applies inside src/sockets/ too...
  EXPECT_EQ(count_rule(findings, lint::kRuleRaiiSockets, "bad_poll"), 1u);
}

TEST(DnslintFixtures, HttpBlockingFiresOutsideTheListenerSeam) {
  auto findings = lint_tree(kViolations);
  // recv + fgets + getline + cin in handler-layer service code.
  EXPECT_GE(count_rule(findings, lint::kRuleHttpBlocking, "bad_handler"), 3u);
  // A blocking recv on the event thread is doubly wrong: it is also a naked
  // fd call outside the owners.
  EXPECT_GE(count_rule(findings, lint::kRuleRaiiSockets, "bad_handler"), 1u);
  // The accept-loop seam (src/service/http_server.cc) is exempt from R5 and
  // from R3 ownership, but the finite-deadline half of R3 still applies:
  // exactly the infinite poll() fires, not the naked accept().
  EXPECT_EQ(count_rule(findings, lint::kRuleHttpBlocking, "service/http_server"), 0u);
  EXPECT_EQ(count_rule(findings, lint::kRuleRaiiSockets, "service/http_server"), 1u);
}

TEST(DnslintFixtures, HeaderHygieneCatchesGuardAndUsingNamespace) {
  auto findings = lint_tree(kViolations);
  EXPECT_GE(count_rule(findings, lint::kRuleHeaderHygiene, "bad_header"), 3u);
}

TEST(DnslintFixtures, BadSuppressionsAreFindings) {
  auto findings = lint_tree(kViolations);
  // Reasonless allow + unknown rule; and the reasonless allow does NOT
  // suppress, so the rand() beneath it still fires.
  EXPECT_GE(count_rule(findings, lint::kRuleBadSuppression, "bad_suppression"), 2u);
  EXPECT_GE(count_rule(findings, lint::kRuleDeterminism, "bad_suppression"), 1u);
}

TEST(DnslintFixtures, AcceptanceSeamCatchesStrayArbitration) {
  auto findings = lint_tree(kViolations);
  // is_acceptable_response (decl + call), responses_conflict (decl + call),
  // rerandomize_query (decl + call), bytes_hash (def).
  EXPECT_GE(count_rule(findings, lint::kRuleAcceptanceSeam, "bad_acceptance"), 7u);
}

TEST(DnslintFixtures, BlockingUnderLockCatchesThePr8Reconstruction) {
  auto findings = lint_tree(kViolations);
  // ::write and ::fsync of the journal fd under the service-wide mutex.
  EXPECT_EQ(count_rule(findings, lint::kRuleNoBlockingUnderLock, "bad_submit_fsync"), 2u);
}

TEST(DnslintFixtures, LockOrderCatchesDeclaredAndCyclicInversions) {
  auto findings = lint_tree(kViolations);
  // One edge contradicting the fixture tree's lock_order.txt (mu_b -> mu_a)
  // and one closing a cycle among undeclared labels (mu_d -> mu_c).
  EXPECT_EQ(count_rule(findings, lint::kRuleLockOrder, "bad_lock_order"), 2u);
}

TEST(DnslintFixtures, AnnotationCoverageCatchesRawMutexAndBareField) {
  auto findings = lint_tree(kViolations);
  // A raw std::mutex member plus a field after a Mutex member without
  // DNSLOCATE_GUARDED_BY.
  EXPECT_EQ(count_rule(findings, lint::kRuleAnnotationCoverage, "bad_lock_annotations"), 2u);
}

TEST(DnslintFixtures, CleanTreeIsClean) {
  auto findings = lint_tree(kClean);
  for (const auto& f : findings) ADD_FAILURE() << f.to_string();
  EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------------------------
// Inline-content cases: scoping and scrubbing behaviour pinned precisely.

TEST(DnslintRules, RulesAreScopedByPath) {
  const std::string wire_sin = "void f(char* d, const char* s) { memcpy(d, s, 4); }\n";
  // memcpy is only a finding under src/dnswire/.
  EXPECT_EQ(lint::lint_file("src/dnswire/x.cc", wire_sin).size(), 1u);
  EXPECT_TRUE(lint::lint_file("src/core/x.cc", wire_sin).empty());
  EXPECT_TRUE(lint::lint_file("tests/x.cc", wire_sin).empty());

  const std::string socket_sin = "int f() { return socket(2, 2, 0); }\n";
  EXPECT_EQ(lint::lint_file("src/core/x.cc", socket_sin).size(), 1u);
  EXPECT_TRUE(lint::lint_file("src/sockets/x.cc", socket_sin).empty());
}

TEST(DnslintRules, ServiceListenerSeamScoping) {
  const std::string blocking_read =
      "int f(int fd) { char b[4]; return static_cast<int>(recv(fd, b, 4, 0)); }\n";
  // Handler-layer service code: naked fd call (R3) AND a blocking read on
  // the event thread (R5).
  EXPECT_EQ(lint::lint_file("src/service/api.cc", blocking_read).size(), 2u);
  // Outside src/service/, only R3 applies.
  EXPECT_EQ(lint::lint_file("src/core/x.cc", blocking_read).size(), 1u);
  // The accept-loop seam owns its fds and is exempt from both.
  EXPECT_TRUE(lint::lint_file("src/service/http_server.cc", blocking_read).empty());

  // The seam keeps the finite-deadline half of R3.
  const std::string infinite = "int g(pollfd* p) { return poll(p, 1, -1); }\n";
  EXPECT_EQ(lint::lint_file("src/service/http_server.cc", infinite).size(), 1u);
}

TEST(DnslintRules, AcceptanceSeamScoping) {
  const std::string acceptance = "bool ok = is_acceptable_response(q, r);\n";
  // Acceptance logic is only legal inside the kernel and the wire layer
  // that defines the predicate.
  EXPECT_EQ(lint::lint_file("src/sockets/x.cc", acceptance).size(), 1u);
  EXPECT_EQ(lint::lint_file("src/core/x.cc", acceptance).size(), 1u);
  EXPECT_TRUE(lint::lint_file("src/core/exchange.cc", acceptance).empty());
  EXPECT_TRUE(lint::lint_file("src/dnswire/message.cc", acceptance).empty());
  EXPECT_TRUE(lint::lint_file("tests/x.cc", acceptance).empty());

  const std::string reroll = "rerandomize_query(m, policy, rng);\n";
  EXPECT_EQ(lint::lint_file("src/sockets/x.cc", reroll).size(), 1u);
  EXPECT_TRUE(lint::lint_file("src/core/retry.cc", reroll).empty());
  EXPECT_TRUE(lint::lint_file("src/core/exchange.cc", reroll).empty());

  const std::string conflict = "bool c = responses_conflict(a, b);\n";
  EXPECT_EQ(lint::lint_file("src/core/x.cc", conflict).size(), 1u);
  // The kernel header is exempt from R6 (other rules, e.g. header hygiene,
  // still apply to it).
  for (const auto& f : lint::lint_file("src/core/exchange.h", conflict))
    EXPECT_NE(f.rule, std::string(lint::kRuleAcceptanceSeam)) << f.to_string();
}

TEST(DnslintRules, SeamFilesMayTouchEntropyAndClock) {
  const std::string seam = "#include <random>\nstd::random_device dev;\n";
  EXPECT_TRUE(lint::lint_file("src/simnet/rng.cc", seam).empty());
  EXPECT_TRUE(lint::lint_file("src/obs/clock.cc", seam).empty());
  EXPECT_FALSE(lint::lint_file("src/core/detector.cc", seam).empty());
}

TEST(DnslintRules, ScrubberIgnoresCommentsStringsAndRawStrings) {
  const std::string hidden =
      "// rand() in a comment\n"
      "/* std::random_device in a block\n   comment */\n"
      "const char* s = \"rand() memcpy( system_clock\";\n"
      "const char* r = R\"(rand() poll(x, -1))\";\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.cc", hidden).empty());
}

TEST(DnslintRules, SuppressionNeedsMatchingRuleAndLine) {
  // allow(wire-bounds) does not silence a determinism finding.
  const std::string wrong_rule =
      "int x = rand();  // dnslint: allow(wire-bounds): wrong rule\n";
  auto findings = lint::lint_file("src/core/x.cc", wrong_rule);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, std::string(lint::kRuleDeterminism));

  // A line-above allow does not reach two lines down.
  const std::string too_far =
      "// dnslint: allow(determinism): only covers the next line\n"
      "int a = 0;\n"
      "int b = rand();\n";
  EXPECT_EQ(lint::lint_file("src/core/x.cc", too_far).size(), 1u);
}

TEST(DnslintRules, FindingsCarryFileLineAndRule) {
  const std::string content = "int a;\nint b = rand();\n";
  auto findings = lint::lint_file("src/core/x.cc", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].path, "src/core/x.cc");
  EXPECT_NE(findings[0].to_string().find("src/core/x.cc:2: error: [determinism]"),
            std::string::npos);
}

TEST(DnslintRules, MemberCallsAndQualifiedLookalikesAreNotFlagged) {
  const std::string benign =
      "auto t = sim.time();\n"            // member time() is sim time
      "stream.close();\n"                 // RAII close
      "auto v = obj->poll();\n"           // member poll
      "int fclose_result = std::fclose(f);\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.cc", benign).empty());
}

// ------------------------------------------------------------------------
// Scope-aware engine (R7-R9): guard lifetimes through nested scopes.

std::size_t count_rule_inline(const std::vector<lint::Finding>& findings,
                              std::string_view rule) {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(), [&](const auto& f) { return f.rule == rule; }));
}

TEST(DnslintScopes, BlockingCallUnderGuardFires) {
  const std::string bad =
      "void f(std::mutex& m, int fd) {\n"
      "  std::lock_guard<std::mutex> lock(m);\n"
      "  ::fsync(fd);\n"
      "}\n";
  auto findings = lint::lint_file("src/core/x.cc", bad);
  ASSERT_EQ(count_rule_inline(findings, lint::kRuleNoBlockingUnderLock), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  // The rule only polices src/.
  EXPECT_TRUE(lint::lint_file("tests/x.cc", bad).empty());
}

TEST(DnslintScopes, GuardDiesWithItsScope) {
  const std::string ok =
      "void f(std::mutex& m, int fd) {\n"
      "  {\n"
      "    std::lock_guard<std::mutex> lock(m);\n"
      "  }\n"
      "  ::fsync(fd);\n"
      "}\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.cc", ok).empty());
}

TEST(DnslintScopes, UnlockAndMoveReleaseTheGuard) {
  const std::string unlocked =
      "void f(std::mutex& m, int fd) {\n"
      "  std::unique_lock<std::mutex> lock(m);\n"
      "  lock.unlock();\n"
      "  ::fsync(fd);\n"
      "  lock.lock();\n"
      "  lock.unlock();\n"
      "  ::write(fd, \"x\", 1);\n"
      "}\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.cc", unlocked).empty());

  const std::string moved =
      "void f(std::mutex& m, int fd) {\n"
      "  std::unique_lock<std::mutex> lock(m);\n"
      "  auto sink = std::move(lock);\n"
      "  ::fsync(fd);\n"
      "}\n";
  // `lock` no longer owns the mutex; `sink` was never declared as a tracked
  // guard type declaration, so nothing is held by `lock` itself. (The
  // conservative tracker follows ownership, not aliases.)
  auto findings = lint::lint_file("src/core/x.cc", moved);
  EXPECT_EQ(count_rule_inline(findings, lint::kRuleNoBlockingUnderLock), 0u);
}

TEST(DnslintScopes, LambdaBodySuspendsEnclosingGuards) {
  const std::string deferred =
      "void f(std::mutex& m) {\n"
      "  std::lock_guard<std::mutex> lock(m);\n"
      "  auto task = [](int fd) -> int {\n"
      "    ::fsync(fd);\n"
      "    return 0;\n"
      "  };\n"
      "  (void)task;\n"
      "}\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.cc", deferred).empty());

  // ...but a guard declared *inside* the lambda body is live there.
  const std::string inside =
      "void f(std::mutex& m) {\n"
      "  auto task = [&m](int fd) {\n"
      "    std::lock_guard<std::mutex> lock(m);\n"
      "    ::fsync(fd);\n"
      "  };\n"
      "  (void)task;\n"
      "}\n";
  auto findings = lint::lint_file("src/core/x.cc", inside);
  EXPECT_EQ(count_rule_inline(findings, lint::kRuleNoBlockingUnderLock), 1u);
}

TEST(DnslintScopes, SimulatorRunUnderLockFires) {
  const std::string bad =
      "void f(std::mutex& m, simnet::Simulator& sim) {\n"
      "  std::lock_guard<std::mutex> lock(m);\n"
      "  sim.run(std::chrono::seconds(1));\n"
      "}\n";
  auto findings = lint::lint_file("src/core/x.cc", bad);
  EXPECT_EQ(count_rule_inline(findings, lint::kRuleNoBlockingUnderLock), 1u);
}

TEST(DnslintScopes, LockOrderChecksDeclaredOrderAndCycles) {
  lint::LockOrder order;
  order.labels = {"outer", "inner"};
  EXPECT_EQ(order.rank("outer"), 0);
  EXPECT_EQ(order.rank("inner"), 1);
  EXPECT_EQ(order.rank("stranger"), -1);

  const std::string inverted =
      "void f(std::mutex& outer, std::mutex& inner) {\n"
      "  std::lock_guard<std::mutex> a(inner);\n"
      "  std::lock_guard<std::mutex> b(outer);\n"
      "}\n";
  auto findings = lint::lint_file("src/core/x.cc", inverted, order);
  EXPECT_EQ(count_rule_inline(findings, lint::kRuleLockOrder), 1u);

  // Right order: clean.
  const std::string ordered =
      "void f(std::mutex& outer, std::mutex& inner) {\n"
      "  std::lock_guard<std::mutex> a(outer);\n"
      "  std::lock_guard<std::mutex> b(inner);\n"
      "}\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.cc", ordered, order).empty());

  // Undeclared labels: cycle detection still applies within the file.
  const std::string cyclic =
      "void f(std::mutex& p, std::mutex& q) {\n"
      "  { std::lock_guard<std::mutex> a(p); std::lock_guard<std::mutex> b(q); }\n"
      "  { std::lock_guard<std::mutex> b(q); std::lock_guard<std::mutex> a(p); }\n"
      "}\n";
  auto cycle_findings = lint::lint_file("src/core/x.cc", cyclic);
  EXPECT_EQ(count_rule_inline(cycle_findings, lint::kRuleLockOrder), 1u);
}

TEST(DnslintScopes, LockOrderParsesConfigText) {
  lint::LockOrder order = lint::parse_lock_order(
      "# comment\n  mutex_   # service-wide\nmutex\n\n");
  ASSERT_EQ(order.labels.size(), 2u);
  EXPECT_EQ(order.labels[0], "mutex_");
  EXPECT_EQ(order.labels[1], "mutex");
}

TEST(DnslintScopes, AnnotationCoverageRequiresWrapperAndGuardedBy) {
  const std::string raw_mutex =
      "class C {\n"
      " private:\n"
      "  std::mutex m_;\n"
      "};\n";
  // Only annotated subsystems are policed.
  EXPECT_EQ(count_rule_inline(lint::lint_file("src/obs/x.h", raw_mutex),
                              lint::kRuleAnnotationCoverage),
            1u);
  EXPECT_EQ(count_rule_inline(lint::lint_file("src/core/x.h", raw_mutex),
                              lint::kRuleAnnotationCoverage),
            0u);

  const std::string bare_field =
      "class C {\n"
      " private:\n"
      "  mutable netbase::Mutex mutex_;\n"
      "  int counter_ = 0;\n"
      "};\n";
  EXPECT_EQ(count_rule_inline(lint::lint_file("src/service/x.h", bare_field),
                              lint::kRuleAnnotationCoverage),
            1u);

  const std::string covered =
      "class C {\n"
      " public:\n"
      "  void bump() DNSLOCATE_EXCLUDES(mutex_);\n"
      "  std::size_t total() const;\n"
      " private:\n"
      "  std::string name_;\n"  // before the Mutex: immutable by convention
      "  mutable netbase::Mutex mutex_;\n"
      "  std::condition_variable cv_;\n"
      "  std::atomic<bool> stop_{false};\n"
      "  int counter_ DNSLOCATE_GUARDED_BY(mutex_) = 0;\n"
      "  std::vector<int> bins_ DNSLOCATE_GUARDED_BY(mutex_);\n"
      "};\n";
  EXPECT_EQ(count_rule_inline(lint::lint_file("src/service/x.h", covered),
                              lint::kRuleAnnotationCoverage),
            0u);
}

TEST(DnslintScopes, SuppressionsCoverTheNewRules) {
  const std::string suppressed =
      "void f(std::mutex& m, int fd) {\n"
      "  std::lock_guard<std::mutex> lock(m);\n"
      "  // dnslint: allow(no-blocking-under-lock): leaf lock guards the fd itself\n"
      "  ::fsync(fd);\n"
      "}\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.cc", suppressed).empty());
}

// ------------------------------------------------------------------------
// Multi-line statements: a line-above allow covers the whole statement.

TEST(DnslintSuppressions, LineAboveAllowCoversTheWholeStatement) {
  const std::string spread =
      "// dnslint: allow(determinism): seeding comparison baseline\n"
      "int x = rand() +\n"
      "        rand() +\n"
      "        rand();\n";
  EXPECT_TRUE(lint::lint_file("src/core/x.cc", spread).empty());

  // Without the allow, every line of the statement fires.
  const std::string bare =
      "int x = rand() +\n"
      "        rand() +\n"
      "        rand();\n";
  EXPECT_EQ(lint::lint_file("src/core/x.cc", bare).size(), 3u);

  // The statement's end is respected: the next statement is NOT covered.
  const std::string next_stmt =
      "// dnslint: allow(determinism): covers only the call below\n"
      "int x = rand(\n"
      ");\n"
      "int y = rand();\n";
  auto findings = lint::lint_file("src/core/x.cc", next_stmt);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4u);
}

TEST(DnslintDiscovery, WalksHeadersAndSources) {
  auto files = lint::discover_sources(kViolations, "");
  ASSERT_FALSE(files.empty());
  bool has_header = false, has_source = false;
  for (const auto& f : files) {
    if (f.find("bad_header.h") != std::string::npos) has_header = true;
    if (f.find("bad_wire.cc") != std::string::npos) has_source = true;
  }
  EXPECT_TRUE(has_header);
  EXPECT_TRUE(has_source);
}

}  // namespace
