// Answer arbitration under genuinely concurrent senders. A flood server
// answers every query from two sender threads at once — an accepted answer,
// a byte-identical duplicate, and a conflicting rcode racing each other
// into UdpEngine's shared socket. Run under ThreadSanitizer in CI: the
// interesting surface is the engine's receive/demux loop and the
// process-wide metrics registry with responders (and a second engine)
// racing it.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/query_batch.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "sockets/udp_engine.h"

namespace dnslocate::sockets {
namespace {

/// Answers each query from two concurrent sender threads sharing one
/// socket: thread 0 sends the genuine NOERROR answer twice (the second is
/// a byte-identical duplicate the client must deduplicate), thread 1 sends
/// a conflicting NXDOMAIN for the same transaction.
class FloodServer {
 public:
  FloodServer() {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) throw std::runtime_error("FloodServer: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      throw std::runtime_error("FloodServer: bind() failed");
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    recv_thread_ = std::thread([this] { recv_loop(); });
    for (std::size_t k = 0; k < kSenders; ++k)
      senders_.emplace_back([this, k] { sender_loop(k); });
  }

  ~FloodServer() {
    running_.store(false);
    cv_.notify_all();
    if (recv_thread_.joinable()) recv_thread_.join();
    for (auto& t : senders_)
      if (t.joinable()) t.join();
    if (fd_ >= 0) ::close(fd_);
  }

  FloodServer(const FloodServer&) = delete;
  FloodServer& operator=(const FloodServer&) = delete;

  [[nodiscard]] netbase::Endpoint endpoint() const {
    return netbase::Endpoint{netbase::Ipv4Address(127, 0, 0, 1), port_};
  }

 private:
  static constexpr std::size_t kSenders = 2;

  struct Job {
    dnswire::Message query;
    sockaddr_storage to;
    socklen_t to_len;
  };

  void recv_loop() {
    while (running_.load()) {
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, 20) <= 0) continue;
      std::uint8_t buffer[4096];
      sockaddr_storage from{};
      socklen_t from_len = sizeof from;
      ssize_t n = ::recvfrom(fd_, buffer, sizeof buffer, 0,
                             reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n <= 0) continue;
      auto query = dnswire::decode_message({buffer, static_cast<std::size_t>(n)});
      if (!query) continue;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& queue : jobs_) queue.push_back(Job{*query, from, from_len});
      }
      cv_.notify_all();
    }
  }

  void sender_loop(std::size_t k) {
    while (true) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return !jobs_[k].empty() || !running_.load(); });
        if (jobs_[k].empty()) return;  // shutting down
        job = std::move(jobs_[k].front());
        jobs_[k].pop_front();
      }
      if (k == 0) {
        send(dnswire::make_response(job.query), job);
        send(dnswire::make_response(job.query), job);  // byte-identical dup
      } else {
        send(dnswire::make_response(job.query, dnswire::Rcode::NXDOMAIN), job);
      }
    }
  }

  void send(const dnswire::Message& message, const Job& job) {
    auto wire = dnswire::encode_message(message);
    // Concurrent sendto on the shared fd is deliberate: both senders race
    // into the engine's single receive loop.
    ::sendto(fd_, wire.data(), wire.size(), 0, reinterpret_cast<const sockaddr*>(&job.to),
             job.to_len);
  }

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{true};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> jobs_[kSenders];
  std::thread recv_thread_;
  std::vector<std::thread> senders_;
};

dnswire::Message flood_query(std::uint16_t id) {
  return dnswire::make_query(id, *dnswire::DnsName::parse("race.arbitration.test"),
                             dnswire::RecordType::A);
}

TEST(RaceArbitration, ConcurrentConflictingAnswersAreArbitratedExactly) {
  FloodServer server;
  UdpEngine engine;

  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(2000);
  core::QueryBatch batch;
  constexpr std::size_t kQueries = 8;
  for (std::size_t i = 0; i < kQueries; ++i)
    batch.add(server.endpoint(), flood_query(static_cast<std::uint16_t>(0x4100 + i)), options);
  engine.run(batch);

  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto& result = batch.result(i);
    ASSERT_TRUE(result.answered()) << "query " << i;
    // Whatever the arrival interleaving, arbitration must converge on the
    // same evidence: one accepted answer, one conflicting rcode, and the
    // byte-identical duplicate folded away.
    EXPECT_GE(result.arbitration.conflicts, 1u) << "query " << i;
    EXPECT_EQ(result.all_responses.size(), 2u) << "query " << i;
    EXPECT_TRUE(result.contested()) << "query " << i;
  }
  EXPECT_GE(engine.telemetry().conflicts, kQueries);
}

TEST(RaceArbitration, TwoEnginesShareTheProcessSafely) {
  // Two engines in two threads against the same flood server: exercises the
  // process-wide metrics registry (static counters in note_transport_metrics)
  // and the per-engine demux state under real parallelism.
  FloodServer server;

  auto run_one = [&](std::uint16_t id_base, std::size_t* conflicted) {
    UdpEngine engine;
    core::QueryOptions options;
    options.timeout = std::chrono::milliseconds(2000);
    core::QueryBatch batch;
    for (std::size_t i = 0; i < 4; ++i)
      batch.add(server.endpoint(), flood_query(static_cast<std::uint16_t>(id_base + i)), options);
    engine.run(batch);
    std::size_t count = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      if (!batch.result(i).answered()) continue;
      if (batch.result(i).contested()) ++count;
    }
    *conflicted = count;
  };

  std::size_t conflicted_a = 0;
  std::size_t conflicted_b = 0;
  std::thread a([&] { run_one(0x5100, &conflicted_a); });
  std::thread b([&] { run_one(0x6100, &conflicted_b); });
  a.join();
  b.join();

  EXPECT_EQ(conflicted_a, 4u);
  EXPECT_EQ(conflicted_b, 4u);
}

}  // namespace
}  // namespace dnslocate::sockets
