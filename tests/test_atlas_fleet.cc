// Fleet generator tests: determinism, quota accounting against the paper's
// calibration targets, scaling, and a scaled end-to-end measurement.
#include <gtest/gtest.h>

#include "atlas/fleet.h"
#include "atlas/measurement.h"
#include "report/aggregate.h"

namespace dnslocate::atlas {
namespace {

TEST(Fleet, DeterministicFromSeed) {
  auto a = generate_fleet({});
  auto b = generate_fleet({});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].probe_id, b[i].probe_id);
    EXPECT_EQ(a[i].org.org, b[i].org.org);
    EXPECT_EQ(a[i].scenario.seed, b[i].scenario.seed);
    EXPECT_EQ(a[i].scenario.cpe.kind, b[i].scenario.cpe.kind);
    EXPECT_EQ(a[i].scenario.home_ipv6, b[i].scenario.home_ipv6);
  }
}

TEST(Fleet, SizeMatchesThePilotStudy) {
  auto fleet = generate_fleet({});
  EXPECT_GT(fleet.size(), 9500u);  // "over 9,600 probes" in the paper
  EXPECT_LT(fleet.size(), 9800u);
}

TEST(Fleet, QuotasMatchCalibration) {
  auto fleet = generate_fleet({});
  std::size_t cpe_interceptors = 0;
  std::size_t isp_middleboxes = 0;
  std::size_t externals = 0;
  std::size_t ipv6_homes = 0;
  std::size_t xb6 = 0, pihole = 0, unbound = 0;
  for (const auto& spec : fleet) {
    if (spec.scenario.cpe.intercepts()) ++cpe_interceptors;
    if (spec.scenario.isp_policy.middlebox_enabled) ++isp_middleboxes;
    if (spec.scenario.external_interceptor) ++externals;
    if (spec.scenario.home_ipv6) ++ipv6_homes;
    if (spec.scenario.cpe.kind == CpeStyle::Kind::xb6_buggy) ++xb6;
    if (spec.scenario.cpe.kind == CpeStyle::Kind::pihole) ++pihole;
    if (spec.scenario.cpe.kind == CpeStyle::Kind::intercept_unbound) ++unbound;
  }
  EXPECT_EQ(cpe_interceptors, 49u);  // paper: 49 of 220
  EXPECT_EQ(externals, 7u);
  EXPECT_EQ(isp_middleboxes, 162u);  // 56 all-four + 60 scoped + 46 one-allowed
  EXPECT_EQ(xb6, 17u);               // Comcast 10 + Shaw 4 + Vodafone 3
  EXPECT_EQ(pihole, 8u);             // Table 5
  EXPECT_EQ(unbound, 6u);            // Table 5
  // IPv6 homes ~39% of the fleet (Table 4's v6 totals).
  double v6_fraction = static_cast<double>(ipv6_homes) / static_cast<double>(fleet.size());
  EXPECT_NEAR(v6_fraction, 0.39, 0.03);
}

TEST(Fleet, ComcastIsTheLargestOrg) {
  auto fleet = generate_fleet({});
  std::map<std::string, std::size_t> sizes;
  for (const auto& spec : fleet) ++sizes[spec.org.org];
  std::string largest;
  std::size_t best = 0;
  for (const auto& [org, count] : sizes)
    if (count > best) {
      best = count;
      largest = org;
    }
  EXPECT_NE(largest.find("Comcast"), std::string::npos);
  EXPECT_NE(sizes.size(), 0u);
  EXPECT_GT(sizes.size(), 25u);  // variety of orgs
}

TEST(Fleet, ScalingShrinksPopulationButKeepsQuotas) {
  FleetConfig config;
  config.scale = 0.05;
  auto fleet = generate_fleet(config);
  EXPECT_LT(fleet.size(), 1200u);
  std::size_t cpe_interceptors = 0;
  for (const auto& spec : fleet)
    if (spec.scenario.cpe.intercepts()) ++cpe_interceptors;
  EXPECT_EQ(cpe_interceptors, 49u);  // quotas survive downscaling
}

TEST(Fleet, ProbeIdsAreUnique) {
  auto fleet = generate_fleet({});
  std::set<std::uint32_t> ids;
  for (const auto& spec : fleet) ids.insert(spec.probe_id);
  EXPECT_EQ(ids.size(), fleet.size());
}

TEST(Fleet, SiteIndexDependsOnlyOnCountry) {
  EXPECT_EQ(site_index_for_country("US"), site_index_for_country("US"));
  // Not a strict requirement, but the catalog is large enough that the top
  // countries should not all collapse onto one site.
  std::set<std::size_t> sites;
  for (const char* cc : {"US", "DE", "FR", "GB", "NL", "RU", "JP"})
    sites.insert(site_index_for_country(cc));
  EXPECT_GT(sites.size(), 3u);
}

TEST(Measurement, ScaledFleetRunKeepsTheShape) {
  FleetConfig config;
  config.scale = 0.03;  // ~quota-only fleet, fast
  auto fleet = generate_fleet(config);
  auto run = run_fleet(fleet);
  ASSERT_EQ(run.records.size(), fleet.size());

  // All the paper's qualitative findings must hold even on the small fleet.
  EXPECT_EQ(run.count_location(core::InterceptorLocation::cpe), 52u);  // 49 + 3 known FPs
  EXPECT_GT(run.count_location(core::InterceptorLocation::isp), 100u);
  EXPECT_GT(run.count_location(core::InterceptorLocation::unknown), 20u);

  // Exactly the three deliberately planted §6 misclassifications miss; the
  // quota-dominated small fleet makes them 3 of ~290, so assert the count.
  auto matrix = report::accuracy_matrix(run);
  EXPECT_EQ(matrix.total() - matrix.correct(), 3u);

  auto census = report::pattern_census(run, netbase::IpFamily::v6);
  EXPECT_EQ(census.all_four, 0u);  // Table 4: no all-four v6 interception
}

TEST(Measurement, RunProbeIsDeterministic) {
  auto fleet = generate_fleet({});
  // Pick an intercepted probe (Comcast XB6 quota lives at the front).
  const ProbeSpec* spec = nullptr;
  for (const auto& candidate : fleet)
    if (candidate.scenario.cpe.kind == CpeStyle::Kind::xb6_buggy) {
      spec = &candidate;
      break;
    }
  ASSERT_NE(spec, nullptr);
  auto first = run_probe(*spec);
  auto second = run_probe(*spec);
  EXPECT_EQ(first.verdict.location, second.verdict.location);
  ASSERT_TRUE(first.verdict.cpe_check && second.verdict.cpe_check);
  EXPECT_EQ(first.verdict.cpe_check->cpe.display, second.verdict.cpe_check->cpe.display);
}

}  // namespace
}  // namespace dnslocate::atlas

namespace dnslocate::atlas {
namespace {

TEST(Measurement, ParallelRunMatchesSequential) {
  FleetConfig config;
  config.scale = 0.02;
  auto fleet = generate_fleet(config);

  MeasurementOptions sequential;
  auto a = run_fleet(fleet, sequential);

  MeasurementOptions parallel;
  parallel.threads = 4;
  std::size_t progress_calls = 0;
  parallel.progress = [&](std::size_t, std::size_t) { ++progress_calls; };
  auto b = run_fleet(fleet, parallel);

  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(progress_calls, fleet.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].probe_id, b.records[i].probe_id);
    EXPECT_EQ(a.records[i].verdict.location, b.records[i].verdict.location);
  }
}

}  // namespace
}  // namespace dnslocate::atlas
