// Socket transport tests over the in-process loopback DNS server: the same
// pipeline that runs in the simulator runs over real UDP sockets.
#include <gtest/gtest.h>

#include "core/detector.h"
#include "dnswire/debug_queries.h"
#include "resolvers/resolver_behavior.h"
#include "sockets/loopback_server.h"
#include "sockets/udp_transport.h"

namespace dnslocate::sockets {
namespace {

std::shared_ptr<resolvers::ResolverBehavior> test_resolver() {
  resolvers::ResolverConfig config;
  config.software = resolvers::unbound("1.17.0", "loopback-test");
  config.egress_v4 = *netbase::IpAddress::parse("127.0.0.1");
  return std::make_shared<resolvers::ResolverBehavior>(config);
}

TEST(UdpTransport, QueryRoundTripOverLoopback) {
  LoopbackDnsServer server(test_resolver());
  UdpTransport transport;

  auto query = dnswire::make_query(0x4242, *dnswire::DnsName::parse("example.com"),
                                   dnswire::RecordType::A);
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(2000);
  auto result = transport.query(server.endpoint(), query, options);

  ASSERT_TRUE(result.answered());
  EXPECT_EQ(result.response->id, 0x4242);
  EXPECT_TRUE(result.response->first_address().has_value());
  EXPECT_EQ(server.queries_served(), 1u);
  EXPECT_GT(result.rtt.count(), 0);
}

TEST(UdpTransport, ChaosQueriesWork) {
  LoopbackDnsServer server(test_resolver());
  UdpTransport transport;
  auto query = dnswire::make_chaos_query(7, dnswire::version_bind());
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(2000);
  auto result = transport.query(server.endpoint(), query, options);
  ASSERT_TRUE(result.answered());
  EXPECT_EQ(result.response->first_txt(), "unbound 1.17.0");
}

TEST(UdpTransport, TimesOutWhenNothingListens) {
  UdpTransport transport;
  // A loopback port with (almost certainly) no listener.
  netbase::Endpoint dead{*netbase::IpAddress::parse("127.0.0.1"), 1};
  auto query = dnswire::make_query(1, *dnswire::DnsName::parse("example.com"),
                                   dnswire::RecordType::A);
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(100);
  auto result = transport.query(dead, query, options);
  EXPECT_FALSE(result.answered());
  EXPECT_EQ(result.status, core::QueryResult::Status::timed_out);
}

TEST(UdpTransport, CancellationCutsRetrySleepsShort) {
  // Three attempts with 2s timeouts and a 2s backoff would take ~8s against
  // a dead endpoint; a 50ms cancellation budget must cut the poll horizon
  // and the inter-attempt backoff short, reporting an honest timeout.
  UdpTransport transport;
  netbase::Endpoint dead{*netbase::IpAddress::parse("127.0.0.1"), 1};
  auto query = dnswire::make_query(2, *dnswire::DnsName::parse("example.com"),
                                   dnswire::RecordType::A);
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(2000);
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = std::chrono::milliseconds(2000);
  options.cancel = core::CancelToken::after(std::chrono::milliseconds(50));

  auto start = std::chrono::steady_clock::now();
  auto result = transport.query(dead, query, options);
  auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_FALSE(result.answered());
  EXPECT_EQ(result.status, core::QueryResult::Status::timed_out);
  EXPECT_LT(elapsed, std::chrono::milliseconds(1000));
}

TEST(UdpTransport, SupportsV4) {
  UdpTransport transport;
  EXPECT_TRUE(transport.supports_family(netbase::IpFamily::v4));
  EXPECT_TRUE(transport.supports_ttl());
}

TEST(UdpTransport, MismatchedIdIsIgnored) {
  // A responder that answers with the wrong transaction id: the transport
  // must not accept it, and the query times out.
  struct WrongId : resolvers::DnsResponder {
    std::optional<dnswire::Message> respond(const dnswire::Message& query,
                                            const resolvers::QueryContext&) override {
      auto response = dnswire::make_response(query);
      response.id = static_cast<std::uint16_t>(query.id + 1);
      return response;
    }
  };
  LoopbackDnsServer server(std::make_shared<WrongId>());
  UdpTransport transport;
  auto query = dnswire::make_query(0x1000, *dnswire::DnsName::parse("example.com"),
                                   dnswire::RecordType::A);
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(300);
  auto result = transport.query(server.endpoint(), query, options);
  EXPECT_FALSE(result.answered());
}

TEST(UdpTransport, BlockingResolverShowsErrorStatus) {
  resolvers::ResolverConfig config;
  config.software = resolvers::chaos_refuser("filter", dnswire::Rcode::NOTIMP);
  config.block_all_rcode = dnswire::Rcode::REFUSED;
  LoopbackDnsServer server(std::make_shared<resolvers::ResolverBehavior>(config));
  UdpTransport transport;
  auto query = dnswire::make_query(5, *dnswire::DnsName::parse("example.com"),
                                   dnswire::RecordType::A);
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(2000);
  auto result = transport.query(server.endpoint(), query, options);
  ASSERT_TRUE(result.answered());
  EXPECT_EQ(result.response->rcode(), dnswire::Rcode::REFUSED);
}

TEST(UdpTransport, DetectorRunsOverRealSockets) {
  // Run step 1 against the real public-resolver addresses. What comes back
  // depends on the environment — unreachable (timeouts), clean (standard),
  // or intercepted (this very sandbox answers NXDOMAIN for 1.1.1.1, which
  // the technique correctly flags). Assert environment-independent
  // invariants: every probe executed, classified, and rendered.
  UdpTransport transport;
  core::InterceptionDetector::Config config;
  config.test_v6 = false;
  config.use_secondary_addresses = false;
  config.query.timeout = std::chrono::milliseconds(60);
  core::InterceptionDetector detector(config);
  auto report = detector.run(transport);
  EXPECT_EQ(report.probes.size(), 4u);
  for (const auto& probe : report.probes) {
    EXPECT_FALSE(probe.display.empty());
    if (!probe.result.answered())
      EXPECT_EQ(probe.verdict, core::LocationVerdict::timed_out);
    else
      EXPECT_NE(probe.verdict, core::LocationVerdict::timed_out);
  }
}

}  // namespace
}  // namespace dnslocate::sockets
