// Adversarial interceptor zoo: spoofing injectors and DPI middleboxes
// layered onto scenario worlds, and the arbitration/contested-verdict
// machinery that keeps the classifier honest under them.
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "core/describe.h"
#include "core/fingerprint.h"
#include "scenario_corpus.h"
#include "simnet/adversary.h"

namespace dnslocate::core {
namespace {

atlas::ScenarioConfig clean_config() { return atlas::ScenarioConfig{}; }

ProbeVerdict run_pipeline(atlas::Scenario& scenario) {
  LocalizationPipeline pipeline(scenario.pipeline_config());
  return pipeline.run(scenario.transport());
}

TEST(Spoofer, OnPathRaceContestsCleanPath) {
  atlas::ScenarioConfig config = clean_config();
  config.adversary.transit_spoofer = simnet::SpooferConfig{};
  atlas::Scenario scenario(config);
  ProbeVerdict verdict = run_pipeline(scenario);

  ASSERT_NE(scenario.spoofer(), nullptr);
  EXPECT_GT(scenario.spoofer()->queries_seen(), 0u);
  EXPECT_GT(scenario.spoofer()->injections(), 0u);

  // The forgery passes RFC 5452 (copied ID and casing) and races the
  // genuine answer, so both are collected and conflict.
  EXPECT_GT(verdict.telemetry.conflicts, 0u);
  EXPECT_TRUE(verdict.detection.any_contested());
  // The contested verdict: interception (attempt) is established, but no
  // location is fabricated from conflicting evidence.
  EXPECT_EQ(verdict.location, InterceptorLocation::contested);
  EXPECT_TRUE(verdict.intercepted());
  EXPECT_TRUE(verdict.contested());
}

TEST(Spoofer, OffPathIdGuessesAreRejectedAndCounted) {
  atlas::ScenarioConfig config = clean_config();
  simnet::SpooferConfig spoofer;
  spoofer.on_path = false;
  spoofer.id_guesses = 4;
  config.adversary.transit_spoofer = spoofer;
  atlas::Scenario scenario(config);
  ProbeVerdict verdict = run_pipeline(scenario);

  // Off-path guesses carry wrong IDs: every injection fails acceptance and
  // lands in the spoof-suspected tally; the verdict is untouched.
  EXPECT_GT(verdict.telemetry.spoof_suspected, 0u);
  EXPECT_EQ(verdict.telemetry.conflicts, 0u);
  EXPECT_EQ(verdict.location, InterceptorLocation::not_intercepted);
}

TEST(Spoofer, WrongEgressSourceIsRejectedAndCounted) {
  atlas::ScenarioConfig config = clean_config();
  simnet::SpooferConfig spoofer;
  spoofer.forge_source = true;  // on-path, but sourced from the wrong address
  config.adversary.transit_spoofer = spoofer;
  atlas::Scenario scenario(config);
  ProbeVerdict verdict = run_pipeline(scenario);

  // A forgery from an endpoint other than the queried server dies at the
  // client's conntrack-checking NAT or the transport's source check.
  EXPECT_EQ(verdict.telemetry.conflicts, 0u);
  EXPECT_EQ(verdict.location, InterceptorLocation::not_intercepted);
}

TEST(Spoofer, InjectionLeadKnobIsDeterministicAcrossLeads) {
  // Whether the forgery leads or lags the genuine answer (~12 ms from the
  // core), the duplicate window outlives both: the conflict is always
  // surfaced and the verdict is contested, byte-identically per seed.
  for (auto lead : {std::chrono::microseconds(100), std::chrono::microseconds(5000),
                    std::chrono::microseconds(20000)}) {
    atlas::ScenarioConfig config = clean_config();
    simnet::SpooferConfig spoofer;
    spoofer.injection_delay = lead;
    config.adversary.transit_spoofer = spoofer;

    atlas::Scenario first(config);
    ProbeVerdict one = run_pipeline(first);
    atlas::Scenario second(config);
    ProbeVerdict two = run_pipeline(second);

    EXPECT_EQ(one.location, InterceptorLocation::contested) << lead.count();
    EXPECT_EQ(testing_corpus::signature(one), testing_corpus::signature(two))
        << "lead " << lead.count() << "us must replay byte-identically";
  }
}

TEST(Spoofer, CpeInterceptionStaysLocalizedUnderSpoofing) {
  // Queries a CPE interceptor diverts never reach the transit core, and the
  // CPE-addressed version.bind query never leaves the home: localization of
  // a real CPE interceptor is out of the injector's reach entirely.
  atlas::ScenarioConfig config;
  config.cpe.kind = atlas::CpeStyle::Kind::xb6_buggy;
  config.adversary.transit_spoofer = simnet::SpooferConfig{};
  atlas::Scenario scenario(config);
  ProbeVerdict verdict = run_pipeline(scenario);
  EXPECT_EQ(verdict.location, InterceptorLocation::cpe);
}

TEST(Spoofer, IspInterceptionStaysLocalizedUnderSpoofing) {
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.adversary.transit_spoofer = simnet::SpooferConfig{};
  atlas::Scenario scenario(config);
  ProbeVerdict verdict = run_pipeline(scenario);
  EXPECT_EQ(verdict.location, InterceptorLocation::isp);
}

TEST(Dpi, FoldixIsFingerprintedByCaseMismatch) {
  atlas::ScenarioConfig config = clean_config();
  config.adversary.isp_dpi = simnet::dpi_foldix();
  config.run_fingerprint = true;
  atlas::Scenario scenario(config);
  ProbeVerdict verdict = run_pipeline(scenario);

  ASSERT_NE(scenario.isp_dpi(), nullptr);
  EXPECT_GT(scenario.isp_dpi()->queries_mutated(), 0u);
  // Case folding never alters answer content: detection is blind to it.
  EXPECT_EQ(verdict.location, InterceptorLocation::not_intercepted);
  ASSERT_TRUE(verdict.fingerprint.has_value());
  EXPECT_TRUE(verdict.fingerprint->case_folded);
  EXPECT_FALSE(verdict.fingerprint->edns_stripped);
  EXPECT_FALSE(verdict.fingerprint->tc_rewritten);
  EXPECT_EQ(verdict.fingerprint->vendor, "foldix");
}

TEST(Dpi, OptstripIsFingerprintedByMissingOptEcho) {
  atlas::ScenarioConfig config = clean_config();
  config.adversary.isp_dpi = simnet::dpi_optstrip();
  config.run_fingerprint = true;
  atlas::Scenario scenario(config);
  ProbeVerdict verdict = run_pipeline(scenario);

  EXPECT_EQ(verdict.location, InterceptorLocation::not_intercepted);
  ASSERT_TRUE(verdict.fingerprint.has_value());
  EXPECT_TRUE(verdict.fingerprint->edns_stripped);
  EXPECT_EQ(verdict.fingerprint->vendor, "optstrip");
}

TEST(Dpi, TruncorIsFingerprintedByContradictoryTc) {
  atlas::ScenarioConfig config = clean_config();
  config.adversary.isp_dpi = simnet::dpi_truncor();
  config.run_fingerprint = true;
  atlas::Scenario scenario(config);
  ProbeVerdict verdict = run_pipeline(scenario);

  ASSERT_NE(scenario.isp_dpi(), nullptr);
  EXPECT_GT(scenario.isp_dpi()->responses_mutated(), 0u);
  ASSERT_TRUE(verdict.fingerprint.has_value());
  EXPECT_TRUE(verdict.fingerprint->tc_rewritten);
  EXPECT_EQ(verdict.fingerprint->vendor, "truncor");
}

TEST(Dpi, OmniboxExhibitsAllThreeAmbiguities) {
  atlas::ScenarioConfig config = clean_config();
  config.adversary.cpe_dpi = simnet::dpi_omnibox();  // on the CPE this time
  config.run_fingerprint = true;
  atlas::Scenario scenario(config);
  ProbeVerdict verdict = run_pipeline(scenario);

  ASSERT_NE(scenario.cpe_dpi(), nullptr);
  ASSERT_TRUE(verdict.fingerprint.has_value());
  EXPECT_TRUE(verdict.fingerprint->case_folded);
  EXPECT_TRUE(verdict.fingerprint->edns_stripped);
  EXPECT_TRUE(verdict.fingerprint->tc_rewritten);
  EXPECT_EQ(verdict.fingerprint->vendor, "omnibox");
}

TEST(Dpi, CleanPathFingerprintsAsNoAmbiguity) {
  atlas::ScenarioConfig config = clean_config();
  config.run_fingerprint = true;
  atlas::Scenario scenario(config);
  ProbeVerdict verdict = run_pipeline(scenario);
  ASSERT_TRUE(verdict.fingerprint.has_value());
  EXPECT_FALSE(verdict.fingerprint->any_ambiguity());
  EXPECT_EQ(verdict.fingerprint->vendor, "");
}

// The 13-scenario corpus under every adversary personality. Three
// invariants, per the contested-verdict contract:
//  1. contested only on genuine conflict (conflicts observed in telemetry);
//  2. never silently resolved: a run that observed conflicts either keeps
//     the adversary-free location (corroborated) or degrades to contested;
//  3. never fabricated: the location is the adversary-free one or
//     contested — an adversary can remove confidence, not invent a locus.
TEST(AdversaryCorpus, ContestedOnlyOnGenuineConflictAcrossZoo) {
  struct Personality {
    const char* name;
    atlas::AdversaryConfig adversary;
  };
  std::vector<Personality> zoo;
  {
    atlas::AdversaryConfig a;
    a.transit_spoofer = simnet::SpooferConfig{};
    zoo.push_back({"onpath_spoofer", a});
  }
  {
    atlas::AdversaryConfig a;
    simnet::SpooferConfig s;
    s.on_path = false;
    a.transit_spoofer = s;
    zoo.push_back({"offpath_spoofer", a});
  }
  {
    atlas::AdversaryConfig a;
    a.isp_dpi = simnet::dpi_foldix();
    zoo.push_back({"dpi_foldix", a});
  }
  {
    atlas::AdversaryConfig a;
    a.isp_dpi = simnet::dpi_optstrip();
    zoo.push_back({"dpi_optstrip", a});
  }
  {
    atlas::AdversaryConfig a;
    a.isp_dpi = simnet::dpi_truncor();
    zoo.push_back({"dpi_truncor", a});
  }
  {
    atlas::AdversaryConfig a;
    a.cpe_dpi = simnet::dpi_omnibox();
    zoo.push_back({"dpi_omnibox_cpe", a});
  }

  for (const auto& base : testing_corpus::corpus()) {
    atlas::Scenario baseline_world(base.config);
    ProbeVerdict baseline = run_pipeline(baseline_world);

    for (const auto& personality : zoo) {
      atlas::ScenarioConfig config = base.config;
      config.adversary = personality.adversary;
      atlas::Scenario scenario(config);
      ProbeVerdict verdict = run_pipeline(scenario);
      std::string label = std::string(base.name) + " + " + personality.name;

      if (verdict.location == InterceptorLocation::contested) {
        EXPECT_GT(verdict.telemetry.conflicts, 0u)
            << label << ": contested without a genuine conflict";
      }
      if (verdict.telemetry.conflicts == 0) {
        EXPECT_EQ(verdict.location, baseline.location)
            << label << ": location moved without any conflicting answer";
      }
      EXPECT_TRUE(verdict.location == baseline.location ||
                  verdict.location == InterceptorLocation::contested)
          << label << ": adversary fabricated location "
          << to_string(verdict.location) << " (baseline "
          << to_string(baseline.location) << ")";
    }
  }
}

TEST(AdversaryCorpus, DescribeRendersContestedEvidence) {
  atlas::ScenarioConfig config = clean_config();
  config.adversary.transit_spoofer = simnet::SpooferConfig{};
  atlas::Scenario scenario(config);
  ProbeVerdict verdict = run_pipeline(scenario);
  std::string text = describe(verdict);
  EXPECT_NE(text.find("contested"), std::string::npos);
  EXPECT_NE(text.find("arbitration:"), std::string::npos);
  EXPECT_NE(text.find("conflicts="), std::string::npos);
}

}  // namespace
}  // namespace dnslocate::core
