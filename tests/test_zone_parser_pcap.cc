// Master-file parser and pcap exporter tests.
#include <gtest/gtest.h>

#include <cstdio>

#include "resolvers/zone_parser.h"
#include "simnet/pcap.h"

namespace dnslocate {
namespace {

dnswire::DnsName name(const char* text) { return *dnswire::DnsName::parse(text); }

TEST(ZoneParser, ParsesARepresentativeZone) {
  const char* zone_text = R"($ORIGIN example.com.
$TTL 300
@       IN SOA ns1 hostmaster 2021110201 7200 900 1209600 300
@       IN NS  ns1
ns1     IN A   192.0.2.53
www     600 IN A 192.0.2.80
        IN AAAA 2001:db8::80          ; same owner as previous line
alias   IN CNAME www
txt     IN TXT "hello world" "second string"
ptr     IN PTR www.example.com.
)";
  resolvers::ZoneStore store;
  auto result = resolvers::parse_master_file(zone_text, store);
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0].to_string());
  EXPECT_EQ(result.records_added, 8u);

  auto www = store.lookup(name("www.example.com"), dnswire::RecordType::A);
  ASSERT_EQ(www.answers.size(), 1u);
  EXPECT_EQ(std::get<dnswire::ARecord>(www.answers[0].rdata).address.to_string(), "192.0.2.80");
  EXPECT_EQ(www.answers[0].ttl, 600u);  // per-record TTL beats $TTL

  // Owner reuse: the AAAA attached to www.
  auto aaaa = store.lookup(name("www.example.com"), dnswire::RecordType::AAAA);
  ASSERT_EQ(aaaa.answers.size(), 1u);

  // CNAME chain resolves.
  auto alias = store.lookup(name("alias.example.com"), dnswire::RecordType::A);
  EXPECT_EQ(alias.answers.size(), 2u);

  // TXT strings preserved separately.
  auto txt = store.lookup(name("txt.example.com"), dnswire::RecordType::TXT);
  ASSERT_EQ(txt.answers.size(), 1u);
  EXPECT_EQ(std::get<dnswire::TxtRecord>(txt.answers[0].rdata).strings.size(), 2u);

  // SOA on the apex with $TTL default.
  auto soa = store.lookup(name("example.com"), dnswire::RecordType::SOA);
  ASSERT_EQ(soa.answers.size(), 1u);
  EXPECT_EQ(soa.answers[0].ttl, 300u);
  EXPECT_EQ(std::get<dnswire::SoaRecord>(soa.answers[0].rdata).serial, 2021110201u);
}

TEST(ZoneParser, RelativeAndAbsoluteNames) {
  resolvers::ZoneStore store;
  auto result = resolvers::parse_master_file(
      "$ORIGIN zone.test.\nrel IN A 192.0.2.1\nabs.other.test. IN A 192.0.2.2\n", store);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(store.has_name(name("rel.zone.test")));
  EXPECT_TRUE(store.has_name(name("abs.other.test")));
  EXPECT_FALSE(store.has_name(name("abs.other.test.zone.test")));
}

TEST(ZoneParser, RecoverableErrorsAreReportedWithLines) {
  const char* zone_text =
      "$ORIGIN t.\n"
      "good IN A 192.0.2.1\n"
      "bad IN A not-an-address\n"
      "weird IN WKS whatever\n"
      "short IN CNAME\n"
      "unterminated IN TXT \"oops\n";
  resolvers::ZoneStore store;
  auto result = resolvers::parse_master_file(zone_text, store);
  EXPECT_EQ(result.records_added, 1u);
  ASSERT_EQ(result.errors.size(), 4u);
  EXPECT_EQ(result.errors[0].line, 3u);
  EXPECT_NE(result.errors[0].to_string().find("IPv4"), std::string::npos);
  EXPECT_EQ(result.errors[1].line, 4u);
  EXPECT_EQ(result.errors[2].line, 5u);
  EXPECT_EQ(result.errors[3].line, 6u);
}

TEST(ZoneParser, DirectiveErrors) {
  resolvers::ZoneStore store;
  auto result = resolvers::parse_master_file("$TTL banana\n$ORIGIN\n", store);
  EXPECT_EQ(result.errors.size(), 2u);
}

TEST(ZoneParser, EmptyAndCommentOnlyInput) {
  resolvers::ZoneStore store;
  auto result = resolvers::parse_master_file("; nothing here\n\n   ; still nothing\n", store);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.records_added, 0u);
}

// --- pcap ---

simnet::UdpPacket sample_packet(bool v6 = false) {
  simnet::UdpPacket packet;
  if (v6) {
    packet.src = *netbase::IpAddress::parse("2001:db8::1");
    packet.dst = *netbase::IpAddress::parse("2001:db8::2");
  } else {
    packet.src = *netbase::IpAddress::parse("192.0.2.1");
    packet.dst = *netbase::IpAddress::parse("192.0.2.2");
  }
  packet.sport = 5555;
  packet.dport = 53;
  packet.payload = {0xde, 0xad, 0xbe, 0xef};
  return packet;
}

TEST(Pcap, GlobalHeaderAndRecordFraming) {
  simnet::TraceSink trace;
  trace.record(std::chrono::milliseconds(1500), "a", simnet::TraceEvent::transmitted,
               sample_packet());
  trace.record(std::chrono::milliseconds(1500), "a", simnet::TraceEvent::received,
               sample_packet());  // not exported by default
  auto bytes = simnet::to_pcap(trace);

  ASSERT_GE(bytes.size(), 24u);
  // Little-endian magic.
  EXPECT_EQ(bytes[0], 0xd4);
  EXPECT_EQ(bytes[1], 0xc3);
  EXPECT_EQ(bytes[2], 0xb2);
  EXPECT_EQ(bytes[3], 0xa1);
  // Linktype 101 (raw IP) at offset 20.
  EXPECT_EQ(bytes[20], 101);
  EXPECT_EQ(simnet::pcap_packet_count(trace), 1u);

  // One record: header 16 + IPv4 20 + UDP 8 + payload 4.
  EXPECT_EQ(bytes.size(), 24u + 16u + 32u);
  // Timestamp: 1.5s -> seconds field 1, micros field 500000.
  std::uint32_t seconds = bytes[24] | bytes[25] << 8 | bytes[26] << 16 | (unsigned)bytes[27] << 24;
  EXPECT_EQ(seconds, 1u);
  // IPv4 version nibble of the frame body.
  EXPECT_EQ(bytes[24 + 16] >> 4, 4);
}

TEST(Pcap, Ipv6FramesUseVersionSix) {
  simnet::TraceSink trace;
  trace.record({}, "a", simnet::TraceEvent::transmitted, sample_packet(true));
  auto bytes = simnet::to_pcap(trace);
  // header 24 + record header 16, then the v6 frame: 40 + 8 + 4.
  ASSERT_EQ(bytes.size(), 24u + 16u + 52u);
  EXPECT_EQ(bytes[24 + 16] >> 4, 6);
}

TEST(Pcap, IcmpAndMixedFamilyRecordsAreSkipped) {
  simnet::TraceSink trace;
  auto icmp = sample_packet();
  icmp.kind = simnet::PacketKind::icmp_ttl_exceeded;
  trace.record({}, "a", simnet::TraceEvent::transmitted, icmp);
  auto mixed = sample_packet();
  mixed.dst = *netbase::IpAddress::parse("2001:db8::2");
  trace.record({}, "a", simnet::TraceEvent::transmitted, mixed);
  EXPECT_EQ(simnet::pcap_packet_count(trace), 0u);
  EXPECT_EQ(simnet::to_pcap(trace).size(), 24u);  // header only
}

TEST(Pcap, WritesAFile) {
  simnet::TraceSink trace;
  trace.record({}, "a", simnet::TraceEvent::transmitted, sample_packet());
  std::string path = "/tmp/dnslocate_test.pcap";
  ASSERT_TRUE(simnet::write_pcap_file(trace, path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  long size = std::ftell(file);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(static_cast<std::size_t>(size), simnet::to_pcap(trace).size());
}

}  // namespace
}  // namespace dnslocate

namespace dnslocate {
namespace {

TEST(ZoneParser, ParenthesizedMultiLineSoa) {
  const char* zone_text = R"($ORIGIN multi.test.
@ IN SOA ns1 hostmaster (
        2021110201 ; serial
        7200       ; refresh
        900        ; retry
        1209600    ; expire
        300 )      ; minimum
www IN A 192.0.2.1
)";
  resolvers::ZoneStore store;
  auto result = resolvers::parse_master_file(zone_text, store);
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0].to_string());
  EXPECT_EQ(result.records_added, 2u);
  auto soa = store.lookup(name("multi.test"), dnswire::RecordType::SOA);
  ASSERT_EQ(soa.answers.size(), 1u);
  const auto& rdata = std::get<dnswire::SoaRecord>(soa.answers[0].rdata);
  EXPECT_EQ(rdata.serial, 2021110201u);
  EXPECT_EQ(rdata.minimum, 300u);
  EXPECT_TRUE(store.has_name(name("www.multi.test")));
}

TEST(ZoneParser, SemicolonInsideQuotedTxtIsNotAComment) {
  resolvers::ZoneStore store;
  auto result =
      resolvers::parse_master_file("t.test. IN TXT \"v=spf1 a; all\"\n", store);
  EXPECT_TRUE(result.ok());
  auto txt = store.lookup(name("t.test"), dnswire::RecordType::TXT);
  ASSERT_EQ(txt.answers.size(), 1u);
  EXPECT_EQ(std::get<dnswire::TxtRecord>(txt.answers[0].rdata).strings[0], "v=spf1 a; all");
}

TEST(ZoneParser, UnbalancedParenthesesDoNotCrash) {
  resolvers::ZoneStore store;
  auto open_only = resolvers::parse_master_file("a.test. IN A ( 192.0.2.1\n", store);
  (void)open_only;  // one record or one error; either way no crash/hang
  auto close_only = resolvers::parse_master_file("b.test. IN A 192.0.2.2 )\n", store);
  EXPECT_TRUE(store.has_name(name("b.test")));
  (void)close_only;
}

}  // namespace
}  // namespace dnslocate
