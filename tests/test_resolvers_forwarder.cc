// Forwarder tests: CHAOS answered locally (or punted upstream), ordinary
// queries proxied with id rewriting, pending-table hygiene, upstream
// timeouts, and the answer-from-the-addressed-IP rule.
#include <gtest/gtest.h>

#include "dnswire/debug_queries.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "resolvers/forwarder.h"
#include "resolvers/resolver_behavior.h"
#include "resolvers/server_app.h"
#include "simnet/simulator.h"

namespace dnslocate::resolvers {
namespace {

netbase::IpAddress ip(const char* text) { return *netbase::IpAddress::parse(text); }
dnswire::DnsName name(const char* text) { return *dnswire::DnsName::parse(text); }

struct SinkApp : simnet::UdpApp {
  std::vector<simnet::UdpPacket> received;
  void on_datagram(simnet::Simulator&, simnet::Device&, const simnet::UdpPacket& p) override {
    received.push_back(p);
  }
  std::optional<dnswire::Message> last_message() const {
    if (received.empty()) return std::nullopt;
    return dnswire::decode_message(received.back().payload);
  }
};

/// client -- gateway(forwarder) -- upstream(resolver)
struct ForwarderWorld {
  simnet::Simulator sim{1};
  simnet::Device& client;
  simnet::Device& gateway;
  simnet::Device& upstream;
  std::unique_ptr<DnsForwarderApp> forwarder;
  std::shared_ptr<DnsServerApp> upstream_app;
  SinkApp client_app;
  std::uint16_t query_id = 100;

  explicit ForwarderWorld(SoftwareProfile software = dnsmasq("2.85"),
                          bool upstream_alive = true)
      : client(sim.add_device<simnet::Device>("client")),
        gateway(sim.add_device<simnet::Device>("gateway")),
        upstream(sim.add_device<simnet::Device>("upstream")) {
    gateway.set_forwarding(true);
    auto [c_up, gw_lan] = sim.connect(client, gateway);
    auto [gw_wan, up_down] = sim.connect(gateway, upstream);
    (void)gw_lan;
    client.add_local_ip(ip("192.168.1.10"));
    client.set_default_route(c_up);
    gateway.add_local_ip(ip("192.168.1.1"));
    gateway.add_local_ip(ip("203.0.113.7"));
    gateway.add_route(*netbase::Prefix::parse("192.168.1.0/24"),
                      0 /* first port = LAN side */);
    gateway.set_default_route(gw_wan);
    upstream.add_local_ip(ip("198.51.100.2"));
    upstream.set_default_route(up_down);

    ForwarderConfig config;
    config.software = std::move(software);
    config.upstream_v4 = netbase::Endpoint{ip("198.51.100.2"), 53};
    config.pending_timeout = std::chrono::seconds(2);
    forwarder = std::make_unique<DnsForwarderApp>(config);
    forwarder->attach(gateway);

    if (upstream_alive) {
      ResolverConfig resolver_config;
      resolver_config.software = bind9("9.11.3");
      resolver_config.egress_v4 = ip("198.51.100.2");
      upstream_app =
          std::make_shared<DnsServerApp>(std::make_shared<ResolverBehavior>(resolver_config));
      upstream.bind_udp(53, upstream_app.get());
    }
    client.bind_udp(5555, &client_app);
  }

  void query(const dnswire::Message& message, const char* dst = "192.168.1.1") {
    simnet::UdpPacket p;
    p.src = ip("192.168.1.10");
    p.dst = ip(dst);
    p.sport = 5555;
    p.dport = 53;
    p.payload = dnswire::encode_message(message);
    client.send_local(sim, p);
    sim.run_until_idle();
  }
};

TEST(Forwarder, AnswersVersionBindLocally) {
  ForwarderWorld world;
  world.query(dnswire::make_chaos_query(1, dnswire::version_bind()));
  auto response = world.client_app.last_message();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->first_txt(), "dnsmasq-2.85");
  EXPECT_EQ(world.forwarder->chaos_answered(), 1u);
  EXPECT_EQ(world.forwarder->forwarded_upstream(), 0u);
}

TEST(Forwarder, DnsmasqRefusesIdServer) {
  ForwarderWorld world;
  world.query(dnswire::make_chaos_query(1, dnswire::id_server()));
  auto response = world.client_app.last_message();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->rcode(), dnswire::Rcode::REFUSED);
}

TEST(Forwarder, ProxiesOrdinaryQueriesAndRestoresId) {
  ForwarderWorld world;
  auto query = dnswire::make_query(0xbeef, name("example.com"), dnswire::RecordType::A);
  world.query(query);
  auto response = world.client_app.last_message();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, 0xbeef);  // restored, not the upstream id
  EXPECT_TRUE(response->first_address().has_value());
  EXPECT_EQ(world.forwarder->forwarded_upstream(), 1u);
  EXPECT_EQ(world.forwarder->replies_relayed(), 1u);
  EXPECT_EQ(world.forwarder->pending_count(), 0u);  // entry consumed
}

TEST(Forwarder, RepliesFromTheAddressedIp) {
  ForwarderWorld world;
  // Query the gateway's *public* IP: the answer must come from that IP.
  world.query(dnswire::make_query(7, name("example.com"), dnswire::RecordType::A),
              "203.0.113.7");
  ASSERT_EQ(world.client_app.received.size(), 1u);
  EXPECT_EQ(world.client_app.received[0].src, ip("203.0.113.7"));
}

TEST(Forwarder, ChaosForwarderPuntsUpstream) {
  ForwarderWorld world(chaos_forwarder("vendor"));
  world.query(dnswire::make_chaos_query(1, dnswire::version_bind()));
  auto response = world.client_app.last_message();
  ASSERT_TRUE(response.has_value());
  // The upstream BIND answered with its version string.
  EXPECT_EQ(response->first_txt(), "9.11.3");
  EXPECT_EQ(world.forwarder->chaos_answered(), 0u);
  EXPECT_EQ(world.forwarder->forwarded_upstream(), 1u);
}

TEST(Forwarder, ChaosNxdomainProfileAnswersNxdomain) {
  ForwarderWorld world(chaos_nxdomain("vendor"));
  world.query(dnswire::make_chaos_query(1, dnswire::version_bind()));
  auto response = world.client_app.last_message();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->rcode(), dnswire::Rcode::NXDOMAIN);
}

TEST(Forwarder, UpstreamTimeoutLeavesClientSilent) {
  ForwarderWorld world(dnsmasq(), /*upstream_alive=*/false);
  world.query(dnswire::make_query(5, name("example.com"), dnswire::RecordType::A));
  EXPECT_TRUE(world.client_app.received.empty());
  // The pending entry is expired by the scheduled cleanup.
  EXPECT_EQ(world.forwarder->pending_count(), 0u);
}

TEST(Forwarder, QuestionlessQueryGetsFormerr) {
  ForwarderWorld world;
  dnswire::Message empty;
  empty.id = 3;
  world.query(empty);
  auto response = world.client_app.last_message();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->rcode(), dnswire::Rcode::FORMERR);
}

TEST(Forwarder, ConcurrentQueriesKeepIdsStraight) {
  ForwarderWorld world;
  // Two in-flight queries for different names; answers must map back to the
  // right client ids.
  auto q1 = dnswire::make_query(0x1111, name("example.com"), dnswire::RecordType::A);
  auto q2 = dnswire::make_query(0x2222, name("cdn.example.net"), dnswire::RecordType::A);
  simnet::UdpPacket p1, p2;
  for (auto* pair : {&p1, &p2}) {
    pair->src = ip("192.168.1.10");
    pair->dst = ip("192.168.1.1");
    pair->dport = 53;
  }
  p1.sport = 5555;
  p1.payload = dnswire::encode_message(q1);
  p2.sport = 5555;
  p2.payload = dnswire::encode_message(q2);
  world.client.send_local(world.sim, p1);
  world.client.send_local(world.sim, p2);
  world.sim.run_until_idle();

  ASSERT_EQ(world.client_app.received.size(), 2u);
  std::map<std::uint16_t, std::string> answers;
  for (const auto& packet : world.client_app.received) {
    auto message = dnswire::decode_message(packet.payload);
    ASSERT_TRUE(message.has_value());
    answers[message->id] = message->question()->name.to_string();
  }
  EXPECT_EQ(answers[0x1111], "example.com");
  EXPECT_EQ(answers[0x2222], "cdn.example.net");
}

TEST(Forwarder, MalformedPayloadIsIgnored) {
  ForwarderWorld world;
  simnet::UdpPacket p;
  p.src = ip("192.168.1.10");
  p.dst = ip("192.168.1.1");
  p.sport = 5555;
  p.dport = 53;
  p.payload = {0x01, 0x02, 0x03};
  world.client.send_local(world.sim, p);
  world.sim.run_until_idle();
  EXPECT_TRUE(world.client_app.received.empty());
}

}  // namespace
}  // namespace dnslocate::resolvers

namespace dnslocate::resolvers {
namespace {

TEST(Forwarder, FailsOverToSecondaryUpstream) {
  // Primary upstream dead; secondary alive on a second device.
  ForwarderWorld world(dnsmasq(), /*upstream_alive=*/false);
  auto& backup = world.sim.add_device<simnet::Device>("backup");
  auto [backup_up, gw_to_backup] = world.sim.connect(backup, world.gateway);
  backup.add_local_ip(*netbase::IpAddress::parse("198.51.100.9"));
  backup.set_default_route(backup_up);
  world.gateway.add_route(*netbase::Prefix::parse("198.51.100.9/32"), gw_to_backup);

  ResolverConfig config;
  config.software = bind9("9.11.3");
  config.egress_v4 = *netbase::IpAddress::parse("198.51.100.9");
  auto backup_app =
      std::make_shared<DnsServerApp>(std::make_shared<ResolverBehavior>(config));
  backup.bind_udp(53, backup_app.get());

  // Rebuild the forwarder with a fallback upstream.
  ForwarderConfig forwarder_config = world.forwarder->config();
  forwarder_config.upstream_fallback_v4 =
      netbase::Endpoint{*netbase::IpAddress::parse("198.51.100.9"), 53};
  forwarder_config.failover_after = std::chrono::milliseconds(200);
  auto failing_over = std::make_unique<DnsForwarderApp>(forwarder_config);
  failing_over->attach(world.gateway);

  world.query(dnswire::make_query(0x9aaa, name("example.com"), dnswire::RecordType::A));
  auto response = world.client_app.last_message();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, 0x9aaa);
  EXPECT_TRUE(response->first_address().has_value());
  EXPECT_EQ(failing_over->failovers(), 1u);
  EXPECT_EQ(backup_app->queries_seen(), 1u);
}

TEST(Forwarder, NoFailoverWhenPrimaryAnswers) {
  ForwarderWorld world;  // primary alive
  ForwarderConfig forwarder_config = world.forwarder->config();
  forwarder_config.upstream_fallback_v4 =
      netbase::Endpoint{*netbase::IpAddress::parse("198.51.100.9"), 53};
  auto failing_over = std::make_unique<DnsForwarderApp>(forwarder_config);
  failing_over->attach(world.gateway);

  world.query(dnswire::make_query(0x9bbb, name("example.com"), dnswire::RecordType::A));
  EXPECT_EQ(world.client_app.received.size(), 1u);
  // The scheduled failover check fires but finds the pending entry gone.
  EXPECT_EQ(failing_over->failovers(), 0u);
}

TEST(Device, CountersTrackTheDatapath) {
  ForwarderWorld world;
  world.query(dnswire::make_query(1, name("example.com"), dnswire::RecordType::A));
  const auto& gateway_counters = world.gateway.counters();
  // Gateway: client query delivered to the forwarder, upstream reply
  // delivered back to it; nothing forwarded (all local apps), no drops.
  EXPECT_EQ(gateway_counters.delivered, 2u);
  EXPECT_EQ(gateway_counters.dropped, 0u);
  const auto& client_counters = world.client.counters();
  EXPECT_EQ(client_counters.received, 1u);
  EXPECT_EQ(client_counters.delivered, 1u);
}

}  // namespace
}  // namespace dnslocate::resolvers
