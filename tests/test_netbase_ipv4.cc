// Unit tests: IPv4 address parsing, formatting, classification.
#include <gtest/gtest.h>

#include "netbase/ipv4.h"

namespace dnslocate::netbase {
namespace {

TEST(Ipv4Address, ParsesDottedQuad) {
  auto addr = Ipv4Address::parse("192.0.2.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0xc0000201u);
  EXPECT_EQ(addr->to_string(), "192.0.2.1");
}

TEST(Ipv4Address, ParsesExtremes) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xffffffffu);
}

struct BadV4 : ::testing::TestWithParam<const char*> {};

TEST_P(BadV4, Rejected) { EXPECT_FALSE(Ipv4Address::parse(GetParam()).has_value()); }

INSTANTIATE_TEST_SUITE_P(Malformed, BadV4,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.256",
                                           "a.b.c.d", "1..2.3", "1.2.3.4 ", " 1.2.3.4",
                                           "01.2.3.4", "1.2.3.04", "1,2,3,4", "1.2.3.4x",
                                           "-1.2.3.4", "999999999999.1.1.1"));

TEST(Ipv4Address, RoundTripsAllOctetBoundaries) {
  for (std::uint32_t octet : {0u, 1u, 9u, 10u, 99u, 100u, 127u, 128u, 199u, 200u, 255u}) {
    Ipv4Address addr(static_cast<std::uint8_t>(octet), 0, 255,
                     static_cast<std::uint8_t>(octet));
    auto reparsed = Ipv4Address::parse(addr.to_string());
    ASSERT_TRUE(reparsed.has_value()) << addr.to_string();
    EXPECT_EQ(*reparsed, addr);
  }
}

TEST(Ipv4Address, ByteOrderIsNetwork) {
  Ipv4Address addr(1, 2, 3, 4);
  auto bytes = addr.to_bytes();
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[3], 4);
  EXPECT_EQ(Ipv4Address::from_bytes(bytes), addr);
}

TEST(Ipv4Address, ClassifiesPrivateRanges) {
  EXPECT_TRUE(Ipv4Address(10, 0, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(172, 31, 255, 255).is_private());
  EXPECT_FALSE(Ipv4Address(172, 32, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(192, 168, 1, 1).is_private());
  EXPECT_FALSE(Ipv4Address(192, 169, 0, 1).is_private());
  EXPECT_FALSE(Ipv4Address(8, 8, 8, 8).is_private());
}

TEST(Ipv4Address, ClassifiesSpecialRanges) {
  EXPECT_TRUE(Ipv4Address(127, 0, 0, 1).is_loopback());
  EXPECT_TRUE(Ipv4Address(169, 254, 1, 1).is_link_local());
  EXPECT_TRUE(Ipv4Address(100, 64, 0, 1).is_shared_cgn());
  EXPECT_TRUE(Ipv4Address(100, 127, 255, 255).is_shared_cgn());
  EXPECT_FALSE(Ipv4Address(100, 128, 0, 0).is_shared_cgn());
  EXPECT_TRUE(Ipv4Address(192, 0, 2, 7).is_test_net());
  EXPECT_TRUE(Ipv4Address(198, 51, 100, 7).is_test_net());
  EXPECT_TRUE(Ipv4Address(203, 0, 113, 7).is_test_net());
  EXPECT_TRUE(Ipv4Address(240, 9, 9, 9).is_reserved_class_e());
  EXPECT_TRUE(Ipv4Address(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Address(255, 255, 255, 255).is_broadcast());
}

TEST(Ipv4Address, BogonUnionCoversAllSpecials) {
  const Ipv4Address bogons[] = {
      {0, 1, 2, 3},       {10, 1, 1, 1},     {100, 64, 1, 1},   {127, 1, 1, 1},
      {169, 254, 9, 9},   {172, 20, 0, 1},   {192, 0, 0, 7},    {192, 0, 2, 9},
      {192, 168, 0, 9},   {198, 18, 0, 1},   {198, 19, 255, 1}, {198, 51, 100, 1},
      {203, 0, 113, 200}, {224, 1, 1, 1},    {240, 9, 9, 9},    {255, 255, 255, 255},
  };
  for (const auto& addr : bogons) EXPECT_TRUE(addr.is_bogon()) << addr.to_string();

  const Ipv4Address routable[] = {
      {8, 8, 8, 8}, {1, 1, 1, 1}, {9, 9, 9, 9}, {208, 67, 222, 222},
      {93, 184, 216, 34}, {198, 17, 0, 1}, {198, 20, 0, 1}, {100, 128, 0, 1},
  };
  for (const auto& addr : routable) EXPECT_FALSE(addr.is_bogon()) << addr.to_string();
}

TEST(Ipv4Address, OrderingIsNumeric) {
  EXPECT_LT(Ipv4Address(1, 0, 0, 0), Ipv4Address(2, 0, 0, 0));
  EXPECT_LT(Ipv4Address(1, 2, 3, 4), Ipv4Address(1, 2, 3, 5));
}

}  // namespace
}  // namespace dnslocate::netbase
