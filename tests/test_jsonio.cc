// JSON module tests: serialization, strict parsing, escaping, fuzz safety —
// and the measurement-run JSONL round trip.
#include <gtest/gtest.h>

#include "jsonio/json.h"
#include "report/aggregate.h"
#include "report/results_io.h"
#include "simnet/rng.h"

namespace dnslocate::jsonio {
namespace {

TEST(Json, DumpScalars) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-7).dump(), "-7");
  EXPECT_EQ(Value(2.5).dump(), "2.5");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(Json, DumpContainers) {
  Array array{Value(1), Value("two"), Value(nullptr)};
  EXPECT_EQ(Value(array).dump(), "[1,\"two\",null]");
  Object object;
  object["b"] = 2;
  object["a"] = Value(Array{});
  EXPECT_EQ(Value(object).dump(), "{\"a\":[],\"b\":2}");  // sorted keys
}

TEST(Json, EscapeSpecials) {
  EXPECT_EQ(escape("a\"b\\c\nd\te"), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(escape(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(Json, ParseScalars) {
  EXPECT_EQ(*parse("null"), Value());
  EXPECT_EQ(*parse("true"), Value(true));
  EXPECT_EQ(*parse(" 42 "), Value(42));
  EXPECT_EQ(*parse("-2.5e2"), Value(-250.0));
  EXPECT_EQ(*parse("\"x\""), Value("x"));
}

TEST(Json, ParseNested) {
  auto value = parse(R"({"a":[1,{"b":"c"},false],"d":null})");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ((*value)["a"].as_array().size(), 3u);
  EXPECT_EQ((*value)["a"].as_array()[1]["b"].as_string(), "c");
  EXPECT_TRUE((*value)["d"].is_null());
  EXPECT_TRUE((*value)["missing"].is_null());
}

TEST(Json, ParseEscapes) {
  EXPECT_EQ(parse(R"("a\nb\"c\\dA")")->as_string(), "a\nb\"c\\dA");
  // BMP unicode escape becomes UTF-8.
  EXPECT_EQ(parse(R"("é")")->as_string(), "\xc3\xa9");
}

struct BadJson : ::testing::TestWithParam<const char*> {};
TEST_P(BadJson, Rejected) {
  ParseError error;
  EXPECT_FALSE(parse(GetParam(), &error).has_value()) << GetParam();
}
INSTANTIATE_TEST_SUITE_P(Corpus, BadJson,
                         ::testing::Values("", "{", "}", "[1,", "[1 2]", "{\"a\":}",
                                           "{\"a\" 1}", "tru", "\"unterminated", "01x",
                                           "{\"a\":1}extra", "[1],", "nul", "\"bad\\q\"",
                                           "\"bad\\u12\""));

TEST(Json, ParseErrorsCarryLineColumnAndContext) {
  // The error points at the offending byte: line, column, and a snippet
  // with the failure position marked, so API layers can name the field.
  ParseError error;
  EXPECT_FALSE(parse("{\"probes\": 5,\n \"orgs\": [,]}", &error).has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_EQ(error.offset, 24u);
  EXPECT_EQ(error.column, 11u);
  EXPECT_NE(error.context.find("-->"), std::string::npos);
  EXPECT_NE(error.context.find("\"orgs\": ["), std::string::npos);
  std::string described = describe(error);
  EXPECT_NE(described.find("line 2, column 11 (byte 24)"), std::string::npos);
  EXPECT_NE(described.find("near `"), std::string::npos);

  // Multi-line whitespace folds so the snippet stays one line.
  EXPECT_EQ(error.context.find('\n'), std::string::npos);

  // Offsets clamp at end-of-input (truncated documents).
  ParseError eof_error;
  EXPECT_FALSE(parse("{\"a\": ", &eof_error).has_value());
  EXPECT_EQ(eof_error.offset, 6u);
  EXPECT_EQ(eof_error.line, 1u);
  EXPECT_EQ(eof_error.column, 7u);
  EXPECT_NE(eof_error.context.find("{\"a\": -->"), std::string::npos);

  // Long documents clip the window with ellipses on both sides.
  std::string long_doc = "[" + std::string(100, '1') + "x" + std::string(100, '1') + "]";
  ParseError long_error;
  EXPECT_FALSE(parse(long_doc, &long_error).has_value());
  EXPECT_EQ(long_error.context.substr(0, 3), "...");
  EXPECT_EQ(long_error.context.substr(long_error.context.size() - 3), "...");
}

TEST(Json, RoundTripsItsOwnOutput) {
  auto original = parse(R"({"n":[1,2.5,-3],"s":"e\"sc","o":{"k":true}})");
  ASSERT_TRUE(original.has_value());
  auto reparsed = parse(original->dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, *original);
}

TEST(Json, DeepNestingIsBounded) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(parse(deep).has_value());  // depth cap, no stack overflow
  std::string fine(50, '[');
  fine += std::string(50, ']');
  EXPECT_TRUE(parse(fine).has_value());
}

TEST(Json, RandomBytesNeverCrash) {
  simnet::Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    std::string garbage(rng.uniform(48), ' ');
    for (auto& c : garbage)
      c = static_cast<char>(32 + rng.uniform(95));
    (void)parse(garbage);
  }
}

}  // namespace
}  // namespace dnslocate::jsonio

namespace dnslocate::report {
namespace {

TEST(ResultsIo, RoundTripPreservesAggregation) {
  // Measure a small fleet, export JSONL, reload, and check every aggregate
  // the report layer computes is identical.
  atlas::FleetConfig config;
  config.scale = 0.02;
  auto fleet = atlas::generate_fleet(config);
  auto run = atlas::run_fleet(fleet);

  std::string jsonl = run_to_jsonl(run);
  auto loaded = run_from_jsonl(jsonl);
  ASSERT_TRUE(loaded.ok()) << loaded.errors[0];
  ASSERT_EQ(loaded.run.records.size(), run.records.size());

  EXPECT_EQ(loaded.run.intercepted_count(), run.intercepted_count());
  for (auto location :
       {core::InterceptorLocation::cpe, core::InterceptorLocation::isp,
        core::InterceptorLocation::unknown})
    EXPECT_EQ(loaded.run.count_location(location), run.count_location(location));

  EXPECT_EQ(render_table4(loaded.run).render(), render_table4(run).render());
  EXPECT_EQ(render_table5(loaded.run).render(), render_table5(run).render());
  EXPECT_EQ(render_figure3(loaded.run).render(), render_figure3(run).render());
  EXPECT_EQ(render_figure4(figure4_by_org(loaded.run)).render(),
            render_figure4(figure4_by_org(run)).render());
  auto a = accuracy_matrix(loaded.run);
  auto b = accuracy_matrix(run);
  EXPECT_EQ(a.correct(), b.correct());
  EXPECT_EQ(a.total(), b.total());
}

TEST(ResultsIo, BadLinesAreReportedAndSkipped) {
  auto loaded = run_from_jsonl("not json\n{\"probe_id\":1,\"location\":\"cpe\"}\n[1,2]\n");
  EXPECT_EQ(loaded.errors.size(), 2u);
  ASSERT_EQ(loaded.run.records.size(), 1u);
  EXPECT_EQ(loaded.run.records[0].verdict.location, core::InterceptorLocation::cpe);
}

TEST(ResultsIo, EmptyInput) {
  auto loaded = run_from_jsonl("");
  EXPECT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.run.records.empty());
}

}  // namespace
}  // namespace dnslocate::report
