// Message-level API tests: builders, accessors, rendering, debug queries.
#include <gtest/gtest.h>

#include "dnswire/debug_queries.h"
#include "dnswire/message.h"

namespace dnslocate::dnswire {
namespace {

DnsName name(const char* text) { return *DnsName::parse(text); }

TEST(Message, MakeQueryDefaults) {
  Message query = make_query(0x1234, name("example.com"), RecordType::AAAA);
  EXPECT_EQ(query.id, 0x1234);
  EXPECT_FALSE(query.is_response());
  EXPECT_TRUE(query.flags.rd);
  ASSERT_NE(query.question(), nullptr);
  EXPECT_EQ(query.question()->type, RecordType::AAAA);
  EXPECT_EQ(query.question()->klass, RecordClass::IN);
}

TEST(Message, MakeResponseEchoesQuestionAndId) {
  Message query = make_query(7, name("a.b"), RecordType::A);
  query.flags.rd = false;
  Message response = make_response(query, Rcode::REFUSED);
  EXPECT_TRUE(response.is_response());
  EXPECT_EQ(response.id, 7);
  EXPECT_EQ(response.rcode(), Rcode::REFUSED);
  EXPECT_FALSE(response.flags.rd);  // copied from the query
  EXPECT_TRUE(response.flags.ra);
  ASSERT_EQ(response.questions.size(), 1u);
  EXPECT_EQ(response.questions[0], query.questions[0]);
}

TEST(Message, MakeTxtResponseCarriesClassAndText) {
  Message query = make_chaos_query(3, version_bind());
  Message response = make_txt_response(query, "dnsmasq-2.85");
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].klass, RecordClass::CH);
  EXPECT_EQ(response.first_txt(), "dnsmasq-2.85");
}

TEST(Message, FirstAnswerFiltersOnType) {
  Message query = make_query(1, name("x"), RecordType::A);
  Message response = make_response(query);
  response.answers.push_back(make_cname(name("x"), name("y")));
  response.answers.push_back(make_a(name("y"), netbase::Ipv4Address(1, 2, 3, 4)));
  EXPECT_EQ(response.first_answer(RecordType::A)->type, RecordType::A);
  EXPECT_EQ(response.first_answer(RecordType::TXT), nullptr);
  // first_address skips the CNAME.
  EXPECT_EQ(response.first_address()->to_string(), "1.2.3.4");
}

TEST(Message, FirstAddressPrefersEarliestAddressRecord) {
  Message response;
  response.answers.push_back(
      make_aaaa(name("x"), *netbase::Ipv6Address::parse("2001:db8::1")));
  response.answers.push_back(make_a(name("x"), netbase::Ipv4Address(9, 9, 9, 9)));
  EXPECT_TRUE(response.first_address()->is_v6());
}

TEST(Message, EmptyAccessors) {
  Message empty;
  EXPECT_EQ(empty.question(), nullptr);
  EXPECT_EQ(empty.first_txt(), std::nullopt);
  EXPECT_EQ(empty.first_address(), std::nullopt);
}

TEST(Message, RenderingMentionsEverySection) {
  Message query = make_query(1, name("example.com"), RecordType::A);
  Message response = make_response(query);
  response.answers.push_back(make_a(name("example.com"), netbase::Ipv4Address(1, 2, 3, 4)));
  response.authorities.push_back(ResourceRecord{name("example.com"), RecordType::NS,
                                                RecordClass::IN, 60,
                                                NsRecord{name("ns1.example.com")}});
  response.additionals.push_back(make_txt(name("meta"), "x"));
  std::string text = response.to_string();
  EXPECT_NE(text.find("question: example.com IN A"), std::string::npos);
  EXPECT_NE(text.find("answer: example.com 300 IN A 1.2.3.4"), std::string::npos);
  EXPECT_NE(text.find("authority:"), std::string::npos);
  EXPECT_NE(text.find("additional:"), std::string::npos);
  EXPECT_NE(text.find("NOERROR"), std::string::npos);
}

TEST(Message, RecordRenderingPerType) {
  EXPECT_EQ(make_a(name("a.b"), netbase::Ipv4Address(1, 2, 3, 4), 60).to_string(),
            "a.b 60 IN A 1.2.3.4");
  EXPECT_EQ(make_txt(name("t"), "hi", RecordClass::CH).to_string(), "t 0 CH TXT \"hi\"");
  EXPECT_EQ(make_cname(name("a"), name("b"), 5).to_string(), "a 5 IN CNAME b");
  ResourceRecord soa{name("z"), RecordType::SOA, RecordClass::IN, 1,
                     SoaRecord{name("m"), name("r"), 42, 1, 2, 3, 4}};
  EXPECT_EQ(soa.to_string(), "z 1 IN SOA m r 42");
  ResourceRecord raw{name("w"), static_cast<RecordType>(250), RecordClass::IN, 1,
                     RawRecord{{1, 2, 3}}};
  EXPECT_NE(raw.to_string().find("\\# 3"), std::string::npos);
}

TEST(DebugQueries, WellKnownNames) {
  EXPECT_EQ(version_bind().to_string(), "version.bind");
  EXPECT_EQ(id_server().to_string(), "id.server");
  EXPECT_EQ(hostname_bind().to_string(), "hostname.bind");
}

TEST(DebugQueries, ChaosQueryPredicate) {
  Message query = make_chaos_query(1, version_bind());
  EXPECT_TRUE(is_chaos_query_for(query, version_bind()));
  EXPECT_TRUE(is_chaos_query_for(query, *DnsName::parse("VERSION.BIND")));
  EXPECT_FALSE(is_chaos_query_for(query, id_server()));
  // An IN-class query for the same name is not a CHAOS debug query.
  Message in_query = make_query(1, version_bind(), RecordType::TXT);
  EXPECT_FALSE(is_chaos_query_for(in_query, version_bind()));
  // Neither is a CH query of the wrong type.
  Message wrong_type = make_query(1, version_bind(), RecordType::A, RecordClass::CH);
  EXPECT_FALSE(is_chaos_query_for(wrong_type, version_bind()));
}

TEST(Types, ToStringCoverage) {
  EXPECT_EQ(to_string(RecordType::AAAA), "AAAA");
  EXPECT_EQ(to_string(RecordType::OPT), "OPT");
  EXPECT_EQ(to_string(static_cast<RecordType>(999)), "TYPE?");
  EXPECT_EQ(to_string(RecordClass::CH), "CH");
  EXPECT_EQ(to_string(Rcode::NXDOMAIN), "NXDOMAIN");
  EXPECT_EQ(to_string(Opcode::QUERY), "QUERY");
}

}  // namespace
}  // namespace dnslocate::dnswire
