// Hand-crafted wire-format edge cases beyond the random fuzz corpus:
// legal-but-unusual compression topologies, section-count lies, boundary
// sizes, and the specific malformations middleboxes emit in the wild —
// plus a seeded property corpus: encode->decode->encode round-trips,
// truncation at every byte boundary, and single-bit flips, none of which
// may crash or over-read (run under the asan-ubsan preset for teeth).
#include <gtest/gtest.h>

#include <random>

#include "dnswire/decoder.h"
#include "dnswire/encoder.h"

namespace dnslocate::dnswire {
namespace {

/// Header builder: id=1, QUERY, counts as given.
std::vector<std::uint8_t> header(std::uint16_t qd, std::uint16_t an, std::uint16_t ns = 0,
                                 std::uint16_t ar = 0, std::uint16_t flags = 0) {
  std::vector<std::uint8_t> out;
  auto u16 = [&out](std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
  };
  u16(1);
  u16(flags);
  u16(qd);
  u16(an);
  u16(ns);
  u16(ar);
  return out;
}

void append(std::vector<std::uint8_t>& out, std::initializer_list<int> bytes) {
  for (int b : bytes) out.push_back(static_cast<std::uint8_t>(b));
}

TEST(DecoderHardening, PointerChainsResolve) {
  // QNAME "a.example.com" written as: "a" + pointer -> "example" + pointer
  // -> "com". Legal: every pointer goes strictly backwards.
  std::vector<std::uint8_t> wire = header(1, 0);
  // offset 12: "com" \0
  append(wire, {3, 'c', 'o', 'm', 0});
  // offset 17: "example" -> ptr(12)
  append(wire, {7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 0xc0, 12});
  // offset 27: QNAME "a" -> ptr(17)
  append(wire, {1, 'a', 0xc0, 17});
  append(wire, {0, 1, 0, 1});  // A IN
  // The two intermediate name encodings are unreferenced garbage to a
  // strict section walk, so wrap them as the question only:
  // Rebuild: the question starts right after the header in a real message;
  // to keep it valid, claim zero questions and re-parse the name directly
  // is not possible through the public API — so instead place the chain
  // inside a one-question message where the QNAME is at offset 12.
  // (Covered properly below; this message intentionally has orphan bytes.)
  auto decoded = decode_message(wire);
  // The decoder reads the QNAME at offset 12 as "com" and then 17ff become
  // trailing/QTYPE bytes — it must not crash, whatever it concludes.
  (void)decoded;
}

TEST(DecoderHardening, CompressedAnswerNameAcrossSections) {
  // Proper end-to-end: answer name is a pointer into the question.
  Message query = make_query(7, *DnsName::parse("a.example.com"), RecordType::A);
  Message response = make_response(query);
  response.answers.push_back(
      make_a(*DnsName::parse("a.example.com"), netbase::Ipv4Address(1, 2, 3, 4)));
  auto wire = encode_message(response, {.compress_names = true});
  // The answer's name must be a 2-byte pointer (0xc0 0x0c).
  bool has_pointer = false;
  for (std::size_t i = 12; i + 1 < wire.size(); ++i)
    if (wire[i] == 0xc0 && wire[i + 1] == 12) has_pointer = true;
  EXPECT_TRUE(has_pointer);
  auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->answers[0].name.equals_ignore_case(*DnsName::parse("a.example.com")));
}

TEST(DecoderHardening, CountLiesAreRejected) {
  // Claims 5 questions but carries 1.
  std::vector<std::uint8_t> wire = header(5, 0);
  append(wire, {1, 'x', 0, 0, 1, 0, 1});
  DecodeError error;
  EXPECT_FALSE(decode_message(wire, &error).has_value());
  EXPECT_EQ(error.code, DecodeError::Code::truncated);

  // Claims 65535 answers in a tiny message.
  auto big_lie = header(0, 0xffff);
  EXPECT_FALSE(decode_message(big_lie).has_value());
}

TEST(DecoderHardening, RootQnameIsLegal) {
  std::vector<std::uint8_t> wire = header(1, 0);
  append(wire, {0, 0, 2, 0, 1});  // root, NS, IN
  auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->questions[0].name.is_root());
  EXPECT_EQ(decoded->questions[0].type, RecordType::NS);
}

TEST(DecoderHardening, MaximumLengthNameRoundTrips) {
  // 255-octet wire name: four 61-char labels (4*62 = 248) + "abcdef" label
  // (7) = 255 with the root byte... construct exactly at the limit.
  std::string label63(63, 'a');
  auto name = DnsName::from_labels({label63, label63, label63, std::string(61, 'b')});
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->wire_length(), 255u);  // 3*64 + 62 + root = 255 octets exactly
  EXPECT_LE(name->wire_length(), kMaxNameLength);
  Message query = make_query(1, *name, RecordType::A);
  auto decoded = decode_message(encode_message(query));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->questions[0].name, *name);
}

TEST(DecoderHardening, OverlongWireNameRejected) {
  // Craft a wire name of 4 * 63-char labels = 256 octets > 255.
  std::vector<std::uint8_t> wire = header(1, 0);
  for (int i = 0; i < 4; ++i) {
    wire.push_back(63);
    for (int j = 0; j < 63; ++j) wire.push_back('x');
  }
  wire.push_back(0);
  append(wire, {0, 1, 0, 1});
  DecodeError error;
  EXPECT_FALSE(decode_message(wire, &error).has_value());
  EXPECT_EQ(error.code, DecodeError::Code::name_too_long);
}

TEST(DecoderHardening, PointerIntoLabelMiddleIsHandled) {
  // A pointer targeting the middle of a label reinterprets bytes as a
  // length; this must either decode (harmlessly) or fail cleanly.
  std::vector<std::uint8_t> wire = header(1, 0);
  append(wire, {3, 'c', 'o', 'm', 0});  // offset 12
  append(wire, {0xc0, 14});             // QNAME: pointer into "om"
  append(wire, {0, 1, 0, 1});
  auto decoded = decode_message(wire);
  if (decoded) {
    // Interpreted "o"(0x6f) as a 111-byte label -> must have failed; or
    // whatever it read stayed within bounds.
    SUCCEED();
  }
}

TEST(DecoderHardening, TwoPointersDeepChainTerminates) {
  std::vector<std::uint8_t> wire = header(1, 0);
  append(wire, {1, 'a', 0});    // offset 12: "a"
  append(wire, {0xc0, 12});     // offset 15: ptr -> 12
  append(wire, {0xc0, 15});     // offset 17: QNAME: ptr -> ptr -> "a"
  append(wire, {0, 1, 0, 1});
  auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->questions[0].name.to_string(), "a");
}

TEST(DecoderHardening, MutualPointerLoopRejected) {
  // Two pointers that point at each other would loop forever without the
  // strictly-backwards rule.
  std::vector<std::uint8_t> wire = header(1, 0);
  append(wire, {0xc0, 14});  // offset 12 -> 14 (forward!)
  append(wire, {0xc0, 12});  // offset 14 -> 12
  append(wire, {0, 1, 0, 1});
  DecodeError error;
  EXPECT_FALSE(decode_message(wire, &error).has_value());
  EXPECT_EQ(error.code, DecodeError::Code::bad_pointer);
}

TEST(DecoderHardening, EmptyMessageAndHeaderOnly) {
  EXPECT_FALSE(decode_message({}).has_value());
  auto bare = header(0, 0);
  auto decoded = decode_message(bare);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->questions.empty());
  EXPECT_TRUE(decoded->answers.empty());
}

TEST(DecoderHardening, RdlengthBeyondBufferRejected) {
  Message response = make_response(make_query(1, *DnsName::parse("x"), RecordType::TXT));
  response.answers.push_back(make_txt(*DnsName::parse("x"), "abc"));
  auto wire = encode_message(response, {.compress_names = false});
  // Inflate the TXT RDLENGTH beyond the remaining bytes.
  // Layout ends with: rdlen(2) + len(1) + "abc"(3); rdlen at size-6.
  wire[wire.size() - 6] = 0x7f;
  DecodeError error;
  EXPECT_FALSE(decode_message(wire, &error).has_value());
}

TEST(DecoderHardening, ErrorRenderingIsInformative) {
  std::vector<std::uint8_t> wire = {0, 1, 0};
  DecodeError error;
  decode_message(wire, &error);
  std::string text = error.to_string();
  EXPECT_NE(text.find("truncated"), std::string::npos);
  EXPECT_NE(text.find("offset"), std::string::npos);
}

// --- seeded property corpus ---

/// Deterministic random-message generator for the round-trip corpus.
struct Corpus {
  std::mt19937 rng{0x5eed2026};

  int pick(int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng); }

  DnsName random_name() {
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::vector<std::string> labels;
    int label_count = pick(1, 4);
    for (int i = 0; i < label_count; ++i) {
      std::string label;
      int length = pick(1, 12);
      for (int j = 0; j < length; ++j)
        label.push_back(kAlphabet[pick(0, sizeof kAlphabet - 2)]);
      labels.push_back(std::move(label));
    }
    auto name = DnsName::from_labels(labels);
    EXPECT_TRUE(name.has_value());
    return name.value_or(DnsName{});
  }

  Message random_message() {
    static constexpr RecordType kTypes[] = {RecordType::A, RecordType::TXT, RecordType::NS};
    Message query = make_query(static_cast<std::uint16_t>(pick(0, 0xffff)), random_name(),
                               kTypes[pick(0, 2)]);
    if (pick(0, 1) == 0) return query;
    Message response = make_response(query);
    int answers = pick(0, 3);
    for (int i = 0; i < answers; ++i) {
      // Half the answers repeat the question name (compression targets).
      DnsName owner = pick(0, 1) == 0 ? response.questions[0].name : random_name();
      if (pick(0, 1) == 0) {
        response.answers.push_back(make_a(
            owner, netbase::Ipv4Address(static_cast<std::uint8_t>(pick(0, 255)),
                                        static_cast<std::uint8_t>(pick(0, 255)),
                                        static_cast<std::uint8_t>(pick(0, 255)),
                                        static_cast<std::uint8_t>(pick(0, 255)))));
      } else {
        std::string text(static_cast<std::size_t>(pick(0, 40)), 'q');
        response.answers.push_back(make_txt(owner, text));
      }
    }
    return response;
  }
};

/// Semantic equality of the fields the pipeline reads.
void expect_equivalent(const Message& a, const Message& b) {
  ASSERT_EQ(a.questions.size(), b.questions.size());
  ASSERT_EQ(a.answers.size(), b.answers.size());
  EXPECT_EQ(a.id, b.id);
  for (std::size_t i = 0; i < a.questions.size(); ++i) {
    EXPECT_EQ(a.questions[i].name.to_string(), b.questions[i].name.to_string());
    EXPECT_EQ(a.questions[i].type, b.questions[i].type);
  }
  for (std::size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].name.to_string(), b.answers[i].name.to_string());
    EXPECT_EQ(a.answers[i].type, b.answers[i].type);
    EXPECT_EQ(a.answers[i].rdata, b.answers[i].rdata);
  }
}

TEST(DecoderProperty, RandomMessagesRoundTripBothCompressionModes) {
  Corpus corpus;
  for (int i = 0; i < 40; ++i) {
    Message message = corpus.random_message();
    for (bool compress : {false, true}) {
      auto wire = encode_message(message, {.compress_names = compress});
      auto decoded = decode_message(wire);
      ASSERT_TRUE(decoded.has_value()) << "message " << i << " compress=" << compress;
      expect_equivalent(message, *decoded);
      // Re-encoding the decoded message reaches a fixpoint: decode of the
      // second encoding is equivalent again (and byte-stable thereafter).
      auto wire2 = encode_message(*decoded, {.compress_names = compress});
      auto decoded2 = decode_message(wire2);
      ASSERT_TRUE(decoded2.has_value());
      expect_equivalent(*decoded, *decoded2);
      EXPECT_EQ(wire2, encode_message(*decoded2, {.compress_names = compress}));
    }
  }
}

TEST(DecoderProperty, TruncationAtEveryByteBoundaryIsSafe) {
  Corpus corpus;
  for (int i = 0; i < 25; ++i) {
    auto wire = encode_message(corpus.random_message(), {.compress_names = true});
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      std::vector<std::uint8_t> prefix(wire.begin(),
                                       wire.begin() + static_cast<std::ptrdiff_t>(cut));
      // Must never crash or over-read; most prefixes fail, some short ones
      // happen to parse — either way the result is well-formed.
      auto decoded = decode_message(prefix);
      if (cut < 12) {
        EXPECT_FALSE(decoded.has_value()) << "header cannot fit in " << cut;
      }
    }
  }
}

TEST(DecoderProperty, SingleBitFlipsNeverCrashTheDecoder) {
  Corpus corpus;
  for (int i = 0; i < 25; ++i) {
    auto wire = encode_message(corpus.random_message(), {.compress_names = true});
    for (std::size_t byte = 0; byte < wire.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto mutated = wire;
        mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
        auto decoded = decode_message(mutated);
        // A one-bit corruption either still decodes (e.g., a flipped id or
        // case bit) or is rejected; both are fine, crashing is not.
        (void)decoded;
      }
    }
  }
}

TEST(DecoderProperty, RandomBuffersAreRejectedSafely) {
  std::mt19937 rng(0xfeedface);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<int> len_dist(0, 512);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> noise(static_cast<std::size_t>(len_dist(rng)));
    for (auto& b : noise) b = static_cast<std::uint8_t>(byte_dist(rng));
    auto decoded = decode_message(noise);
    (void)decoded;  // any outcome but a crash/over-read is acceptable
  }
}

}  // namespace
}  // namespace dnslocate::dnswire
