// Extended NAT coverage: IPv6 translation, port-rewriting DNAT, ephemeral
// port wraparound, ICMP interaction with DNAT'd flows, and hook statistics.
#include <gtest/gtest.h>

#include "simnet/nat.h"
#include "simnet/simulator.h"

namespace dnslocate::simnet {
namespace {

netbase::IpAddress ip(const char* text) { return *netbase::IpAddress::parse(text); }

struct EchoApp : UdpApp {
  int echoes = 0;
  void on_datagram(Simulator& sim, Device& self, const UdpPacket& packet) override {
    ++echoes;
    UdpPacket reply;
    reply.src = packet.dst;
    reply.dst = packet.src;
    reply.sport = packet.dport;
    reply.dport = packet.sport;
    reply.payload = packet.payload;
    self.send_local(sim, reply);
  }
};

struct SinkApp : UdpApp {
  std::vector<UdpPacket> received;
  void on_datagram(Simulator&, Device&, const UdpPacket& packet) override {
    received.push_back(packet);
  }
};

/// Dual-stack client -- router(NAT) -- server world.
struct V6World {
  Simulator sim{1};
  Device& client;
  Device& router;
  Device& server;
  PortId client_up = 0, router_lan = 0, router_wan = 0;
  std::shared_ptr<NatHook> nat = std::make_shared<NatHook>();
  EchoApp server_app;
  SinkApp client_app;

  V6World()
      : client(sim.add_device<Device>("client")),
        router(sim.add_device<Device>("router")),
        server(sim.add_device<Device>("server")) {
    router.set_forwarding(true);
    auto [c, rl] = sim.connect(client, router);
    client_up = c;
    router_lan = rl;
    auto [rw, s] = sim.connect(router, server);
    router_wan = rw;

    client.add_local_ip(ip("fd00:1::10"));
    client.set_default_route(client_up);
    router.add_local_ip(ip("fd00:1::1"));
    router.add_local_ip(ip("2a00:55::7"));
    router.add_route(*netbase::Prefix::parse("fd00:1::/64"), router_lan);
    router.set_default_route(router_wan);
    server.add_local_ip(ip("2620:fe::fe"));
    server.set_default_route(s);

    SnatRule snat;
    snat.out_port = router_wan;
    snat.to_source_v6 = ip("2a00:55::7");
    nat->add_snat_rule(snat);
    router.add_hook(nat);
    server.bind_udp(53, &server_app);
    client.bind_udp(5555, &client_app);
  }
};

TEST(NatV6, MasqueradeAndRestoreWorkOverV6) {
  V6World world;
  UdpPacket packet;
  packet.src = ip("fd00:1::10");
  packet.dst = ip("2620:fe::fe");
  packet.sport = 5555;
  packet.dport = 53;
  packet.payload = {1};
  world.client.send_local(world.sim, packet);
  world.sim.run_until_idle();

  ASSERT_EQ(world.client_app.received.size(), 1u);
  EXPECT_EQ(world.client_app.received[0].src, ip("2620:fe::fe"));
  EXPECT_EQ(world.client_app.received[0].dst, ip("fd00:1::10"));
  EXPECT_EQ(world.nat->snat_hits(), 1u);
  EXPECT_EQ(world.nat->unnat_hits(), 1u);
}

TEST(NatV6, V6DnatDivertsWithV6Target) {
  V6World world;
  auto& alt = world.sim.add_device<Device>("alt");
  auto [alt_up, r_alt] = world.sim.connect(alt, world.router);
  alt.add_local_ip(ip("2a00:66::5"));
  alt.set_default_route(alt_up);
  world.router.add_route(*netbase::Prefix::parse("2a00:66::/32"), r_alt);
  EchoApp alt_app;
  alt.bind_udp(53, &alt_app);

  DnatRule rule;
  rule.in_port = world.router_lan;
  rule.family = netbase::IpFamily::v6;
  rule.new_dst_v6 = ip("2a00:66::5");
  world.nat->add_dnat_rule(rule);

  UdpPacket packet;
  packet.src = ip("fd00:1::10");
  packet.dst = ip("2620:fe::fe");
  packet.sport = 5555;
  packet.dport = 53;
  packet.payload = {2};
  world.client.send_local(world.sim, packet);
  world.sim.run_until_idle();

  EXPECT_EQ(world.server_app.echoes, 0);
  EXPECT_EQ(alt_app.echoes, 1);
  ASSERT_EQ(world.client_app.received.size(), 1u);
  EXPECT_EQ(world.client_app.received[0].src, ip("2620:fe::fe"));  // spoofed
}

/// v4 world matching test_simnet_nat's shape, reused for the port tests.
struct V4World {
  Simulator sim{1};
  Device& client;
  Device& router;
  Device& server;
  PortId client_up = 0, router_lan = 0, router_wan = 0;
  std::shared_ptr<NatHook> nat = std::make_shared<NatHook>();
  EchoApp server_app;
  SinkApp client_app;

  V4World()
      : client(sim.add_device<Device>("client")),
        router(sim.add_device<Device>("router")),
        server(sim.add_device<Device>("server")) {
    router.set_forwarding(true);
    auto [c, rl] = sim.connect(client, router);
    client_up = c;
    router_lan = rl;
    auto [rw, s] = sim.connect(router, server);
    router_wan = rw;
    client.add_local_ip(ip("192.168.1.10"));
    client.set_default_route(client_up);
    router.add_local_ip(ip("192.168.1.1"));
    router.add_local_ip(ip("203.0.113.7"));
    router.add_route(*netbase::Prefix::parse("192.168.1.0/24"), router_lan);
    router.set_default_route(router_wan);
    server.add_local_ip(ip("8.8.8.8"));
    server.set_default_route(s);
    SnatRule snat;
    snat.out_port = router_wan;
    snat.to_source_v4 = ip("203.0.113.7");
    nat->add_snat_rule(snat);
    router.add_hook(nat);
    server.bind_udp(53, &server_app);
    server.bind_udp(5353, &server_app);
    client.bind_udp(6000, &client_app);
  }

  void send(std::uint16_t sport, std::uint16_t dport) {
    UdpPacket packet;
    packet.src = ip("192.168.1.10");
    packet.dst = ip("8.8.8.8");
    packet.sport = sport;
    packet.dport = dport;
    packet.payload = {9};
    client.bind_udp(sport, &client_app);
    client.send_local(sim, packet);
    sim.run_until_idle();
  }
};

TEST(NatExtended, DnatCanRewriteThePortToo) {
  V4World world;
  DnatRule rule;
  rule.in_port = world.router_lan;
  rule.match_dport = 53;
  rule.new_dst_v4 = ip("8.8.8.8");
  rule.new_dport = 5353;  // redirect 53 -> 5353 on the same server
  world.nat->add_dnat_rule(rule);

  world.send(6000, 53);
  ASSERT_EQ(world.client_app.received.size(), 1u);
  // The reply is restored to look like it came from port 53.
  EXPECT_EQ(world.client_app.received[0].sport, 53);
  EXPECT_EQ(world.server_app.echoes, 1);
}

TEST(NatExtended, EphemeralPortsAdvancePerFlow) {
  V4World world;
  for (std::uint16_t sport = 7000; sport < 7005; ++sport) world.send(sport, 53);
  EXPECT_EQ(world.client_app.received.size(), 5u);
  EXPECT_EQ(world.nat->conntrack_size(), 5u);
  EXPECT_EQ(world.nat->snat_hits(), 5u);
}

TEST(NatExtended, StatsStartAtZero) {
  NatHook nat;
  EXPECT_EQ(nat.dnat_hits(), 0u);
  EXPECT_EQ(nat.snat_hits(), 0u);
  EXPECT_EQ(nat.unnat_hits(), 0u);
  EXPECT_EQ(nat.conntrack_size(), 0u);
}

TEST(NatExtended, MixedFamilyRuleDoesNotFire) {
  // A v4-target rule never matches v6 packets even without a family filter,
  // because no v6 diversion target exists.
  V6World world;
  DnatRule rule;
  rule.in_port = world.router_lan;
  rule.new_dst_v4 = ip("66.55.44.5");  // v4 target only
  world.nat->add_dnat_rule(rule);

  UdpPacket packet;
  packet.src = ip("fd00:1::10");
  packet.dst = ip("2620:fe::fe");
  packet.sport = 5555;
  packet.dport = 53;
  packet.payload = {3};
  world.client.send_local(world.sim, packet);
  world.sim.run_until_idle();
  EXPECT_EQ(world.server_app.echoes, 1);  // passed through untouched
  EXPECT_EQ(world.nat->dnat_hits(), 0u);
}

}  // namespace
}  // namespace dnslocate::simnet
