// DNS-over-TCP tests: framing, truncation-driven fallback, error paths.
#include <gtest/gtest.h>

#include "dnswire/debug_queries.h"
#include "resolvers/resolver_behavior.h"
#include "sockets/loopback_server.h"
#include "sockets/tcp_transport.h"
#include "sockets/udp_transport.h"

namespace dnslocate::sockets {
namespace {

core::QueryOptions fast() {
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(2000);
  return options;
}

std::shared_ptr<resolvers::DnsResponder> big_txt_responder(std::size_t size) {
  struct BigTxt : resolvers::DnsResponder {
    explicit BigTxt(std::size_t n) : size(n) {}
    std::optional<dnswire::Message> respond(const dnswire::Message& query,
                                            const resolvers::QueryContext&) override {
      return dnswire::make_txt_response(query, std::string(size, 'x'));
    }
    std::size_t size;
  };
  return std::make_shared<BigTxt>(size);
}

std::shared_ptr<resolvers::ResolverBehavior> plain_resolver() {
  resolvers::ResolverConfig config;
  config.software = resolvers::unbound("1.17.0");
  config.egress_v4 = *netbase::IpAddress::parse("127.0.0.1");
  return std::make_shared<resolvers::ResolverBehavior>(config);
}

TEST(TcpTransport, RoundTripOverLoopback) {
  LoopbackDnsServer server(plain_resolver(), /*serve_tcp=*/true);
  TcpTransport tcp;
  auto query = dnswire::make_chaos_query(0x7001, dnswire::version_bind());
  auto result = tcp.query(server.endpoint(), query, fast());
  ASSERT_TRUE(result.answered());
  EXPECT_EQ(result.response->first_txt(), "unbound 1.17.0");
  EXPECT_EQ(server.tcp_queries_served(), 1u);
  EXPECT_EQ(server.queries_served(), 0u);  // never touched UDP
}

TEST(TcpTransport, LargeAnswersArriveUntruncated) {
  LoopbackDnsServer server(big_txt_responder(900), /*serve_tcp=*/true);
  TcpTransport tcp;
  auto query = dnswire::make_query(0x7002, *dnswire::DnsName::parse("big.example"),
                                   dnswire::RecordType::TXT);
  auto result = tcp.query(server.endpoint(), query, fast());
  ASSERT_TRUE(result.answered());
  EXPECT_FALSE(result.response->flags.tc);
  EXPECT_EQ(result.response->first_txt()->size(), 900u);
}

TEST(TcpTransport, TimesOutOnDeadPort) {
  TcpTransport tcp;
  auto query = dnswire::make_query(1, *dnswire::DnsName::parse("x"), dnswire::RecordType::A);
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(200);
  auto result = tcp.query({*netbase::IpAddress::parse("127.0.0.1"), 9}, query, options);
  EXPECT_FALSE(result.answered());
}

TEST(FallbackTransport, RetriesOverTcpOnTruncation) {
  // The UDP path truncates the 900-byte answer to fit 512; the fallback
  // must notice TC and fetch the full answer over TCP.
  LoopbackDnsServer server(big_txt_responder(900), /*serve_tcp=*/true);
  UdpTransport udp;
  TcpTransport tcp;
  FallbackTransport fallback(udp, tcp);

  auto query = dnswire::make_query(0x7003, *dnswire::DnsName::parse("big.example"),
                                   dnswire::RecordType::TXT);
  auto result = fallback.query(server.endpoint(), query, fast());
  ASSERT_TRUE(result.answered());
  EXPECT_FALSE(result.response->flags.tc);
  EXPECT_EQ(result.response->first_txt()->size(), 900u);
  EXPECT_EQ(fallback.tcp_retries(), 1u);
  EXPECT_EQ(server.queries_served(), 1u);      // the truncated UDP attempt
  EXPECT_EQ(server.tcp_queries_served(), 1u);  // the retry
}

TEST(FallbackTransport, SmallAnswersNeverTouchTcp) {
  LoopbackDnsServer server(plain_resolver(), /*serve_tcp=*/true);
  UdpTransport udp;
  TcpTransport tcp;
  FallbackTransport fallback(udp, tcp);
  auto query = dnswire::make_chaos_query(0x7004, dnswire::version_bind());
  auto result = fallback.query(server.endpoint(), query, fast());
  ASSERT_TRUE(result.answered());
  EXPECT_EQ(fallback.tcp_retries(), 0u);
  EXPECT_EQ(server.tcp_queries_served(), 0u);
}

TEST(FallbackTransport, KeepsTruncatedAnswerWhenTcpUnavailable) {
  // Server speaks UDP only: the fallback's TCP retry fails, and the
  // truncated UDP answer is returned rather than nothing.
  LoopbackDnsServer server(big_txt_responder(900), /*serve_tcp=*/false);
  UdpTransport udp;
  TcpTransport tcp;
  FallbackTransport fallback(udp, tcp);
  auto query = dnswire::make_query(0x7005, *dnswire::DnsName::parse("big.example"),
                                   dnswire::RecordType::TXT);
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(300);
  auto result = fallback.query(server.endpoint(), query, options);
  ASSERT_TRUE(result.answered());
  EXPECT_TRUE(result.response->flags.tc);
  EXPECT_EQ(fallback.tcp_retries(), 1u);
}

TEST(TcpTransport, SupportsBothFamilies) {
  TcpTransport tcp;
  EXPECT_TRUE(tcp.supports_family(netbase::IpFamily::v4));
  EXPECT_FALSE(tcp.supports_ttl());
}

}  // namespace
}  // namespace dnslocate::sockets
