// End-to-end: the full localization pipeline over every scenario class,
// checked against the simulator's ground truth. This is the heart of the
// reproduction — each TEST mirrors a case from §3/§4/§5 of the paper.
#include <gtest/gtest.h>

#include "atlas/scenario.h"

namespace dnslocate {
namespace {

using atlas::CpeStyle;
using atlas::Scenario;
using atlas::ScenarioConfig;
using core::InterceptorLocation;
using core::LocalizationPipeline;

core::ProbeVerdict run_scenario(const ScenarioConfig& config) {
  Scenario scenario(config);
  LocalizationPipeline pipeline(scenario.pipeline_config());
  return pipeline.run(scenario.transport());
}

TEST(PipelineScenarios, CleanPathIsNotIntercepted) {
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::benign_closed;
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::not_intercepted);
  EXPECT_FALSE(verdict.detection.any_intercepted());
  // All sixteen v4 location probes must have standard answers.
  for (const auto& probe : verdict.detection.probes) {
    if (probe.family == netbase::IpFamily::v4) {
      EXPECT_EQ(probe.verdict, core::LocationVerdict::standard)
          << to_string(probe.kind) << " answered " << probe.display;
    }
  }
}

TEST(PipelineScenarios, OpenPortForwarderAloneIsNotInterception) {
  // Port 53 open on the CPE must not be mistaken for interception (§3.2's
  // "this result alone is insufficient").
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::benign_open_dnsmasq;
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::not_intercepted);
}

TEST(PipelineScenarios, Xb6BugIsLocatedAtCpe) {
  // §5: the XB6's XDNS DNATs every LAN query to its own forwarder.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::xb6_buggy;
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::cpe);
  ASSERT_TRUE(verdict.cpe_check.has_value());
  EXPECT_TRUE(verdict.cpe_check->cpe_is_interceptor);
  // The XDNS forwarder is dnsmasq-based: the version.bind string must say so.
  ASSERT_TRUE(verdict.cpe_check->cpe.has_string());
  EXPECT_EQ(verdict.cpe_check->cpe.txt->substr(0, 7), "dnsmasq");
  // Every intercepted resolver returns the identical string (Table 3).
  for (const auto& [kind, obs] : verdict.cpe_check->resolver_answers)
    EXPECT_EQ(obs.txt, verdict.cpe_check->cpe.txt) << to_string(kind);
}

TEST(PipelineScenarios, HealthyXb6IsNotIntercepted) {
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::xb6_healthy;
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::not_intercepted);
}

TEST(PipelineScenarios, PiholeIsLocatedAtCpe) {
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::pihole;
  config.cpe.version = "2.87";
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::cpe);
  ASSERT_TRUE(verdict.cpe_check->cpe.has_string());
  EXPECT_EQ(*verdict.cpe_check->cpe.txt, "dnsmasq-pi-hole-2.87");
}

TEST(PipelineScenarios, UnboundCpeShowsItsIdentity) {
  // Probe 21823's shape in Tables 2/3: an unbound forwarder with a custom
  // id.server identity intercepting everything.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::intercept_unbound;
  config.cpe.version = "1.9.0";
  config.cpe.identity = "routing.v2.pw";
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::cpe);
  EXPECT_EQ(*verdict.cpe_check->cpe.txt, "unbound 1.9.0");

  // The Cloudflare location query (CH id.server) surfaces the identity.
  bool saw_identity = false;
  for (const auto& probe : verdict.detection.probes) {
    if (probe.kind == resolvers::PublicResolverKind::cloudflare &&
        probe.family == netbase::IpFamily::v4 && probe.display == "routing.v2.pw")
      saw_identity = true;
  }
  EXPECT_TRUE(saw_identity);
}

TEST(PipelineScenarios, IspMiddleboxIsLocatedWithinIsp) {
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::benign_closed;
  config.isp_policy.middlebox_enabled = true;
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::isp);
  EXPECT_TRUE(verdict.detection.all_four_intercepted(netbase::IpFamily::v4));
  ASSERT_TRUE(verdict.bogon.has_value());
  EXPECT_TRUE(verdict.bogon->within_isp());
}

TEST(PipelineScenarios, IspMiddleboxWithOpenPortCpeStillIsp) {
  // The CPE's own dnsmasq answers version.bind with its own string, which
  // differs from the ISP resolver's -> correctly not classified CPE.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::benign_open_dnsmasq;
  config.isp_policy.middlebox_enabled = true;
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::isp);
  ASSERT_TRUE(verdict.cpe_check.has_value());
  EXPECT_FALSE(verdict.cpe_check->cpe_is_interceptor);
  EXPECT_TRUE(verdict.cpe_check->cpe.has_string());  // port 53 answered
}

TEST(PipelineScenarios, BogonDiscardingInterceptorIsUnknown) {
  // §3.3: "either the interceptor was outside the AS, or the interceptor
  // discards queries to unroutable addresses" -> no conclusion.
  ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.ignore_bogon_queries = true;
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::unknown);
}

TEST(PipelineScenarios, ExternalInterceptorIsUnknown) {
  ScenarioConfig config;
  config.external_interceptor = true;
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::unknown);
  EXPECT_TRUE(verdict.detection.all_four_intercepted(netbase::IpFamily::v4));
  ASSERT_TRUE(verdict.bogon.has_value());
  EXPECT_FALSE(verdict.bogon->within_isp());
}

TEST(PipelineScenarios, ScopedInterceptorOnlyFlagsItsTarget) {
  ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.intercept_all_port53 = false;
  config.isp_policy.target_actions[resolvers::PublicResolverKind::cloudflare] =
      isp::TargetAction::divert;
  config.isp_policy.scoped_answers_bogons = true;
  auto verdict = run_scenario(config);
  auto intercepted = verdict.detection.intercepted_kinds(netbase::IpFamily::v4);
  ASSERT_EQ(intercepted.size(), 1u);
  EXPECT_EQ(intercepted[0], resolvers::PublicResolverKind::cloudflare);
  EXPECT_EQ(verdict.location, InterceptorLocation::isp);
}

TEST(PipelineScenarios, OneAllowedPatternSparesTheExemptResolver) {
  ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.target_actions[resolvers::PublicResolverKind::google] =
      isp::TargetAction::pass;
  auto verdict = run_scenario(config);
  auto intercepted = verdict.detection.intercepted_kinds(netbase::IpFamily::v4);
  EXPECT_EQ(intercepted.size(), 3u);
  EXPECT_FALSE(verdict.detection.of(resolvers::PublicResolverKind::google).intercepted_v4);
  EXPECT_EQ(verdict.location, InterceptorLocation::isp);
}

TEST(PipelineScenarios, BlockingInterceptorIsStatusModified) {
  ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.default_action = isp::TargetAction::divert_block;
  auto verdict = run_scenario(config);
  EXPECT_TRUE(verdict.detection.any_intercepted());
  ASSERT_TRUE(verdict.transparency.has_value());
  EXPECT_EQ(verdict.transparency->overall, core::TransparencyClass::status_modified);
}

TEST(PipelineScenarios, MixedPolicyIsBoth) {
  ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.target_actions[resolvers::PublicResolverKind::quad9] =
      isp::TargetAction::divert_block;
  auto verdict = run_scenario(config);
  ASSERT_TRUE(verdict.transparency.has_value());
  EXPECT_EQ(verdict.transparency->overall, core::TransparencyClass::both);
}

TEST(PipelineScenarios, TransparentInterceptorIsTransparent) {
  ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  auto verdict = run_scenario(config);
  ASSERT_TRUE(verdict.transparency.has_value());
  EXPECT_EQ(verdict.transparency->overall, core::TransparencyClass::transparent);
}

TEST(PipelineScenarios, KnownLimitationChaosForwarderMisclassifies) {
  // §6: open port 53 + forwarder that punts CHAOS upstream + ISP interceptor
  // => the technique (correctly, per its stated limitation) concludes CPE.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::benign_open_chaos_forwarder;
  config.isp_policy.middlebox_enabled = true;
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::cpe);  // the documented FP
  Scenario scenario(config);
  EXPECT_EQ(scenario.ground_truth().expected, InterceptorLocation::isp);
}

TEST(PipelineScenarios, V6OnlyInterceptionIsDetected) {
  ScenarioConfig config;
  config.home_ipv6 = true;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.intercept_all_port53 = false;
  config.isp_policy.target_actions_v6[resolvers::PublicResolverKind::google] =
      isp::TargetAction::divert;
  auto verdict = run_scenario(config);
  EXPECT_FALSE(verdict.detection.any_intercepted(netbase::IpFamily::v4));
  EXPECT_TRUE(verdict.detection.of(resolvers::PublicResolverKind::google).intercepted_v6);
  EXPECT_TRUE(verdict.intercepted());
}

TEST(PipelineScenarios, V4InterceptionDoesNotTouchV6) {
  // §4.1.1: interceptors acting on v4 rarely touch v6; our v4-only
  // middlebox must leave the v6 location queries standard.
  ScenarioConfig config;
  config.home_ipv6 = true;
  config.isp_policy.middlebox_enabled = true;  // v4 only by default
  auto verdict = run_scenario(config);
  EXPECT_TRUE(verdict.detection.any_intercepted(netbase::IpFamily::v4));
  EXPECT_FALSE(verdict.detection.any_intercepted(netbase::IpFamily::v6));
}

TEST(PipelineScenarios, DnatToResolverCpeStillLocatedAtCpe) {
  // A CPE that DNATs straight to the ISP resolver: every version.bind
  // (including the one addressed to the CPE) is answered by the same
  // resolver -> identical strings -> CPE per §3.2.
  ScenarioConfig config;
  config.cpe.kind = CpeStyle::Kind::intercept_to_resolver;
  auto verdict = run_scenario(config);
  EXPECT_EQ(verdict.location, InterceptorLocation::cpe);
}

TEST(PipelineScenarios, GroundTruthMatchesVerdictOnWellBehavedCases) {
  // Sweep the scenario classes whose expected verdict the technique should
  // reproduce exactly.
  struct Case {
    CpeStyle::Kind cpe;
    bool middlebox;
    InterceptorLocation expected;
  };
  const Case cases[] = {
      {CpeStyle::Kind::benign_closed, false, InterceptorLocation::not_intercepted},
      {CpeStyle::Kind::benign_open_dnsmasq, false, InterceptorLocation::not_intercepted},
      {CpeStyle::Kind::xb6_buggy, false, InterceptorLocation::cpe},
      {CpeStyle::Kind::pihole, false, InterceptorLocation::cpe},
      {CpeStyle::Kind::intercept_dnsmasq, false, InterceptorLocation::cpe},
      {CpeStyle::Kind::benign_closed, true, InterceptorLocation::isp},
      {CpeStyle::Kind::benign_open_dnsmasq, true, InterceptorLocation::isp},
  };
  for (const Case& c : cases) {
    ScenarioConfig config;
    config.cpe.kind = c.cpe;
    config.isp_policy.middlebox_enabled = c.middlebox;
    Scenario scenario(config);
    EXPECT_EQ(scenario.ground_truth().expected, c.expected);
    auto verdict = run_scenario(config);
    EXPECT_EQ(verdict.location, c.expected)
        << "cpe=" << static_cast<int>(c.cpe) << " middlebox=" << c.middlebox;
  }
}

}  // namespace
}  // namespace dnslocate
