// describe()/summarize() rendering tests over real pipeline verdicts.
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "core/describe.h"

namespace dnslocate::core {
namespace {

ProbeVerdict verdict_for(atlas::ScenarioConfig config) {
  atlas::Scenario scenario(config);
  LocalizationPipeline pipeline(scenario.pipeline_config());
  return pipeline.run(scenario.transport());
}

TEST(Describe, CleanVerdict) {
  auto verdict = verdict_for({});
  EXPECT_EQ(summarize(verdict), "not intercepted");
  std::string text = describe(verdict);
  EXPECT_NE(text.find("verdict: not intercepted"), std::string::npos);
  EXPECT_NE(text.find("step 1"), std::string::npos);
  EXPECT_EQ(text.find("step 2"), std::string::npos);  // never ran
  EXPECT_NE(text.find("IAD"), std::string::npos);     // a standard answer shown
}

TEST(Describe, CpeVerdictShowsComparison) {
  atlas::ScenarioConfig config;
  config.cpe.kind = atlas::CpeStyle::Kind::xb6_buggy;
  auto verdict = verdict_for(config);
  std::string summary = summarize(verdict);
  EXPECT_NE(summary.find("CPE"), std::string::npos);
  EXPECT_NE(summary.find("dnsmasq"), std::string::npos);
  EXPECT_NE(summary.find("4/4 resolvers"), std::string::npos);

  std::string text = describe(verdict);
  EXPECT_NE(text.find("step 2"), std::string::npos);
  EXPECT_NE(text.find("identical strings: the CPE is the interceptor"), std::string::npos);
  EXPECT_NE(text.find("CPE public IP -> \"dnsmasq"), std::string::npos);
}

TEST(Describe, IspVerdictShowsBogonEvidence) {
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  auto verdict = verdict_for(config);
  std::string text = describe(verdict);
  EXPECT_NE(text.find("step 3"), std::string::npos);
  EXPECT_NE(text.find("answered: the interceptor is inside the AS"), std::string::npos);
  EXPECT_NE(text.find("transparency: Transparent"), std::string::npos);
}

TEST(Describe, UnknownVerdictExplainsSilence) {
  atlas::ScenarioConfig config;
  config.external_interceptor = true;
  auto verdict = verdict_for(config);
  std::string text = describe(verdict);
  EXPECT_NE(text.find("silent: interceptor beyond the AS"), std::string::npos);
}

TEST(Describe, OptionsControlSections) {
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.home_ipv6 = true;
  auto verdict = verdict_for(config);

  DescribeOptions no_extras;
  no_extras.include_v6 = false;
  no_extras.include_transparency = false;
  std::string text = describe(verdict, no_extras);
  EXPECT_EQ(text.find("transparency:"), std::string::npos);
  // v6 service addresses never mentioned.
  EXPECT_EQ(text.find("[2001:"), std::string::npos);

  DescribeOptions with_v6;
  std::string full = describe(verdict, with_v6);
  EXPECT_NE(full.find("[2001:"), std::string::npos);
}

}  // namespace
}  // namespace dnslocate::core
