// Golden pin for the 13-scenario equivalence corpus: the rendered evidence
// signatures are checked into tests/golden/scenario_signatures.txt and every
// run diffs the live signatures (blocking AND async engines) against that
// file. test_engine_equivalence proves the two engines agree with each other;
// this suite proves they both still agree with the *recorded* pre-refactor
// bytes, so a refactor that drifts the evidence trail fails loudly instead of
// silently re-pinning equivalence at the new behaviour.
//
// Regeneration (deliberate behaviour changes only):
//   DNSLOCATE_UPDATE_GOLDEN=1 ./build/tests/test_corpus_golden
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "atlas/scenario.h"
#include "scenario_corpus.h"
#include "core/pipeline.h"

namespace dnslocate {
namespace {

using atlas::Scenario;
using atlas::ScenarioConfig;
using core::LocalizationPipeline;
using testing_corpus::Case;
using testing_corpus::corpus;
using testing_corpus::signature;

core::ProbeVerdict run_with(const ScenarioConfig& config, bool async) {
  Scenario scenario(config);
  LocalizationPipeline pipeline(scenario.pipeline_config());
  return async
             ? pipeline.run(static_cast<core::AsyncQueryTransport&>(scenario.transport()))
             : pipeline.run(static_cast<core::QueryTransport&>(scenario.transport()));
}

/// Render the whole corpus as one diffable document. One block per case,
/// delimited so a textual diff names the scenario that drifted.
std::string render_corpus(bool async) {
  std::ostringstream out;
  for (const Case& c : corpus()) {
    out << "=== " << c.name << " ===\n";
    out << signature(run_with(c.config, async)) << "\n";
  }
  return out.str();
}

std::string read_golden() {
  std::ifstream file(DNSLOCATE_GOLDEN_SIGNATURES);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(CorpusGolden, BlockingEngineMatchesRecordedSignatures) {
  std::string live = render_corpus(/*async=*/false);
  if (std::getenv("DNSLOCATE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream file(DNSLOCATE_GOLDEN_SIGNATURES);
    ASSERT_TRUE(file.good()) << "cannot write " << DNSLOCATE_GOLDEN_SIGNATURES;
    file << live;
    GTEST_SKIP() << "golden regenerated at " << DNSLOCATE_GOLDEN_SIGNATURES;
  }
  std::string golden = read_golden();
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << DNSLOCATE_GOLDEN_SIGNATURES
      << " — regenerate with DNSLOCATE_UPDATE_GOLDEN=1";
  EXPECT_EQ(live, golden)
      << "evidence signatures drifted from the recorded corpus; if the change "
         "is deliberate, regenerate with DNSLOCATE_UPDATE_GOLDEN=1";
}

TEST(CorpusGolden, AsyncEngineMatchesRecordedSignatures) {
  if (std::getenv("DNSLOCATE_UPDATE_GOLDEN") != nullptr)
    GTEST_SKIP() << "golden regenerated from the blocking engine";
  std::string golden = read_golden();
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << DNSLOCATE_GOLDEN_SIGNATURES
      << " — regenerate with DNSLOCATE_UPDATE_GOLDEN=1";
  EXPECT_EQ(render_corpus(/*async=*/true), golden)
      << "async engine signatures drifted from the recorded corpus";
}

}  // namespace
}  // namespace dnslocate
