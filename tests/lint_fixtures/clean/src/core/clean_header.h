// Fixture: a hygienic header — #pragma once, qualified names only.
#pragma once

#include <string>

namespace dnslocate::fixture {

inline std::string greet(const std::string& name) { return "hello " + name; }

}  // namespace dnslocate::fixture
