// Pathological-but-legal guard lifetimes: the scope tracker must judge all
// of these clean. Each shape here is a regression test for a way the
// tracker could over-approximate "a lock is held".
#include <unistd.h>

#include <mutex>
#include <utility>

namespace ok {

std::mutex mu;
int fd = -1;

// Early return under a guard: the guard dies with the scope either way.
bool early_return(bool flag) {
  std::lock_guard<std::mutex> lock(mu);
  if (flag) return true;
  return false;
}

// The lambda body runs later, on some other frame: the fsync inside it is
// not an fsync under `lock`, even though the guard is live at the point of
// the lambda expression.
auto deferred_sync() {
  std::lock_guard<std::mutex> lock(mu);
  auto task = [](int target) -> int {
    ::fsync(target);
    return 0;
  };
  return task;
}

// Unlock before blocking, relock after: legal use of unique_lock.
void unlock_then_write(const char* line, unsigned len) {
  std::unique_lock<std::mutex> lock(mu);
  lock.unlock();
  ::write(fd, line, len);
  lock.lock();
}

// A moved-from unique_lock no longer holds the mutex; the moved-to guard
// dies with the inner scope.
void handoff_then_sync() {
  std::unique_lock<std::mutex> lock(mu);
  {
    std::unique_lock<std::mutex> inner = std::move(lock);
  }
  ::fsync(fd);
}

// Nested scopes: the inner guard dies at its closing brace, so the fsync
// after the block runs lock-free.
void nested(bool flag) {
  {
    std::lock_guard<std::mutex> lock(mu);
    if (flag) return;
  }
  ::fsync(fd);
}

// defer_lock does not acquire; the write before lock() is lock-free.
void deferred_acquire(const char* line, unsigned len) {
  std::unique_lock<std::mutex> lock(mu, std::defer_lock);
  ::write(fd, line, len);
  lock.lock();
}

}  // namespace ok
