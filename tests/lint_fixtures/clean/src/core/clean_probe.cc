// Fixture: idiomatic dnslocate code the linter must NOT flag — seeded
// entropy, monotonic clocks, RAII file handles, and rule-pattern lookalikes
// hidden in comments, strings, and identifiers.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

namespace dnslocate::fixture {

// Commented-out violations stay invisible to the token scan:
//   std::random_device dev; rand(); poll(&pfd, 1, -1);

struct Closer {
  std::ofstream log;
  void finish() { log.close(); }  // member .close() is RAII, not a naked close()
};

std::string benign(std::uint64_t seed) {
  auto t0 = std::chrono::steady_clock::now();  // monotonic: allowed
  int random_seed = static_cast<int>(seed);    // ident contains "rand": allowed
  std::string note = "never call rand() or memcpy() on wire bytes";  // string literal
  std::FILE* f = std::fopen("/dev/null", "we");
  if (f) std::fclose(f);  // fclose is not close()
  auto elapsed = std::chrono::steady_clock::now() - t0;
  return note + std::to_string(random_seed) +
         std::to_string(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

}  // namespace dnslocate::fixture
