// Fixture: reasoned suppressions silence findings — same line and
// line-above forms both count.
#include <cstdlib>
#include <random>

namespace dnslocate::fixture {

int justified() {
  int a = rand();  // dnslint: allow(determinism): fixture exercises the same-line allow form
  // dnslint: allow(determinism): fixture exercises the line-above allow form
  std::mt19937 engine;
  return a + static_cast<int>(engine());
}

}  // namespace dnslocate::fixture
