// Clean fixture: src/dnswire/ is where is_acceptable_response is defined,
// so mentioning it here is not an R6 finding (the wire layer provides the
// predicate; the exchange kernel is the only consumer-side implementation
// of acceptance).
namespace dnslocate::dnswire {

struct Message {
  unsigned short id = 0;
};

bool is_acceptable_response(const Message& query, const Message& response) {
  return query.id == response.id;
}

}  // namespace dnslocate::dnswire
