// Clean fixture mirroring the real accept-loop seam: src/service/
// http_server.cc may own raw socket fds (R3 ownership exemption) and is
// exempt from R5, as long as every poll() carries a finite deadline.
struct pollfd_like {
  int fd;
};

int seam_loop(int listener, pollfd_like* fds, unsigned long n) {
  int conn = accept(listener, nullptr, nullptr);
  char buffer[64];
  long got = recv(conn, buffer, sizeof buffer, 0);
  poll(fds, n, 50);  // finite tick
  close(conn);
  return static_cast<int>(got);
}
