// Clean fixture for R5 http-blocking: handler-layer code that snapshots
// in-memory state, uses member calls that merely look like blocking reads,
// and carries one reasoned suppression (which must silence the rule).
#include <cstdio>
#include <string>
#include <vector>

std::string snapshot(Parser& parser, const std::vector<std::string>& lines) {
  parser.accept('x');            // member access: not a naked accept()
  std::string out = parser.read();  // member access: not a bare read()
  for (const std::string& line : lines) out += line;
  char buffer[8];
  // dnslint: allow(http-blocking): fixture-only; proves reasoned R5 suppressions are honoured
  std::fgets(buffer, sizeof buffer, stdin);
  out += buffer;
  return out;
}
