// Two-mutex inversion: one thread takes mu_a then mu_b, another takes mu_b
// then mu_a — the textbook deadlock R8 exists to catch, both against the
// declared order (mu_a before mu_b in this tree's lock_order.txt) and as a
// cycle among labels the order file never mentions.
#include <mutex>

namespace bad {

std::mutex mu_a;
std::mutex mu_b;

void thread_a() {
  std::lock_guard<std::mutex> a(mu_a);
  std::lock_guard<std::mutex> b(mu_b);  // matches the declared order
}

void thread_b() {
  std::lock_guard<std::mutex> b(mu_b);
  std::lock_guard<std::mutex> a(mu_a);  // contradicts the declared order
}

std::mutex mu_c;
std::mutex mu_d;

void first() {
  std::lock_guard<std::mutex> c(mu_c);
  std::lock_guard<std::mutex> d(mu_d);
}

void second() {
  std::lock_guard<std::mutex> d(mu_d);
  std::lock_guard<std::mutex> c(mu_c);  // closes the c->d->c cycle
}

}  // namespace bad
