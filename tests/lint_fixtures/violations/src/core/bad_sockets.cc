// Fixture: every raii-sockets (R3) pattern must fire (path is outside
// src/sockets/).
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dnslocate::fixture {

int leaky_probe() {
  int fd = socket(AF_INET, SOCK_DGRAM, 0);   // finding: naked socket()
  pollfd pfd{fd, POLLIN, 0};
  poll(&pfd, 1, -1);                          // findings: naked poll() + infinite timeout
  char buf[512];
  recvfrom(fd, buf, sizeof buf, 0, nullptr, nullptr);  // finding: naked recvfrom()
  ::close(fd);                                // finding: naked close()
  return fd;
}

}  // namespace dnslocate::fixture
