// Violation fixture for R6 (single-acceptance-seam): a transport growing
// its own copy of the accept/arbitrate logic instead of delegating to the
// exchange kernel. Every identifier below is a finding outside
// src/core/exchange.*.
#include <cstdint>
#include <vector>

namespace dnslocate::core {

struct Message {
  std::uint16_t id = 0;
};

// A local duplicate fingerprint — the kernel owns payload_fingerprint.
std::uint64_t bytes_hash(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) h = (h ^ data[i]) * 0x100000001b3ull;
  return h;
}

bool is_acceptable_response(const Message& query, const Message& response);
bool responses_conflict(const Message& a, const Message& b);
void rerandomize_query(Message& message);

bool accept_locally(const Message& query, const Message& response) {
  // Transaction-ID matching outside the kernel.
  if (!is_acceptable_response(query, response)) return false;
  return !responses_conflict(query, response);
}

void retry_locally(Message& message) { rerandomize_query(message); }

}  // namespace dnslocate::core
