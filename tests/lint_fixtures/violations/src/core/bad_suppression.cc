// Fixture: suppressions that do not follow the policy are findings
// themselves — a reason string is mandatory and the rule must exist.
#include <cstdlib>

namespace dnslocate::fixture {

int sloppy_allows() {
  int a = rand();  // dnslint: allow(determinism)
  // dnslint: allow(make-it-stop): rule does not exist
  int b = rand();
  return a + b;
}

}  // namespace dnslocate::fixture
