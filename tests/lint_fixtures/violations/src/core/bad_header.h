// Fixture: every header-hygiene (R4) pattern must fire — legacy include
// guard instead of #pragma once, plus a namespace-polluting directive.
#ifndef BAD_HEADER_H_
#define BAD_HEADER_H_

#include <string>

using namespace std;  // finding: using namespace in a header

namespace dnslocate::fixture {

inline string shout(const string& s) { return s + "!"; }

}  // namespace dnslocate::fixture

#endif  // BAD_HEADER_H_
