// Fixture: every determinism (R1) pattern must fire.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace dnslocate::fixture {

unsigned ambient_entropy() {
  std::random_device dev;                       // finding: random_device
  std::mt19937 unseeded;                        // finding: unseeded engine
  std::mt19937_64 braced{};                     // finding: unseeded engine
  srand(42);                                    // finding: srand()
  unsigned mix = static_cast<unsigned>(rand()); // finding: rand()
  auto wall = std::chrono::system_clock::now(); // finding: system_clock
  auto stamp = std::time(nullptr);              // finding: wall-clock time()
  return mix ^ dev() ^ static_cast<unsigned>(unseeded()) ^
         static_cast<unsigned>(braced()) ^
         static_cast<unsigned>(wall.time_since_epoch().count()) ^
         static_cast<unsigned>(stamp);
}

}  // namespace dnslocate::fixture
