// Raw mutex + unguarded sibling: clang's thread-safety analysis cannot see
// a raw std::mutex member at all, and nothing ties the counter to it.
#pragma once

#include <cstdint>
#include <mutex>

namespace bad {

class Sampler {
 public:
  void bump();

 private:
  std::mutex raw_;  // must be the netbase::Mutex capability wrapper
  std::uint64_t hits_ = 0;
};

class Tracker {
 public:
  void bump();

 private:
  mutable netbase::Mutex mutex_;
  std::uint64_t hits_ = 0;  // missing DNSLOCATE_GUARDED_BY(mutex_)
};

}  // namespace bad
