// Fixture named after the real accept-loop seam: the R3 ownership
// exemption applies here (naked accept() below is NOT a finding, and R5
// does not run), but the deadline half of raii-sockets still does — the
// infinite poll() must fire even inside the seam.
struct pollfd_like {
  int fd;
};

int seam_loop(int listener, pollfd_like* fds, unsigned long n) {
  int conn = accept(listener, nullptr, nullptr);  // seam-allowed ownership
  poll(fds, n, -1);                               // still a finding: no deadline
  return conn;
}
