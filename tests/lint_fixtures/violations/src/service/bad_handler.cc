// Violation fixture for R5 http-blocking: this file stands in for service
// handler code (src/service/ but NOT the accept-loop seam), which runs on
// the HTTP event thread and must never issue a blocking read.
#include <cstdio>
#include <iostream>
#include <string>

int handle_request(int fd) {
  char buffer[256];
  // Blocking socket read on the event thread: fires http-blocking AND
  // raii-sockets (naked fd call outside the owners).
  long got = recv(fd, buffer, sizeof buffer, 0);
  // Blocking stdio reads: http-blocking only.
  std::fgets(buffer, sizeof buffer, stdin);
  std::string line;
  std::getline(std::cin, line);
  return static_cast<int>(got);
}
