// Reconstruction of the PR 8 service bug: submit() journaled under the
// service-wide mutex, so the fsync (and the raw write before it) stalled
// every worker and the HTTP snapshot path behind a disk flush.
#include <unistd.h>

#include <mutex>

namespace bad {

std::mutex service_mutex;
int journal_fd = -1;

void submit(const char* line, unsigned len) {
  std::lock_guard<std::mutex> lock(service_mutex);
  ::write(journal_fd, line, len);
  ::fsync(journal_fd);
}

}  // namespace bad
