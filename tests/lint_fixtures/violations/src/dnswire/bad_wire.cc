// Fixture: every wire-bounds (R2) pattern must fire (path is src/dnswire/).
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace dnslocate::fixture {

std::string sloppy_parse(const std::vector<std::uint8_t>& wire) {
  std::uint16_t id = 0;
  std::memcpy(&id, wire.data(), 2);                          // finding: memcpy
  const char* raw = reinterpret_cast<const char*>(wire.data()); // finding: reinterpret_cast
  const std::uint8_t* past_header = wire.data() + 12;        // finding: .data() arithmetic
  return std::string(raw, 2) + std::to_string(id) + std::to_string(*past_header);
}

}  // namespace dnslocate::fixture
