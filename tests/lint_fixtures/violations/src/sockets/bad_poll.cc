// Fixture: the deadline half of R3 applies even inside the src/sockets/
// owners — an infinite poll() can hang a probe forever.
#include <poll.h>

namespace dnslocate::fixture {

int wait_forever(int fd) {
  pollfd pfd{fd, POLLIN, 0};
  return ::poll(&pfd, 1, -1);  // finding: poll() with infinite timeout
}

}  // namespace dnslocate::fixture
