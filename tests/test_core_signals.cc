// Replication and DNS-0x20 probing tests: the complementary interception
// signals beyond the paper's core pipeline.
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "core/dns0x20.h"
#include "core/replication.h"
#include "cpe/cpe_device.h"

namespace dnslocate::core {
namespace {

using resolvers::PublicResolverKind;

TEST(Replication, CleanPathHasSingleResponses) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  ReplicationProber prober;
  auto report = prober.run(scenario.transport());
  EXPECT_FALSE(report.any_replicated());
  for (const auto& [kind, obs] : report.per_resolver) {
    EXPECT_EQ(obs.responses, 1u) << to_string(kind);
    EXPECT_FALSE(obs.payloads_differ);
  }
}

TEST(Replication, ReplicatingMiddleboxProducesTwoResponses) {
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.replicate = true;
  atlas::Scenario scenario(config);
  ReplicationProber prober;
  auto report = prober.run(scenario.transport());
  EXPECT_TRUE(report.any_replicated());
  for (const auto& [kind, obs] : report.per_resolver) {
    EXPECT_EQ(obs.responses, 2u) << to_string(kind);
    // Interceptor's copy answers differently from the real resolver.
    EXPECT_TRUE(obs.payloads_differ) << to_string(kind);
  }
}

TEST(Replication, InterceptorResponseArrivesFirst) {
  // "the interceptor's response nearly always arrives first and is accepted
  // by the client" (§3.1) — in our topology the ISP resolver is closer.
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.replicate = true;
  atlas::Scenario scenario(config);
  ReplicationProber prober;
  auto report = prober.run(scenario.transport());
  const auto& cf = report.per_resolver.at(PublicResolverKind::cloudflare);
  // First (accepted) response is the interceptor's — a non-standard answer.
  EXPECT_NE(cf.first_display, "IAD");
}

TEST(Replication, PipelineStillFlagsReplicatedProbes) {
  // Replication and interception are indistinguishable for step 1 (§3.1):
  // the accepted (first) response is the interceptor's.
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.replicate = true;
  atlas::Scenario scenario(config);
  LocalizationPipeline pipeline(scenario.pipeline_config());
  auto verdict = pipeline.run(scenario.transport());
  EXPECT_TRUE(verdict.intercepted());
}

TEST(Dns0x20, EncoderIsDeterministicAndMixesCase) {
  simnet::Rng a(7), b(7);
  std::string one = Dns0x20Prober::encode_0x20("probe.dnslocate.example", a);
  std::string two = Dns0x20Prober::encode_0x20("probe.dnslocate.example", b);
  EXPECT_EQ(one, two);
  // Statistically certain to differ from the all-lowercase original.
  EXPECT_NE(one, "probe.dnslocate.example");
  // Case-insensitively it is still the same name.
  EXPECT_TRUE(dnswire::DnsName::parse(one)->equals_ignore_case(
      *dnswire::DnsName::parse("probe.dnslocate.example")));
  // Digits and dots untouched.
  std::string digits = Dns0x20Prober::encode_0x20("a1.b2", a);
  EXPECT_EQ(digits[1], '1');
  EXPECT_EQ(digits[2], '.');
}

TEST(Dns0x20, DnatInterceptorPreservesCase) {
  // A pure DNAT middlebox relays the client's bytes; the echo survives even
  // though the query is intercepted — 0x20 alone cannot see this class.
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  atlas::Scenario scenario(config);
  Dns0x20Prober prober;
  auto report = prober.run(scenario.transport());
  for (const auto& [kind, echo] : report.per_resolver)
    EXPECT_EQ(echo, CaseEchoResult::preserved) << to_string(kind);
}

TEST(Dns0x20, LowercasingProxyIsDetected) {
  // A CPE forwarder that re-encodes queries in lowercase loses the pattern.
  atlas::ScenarioConfig config;
  config.cpe.kind = atlas::CpeStyle::Kind::intercept_dnsmasq;
  atlas::Scenario scenario(config);
  // Rebuild the forwarder with the lowercasing quirk.
  auto& handles = scenario.cpe_handles();
  resolvers::ForwarderConfig forwarder_config = handles.forwarder->config();
  forwarder_config.lowercases_queries = true;
  auto quirky = std::make_shared<resolvers::DnsForwarderApp>(forwarder_config);
  quirky->attach(*handles.device);

  Dns0x20Prober prober;
  auto report = prober.run(scenario.transport());
  for (const auto& [kind, echo] : report.per_resolver)
    EXPECT_EQ(echo, CaseEchoResult::rewritten) << to_string(kind);
}

TEST(Dns0x20, CasePreservingProxyEscapes0x20ButNotVersionBind) {
  // The standard (case-preserving) intercepting forwarder: invisible to
  // 0x20, caught by the paper's version.bind comparison — the reason the
  // technique is built on version.bind.
  atlas::ScenarioConfig config;
  config.cpe.kind = atlas::CpeStyle::Kind::intercept_dnsmasq;
  atlas::Scenario scenario(config);

  Dns0x20Prober prober;
  auto echo_report = prober.run(scenario.transport());
  for (const auto& [kind, echo] : echo_report.per_resolver)
    EXPECT_EQ(echo, CaseEchoResult::preserved) << to_string(kind);

  LocalizationPipeline pipeline(scenario.pipeline_config());
  EXPECT_EQ(pipeline.run(scenario.transport()).location, InterceptorLocation::cpe);
}

}  // namespace
}  // namespace dnslocate::core
