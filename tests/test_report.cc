// Report layer tests: table/CSV rendering, bar charts, and the aggregators
// over hand-built measurement runs.
#include <gtest/gtest.h>

#include "report/aggregate.h"

namespace dnslocate::report {
namespace {

using atlas::MeasurementRun;
using atlas::ProbeRecord;
using core::InterceptorLocation;
using resolvers::PublicResolverKind;

TEST(TextTable, AlignsColumns) {
  TextTable table({"a", "long-header"});
  table.add_row({"x", "1"});
  table.add_row({"longer-cell", "2"});
  std::string out = table.render();
  // Every line has the same length.
  std::size_t first_line = out.find('\n');
  std::size_t expected = first_line;
  std::size_t start = 0;
  while (start < out.size()) {
    std::size_t end = out.find('\n', start);
    EXPECT_EQ(end - start, expected);
    start = end + 1;
  }
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, CsvEscaping) {
  TextTable table({"name", "value"});
  table.add_row({"plain", "1"});
  table.add_row({"with,comma", "quote\"inside"});
  std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_EQ(csv.find("plain,1"), std::string{"name,value\n"}.size());
}

TEST(TextTable, ShortRowsPadToHeaderWidth) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only-one"});
  EXPECT_NO_THROW(table.render());
}

TEST(BarChart, ScalesAndKeepsSmallSegmentsVisible) {
  BarChart chart({{'#', "big"}, {'x', "small"}});
  chart.add_bar(Bar{"row1", {{1000, '#'}, {1, 'x'}}});
  chart.add_bar(Bar{"r2", {{10, '#'}, {0, 'x'}}});
  std::string out = chart.render(40);
  // The 1-count segment still paints one glyph.
  EXPECT_NE(out.find('x'), std::string::npos);
  // Zero segments paint nothing, counts still printed.
  EXPECT_NE(out.find("(10/0)"), std::string::npos);
  EXPECT_NE(out.find("legend: #=big x=small"), std::string::npos);
}

/// Build a synthetic record.
ProbeRecord record(const std::string& org, const std::string& country,
                   InterceptorLocation measured, InterceptorLocation expected,
                   core::TransparencyClass transparency = core::TransparencyClass::transparent) {
  ProbeRecord r;
  r.org = atlas::OrgInfo{org, 1, country};
  r.verdict.location = measured;
  r.truth.expected = expected;
  if (measured != InterceptorLocation::not_intercepted) {
    core::TransparencyReport report;
    report.overall = transparency;
    r.verdict.transparency = report;
    // Mark all four resolvers intercepted so Table 4 sees them.
    for (auto kind : resolvers::all_public_resolvers()) {
      auto& summary = r.verdict.detection.per_resolver[static_cast<std::size_t>(kind)];
      summary.kind = kind;
      summary.tested_v4 = true;
      summary.intercepted_v4 = true;
    }
  } else {
    for (auto kind : resolvers::all_public_resolvers()) {
      auto& summary = r.verdict.detection.per_resolver[static_cast<std::size_t>(kind)];
      summary.kind = kind;
      summary.tested_v4 = true;
    }
  }
  return r;
}

MeasurementRun synthetic_run() {
  MeasurementRun run;
  run.records.push_back(record("OrgA", "US", InterceptorLocation::cpe,
                               InterceptorLocation::cpe));
  run.records.push_back(record("OrgA", "US", InterceptorLocation::isp,
                               InterceptorLocation::isp,
                               core::TransparencyClass::status_modified));
  run.records.push_back(record("OrgB", "DE", InterceptorLocation::unknown,
                               InterceptorLocation::isp, core::TransparencyClass::both));
  run.records.push_back(record("OrgB", "DE", InterceptorLocation::not_intercepted,
                               InterceptorLocation::not_intercepted));
  return run;
}

TEST(Aggregate, Table4CountsTestedAndIntercepted) {
  auto rows = table4_rows(synthetic_run());
  ASSERT_EQ(rows.size(), 5u);  // 4 resolvers + All Intercepted
  EXPECT_EQ(rows[0].total_v4, 4u);
  EXPECT_EQ(rows[0].intercepted_v4, 3u);
  EXPECT_EQ(rows[4].resolver, "All Intercepted");
  EXPECT_EQ(rows[4].intercepted_v4, 3u);
  EXPECT_EQ(rows[0].total_v6, 0u);
}

TEST(Aggregate, Figure3GroupsByOrgAndTransparency) {
  auto rows = figure3_rows(synthetic_run());
  ASSERT_EQ(rows.size(), 2u);
  // OrgA: 1 transparent + 1 modified; OrgB: 1 both.
  const Fig3Row* org_a = nullptr;
  for (const auto& row : rows)
    if (row.org == "OrgA") org_a = &row;
  ASSERT_NE(org_a, nullptr);
  EXPECT_EQ(org_a->transparent, 1u);
  EXPECT_EQ(org_a->status_modified, 1u);
  EXPECT_EQ(org_a->total(), 2u);
}

TEST(Aggregate, Figure4ByCountryAndOrg) {
  auto by_country = figure4_by_country(synthetic_run());
  ASSERT_EQ(by_country.size(), 2u);
  const Fig4Row* us = nullptr;
  for (const auto& row : by_country)
    if (row.label == "US") us = &row;
  ASSERT_NE(us, nullptr);
  EXPECT_EQ(us->cpe, 1u);
  EXPECT_EQ(us->isp, 1u);
  EXPECT_EQ(us->unknown, 0u);

  auto by_org = figure4_by_org(synthetic_run());
  EXPECT_EQ(by_org.size(), 2u);
}

TEST(Aggregate, TopNTruncates) {
  MeasurementRun run;
  for (int i = 0; i < 30; ++i)
    run.records.push_back(record("Org" + std::to_string(i), "US", InterceptorLocation::isp,
                                 InterceptorLocation::isp));
  EXPECT_EQ(figure4_by_org(run, 15).size(), 15u);
  EXPECT_EQ(figure3_rows(run, 15).size(), 15u);
}

TEST(Aggregate, ConfusionMatrixAndAccuracy) {
  auto matrix = accuracy_matrix(synthetic_run());
  EXPECT_EQ(matrix.total(), 4u);
  EXPECT_EQ(matrix.correct(), 3u);  // one unknown-vs-isp miss
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 0.75);
  auto rendered = render_confusion(matrix).render();
  EXPECT_NE(rendered.find("within ISP"), std::string::npos);
}

TEST(Aggregate, EmptyRunIsSafe) {
  MeasurementRun run;
  EXPECT_EQ(run.intercepted_count(), 0u);
  EXPECT_TRUE(figure3_rows(run).empty());
  EXPECT_TRUE(figure4_by_org(run).empty());
  EXPECT_TRUE(table5_rows(run).empty());
  EXPECT_DOUBLE_EQ(accuracy_matrix(run).accuracy(), 1.0);
  EXPECT_EQ(table4_rows(run)[0].total_v4, 0u);
}

TEST(Aggregate, PatternCensusBuckets) {
  MeasurementRun run;
  ProbeRecord two = record("O", "US", InterceptorLocation::isp, InterceptorLocation::isp);
  // Rewrite to exactly two intercepted resolvers.
  two.verdict.detection.per_resolver[0].intercepted_v4 = false;
  two.verdict.detection.per_resolver[1].intercepted_v4 = false;
  run.records.push_back(two);
  auto census = pattern_census(run, netbase::IpFamily::v4);
  EXPECT_EQ(census.other, 1u);
  EXPECT_EQ(census.all_four, 0u);
}

}  // namespace
}  // namespace dnslocate::report

namespace dnslocate::report {
namespace {

TEST(TextTable, MarkdownEscapesPipes) {
  TextTable table({"a", "b"});
  table.add_row({"x|y", "2"});
  std::string md = table.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("x\\|y"), std::string::npos);
}

}  // namespace
}  // namespace dnslocate::report

#include "report/summary.h"

namespace dnslocate::report {
namespace {

TEST(Summary, DescribesARealRun) {
  atlas::FleetConfig config;
  config.scale = 0.02;
  auto run = atlas::run_fleet(atlas::generate_fleet(config));
  std::string summary = run_summary(run);
  EXPECT_NE(summary.find("transparently intercepted"), std::string::npos);
  EXPECT_NE(summary.find("at the CPE"), std::string::npos);
  EXPECT_NE(summary.find("Comcast"), std::string::npos);
  EXPECT_NE(summary.find("misattributions"), std::string::npos);  // the 3 §6 FPs
}

TEST(Summary, EmptyRun) { EXPECT_EQ(run_summary({}), "No probes measured."); }

}  // namespace
}  // namespace dnslocate::report
