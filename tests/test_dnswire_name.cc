// Unit tests: DnsName parsing, validation, case handling.
#include <gtest/gtest.h>

#include "dnswire/name.h"

namespace dnslocate::dnswire {
namespace {

TEST(DnsName, ParsesOrdinaryNames) {
  auto name = DnsName::parse("www.example.com");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->label_count(), 3u);
  EXPECT_EQ(name->labels()[0], "www");
  EXPECT_EQ(name->to_string(), "www.example.com");
}

TEST(DnsName, TrailingDotIsAbsorbed) {
  EXPECT_EQ(DnsName::parse("example.com.")->to_string(), "example.com");
  EXPECT_EQ(*DnsName::parse("example.com."), *DnsName::parse("example.com"));
}

TEST(DnsName, RootForms) {
  auto root = DnsName::parse(".");
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->to_string(), ".");
  EXPECT_EQ(root->wire_length(), 1u);
  EXPECT_FALSE(DnsName::parse("").has_value());
}

TEST(DnsName, RejectsEmptyLabels) {
  EXPECT_FALSE(DnsName::parse("a..b").has_value());
  EXPECT_FALSE(DnsName::parse(".a").has_value());
  EXPECT_FALSE(DnsName::parse("..").has_value());
}

TEST(DnsName, EnforcesLabelLength) {
  std::string label63(63, 'a');
  std::string label64(64, 'a');
  EXPECT_TRUE(DnsName::parse(label63 + ".com").has_value());
  EXPECT_FALSE(DnsName::parse(label64 + ".com").has_value());
}

TEST(DnsName, EnforcesTotalLength) {
  // Four 63-octet labels: wire length 4*(1+63)+1 = 257 > 255.
  std::string label(63, 'x');
  std::string too_long = label + "." + label + "." + label + "." + label;
  EXPECT_FALSE(DnsName::parse(too_long).has_value());
  // Three labels + short tail fits: 3*64 + 1*61 + 1 byte root = 254+... compute
  std::string fits = label + "." + label + "." + label + "." + std::string(59, 'y');
  ASSERT_TRUE(DnsName::parse(fits).has_value());
  EXPECT_LE(DnsName::parse(fits)->wire_length(), kMaxNameLength);
}

TEST(DnsName, CaseInsensitiveEqualityPreservesCase) {
  auto lower = *DnsName::parse("version.bind");
  auto upper = *DnsName::parse("VERSION.BIND");
  EXPECT_TRUE(lower.equals_ignore_case(upper));
  EXPECT_NE(lower, upper);                     // byte-wise compare differs
  EXPECT_EQ(upper.to_string(), "VERSION.BIND");  // case preserved
  EXPECT_EQ(upper.to_lower(), lower);
}

TEST(DnsName, CaseHashMatchesCaseEquality) {
  DnsNameCaseHash hash;
  auto a = *DnsName::parse("ExAmPlE.CoM");
  auto b = *DnsName::parse("example.com");
  EXPECT_EQ(hash(a), hash(b));
  auto c = *DnsName::parse("example.org");
  EXPECT_NE(hash(a), hash(c));
}

TEST(DnsName, EndsWith) {
  auto name = *DnsName::parse("a.b.example.com");
  EXPECT_TRUE(name.ends_with(*DnsName::parse("example.com")));
  EXPECT_TRUE(name.ends_with(*DnsName::parse("EXAMPLE.com")));
  EXPECT_TRUE(name.ends_with(name));
  EXPECT_TRUE(name.ends_with(DnsName{}));  // root suffixes everything
  EXPECT_FALSE(name.ends_with(*DnsName::parse("b.example.org")));
  EXPECT_FALSE((*DnsName::parse("example.com")).ends_with(name));
  // Label-boundary check: "xexample.com" does not end with "example.com".
  EXPECT_FALSE((*DnsName::parse("xexample.com")).ends_with(*DnsName::parse("example.com")));
}

TEST(DnsName, Parent) {
  auto name = *DnsName::parse("a.b.c");
  EXPECT_EQ(name.parent().to_string(), "b.c");
  EXPECT_EQ(name.parent().parent().to_string(), "c");
  EXPECT_TRUE(name.parent().parent().parent().is_root());
  EXPECT_TRUE(DnsName{}.parent().is_root());
}

TEST(DnsName, WireLength) {
  EXPECT_EQ(DnsName::parse("example.com")->wire_length(), 13u);  // 7+1 + 3+1 + 1
  EXPECT_EQ(DnsName::parse("a")->wire_length(), 3u);
}

TEST(DnsName, FromLabelsValidation) {
  EXPECT_TRUE(DnsName::from_labels({"a", "b"}).has_value());
  EXPECT_FALSE(DnsName::from_labels({"a", ""}).has_value());
  EXPECT_FALSE(DnsName::from_labels({std::string(64, 'a')}).has_value());
  EXPECT_TRUE(DnsName::from_labels({}).has_value());  // root
}

}  // namespace
}  // namespace dnslocate::dnswire

#include "simnet/rng.h"

namespace dnslocate::dnswire {
namespace {

// Property: any valid random name survives to_string -> parse intact.
TEST(DnsName, RandomNamesRoundTripThroughPresentation) {
  simnet::Rng rng(777);
  const char alphabet[] = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::string> labels;
    std::size_t count = 1 + rng.uniform(5);
    for (std::size_t i = 0; i < count; ++i) {
      std::string label;
      std::size_t length = 1 + rng.uniform(20);
      for (std::size_t j = 0; j < length; ++j)
        label.push_back(alphabet[rng.uniform(sizeof alphabet - 1)]);
      labels.push_back(std::move(label));
    }
    auto built = DnsName::from_labels(labels);
    ASSERT_TRUE(built.has_value());
    auto reparsed = DnsName::parse(built->to_string());
    ASSERT_TRUE(reparsed.has_value()) << built->to_string();
    EXPECT_EQ(*reparsed, *built);
    EXPECT_EQ(reparsed->wire_length(), built->wire_length());
  }
}

}  // namespace
}  // namespace dnslocate::dnswire
