// Retry policy tests: backoff schedule, per-attempt query re-randomization
// (fresh transaction ID + fresh 0x20 casing), attempt accounting — and the
// §3.3 regression: retries must never convert injected loss into a false
// verdict; an unanswerable bogon probe stays "unknown".
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "core/retry.h"
#include "core/sim_transport.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"

namespace dnslocate::core {
namespace {

using dnswire::DnsName;
using dnswire::RecordType;

netbase::IpAddress ip(const char* text) { return *netbase::IpAddress::parse(text); }

TEST(RetryPolicy, BackoffIsGeometricAndCapped) {
  auto policy = RetryPolicy::standard(6);
  EXPECT_TRUE(policy.enabled());
  EXPECT_EQ(policy.backoff_before(1), std::chrono::milliseconds(0));
  EXPECT_EQ(policy.backoff_before(2), std::chrono::milliseconds(250));
  EXPECT_EQ(policy.backoff_before(3), std::chrono::milliseconds(500));
  EXPECT_EQ(policy.backoff_before(4), std::chrono::milliseconds(1000));
  EXPECT_EQ(policy.backoff_before(5), std::chrono::milliseconds(2000));
  EXPECT_EQ(policy.backoff_before(6), std::chrono::milliseconds(2000));  // capped

  RetryPolicy single;
  EXPECT_FALSE(single.enabled());
}

TEST(RetryPolicy, RerandomizeDrawsFreshIdAndCase) {
  auto query = dnswire::make_query(
      1111, *DnsName::parse("some.fairly.long.measurement.domain.example.com"),
      RecordType::A);
  simnet::Rng rng(7);
  RetryPolicy policy = RetryPolicy::standard();

  std::vector<std::uint16_t> ids = {query.id};
  std::vector<std::string> names = {query.questions[0].name.to_string()};
  for (int i = 0; i < 8; ++i) {
    rerandomize_query(query, policy, rng);
    ids.push_back(query.id);
    names.push_back(query.questions[0].name.to_string());
    // The name never changes *semantically*, only in case.
    EXPECT_TRUE(query.questions[0].name.equals_ignore_case(
        *DnsName::parse("some.fairly.long.measurement.domain.example.com")));
  }
  // IDs are 16-bit draws: nine of them colliding pairwise is astronomically
  // unlikely, and this RNG stream is fixed, so assert full distinctness.
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  // The 0x20 pattern must actually vary across attempts.
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  EXPECT_GT(names.size(), 1u);

  // With both knobs off, the query is left untouched.
  RetryPolicy frozen;
  frozen.fresh_id_per_attempt = false;
  frozen.rerandomize_0x20 = false;
  auto before_id = query.id;
  auto before_name = query.questions[0].name.to_string();
  rerandomize_query(query, frozen, rng);
  EXPECT_EQ(query.id, before_id);
  EXPECT_EQ(query.questions[0].name.to_string(), before_name);
}

/// DNS responder that stays silent for the first `drop_first` queries and
/// records what every attempt looked like on the wire.
struct FlakyDnsApp : simnet::UdpApp {
  int drop_first = 0;
  std::vector<std::uint16_t> seen_ids;
  std::vector<std::string> seen_qnames;

  void on_datagram(simnet::Simulator& sim, simnet::Device& self,
                   const simnet::UdpPacket& packet) override {
    auto query = dnswire::decode_message(packet.payload);
    ASSERT_TRUE(query.has_value());
    seen_ids.push_back(query->id);
    seen_qnames.push_back(query->questions[0].name.to_string());
    if (static_cast<int>(seen_ids.size()) <= drop_first) return;

    auto response = dnswire::make_response(*query);
    response.answers.push_back(
        dnswire::make_a(query->questions[0].name, netbase::Ipv4Address(192, 0, 2, 1)));
    simnet::UdpPacket reply;
    reply.src = packet.dst;
    reply.dst = packet.src;
    reply.sport = packet.dport;
    reply.dport = packet.sport;
    reply.payload = dnswire::encode_message(response);
    self.send_local(sim, reply);
  }
};

/// host --- server, with a flaky DNS responder on the server.
struct RetryWorld {
  simnet::Simulator sim{5};
  simnet::Device& host;
  simnet::Device& server;
  FlakyDnsApp app;
  SimTransport transport;

  RetryWorld() :
      host(sim.add_device<simnet::Device>("host")),
      server(sim.add_device<simnet::Device>("server")),
      transport(sim, host) {
    auto [h, s] = sim.connect(host, server);
    host.add_local_ip(ip("192.0.2.10"));
    host.set_default_route(h);
    server.add_local_ip(ip("8.8.8.8"));
    server.set_default_route(s);
    server.bind_udp(53, &app);
  }

  QueryResult query(const RetryPolicy& policy) {
    auto message = dnswire::make_query(
        4242, *DnsName::parse("probe.measurement.example.com"), RecordType::A);
    QueryOptions options;
    options.timeout = std::chrono::milliseconds(500);
    options.retry = policy;
    return transport.query({ip("8.8.8.8"), netbase::kDnsPort}, message, options);
  }
};

TEST(RetrySemantics, RetriesRecoverFromEarlyLoss) {
  RetryWorld world;
  world.app.drop_first = 2;
  auto result = world.query(RetryPolicy::standard(4));

  ASSERT_TRUE(result.answered());
  EXPECT_EQ(result.retry.attempts, 3u);
  EXPECT_EQ(result.retry.timeouts, 2u);
  EXPECT_EQ(result.retry.retries(), 2u);
  EXPECT_GE(result.retry.backoff_waited, std::chrono::milliseconds(250 + 500));

  // Every attempt carried a fresh transaction ID: a late answer to attempt
  // N can never satisfy attempt N+1.
  ASSERT_EQ(world.app.seen_ids.size(), 3u);
  EXPECT_NE(world.app.seen_ids[0], world.app.seen_ids[1]);
  EXPECT_NE(world.app.seen_ids[1], world.app.seen_ids[2]);
  EXPECT_NE(world.app.seen_ids[0], world.app.seen_ids[2]);
  // And a fresh 0x20 pattern (the three casings cannot all coincide).
  EXPECT_FALSE(world.app.seen_qnames[0] == world.app.seen_qnames[1] &&
               world.app.seen_qnames[1] == world.app.seen_qnames[2]);

  const auto& telemetry = world.transport.telemetry();
  EXPECT_EQ(telemetry.queries, 1u);
  EXPECT_EQ(telemetry.attempts, 3u);
  EXPECT_EQ(telemetry.retries, 2u);
  EXPECT_EQ(telemetry.answered, 1u);
}

TEST(RetrySemantics, ExhaustedBudgetStillReportsTimeout) {
  RetryWorld world;
  world.app.drop_first = 100;  // never answers
  auto result = world.query(RetryPolicy::standard(3));

  EXPECT_FALSE(result.answered());
  EXPECT_EQ(result.status, QueryResult::Status::timed_out);
  EXPECT_EQ(result.retry.attempts, 3u);
  EXPECT_EQ(result.retry.timeouts, 3u);
  EXPECT_EQ(world.app.seen_ids.size(), 3u);
  EXPECT_EQ(world.transport.telemetry().timeouts, 3u);
}

TEST(RetrySemantics, SingleShotPolicySendsExactlyOnce) {
  RetryWorld world;
  world.app.drop_first = 1;
  auto result = world.query(RetryPolicy{});  // the paper's default
  EXPECT_FALSE(result.answered());
  EXPECT_EQ(result.retry.attempts, 1u);
  EXPECT_EQ(world.app.seen_ids.size(), 1u);
}

// --- §3.3 regression: loss + retries must never manufacture a verdict ---

core::ProbeVerdict run_lossy_scenario(std::uint64_t seed, bool retries,
                                      bool isp_answers_bogons) {
  atlas::ScenarioConfig config;
  config.seed = seed;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.ignore_bogon_queries = !isp_answers_bogons;
  config.faults = simnet::FaultProfile::burst_loss(0.20, 4.0);
  config.fault_classes = {"access"};
  if (retries) config.retry = RetryPolicy::standard(4);

  atlas::Scenario scenario(config);
  EXPECT_EQ(scenario.ground_truth().expected,
            isp_answers_bogons ? InterceptorLocation::isp : InterceptorLocation::unknown);
  LocalizationPipeline pipeline(scenario.pipeline_config());
  return pipeline.run(scenario.transport());
}

TEST(RetrySemantics, BogonSilenceStaysUnknownUnderLossAcrossSeeds) {
  // An ISP interceptor that discards bogon queries: the bogon probe times
  // out no matter how often it is retried. With 20% burst loss on the
  // access link the verdict must still be "unknown" — never a false "isp"
  // (no bogon answer ever existed) and never a false "not intercepted"
  // (detection sees the interception).
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    auto verdict = run_lossy_scenario(seed, /*retries=*/true, /*isp_answers_bogons=*/false);
    EXPECT_EQ(verdict.location, InterceptorLocation::unknown) << "seed " << seed;
    EXPECT_GT(verdict.telemetry.retries, 0u) << "seed " << seed;
  }
}

TEST(RetrySemantics, LossNeverUpgradesOrClearsAnIspVerdict) {
  // When the interceptor does answer bogons, loss may at worst demote the
  // verdict to "unknown" (the bogon answer was lost every time) — it must
  // never flip to "not intercepted" or to a phantom CPE interceptor.
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    auto verdict = run_lossy_scenario(seed, /*retries=*/true, /*isp_answers_bogons=*/true);
    EXPECT_TRUE(verdict.location == InterceptorLocation::isp ||
                verdict.location == InterceptorLocation::unknown)
        << "seed " << seed << " gave " << static_cast<int>(verdict.location);
  }
}

TEST(RetrySemantics, LossyScenarioReplaysDeterministically) {
  auto first = run_lossy_scenario(33, true, true);
  auto second = run_lossy_scenario(33, true, true);
  EXPECT_EQ(first.location, second.location);
  EXPECT_EQ(first.telemetry.attempts, second.telemetry.attempts);
  EXPECT_EQ(first.telemetry.timeouts, second.telemetry.timeouts);
  EXPECT_EQ(first.telemetry.answered, second.telemetry.answered);
}

}  // namespace
}  // namespace dnslocate::core
