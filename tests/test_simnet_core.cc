// Simulator core tests: RNG determinism, event ordering, links, device
// datapath (routing, TTL, forwarding policy, bogon drops), and tracing.
#include <gtest/gtest.h>

#include "simnet/simulator.h"

namespace dnslocate::simnet {
namespace {

using netbase::IpAddress;
using netbase::Ipv4Address;
using netbase::Prefix;

TEST(Rng, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(7);
  const double weights[] = {0.0, 1.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2], 3 * counts[1], 600);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(1);
  Rng child = parent.fork();
  // The child stream must not equal the parent's continuation.
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(std::chrono::milliseconds(3), [&] { order.push_back(3); });
  sim.schedule(std::chrono::milliseconds(1), [&] { order.push_back(1); });
  sim.schedule(std::chrono::milliseconds(2), [&] { order.push_back(2); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), std::chrono::milliseconds(3));
}

TEST(Simulator, SimultaneousEventsAreFifo) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule(std::chrono::milliseconds(5), [&order, i] { order.push_back(i); });
  sim.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingAdvancesTime) {
  Simulator sim(1);
  SimTime inner_time{};
  sim.schedule(std::chrono::milliseconds(1), [&] {
    sim.schedule(std::chrono::milliseconds(1), [&] { inner_time = sim.now(); });
  });
  sim.run_until_idle();
  EXPECT_EQ(inner_time, std::chrono::milliseconds(2));
}

TEST(Simulator, MaxEventsBoundsRunaway) {
  Simulator sim(1);
  std::function<void()> loop = [&] { sim.schedule(std::chrono::milliseconds(1), loop); };
  loop();
  std::size_t processed = sim.run_until_idle(100);
  EXPECT_EQ(processed, 100u);
}

/// Minimal sink app recording deliveries.
struct SinkApp : UdpApp {
  std::vector<UdpPacket> received;
  void on_datagram(Simulator&, Device&, const UdpPacket& packet) override {
    received.push_back(packet);
  }
};

UdpPacket packet_to(const IpAddress& src, const IpAddress& dst, std::uint16_t dport = 53) {
  UdpPacket p;
  p.src = src;
  p.dst = dst;
  p.sport = 1234;
  p.dport = dport;
  p.payload = {1, 2, 3};
  return p;
}

struct TwoHosts {
  Simulator sim{1};
  Device& a;
  Device& b;
  PortId a_port, b_port;
  SinkApp sink;

  TwoHosts()
      : a(sim.add_device<Device>("a")), b(sim.add_device<Device>("b")) {
    auto [ap, bp] =
        sim.connect(a, b, {.latency = std::chrono::milliseconds(5), .fault_class = {}});
    a_port = ap;
    b_port = bp;
    a.add_local_ip(*netbase::IpAddress::parse("10.0.0.1"));
    b.add_local_ip(*netbase::IpAddress::parse("10.0.0.2"));
    a.set_default_route(a_port);
    b.set_default_route(b_port);
    b.bind_udp(53, &sink);
  }
};

TEST(Device, DeliversToBoundApp) {
  TwoHosts net;
  net.a.send_local(net.sim, packet_to(*netbase::IpAddress::parse("10.0.0.1"),
                                      *netbase::IpAddress::parse("10.0.0.2")));
  net.sim.run_until_idle();
  ASSERT_EQ(net.sink.received.size(), 1u);
  EXPECT_EQ(net.sim.now(), std::chrono::milliseconds(5));  // link latency applied
}

TEST(Device, DropsWhenPortUnbound) {
  TwoHosts net;
  net.a.send_local(net.sim, packet_to(*netbase::IpAddress::parse("10.0.0.1"),
                                      *netbase::IpAddress::parse("10.0.0.2"), 5353));
  TraceSink trace;
  net.sim.set_trace(&trace);
  net.sim.run_until_idle();
  EXPECT_TRUE(net.sink.received.empty());
  EXPECT_EQ(trace.count(TraceEvent::dropped_no_listener), 1u);
}

TEST(Device, HostsDoNotForward) {
  TwoHosts net;
  TraceSink trace;
  net.sim.set_trace(&trace);
  // b receives a packet addressed elsewhere; forwarding is off on hosts.
  net.a.send_local(net.sim, packet_to(*netbase::IpAddress::parse("10.0.0.1"),
                                      *netbase::IpAddress::parse("10.0.0.99")));
  net.sim.run_until_idle();
  EXPECT_TRUE(net.sink.received.empty());
  EXPECT_EQ(trace.count(TraceEvent::dropped_no_route), 1u);
}

TEST(Device, RouterForwardsAndDecrementsTtl) {
  Simulator sim(1);
  auto& a = sim.add_device<Device>("a");
  auto& r = sim.add_device<Device>("r");
  auto& b = sim.add_device<Device>("b");
  r.set_forwarding(true);
  auto [a_r, r_a] = sim.connect(a, r);
  auto [r_b, b_r] = sim.connect(r, b);
  (void)r_a;
  a.add_local_ip(*netbase::IpAddress::parse("10.0.0.1"));
  b.add_local_ip(*netbase::IpAddress::parse("10.0.1.1"));
  a.set_default_route(a_r);
  b.set_default_route(b_r);
  r.add_route(*Prefix::parse("10.0.1.0/24"), r_b);

  SinkApp sink;
  b.bind_udp(53, &sink);
  auto p = packet_to(*netbase::IpAddress::parse("10.0.0.1"),
                     *netbase::IpAddress::parse("10.0.1.1"));
  p.ttl = 7;
  a.send_local(sim, p);
  sim.run_until_idle();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].ttl, 6);  // one router hop
}

TEST(Device, TtlExpiryDropsPacket) {
  Simulator sim(1);
  auto& a = sim.add_device<Device>("a");
  auto& r = sim.add_device<Device>("r");
  auto& b = sim.add_device<Device>("b");
  r.set_forwarding(true);
  auto [a_r, r_a] = sim.connect(a, r);
  auto [r_b, b_r] = sim.connect(r, b);
  (void)r_a;
  a.add_local_ip(*netbase::IpAddress::parse("10.0.0.1"));
  b.add_local_ip(*netbase::IpAddress::parse("10.0.1.1"));
  a.set_default_route(a_r);
  b.set_default_route(b_r);
  r.set_default_route(r_b);

  SinkApp sink;
  b.bind_udp(53, &sink);
  TraceSink trace;
  sim.set_trace(&trace);
  auto p = packet_to(*netbase::IpAddress::parse("10.0.0.1"),
                     *netbase::IpAddress::parse("10.0.1.1"));
  p.ttl = 1;
  a.send_local(sim, p);
  sim.run_until_idle();
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(trace.count(TraceEvent::dropped_ttl), 1u);
}

TEST(Device, BogonDestinationsDieAtBorder) {
  Simulator sim(1);
  auto& a = sim.add_device<Device>("a");
  auto& border = sim.add_device<Device>("border");
  auto& b = sim.add_device<Device>("b");
  border.set_forwarding(true);
  border.set_drop_bogon_destinations(true);
  auto [a_p, border_a] = sim.connect(a, border);
  auto [border_b, b_p] = sim.connect(border, b);
  (void)border_a;
  (void)b_p;
  a.add_local_ip(*netbase::IpAddress::parse("10.0.0.1"));
  a.set_default_route(a_p);
  border.set_default_route(border_b);

  TraceSink trace;
  sim.set_trace(&trace);
  a.send_local(sim, packet_to(*netbase::IpAddress::parse("10.0.0.1"),
                              *netbase::IpAddress::parse("240.9.9.9")));
  sim.run_until_idle();
  EXPECT_EQ(trace.count(TraceEvent::dropped_no_route), 1u);
  // A routable destination passes the same border.
  a.send_local(sim, packet_to(*netbase::IpAddress::parse("10.0.0.1"),
                              *netbase::IpAddress::parse("8.8.8.8")));
  sim.run_until_idle();
  EXPECT_EQ(trace.count(TraceEvent::forwarded), 1u);
}

TEST(Device, LinkLossDropsDeterministically) {
  Simulator sim(77);
  auto& a = sim.add_device<Device>("a");
  auto& b = sim.add_device<Device>("b");
  auto [a_p, b_p] = sim.connect(a, b, {.latency = std::chrono::milliseconds(1),
                                       .loss_rate = 0.5,
                                       .fault_class = {}});
  (void)b_p;
  a.add_local_ip(*netbase::IpAddress::parse("10.0.0.1"));
  b.add_local_ip(*netbase::IpAddress::parse("10.0.0.2"));
  a.set_default_route(a_p);
  SinkApp sink;
  b.bind_udp(53, &sink);

  for (int i = 0; i < 200; ++i)
    a.send_local(sim, packet_to(*netbase::IpAddress::parse("10.0.0.1"),
                                *netbase::IpAddress::parse("10.0.0.2")));
  sim.run_until_idle();
  // ~50% delivery, deterministic for the seed.
  EXPECT_GT(sink.received.size(), 60u);
  EXPECT_LT(sink.received.size(), 140u);

  Simulator sim2(77);  // identical seed & schedule -> identical outcome
  auto& a2 = sim2.add_device<Device>("a");
  auto& b2 = sim2.add_device<Device>("b");
  auto [a2_p, b2_p] = sim2.connect(a2, b2, {.latency = std::chrono::milliseconds(1),
                                            .loss_rate = 0.5,
                                            .fault_class = {}});
  (void)b2_p;
  a2.add_local_ip(*netbase::IpAddress::parse("10.0.0.1"));
  b2.add_local_ip(*netbase::IpAddress::parse("10.0.0.2"));
  a2.set_default_route(a2_p);
  SinkApp sink2;
  b2.bind_udp(53, &sink2);
  for (int i = 0; i < 200; ++i)
    a2.send_local(sim2, packet_to(*netbase::IpAddress::parse("10.0.0.1"),
                                  *netbase::IpAddress::parse("10.0.0.2")));
  sim2.run_until_idle();
  EXPECT_EQ(sink.received.size(), sink2.received.size());
}

TEST(Device, HookCanDropPackets) {
  struct DropAll : PacketHook {
    HookVerdict prerouting(Simulator&, Device&, UdpPacket&, std::optional<PortId>) override {
      return HookVerdict::drop;
    }
  };
  TwoHosts net;
  net.b.add_hook(std::make_shared<DropAll>());
  net.a.send_local(net.sim, packet_to(*netbase::IpAddress::parse("10.0.0.1"),
                                      *netbase::IpAddress::parse("10.0.0.2")));
  net.sim.run_until_idle();
  EXPECT_TRUE(net.sink.received.empty());
}

TEST(Trace, RecordsRenderReadably) {
  TraceSink trace;
  UdpPacket p = packet_to(*netbase::IpAddress::parse("10.0.0.1"),
                          *netbase::IpAddress::parse("10.0.0.2"));
  trace.record(std::chrono::milliseconds(2), "dev", TraceEvent::dnat_rewritten, p, "detail");
  auto rendered = trace.render();
  EXPECT_NE(rendered.find("dev"), std::string::npos);
  EXPECT_NE(rendered.find("dnat_rewritten"), std::string::npos);
  EXPECT_NE(rendered.find("10.0.0.2:53"), std::string::npos);
  EXPECT_NE(rendered.find("detail"), std::string::npos);
}

}  // namespace
}  // namespace dnslocate::simnet
