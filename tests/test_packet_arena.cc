// Property tests for the packet-payload arena: blocks are reused after
// release, concurrently live blocks never alias, and an interleaved
// alloc/free sweep driven by a seeded generator produces a deterministic
// allocation layout — the pool can recycle memory but never hand the same
// bytes to two owners or let recycled content leak into a fresh buffer's
// observable state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "dnswire/encoder.h"
#include "netbase/arena.h"
#include "simnet/packet.h"

namespace dnslocate::netbase {
namespace {

/// splitmix64 — the test's own generator, independent of the arena's.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST(ByteArena, SizeClassesCoverDnsPayloads) {
  // 64B..4KB in powers of two; beyond that requests pass through.
  EXPECT_EQ(ByteArena::block_capacity(0), 64u);
  EXPECT_EQ(ByteArena::block_capacity(1), 64u);
  EXPECT_EQ(ByteArena::block_capacity(64), 64u);
  EXPECT_EQ(ByteArena::block_capacity(65), 128u);
  EXPECT_EQ(ByteArena::block_capacity(512), 512u);
  EXPECT_EQ(ByteArena::block_capacity(1232), 2048u);  // EDNS advertised size
  EXPECT_EQ(ByteArena::block_capacity(4096), 4096u);
  EXPECT_EQ(ByteArena::block_capacity(4097), 4097u);  // oversize: passthrough
  EXPECT_EQ(ByteArena::block_capacity(65536), 65536u);
}

TEST(ByteArena, ReusesBlockAfterRelease) {
  ByteArena arena;
  void* first = arena.acquire(100);
  arena.release(first, 100);
  // LIFO free list: the very next same-class acquire returns the same block.
  void* second = arena.acquire(80);  // same 128B class as 100
  EXPECT_EQ(second, first);
  EXPECT_EQ(arena.stats().fresh, 1u);
  EXPECT_EQ(arena.stats().reused, 1u);
  arena.release(second, 80);
}

TEST(ByteArena, DifferentClassesDoNotShareBlocks) {
  ByteArena arena;
  void* small = arena.acquire(32);
  arena.release(small, 32);
  void* large = arena.acquire(1024);
  EXPECT_NE(large, small);  // 64B-class block must not serve a 1KB request
  arena.release(large, 1024);
  EXPECT_EQ(arena.stats().fresh, 2u);
  EXPECT_EQ(arena.stats().reused, 0u);
}

TEST(ByteArena, LiveBlocksNeverAliasUnderInterleavedAllocFree) {
  ByteArena arena;
  std::uint64_t rng = 0x2021'0902;
  struct Live {
    void* block;
    std::size_t bytes;
  };
  std::vector<Live> live;
  std::set<const void*> addresses;

  for (int step = 0; step < 4000; ++step) {
    bool allocate = live.empty() || (mix(rng) % 100 < 60);
    if (allocate) {
      std::size_t bytes = 1 + mix(rng) % 5000;  // spans all classes + oversize
      void* block = arena.acquire(bytes);
      ASSERT_NE(block, nullptr);
      // The new block must not overlap ANY live block: check the address
      // range, not just the base pointer.
      auto* begin = static_cast<const std::uint8_t*>(block);
      std::size_t capacity = ByteArena::block_capacity(bytes);
      for (const Live& other : live) {
        auto* other_begin = static_cast<const std::uint8_t*>(other.block);
        std::size_t other_capacity = ByteArena::block_capacity(other.bytes);
        bool disjoint = begin + capacity <= other_begin || other_begin + other_capacity <= begin;
        ASSERT_TRUE(disjoint) << "step " << step << ": overlapping live blocks";
      }
      ASSERT_TRUE(addresses.insert(block).second);
      live.push_back({block, bytes});
    } else {
      std::size_t index = mix(rng) % live.size();
      arena.release(live[index].block, live[index].bytes);
      addresses.erase(live[index].block);
      live[index] = live.back();
      live.pop_back();
    }
  }
  for (const Live& entry : live) arena.release(entry.block, entry.bytes);
  // Every pooled block came back: releases match acquires, minus the
  // oversize passthroughs (which bypass the free lists entirely).
  EXPECT_EQ(arena.stats().released + arena.stats().oversize,
            arena.stats().fresh + arena.stats().reused);
}

TEST(ByteArena, WritesToOneBlockNeverBleedIntoAnother) {
  ByteArena arena;
  std::uint64_t rng = 77;
  std::vector<std::pair<void*, std::uint8_t>> live;  // block -> fill byte
  for (int step = 0; step < 600; ++step) {
    if (live.empty() || mix(rng) % 100 < 55) {
      auto fill = static_cast<std::uint8_t>(mix(rng) & 0xff);
      void* block = arena.acquire(256);
      std::memset(block, fill, 256);
      live.emplace_back(block, fill);
    } else {
      std::size_t index = mix(rng) % live.size();
      arena.release(live[index].first, 256);
      live[index] = live.back();
      live.pop_back();
    }
    // Every live block still holds exactly its own fill byte.
    for (const auto& [block, fill] : live) {
      const auto* bytes = static_cast<const std::uint8_t*>(block);
      for (std::size_t i = 0; i < 256; i += 37)
        ASSERT_EQ(bytes[i], fill) << "step " << step;
    }
  }
  for (const auto& entry : live) arena.release(entry.first, 256);
}

TEST(ByteArena, SeededSweepProducesDeterministicLayout) {
  // Two arenas driven by the same seeded schedule must make identical
  // fresh/reuse decisions at every step — the pool's recycling order is a
  // pure function of the request sequence, never of address values or
  // global state. (Addresses themselves differ run to run; the *layout* —
  // which step reuses which prior step's block — must not.)
  auto trace = [](std::uint64_t seed) {
    ByteArena arena(seed, /*poison=*/true);
    std::uint64_t rng = seed;
    std::map<const void*, int> born_at;   // live block -> step that produced it
    std::vector<std::pair<void*, std::size_t>> live;
    std::vector<int> layout;  // per alloc step: -1 fresh, else donor step
    for (int step = 0; step < 1500; ++step) {
      if (live.empty() || mix(rng) % 100 < 58) {
        std::size_t bytes = 1 + mix(rng) % 4096;
        void* block = arena.acquire(bytes);
        auto it = born_at.find(block);
        layout.push_back(it == born_at.end() ? -1 : it->second);
        born_at[block] = step;
        live.emplace_back(block, bytes);
      } else {
        std::size_t index = mix(rng) % live.size();
        arena.release(live[index].first, live[index].second);
        live[index] = live.back();
        live.pop_back();
      }
    }
    for (const auto& [block, bytes] : live) arena.release(block, bytes);
    return layout;
  };

  auto first = trace(0xfeed);
  auto second = trace(0xfeed);
  EXPECT_EQ(first, second);
  // Reuse actually happened — the property above is not vacuous.
  EXPECT_TRUE(std::any_of(first.begin(), first.end(), [](int donor) { return donor >= 0; }));
}

TEST(ByteArena, TrimReturnsParkedBlocksToTheHeap) {
  ByteArena arena;
  std::vector<void*> blocks;
  for (int i = 0; i < 16; ++i) blocks.push_back(arena.acquire(512));
  for (void* block : blocks) arena.release(block, 512);
  EXPECT_EQ(arena.stats().parked, 16u);
  EXPECT_GT(arena.stats().parked_bytes, 0u);
  arena.trim();
  EXPECT_EQ(arena.stats().parked, 0u);
  EXPECT_EQ(arena.stats().parked_bytes, 0u);
  // The free lists stay usable after a trim.
  void* fresh = arena.acquire(512);
  arena.release(fresh, 512);
}

TEST(ByteArena, OversizeRequestsPassThrough) {
  ByteArena arena;
  void* big = arena.acquire(100000);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xab, 100000);  // the full request size is writable
  arena.release(big, 100000);
  EXPECT_EQ(arena.stats().oversize, 1u);
  EXPECT_EQ(arena.stats().parked, 0u);  // oversize blocks are never parked
}

TEST(ArenaBuffer, RaiiOwnershipReleasesExactlyOnce) {
  ByteArena arena;
  {
    ArenaBuffer buffer(arena, 200);
    ASSERT_FALSE(buffer.empty());
    EXPECT_EQ(buffer.size(), 200u);
    std::memset(buffer.data(), 0x5a, buffer.size());

    // Move transfers ownership; the source must not double-release.
    ArenaBuffer stolen(std::move(buffer));
    EXPECT_TRUE(buffer.empty());  // NOLINT(bugprone-use-after-move): moved-from query
    EXPECT_EQ(stolen.size(), 200u);
    EXPECT_EQ(stolen.data()[199], 0x5a);

    ArenaBuffer assigned;
    assigned = std::move(stolen);
    EXPECT_EQ(assigned.size(), 200u);
    EXPECT_EQ(arena.stats().released, 0u);  // still exactly one live owner
  }
  EXPECT_EQ(arena.stats().fresh, 1u);
  EXPECT_EQ(arena.stats().released, 1u);  // destructor released exactly once
  // reset() on an empty buffer is a no-op, not a second release.
  ArenaBuffer empty;
  empty.reset();
  EXPECT_EQ(arena.stats().released, 1u);
}

TEST(ScopedArena, InstallsAndRestoresTheThreadArena) {
  ByteArena& base = this_thread_arena();
  ByteArena mine(42);
  {
    ScopedArena scoped(mine);
    EXPECT_EQ(&this_thread_arena(), &mine);
    // Nesting restores in LIFO order.
    ByteArena inner(43);
    {
      ScopedArena nested(inner);
      EXPECT_EQ(&this_thread_arena(), &inner);
    }
    EXPECT_EQ(&this_thread_arena(), &mine);
  }
  EXPECT_EQ(&this_thread_arena(), &base);
}

TEST(PoolAllocator, ByteBufferRoundTripsThroughTheInstalledArena) {
  ByteArena arena;
  ScopedArena scoped(arena);
  auto fresh_before = arena.stats().fresh;
  {
    ByteBuffer buffer;
    buffer.reserve(300);
    for (int i = 0; i < 300; ++i) buffer.push_back(static_cast<std::uint8_t>(i));
    EXPECT_GT(arena.stats().fresh, fresh_before);  // storage came from the arena
  }
  EXPECT_EQ(arena.stats().released, arena.stats().fresh + arena.stats().reused);
  // A second buffer of the same shape reuses the parked block.
  auto reused_before = arena.stats().reused;
  {
    ByteBuffer buffer;
    buffer.reserve(300);
  }
  EXPECT_GT(arena.stats().reused, reused_before);
}

TEST(PoolAllocator, PacketPayloadAndWireBufferAreArenaBacked) {
  // The two hot-path typedefs must actually route through the pool — this is
  // the integration the whole subsystem exists for.
  static_assert(std::is_same_v<simnet::Payload, ByteBuffer>);
  static_assert(std::is_same_v<dnswire::WireBuffer, ByteBuffer>);
  ByteArena arena;
  ScopedArena scoped(arena);
  dnswire::Message query;
  query.id = 0x1234;
  query.questions.push_back({*dnswire::DnsName::parse("example.com"),
                             dnswire::RecordType::A, dnswire::RecordClass::IN});
  auto total = [&] { return arena.stats().fresh + arena.stats().reused; };
  auto before = total();
  dnswire::WireBuffer wire = dnswire::encode_message(query);
  EXPECT_FALSE(wire.empty());
  EXPECT_GT(total(), before);  // the encode allocated from the arena
}

TEST(ByteArena, ReleasedPoisonIsDeterministicPerSeed) {
  // With poisoning on, a released block is stamped from the arena's seeded
  // stream; same seed + same schedule => same bytes. (The hot path runs with
  // poison off; tests use it to catch use-after-release.)
  auto stamp = [](std::uint64_t seed) {
    ByteArena arena(seed, /*poison=*/true);
    void* block = arena.acquire(64);
    std::memset(block, 0, 64);
    arena.release(block, 64);
    // The block is parked; reading it here is safe (the arena still owns it).
    std::vector<std::uint8_t> bytes(static_cast<std::uint8_t*>(block),
                                    static_cast<std::uint8_t*>(block) + 64);
    return bytes;
  };
  EXPECT_EQ(stamp(7), stamp(7));
  EXPECT_NE(stamp(7), stamp(8));
}

}  // namespace
}  // namespace dnslocate::netbase
