// DnsServerApp unit tests: delivery, response sourcing, processing delay,
// malformed handling, truncation and DoT counters.
#include <gtest/gtest.h>

#include "dnswire/debug_queries.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "resolvers/resolver_behavior.h"
#include "resolvers/server_app.h"
#include "simnet/simulator.h"

namespace dnslocate::resolvers {
namespace {

netbase::IpAddress ip(const char* text) { return *netbase::IpAddress::parse(text); }
dnswire::DnsName name(const char* text) { return *dnswire::DnsName::parse(text); }

struct SinkApp : simnet::UdpApp {
  std::vector<simnet::UdpPacket> received;
  std::vector<simnet::SimTime> at;
  void on_datagram(simnet::Simulator& sim, simnet::Device&,
                   const simnet::UdpPacket& packet) override {
    received.push_back(packet);
    at.push_back(sim.now());
  }
};

struct ServerWorld {
  simnet::Simulator sim{1};
  simnet::Device& client;
  simnet::Device& server;
  std::shared_ptr<DnsServerApp> app;
  SinkApp client_app;

  ServerWorld()
      : client(sim.add_device<simnet::Device>("client")),
        server(sim.add_device<simnet::Device>("server")) {
    auto [c_up, s_down] = sim.connect(
        client, server, {.latency = std::chrono::milliseconds(1), .fault_class = {}});
    client.add_local_ip(ip("10.0.0.1"));
    client.set_default_route(c_up);
    server.add_local_ip(ip("10.0.0.53"));
    server.add_local_ip(ip("10.0.0.54"));  // second service address
    server.set_default_route(s_down);

    ResolverConfig config;
    config.software = unbound("1.17.0");
    config.egress_v4 = ip("10.0.0.53");
    app = std::make_shared<DnsServerApp>(std::make_shared<ResolverBehavior>(config));
    server.bind_udp(53, app.get());
    client.bind_udp(4000, &client_app);
  }

  void send(const simnet::Payload& payload, const char* dst = "10.0.0.53",
            simnet::Channel channel = simnet::Channel::udp,
            std::optional<netbase::IpAddress> expected_peer = std::nullopt) {
    simnet::UdpPacket packet;
    packet.src = ip("10.0.0.1");
    packet.dst = ip(dst);
    packet.sport = 4000;
    packet.dport = 53;
    packet.channel = channel;
    packet.tls_expected_peer = expected_peer;
    packet.payload = payload;
    client.send_local(sim, packet);
    sim.run_until_idle();
  }
};

TEST(DnsServerApp, AnswersFromTheAddressedIp) {
  ServerWorld world;
  auto query = dnswire::make_query(9, name("example.com"), dnswire::RecordType::A);
  world.send(dnswire::encode_message(query), "10.0.0.54");
  ASSERT_EQ(world.client_app.received.size(), 1u);
  EXPECT_EQ(world.client_app.received[0].src, ip("10.0.0.54"));
  EXPECT_EQ(world.client_app.received[0].sport, 53);
  EXPECT_EQ(world.app->queries_seen(), 1u);
  EXPECT_EQ(world.app->responses_sent(), 1u);
}

TEST(DnsServerApp, ProcessingDelayIsApplied) {
  ServerWorld world;
  world.app->set_processing_delay(std::chrono::milliseconds(5));
  auto query = dnswire::make_query(1, name("example.com"), dnswire::RecordType::A);
  world.send(dnswire::encode_message(query));
  ASSERT_EQ(world.client_app.at.size(), 1u);
  // 1ms there + 5ms processing + 1ms back.
  EXPECT_EQ(world.client_app.at[0], std::chrono::milliseconds(7));
}

TEST(DnsServerApp, MalformedAndResponsePayloadsAreDropped) {
  ServerWorld world;
  world.send({0x01, 0x02});  // garbage
  auto response = dnswire::make_response(
      dnswire::make_query(1, name("example.com"), dnswire::RecordType::A));
  world.send(dnswire::encode_message(response));  // a response, not a query
  EXPECT_TRUE(world.client_app.received.empty());
  EXPECT_EQ(world.app->malformed_dropped(), 2u);
  EXPECT_EQ(world.app->responses_sent(), 0u);
}

TEST(DnsServerApp, TruncatesOversizeUdpAnswers) {
  ServerWorld world;
  // Put a huge TXT in the zone via a custom responder answering 900 bytes.
  struct BigTxt : DnsResponder {
    std::optional<dnswire::Message> respond(const dnswire::Message& query,
                                            const QueryContext&) override {
      return dnswire::make_txt_response(query, std::string(900, 'x'));
    }
  };
  auto big = std::make_shared<DnsServerApp>(std::make_shared<BigTxt>());
  world.server.bind_udp(53, big.get());

  auto query = dnswire::make_query(1, name("big.example"), dnswire::RecordType::TXT);
  world.send(dnswire::encode_message(query));
  ASSERT_EQ(world.client_app.received.size(), 1u);
  EXPECT_LE(world.client_app.received[0].payload.size(), 512u);
  auto decoded = dnswire::decode_message(world.client_app.received[0].payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->flags.tc);
  EXPECT_TRUE(decoded->answers.empty());
  EXPECT_EQ(big->truncated(), 1u);

  // With EDNS advertising 4096, the same answer fits.
  query.additionals.push_back(dnswire::ResourceRecord{
      dnswire::DnsName{}, dnswire::RecordType::OPT, dnswire::RecordClass::IN, 0,
      dnswire::OptRecord{4096, {}}});
  world.send(dnswire::encode_message(query));
  ASSERT_EQ(world.client_app.received.size(), 2u);
  auto full = dnswire::decode_message(world.client_app.received[1].payload);
  EXPECT_FALSE(full->flags.tc);
  EXPECT_EQ(full->first_txt()->size(), 900u);
}

TEST(DnsServerApp, StrictDotRejectionIsCounted) {
  ServerWorld world;
  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  // Client "dialled" some other server; this one cannot present that cert.
  world.send(dnswire::encode_message(query), "10.0.0.53", simnet::Channel::dot_strict,
             ip("1.1.1.1"));
  EXPECT_TRUE(world.client_app.received.empty());
  EXPECT_EQ(world.app->tls_rejected(), 1u);
  // Correct identity passes.
  world.send(dnswire::encode_message(query), "10.0.0.53", simnet::Channel::dot_strict,
             ip("10.0.0.53"));
  EXPECT_EQ(world.client_app.received.size(), 1u);
}

TEST(DnsServerApp, ReplyKeepsTheChannel) {
  ServerWorld world;
  auto query = dnswire::make_query(2, name("example.com"), dnswire::RecordType::A);
  world.send(dnswire::encode_message(query), "10.0.0.53",
             simnet::Channel::dot_opportunistic);
  ASSERT_EQ(world.client_app.received.size(), 1u);
  EXPECT_EQ(world.client_app.received[0].channel, simnet::Channel::dot_opportunistic);
}

TEST(DnsServerApp, DotSkipsTruncation) {
  struct BigTxt : DnsResponder {
    std::optional<dnswire::Message> respond(const dnswire::Message& query,
                                            const QueryContext&) override {
      return dnswire::make_txt_response(query, std::string(900, 'x'));
    }
  };
  ServerWorld world;
  auto big = std::make_shared<DnsServerApp>(std::make_shared<BigTxt>());
  world.server.bind_udp(53, big.get());
  auto query = dnswire::make_query(1, name("big.example"), dnswire::RecordType::TXT);
  world.send(dnswire::encode_message(query), "10.0.0.53",
             simnet::Channel::dot_opportunistic);
  ASSERT_EQ(world.client_app.received.size(), 1u);
  auto decoded = dnswire::decode_message(world.client_app.received[0].payload);
  EXPECT_FALSE(decoded->flags.tc);  // stream transport, no 512-byte limit
  EXPECT_EQ(big->truncated(), 0u);
}

}  // namespace
}  // namespace dnslocate::resolvers
