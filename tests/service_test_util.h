// Shared helpers for the measurement-service suites: a tiny blocking HTTP
// client (tests may block; the daemon may not), chunked-response decoding,
// and scratch-directory plumbing. Test-only — nothing here ships in a
// library, so the service's non-blocking rules do not apply.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace dnslocate::testutil {

struct HttpReply {
  int status = 0;
  std::map<std::string, std::string> headers;  // keys lower-cased
  std::string body;                            // chunked bodies already decoded
  bool ok = false;                             // transport + parse succeeded
};

inline std::string lower(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

/// Decode a chunked transfer-encoding body; returns false on framing errors.
inline bool decode_chunked(const std::string& wire, std::string* out) {
  std::size_t pos = 0;
  while (pos < wire.size()) {
    std::size_t line_end = wire.find("\r\n", pos);
    if (line_end == std::string::npos) return false;
    unsigned long size = std::strtoul(wire.substr(pos, line_end - pos).c_str(), nullptr, 16);
    pos = line_end + 2;
    if (size == 0) return true;  // final chunk
    if (pos + size > wire.size()) return false;
    out->append(wire, pos, size);
    pos += size + 2;  // skip chunk CRLF
  }
  return false;
}

/// One blocking HTTP/1.1 exchange against 127.0.0.1:port. Reads to EOF (the
/// server always answers Connection: close) and decodes chunked bodies.
inline HttpReply http_request(std::uint16_t port, const std::string& method,
                              const std::string& target, const std::string& body = "") {
  HttpReply reply;
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    close(fd);
    return reply;
  }
  std::string request = method + " " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  if (!body.empty())
    request += "Content-Type: application/json\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n" + body;
  const char* data = request.data();
  std::size_t remaining = request.size();
  while (remaining > 0) {
    ssize_t sent = send(fd, data, remaining, 0);
    if (sent <= 0) {
      close(fd);
      return reply;
    }
    data += sent;
    remaining -= static_cast<std::size_t>(sent);
  }
  std::string wire;
  char buffer[16 * 1024];
  for (;;) {
    ssize_t got = recv(fd, buffer, sizeof buffer, 0);
    if (got > 0) {
      wire.append(buffer, static_cast<std::size_t>(got));
    } else if (got == 0) {
      break;
    } else if (errno != EINTR) {
      break;
    }
  }
  close(fd);

  std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos) return reply;
  std::istringstream head(wire.substr(0, head_end));
  std::string line;
  if (!std::getline(head, line)) return reply;
  if (line.size() < 12 || line.compare(0, 5, "HTTP/") != 0) return reply;
  reply.status = std::atoi(line.substr(9, 3).c_str());
  while (std::getline(head, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) line.pop_back();
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(value.begin());
    reply.headers[lower(line.substr(0, colon))] = value;
  }
  std::string raw_body = wire.substr(head_end + 4);
  if (reply.headers.count("transfer-encoding") != 0) {
    if (!decode_chunked(raw_body, &reply.body)) return reply;
  } else {
    reply.body = std::move(raw_body);
  }
  reply.ok = true;
  return reply;
}

/// Fresh scratch directory under TMPDIR.
inline std::string make_scratch_dir(const char* tag) {
  std::string pattern = "/tmp/dnslocate-";
  pattern += tag;
  pattern += "-XXXXXX";
  std::vector<char> buffer(pattern.begin(), pattern.end());
  buffer.push_back('\0');
  const char* made = mkdtemp(buffer.data());
  return made != nullptr ? made : "/tmp";
}

/// Wait for a daemon's --port-file to appear and carry a port.
inline std::uint16_t wait_for_port_file(const std::string& path,
                                        std::chrono::seconds timeout = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream file(path);
    int port = 0;
    if (file >> port && port > 0) return static_cast<std::uint16_t>(port);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

}  // namespace dnslocate::testutil
