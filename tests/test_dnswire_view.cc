// Zero-copy view vs owning decoder: over every corpus input the two must
// agree exactly — decode_message succeeds iff decode_view succeeds AND full
// materialization (to_message) succeeds, and when both succeed the
// materialized message is field-for-field identical. The split matters: the
// view validates structure only (bounds, pointer discipline, name length)
// and defers typed RDATA strictness to to_record(), so a structurally sound
// message with a malformed A rdlength passes decode_view but fails
// to_message — exactly like decode_message fails it.
//
// The corpus is fuzz/corpus/dnswire/*.bin (the curated seeds the fuzzer
// mutates) plus a seeded sweep of encoder-produced messages, compressed and
// not, with trailing padding — several hundred inputs per run, all
// deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "dnswire/message.h"
#include "dnswire/view.h"

namespace dnslocate::dnswire {
namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  const char* dir = DNSLOCATE_WIRE_CORPUS;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec))
    if (entry.path().extension() == ".bin") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

/// The core equivalence oracle, applied to one wire buffer.
void expect_view_agrees(std::span<const std::uint8_t> wire, const std::string& label,
                        DecodeOptions options = {}) {
  auto owned = decode_message(wire, nullptr, options);
  auto view = decode_view(wire, nullptr, options);

  if (owned.has_value()) {
    // Owning decoder accepted: the view must accept, and materialize to the
    // exact same message.
    ASSERT_TRUE(view.has_value()) << label;
    auto materialized = view->to_message();
    ASSERT_TRUE(materialized.has_value()) << label;
    EXPECT_EQ(*materialized, *owned) << label;

    // Field-for-field spot checks straight off the view, no materialization.
    EXPECT_EQ(view->id(), owned->id) << label;
    EXPECT_EQ(view->flags(), owned->flags) << label;
    EXPECT_EQ(view->is_response(), owned->is_response()) << label;
    ASSERT_EQ(view->question_count(), owned->questions.size()) << label;
    ASSERT_EQ(view->answer_count(), owned->answers.size()) << label;
    ASSERT_EQ(view->authority_count(), owned->authorities.size()) << label;
    ASSERT_EQ(view->additional_count(), owned->additionals.size()) << label;
    for (std::size_t i = 0; i < owned->questions.size(); ++i) {
      const QuestionView& q = view->question(i);
      EXPECT_EQ(q.type(), owned->questions[i].type) << label;
      EXPECT_EQ(q.klass(), owned->questions[i].klass) << label;
      auto name = q.name();
      ASSERT_TRUE(name.has_value()) << label;
      EXPECT_EQ(*name, owned->questions[i].name) << label;
      EXPECT_TRUE(q.name_equals(owned->questions[i].name)) << label;
      auto question = q.to_question();
      ASSERT_TRUE(question.has_value()) << label;
      EXPECT_EQ(*question, owned->questions[i]) << label;
    }
    auto check_section = [&](std::size_t count, auto&& get_view, const auto& records) {
      for (std::size_t i = 0; i < count; ++i) {
        const RecordView& r = get_view(i);
        EXPECT_EQ(r.type(), records[i].type) << label;
        EXPECT_EQ(r.ttl(), records[i].ttl) << label;
        auto record = r.to_record();
        ASSERT_TRUE(record.has_value()) << label;
        EXPECT_EQ(*record, records[i]) << label;
      }
    };
    check_section(view->answer_count(), [&](std::size_t i) -> const RecordView& {
      return view->answer(i);
    }, owned->answers);
    check_section(view->authority_count(), [&](std::size_t i) -> const RecordView& {
      return view->authority(i);
    }, owned->authorities);
    check_section(view->additional_count(), [&](std::size_t i) -> const RecordView& {
      return view->additional(i);
    }, owned->additionals);
  } else {
    // Owning decoder rejected: the view must reject structurally, or accept
    // structurally and then fail typed materialization — never produce a
    // message the full decoder would not.
    if (view.has_value()) {
      auto materialized = view->to_message();
      EXPECT_FALSE(materialized.has_value())
          << label << ": view materialized a message decode_message rejects";
    }
  }
}

TEST(DnswireView, AgreesWithOwningDecoderOverFuzzCorpus) {
  auto files = corpus_files();
  ASSERT_FALSE(files.empty()) << "no corpus at " DNSLOCATE_WIRE_CORPUS;
  for (const auto& path : files) {
    auto bytes = read_file(path);
    expect_view_agrees(bytes, path.filename().string());
    DecodeOptions strict;
    strict.reject_trailing_bytes = true;
    expect_view_agrees(bytes, path.filename().string() + " (strict)", strict);
  }
}

TEST(DnswireView, AgreesWithOwningDecoderOverEncodedSweep) {
  // Deterministic message generator: shapes the encoder can produce, both
  // compressed and uncompressed, with and without trailing padding.
  std::uint64_t state = 0x1035;
  auto next = [&state] {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  const char* names[] = {"example.com", "a.b.c.d.example.org", "whoami.akamai.net",
                         "EXAMPLE.COM", "x", "."};
  for (int round = 0; round < 200; ++round) {
    Message message;
    message.id = static_cast<std::uint16_t>(next());
    message.flags.qr = (next() & 1) != 0;
    message.flags.ra = (next() & 1) != 0;
    message.flags.rcode = (next() % 8 == 0) ? Rcode::NXDOMAIN : Rcode::NOERROR;
    auto name = *DnsName::parse(names[next() % 6]);
    message.questions.push_back(
        {name, (next() & 1) != 0 ? RecordType::A : RecordType::TXT, RecordClass::IN});
    std::size_t answers = next() % 4;
    for (std::size_t i = 0; i < answers; ++i) {
      auto ttl = static_cast<std::uint32_t>(next() % 3600);
      if (next() & 1) {
        message.answers.push_back(make_a(
            name, netbase::Ipv4Address(static_cast<std::uint8_t>(next()), 0, 0, 1), ttl));
      } else {
        message.answers.push_back(make_txt(name, "abc", RecordClass::IN, ttl));
      }
    }

    EncodeOptions encode_options;
    encode_options.compress_names = (next() & 1) != 0;
    WireBuffer wire = encode_message(message, encode_options);
    expect_view_agrees(wire, "sweep round " + std::to_string(round));

    // Trailing padding: lenient mode must surface it via trailing_bytes()
    // and still agree; strict mode must reject in both decoders.
    WireBuffer padded = wire;
    std::size_t pad = 1 + next() % 9;
    for (std::size_t i = 0; i < pad; ++i)
      padded.push_back(static_cast<std::uint8_t>(next()));
    expect_view_agrees(padded, "sweep round " + std::to_string(round) + " (padded)");
    auto view = decode_view(padded);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->trailing_bytes(), pad);
    DecodeOptions strict;
    strict.reject_trailing_bytes = true;
    expect_view_agrees(padded, "sweep round " + std::to_string(round) + " (padded, strict)",
                       strict);
    EXPECT_FALSE(decode_view(padded, nullptr, strict).has_value());
  }
}

TEST(DnswireView, PrefilterFieldsWithoutAllocation) {
  // The demux prefilter path: id + QR + first question, straight off the
  // buffer. Compressed names resolve without materializing.
  Message query = make_query(0xbeef, *DnsName::parse("Probe.Example.COM"), RecordType::A);
  Message response = make_txt_response(query, "hello");
  response.flags.qr = true;
  WireBuffer wire = encode_message(response, {.compress_names = true});

  auto view = decode_view(wire);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->id(), 0xbeef);
  EXPECT_TRUE(view->is_response());
  const QuestionView* question = view->first_question();
  ASSERT_NE(question, nullptr);
  // Case-insensitive match without allocation, against any case variant.
  EXPECT_TRUE(question->name_equals(*DnsName::parse("probe.example.com")));
  EXPECT_TRUE(question->name_equals(*DnsName::parse("PROBE.EXAMPLE.COM")));
  EXPECT_FALSE(question->name_equals(*DnsName::parse("probe.example.org")));
  EXPECT_FALSE(question->name_equals(*DnsName::parse("example.com")));
}

TEST(DnswireView, RdataSpanPointsIntoTheWireBuffer) {
  Message message = make_query(7, *DnsName::parse("example.com"), RecordType::A);
  message.flags.qr = true;
  message.answers.push_back(
      make_a(*DnsName::parse("example.com"), netbase::Ipv4Address(192, 0, 2, 1), 60));
  WireBuffer wire = encode_message(message);

  auto view = decode_view(wire);
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->answer_count(), 1u);
  auto rdata = view->answer(0).rdata();
  ASSERT_EQ(rdata.size(), 4u);
  EXPECT_EQ(rdata[0], 192);
  EXPECT_EQ(rdata[3], 1);
  // Zero-copy: the span aliases the wire bytes themselves.
  EXPECT_GE(rdata.data(), wire.data());
  EXPECT_LE(rdata.data() + rdata.size(), wire.data() + wire.size());
}

TEST(DnswireView, MaterializationOutlivesTheBuffer) {
  // The sanctioned pattern for keeping data past the buffer's lifetime:
  // materialize with to_message() while the buffer is alive, then drop the
  // buffer. The owning Message must be self-contained (asan guards this
  // test: any borrow surviving into `owned` would read freed memory).
  Message original = make_query(21, *DnsName::parse("keep.example.com"), RecordType::TXT);
  std::optional<Message> owned;
  {
    WireBuffer wire = encode_message(original, {.compress_names = true});
    auto view = decode_view(wire);
    ASSERT_TRUE(view.has_value());
    owned = view->to_message();
    ASSERT_TRUE(owned.has_value());
  }  // wire freed; `owned` must not borrow from it
  EXPECT_EQ(*owned, original);
  EXPECT_EQ(owned->question()->name.to_string(), "keep.example.com");
}

TEST(DnswireView, StructurallyValidButTypedInvalidSplits) {
  // An A record with RDLENGTH 3 — structurally sound (the envelope parses,
  // the RDATA fits the buffer) but typed materialization must fail, exactly
  // like decode_message. The encoder cannot produce this shape, so the wire
  // is hand-assembled: header, one question, one answer with a compression
  // pointer back to the question name.
  const std::vector<std::uint8_t> wire = {
      0x00, 0x09,              // id
      0x80, 0x00,              // flags: QR
      0x00, 0x01,              // qdcount
      0x00, 0x01,              // ancount
      0x00, 0x00, 0x00, 0x00,  // nscount, arcount
      // question: example.com A IN
      7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
      0x00, 0x01, 0x00, 0x01,
      // answer: pointer to offset 12, type A, class IN, ttl 0, RDLENGTH 3
      0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03,
      192, 0, 2,  // 3 RDATA bytes: malformed for A
  };

  EXPECT_FALSE(decode_message(wire).has_value());
  auto view = decode_view(wire);
  ASSERT_TRUE(view.has_value()) << "structure is sound; only the typed check fails";
  ASSERT_EQ(view->answer_count(), 1u);
  EXPECT_EQ(view->answer(0).rdata().size(), 3u);
  DecodeError error;
  EXPECT_FALSE(view->answer(0).to_record(&error).has_value());
  EXPECT_FALSE(view->to_message().has_value());
}

}  // namespace
}  // namespace dnslocate::dnswire
