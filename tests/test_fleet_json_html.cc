// Custom fleets from JSON plans, the plan round trip, MX/SRV records, and
// the HTML report generator.
#include <gtest/gtest.h>

#include "atlas/fleet_json.h"
#include "atlas/measurement.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "report/html_report.h"
#include "resolvers/zone_parser.h"

namespace dnslocate {
namespace {

TEST(FleetJson, ParsesAndGeneratesACustomStudy) {
  const char* plan_text = R"({
    "seed": 7, "scale": 1.0, "ipv6_fraction": 0.5,
    "orgs": [
      {"org": "TestNet", "asn": 64601, "country": "US", "probes": 40,
       "cpe_xb6": 2, "isp_allfour": 1, "one_intercepted": 1},
      {"org": "OtherNet", "asn": 64602, "country": "DE", "probes": 20,
       "cpe_custom": "weird-box 9"}
    ]
  })";
  auto result = atlas::fleet_from_json(plan_text);
  ASSERT_TRUE(result.ok()) << result.errors[0];
  ASSERT_EQ(result.plan.size(), 2u);
  EXPECT_EQ(result.config.seed, 7u);
  EXPECT_EQ(result.plan[0].cpe_xb6, 2);
  EXPECT_EQ(result.plan[1].cpe_custom, "weird-box 9");

  auto fleet = result.generate();
  EXPECT_EQ(fleet.size(), 60u);
  std::size_t interceptors = 0, xb6 = 0, custom = 0;
  for (const auto& spec : fleet) {
    if (spec.scenario.cpe.intercepts()) ++interceptors;
    if (spec.scenario.cpe.kind == atlas::CpeStyle::Kind::xb6_buggy) ++xb6;
    if (spec.scenario.cpe.kind == atlas::CpeStyle::Kind::intercept_custom) ++custom;
  }
  EXPECT_EQ(xb6, 2u);
  EXPECT_EQ(custom, 1u);
  EXPECT_EQ(interceptors, 3u);

  // And the custom fleet measures end-to-end.
  auto run = atlas::run_fleet(fleet);
  EXPECT_EQ(run.intercepted_count(), 5u);  // 3 CPE + 1 ISP + 1 scoped
  EXPECT_EQ(run.count_location(core::InterceptorLocation::cpe), 3u);
}

TEST(FleetJson, ReportsSchemaErrors) {
  EXPECT_FALSE(atlas::fleet_from_json("not json").ok());
  EXPECT_FALSE(atlas::fleet_from_json("[]").ok());
  EXPECT_FALSE(atlas::fleet_from_json("{}").ok());  // missing orgs
  auto missing_org = atlas::fleet_from_json(R"({"orgs":[{"probes":5}]})");
  ASSERT_EQ(missing_org.errors.size(), 1u);
  EXPECT_NE(missing_org.errors[0].find("missing \"org\""), std::string::npos);
  auto bad_scale = atlas::fleet_from_json(R"({"scale": 2, "orgs":[{"org":"x","probes":1}]})");
  EXPECT_FALSE(bad_scale.ok());
  auto negative =
      atlas::fleet_from_json(R"({"orgs":[{"org":"x","probes":5,"cpe_xb6":-1}]})");
  EXPECT_FALSE(negative.ok());
}

TEST(FleetJson, BuiltinPlanRoundTrips) {
  const auto& plan = atlas::builtin_fleet_plan();
  atlas::FleetConfig config;
  std::string json = atlas::fleet_to_json(plan, config);
  auto reloaded = atlas::fleet_from_json(json);
  ASSERT_TRUE(reloaded.ok()) << reloaded.errors[0];
  ASSERT_EQ(reloaded.plan.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(reloaded.plan[i].org, plan[i].org);
    EXPECT_EQ(reloaded.plan[i].probes, plan[i].probes);
    EXPECT_EQ(reloaded.plan[i].cpe_xb6, plan[i].cpe_xb6);
    EXPECT_EQ(reloaded.plan[i].v6_intercept, plan[i].v6_intercept);
    EXPECT_EQ(reloaded.plan[i].cpe_custom, plan[i].cpe_custom);
  }
  // Same fleet either way.
  auto a = atlas::generate_fleet({});
  auto b = reloaded.generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 131)
    EXPECT_EQ(a[i].scenario.cpe.kind, b[i].scenario.cpe.kind);
}

// --- MX / SRV ---

dnswire::DnsName name(const char* text) { return *dnswire::DnsName::parse(text); }

TEST(MxSrv, CodecRoundTrip) {
  dnswire::Message query = dnswire::make_query(1, name("example.com"), dnswire::RecordType::MX);
  dnswire::Message response = dnswire::make_response(query);
  response.answers.push_back(dnswire::ResourceRecord{
      name("example.com"), dnswire::RecordType::MX, dnswire::RecordClass::IN, 300,
      dnswire::MxRecord{10, name("mail.example.com")}});
  response.answers.push_back(dnswire::ResourceRecord{
      name("_dns._udp.example.com"), dnswire::RecordType::SRV, dnswire::RecordClass::IN, 300,
      dnswire::SrvRecord{5, 10, 53, name("ns.example.com")}});
  for (bool compress : {true, false}) {
    auto decoded = dnswire::decode_message(
        dnswire::encode_message(response, {.compress_names = compress}));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, response) << "compress=" << compress;
  }
  EXPECT_EQ(response.answers[0].to_string(), "example.com 300 IN MX 10 mail.example.com");
  EXPECT_NE(response.answers[1].to_string().find("5 10 53 ns.example.com"),
            std::string::npos);
}

TEST(MxSrv, ZoneParserSupport) {
  resolvers::ZoneStore store;
  auto result = resolvers::parse_master_file(
      "$ORIGIN z.test.\n"
      "@ IN MX 10 mail\n"
      "_sip._udp IN SRV 1 2 5060 sip.z.test.\n"
      "bad IN MX banana mail\n",
      store);
  EXPECT_EQ(result.records_added, 2u);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].line, 4u);

  auto mx = store.lookup(name("z.test"), dnswire::RecordType::MX);
  ASSERT_EQ(mx.answers.size(), 1u);
  EXPECT_EQ(std::get<dnswire::MxRecord>(mx.answers[0].rdata).exchange, name("mail.z.test"));
  auto srv = store.lookup(name("_sip._udp.z.test"), dnswire::RecordType::SRV);
  ASSERT_EQ(srv.answers.size(), 1u);
  EXPECT_EQ(std::get<dnswire::SrvRecord>(srv.answers[0].rdata).port, 5060);
}

// --- HTML report ---

TEST(HtmlReport, EscapesAndContainsEverySection) {
  EXPECT_EQ(report::html_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");

  atlas::FleetConfig config;
  config.scale = 0.02;
  auto run = atlas::run_fleet(atlas::generate_fleet(config));
  report::HtmlReportOptions options;
  options.title = "test <report>";
  std::string html = report::html_report(run, options);

  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("test &lt;report&gt;"), std::string::npos);
  EXPECT_NE(html.find("Table 4"), std::string::npos);
  EXPECT_NE(html.find("Table 5"), std::string::npos);
  EXPECT_NE(html.find("Figure 3"), std::string::npos);
  EXPECT_NE(html.find("Figure 4a"), std::string::npos);
  EXPECT_NE(html.find("Figure 4b"), std::string::npos);
  EXPECT_NE(html.find("ground truth"), std::string::npos);
  EXPECT_NE(html.find("dnsmasq-2.78"), std::string::npos);  // a Table-5 string
  EXPECT_NE(html.find("class=\"bar\""), std::string::npos);
  // No unescaped raw angle brackets from data (crude check: the known
  // Comcast org renders escaped-free but intact).
  EXPECT_NE(html.find("Comcast (AS7922)"), std::string::npos);
}

TEST(HtmlReport, EmptyRunStillRenders) {
  atlas::MeasurementRun run;
  std::string html = report::html_report(run);
  EXPECT_NE(html.find("0 probes measured"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

}  // namespace
}  // namespace dnslocate
