// Property-style sweeps: randomized NAT traffic invariants, zone-parser
// fuzzing, truncation behaviour, statistics helpers, and cross-seed
// pipeline determinism.
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "report/stats.h"
#include "resolvers/server_app.h"
#include "resolvers/zone_parser.h"
#include "simnet/nat.h"
#include "simnet/simulator.h"

namespace dnslocate {
namespace {

netbase::IpAddress ip(const char* text) { return *netbase::IpAddress::parse(text); }

// ---------- NAT properties over randomized traffic ----------

struct EchoApp : simnet::UdpApp {
  void on_datagram(simnet::Simulator& sim, simnet::Device& self,
                   const simnet::UdpPacket& packet) override {
    simnet::UdpPacket reply;
    reply.src = packet.dst;
    reply.dst = packet.src;
    reply.sport = packet.dport;
    reply.dport = packet.sport;
    reply.payload = packet.payload;
    self.send_local(sim, reply);
  }
};

struct RecorderApp : simnet::UdpApp {
  std::vector<simnet::UdpPacket> received;
  void on_datagram(simnet::Simulator&, simnet::Device&, const simnet::UdpPacket& p) override {
    received.push_back(p);
  }
};

struct NatPropertySweep : ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NatPropertySweep, EveryFlowGetsItsOwnTransparentReply) {
  // N random flows (unique source ports, mixed destinations, half diverted
  // by DNAT). Invariants: every flow receives exactly one reply; the reply
  // source equals the address the client targeted; payloads map back to the
  // right flow.
  simnet::Simulator sim(GetParam());
  auto& client = sim.add_device<simnet::Device>("client");
  auto& router = sim.add_device<simnet::Device>("router");
  auto& real = sim.add_device<simnet::Device>("real");
  auto& alt = sim.add_device<simnet::Device>("alt");
  router.set_forwarding(true);
  auto [c_up, r_lan] = sim.connect(client, router);
  auto [r_wan, real_up] = sim.connect(router, real);
  auto [r_alt, alt_up] = sim.connect(router, alt);

  client.add_local_ip(ip("192.168.1.10"));
  client.set_default_route(c_up);
  router.add_local_ip(ip("192.168.1.1"));
  router.add_local_ip(ip("203.0.113.7"));
  router.add_route(*netbase::Prefix::parse("192.168.1.0/24"), r_lan);
  router.add_route(*netbase::Prefix::parse("66.55.44.0/24"), r_alt);
  router.set_default_route(r_wan);
  real.add_local_ip(ip("8.8.8.8"));
  real.add_local_ip(ip("9.9.9.9"));
  real.set_default_route(real_up);
  alt.add_local_ip(ip("66.55.44.5"));
  alt.set_default_route(alt_up);

  auto nat = std::make_shared<simnet::NatHook>();
  simnet::SnatRule snat;
  snat.out_port = r_wan;
  snat.to_source_v4 = ip("203.0.113.7");
  nat->add_snat_rule(snat);
  simnet::DnatRule dnat;  // divert flows to 9.9.9.9 only
  dnat.in_port = r_lan;
  dnat.match_dsts = {ip("9.9.9.9")};
  dnat.new_dst_v4 = ip("66.55.44.5");
  nat->add_dnat_rule(dnat);
  router.add_hook(nat);

  EchoApp echo;
  real.bind_udp(53, &echo);
  alt.bind_udp(53, &echo);
  RecorderApp recorder;

  simnet::Rng rng(GetParam() * 7 + 1);
  constexpr int kFlows = 120;
  std::vector<netbase::IpAddress> expected_src(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    std::uint16_t sport = static_cast<std::uint16_t>(20000 + i);
    client.bind_udp(sport, &recorder);
    bool to_quad9 = rng.bernoulli(0.5);
    simnet::UdpPacket packet;
    packet.src = ip("192.168.1.10");
    packet.dst = to_quad9 ? ip("9.9.9.9") : ip("8.8.8.8");
    expected_src[static_cast<std::size_t>(i)] = packet.dst;
    packet.sport = sport;
    packet.dport = 53;
    packet.payload = {static_cast<std::uint8_t>(i & 0xff),
                      static_cast<std::uint8_t>(i >> 8)};
    client.send_local(sim, packet);
  }
  sim.run_until_idle();

  ASSERT_EQ(recorder.received.size(), static_cast<std::size_t>(kFlows));
  std::set<std::uint16_t> seen_ports;
  for (const auto& reply : recorder.received) {
    int flow = reply.dport - 20000;
    ASSERT_GE(flow, 0);
    ASSERT_LT(flow, kFlows);
    seen_ports.insert(reply.dport);
    // Transparency: reply source is the *original* destination even for
    // diverted flows.
    EXPECT_EQ(reply.src, expected_src[static_cast<std::size_t>(flow)]);
    // Payload integrity ties the reply to its flow.
    ASSERT_EQ(reply.payload.size(), 2u);
    int echoed = reply.payload[0] | reply.payload[1] << 8;
    EXPECT_EQ(echoed, flow);
  }
  EXPECT_EQ(seen_ports.size(), static_cast<std::size_t>(kFlows));  // one reply per flow
  EXPECT_EQ(nat->conntrack_size(), static_cast<std::size_t>(kFlows));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NatPropertySweep, ::testing::Values(1, 2, 3, 4, 5));

// ---------- zone parser fuzz ----------

TEST(ZoneParserFuzz, RandomLinesNeverCrashAndErrorsAreBounded) {
  simnet::Rng rng(2021);
  const char alphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789.@$\" \t;INATXT";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    std::size_t lines = rng.uniform(20);
    for (std::size_t l = 0; l < lines; ++l) {
      std::size_t length = rng.uniform(60);
      for (std::size_t i = 0; i < length; ++i)
        text.push_back(alphabet[rng.uniform(sizeof alphabet - 1)]);
      text.push_back('\n');
    }
    resolvers::ZoneStore store;
    auto result = resolvers::parse_master_file(text, store);
    EXPECT_LE(result.errors.size(), lines);  // at most one error per line
  }
}

// ---------- EDNS / truncation ----------

TEST(Truncation, OversizeResponseIsTruncatedTo512WithoutOpt) {
  auto name = *dnswire::DnsName::parse("big.example");
  dnswire::Message query = dnswire::make_query(1, name, dnswire::RecordType::TXT);
  EXPECT_EQ(resolvers::DnsServerApp::udp_payload_limit(query), 512u);

  dnswire::Message response = dnswire::make_response(query);
  response.answers.push_back(dnswire::make_txt(name, std::string(900, 'x')));
  ASSERT_GT(dnswire::encode_message(response).size(), 512u);
  EXPECT_TRUE(resolvers::DnsServerApp::truncate_to_fit(response, 512));
  EXPECT_TRUE(response.flags.tc);
  EXPECT_TRUE(response.answers.empty());
  EXPECT_LE(dnswire::encode_message(response).size(), 512u);
}

TEST(Truncation, EdnsRaisesTheLimit) {
  auto name = *dnswire::DnsName::parse("big.example");
  dnswire::Message query = dnswire::make_query(1, name, dnswire::RecordType::TXT);
  query.additionals.push_back(dnswire::ResourceRecord{
      dnswire::DnsName{}, dnswire::RecordType::OPT, dnswire::RecordClass::IN, 0,
      dnswire::OptRecord{4096, {}}});
  EXPECT_EQ(resolvers::DnsServerApp::udp_payload_limit(query), 4096u);

  dnswire::Message response = dnswire::make_response(query);
  response.answers.push_back(dnswire::make_txt(name, std::string(900, 'x')));
  EXPECT_FALSE(resolvers::DnsServerApp::truncate_to_fit(response, 4096));
  EXPECT_FALSE(response.flags.tc);
}

TEST(Truncation, TinyAdvertisedSizesClampTo512) {
  dnswire::Message query = dnswire::make_query(1, *dnswire::DnsName::parse("x"),
                                               dnswire::RecordType::A);
  query.additionals.push_back(dnswire::ResourceRecord{
      dnswire::DnsName{}, dnswire::RecordType::OPT, dnswire::RecordClass::IN, 0,
      dnswire::OptRecord{80, {}}});
  EXPECT_EQ(resolvers::DnsServerApp::udp_payload_limit(query), 512u);
}

// ---------- statistics ----------

TEST(Stats, WilsonIntervalBasics) {
  auto p = report::wilson_interval(220, 9650);
  EXPECT_NEAR(p.estimate, 0.0228, 1e-4);
  EXPECT_GT(p.low, 0.019);
  EXPECT_LT(p.high, 0.027);
  EXPECT_LT(p.low, p.estimate);
  EXPECT_GT(p.high, p.estimate);
}

TEST(Stats, WilsonEdgeCases) {
  auto zero = report::wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(zero.estimate, 0.0);
  EXPECT_DOUBLE_EQ(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  auto all = report::wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
  EXPECT_LT(all.low, 1.0);
  auto empty = report::wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.low, 0.0);
  EXPECT_DOUBLE_EQ(empty.high, 1.0);
}

TEST(Stats, ClearlyDifferentDetectsSeparatedProportions) {
  auto small = report::wilson_interval(10, 10000);
  auto large = report::wilson_interval(200, 10000);
  EXPECT_TRUE(report::clearly_different(small, large));
  auto similar = report::wilson_interval(195, 10000);
  EXPECT_FALSE(report::clearly_different(large, similar));
}

// ---------- cross-seed determinism ----------

struct DeterminismSweep : ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, IdenticalSeedsIdenticalVerdicts) {
  atlas::ScenarioConfig config;
  config.seed = GetParam();
  config.isp_policy.middlebox_enabled = true;
  config.cpe.kind = atlas::CpeStyle::Kind::benign_open_dnsmasq;

  auto run = [&] {
    atlas::Scenario scenario(config);
    core::LocalizationPipeline pipeline(scenario.pipeline_config());
    auto verdict = pipeline.run(scenario.transport());
    std::string summary = std::string(to_string(verdict.location));
    for (const auto& probe : verdict.detection.probes) summary += "|" + probe.display;
    return summary;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep, ::testing::Values(1, 99, 12345, 7777777));

}  // namespace
}  // namespace dnslocate
