// Core localizer logic tests over a scripted transport — no simulator, so
// each decision rule of §3.1-§3.3 and §4.1.2 is pinned in isolation.
#include <gtest/gtest.h>

#include <functional>

#include "core/cpe_localizer.h"
#include "core/detector.h"
#include "core/isp_localizer.h"
#include "core/pipeline.h"
#include "core/transparency.h"
#include "dnswire/debug_queries.h"
#include "resolvers/special_names.h"

namespace dnslocate::core {
namespace {

using resolvers::PublicResolverKind;

/// Transport whose behaviour is a plain function of (server, question).
class ScriptedTransport : public QueryTransport {
 public:
  using Script = std::function<std::optional<dnswire::Message>(const netbase::Endpoint&,
                                                               const dnswire::Message&)>;
  explicit ScriptedTransport(Script script) : script_(std::move(script)) {}

  QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                    const QueryOptions&) override {
    ++queries_;
    QueryResult result;
    auto response = script_(server, message);
    if (response) {
      response->id = message.id;
      result.status = QueryResult::Status::answered;
      result.response = *response;
      result.all_responses.push_back(std::move(*response));
    }
    return result;
  }
  bool supports_family(netbase::IpFamily family) const override {
    return family == netbase::IpFamily::v4 || v6_;
  }
  void set_v6(bool v6) { v6_ = v6; }
  int queries() const { return queries_; }

 private:
  Script script_;
  bool v6_ = false;
  int queries_ = 0;
};

bool is_version_bind(const dnswire::Message& m) {
  return dnswire::is_chaos_query_for(m, dnswire::version_bind());
}

/// Standard answers for every resolver (a clean network).
std::optional<dnswire::Message> clean_network(const netbase::Endpoint& server,
                                              const dnswire::Message& query) {
  for (PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    for (auto family : {netbase::IpFamily::v4, netbase::IpFamily::v6})
      for (const auto& addr : spec.service_addrs(family)) {
        if (addr != server.address) continue;
        resolvers::PublicResolverBehavior behavior(kind, 0, 0);
        resolvers::QueryContext context;
        context.client = *netbase::IpAddress::parse("203.0.113.9");
        context.server_ip = addr;
        return behavior.respond(query, context);
      }
  }
  return std::nullopt;  // CPE IP, bogons: silence
}

TEST(Detector, CleanNetworkFindsNothing) {
  ScriptedTransport transport{clean_network};
  InterceptionDetector detector;
  auto report = detector.run(transport);
  EXPECT_FALSE(report.any_intercepted());
  // 4 resolvers x 2 addresses, v4 only (transport has no v6).
  EXPECT_EQ(report.probes.size(), 8u);
  for (const auto& r : report.per_resolver) {
    EXPECT_TRUE(r.tested_v4);
    EXPECT_FALSE(r.tested_v6);
    EXPECT_FALSE(r.unreachable_v4);
  }
}

TEST(Detector, V6TestedWhenSupported) {
  ScriptedTransport transport{clean_network};
  transport.set_v6(true);
  InterceptionDetector detector;
  auto report = detector.run(transport);
  EXPECT_EQ(report.probes.size(), 16u);
  for (const auto& r : report.per_resolver) EXPECT_TRUE(r.tested_v6);
}

TEST(Detector, SecondaryAddressesCanBeDisabled) {
  ScriptedTransport transport{clean_network};
  InterceptionDetector::Config config;
  config.use_secondary_addresses = false;
  InterceptionDetector detector(config);
  EXPECT_EQ(detector.run(transport).probes.size(), 4u);
}

TEST(Detector, AllTimeoutsIsUnreachableNotIntercepted) {
  ScriptedTransport transport{[](const auto&, const auto&) { return std::nullopt; }};
  InterceptionDetector detector;
  auto report = detector.run(transport);
  EXPECT_FALSE(report.any_intercepted());
  for (const auto& r : report.per_resolver) EXPECT_TRUE(r.unreachable_v4);
}

TEST(Detector, SingleNonstandardAddressFlagsTheResolver) {
  // Primary answers standard; secondary is hijacked.
  auto script = [](const netbase::Endpoint& server,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    const auto& spec = resolvers::PublicResolverSpec::get(PublicResolverKind::cloudflare);
    if (server.address == spec.service_v4[1])
      return dnswire::make_txt_response(query, "hijacked!");
    return clean_network(server, query);
  };
  ScriptedTransport transport{script};
  InterceptionDetector detector;
  auto report = detector.run(transport);
  EXPECT_TRUE(report.of(PublicResolverKind::cloudflare).intercepted_v4);
  EXPECT_FALSE(report.of(PublicResolverKind::google).intercepted_v4);
  EXPECT_EQ(report.intercepted_kinds(netbase::IpFamily::v4).size(), 1u);
  EXPECT_FALSE(report.all_four_intercepted(netbase::IpFamily::v4));
}

// --- CPE localizer (§3.2) ---

netbase::IpAddress cpe_ip() { return *netbase::IpAddress::parse("203.0.113.7"); }

TEST(CpeLocalizer, IdenticalStringsMeanCpe) {
  auto script = [](const netbase::Endpoint&,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    if (is_version_bind(query)) return dnswire::make_txt_response(query, "dnsmasq-2.78");
    return std::nullopt;
  };
  ScriptedTransport transport{script};
  CpeLocalizer localizer;
  auto report = localizer.run(transport, cpe_ip(),
                              {PublicResolverKind::cloudflare, PublicResolverKind::google});
  EXPECT_TRUE(report.cpe_is_interceptor);
  EXPECT_EQ(report.matching.size(), 2u);
  EXPECT_EQ(report.cpe.display, "dnsmasq-2.78");
}

TEST(CpeLocalizer, DifferentStringsMeanNotCpe) {
  auto script = [](const netbase::Endpoint& server,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    if (!is_version_bind(query)) return std::nullopt;
    if (server.address == cpe_ip()) return dnswire::make_txt_response(query, "dnsmasq-2.80");
    return dnswire::make_txt_response(query, "unbound 1.13.1");
  };
  ScriptedTransport transport{script};
  CpeLocalizer localizer;
  auto report = localizer.run(transport, cpe_ip(), {PublicResolverKind::google});
  EXPECT_FALSE(report.cpe_is_interceptor);
  EXPECT_TRUE(report.matching.empty());
  EXPECT_TRUE(report.cpe.has_string());
}

TEST(CpeLocalizer, SilentCpeMeansNotCpe) {
  auto script = [](const netbase::Endpoint& server,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    if (server.address == cpe_ip()) return std::nullopt;  // port 53 closed
    if (is_version_bind(query)) return dnswire::make_txt_response(query, "unbound 1.13.1");
    return std::nullopt;
  };
  ScriptedTransport transport{script};
  CpeLocalizer localizer;
  auto report = localizer.run(transport, cpe_ip(), {PublicResolverKind::google});
  EXPECT_FALSE(report.cpe_is_interceptor);
  EXPECT_FALSE(report.cpe.answered);
  EXPECT_EQ(report.cpe.display, "timeout");
}

TEST(CpeLocalizer, MatchingErrorRcodesAreNotIdentity) {
  // Appendix A: only high-entropy *strings* establish identity. Both sides
  // answering NXDOMAIN proves nothing.
  auto script = [](const netbase::Endpoint&,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    return dnswire::make_response(query, dnswire::Rcode::NXDOMAIN);
  };
  ScriptedTransport transport{script};
  CpeLocalizer localizer;
  auto report = localizer.run(transport, cpe_ip(), {PublicResolverKind::google});
  EXPECT_FALSE(report.cpe_is_interceptor);
  EXPECT_EQ(report.cpe.display, "NXDOMAIN");
}

TEST(CpeLocalizer, PartialMatchIsNotCpe) {
  // Two intercepted resolvers, only one string matches the CPE's.
  auto script = [](const netbase::Endpoint& server,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    if (!is_version_bind(query)) return std::nullopt;
    const auto& google = resolvers::PublicResolverSpec::get(PublicResolverKind::google);
    if (server.address == google.service_v4[0])
      return dnswire::make_txt_response(query, "other-box 1.0");
    return dnswire::make_txt_response(query, "dnsmasq-2.78");
  };
  ScriptedTransport transport{script};
  CpeLocalizer localizer;
  auto report = localizer.run(transport, cpe_ip(),
                              {PublicResolverKind::cloudflare, PublicResolverKind::google});
  EXPECT_FALSE(report.cpe_is_interceptor);
  EXPECT_EQ(report.matching.size(), 1u);
}

TEST(CpeLocalizer, NoSuspectsMeansNotCpe) {
  ScriptedTransport transport{[](const auto&, const auto& query) {
    return std::optional(dnswire::make_txt_response(query, "dnsmasq-2.78"));
  }};
  CpeLocalizer localizer;
  auto report = localizer.run(transport, cpe_ip(), {});
  EXPECT_FALSE(report.cpe_is_interceptor);
}

// --- ISP localizer (§3.3) ---

TEST(IspLocalizer, AnswerMeansWithinIsp) {
  auto script = [](const netbase::Endpoint& server,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    if (!server.address.is_bogon()) return std::nullopt;
    if (is_version_bind(query)) return dnswire::make_txt_response(query, "isp-resolver");
    return dnswire::make_response(query, dnswire::Rcode::NOERROR);
  };
  ScriptedTransport transport{script};
  IspLocalizer localizer;
  auto report = localizer.run(transport);
  EXPECT_TRUE(report.within_isp());
  EXPECT_TRUE(report.v4.tested);
  EXPECT_FALSE(report.v6.tested);  // transport has no v6
  EXPECT_EQ(report.version_bind_txt, "isp-resolver");
}

TEST(IspLocalizer, SilenceMeansUnknown) {
  ScriptedTransport transport{[](const auto&, const auto&) { return std::nullopt; }};
  IspLocalizer localizer;
  EXPECT_FALSE(localizer.run(transport).within_isp());
}

TEST(IspLocalizer, TargetsAreActuallyBogons) {
  IspLocalizer::Config config;
  EXPECT_TRUE(config.bogon_v4.address.is_bogon());
  EXPECT_TRUE(config.bogon_v6.address.is_bogon());
  EXPECT_EQ(config.bogon_v4.port, 53);
}

// --- transparency (§4.1.2) ---

TEST(Transparency, ValidForeignAnswerIsTransparent) {
  auto script = [](const netbase::Endpoint&,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    auto response = dnswire::make_response(query);
    response.answers.push_back(dnswire::make_a(query.question()->name,
                                               netbase::Ipv4Address(198, 51, 100, 2)));
    return response;
  };
  ScriptedTransport transport{script};
  TransparencyTester tester;
  auto report = tester.run(transport, {PublicResolverKind::google});
  EXPECT_EQ(report.overall, TransparencyClass::transparent);
  EXPECT_EQ(report.per_resolver.at(PublicResolverKind::google).klass,
            ResolverTransparency::transparent);
}

TEST(Transparency, TargetEgressAnswerIsNotInterception) {
  auto script = [](const netbase::Endpoint&,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    auto response = dnswire::make_response(query);
    // 172.253.x is inside Google's egress ranges.
    response.answers.push_back(dnswire::make_a(query.question()->name,
                                               netbase::Ipv4Address(172, 253, 1, 2)));
    return response;
  };
  ScriptedTransport transport{script};
  TransparencyTester tester;
  auto report = tester.run(transport, {PublicResolverKind::google});
  EXPECT_EQ(report.per_resolver.at(PublicResolverKind::google).klass,
            ResolverTransparency::answered_by_target);
  EXPECT_EQ(report.overall, TransparencyClass::indeterminate);
}

TEST(Transparency, ErrorStatusesClassifyModified) {
  auto script = [](const netbase::Endpoint&, const dnswire::Message& query) {
    return std::optional(dnswire::make_response(query, dnswire::Rcode::SERVFAIL));
  };
  ScriptedTransport transport{script};
  TransparencyTester tester;
  auto report = tester.run(transport, {PublicResolverKind::quad9});
  EXPECT_EQ(report.overall, TransparencyClass::status_modified);
}

TEST(Transparency, MixedIsBoth) {
  auto script = [](const netbase::Endpoint& server,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    const auto& quad9 = resolvers::PublicResolverSpec::get(PublicResolverKind::quad9);
    if (server.address == quad9.service_v4[0])
      return dnswire::make_response(query, dnswire::Rcode::REFUSED);
    auto response = dnswire::make_response(query);
    response.answers.push_back(dnswire::make_a(query.question()->name,
                                               netbase::Ipv4Address(198, 51, 100, 2)));
    return response;
  };
  ScriptedTransport transport{script};
  TransparencyTester tester;
  auto report = tester.run(transport, {PublicResolverKind::google, PublicResolverKind::quad9});
  EXPECT_EQ(report.overall, TransparencyClass::both);
}

TEST(Transparency, AllTimeoutsIsIndeterminate) {
  ScriptedTransport transport{[](const auto&, const auto&) { return std::nullopt; }};
  TransparencyTester tester;
  auto report = tester.run(transport, {PublicResolverKind::google});
  EXPECT_EQ(report.overall, TransparencyClass::indeterminate);
}

// --- pipeline decision order ---

TEST(Pipeline, SkipsCpeCheckWithoutCpeAddress) {
  // Everything hijacked to one box that answers version.bind.
  auto script = [](const netbase::Endpoint& server,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    if (server.address.is_bogon()) return std::nullopt;  // bogons dropped
    if (is_version_bind(query)) return dnswire::make_txt_response(query, "interceptor");
    return dnswire::make_response(query, dnswire::Rcode::REFUSED);
  };
  ScriptedTransport transport{script};
  PipelineConfig config;  // no cpe_public_ip
  LocalizationPipeline pipeline(config);
  auto verdict = pipeline.run(transport);
  EXPECT_TRUE(verdict.intercepted());
  EXPECT_FALSE(verdict.cpe_check.has_value());
  EXPECT_EQ(verdict.location, InterceptorLocation::unknown);
}

TEST(Pipeline, TransparencyCanBeDisabled) {
  ScriptedTransport transport{clean_network};
  PipelineConfig config;
  config.run_transparency = false;
  LocalizationPipeline pipeline(config);
  auto verdict = pipeline.run(transport);
  EXPECT_FALSE(verdict.transparency.has_value());
}

TEST(Pipeline, CpeVerdictSkipsBogonProbing) {
  auto script = [](const netbase::Endpoint&,
                   const dnswire::Message& query) -> std::optional<dnswire::Message> {
    if (is_version_bind(query)) return dnswire::make_txt_response(query, "dnsmasq-2.78");
    return dnswire::make_response(query, dnswire::Rcode::REFUSED);
  };
  ScriptedTransport transport{script};
  PipelineConfig config;
  config.cpe_public_ip = cpe_ip();
  LocalizationPipeline pipeline(config);
  auto verdict = pipeline.run(transport);
  EXPECT_EQ(verdict.location, InterceptorLocation::cpe);
  EXPECT_FALSE(verdict.bogon.has_value());  // Figure 2: step 3 not reached
}

}  // namespace
}  // namespace dnslocate::core
