// Codec tests: encode/decode round trips (including a randomized property
// sweep), name compression, and a corpus of malformed inputs that must be
// rejected without crashing.
#include <gtest/gtest.h>

#include "dnswire/debug_queries.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "simnet/rng.h"

namespace dnslocate::dnswire {
namespace {

DnsName name(const char* text) { return *DnsName::parse(text); }

TEST(Codec, QueryRoundTrip) {
  Message query = make_query(0xabcd, name("www.example.com"), RecordType::A);
  auto wire = encode_message(query);
  // Header(12) + QNAME(17) + QTYPE/QCLASS(4).
  EXPECT_EQ(wire.size(), 33u);
  auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, query);
}

TEST(Codec, ChaosQueryRoundTrip) {
  Message query = make_chaos_query(7, version_bind());
  auto decoded = decode_message(encode_message(query));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(is_chaos_query_for(*decoded, version_bind()));
  EXPECT_FALSE(is_chaos_query_for(*decoded, id_server()));
}

TEST(Codec, ResponseWithAllRdataTypesRoundTrips) {
  Message query = make_query(1, name("example.com"), RecordType::ANY);
  Message response = make_response(query);
  response.answers.push_back(make_a(name("example.com"), netbase::Ipv4Address(1, 2, 3, 4)));
  response.answers.push_back(
      make_aaaa(name("example.com"), *netbase::Ipv6Address::parse("2001:db8::1")));
  response.answers.push_back(make_txt(name("example.com"), "hello world"));
  response.answers.push_back(make_cname(name("alias.example.com"), name("example.com")));
  response.answers.push_back(ResourceRecord{name("example.com"), RecordType::NS,
                                            RecordClass::IN, 3600,
                                            NsRecord{name("ns1.example.com")}});
  response.answers.push_back(ResourceRecord{name("4.3.2.1.in-addr.arpa"), RecordType::PTR,
                                            RecordClass::IN, 3600,
                                            PtrRecord{name("example.com")}});
  SoaRecord soa{name("ns1.example.com"), name("hostmaster.example.com"), 2021, 7200, 900,
                1209600, 300};
  response.authorities.push_back(
      ResourceRecord{name("example.com"), RecordType::SOA, RecordClass::IN, 300, soa});
  response.additionals.push_back(ResourceRecord{DnsName{}, RecordType::OPT, RecordClass::IN, 0,
                                                OptRecord{1232, {}}});

  for (bool compress : {true, false}) {
    auto wire = encode_message(response, {.compress_names = compress});
    auto decoded = decode_message(wire);
    ASSERT_TRUE(decoded.has_value()) << "compress=" << compress;
    EXPECT_EQ(*decoded, response) << "compress=" << compress;
  }
}

TEST(Codec, CompressionShrinksRepeatedNames) {
  Message query = make_query(1, name("a.very.long.domain.example.com"), RecordType::A);
  Message response = make_response(query);
  for (int i = 0; i < 5; ++i)
    response.answers.push_back(
        make_a(name("a.very.long.domain.example.com"), netbase::Ipv4Address(1, 2, 3, 4)));
  auto compressed = encode_message(response, {.compress_names = true});
  auto uncompressed = encode_message(response, {.compress_names = false});
  EXPECT_LT(compressed.size(), uncompressed.size());
  // Both decode to the same message.
  EXPECT_EQ(*decode_message(compressed), *decode_message(uncompressed));
}

TEST(Codec, CompressionIsCaseInsensitiveButDecodesOriginalCase) {
  Message query = make_query(1, name("Example.COM"), RecordType::A);
  Message response = make_response(query);
  response.answers.push_back(make_a(name("example.com"), netbase::Ipv4Address(9, 9, 9, 9)));
  auto decoded = decode_message(encode_message(response));
  ASSERT_TRUE(decoded.has_value());
  // The question keeps its case; the answer name points at the question's
  // bytes, so it decodes with the question's case — still equal under DNS
  // comparison rules.
  EXPECT_TRUE(decoded->answers[0].name.equals_ignore_case(name("example.com")));
}

TEST(Codec, TxtSplitsLongStrings) {
  std::string long_text(600, 't');
  ResourceRecord rr = make_txt(name("txt.example.com"), long_text);
  const auto& txt = std::get<TxtRecord>(rr.rdata);
  ASSERT_EQ(txt.strings.size(), 3u);
  EXPECT_EQ(txt.strings[0].size(), 255u);
  EXPECT_EQ(txt.strings[2].size(), 90u);
  EXPECT_EQ(txt.joined(), long_text);

  Message query = make_query(1, name("txt.example.com"), RecordType::TXT);
  Message response = make_response(query);
  response.answers.push_back(rr);
  auto decoded = decode_message(encode_message(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first_txt(), long_text);
}

TEST(Codec, FlagsRoundTripAllBits) {
  for (unsigned wire = 0; wire <= 0xffff; ++wire) {
    // Mask out the Z bits (4..6) the struct does not model.
    std::uint16_t masked = static_cast<std::uint16_t>(wire & ~0x0040u);
    Flags flags = Flags::from_wire(masked);
    // Opcode/rcode values beyond the named enumerators still round trip
    // numerically: wire -> struct -> wire is the identity.
    EXPECT_EQ(flags.to_wire(), masked);
  }
}

TEST(Codec, UnknownRecordTypeDecodesAsRaw) {
  Message query = make_query(1, name("example.com"), RecordType::A);
  Message response = make_response(query);
  response.answers.push_back(ResourceRecord{name("example.com"), static_cast<RecordType>(99),
                                            RecordClass::IN, 60,
                                            RawRecord{{1, 2, 3, 4, 5}}});
  auto decoded = decode_message(encode_message(response));
  ASSERT_TRUE(decoded.has_value());
  const auto* raw = std::get_if<RawRecord>(&decoded->answers[0].rdata);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->data, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(Codec, OptCarriesPayloadSizeInClassField) {
  Message query = make_query(1, name("example.com"), RecordType::A);
  query.additionals.push_back(
      ResourceRecord{DnsName{}, RecordType::OPT, RecordClass::IN, 0, OptRecord{4096, {}}});
  auto decoded = decode_message(encode_message(query));
  ASSERT_TRUE(decoded.has_value());
  const auto* opt = std::get_if<OptRecord>(&decoded->additionals[0].rdata);
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->udp_payload_size, 4096);
}

// ---- malformed input corpus ----

TEST(Decoder, RejectsTruncatedHeader) {
  std::vector<std::uint8_t> wire = {0, 1, 0};
  DecodeError error;
  EXPECT_FALSE(decode_message(wire, &error).has_value());
  EXPECT_EQ(error.code, DecodeError::Code::truncated);
}

TEST(Decoder, RejectsTruncationAtEveryPrefix) {
  Message response = make_response(make_query(1, name("www.example.com"), RecordType::A));
  response.answers.push_back(make_a(name("www.example.com"), netbase::Ipv4Address(1, 2, 3, 4)));
  auto wire = encode_message(response);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    auto truncated = std::span<const std::uint8_t>(wire.data(), len);
    EXPECT_FALSE(decode_message(truncated).has_value()) << "prefix length " << len;
  }
  EXPECT_TRUE(decode_message(wire).has_value());
}

TEST(Decoder, RejectsForwardCompressionPointer) {
  // Query whose QNAME is a pointer to itself (offset 12 -> offset 12).
  std::vector<std::uint8_t> wire = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                    0xc0, 12,  // pointer to itself
                                    0, 1, 0, 1};
  DecodeError error;
  EXPECT_FALSE(decode_message(wire, &error).has_value());
  EXPECT_EQ(error.code, DecodeError::Code::bad_pointer);
}

TEST(Decoder, RejectsReservedLabelBits) {
  std::vector<std::uint8_t> wire = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                    0x80, 1,  // 10xxxxxx label type is reserved
                                    0, 1, 0, 1};
  DecodeError error;
  EXPECT_FALSE(decode_message(wire, &error).has_value());
  EXPECT_EQ(error.code, DecodeError::Code::bad_label);
}

TEST(Decoder, RejectsBadARdataLength) {
  Message response = make_response(make_query(1, name("a.com"), RecordType::A));
  response.answers.push_back(make_a(name("a.com"), netbase::Ipv4Address(1, 2, 3, 4)));
  auto wire = encode_message(response, {.compress_names = false});
  // Patch RDLENGTH (last 6 bytes are rdlength(2) + rdata(4)).
  wire[wire.size() - 6] = 0;
  wire[wire.size() - 5] = 3;
  wire.pop_back();  // keep total consistent with claimed length
  DecodeError error;
  EXPECT_FALSE(decode_message(wire, &error).has_value());
  EXPECT_EQ(error.code, DecodeError::Code::bad_rdata);
}

TEST(Decoder, TrailingBytesPolicy) {
  Message query = make_query(1, name("a.com"), RecordType::A);
  auto wire = encode_message(query);
  wire.push_back(0xde);
  wire.push_back(0xad);
  EXPECT_TRUE(decode_message(wire).has_value());  // lenient by default
  DecodeError error;
  EXPECT_FALSE(decode_message(wire, &error, {.reject_trailing_bytes = true}).has_value());
  EXPECT_EQ(error.code, DecodeError::Code::trailing_bytes);
}

TEST(Decoder, RejectsEmptyTxtRdata) {
  Message response = make_response(make_query(1, name("t.com"), RecordType::TXT));
  // Hand-craft a TXT RR with rdlength 0.
  auto wire = encode_message(response);
  // Append one answer manually: name ptr to question (offset 12), TXT, IN,
  // ttl 0, rdlength 0. Fix ANCOUNT.
  wire[7] = 1;
  const std::uint8_t rr[] = {0xc0, 12, 0, 16, 0, 1, 0, 0, 0, 0, 0, 0};
  wire.insert(wire.end(), std::begin(rr), std::end(rr));
  DecodeError error;
  EXPECT_FALSE(decode_message(wire, &error).has_value());
  EXPECT_EQ(error.code, DecodeError::Code::bad_rdata);
}

TEST(Decoder, RandomBytesNeverCrash) {
  simnet::Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> wire(rng.uniform(96));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)decode_message(wire);  // must not crash or hang
  }
}

TEST(Decoder, BitFlippedMessagesNeverCrash) {
  Message response = make_response(make_query(1, name("www.example.com"), RecordType::A));
  response.answers.push_back(make_a(name("www.example.com"), netbase::Ipv4Address(1, 2, 3, 4)));
  response.answers.push_back(make_txt(name("www.example.com"), "abc"));
  auto wire = encode_message(response);
  simnet::Rng rng(123);
  for (int i = 0; i < 5000; ++i) {
    auto mutated = wire;
    std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f)
      mutated[rng.uniform(mutated.size())] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
    (void)decode_message(mutated);
  }
}

// ---- randomized round-trip property ----

Message random_message(simnet::Rng& rng) {
  static const char* kNames[] = {"example.com", "www.example.com", "version.bind",
                                 "o-o.myaddr.l.google.com", "a.b.c.d.e.example.org",
                                 "probe.dnslocate.example"};
  Message m;
  m.id = static_cast<std::uint16_t>(rng.next_u64());
  m.flags = Flags::from_wire(static_cast<std::uint16_t>(rng.next_u64() & ~0x0040u));
  // Clamp the opcode to modelled values so equality survives the round trip.
  m.flags.opcode = static_cast<Opcode>(rng.uniform(3));
  m.flags.rcode = static_cast<Rcode>(rng.uniform(6));
  std::size_t questions = rng.uniform(3);
  for (std::size_t i = 0; i < questions; ++i) {
    Question q;
    q.name = name(kNames[rng.uniform(6)]);
    q.type = RecordType::A;
    q.klass = rng.bernoulli(0.2) ? RecordClass::CH : RecordClass::IN;
    m.questions.push_back(std::move(q));
  }
  auto random_rr = [&]() -> ResourceRecord {
    DnsName rr_name = name(kNames[rng.uniform(6)]);
    switch (rng.uniform(5)) {
      case 0:
        return make_a(rr_name, netbase::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64())),
                      static_cast<std::uint32_t>(rng.uniform(100000)));
      case 1: {
        netbase::Ipv6Address::Bytes bytes{};
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
        return make_aaaa(rr_name, netbase::Ipv6Address(bytes));
      }
      case 2: {
        std::string text(rng.uniform(300), 'x');
        return make_txt(rr_name, text, RecordClass::CH);
      }
      case 3:
        return make_cname(rr_name, name(kNames[rng.uniform(6)]));
      default:
        return ResourceRecord{rr_name, RecordType::NS, RecordClass::IN, 60,
                              NsRecord{name(kNames[rng.uniform(6)])}};
    }
  };
  std::size_t answers = rng.uniform(4);
  for (std::size_t i = 0; i < answers; ++i) m.answers.push_back(random_rr());
  std::size_t authorities = rng.uniform(2);
  for (std::size_t i = 0; i < authorities; ++i) m.authorities.push_back(random_rr());
  return m;
}

struct CodecProperty : ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecProperty, RandomMessagesRoundTrip) {
  simnet::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Message m = random_message(rng);
    for (bool compress : {true, false}) {
      auto wire = encode_message(m, {.compress_names = compress});
      auto decoded = decode_message(wire);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Wire fields are narrowed with bounds checks: values that cannot fit a
// u8/u16 field make the message unencodable instead of silently truncating
// (a wrong RDLENGTH would desynchronize every later record).
TEST(Encoder, OversizedTxtCharacterStringThrows) {
  Message m;
  TxtRecord txt;
  txt.strings.push_back(std::string(256, 'x'));  // character-strings cap at 255
  m.answers.push_back({*DnsName::parse("big.example.com"), RecordType::TXT,
                       RecordClass::IN, 300, txt});
  EXPECT_THROW((void)encode_message(m), std::length_error);
}

TEST(Encoder, OversizedRdataThrows) {
  Message m;
  RawRecord raw;
  raw.data.assign(65536, 0xaa);  // RDLENGTH is u16
  m.answers.push_back({*DnsName::parse("blob.example.com"), static_cast<RecordType>(10),
                       RecordClass::IN, 300, raw});
  EXPECT_THROW((void)encode_message(m), std::length_error);
}

TEST(Encoder, InRangeRdlengthStaysExact) {
  Message m;
  RawRecord raw;
  raw.data.assign(65535, 0xaa);  // largest encodable RDATA
  m.answers.push_back({*DnsName::parse("blob.example.com"), static_cast<RecordType>(10),
                       RecordClass::IN, 300, raw});
  auto wire = encode_message(m);
  auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, m);
}

}  // namespace
}  // namespace dnslocate::dnswire
