// SimTransport unit tests: the synchronous client that drives the
// simulator — port allocation, timing, duplicate collection, options.
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "dnswire/debug_queries.h"

namespace dnslocate::core {
namespace {

netbase::Endpoint quad9() {
  return {*netbase::IpAddress::parse("9.9.9.9"), netbase::kDnsPort};
}

TEST(SimTransport, MeasuresRtt) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  auto result = scenario.transport().query(quad9(), query);
  ASSERT_TRUE(result.answered());
  // Path: host->cpe (0.3ms) ->access (2ms) ->border (2ms) ->core (8ms)
  // ->site (6ms), server delay 0.2ms, then back: ~36.7ms round trip.
  EXPECT_GT(result.rtt.count(), 30'000);
  EXPECT_LT(result.rtt.count(), 45'000);
}

TEST(SimTransport, CountsQueriesAndCyclesPorts) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  auto& transport = scenario.transport();
  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  for (int i = 0; i < 5; ++i) {
    query.id = static_cast<std::uint16_t>(i + 1);
    EXPECT_TRUE(transport.query(quad9(), query).answered());
  }
  EXPECT_EQ(transport.queries_sent(), 5u);
}

TEST(SimTransport, UnsupportedFamilyTimesOutInstantly) {
  atlas::ScenarioConfig config;  // no IPv6 at the home
  atlas::Scenario scenario(config);
  EXPECT_FALSE(scenario.transport().supports_family(netbase::IpFamily::v6));
  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  netbase::Endpoint v6_server{*netbase::IpAddress::parse("2620:fe::fe"), 53};
  auto result = scenario.transport().query(v6_server, query);
  EXPECT_FALSE(result.answered());
}

TEST(SimTransport, V6SupportFollowsHomeConfig) {
  atlas::ScenarioConfig config;
  config.home_ipv6 = true;
  atlas::Scenario scenario(config);
  EXPECT_TRUE(scenario.transport().supports_family(netbase::IpFamily::v6));
  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  netbase::Endpoint v6_server{*netbase::IpAddress::parse("2620:fe::fe"), 53};
  auto result = scenario.transport().query(v6_server, query);
  ASSERT_TRUE(result.answered());
  EXPECT_EQ(result.response->first_txt(), "Q9-P-9.16.15");
}

TEST(SimTransport, CollectsReplicatedDuplicates) {
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.replicate = true;
  atlas::Scenario scenario(config);
  auto query = dnswire::make_chaos_query(7, dnswire::version_bind());
  auto result = scenario.transport().query(quad9(), query);
  ASSERT_TRUE(result.answered());
  EXPECT_TRUE(result.replicated());
  EXPECT_EQ(result.all_responses.size(), 2u);
  // The accepted (first) response is the interceptor's: the ISP resolver's
  // version string, not Quad9's.
  EXPECT_NE(result.response->first_txt(), "Q9-P-9.16.15");
  // The late duplicate is the genuine Quad9 answer.
  EXPECT_EQ(result.all_responses.back().first_txt(), "Q9-P-9.16.15");
}

TEST(SimTransport, TtlOptionLimitsReach) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  auto query = dnswire::make_chaos_query(9, dnswire::version_bind());
  QueryOptions options;
  options.ttl = 1;
  EXPECT_FALSE(scenario.transport().query(quad9(), query, options).answered());
  options.ttl = 64;
  query.id = 10;
  EXPECT_TRUE(scenario.transport().query(quad9(), query, options).answered());
}

TEST(SimTransport, LateRepliesToOldQueriesAreIgnored) {
  // Issue a query that times out (bogon destination, no interceptor), then
  // a normal one; the second must complete normally with its own answer.
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  auto dead = dnswire::make_chaos_query(11, dnswire::version_bind());
  netbase::Endpoint bogon{netbase::BogonCatalog::default_probe_v4(), 53};
  QueryOptions short_timeout;
  short_timeout.timeout = std::chrono::milliseconds(100);
  EXPECT_FALSE(scenario.transport().query(bogon, dead, short_timeout).answered());

  auto live = dnswire::make_chaos_query(12, dnswire::version_bind());
  auto result = scenario.transport().query(quad9(), live);
  ASSERT_TRUE(result.answered());
  EXPECT_EQ(result.response->id, 12);
}

}  // namespace
}  // namespace dnslocate::core
