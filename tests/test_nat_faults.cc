// NAT x fault-injection interaction: network-duplicated and jittered
// upstream traffic must reuse conntrack entries (not mint phantom flows),
// replies must keep landing on the right flows, and fault-injected
// duplication must never masquerade as query replication (§3.1) at the
// transport layer.
#include <gtest/gtest.h>

#include "atlas/scenario.h"
#include "dnswire/debug_queries.h"
#include "simnet/fault.h"
#include "simnet/nat.h"
#include "simnet/simulator.h"

namespace dnslocate::simnet {
namespace {

netbase::IpAddress ip(const char* text) { return *netbase::IpAddress::parse(text); }

struct EchoApp : UdpApp {
  int echoes = 0;
  void on_datagram(Simulator& sim, Device& self, const UdpPacket& packet) override {
    ++echoes;
    UdpPacket reply;
    reply.src = packet.dst;
    reply.dst = packet.src;
    reply.sport = packet.dport;
    reply.dport = packet.sport;
    reply.payload = packet.payload;
    reply.payload.push_back(0xee);
    self.send_local(sim, reply);
  }
};

struct SinkApp : UdpApp {
  std::vector<UdpPacket> received;
  void on_datagram(Simulator&, Device&, const UdpPacket& packet) override {
    received.push_back(packet);
  }
};

/// client(192.168.1.10) -- router(NAT) -- server(8.8.8.8), with the fault
/// profile applied to the router--server ("wan") link only.
struct FaultyNatWorld {
  Simulator sim{1};
  FaultPlan plan{123};
  Device& client;
  Device& router;
  Device& server;
  PortId client_up = 0, router_lan = 0, router_wan = 0;
  std::shared_ptr<NatHook> nat = std::make_shared<NatHook>();
  EchoApp server_app;
  SinkApp client_app;

  explicit FaultyNatWorld(const FaultProfile& wan_faults) :
      client(sim.add_device<Device>("client")),
      router(sim.add_device<Device>("router")),
      server(sim.add_device<Device>("server")) {
    plan.set_class_profile("wan", wan_faults);
    sim.set_fault_plan(&plan);

    router.set_forwarding(true);
    auto [c, rl] = sim.connect(client, router);
    client_up = c;
    router_lan = rl;
    LinkConfig wan_link;
    wan_link.fault_class = "wan";
    auto [rw, s] = sim.connect(router, server, wan_link);
    router_wan = rw;

    client.add_local_ip(ip("192.168.1.10"));
    client.set_default_route(client_up);
    router.add_local_ip(ip("192.168.1.1"));
    router.add_local_ip(ip("203.0.113.7"));
    router.add_route(*netbase::Prefix::parse("192.168.1.0/24"), router_lan);
    router.set_default_route(router_wan);
    server.add_local_ip(ip("8.8.8.8"));
    server.set_default_route(s);

    SnatRule snat;
    snat.out_port = router_wan;
    snat.to_source_v4 = ip("203.0.113.7");
    nat->add_snat_rule(snat);
    router.add_hook(nat);

    server.bind_udp(53, &server_app);
  }

  void send_query(std::uint16_t sport) {
    UdpPacket p;
    p.src = ip("192.168.1.10");
    p.dst = ip("8.8.8.8");
    p.sport = sport;
    p.dport = 53;
    p.payload = {static_cast<std::uint8_t>(sport & 0xff)};
    client.bind_udp(sport, &client_app);
    client.send_local(sim, p);
  }
};

TEST(NatFaults, DuplicatedPacketsReuseTheConntrackEntry) {
  FaultProfile duplicating;
  duplicating.duplicate_rate = 1.0;
  FaultyNatWorld world(duplicating);

  world.send_query(5555);
  world.sim.run_until_idle();

  // Query duplicated outbound (2 at the server), every reply duplicated
  // inbound (4 at the client) — yet the translation table holds exactly one
  // flow, and every copy was restored to the same client endpoint.
  EXPECT_EQ(world.server_app.echoes, 2);
  ASSERT_EQ(world.client_app.received.size(), 4u);
  for (const auto& reply : world.client_app.received) {
    EXPECT_EQ(reply.src, ip("8.8.8.8"));
    EXPECT_EQ(reply.dst, ip("192.168.1.10"));
    EXPECT_EQ(reply.dport, 5555);
  }
  EXPECT_EQ(world.nat->conntrack_size(), 1u);

  // The established flow keeps translating after the duplicate storm.
  world.send_query(5555);
  world.sim.run_until_idle();
  EXPECT_EQ(world.nat->conntrack_size(), 1u);
  EXPECT_EQ(world.server_app.echoes, 4);
}

TEST(NatFaults, JitteredRepliesLandOnTheRightFlows) {
  FaultProfile jittery;
  jittery.jitter_max = std::chrono::milliseconds(6);
  jittery.reorder_rate = 0.5;
  FaultyNatWorld world(jittery);

  for (std::uint16_t sport = 6000; sport < 6008; ++sport) world.send_query(sport);
  world.sim.run_until_idle();

  ASSERT_EQ(world.client_app.received.size(), 8u);
  EXPECT_EQ(world.nat->conntrack_size(), 8u);
  // However the replies were delayed or overtook each other, each one
  // reached the flow that sent the matching query: the echoed marker byte
  // agrees with the destination port.
  for (const auto& reply : world.client_app.received) {
    ASSERT_EQ(reply.payload.size(), 2u);
    EXPECT_EQ(reply.payload[0], static_cast<std::uint8_t>(reply.dport & 0xff));
    EXPECT_EQ(reply.payload[1], 0xee);
  }
}

TEST(NatFaults, LossOnTheWanLinkLeavesNoDanglingState) {
  FaultProfile always_lossy;
  always_lossy.p_good_to_bad = 1.0;
  always_lossy.p_bad_to_good = 0.0;
  always_lossy.loss_bad = 1.0;
  FaultyNatWorld world(always_lossy);

  world.send_query(7777);
  world.sim.run_until_idle();

  EXPECT_EQ(world.server_app.echoes, 0);
  EXPECT_TRUE(world.client_app.received.empty());
  // The flow was translated (conntrack entry exists for the retransmit to
  // reuse) and the loss is attributed to the fault plan, not the NAT.
  EXPECT_EQ(world.nat->conntrack_size(), 1u);
  EXPECT_EQ(world.sim.drops().fault_burst, 1u);
  EXPECT_EQ(world.sim.drops().by_hook, 0u);
}

// --- the transport must not mistake fault duplication for replication ---

TEST(NatFaults, FaultDuplicationDoesNotFabricateReplication) {
  // A clean path (no interceptor) whose access link duplicates every
  // packet: the stub sees byte-identical copies and must report a single
  // response, not a replicated query.
  atlas::ScenarioConfig config;
  config.faults.duplicate_rate = 1.0;
  config.fault_classes = {"access"};
  atlas::Scenario scenario(config);

  auto query = dnswire::make_chaos_query(21, dnswire::version_bind());
  auto result = scenario.transport().query(
      {ip("9.9.9.9"), netbase::kDnsPort}, query);
  ASSERT_TRUE(result.answered());
  EXPECT_FALSE(result.replicated()) << "network duplicate counted as replication";
  EXPECT_EQ(result.all_responses.size(), 1u);
}

TEST(NatFaults, GenuineReplicationSurvivesTheDuplicateFilter) {
  // An ISP middlebox that replicates queries (§3.1) produces two *different*
  // answers; the duplicate filter must keep both even while the access link
  // is also duplicating packets.
  atlas::ScenarioConfig config;
  config.isp_policy.middlebox_enabled = true;
  config.isp_policy.replicate = true;
  config.faults.duplicate_rate = 1.0;
  config.fault_classes = {"access"};
  atlas::Scenario scenario(config);

  auto query = dnswire::make_chaos_query(22, dnswire::version_bind());
  auto result = scenario.transport().query(
      {ip("9.9.9.9"), netbase::kDnsPort}, query);
  ASSERT_TRUE(result.answered());
  EXPECT_TRUE(result.replicated());
  EXPECT_EQ(result.all_responses.size(), 2u);
}

}  // namespace
}  // namespace dnslocate::simnet
