// NAT/conntrack tests: masquerading, DNAT interception, reply restoration
// (the transparent-spoofing mechanism), rule matching, and replication.
#include <gtest/gtest.h>

#include "simnet/nat.h"
#include "simnet/simulator.h"

namespace dnslocate::simnet {
namespace {

netbase::IpAddress ip(const char* text) { return *netbase::IpAddress::parse(text); }

/// Echo app: answers every datagram with src/dst swapped and a marker byte.
struct EchoApp : UdpApp {
  int echoes = 0;
  void on_datagram(Simulator& sim, Device& self, const UdpPacket& packet) override {
    ++echoes;
    UdpPacket reply;
    reply.src = packet.dst;
    reply.dst = packet.src;
    reply.sport = packet.dport;
    reply.dport = packet.sport;
    reply.payload = packet.payload;
    reply.payload.push_back(0xee);
    self.send_local(sim, reply);
  }
};

struct SinkApp : UdpApp {
  std::vector<UdpPacket> received;
  void on_datagram(Simulator&, Device&, const UdpPacket& packet) override {
    received.push_back(packet);
  }
};

/// client(192.168.1.10) -- router(NAT, lan .1 / wan 203.0.113.7) -- server(8.8.8.8)
/// plus an "alt" server (10.5.0.5-style public 198.51.99.5) for DNAT targets.
struct NatWorld {
  Simulator sim{1};
  Device& client;
  Device& router;
  Device& server;
  Device& alt;
  PortId client_up = 0, router_lan = 0, router_wan = 0, server_up = 0, alt_up = 0;
  std::shared_ptr<NatHook> nat = std::make_shared<NatHook>();
  EchoApp server_app, alt_app;
  SinkApp client_app;

  NatWorld()
      : client(sim.add_device<Device>("client")),
        router(sim.add_device<Device>("router")),
        server(sim.add_device<Device>("server")),
        alt(sim.add_device<Device>("alt")) {
    router.set_forwarding(true);
    auto [c, rl] = sim.connect(client, router);
    client_up = c;
    router_lan = rl;
    auto [rw, s] = sim.connect(router, server);
    router_wan = rw;
    server_up = s;
    auto [rw2, a] = sim.connect(router, alt);
    alt_up = a;

    client.add_local_ip(ip("192.168.1.10"));
    client.set_default_route(client_up);
    router.add_local_ip(ip("192.168.1.1"));
    router.add_local_ip(ip("203.0.113.7"));
    router.add_route(*netbase::Prefix::parse("192.168.1.0/24"), router_lan);
    router.add_route(*netbase::Prefix::parse("66.55.44.0/24"), rw2);
    router.set_default_route(router_wan);
    server.add_local_ip(ip("8.8.8.8"));
    server.set_default_route(server_up);
    alt.add_local_ip(ip("66.55.44.5"));
    alt.set_default_route(alt_up);

    SnatRule snat;
    snat.out_port = router_wan;
    snat.to_source_v4 = ip("203.0.113.7");
    nat->add_snat_rule(snat);
    router.add_hook(nat);

    server.bind_udp(53, &server_app);
    alt.bind_udp(53, &alt_app);
    client.bind_udp(5555, &client_app);
  }

  void send_query(const char* dst, std::uint16_t dport = 53) {
    UdpPacket p;
    p.src = ip("192.168.1.10");
    p.dst = ip(dst);
    p.sport = 5555;
    p.dport = dport;
    p.payload = {42};
    client.send_local(sim, p);
    sim.run_until_idle();
  }
};

TEST(Nat, MasqueradeRewritesSourceAndRestoresReply) {
  NatWorld world;
  world.send_query("8.8.8.8");

  ASSERT_EQ(world.server_app.echoes, 1);
  ASSERT_EQ(world.client_app.received.size(), 1u);
  const UdpPacket& reply = world.client_app.received[0];
  // The client sees the reply from exactly where it sent the query.
  EXPECT_EQ(reply.src, ip("8.8.8.8"));
  EXPECT_EQ(reply.sport, 53);
  EXPECT_EQ(reply.dst, ip("192.168.1.10"));
  EXPECT_EQ(reply.dport, 5555);
  EXPECT_EQ(world.nat->snat_hits(), 1u);
  EXPECT_EQ(world.nat->unnat_hits(), 1u);
}

TEST(Nat, RouterOwnTrafficIsNotMasqueraded) {
  NatWorld world;
  UdpPacket p;
  p.src = ip("203.0.113.7");
  p.dst = ip("8.8.8.8");
  p.sport = 5353;
  p.dport = 53;
  p.payload = {1};
  world.router.send_local(world.sim, p);
  world.sim.run_until_idle();
  EXPECT_EQ(world.nat->snat_hits(), 0u);
  EXPECT_EQ(world.server_app.echoes, 1);
}

TEST(Nat, DnatDivertsAndSpoofsTransparently) {
  NatWorld world;
  DnatRule rule;
  rule.in_port = world.router_lan;
  rule.match_dport = 53;
  rule.new_dst_v4 = ip("66.55.44.5");
  world.nat->add_dnat_rule(rule);

  world.send_query("8.8.8.8");
  // The real server never saw it; the alternate did.
  EXPECT_EQ(world.server_app.echoes, 0);
  EXPECT_EQ(world.alt_app.echoes, 1);
  // The client cannot tell: the reply claims to come from 8.8.8.8.
  ASSERT_EQ(world.client_app.received.size(), 1u);
  EXPECT_EQ(world.client_app.received[0].src, ip("8.8.8.8"));
  EXPECT_EQ(world.client_app.received[0].sport, 53);
  EXPECT_EQ(world.nat->dnat_hits(), 1u);
}

TEST(Nat, DnatOnlyMatchesConfiguredPort) {
  NatWorld world;
  DnatRule rule;
  rule.in_port = world.router_lan;
  rule.match_dport = 53;
  rule.new_dst_v4 = ip("66.55.44.5");
  world.nat->add_dnat_rule(rule);

  world.send_query("8.8.8.8", 5353);  // not DNS
  EXPECT_EQ(world.alt_app.echoes, 0);
  EXPECT_EQ(world.nat->dnat_hits(), 0u);
}

TEST(Nat, DnatRespectsInPortScope) {
  NatWorld world;
  DnatRule rule;
  rule.in_port = world.router_wan;  // wrong side
  rule.match_dport = 53;
  rule.new_dst_v4 = ip("66.55.44.5");
  world.nat->add_dnat_rule(rule);
  world.send_query("8.8.8.8");
  EXPECT_EQ(world.server_app.echoes, 1);
  EXPECT_EQ(world.alt_app.echoes, 0);
}

TEST(Nat, DnatExemptAndMatchLists) {
  NatWorld world;
  DnatRule rule;
  rule.in_port = world.router_lan;
  rule.exempt_dsts = {ip("8.8.8.8")};
  rule.new_dst_v4 = ip("66.55.44.5");
  world.nat->add_dnat_rule(rule);
  world.send_query("8.8.8.8");
  EXPECT_EQ(world.server_app.echoes, 1);  // exempt passes through

  DnatRule scoped;
  scoped.in_port = world.router_lan;
  scoped.match_dsts = {ip("9.9.9.9")};
  scoped.new_dst_v4 = ip("66.55.44.5");
  world.nat->add_dnat_rule(scoped);
  world.send_query("9.9.9.9");
  EXPECT_EQ(world.alt_app.echoes, 1);  // scoped match diverted
  world.send_query("8.8.8.8");
  EXPECT_EQ(world.server_app.echoes, 2);  // non-matching still passes
}

TEST(Nat, DnatFamilyScoping) {
  NatWorld world;
  DnatRule rule;
  rule.in_port = world.router_lan;
  rule.family = netbase::IpFamily::v6;  // v6-only rule, v4 query below
  rule.new_dst_v4 = ip("66.55.44.5");
  world.nat->add_dnat_rule(rule);
  world.send_query("8.8.8.8");
  EXPECT_EQ(world.server_app.echoes, 1);
  EXPECT_EQ(world.alt_app.echoes, 0);
}

TEST(Nat, BogonMatchingFlags) {
  NatWorld world;
  DnatRule rule;
  rule.in_port = world.router_lan;
  rule.exempt_bogon_dsts = true;
  rule.new_dst_v4 = ip("66.55.44.5");
  world.nat->add_dnat_rule(rule);
  world.send_query("240.9.9.9");  // bogon: rule must not fire
  EXPECT_EQ(world.alt_app.echoes, 0);
  world.send_query("8.8.8.8");  // routable: diverted
  EXPECT_EQ(world.alt_app.echoes, 1);

  NatWorld world2;
  DnatRule only_bogons;
  only_bogons.in_port = world2.router_lan;
  only_bogons.match_bogons_only = true;
  only_bogons.new_dst_v4 = ip("66.55.44.5");
  world2.nat->add_dnat_rule(only_bogons);
  world2.send_query("8.8.8.8");
  EXPECT_EQ(world2.alt_app.echoes, 0);
  world2.send_query("240.9.9.9");
  EXPECT_EQ(world2.alt_app.echoes, 1);
  // And the spoofed reply claims to come from the bogon address.
  ASSERT_EQ(world2.client_app.received.size(), 2u);
  EXPECT_EQ(world2.client_app.received[1].src, ip("240.9.9.9"));
}

TEST(Nat, RuleOrderIsMatchOrder) {
  NatWorld world;
  DnatRule first;
  first.in_port = world.router_lan;
  first.match_dsts = {ip("8.8.8.8")};
  first.new_dst_v4 = ip("66.55.44.5");
  DnatRule second;
  second.in_port = world.router_lan;
  second.new_dst_v4 = ip("8.8.8.8");  // catch-all would send it elsewhere
  world.nat->add_dnat_rule(first);
  world.nat->add_dnat_rule(second);
  world.send_query("8.8.8.8");
  EXPECT_EQ(world.alt_app.echoes, 1);  // first rule won
}

TEST(Nat, ReplicationProducesTwoResponses) {
  NatWorld world;
  DnatRule rule;
  rule.in_port = world.router_lan;
  rule.new_dst_v4 = ip("66.55.44.5");
  rule.replicate = true;
  world.nat->add_dnat_rule(rule);

  world.send_query("8.8.8.8");
  EXPECT_EQ(world.server_app.echoes, 1);  // original continued
  EXPECT_EQ(world.alt_app.echoes, 1);     // clone diverted
  ASSERT_EQ(world.client_app.received.size(), 2u);
  // Both responses claim the original destination as their source —
  // indistinguishable at the client, exactly as Liu et al. observed.
  EXPECT_EQ(world.client_app.received[0].src, ip("8.8.8.8"));
  EXPECT_EQ(world.client_app.received[1].src, ip("8.8.8.8"));
}

TEST(Nat, ConcurrentFlowsKeepSeparateConntrackEntries) {
  NatWorld world;
  for (std::uint16_t sport = 6000; sport < 6010; ++sport) {
    UdpPacket p;
    p.src = ip("192.168.1.10");
    p.dst = ip("8.8.8.8");
    p.sport = sport;
    p.dport = 53;
    p.payload = {static_cast<std::uint8_t>(sport & 0xff)};
    world.client.bind_udp(sport, &world.client_app);
    world.client.send_local(world.sim, p);
  }
  world.sim.run_until_idle();
  EXPECT_EQ(world.client_app.received.size(), 10u);
  EXPECT_EQ(world.nat->conntrack_size(), 10u);
  // Replies landed on the right flows (payload echoes carry the marker).
  for (const auto& reply : world.client_app.received)
    EXPECT_EQ(reply.payload.size(), 2u);
}

TEST(Nat, EstablishedFlowReusesTranslation) {
  NatWorld world;
  world.send_query("8.8.8.8");
  world.send_query("8.8.8.8");  // same 4-tuple again
  EXPECT_EQ(world.server_app.echoes, 2);
  EXPECT_EQ(world.client_app.received.size(), 2u);
  EXPECT_EQ(world.nat->conntrack_size(), 1u);  // one entry, reused
}

}  // namespace
}  // namespace dnslocate::simnet
