// The checkpoint journal and resume path: record round trips, kill-and-
// resume byte-identity against an uninterrupted run, and salvage of
// truncated / corrupted / mismatched journals.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "atlas/fleet_json.h"
#include "atlas/journal.h"
#include "atlas/measurement.h"
#include "report/html_report.h"
#include "report/results_io.h"
#include "resolvers/public_resolver.h"

namespace dnslocate {
namespace {

std::vector<atlas::ProbeSpec> study_fleet(std::uint64_t seed = 7) {
  std::string plan = R"({"seed": )" + std::to_string(seed) + R"(, "ipv6_fraction": 0.5,
    "orgs": [
      {"org": "TestNet", "asn": 64601, "country": "US", "probes": 24,
       "cpe_xb6": 2, "isp_allfour": 1, "one_intercepted": 1},
      {"org": "OtherNet", "asn": 64602, "country": "DE", "probes": 12,
       "cpe_custom": "weird-box 9"}
    ]})";
  auto parsed = atlas::fleet_from_json(plan);
  EXPECT_TRUE(parsed.ok());
  return parsed.generate();
}

std::string read_file(const std::string& path) {
  std::ifstream input(path);
  std::stringstream buffer;
  buffer << input.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream output(path, std::ios::trunc);
  output << text;
}

TEST(Journal, RecordRoundTripsThroughJson) {
  auto fleet = study_fleet();
  // An interceptor probe exercises every optional verdict field.
  atlas::ProbeRecord original;
  for (const auto& spec : fleet)
    if (spec.scenario.cpe.intercepts()) {
      original = atlas::run_probe(spec, true);
      break;
    }
  original.elapsed = std::chrono::microseconds(12345);

  auto restored = atlas::journal_record_from_json(atlas::journal_record_to_json(original));
  ASSERT_TRUE(restored.has_value());
  // Strongest check: serialize -> parse -> serialize is byte-stable.
  EXPECT_EQ(atlas::journal_record_to_json(*restored).dump(),
            atlas::journal_record_to_json(original).dump());
  EXPECT_EQ(restored->probe_id, original.probe_id);
  EXPECT_EQ(restored->verdict.location, original.verdict.location);
  EXPECT_EQ(restored->elapsed, original.elapsed);
  EXPECT_EQ(restored->verdict.telemetry.queries, original.verdict.telemetry.queries);

  // Supervision fields round-trip too.
  atlas::ProbeRecord failed;
  failed.probe_id = 77;
  failed.org = {"X (AS1)", 1, "US"};
  failed.outcome = atlas::ProbeOutcome::failed;
  failed.error = "injected crash";
  failed.verdict.skipped_stages = 0b110;
  auto failed_restored =
      atlas::journal_record_from_json(atlas::journal_record_to_json(failed));
  ASSERT_TRUE(failed_restored.has_value());
  EXPECT_EQ(failed_restored->outcome, atlas::ProbeOutcome::failed);
  EXPECT_EQ(failed_restored->error, "injected crash");
  EXPECT_EQ(failed_restored->verdict.skipped_stages, 0b110);
}

TEST(Journal, FastDumpMatchesValueTreeDump) {
  // JournalWriter checksums the bytes of journal_record_dump(); the loader
  // validates against journal_record_to_json(...).dump(). The two serializers
  // must agree byte-for-byte or every record would fail CRC on resume.
  auto fleet = study_fleet();
  for (const auto& spec : {fleet[0], fleet[7], fleet[30]}) {
    auto record = atlas::run_probe(spec, true);
    record.elapsed = std::chrono::microseconds(9876);
    EXPECT_EQ(atlas::journal_record_dump(record),
              atlas::journal_record_to_json(record).dump())
        << "probe " << record.probe_id;
  }

  atlas::ProbeRecord failed;
  failed.probe_id = 99;
  failed.org = {"Y \"quoted\" (AS2)", 2, "BR"};
  failed.outcome = atlas::ProbeOutcome::deadline_exceeded;
  failed.error = "probe exceeded its deadline of 50ms\n\t\"partial\"";
  failed.verdict.skipped_stages = 0b111;
  for (auto kind : resolvers::all_public_resolvers())
    failed.verdict.detection.per_resolver[static_cast<std::size_t>(kind)].kind = kind;
  EXPECT_EQ(atlas::journal_record_dump(failed),
            atlas::journal_record_to_json(failed).dump());

  // A crashed probe's record keeps its default-constructed verdict: every
  // per_resolver entry carries the same display name, which std::map
  // collapses — the fast dump has to match that too.
  atlas::ProbeRecord crashed;
  crashed.probe_id = 100;
  crashed.org = {"Z (AS3)", 3, "JP"};
  crashed.outcome = atlas::ProbeOutcome::failed;
  crashed.error = "injected crash";
  EXPECT_EQ(atlas::journal_record_dump(crashed),
            atlas::journal_record_to_json(crashed).dump());
}

TEST(Journal, KillAndResumeIsByteIdentical) {
  auto fleet = study_fleet();
  auto baseline = atlas::run_fleet(fleet, {});
  std::string baseline_jsonl = report::run_to_jsonl(baseline);
  std::string baseline_html = report::html_report(baseline);

  // "Kill" the run deterministically: three rigged probes throw and
  // max_failures stops the campaign partway, journal intact.
  std::string journal = testing::TempDir() + "kill_resume.journal";
  std::set<std::uint32_t> rigged = {fleet[5].probe_id, fleet[12].probe_id,
                                    fleet[20].probe_id};
  atlas::MeasurementOptions interrupted;
  interrupted.threads = 1;
  interrupted.max_failures = 3;
  interrupted.journal_path = journal;
  interrupted.runner = [&rigged](const atlas::ProbeSpec& spec,
                                 const core::CancelToken& token) {
    if (rigged.count(spec.probe_id) != 0) throw std::runtime_error("injected crash");
    return atlas::run_probe(spec, token, true);
  };
  auto partial = atlas::run_fleet(fleet, interrupted);
  EXPECT_TRUE(partial.stopped_early());
  EXPECT_EQ(partial.count_outcome(atlas::ProbeOutcome::failed), 3u);
  EXPECT_GT(partial.not_run, 0u);

  // Resume with the default (healthy) runner: journaled ok records are
  // reused, the rigged failures get a fresh attempt, the rest run anew.
  atlas::ResumeReport resume_report;
  auto resumed = atlas::resume_fleet(journal, fleet, {}, &resume_report);
  EXPECT_TRUE(resume_report.journal_matched);
  EXPECT_GT(resume_report.reused, 0u);
  EXPECT_EQ(resume_report.rerun_failed, 3u);
  EXPECT_EQ(resume_report.damaged, 0u);
  EXPECT_EQ(resumed.not_run, 0u);
  EXPECT_EQ(resumed.records.size(), fleet.size());

  // Byte-identical to the uninterrupted run, through both export paths.
  EXPECT_EQ(report::run_to_jsonl(resumed), baseline_jsonl);
  EXPECT_EQ(report::html_report(resumed), baseline_html);

  // A resumed run keeps journaling: the journal now covers the whole fleet
  // and can seed another resume that re-runs nothing.
  atlas::ResumeReport second;
  auto again = atlas::resume_fleet(journal, fleet, {}, &second);
  EXPECT_EQ(second.reused, fleet.size());
  EXPECT_EQ(second.rerun_failed, 0u);
  EXPECT_EQ(report::run_to_jsonl(again), baseline_jsonl);
  std::remove(journal.c_str());
}

TEST(Journal, TruncatedFinalLineIsSalvaged) {
  auto fleet = study_fleet();
  std::string journal = testing::TempDir() + "truncated.journal";
  atlas::MeasurementOptions options;
  options.journal_path = journal;
  auto baseline = atlas::run_fleet(fleet, options);

  // A crash mid-append leaves a partial final line (no trailing newline).
  std::string text = read_file(journal);
  ASSERT_FALSE(text.empty());
  text.resize(text.size() - 25);
  write_file(journal, text);

  auto loaded = atlas::load_journal(journal);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.damaged, 1u);
  EXPECT_EQ(loaded.records.size(), fleet.size() - 1);
  ASSERT_FALSE(loaded.warnings.empty());

  // Resume salvages everything intact and re-runs only the lost probe.
  atlas::ResumeReport resume_report;
  auto resumed = atlas::resume_fleet(journal, fleet, {}, &resume_report);
  EXPECT_TRUE(resume_report.journal_matched);
  EXPECT_EQ(resume_report.reused, fleet.size() - 1);
  EXPECT_EQ(resume_report.damaged, 1u);
  EXPECT_EQ(report::run_to_jsonl(resumed), report::run_to_jsonl(baseline));
  std::remove(journal.c_str());
}

TEST(Journal, CorruptedChecksumIsDetected) {
  auto fleet = study_fleet();
  std::string journal = testing::TempDir() + "corrupt.journal";
  atlas::MeasurementOptions options;
  options.journal_path = journal;
  auto baseline = atlas::run_fleet(fleet, options);

  // Bit-rot inside the second record's body: its checksum no longer matches.
  std::string text = read_file(journal);
  std::size_t line2 = text.find('\n', text.find('\n') + 1) + 1;
  std::size_t field = text.find("\"probe_id\":", line2);
  ASSERT_NE(field, std::string::npos);
  std::size_t digit = field + std::string("\"probe_id\":").size();
  text[digit] = text[digit] == '9' ? '8' : static_cast<char>(text[digit] + 1);
  write_file(journal, text);

  auto loaded = atlas::load_journal(journal);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.damaged, 1u);
  EXPECT_EQ(loaded.records.size(), fleet.size() - 1);
  ASSERT_FALSE(loaded.warnings.empty());
  EXPECT_NE(loaded.warnings[0].find("checksum"), std::string::npos);

  // The damaged record is simply re-measured on resume.
  atlas::ResumeReport resume_report;
  auto resumed = atlas::resume_fleet(journal, fleet, {}, &resume_report);
  EXPECT_EQ(resume_report.reused, fleet.size() - 1);
  EXPECT_EQ(report::run_to_jsonl(resumed), report::run_to_jsonl(baseline));
  std::remove(journal.c_str());
}

TEST(Journal, MismatchedFleetInvalidatesJournal) {
  auto fleet_a = study_fleet(7);
  auto fleet_b = study_fleet(8);
  ASSERT_NE(atlas::fleet_fingerprint(fleet_a), atlas::fleet_fingerprint(fleet_b));

  std::string journal = testing::TempDir() + "mismatch.journal";
  atlas::MeasurementOptions options;
  options.journal_path = journal;
  atlas::run_fleet(fleet_a, options);

  // Resuming a *different* study from this journal must not mix records.
  auto baseline_b = atlas::run_fleet(fleet_b, {});
  atlas::ResumeReport resume_report;
  auto resumed = atlas::resume_fleet(journal, fleet_b, {}, &resume_report);
  EXPECT_FALSE(resume_report.journal_matched);
  EXPECT_EQ(resume_report.reused, 0u);
  ASSERT_FALSE(resume_report.warnings.empty());
  EXPECT_NE(resume_report.warnings[0].find("fingerprint"), std::string::npos);
  EXPECT_EQ(report::run_to_jsonl(resumed), report::run_to_jsonl(baseline_b));
  std::remove(journal.c_str());
}

TEST(Journal, MissingJournalRunsFromScratch) {
  auto fleet = study_fleet();
  std::string journal = testing::TempDir() + "does_not_exist.journal";
  std::remove(journal.c_str());

  atlas::ResumeReport resume_report;
  auto resumed = atlas::resume_fleet(journal, fleet, {}, &resume_report);
  EXPECT_FALSE(resume_report.journal_matched);
  EXPECT_EQ(resume_report.reused, 0u);
  ASSERT_FALSE(resume_report.warnings.empty());
  EXPECT_EQ(resumed.records.size(), fleet.size());

  // The path is adopted for checkpointing, so the run is now resumable.
  auto loaded = atlas::load_journal(journal);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.records.size(), fleet.size());
  std::remove(journal.c_str());
}

TEST(ResultsIo, SupervisionFieldsRoundTripThroughJsonl) {
  auto fleet = study_fleet();
  atlas::MeasurementRun run;
  run.records.push_back(atlas::run_probe(fleet[0], true));

  atlas::ProbeRecord failed;
  failed.probe_id = 4242;
  failed.org = {"X (AS1)", 1, "US"};
  failed.outcome = atlas::ProbeOutcome::failed;
  failed.error = "injected crash";
  for (auto kind : resolvers::all_public_resolvers())
    failed.verdict.detection.per_resolver[static_cast<std::size_t>(kind)].kind = kind;
  run.records.push_back(failed);

  atlas::ProbeRecord late = run.records[0];
  late.probe_id = 4243;
  late.outcome = atlas::ProbeOutcome::deadline_exceeded;
  late.error = "probe exceeded its deadline of 50ms";
  late.verdict.skipped_stages = 0b100;
  run.records.push_back(late);

  std::string jsonl = report::run_to_jsonl(run);
  // Clean records carry no supervision noise (old exports stay identical).
  std::size_t first_newline = jsonl.find('\n');
  EXPECT_EQ(jsonl.substr(0, first_newline).find("outcome"), std::string::npos);

  auto loaded = report::run_from_jsonl(jsonl);
  ASSERT_TRUE(loaded.errors.empty());
  ASSERT_EQ(loaded.run.records.size(), 3u);
  EXPECT_EQ(loaded.run.records[0].outcome, atlas::ProbeOutcome::ok);
  EXPECT_EQ(loaded.run.records[1].outcome, atlas::ProbeOutcome::failed);
  EXPECT_EQ(loaded.run.records[1].error, "injected crash");
  EXPECT_EQ(loaded.run.records[2].outcome, atlas::ProbeOutcome::deadline_exceeded);
  EXPECT_EQ(loaded.run.records[2].verdict.skipped_stages, 0b100);
  // The reload reproduces the same bytes.
  EXPECT_EQ(report::run_to_jsonl(loaded.run), jsonl);
}

}  // namespace
}  // namespace dnslocate
