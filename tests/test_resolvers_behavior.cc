// Resolver behaviour tests: software profiles, CHAOS answers, the dynamic
// whoami/myaddr names, filtering resolvers, and the four public-resolver
// personalities (Table 1 formats).
#include <gtest/gtest.h>

#include "dnswire/debug_queries.h"
#include "resolvers/public_resolver.h"
#include "resolvers/resolver_behavior.h"
#include "resolvers/special_names.h"

namespace dnslocate::resolvers {
namespace {

dnswire::DnsName name(const char* text) { return *dnswire::DnsName::parse(text); }

QueryContext context() {
  QueryContext ctx;
  ctx.client = *netbase::IpAddress::parse("203.0.113.9");
  ctx.server_ip = *netbase::IpAddress::parse("198.51.100.2");
  return ctx;
}

std::optional<std::string> txt_of(const std::optional<dnswire::Message>& response) {
  if (!response) return std::nullopt;
  return response->first_txt();
}

TEST(SoftwareProfile, CatalogStringsMatchTable5Classes) {
  EXPECT_EQ(*dnsmasq("2.85").version_bind, "dnsmasq-2.85");
  EXPECT_EQ(*pihole("2.87").version_bind, "dnsmasq-pi-hole-2.87");
  EXPECT_EQ(*unbound("1.9.0").version_bind, "unbound 1.9.0");
  EXPECT_EQ(*bind9("9.16.15").version_bind, "9.16.15");
  EXPECT_EQ(*powerdns("4.1.11").version_bind, "PowerDNS Recursor 4.1.11");
  EXPECT_EQ(*windows_dns().version_bind, "Windows NS");
  EXPECT_EQ(*custom_string("huuh?").version_bind, "huuh?");
  EXPECT_EQ(xdns().version_bind->substr(0, 7), "dnsmasq");  // §5: XDNS is dnsmasq-based
  EXPECT_FALSE(chaos_refuser("x", dnswire::Rcode::NOTIMP).version_bind.has_value());
  EXPECT_TRUE(chaos_forwarder("x").forwards_unknown_chaos);
}

TEST(ResolverBehavior, AnswersVersionBindFromProfile) {
  ResolverConfig config;
  config.software = unbound("1.13.1");
  ResolverBehavior resolver(config);
  auto response =
      resolver.respond(dnswire::make_chaos_query(1, dnswire::version_bind()), context());
  EXPECT_EQ(txt_of(response), "unbound 1.13.1");
}

TEST(ResolverBehavior, RefusesChaosWhenProfileHasNoString) {
  ResolverConfig config;
  config.software = chaos_refuser("quiet", dnswire::Rcode::NOTIMP);
  ResolverBehavior resolver(config);
  auto response =
      resolver.respond(dnswire::make_chaos_query(1, dnswire::version_bind()), context());
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->rcode(), dnswire::Rcode::NOTIMP);
}

TEST(ResolverBehavior, HostnameBindAliasesIdServer) {
  ResolverConfig config;
  config.software = unbound("1.9.0", "my-identity");
  ResolverBehavior resolver(config);
  EXPECT_EQ(txt_of(resolver.respond(dnswire::make_chaos_query(1, dnswire::id_server()),
                                    context())),
            "my-identity");
  EXPECT_EQ(txt_of(resolver.respond(dnswire::make_chaos_query(2, dnswire::hostname_bind()),
                                    context())),
            "my-identity");
}

TEST(ResolverBehavior, UnknownChaosNameIsRefused) {
  ResolverConfig config;
  config.software = dnsmasq();
  ResolverBehavior resolver(config);
  auto response =
      resolver.respond(dnswire::make_chaos_query(1, name("authors.bind")), context());
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->rcode(), dnswire::Rcode::REFUSED);
}

TEST(ResolverBehavior, AnswersMyaddrWithOwnEgress) {
  ResolverConfig config;
  config.software = bind9();
  config.egress_v4 = *netbase::IpAddress::parse("198.51.100.77");
  ResolverBehavior resolver(config);
  auto query = dnswire::make_query(1, google_myaddr(), dnswire::RecordType::TXT);
  EXPECT_EQ(txt_of(resolver.respond(query, context())), "198.51.100.77");
}

TEST(ResolverBehavior, AnswersWhoamiWithEgressPerFamily) {
  ResolverConfig config;
  config.software = bind9();
  config.egress_v4 = *netbase::IpAddress::parse("198.51.100.77");
  config.egress_v6 = *netbase::IpAddress::parse("2a00:77::77");
  ResolverBehavior resolver(config);

  auto a = resolver.respond(dnswire::make_query(1, whoami_akamai(), dnswire::RecordType::A),
                            context());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first_address()->to_string(), "198.51.100.77");

  auto aaaa = resolver.respond(
      dnswire::make_query(2, whoami_akamai(), dnswire::RecordType::AAAA), context());
  ASSERT_TRUE(aaaa.has_value());
  EXPECT_EQ(aaaa->first_address()->to_string(), "2a00:77::77");
}

TEST(ResolverBehavior, ResolvesFromZones) {
  ResolverConfig config;
  config.software = bind9();
  ResolverBehavior resolver(config);
  auto response = resolver.respond(
      dnswire::make_query(1, name("example.com"), dnswire::RecordType::A), context());
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->rcode(), dnswire::Rcode::NOERROR);
  EXPECT_TRUE(response->first_address().has_value());
  EXPECT_TRUE(response->flags.qr);
  EXPECT_TRUE(response->flags.ra);
}

TEST(ResolverBehavior, NxdomainForUnknownNames) {
  ResolverConfig config;
  config.software = bind9();
  ResolverBehavior resolver(config);
  auto response = resolver.respond(
      dnswire::make_query(1, name("no-such-name.test"), dnswire::RecordType::A), context());
  EXPECT_EQ(response->rcode(), dnswire::Rcode::NXDOMAIN);
}

TEST(ResolverBehavior, BlockAllRefusesEverythingOrdinary) {
  ResolverConfig config;
  config.software = chaos_refuser("filter", dnswire::Rcode::NOTIMP);
  config.block_all_rcode = dnswire::Rcode::REFUSED;
  config.egress_v4 = *netbase::IpAddress::parse("198.51.100.88");
  ResolverBehavior resolver(config);
  // Ordinary resolution, whoami, and myaddr all blocked...
  EXPECT_EQ(resolver
                .respond(dnswire::make_query(1, name("example.com"), dnswire::RecordType::A),
                         context())
                ->rcode(),
            dnswire::Rcode::REFUSED);
  EXPECT_EQ(resolver
                .respond(dnswire::make_query(2, whoami_akamai(), dnswire::RecordType::A),
                         context())
                ->rcode(),
            dnswire::Rcode::REFUSED);
  // ...but CHAOS still follows the profile (NOTIMP here).
  EXPECT_EQ(resolver.respond(dnswire::make_chaos_query(3, dnswire::version_bind()), context())
                ->rcode(),
            dnswire::Rcode::NOTIMP);
}

TEST(ResolverBehavior, NonQueryOpcodesAreNotimp) {
  ResolverConfig config;
  config.software = bind9();
  ResolverBehavior resolver(config);
  auto query = dnswire::make_query(1, name("example.com"), dnswire::RecordType::A);
  query.flags.opcode = dnswire::Opcode::UPDATE;
  EXPECT_EQ(resolver.respond(query, context())->rcode(), dnswire::Rcode::NOTIMP);
}

TEST(ResolverBehavior, QuestionlessQueryIsFormerr) {
  ResolverConfig config;
  config.software = bind9();
  ResolverBehavior resolver(config);
  dnswire::Message query;
  query.id = 9;
  EXPECT_EQ(resolver.respond(query, context())->rcode(), dnswire::Rcode::FORMERR);
}

// --- public resolver personalities ---

TEST(PublicResolver, CloudflareIdServerIsUppercaseIata) {
  PublicResolverBehavior cloudflare(PublicResolverKind::cloudflare, 0, 0);
  auto response =
      cloudflare.respond(dnswire::make_chaos_query(1, dnswire::id_server()), context());
  EXPECT_EQ(txt_of(response), "IAD");
  EXPECT_EQ(cloudflare.expected_location_answer(), "IAD");
  // version.bind is refused (only Quad9 answers it among the four, §3.2).
  EXPECT_EQ(cloudflare.respond(dnswire::make_chaos_query(2, dnswire::version_bind()), context())
                ->rcode(),
            dnswire::Rcode::REFUSED);
}

TEST(PublicResolver, Quad9AnswersBothDebugQueries) {
  PublicResolverBehavior quad9(PublicResolverKind::quad9, 0, 0);
  auto id = txt_of(quad9.respond(dnswire::make_chaos_query(1, dnswire::id_server()), context()));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, "res100.iad.rrdns.pch.net");
  auto version =
      txt_of(quad9.respond(dnswire::make_chaos_query(2, dnswire::version_bind()), context()));
  EXPECT_EQ(version, "Q9-P-9.16.15");
}

TEST(PublicResolver, GoogleMyaddrReturnsGoogleEgress) {
  PublicResolverBehavior google(PublicResolverKind::google, 3, 1);
  auto response = google.respond(
      dnswire::make_query(1, google_myaddr(), dnswire::RecordType::TXT), context());
  auto txt = txt_of(response);
  ASSERT_TRUE(txt.has_value());
  auto addr = netbase::IpAddress::parse(*txt);
  ASSERT_TRUE(addr.has_value());
  bool in_google = false;
  for (const auto& prefix :
       PublicResolverSpec::get(PublicResolverKind::google).egress_prefixes)
    if (prefix.contains(*addr)) in_google = true;
  EXPECT_TRUE(in_google) << *txt;
  // Google answers CHAOS with NOTIMP.
  EXPECT_EQ(google.respond(dnswire::make_chaos_query(2, dnswire::version_bind()), context())
                ->rcode(),
            dnswire::Rcode::NOTIMP);
}

TEST(PublicResolver, OpenDnsDebugOnlyAnswersViaOpenDns) {
  PublicResolverBehavior opendns(PublicResolverKind::opendns, 0, 4);
  auto via_opendns = txt_of(opendns.respond(
      dnswire::make_query(1, opendns_debug(), dnswire::RecordType::TXT), context()));
  EXPECT_EQ(via_opendns, "server m84.iad");

  PublicResolverBehavior google(PublicResolverKind::google, 0, 0);
  auto via_google = google.respond(
      dnswire::make_query(2, opendns_debug(), dnswire::RecordType::TXT), context());
  ASSERT_TRUE(via_google.has_value());
  EXPECT_EQ(via_google->rcode(), dnswire::Rcode::NXDOMAIN);
}

TEST(PublicResolver, SitesVaryByIndex) {
  PublicResolverBehavior iad(PublicResolverKind::cloudflare, 0, 0);
  PublicResolverBehavior sfo(PublicResolverKind::cloudflare, 1, 0);
  EXPECT_NE(iad.expected_location_answer(), sfo.expected_location_answer());
  EXPECT_EQ(iad.site(), "iad");
  EXPECT_EQ(sfo.site(), "sfo");
}

TEST(PublicResolver, SpecsHaveRealServiceAddresses) {
  const auto& cf = PublicResolverSpec::get(PublicResolverKind::cloudflare);
  EXPECT_EQ(cf.service_v4[0].to_string(), "1.1.1.1");
  EXPECT_EQ(cf.service_v6[0].to_string(), "2606:4700:4700::1111");
  const auto& g = PublicResolverSpec::get(PublicResolverKind::google);
  EXPECT_EQ(g.service_v4[0].to_string(), "8.8.8.8");
  const auto& q9 = PublicResolverSpec::get(PublicResolverKind::quad9);
  EXPECT_EQ(q9.service_v4[0].to_string(), "9.9.9.9");
  const auto& od = PublicResolverSpec::get(PublicResolverKind::opendns);
  EXPECT_EQ(od.service_v4[0].to_string(), "208.67.222.222");
  for (auto kind : all_public_resolvers()) {
    const auto& spec = PublicResolverSpec::get(kind);
    EXPECT_FALSE(spec.egress_prefixes.empty());
    for (const auto& addr : spec.service_v4) EXPECT_TRUE(addr.is_v4());
    for (const auto& addr : spec.service_v6) EXPECT_TRUE(addr.is_v6());
  }
}

TEST(PublicResolver, KnownSiteValidation) {
  EXPECT_TRUE(is_known_site("iad"));
  EXPECT_TRUE(is_known_site("IAD"));
  EXPECT_FALSE(is_known_site("zzz"));
  EXPECT_FALSE(is_known_site("ia"));
  EXPECT_FALSE(is_known_site("iadx"));
}

}  // namespace
}  // namespace dnslocate::resolvers
