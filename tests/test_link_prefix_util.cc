// Link bandwidth/queueing model and prefix subnetting utilities, plus
// response-acceptance checks.
#include <gtest/gtest.h>

#include "dnswire/message.h"
#include "netbase/prefix.h"
#include "simnet/simulator.h"

namespace dnslocate {
namespace {

using netbase::IpAddress;
using netbase::Prefix;

// ---------- prefix utilities ----------

TEST(PrefixUtil, SplitV4) {
  auto halves = netbase::split(*Prefix::parse("10.0.0.0/8"));
  ASSERT_TRUE(halves.has_value());
  EXPECT_EQ(halves->first.to_string(), "10.0.0.0/9");
  EXPECT_EQ(halves->second.to_string(), "10.128.0.0/9");
  // The halves tile the parent exactly.
  EXPECT_TRUE((*Prefix::parse("10.0.0.0/8")).contains(halves->first));
  EXPECT_TRUE((*Prefix::parse("10.0.0.0/8")).contains(halves->second));
  EXPECT_FALSE(halves->first.contains(halves->second.address()));
}

TEST(PrefixUtil, SplitV6AndHostPrefixes) {
  auto halves = netbase::split(*Prefix::parse("2001:db8::/32"));
  ASSERT_TRUE(halves.has_value());
  EXPECT_EQ(halves->first.to_string(), "2001:db8::/33");
  EXPECT_EQ(halves->second.to_string(), "2001:db8:8000::/33");
  EXPECT_FALSE(netbase::split(*Prefix::parse("1.2.3.4/32")).has_value());
  EXPECT_FALSE(netbase::split(*Prefix::parse("::1/128")).has_value());
}

TEST(PrefixUtil, SplitRecursesToHosts) {
  // Repeated splitting of a /24 yields 256 host prefixes.
  std::vector<Prefix> frontier{*Prefix::parse("192.0.2.0/24")};
  while (frontier.front().length() < 32) {
    std::vector<Prefix> next;
    for (const auto& prefix : frontier) {
      auto halves = netbase::split(prefix);
      ASSERT_TRUE(halves.has_value());
      next.push_back(halves->first);
      next.push_back(halves->second);
    }
    frontier = std::move(next);
  }
  EXPECT_EQ(frontier.size(), 256u);
  EXPECT_EQ(frontier.front().address().to_string(), "192.0.2.0");
  EXPECT_EQ(frontier.back().address().to_string(), "192.0.2.255");
}

TEST(PrefixUtil, NthAddress) {
  auto prefix = *Prefix::parse("192.0.2.0/24");
  EXPECT_EQ(netbase::nth_address(prefix, 0)->to_string(), "192.0.2.0");
  EXPECT_EQ(netbase::nth_address(prefix, 77)->to_string(), "192.0.2.77");
  EXPECT_EQ(netbase::nth_address(prefix, 255)->to_string(), "192.0.2.255");
  EXPECT_FALSE(netbase::nth_address(prefix, 256).has_value());

  auto v6 = *Prefix::parse("2001:db8::/64");
  EXPECT_EQ(netbase::nth_address(v6, 0x1234)->to_string(), "2001:db8::1234");
}

TEST(PrefixUtil, AddressCount) {
  EXPECT_EQ(netbase::address_count(*Prefix::parse("192.0.2.0/24")), 256u);
  EXPECT_EQ(netbase::address_count(*Prefix::parse("1.2.3.4/32")), 1u);
  EXPECT_EQ(netbase::address_count(*Prefix::parse("2001:db8::/64")), ~0ull);  // saturates
}

// ---------- response acceptance (RFC 5452-style) ----------

TEST(ResponseAcceptance, ChecksIdQuestionAndDirection) {
  auto name = *dnswire::DnsName::parse("example.com");
  auto query = dnswire::make_query(0x1234, name, dnswire::RecordType::A);
  auto good = dnswire::make_response(query);
  EXPECT_TRUE(dnswire::is_acceptable_response(query, good));

  auto wrong_id = good;
  wrong_id.id = 0x1235;
  EXPECT_FALSE(dnswire::is_acceptable_response(query, wrong_id));

  auto not_a_response = query;
  EXPECT_FALSE(dnswire::is_acceptable_response(query, not_a_response));

  auto wrong_name = good;
  wrong_name.questions[0].name = *dnswire::DnsName::parse("evil.com");
  EXPECT_FALSE(dnswire::is_acceptable_response(query, wrong_name));

  auto wrong_type = good;
  wrong_type.questions[0].type = dnswire::RecordType::AAAA;
  EXPECT_FALSE(dnswire::is_acceptable_response(query, wrong_type));

  // Case differences are fine (0x20 handled separately).
  auto case_changed = good;
  case_changed.questions[0].name = *dnswire::DnsName::parse("EXAMPLE.COM");
  EXPECT_TRUE(dnswire::is_acceptable_response(query, case_changed));
}

// ---------- link bandwidth & queueing ----------

struct SinkApp : simnet::UdpApp {
  std::vector<simnet::SimTime> arrivals;
  void on_datagram(simnet::Simulator& sim, simnet::Device&, const simnet::UdpPacket&) override {
    arrivals.push_back(sim.now());
  }
};

struct Wire {
  simnet::Simulator sim{1};
  simnet::Device& a;
  simnet::Device& b;
  SinkApp sink;
  simnet::PortId a_port;

  explicit Wire(simnet::LinkConfig config)
      : a(sim.add_device<simnet::Device>("a")), b(sim.add_device<simnet::Device>("b")) {
    auto [ap, bp] = sim.connect(a, b, config);
    (void)bp;
    a_port = ap;
    a.add_local_ip(*netbase::IpAddress::parse("10.0.0.1"));
    b.add_local_ip(*netbase::IpAddress::parse("10.0.0.2"));
    a.set_default_route(a_port);
    b.bind_udp(53, &sink);
  }

  void send(std::size_t payload_size) {
    simnet::UdpPacket packet;
    packet.src = *netbase::IpAddress::parse("10.0.0.1");
    packet.dst = *netbase::IpAddress::parse("10.0.0.2");
    packet.sport = 1;
    packet.dport = 53;
    packet.payload.assign(payload_size, 0xab);
    a.send_local(sim, packet);
  }
};

TEST(LinkBandwidth, SerializationDelayAddsUp) {
  simnet::LinkConfig config;
  config.latency = std::chrono::milliseconds(1);
  config.bandwidth_bps = 8'000'000;  // 1 byte/us
  Wire wire(config);
  wire.send(972);  // 972 + 28 header = 1000 bytes -> 1 ms serialization
  wire.sim.run_until_idle();
  ASSERT_EQ(wire.sink.arrivals.size(), 1u);
  EXPECT_EQ(wire.sink.arrivals[0], std::chrono::milliseconds(2));  // 1ms ser + 1ms prop
}

TEST(LinkBandwidth, BackToBackPacketsQueue) {
  simnet::LinkConfig config;
  config.latency = std::chrono::milliseconds(0);
  config.bandwidth_bps = 8'000'000;
  config.max_queue_delay = std::chrono::seconds(1);
  Wire wire(config);
  for (int i = 0; i < 3; ++i) wire.send(972);  // 1ms each on the wire
  wire.sim.run_until_idle();
  ASSERT_EQ(wire.sink.arrivals.size(), 3u);
  EXPECT_EQ(wire.sink.arrivals[0], std::chrono::milliseconds(1));
  EXPECT_EQ(wire.sink.arrivals[1], std::chrono::milliseconds(2));
  EXPECT_EQ(wire.sink.arrivals[2], std::chrono::milliseconds(3));
}

TEST(LinkBandwidth, QueueOverflowTailDrops) {
  simnet::LinkConfig config;
  config.latency = std::chrono::milliseconds(0);
  config.bandwidth_bps = 8'000'000;
  config.max_queue_delay = std::chrono::microseconds(2500);  // fits ~2 queued + 1 serializing
  Wire wire(config);
  simnet::TraceSink trace;
  wire.sim.set_trace(&trace);
  for (int i = 0; i < 10; ++i) wire.send(972);
  wire.sim.run_until_idle();
  EXPECT_LT(wire.sink.arrivals.size(), 10u);
  EXPECT_GE(wire.sink.arrivals.size(), 3u);
  EXPECT_GT(trace.count(simnet::TraceEvent::dropped_loss), 0u);
}

TEST(LinkBandwidth, ZeroBandwidthMeansNoSerialization) {
  simnet::LinkConfig config;
  config.latency = std::chrono::milliseconds(1);
  Wire wire(config);
  for (int i = 0; i < 5; ++i) wire.send(1400);
  wire.sim.run_until_idle();
  ASSERT_EQ(wire.sink.arrivals.size(), 5u);
  for (const auto& at : wire.sink.arrivals) EXPECT_EQ(at, std::chrono::milliseconds(1));
}

}  // namespace
}  // namespace dnslocate
