// Ablation A4: DNS-over-TLS vs the interceptors (§6's open question).
//
// The paper: "DoH and some configurations of DoT will prevent interception
// from occurring altogether, but the 'opportunistic privacy profile' of DoT
// disables client certificate validation, so this configuration could allow
// interception." We run the location query over UDP/53, strict-profile DoT,
// and opportunistic-profile DoT across four deployments and tabulate what
// each client population experiences.
#include "atlas/scenario.h"
#include "bench_util.h"
#include "core/dot_probe.h"
#include "report/table.h"

using namespace dnslocate;

int main() {
  bench::heading("Ablation A4: DoT privacy profiles vs interceptor deployments");

  struct Case {
    std::string label;
    atlas::ScenarioConfig config;
    core::DotFinding expected;
  };
  std::vector<Case> cases(4);
  cases[0].label = "no interception";
  cases[0].expected = core::DotFinding::not_intercepted;

  cases[1].label = "ISP interceptor, UDP/53 only";
  cases[1].config.isp_policy.middlebox_enabled = true;
  cases[1].expected = core::DotFinding::dot_escapes;

  cases[2].label = "ISP interceptor, also DNATs port 853";
  cases[2].config.isp_policy.middlebox_enabled = true;
  cases[2].config.isp_policy.dot_action = isp::DotAction::divert;
  cases[2].expected = core::DotFinding::opportunistic_hijacked;

  cases[3].label = "ISP interceptor, blocks port 853";
  cases[3].config.isp_policy.middlebox_enabled = true;
  cases[3].config.isp_policy.dot_action = isp::DotAction::block;
  cases[3].expected = core::DotFinding::dot_blocked;

  report::TextTable table({"Deployment", "UDP/53", "DoT strict", "DoT opportunistic",
                           "Finding (Cloudflare probe)"});
  bool all_expected = true;
  for (auto& c : cases) {
    atlas::Scenario scenario(c.config);
    core::DotProber::Config prober_config;
    prober_config.query.timeout = std::chrono::milliseconds(1500);
    core::DotProber prober(prober_config);
    auto report = prober.run(scenario.transport());
    const auto& cf = report.per_resolver.at(resolvers::PublicResolverKind::cloudflare);
    table.add_row({c.label,
                   cf.channels.at(simnet::Channel::udp).display,
                   cf.channels.at(simnet::Channel::dot_strict).display,
                   cf.channels.at(simnet::Channel::dot_opportunistic).display,
                   std::string(to_string(cf.finding))});
    if (cf.finding != c.expected) all_expected = false;
    // The finding must be uniform across all four resolvers here.
    for (const auto& [kind, resolver_report] : report.per_resolver)
      if (resolver_report.finding != c.expected) all_expected = false;
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\n§6 reproduced: strict DoT fails closed under diversion (protected),\n");
  std::printf("opportunistic DoT is hijacked exactly like UDP/53: %s\n",
              all_expected ? "pass" : "FAIL");
  return all_expected ? 0 : 1;
}
