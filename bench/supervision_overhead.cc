// Supervision overhead: what does crash tolerance cost a healthy campaign?
//
// The supervised fleet runner wraps every probe in a try/catch, a deadline
// cancellation token, and (optionally) a checksummed journal append. On a
// fleet where nothing crashes this machinery must be near-free.
//
// Methodology: shared runners are noisy enough that comparing two
// independent minima cannot resolve a few percent — the quiet-machine floor
// itself drifts more than that between runs. Instead the check times
// back-to-back bare/supervised pairs (order alternating to cancel drift),
// computes the overhead ratio within each pair, and takes the median across
// pairs: spikes hit individual pairs hard but move the median very little.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "report/aggregate.h"

using namespace dnslocate;

namespace {

using bench::median;
using bench::run_ms;
using bench::same_matrix;

}  // namespace

int main() {
  constexpr double kScale = 0.25;
  constexpr int kPairs = 11;

  bench::heading("Supervision overhead: bare vs supervised fleet execution");

  atlas::FleetConfig config;
  config.scale = kScale;
  auto fleet = atlas::generate_fleet(config);
  std::printf("[fleet] %zu probes, scale=%.2f, median of %d alternating pairs\n",
              fleet.size(), kScale, kPairs);

  atlas::MeasurementOptions bare;
  bare.threads = 0;

  const std::string journal_path = "/tmp/dnslocate_supervision_overhead.journal";
  atlas::MeasurementOptions supervised;
  supervised.threads = 0;
  supervised.probe_deadline = std::chrono::minutes(10);  // armed, never fires
  supervised.journal_path = journal_path;

  atlas::MeasurementRun bare_run, supervised_run;
  std::vector<double> ratios, bare_times, supervised_times;
  for (int pair = 0; pair < kPairs; ++pair) {
    double bare_ms = 0.0, supervised_ms = 0.0;
    if (pair % 2 == 0) {
      bare_ms = run_ms(fleet, bare, &bare_run);
      supervised_ms = run_ms(fleet, supervised, &supervised_run);
    } else {
      supervised_ms = run_ms(fleet, supervised, &supervised_run);
      bare_ms = run_ms(fleet, bare, &bare_run);
    }
    std::remove(journal_path.c_str());
    bare_times.push_back(bare_ms);
    supervised_times.push_back(supervised_ms);
    ratios.push_back((supervised_ms - bare_ms) / bare_ms);
  }

  double overhead = median(ratios);
  std::printf("\nbare:       %.1f ms (median of %d)\n", median(bare_times), kPairs);
  std::printf("supervised: %.1f ms (median of %d; deadline armed + journal)\n",
              median(supervised_times), kPairs);
  std::printf("overhead:   %+.2f%% (median of per-pair ratios)\n", overhead * 100.0);

  bench::heading("checks");

  // 1. Supervision must not change a single verdict on a healthy fleet.
  bool identical =
      same_matrix(report::accuracy_matrix(bare_run), report::accuracy_matrix(supervised_run));
  std::printf("identical accuracy matrix with supervision on: %s\n",
              identical ? "pass" : "FAIL");

  // 2. Every probe still completed ok (the deadline never fired).
  bool all_ok = supervised_run.count_outcome(atlas::ProbeOutcome::ok) ==
                    supervised_run.records.size() &&
                !supervised_run.stopped_early();
  std::printf("all probes ok under supervision: %s\n", all_ok ? "pass" : "FAIL");

  // 3. The machinery costs less than 5% wall clock.
  bool cheap = overhead < 0.05;
  std::printf("supervision overhead under 5%%: %s\n", cheap ? "pass" : "FAIL");

  auto census = report::run_census(supervised_run);
  std::printf("\n%s", report::render_run_census(census).render().c_str());

  bool ok = identical && all_ok && cheap;
  std::printf("\noverall: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
