// P1: microbenchmarks for the substrates — DNS codec, name handling, LPM
// routing, NAT translation, single queries through the simulator, and the
// full per-probe pipeline. Establishes that full-fleet runs stay cheap.
//
// Usage: perf_micro [--smoke] [--json PATH] [google-benchmark flags]
//   Without --smoke this is a normal google-benchmark binary.
//   --smoke measures the exchange-kernel overhead (CI writes it to
//   BENCH_exchange.json): every simulated query now runs through
//   core::run_exchange behind the ExchangeChannel seam, and this mode times
//   it against a hand-inlined copy of the pre-kernel sequential loop.
//   Back-to-back A/B pairs on the same process cancel runner drift, so the
//   paired ratio gates (<= 1.10x) even on shared machines; the absolute
//   nanoseconds are informational against the committed pre-refactor
//   baseline (bench/baselines/BENCH_exchange_baseline.json).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>

#include "atlas/fleet.h"
#include "atlas/scenario.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "dnswire/debug_queries.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "dnswire/message.h"
#include "jsonio/json.h"
#include "netbase/lpm.h"
#include "obs/clock.h"
#include "obs/span.h"
#include "simnet/rng.h"

using namespace dnslocate;

namespace {

dnswire::Message typical_response() {
  auto query = dnswire::make_query(0x1234, *dnswire::DnsName::parse("www.example.com"),
                                   dnswire::RecordType::A);
  auto response = dnswire::make_response(query);
  response.answers.push_back(dnswire::make_a(*dnswire::DnsName::parse("www.example.com"),
                                             netbase::Ipv4Address(93, 184, 216, 34)));
  response.answers.push_back(dnswire::make_cname(*dnswire::DnsName::parse("www.example.com"),
                                                 *dnswire::DnsName::parse("example.com")));
  return response;
}

void BM_EncodeMessage(benchmark::State& state) {
  auto message = typical_response();
  for (auto _ : state) benchmark::DoNotOptimize(dnswire::encode_message(message));
}
BENCHMARK(BM_EncodeMessage);

void BM_DecodeMessage(benchmark::State& state) {
  auto wire = dnswire::encode_message(typical_response());
  for (auto _ : state) benchmark::DoNotOptimize(dnswire::decode_message(wire));
}
BENCHMARK(BM_DecodeMessage);

void BM_DecodeUncompressed(benchmark::State& state) {
  auto wire = dnswire::encode_message(typical_response(), {.compress_names = false});
  for (auto _ : state) benchmark::DoNotOptimize(dnswire::decode_message(wire));
}
BENCHMARK(BM_DecodeUncompressed);

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(dnswire::DnsName::parse("o-o.myaddr.l.google.com"));
}
BENCHMARK(BM_NameParse);

void BM_LpmLookup(benchmark::State& state) {
  netbase::LpmTable<int> table;
  simnet::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto addr = netbase::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
    table.insert(netbase::Prefix(netbase::IpAddress(addr), 8u + static_cast<unsigned>(i) % 17u), i);
  }
  std::vector<netbase::IpAddress> probes;
  for (int i = 0; i < 64; ++i)
    probes.emplace_back(netbase::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64())));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(probes[i++ % probes.size()]));
  }
}
BENCHMARK(BM_LpmLookup);

void BM_SimQueryRoundTrip(benchmark::State& state) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  const auto& quad9 = resolvers::PublicResolverSpec::get(resolvers::PublicResolverKind::quad9);
  netbase::Endpoint server{quad9.service_v4[0], netbase::kDnsPort};
  for (auto _ : state) {
    query.id++;
    benchmark::DoNotOptimize(scenario.transport().query(server, query));
  }
}
BENCHMARK(BM_SimQueryRoundTrip);

void BM_FullProbePipeline(benchmark::State& state) {
  // Scenario construction + the complete localization pipeline (the unit of
  // work the fleet runs ~9,650 times).
  for (auto _ : state) {
    atlas::ScenarioConfig config;
    config.isp_policy.middlebox_enabled = true;
    atlas::Scenario scenario(config);
    core::LocalizationPipeline pipeline(scenario.pipeline_config());
    benchmark::DoNotOptimize(pipeline.run(scenario.transport()));
  }
}
BENCHMARK(BM_FullProbePipeline);

void BM_JsonDumpParse(benchmark::State& state) {
  jsonio::Object object;
  object["probe_id"] = 1234;
  object["org"] = "Comcast (AS7922)";
  object["location"] = "cpe";
  jsonio::Array kinds;
  for (int i = 0; i < 4; ++i) {
    jsonio::Object entry;
    entry["tested_v4"] = true;
    entry["intercepted_v4"] = (i % 2) == 0;
    kinds.push_back(jsonio::Value(std::move(entry)));
  }
  object["detection"] = std::move(kinds);
  jsonio::Value value(std::move(object));
  for (auto _ : state) {
    std::string text = value.dump();
    benchmark::DoNotOptimize(jsonio::parse(text));
  }
}
BENCHMARK(BM_JsonDumpParse);

void BM_FleetGeneration(benchmark::State& state) {
  for (auto _ : state) {
    atlas::FleetConfig config;
    config.scale = 0.1;
    benchmark::DoNotOptimize(atlas::generate_fleet(config));
  }
}
BENCHMARK(BM_FleetGeneration);

// ---------------------------------------------------------------------------
// Exchange-kernel overhead smoke (--smoke): every transport now delegates
// retry/acceptance/arbitration to core::run_exchange behind the
// ExchangeChannel seam. This measures what that seam costs per exchange by
// pairing it against a hand-inlined copy of the pre-kernel sequential loop.
// bench/ sits outside dnslint's src/ scope, so this deliberate second copy
// of the acceptance logic is legal here — it exists only as the A/B
// reference and must not migrate into src/.

/// Simulated-time observability clock, as the real transport installs one
/// per query (part of the faithful per-query cost below).
class InlineSimClock final : public obs::ClockSource {
 public:
  explicit InlineSimClock(const simnet::Simulator& sim) : sim_(sim) {}
  [[nodiscard]] std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(sim_.now().count());
  }

 private:
  const simnet::Simulator& sim_;
};

/// The pre-kernel SimTransport attempt loop, inlined: bind an ephemeral
/// port, inject the datagram, step the simulator to the timeout horizon,
/// and apply the RFC 5452 accept/dedup/arbitrate sequence directly in the
/// datagram callback — no channel virtuals, no ledger, no policy driver.
/// The per-query scaffolding the old transport also paid for (scoped
/// simulated clock, tracing spans, a fresh mutable copy of the query, fresh
/// arbitration state, telemetry recording) is reproduced here: the kernel
/// path pays for all of it too, so leaving it out would bill it to the seam.
class InlineSimExchange final : private simnet::UdpApp {
 public:
  InlineSimExchange(simnet::Simulator& sim, simnet::Device& host,
                    const netbase::Endpoint& server)
      : sim_(sim), host_(host), server_(server) {}

  core::QueryResult run(const dnswire::Message& message, std::chrono::milliseconds timeout) {
    InlineSimClock clock(sim_);
    obs::ScopedClock clock_scope(&clock);
    obs::Span query_span("transport/query");
    dnswire::Message attempt_message = message;
    core::RetryTelemetry telemetry;
    sent_ = &attempt_message;
    result_ = core::QueryResult{};
    seen_ = decltype(seen_){};
    deadline_passed_ = false;

    obs::Span attempt_span("transport/attempt");
    port_ = next_port_++;
    if (next_port_ < 50000) next_port_ = 50000;
    host_.bind_udp(port_, this);
    auto source = host_.local_ip(server_.address.family());
    if (source) {
      simnet::UdpPacket packet;
      packet.src = *source;
      packet.dst = server_.address;
      packet.sport = port_;
      packet.dport = server_.port;
      packet.payload = dnswire::encode_message(attempt_message);
      packet.trace_id = sim_.next_trace_id();
      host_.send_local(sim_, std::move(packet));
    }
    bool* flag = &deadline_passed_;
    sim_.schedule(std::chrono::duration_cast<simnet::SimDuration>(timeout),
                  [flag]() { *flag = true; });
    while (!deadline_passed_ && sim_.step()) {
    }
    host_.unbind_udp(port_);
    sent_ = nullptr;
    telemetry.attempts = 1;
    if (!result_.answered()) ++telemetry.timeouts;
    result_.retry = telemetry;
    telemetry_.note(result_);
    core::note_transport_metrics(result_);
    return std::move(result_);
  }

 private:
  static std::uint64_t fnv(const std::uint8_t* data, std::size_t size) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) h = (h ^ data[i]) * 0x100000001b3ull;
    return h;
  }

  static std::vector<std::uint8_t> endpoint_key(const netbase::Endpoint& endpoint) {
    std::vector<std::uint8_t> key;
    if (endpoint.address.is_v4()) {
      key.push_back(4);
      auto bytes = endpoint.address.v4().to_bytes();
      key.insert(key.end(), bytes.begin(), bytes.end());
    } else {
      key.push_back(6);
      const auto& bytes = endpoint.address.v6().bytes();
      key.insert(key.end(), bytes.begin(), bytes.end());
    }
    key.push_back(static_cast<std::uint8_t>(endpoint.port >> 8));
    key.push_back(static_cast<std::uint8_t>(endpoint.port & 0xff));
    return key;
  }

  void on_datagram(simnet::Simulator&, simnet::Device&,
                   const simnet::UdpPacket& packet) override {
    if (packet.dport != port_) return;
    if (packet.kind == simnet::PacketKind::icmp_ttl_exceeded) return;
    auto response = dnswire::decode_message({packet.payload.data(), packet.payload.size()});
    if (!response) {
      ++result_.arbitration.malformed;
      return;
    }
    if (packet.src_endpoint() != server_) {
      ++result_.arbitration.spoof_suspected;
      return;
    }
    if (!dnswire::is_acceptable_response(*sent_, *response)) {
      ++result_.arbitration.spoof_suspected;
      return;
    }
    std::vector<std::uint8_t> key = endpoint_key(packet.src_endpoint());
    std::uint64_t hash = fnv(packet.payload.data(), packet.payload.size());
    for (const auto& [src, h] : seen_)
      if (h == hash && src == key) return;  // duplicate datagram
    seen_.emplace_back(std::move(key), hash);
    if (const auto* echoed = response->question())
      if (const auto* asked = sent_->question())
        if (!(echoed->name == asked->name)) ++result_.arbitration.case_mismatches;
    if (!result_.answered()) {
      result_.status = core::QueryResult::Status::answered;
      result_.response = *response;
    } else if (result_.response->flags.rcode != response->flags.rcode) {
      ++result_.arbitration.conflicts;
    }
    result_.all_responses.push_back(std::move(*response));
  }

  simnet::Simulator& sim_;
  simnet::Device& host_;
  netbase::Endpoint server_;
  std::uint16_t next_port_ = 50000;

  const dnswire::Message* sent_ = nullptr;
  core::QueryResult result_;
  core::TransportTelemetry telemetry_;
  std::vector<std::pair<std::vector<std::uint8_t>, std::uint64_t>> seen_;
  std::uint16_t port_ = 0;
  bool deadline_passed_ = false;
};

/// Committed pre-refactor medians (bench/baselines/BENCH_exchange_baseline.json,
/// recorded at 87baf32 on the development machine). Cross-machine, so the
/// comparison is informational; the paired ratio below is the gate.
constexpr double kBaselineSimExchangeNs = 5496.0;
constexpr double kBaselineFullPipelineNs = 213136.0;

int run_exchange_smoke(const char* json_path) {
  constexpr int kPairs = 9;
  constexpr int kExchangesPerRep = 200;
  constexpr double kMaxOverheadRatio = 1.10;

  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  const auto& quad9 = resolvers::PublicResolverSpec::get(resolvers::PublicResolverKind::quad9);
  netbase::Endpoint server{quad9.service_v4[0], netbase::kDnsPort};
  InlineSimExchange inline_exchange(scenario.sim(), scenario.host(), server);

  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  auto kernel_rep = [&] {
    for (int i = 0; i < kExchangesPerRep; ++i) {
      query.id++;
      benchmark::DoNotOptimize(scenario.transport().query(server, query));
    }
  };
  auto inline_rep = [&] {
    for (int i = 0; i < kExchangesPerRep; ++i) {
      query.id++;
      benchmark::DoNotOptimize(inline_exchange.run(query, std::chrono::milliseconds(3000)));
    }
  };

  // Warm both paths once, then time back-to-back pairs with the order
  // alternating so machine drift cancels out of the per-pair ratio.
  kernel_rep();
  inline_rep();
  std::vector<double> kernel_ns, inline_ns, ratios;
  for (int pair = 0; pair < kPairs; ++pair) {
    double a, b;
    if (pair % 2 == 0) {
      a = dnslocate::bench::time_ms(kernel_rep);
      b = dnslocate::bench::time_ms(inline_rep);
    } else {
      b = dnslocate::bench::time_ms(inline_rep);
      a = dnslocate::bench::time_ms(kernel_rep);
    }
    kernel_ns.push_back(a * 1e6 / kExchangesPerRep);
    inline_ns.push_back(b * 1e6 / kExchangesPerRep);
    ratios.push_back(a / b);
  }
  double kernel_med = dnslocate::bench::median(kernel_ns);
  double inline_med = dnslocate::bench::median(inline_ns);
  double ratio_med = dnslocate::bench::median(ratios);

  // The full pipeline, for the informational baseline comparison.
  std::vector<double> pipeline_ns;
  for (int rep = 0; rep < 5; ++rep) {
    double ms = dnslocate::bench::time_ms([&] {
      atlas::ScenarioConfig pipeline_config;
      pipeline_config.isp_policy.middlebox_enabled = true;
      atlas::Scenario pipeline_scenario(pipeline_config);
      core::LocalizationPipeline pipeline(pipeline_scenario.pipeline_config());
      benchmark::DoNotOptimize(pipeline.run(pipeline_scenario.transport()));
    });
    pipeline_ns.push_back(ms * 1e6);
  }
  double pipeline_med = dnslocate::bench::median(pipeline_ns);

  bool ratio_ok = ratio_med <= kMaxOverheadRatio;
  dnslocate::bench::heading("exchange kernel overhead");
  std::printf("kernel exchange:   %8.0f ns median (%d pairs x %d exchanges)\n", kernel_med,
              kPairs, kExchangesPerRep);
  std::printf("inline reference:  %8.0f ns median\n", inline_med);
  std::printf("paired ratio:      %8.3f  (gate: <= %.2f) %s\n", ratio_med, kMaxOverheadRatio,
              ratio_ok ? "OK" : "FAIL");
  std::printf("vs baseline:       %8.3f  (informational; baseline %.0f ns at 87baf32)\n",
              kernel_med / kBaselineSimExchangeNs, kBaselineSimExchangeNs);
  std::printf("full pipeline:     %8.0f ns median (baseline %.0f ns, informational)\n",
              pipeline_med, kBaselineFullPipelineNs);

  if (json_path != nullptr) {
    jsonio::Object out;
    out["schema"] = "dnslocate.bench.exchange.v1";
    out["pairs"] = static_cast<std::uint64_t>(kPairs);
    out["exchanges_per_rep"] = static_cast<std::uint64_t>(kExchangesPerRep);
    out["kernel_exchange_ns_median"] = kernel_med;
    out["inline_exchange_ns_median"] = inline_med;
    out["paired_overhead_ratio"] = ratio_med;
    out["max_overhead_ratio"] = kMaxOverheadRatio;
    out["check_overhead_ratio"] = ratio_ok;
    out["baseline_sim_exchange_ns"] = kBaselineSimExchangeNs;
    out["baseline_full_pipeline_ns"] = kBaselineFullPipelineNs;
    out["vs_baseline_ratio_informational"] = kernel_med / kBaselineSimExchangeNs;
    out["full_pipeline_ns_median"] = pipeline_med;
    std::ofstream file(json_path);
    file << jsonio::Value(std::move(out)).dump() << "\n";
    std::printf("\nwrote %s\n", json_path);
  }
  return ratio_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (smoke) return run_exchange_smoke(json_path);

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
