// P1: microbenchmarks for the substrates — DNS codec, name handling, LPM
// routing, NAT translation, single queries through the simulator, and the
// full per-probe pipeline. Establishes that full-fleet runs stay cheap.
#include <benchmark/benchmark.h>

#include "atlas/fleet.h"
#include "atlas/scenario.h"
#include "core/pipeline.h"
#include "dnswire/debug_queries.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "jsonio/json.h"
#include "netbase/lpm.h"
#include "simnet/rng.h"

using namespace dnslocate;

namespace {

dnswire::Message typical_response() {
  auto query = dnswire::make_query(0x1234, *dnswire::DnsName::parse("www.example.com"),
                                   dnswire::RecordType::A);
  auto response = dnswire::make_response(query);
  response.answers.push_back(dnswire::make_a(*dnswire::DnsName::parse("www.example.com"),
                                             netbase::Ipv4Address(93, 184, 216, 34)));
  response.answers.push_back(dnswire::make_cname(*dnswire::DnsName::parse("www.example.com"),
                                                 *dnswire::DnsName::parse("example.com")));
  return response;
}

void BM_EncodeMessage(benchmark::State& state) {
  auto message = typical_response();
  for (auto _ : state) benchmark::DoNotOptimize(dnswire::encode_message(message));
}
BENCHMARK(BM_EncodeMessage);

void BM_DecodeMessage(benchmark::State& state) {
  auto wire = dnswire::encode_message(typical_response());
  for (auto _ : state) benchmark::DoNotOptimize(dnswire::decode_message(wire));
}
BENCHMARK(BM_DecodeMessage);

void BM_DecodeUncompressed(benchmark::State& state) {
  auto wire = dnswire::encode_message(typical_response(), {.compress_names = false});
  for (auto _ : state) benchmark::DoNotOptimize(dnswire::decode_message(wire));
}
BENCHMARK(BM_DecodeUncompressed);

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(dnswire::DnsName::parse("o-o.myaddr.l.google.com"));
}
BENCHMARK(BM_NameParse);

void BM_LpmLookup(benchmark::State& state) {
  netbase::LpmTable<int> table;
  simnet::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto addr = netbase::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
    table.insert(netbase::Prefix(netbase::IpAddress(addr), 8u + static_cast<unsigned>(i) % 17u), i);
  }
  std::vector<netbase::IpAddress> probes;
  for (int i = 0; i < 64; ++i)
    probes.emplace_back(netbase::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64())));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(probes[i++ % probes.size()]));
  }
}
BENCHMARK(BM_LpmLookup);

void BM_SimQueryRoundTrip(benchmark::State& state) {
  atlas::ScenarioConfig config;
  atlas::Scenario scenario(config);
  auto query = dnswire::make_chaos_query(1, dnswire::version_bind());
  const auto& quad9 = resolvers::PublicResolverSpec::get(resolvers::PublicResolverKind::quad9);
  netbase::Endpoint server{quad9.service_v4[0], netbase::kDnsPort};
  for (auto _ : state) {
    query.id++;
    benchmark::DoNotOptimize(scenario.transport().query(server, query));
  }
}
BENCHMARK(BM_SimQueryRoundTrip);

void BM_FullProbePipeline(benchmark::State& state) {
  // Scenario construction + the complete localization pipeline (the unit of
  // work the fleet runs ~9,650 times).
  for (auto _ : state) {
    atlas::ScenarioConfig config;
    config.isp_policy.middlebox_enabled = true;
    atlas::Scenario scenario(config);
    core::LocalizationPipeline pipeline(scenario.pipeline_config());
    benchmark::DoNotOptimize(pipeline.run(scenario.transport()));
  }
}
BENCHMARK(BM_FullProbePipeline);

void BM_JsonDumpParse(benchmark::State& state) {
  jsonio::Object object;
  object["probe_id"] = 1234;
  object["org"] = "Comcast (AS7922)";
  object["location"] = "cpe";
  jsonio::Array kinds;
  for (int i = 0; i < 4; ++i) {
    jsonio::Object entry;
    entry["tested_v4"] = true;
    entry["intercepted_v4"] = (i % 2) == 0;
    kinds.push_back(jsonio::Value(std::move(entry)));
  }
  object["detection"] = std::move(kinds);
  jsonio::Value value(std::move(object));
  for (auto _ : state) {
    std::string text = value.dump();
    benchmark::DoNotOptimize(jsonio::parse(text));
  }
}
BENCHMARK(BM_JsonDumpParse);

void BM_FleetGeneration(benchmark::State& state) {
  for (auto _ : state) {
    atlas::FleetConfig config;
    config.scale = 0.1;
    benchmark::DoNotOptimize(atlas::generate_fleet(config));
  }
}
BENCHMARK(BM_FleetGeneration);

}  // namespace

BENCHMARK_MAIN();
