// Ablation A6: seed stability — the fleet's randomized components (benign
// CPE mix, IPv6 assignment, site/instance draws) must not move the paper's
// aggregate results. Three independently seeded fleets are measured and
// their Table-4 rows and Figure-4 location totals compared; the quota'd
// interception population is seed-independent by construction, so the
// variation comes only from which *benign* homes surround it.
#include "bench_util.h"
#include "report/aggregate.h"
#include "report/stats.h"

using namespace dnslocate;

int main() {
  bench::heading("Ablation A6: aggregate stability across fleet seeds");

  const std::uint64_t seeds[] = {2021, 424242, 99991};
  report::TextTable table({"seed", "probes", "intercepted", "CPE", "ISP", "unknown",
                           "all-four v4", "v6 tested"});

  std::vector<std::size_t> intercepted_counts;
  std::vector<std::size_t> cpe_counts;
  for (std::uint64_t seed : seeds) {
    atlas::FleetConfig config;
    config.seed = seed;
    auto fleet = atlas::generate_fleet(config);
    auto run = atlas::run_fleet(fleet);
    auto rows = report::table4_rows(run);
    const auto& all_four = rows.back();

    intercepted_counts.push_back(run.intercepted_count());
    cpe_counts.push_back(run.count_location(core::InterceptorLocation::cpe));
    table.add_row({std::to_string(seed), std::to_string(fleet.size()),
                   std::to_string(run.intercepted_count()),
                   std::to_string(run.count_location(core::InterceptorLocation::cpe)),
                   std::to_string(run.count_location(core::InterceptorLocation::isp)),
                   std::to_string(run.count_location(core::InterceptorLocation::unknown)),
                   std::to_string(all_four.intercepted_v4),
                   std::to_string(all_four.total_v6)});
  }
  std::fputs(table.render().c_str(), stdout);

  // The interception population is quota'd: identical across seeds. The v6
  // totals vary (they are sampled), but stay within the Wilson band of the
  // configured 39%.
  bool stable = true;
  for (std::size_t count : intercepted_counts) stable &= count == intercepted_counts[0];
  for (std::size_t count : cpe_counts) stable &= count == cpe_counts[0];
  std::printf("\nintercepted & CPE counts identical across seeds: %s\n",
              stable ? "pass" : "FAIL");
  return stable ? 0 : 1;
}
