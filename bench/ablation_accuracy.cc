// Ablation A2 (ours): score the technique against the simulator's ground
// truth over the whole fleet — the confusion matrix the paper could not
// compute on RIPE Atlas (no ground truth in the wild), including the §6
// misclassification case that is deliberately present in the fleet.
#include "bench_util.h"
#include "report/aggregate.h"

using namespace dnslocate;

int main() {
  atlas::FleetConfig config;
  auto fleet = atlas::generate_fleet(config);
  std::printf("[fleet] %zu probes\n", fleet.size());
  auto run = atlas::run_fleet(fleet);

  bench::heading("Ablation A2: verdict vs ground truth (confusion matrix)");
  auto matrix = report::accuracy_matrix(run);
  std::fputs(report::render_confusion(matrix).render().c_str(), stdout);
  std::printf("\naccuracy: %.4f (%zu/%zu probes)\n", matrix.accuracy(), matrix.correct(),
              matrix.total());

  bench::heading("misclassification census");
  std::size_t chaos_forwarder_fp = 0, other_miss = 0;
  for (const auto& record : run.records) {
    if (record.verdict.location == record.truth.expected) continue;
    bool is_known_fp = record.truth.expected == core::InterceptorLocation::isp &&
                       record.verdict.location == core::InterceptorLocation::cpe;
    if (is_known_fp) ++chaos_forwarder_fp;
    else ++other_miss;
  }
  std::printf("§6 limitation (open-port CHAOS-forwarding CPE behind an ISP\n");
  std::printf("interceptor, classified CPE instead of ISP): %zu probes\n", chaos_forwarder_fp);
  std::printf("other mismatches: %zu probes\n", other_miss);

  // The technique must be perfect outside its single documented limitation.
  bool ok = other_miss == 0 && matrix.accuracy() > 0.999;
  std::printf("\ncheck (no mismatches beyond the documented §6 case): %s\n",
              ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
