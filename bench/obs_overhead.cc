// Observability overhead: what do metrics and tracing cost a healthy fleet?
//
// The obs subsystem promises two things this harness verifies:
//   1. Disabled, the instrumentation is a branch per site — fleet throughput
//      must be statistically indistinguishable from a build without it.
//      (There is no such build to compare against, so the check is absolute:
//      enabled-vs-disabled, with the disabled runs as the baseline.)
//   2. Enabled (metrics + tracing), the overhead stays under 3% wall clock.
//   3. Registry totals agree to the digit with the per-record structs the
//      census sums — the registry is a mirror, never a second opinion.
//
// Methodology is the same median-of-paired-ratios scheme as
// supervision_overhead: back-to-back disabled/enabled pairs with alternating
// order cancel machine drift, and the median across pairs shrugs off spikes.
//
// Usage: obs_overhead [--smoke] [--json PATH]
//   --smoke runs one pair at a tiny scale and never fails the overhead
//   threshold (CI uses it to exercise the path, not to gate on a shared
//   runner's noise). Exactness and export checks still gate.
//   --json writes the measured numbers for archival (BENCH_obs.json in CI).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "jsonio/json.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "report/aggregate.h"

using namespace dnslocate;

namespace {

using bench::median;
using bench::run_ms;
using bench::same_matrix;

/// One named equality check against the registry; prints and accumulates.
struct Exactness {
  bool ok = true;
  void expect(const char* name, std::uint64_t registry_value, std::uint64_t census_value) {
    bool match = registry_value == census_value;
    if (!match)
      std::printf("  MISMATCH %s: registry %llu != census %llu\n", name,
                  static_cast<unsigned long long>(registry_value),
                  static_cast<unsigned long long>(census_value));
    ok = ok && match;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  const double scale = smoke ? 0.02 : 0.25;
  const int pairs = smoke ? 1 : 11;

  bench::heading("Observability overhead: disabled vs enabled fleet execution");

  atlas::FleetConfig config;
  config.scale = scale;
  auto fleet = atlas::generate_fleet(config);
  std::printf("[fleet] %zu probes, scale=%.2f, median of %d alternating pairs%s\n",
              fleet.size(), scale, pairs, smoke ? " (smoke)" : "");

  atlas::MeasurementOptions options;
  options.threads = 0;

  obs::Config enabled_config;
  enabled_config.metrics = true;
  enabled_config.tracing = true;

  atlas::MeasurementRun disabled_run, enabled_run;
  std::vector<double> ratios, control_ratios, disabled_times, enabled_times;
  for (int pair = 0; pair < pairs; ++pair) {
    // Each timed run starts from a clean slate so ring wraps and registry
    // lookups cost the same in every pair.
    auto timed_disabled = [&] {
      obs::disable();
      obs::registry().reset();
      obs::collector().clear();
      return run_ms(fleet, options, &disabled_run);
    };
    auto timed_enabled = [&] {
      obs::registry().reset();
      obs::collector().clear();
      obs::enable(enabled_config);
      double ms = run_ms(fleet, options, &enabled_run);
      obs::disable();
      return ms;
    };
    // Two disabled runs bracket the pair: the ratio between them is the
    // machine's noise floor (the "statistically zero" reference for the
    // disabled path — the instrumentation is compiled in for both).
    double disabled_a = 0.0, disabled_b = 0.0, enabled_ms = 0.0;
    if (pair % 2 == 0) {
      disabled_a = timed_disabled();
      enabled_ms = timed_enabled();
      disabled_b = timed_disabled();
    } else {
      enabled_ms = timed_enabled();
      disabled_a = timed_disabled();
      disabled_b = timed_disabled();
    }
    disabled_times.push_back(disabled_a);
    disabled_times.push_back(disabled_b);
    enabled_times.push_back(enabled_ms);
    double disabled_mid = (disabled_a + disabled_b) / 2.0;
    ratios.push_back((enabled_ms - disabled_mid) / disabled_mid);
    control_ratios.push_back((disabled_b - disabled_a) / disabled_a);
  }

  double overhead = median(ratios);
  double control = median(control_ratios);
  std::printf("\ndisabled: %.1f ms (median of %d)\n", median(disabled_times), pairs * 2);
  std::printf("enabled:  %.1f ms (median of %d; metrics + tracing)\n",
              median(enabled_times), pairs);
  std::printf("overhead: %+.2f%% (median of per-pair ratios)\n", overhead * 100.0);
  std::printf("control:  %+.2f%% (disabled vs disabled — the noise floor)\n",
              control * 100.0);

  bench::heading("checks");

  // 1. Observability must not change a single verdict.
  bool identical = same_matrix(report::accuracy_matrix(disabled_run),
                               report::accuracy_matrix(enabled_run));
  std::printf("identical accuracy matrix with obs on: %s\n", identical ? "pass" : "FAIL");

  // 2. Registry totals mirror the census sums exactly. One more (untimed)
  //    enabled run so the registry holds exactly one fleet's worth.
  obs::registry().reset();
  obs::collector().clear();
  obs::enable(enabled_config);
  run_ms(fleet, options, &enabled_run);
  obs::disable();
  auto census = report::run_census(enabled_run);
  Exactness exact;
  auto counter = [](const char* name) { return obs::registry().counter(name).value(); };
  exact.expect("transport_queries_total", counter("transport_queries_total"),
               census.telemetry.queries);
  exact.expect("transport_attempts_total", counter("transport_attempts_total"),
               census.telemetry.attempts);
  exact.expect("transport_retries_total", counter("transport_retries_total"),
               census.telemetry.retries);
  exact.expect("transport_timeouts_total", counter("transport_timeouts_total"),
               census.telemetry.timeouts);
  exact.expect("transport_answered_total", counter("transport_answered_total"),
               census.telemetry.answered);
  exact.expect("sim_drop_link_loss_total", counter("sim_drop_link_loss_total"),
               census.drops.link_loss);
  exact.expect("sim_drop_by_hook_total", counter("sim_drop_by_hook_total"),
               census.drops.by_hook);
  exact.expect("sim_drop_ttl_expired_total", counter("sim_drop_ttl_expired_total"),
               census.drops.ttl_expired);
  exact.expect("fault_burst_drops_total", counter("fault_burst_drops_total"),
               census.faults.burst_drops);
  exact.expect("fault_random_drops_total", counter("fault_random_drops_total"),
               census.faults.random_drops);
  exact.expect("probe_ok_total", counter("probe_ok_total"), census.ok);
  exact.expect("probe_failed_total", counter("probe_failed_total"), census.failed);
  exact.expect("pipeline_runs_total", counter("pipeline_runs_total"),
               enabled_run.records.size());
  std::printf("registry totals equal census sums: %s\n", exact.ok ? "pass" : "FAIL");

  // 3. Exporters produce parseable output from a real run.
  std::string prom = obs::prometheus_text();
  std::string trace = obs::chrome_trace_json();
  auto trace_json = jsonio::parse(trace);
  bool exports_ok = !prom.empty() && prom.find("# TYPE") != std::string::npos &&
                    trace_json.has_value() && (*trace_json)["traceEvents"].is_array() &&
                    !(*trace_json)["traceEvents"].as_array().empty();
  std::printf("prometheus and chrome-trace exports valid: %s\n",
              exports_ok ? "pass" : "FAIL");

  // 4. The machinery costs less than 3% wall clock, and the disabled path
  //    sits inside the noise floor (informational in smoke mode — one pair
  //    on a shared runner cannot resolve either).
  bool cheap = overhead < 0.03;
  std::printf("obs overhead under 3%%: %s%s\n", cheap ? "pass" : "FAIL",
              smoke ? " (not gating in smoke mode)" : "");
  bool quiet = control > -0.03 && control < 0.03;
  std::printf("disabled path within noise (|control| < 3%%): %s%s\n",
              quiet ? "pass" : "FAIL", smoke ? " (not gating in smoke mode)" : "");

  if (json_path != nullptr) {
    jsonio::Object out;
    out["bench"] = std::string("obs_overhead");
    out["smoke"] = smoke;
    out["pairs"] = static_cast<std::uint64_t>(pairs);
    out["scale"] = scale;
    out["fleet_probes"] = static_cast<std::uint64_t>(fleet.size());
    out["disabled_ms_median"] = median(disabled_times);
    out["enabled_ms_median"] = median(enabled_times);
    out["overhead_ratio_median"] = overhead;
    out["control_ratio_median"] = control;
    out["check_identical_verdicts"] = identical;
    out["check_registry_exact"] = exact.ok;
    out["check_exports_valid"] = exports_ok;
    out["check_overhead_under_3pct"] = cheap;
    std::ofstream file(json_path);
    file << jsonio::Value(std::move(out)).dump() << "\n";
    std::printf("wrote %s\n", json_path);
  }

  bool ok = identical && exact.ok && exports_ok && ((cheap && quiet) || smoke);
  std::printf("\noverall: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
