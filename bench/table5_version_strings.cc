// Table 5: strings sent in response to version.bind by CPE interceptors,
// over the full simulated fleet.
#include "bench_util.h"
#include "report/aggregate.h"

using namespace dnslocate;

int main() {
  auto run = bench::measured_fleet();

  bench::heading("Table 5: strings sent in response to version.bind (CPE interceptors)");
  std::fputs(report::render_table5(run).render().c_str(), stdout);

  // Group the strings the way the paper does.
  auto rows = report::table5_rows(run);
  std::size_t dnsmasq = 0, pihole = 0, unbound = 0, redhat = 0, others = 0, total = 0;
  for (const auto& [text, count] : rows) {
    total += count;
    if (text.rfind("dnsmasq-pi-hole", 0) == 0) pihole += count;
    else if (text.rfind("dnsmasq", 0) == 0) dnsmasq += count;
    else if (text.rfind("unbound", 0) == 0) unbound += count;
    else if (text.find("RedHat") != std::string::npos) redhat += count;
    else others += count;
  }

  bench::heading("grouped (paper's classes)");
  std::printf("dnsmasq-*          : %zu   (paper: 23)\n", dnsmasq);
  std::printf("dnsmasq-pi-hole-*  : %zu   (paper: 8)\n", pihole);
  std::printf("unbound*           : %zu   (paper: 6)\n", unbound);
  std::printf("*-RedHat           : %zu   (paper: 2)\n", redhat);
  std::printf("one-offs           : %zu   (paper: 10 strings, 1 each)\n", others);
  std::printf("total CPE probes   : %zu   (paper: 49)\n", total);

  bool shape_ok = dnsmasq > pihole && pihole > unbound && unbound > redhat && dnsmasq >= 20;
  std::printf("\nshape check (dnsmasq dominates, pihole visible subset): %s\n",
              shape_ok ? "pass" : "FAIL");
  return shape_ok ? 0 : 1;
}
