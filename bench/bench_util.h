// Shared helpers for the experiment harnesses in bench/.
#pragma once

#include <cstdio>
#include <string>

#include "atlas/measurement.h"

namespace dnslocate::bench {

/// Print a section header in a consistent style.
inline void heading(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

/// Generate and measure the default fleet (deterministic from the seed).
inline atlas::MeasurementRun measured_fleet(double scale = 1.0) {
  atlas::FleetConfig config;
  config.scale = scale;
  auto fleet = atlas::generate_fleet(config);
  std::printf("[fleet] %zu probes, seed=%llu, scale=%.2f\n", fleet.size(),
              static_cast<unsigned long long>(config.seed), scale);
  return atlas::run_fleet(fleet);
}

}  // namespace dnslocate::bench
