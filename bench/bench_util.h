// Shared helpers for the experiment harnesses in bench/.
//
// The timing scheme most benches share: shared runners are noisy enough that
// comparing two independent minima cannot resolve a few percent — the
// quiet-machine floor itself drifts between runs. So a bench times
// back-to-back A/B pairs (order alternating to cancel drift), computes the
// ratio within each pair, and takes the median across pairs: spikes hit
// individual pairs hard but move the median very little.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "atlas/measurement.h"
#include "report/aggregate.h"

namespace dnslocate::bench {

/// Print a section header in a consistent style.
inline void heading(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

/// Median of a sample (by value: sorts a copy).
inline double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

/// Wall-clock milliseconds for one invocation of `fn`.
template <typename Fn>
double time_ms(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  std::forward<Fn>(fn)();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Time one fleet execution; the run itself lands in `out` when non-null so
/// equality gates can compare results across configurations.
inline double run_ms(const std::vector<atlas::ProbeSpec>& fleet,
                     const atlas::MeasurementOptions& options, atlas::MeasurementRun* out) {
  atlas::MeasurementRun run;
  double ms = time_ms([&] { run = atlas::run_fleet(fleet, options); });
  if (out != nullptr) *out = std::move(run);
  return ms;
}

/// Cell-for-cell equality of two confusion matrices — the standard
/// "configuration B changed no verdict" gate.
inline bool same_matrix(const report::ConfusionMatrix& a, const report::ConfusionMatrix& b) {
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      if (a.cells[i][j] != b.cells[i][j]) return false;
  return true;
}

/// Generate and measure the default fleet (deterministic from the seed).
inline atlas::MeasurementRun measured_fleet(double scale = 1.0) {
  atlas::FleetConfig config;
  config.scale = scale;
  auto fleet = atlas::generate_fleet(config);
  std::printf("[fleet] %zu probes, seed=%llu, scale=%.2f\n", fleet.size(),
              static_cast<unsigned long long>(config.seed), scale);
  return atlas::run_fleet(fleet);
}

}  // namespace dnslocate::bench
