// Figure 3: intercepted probes per top-15 organization, classified by the
// §4.1.2 whoami transparency test (Transparent / Status Modified / Both).
#include "bench_util.h"
#include "report/aggregate.h"

using namespace dnslocate;

int main() {
  auto run = bench::measured_fleet();

  bench::heading("Figure 3: intercepted probes per top-15 organizations");
  std::fputs(report::render_figure3(run).render().c_str(), stdout);

  auto rows = report::figure3_rows(run);
  std::size_t transparent = 0, modified = 0, both = 0;
  for (const auto& row : rows) {
    transparent += row.transparent;
    modified += row.status_modified;
    both += row.both;
  }
  std::printf("\ntop-15 totals: transparent=%zu status-modified=%zu both=%zu\n", transparent,
              modified, both);

  // Shape: Comcast tops the list; the majority of interception is
  // transparent (the queries are resolved correctly, just not by the
  // targeted resolver).
  bool comcast_top = !rows.empty() && rows[0].org.find("Comcast") != std::string::npos;
  bool transparent_majority = transparent > modified + both;
  std::printf("Comcast (AS7922) has the most intercepted probes: %s (paper: yes)\n",
              comcast_top ? "yes" : "NO");
  std::printf("majority transparent: %s (paper: yes)\n", transparent_majority ? "yes" : "NO");
  return comcast_top && transparent_majority ? 0 : 1;
}
