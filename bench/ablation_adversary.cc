// Ablation A7 (ours): localization accuracy under adversarial interceptors.
//
// The adversary zoo (simnet/adversary.h) layers spoofing injectors and DPI
// middleboxes onto every probe world in the fleet, and this harness proves
// the arbitration contract end-to-end:
//
//   - real interceptors stay localized: CPE attributions rest on the
//     CPE-addressed version.bind match and ISP attributions on uncontested
//     bogon answers, both out of a transit-core injector's reach, so
//     localization accuracy over intercepted-truth probes holds within two
//     points of the adversary-free baseline;
//   - clean paths are never fabricated into interceptions: the
//     truth-not-intercepted row of the confusion matrix may only ever hold
//     `not_intercepted` or `contested` — never cpe/isp/unknown;
//   - contested verdicts appear only on genuine conflict (telemetry
//     records conflicting accepted answers) and are never silently
//     resolved: every probe's verdict is its adversary-free location or
//     `contested`, nothing else;
//   - the whole sweep replays byte-identically at the fixed fleet seed.
//
// Usage: ablation_adversary [--smoke] [--json PATH]
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/describe.h"
#include "jsonio/json.h"
#include "report/aggregate.h"

using namespace dnslocate;

namespace {

struct Personality {
  const char* name;
  atlas::AdversaryConfig adversary;
  /// Vendor string the active fingerprint stage should pin on DPI runs.
  const char* expected_vendor = "";
};

std::vector<Personality> build_zoo() {
  std::vector<Personality> zoo;
  zoo.push_back({"baseline", {}});
  for (auto lead : {std::chrono::microseconds(100), std::chrono::microseconds(5000),
                    std::chrono::microseconds(20000)}) {
    atlas::AdversaryConfig a;
    simnet::SpooferConfig spoofer;
    spoofer.injection_delay = lead;
    a.transit_spoofer = spoofer;
    std::string name = "onpath_spoofer_lead" + std::to_string(lead.count()) + "us";
    static std::vector<std::string> names;  // keep the c_str()s alive
    names.push_back(name);
    zoo.push_back({names.back().c_str(), a});
  }
  {
    atlas::AdversaryConfig a;
    simnet::SpooferConfig spoofer;
    spoofer.on_path = false;
    a.transit_spoofer = spoofer;
    zoo.push_back({"offpath_spoofer", a});
  }
  {
    atlas::AdversaryConfig a;
    a.isp_dpi = simnet::dpi_foldix();
    zoo.push_back({"dpi_foldix", a, "foldix"});
  }
  {
    atlas::AdversaryConfig a;
    a.isp_dpi = simnet::dpi_optstrip();
    zoo.push_back({"dpi_optstrip", a, "optstrip"});
  }
  {
    atlas::AdversaryConfig a;
    a.isp_dpi = simnet::dpi_truncor();
    zoo.push_back({"dpi_truncor", a, "truncor"});
  }
  {
    atlas::AdversaryConfig a;
    a.cpe_dpi = simnet::dpi_omnibox();
    zoo.push_back({"dpi_omnibox_cpe", a, "omnibox"});
  }
  return zoo;
}

/// The full evidence trail minus wall-clock artifacts — the byte-identical
/// replay gate compares these (same signature fleet_scale gates shards on).
std::string verdict_signature(const core::ProbeVerdict& verdict) {
  std::string signature = core::describe(verdict);
  signature += "\nlocation=" + std::string(core::to_string(verdict.location));
  signature += " skipped=" + std::to_string(verdict.skipped_stages);
  signature += " conflicts=" + std::to_string(verdict.telemetry.conflicts);
  signature += " spoof=" + std::to_string(verdict.telemetry.spoof_suspected);
  signature += " recased=" + std::to_string(verdict.telemetry.case_mismatches);
  return signature;
}

std::map<std::uint32_t, std::string> signatures_of(const atlas::MeasurementRun& run) {
  std::map<std::uint32_t, std::string> out;
  for (const auto& record : run.records) out[record.probe_id] = verdict_signature(record.verdict);
  return out;
}

struct SweepPoint {
  std::string name;
  report::ConfusionMatrix matrix;
  // Localization over intercepted-truth probes (where a spoofer would have
  // to *move* an attribution to win).
  std::size_t intercepted_truth = 0;
  std::size_t strict_correct = 0;    // measured == expected
  std::size_t adjusted_correct = 0;  // + honest contested degradations (below)
  // Fleet-wide arbitration tallies.
  std::size_t contested = 0;                  // verdicts at location contested
  std::size_t contested_without_conflict = 0; // would be a fabricated refusal
  std::size_t moved_or_fabricated = 0;        // location not in {baseline, contested}
  std::uint64_t conflicts = 0;
  std::uint64_t spoof_suspected = 0;
  std::uint64_t case_mismatches = 0;
  /// Probes whose active fingerprint pinned the personality's vendor name.
  std::size_t vendor_identified = 0;

  [[nodiscard]] double strict_accuracy() const {
    return intercepted_truth == 0
               ? 1.0
               : static_cast<double>(strict_correct) / static_cast<double>(intercepted_truth);
  }
  [[nodiscard]] double adjusted_accuracy() const {
    return intercepted_truth == 0
               ? 1.0
               : static_cast<double>(adjusted_correct) / static_cast<double>(intercepted_truth);
  }
};

atlas::MeasurementRun run_zoo_config(const atlas::AdversaryConfig& adversary, double scale) {
  atlas::FleetConfig config;
  config.scale = scale;
  config.adversary = adversary;
  // Every run (baseline included, for comparability) actively fingerprints:
  // a DPI box that never alters answer content is invisible to detection,
  // so this is the only stage that can name it.
  config.run_fingerprint = true;
  auto fleet = atlas::generate_fleet(config);
  atlas::MeasurementOptions options;
  options.threads = 0;  // probes are independent; use every core
  return atlas::run_fleet(fleet, options);
}

SweepPoint summarize(const Personality& personality, const atlas::MeasurementRun& run,
                     const std::map<std::uint32_t, core::InterceptorLocation>& baseline) {
  SweepPoint point;
  point.name = personality.name;
  point.matrix = report::accuracy_matrix(run);
  for (const auto& record : run.records) {
    const auto measured = record.verdict.location;
    const auto expected = record.truth.expected;
    const auto& telemetry = record.verdict.telemetry;
    point.conflicts += telemetry.conflicts;
    point.spoof_suspected += telemetry.spoof_suspected;
    point.case_mismatches += telemetry.case_mismatches;
    if (personality.expected_vendor[0] != '\0' && record.verdict.fingerprint &&
        record.verdict.fingerprint->vendor == personality.expected_vendor)
      ++point.vendor_identified;

    if (measured == core::InterceptorLocation::contested) {
      ++point.contested;
      if (telemetry.conflicts == 0) ++point.contested_without_conflict;
    }
    auto it = baseline.find(record.probe_id);
    if (it != baseline.end() && measured != it->second &&
        measured != core::InterceptorLocation::contested)
      ++point.moved_or_fabricated;

    if (expected == core::InterceptorLocation::not_intercepted) continue;
    ++point.intercepted_truth;
    if (measured == expected) {
      ++point.strict_correct;
      ++point.adjusted_correct;
    } else if (measured == core::InterceptorLocation::contested &&
               telemetry.conflicts > 0 &&
               expected == core::InterceptorLocation::unknown) {
      // An interceptor the technique could never place better than
      // "unknown" now has a spoofer racing it: refusing the verdict as
      // contested removes confidence without inventing a locus. Counted as
      // honest degradation — but only for truth-unknown probes; a
      // contested CPE or ISP attribution still counts against accuracy.
      ++point.adjusted_correct;
    }
  }
  return point;
}

/// Clean probes (truth not intercepted) may measure not_intercepted or
/// contested — anything else is a fabricated interception.
bool row0_clean(const report::ConfusionMatrix& matrix) {
  constexpr auto kCpe = static_cast<std::size_t>(core::InterceptorLocation::cpe);
  constexpr auto kIsp = static_cast<std::size_t>(core::InterceptorLocation::isp);
  constexpr auto kUnknown = static_cast<std::size_t>(core::InterceptorLocation::unknown);
  return matrix.cells[0][kCpe] == 0 && matrix.cells[0][kIsp] == 0 &&
         matrix.cells[0][kUnknown] == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  const double scale = smoke ? 0.05 : 0.25;

  bench::heading("Ablation A7: localization accuracy under the adversary zoo");

  auto zoo = build_zoo();
  std::vector<SweepPoint> sweep;
  std::map<std::uint32_t, core::InterceptorLocation> baseline_locations;
  atlas::MeasurementRun onpath_run;  // kept for the replay gate

  for (const auto& personality : zoo) {
    std::printf("[run] %s (scale %.2f)\n", personality.name, scale);
    auto run = run_zoo_config(personality.adversary, scale);
    if (baseline_locations.empty())
      for (const auto& record : run.records)
        baseline_locations[record.probe_id] = record.verdict.location;
    sweep.push_back(summarize(personality, run, baseline_locations));
    if (std::strncmp(personality.name, "onpath_spoofer_lead100", 22) == 0)
      onpath_run = std::move(run);
  }

  std::printf("\n%-26s %-9s %-9s %-10s %-10s %-10s %-8s %-8s\n", "personality", "strict",
              "adjusted", "contested", "conflicts", "spoofsusp", "recased", "vendor");
  for (const SweepPoint& point : sweep)
    std::printf("%-26s %-9.4f %-9.4f %-10zu %-10" PRIu64 " %-10" PRIu64 " %-8" PRIu64
                " %-8zu\n",
                point.name.c_str(), point.strict_accuracy(), point.adjusted_accuracy(),
                point.contested, point.conflicts, point.spoof_suspected,
                point.case_mismatches, point.vendor_identified);

  const SweepPoint& baseline = sweep.front();

  bench::heading("checks");

  // 1. Byte-identical replay of the hardest configuration at the fixed
  //    fleet seed.
  atlas::AdversaryConfig onpath;
  {
    simnet::SpooferConfig spoofer;
    spoofer.injection_delay = std::chrono::microseconds(100);
    onpath.transit_spoofer = spoofer;
  }
  auto replay = run_zoo_config(onpath, scale);
  bool deterministic = signatures_of(replay) == signatures_of(onpath_run) &&
                       bench::same_matrix(report::accuracy_matrix(replay),
                                          report::accuracy_matrix(onpath_run));
  std::printf("on-path sweep replays byte-identically at seed 2021: %s\n",
              deterministic ? "pass" : "FAIL");

  // 2. The adversary-free fleet never emits contested verdicts.
  bool baseline_clean = baseline.contested == 0 && baseline.conflicts == 0;
  std::printf("adversary-free baseline has zero contested verdicts: %s\n",
              baseline_clean ? "pass" : "FAIL");

  // 3-6. Per-personality arbitration gates.
  bool resilient = true;
  bool contested_honest = true;
  bool never_fabricated = true;
  bool rows_clean = true;
  for (const SweepPoint& point : sweep) {
    if (point.adjusted_accuracy() < baseline.strict_accuracy() - 0.02) {
      resilient = false;
      std::printf("  %s: accuracy %.4f fell more than 2 points below baseline %.4f\n",
                  point.name.c_str(), point.adjusted_accuracy(), baseline.strict_accuracy());
    }
    if (point.contested_without_conflict != 0) {
      contested_honest = false;
      std::printf("  %s: %zu contested verdict(s) without an observed conflict\n",
                  point.name.c_str(), point.contested_without_conflict);
    }
    if (point.moved_or_fabricated != 0) {
      never_fabricated = false;
      std::printf("  %s: %zu verdict(s) moved to a location the baseline never had\n",
                  point.name.c_str(), point.moved_or_fabricated);
    }
    if (!row0_clean(point.matrix)) {
      rows_clean = false;
      std::printf("  %s: clean-truth probes measured cpe/isp/unknown\n", point.name.c_str());
    }
  }
  std::printf("localization holds within 2 points under every adversary: %s\n",
              resilient ? "pass" : "FAIL");
  std::printf("contested only on genuine conflict (never fabricated refusal): %s\n",
              contested_honest ? "pass" : "FAIL");
  std::printf("no verdict moves anywhere but contested: %s\n",
              never_fabricated ? "pass" : "FAIL");
  std::printf("clean-truth probes only measure not_intercepted/contested: %s\n",
              rows_clean ? "pass" : "FAIL");

  // 7. The zoo actually bites: the on-path spoofer must contest something,
  //    the off-path spoofer must be caught as spoof-suspected, and every
  //    DPI personality must be pinned by name on some probes' active
  //    fingerprints.
  bool adversaries_observed = true;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& point = sweep[i];
    if (point.name.rfind("onpath_spoofer", 0) == 0 && point.conflicts == 0) {
      adversaries_observed = false;
      std::printf("  %s: no conflicts observed\n", point.name.c_str());
    }
    if (point.name == "offpath_spoofer" && point.spoof_suspected == 0) {
      adversaries_observed = false;
      std::printf("  %s: no spoof-suspected datagrams observed\n", point.name.c_str());
    }
    if (zoo[i].expected_vendor[0] != '\0' && point.vendor_identified == 0) {
      adversaries_observed = false;
      std::printf("  %s: fingerprint never named vendor %s\n", point.name.c_str(),
                  zoo[i].expected_vendor);
    }
  }
  std::printf("every adversary leaves its expected evidence trail: %s\n",
              adversaries_observed ? "pass" : "FAIL");

  if (json_path != nullptr) {
    jsonio::Object out;
    out["bench"] = std::string("ablation_adversary");
    out["smoke"] = smoke;
    out["scale"] = scale;
    out["fleet_seed"] = static_cast<std::uint64_t>(2021);
    jsonio::Array points;
    for (const SweepPoint& point : sweep) {
      jsonio::Object p;
      p["personality"] = point.name;
      p["intercepted_truth"] = static_cast<std::uint64_t>(point.intercepted_truth);
      p["strict_accuracy"] = point.strict_accuracy();
      p["adjusted_accuracy"] = point.adjusted_accuracy();
      p["contested"] = static_cast<std::uint64_t>(point.contested);
      p["contested_without_conflict"] =
          static_cast<std::uint64_t>(point.contested_without_conflict);
      p["conflicts"] = point.conflicts;
      p["spoof_suspected"] = point.spoof_suspected;
      p["case_mismatches"] = point.case_mismatches;
      p["vendor_identified"] = static_cast<std::uint64_t>(point.vendor_identified);
      points.push_back(jsonio::Value(std::move(p)));
    }
    out["points"] = jsonio::Value(std::move(points));
    out["check_deterministic_replay"] = deterministic;
    out["check_baseline_uncontested"] = baseline_clean;
    out["check_accuracy_within_2pts"] = resilient;
    out["check_contested_only_on_conflict"] = contested_honest;
    out["check_never_fabricated"] = never_fabricated;
    out["check_clean_rows"] = rows_clean;
    out["check_adversaries_observed"] = adversaries_observed;
    std::ofstream file(json_path);
    file << jsonio::Value(std::move(out)).dump() << "\n";
    std::printf("wrote %s\n", json_path);
  }

  bool ok = deterministic && baseline_clean && resilient && contested_honest &&
            never_fabricated && rows_clean && adversaries_observed;
  std::printf("\noverall: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
