// Fleet scaling: probes per second as the shard count grows.
//
// The sharded executor's contract is twofold and this harness gates both
// halves. Correctness is absolute: every probe's verdict — the full
// describe() evidence trail, the location, the skipped-stage mask, and the
// transport telemetry counts — must be byte-identical at every shard count,
// because a shard decides only where a probe runs, never how. Throughput is
// hardware-relative: per-probe simulators are embarrassingly parallel, so on
// a machine with >= 4 cores, 4 shards must deliver >= 3x the single-shard
// probes-per-second. On smaller machines the speedup is reported but not
// gated (threads time-slicing one core cannot show parallel speedup); the
// JSON records the core count so readers can judge the number honestly.
//
// Timing uses the shared methodology from bench_util.h: alternating-order
// rounds and medians, so scheduler spikes move the result very little.
//
// Usage: fleet_scale [--smoke] [--json PATH]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/describe.h"
#include "jsonio/json.h"
#include "report/aggregate.h"

using namespace dnslocate;

namespace {

using bench::median;
using bench::run_ms;
using bench::same_matrix;

/// Everything the equality gate compares — the full evidence trail minus
/// wall-clock artifacts (RTTs, elapsed times).
std::string verdict_signature(const core::ProbeVerdict& verdict) {
  std::string signature = core::describe(verdict);
  signature += "\nlocation=" + std::string(core::to_string(verdict.location));
  signature += " skipped=" + std::to_string(verdict.skipped_stages);
  signature += " queries=" + std::to_string(verdict.telemetry.queries);
  signature += " attempts=" + std::to_string(verdict.telemetry.attempts);
  signature += " retries=" + std::to_string(verdict.telemetry.retries);
  signature += " timeouts=" + std::to_string(verdict.telemetry.timeouts);
  signature += " answered=" + std::to_string(verdict.telemetry.answered);
  return signature;
}

std::map<std::uint32_t, std::string> signatures_of(const atlas::MeasurementRun& run) {
  std::map<std::uint32_t, std::string> out;
  for (const auto& record : run.records) out[record.probe_id] = verdict_signature(record.verdict);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  const double scale = smoke ? 0.05 : 0.5;
  const int rounds = smoke ? 1 : 5;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<unsigned> shard_counts = {1, 2, 4, 8};

  bench::heading("Fleet scaling: probes per second at 1/2/4/8 shards");

  atlas::FleetConfig config;
  config.scale = scale;
  auto fleet = atlas::generate_fleet(config);
  std::printf("[fleet] %zu probes, scale=%.2f, %d round(s), %u hardware core(s)%s\n",
              fleet.size(), scale, rounds, cores, smoke ? " (smoke)" : "");

  // Time every shard count in every round, cycling the order so machine
  // drift lands evenly across configurations instead of compounding into
  // one of them.
  std::map<unsigned, std::vector<double>> times_ms;
  std::map<unsigned, atlas::MeasurementRun> runs;
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t slot = 0; slot < shard_counts.size(); ++slot) {
      unsigned shards =
          shard_counts[(slot + static_cast<std::size_t>(round)) % shard_counts.size()];
      atlas::MeasurementOptions options;
      options.shards = shards;
      atlas::MeasurementRun run;
      double ms = run_ms(fleet, options, &run);
      times_ms[shards].push_back(ms);
      runs[shards] = std::move(run);
    }
  }

  double base_ms = median(times_ms[1]);
  std::printf("\n%8s %12s %14s %10s\n", "shards", "median ms", "probes/sec", "speedup");
  std::map<unsigned, double> medians, throughputs, speedups;
  for (unsigned shards : shard_counts) {
    double ms = median(times_ms[shards]);
    medians[shards] = ms;
    throughputs[shards] = ms > 0.0 ? static_cast<double>(fleet.size()) * 1000.0 / ms : 0.0;
    speedups[shards] = ms > 0.0 ? base_ms / ms : 0.0;
    std::printf("%8u %12.1f %14.1f %9.2fx\n", shards, ms, throughputs[shards],
                speedups[shards]);
  }

  bench::heading("checks");

  // 1. Byte-identical verdicts at every shard count — the hard gate. A
  //    shard assignment must never be able to change a result.
  auto expected = signatures_of(runs[1]);
  bool identical = true;
  for (unsigned shards : shard_counts) {
    if (signatures_of(runs[shards]) != expected) {
      identical = false;
      std::printf("  MISMATCH at %u shards\n", shards);
    }
    if (!same_matrix(report::accuracy_matrix(runs[shards]),
                     report::accuracy_matrix(runs[1]))) {
      identical = false;
      std::printf("  MATRIX MISMATCH at %u shards\n", shards);
    }
  }
  std::printf("identical verdicts and accuracy matrix at every shard count: %s\n",
              identical ? "pass" : "FAIL");

  // 2. >= 3x at 4 shards — gated only where the hardware can express it.
  //    Time-slicing four worker threads over one core proves nothing about
  //    the executor, so on narrow machines the number is informational. The
  //    skip is explicit — logged here and recorded in the JSON — never a
  //    silent `speedup_gated:false`.
  bool can_gate_speedup = cores >= 4 && !smoke;
  std::string speedup_skip_reason;
  if (smoke)
    speedup_skip_reason = "smoke mode: one unwarmed round is not a timing claim";
  else if (cores < 4)
    speedup_skip_reason = "only " + std::to_string(cores) +
                          " hardware core(s): four shards would time-slice, which cannot "
                          "express parallel speedup";
  bool fast = speedups[4] >= 3.0;
  if (can_gate_speedup) {
    std::printf("speedup >= 3x at 4 shards: %s\n", fast ? "pass" : "FAIL");
  } else {
    std::printf("speedup >= 3x at 4 shards: %.2fx — gate SKIPPED (%s)\n", speedups[4],
                speedup_skip_reason.c_str());
  }

  // 3. Even where the 3x gate is skipped for want of cores, sharding must
  //    never make the fleet *slower*: on any multi-core host, a sharded run
  //    regressing more than 15% against single-shard is a loud failure, not
  //    an informational shrug.
  bool can_gate_regression = cores >= 2 && !smoke;
  bool no_regression = true;
  if (can_gate_regression) {
    for (unsigned shards : shard_counts) {
      if (shards == 1) continue;
      if (speedups[shards] < 0.85) {
        no_regression = false;
        std::printf("  %u shards run %.0f%% slower than single-shard (%.2fx)\n", shards,
                    (1.0 - speedups[shards]) * 100.0, speedups[shards]);
      }
    }
    std::printf("no shard count regresses >15%% vs single-shard: %s\n",
                no_regression ? "pass" : "FAIL");
  } else {
    std::printf("no shard count regresses >15%% vs single-shard: gate SKIPPED (%s)\n",
                smoke ? "smoke mode: one unwarmed round is not a timing claim"
                      : "single hardware core");
  }

  if (json_path != nullptr) {
    jsonio::Object out;
    out["bench"] = std::string("fleet_scale");
    out["smoke"] = smoke;
    out["cores"] = static_cast<std::uint64_t>(cores);
    out["probes"] = static_cast<std::uint64_t>(fleet.size());
    out["rounds"] = static_cast<std::uint64_t>(rounds);
    out["scale"] = scale;
    jsonio::Array points;
    for (unsigned shards : shard_counts) {
      jsonio::Object point;
      point["shards"] = static_cast<std::uint64_t>(shards);
      point["ms_median"] = medians[shards];
      point["probes_per_sec"] = throughputs[shards];
      point["speedup_vs_1"] = speedups[shards];
      points.push_back(jsonio::Value(std::move(point)));
    }
    out["points"] = jsonio::Value(std::move(points));
    out["check_identical_verdicts"] = identical;
    out["hardware_concurrency"] = static_cast<std::uint64_t>(cores);
    out["speedup_gated"] = can_gate_speedup;
    out["speedup_gate_skip_reason"] = speedup_skip_reason;
    out["check_speedup_3x_at_4"] = can_gate_speedup ? fast : true;
    out["regression_gated"] = can_gate_regression;
    out["check_no_shard_regression_15pct"] = can_gate_regression ? no_regression : true;
    std::ofstream file(json_path);
    file << jsonio::Value(std::move(out)).dump() << "\n";
    std::printf("wrote %s\n", json_path);
  }

  bool ok = identical && (!can_gate_speedup || fast) && (!can_gate_regression || no_regression);
  std::printf("\noverall: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
