// Tables 2 and 3 (§3.4 "Technique in Practice"): three probes — one clean,
// one intercepted within its ISP, one intercepted by its CPE — and the
// responses each step of the technique observes.
#include <map>

#include "atlas/scenario.h"
#include "bench_util.h"
#include "report/table.h"

using namespace dnslocate;

namespace {

struct ExampleProbe {
  std::string label;
  atlas::ScenarioConfig config;
  core::ProbeVerdict verdict;
  std::string cpe_version_display = "-";
};

std::string location_display(const core::ProbeVerdict& verdict,
                             resolvers::PublicResolverKind kind) {
  for (const auto& probe : verdict.detection.probes) {
    if (probe.kind == kind && probe.family == netbase::IpFamily::v4) return probe.display;
  }
  return "-";
}

std::string resolver_version_display(const core::ProbeVerdict& verdict,
                                     resolvers::PublicResolverKind kind) {
  if (!verdict.cpe_check) return "-";
  auto it = verdict.cpe_check->resolver_answers.find(kind);
  return it == verdict.cpe_check->resolver_answers.end() ? "-" : it->second.display;
}

}  // namespace

int main() {
  using Kind = atlas::CpeStyle::Kind;
  using resolvers::PublicResolverKind;

  std::vector<ExampleProbe> probes(3);

  // Probe "1053": clean path.
  probes[0].label = "1053";
  probes[0].config.cpe.kind = Kind::benign_closed;

  // Probe "11992": intercepted within the ISP. The ISP's alternate resolver
  // answers CHAOS queries NOTIMP; the CPE's own forwarder answers NXDOMAIN.
  probes[1].label = "11992";
  probes[1].config.cpe.kind = Kind::benign_open_chaos_nxdomain;
  probes[1].config.isp_policy.middlebox_enabled = true;
  probes[1].config.isp_resolver_software =
      resolvers::chaos_refuser("isp-proxy", dnswire::Rcode::NOTIMP);

  // Probe "21823": intercepted by its CPE — an unbound forwarder with the
  // operator identity "routing.v2.pw" (as in the paper's tables).
  probes[2].label = "21823";
  probes[2].config.cpe.kind = Kind::intercept_unbound;
  probes[2].config.cpe.version = "1.9.0";
  probes[2].config.cpe.identity = "routing.v2.pw";

  for (auto& probe : probes) {
    atlas::Scenario scenario(probe.config);
    core::LocalizationPipeline pipeline(scenario.pipeline_config());
    probe.verdict = pipeline.run(scenario.transport());
    if (probe.verdict.cpe_check) probe.cpe_version_display = probe.verdict.cpe_check->cpe.display;
  }

  bench::heading("Table 2: example responses to IPv4 location queries");
  report::TextTable table2({"ProbeID", "Cloudflare DNS", "Google DNS"});
  for (const auto& probe : probes) {
    table2.add_row({probe.label,
                    location_display(probe.verdict, PublicResolverKind::cloudflare),
                    location_display(probe.verdict, PublicResolverKind::google)});
  }
  std::fputs(table2.render().c_str(), stdout);

  bench::heading("Table 3: example responses to IPv4 version.bind queries");
  report::TextTable table3({"ProbeID", "Cloudflare DNS", "Google DNS", "CPE Public IP"});
  for (const auto& probe : probes) {
    table3.add_row({probe.label,
                    resolver_version_display(probe.verdict, PublicResolverKind::cloudflare),
                    resolver_version_display(probe.verdict, PublicResolverKind::google),
                    probe.cpe_version_display});
  }
  std::fputs(table3.render().c_str(), stdout);

  bench::heading("step-3 bogon probe and final verdicts");
  report::TextTable verdicts({"ProbeID", "Bogon version.bind", "Verdict"});
  for (const auto& probe : probes) {
    std::string bogon = probe.verdict.bogon ? probe.verdict.bogon->v4.version_display : "-";
    verdicts.add_row({probe.label, bogon, std::string(to_string(probe.verdict.location))});
  }
  std::fputs(verdicts.render().c_str(), stdout);

  // Sanity: the three probes must land on the paper's conclusions.
  bool ok = probes[0].verdict.location == core::InterceptorLocation::not_intercepted &&
            probes[1].verdict.location == core::InterceptorLocation::isp &&
            probes[2].verdict.location == core::InterceptorLocation::cpe;
  std::printf("\nconclusions match the paper's §3.4 walkthrough: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
