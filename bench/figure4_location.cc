// Figure 4: interception location (CPE / within ISP / unknown) for the 15
// countries and the 15 organizations with the most intercepted probes.
#include "bench_util.h"
#include "report/aggregate.h"

using namespace dnslocate;

int main() {
  auto run = bench::measured_fleet();

  bench::heading("Figure 4a: interception location per top-15 countries");
  auto by_country = report::figure4_by_country(run);
  std::fputs(report::render_figure4(by_country).render().c_str(), stdout);

  bench::heading("Figure 4b: interception location per top-15 organizations");
  auto by_org = report::figure4_by_org(run);
  std::fputs(report::render_figure4(by_org).render().c_str(), stdout);

  std::size_t cpe = run.count_location(core::InterceptorLocation::cpe);
  std::size_t isp = run.count_location(core::InterceptorLocation::isp);
  std::size_t unknown = run.count_location(core::InterceptorLocation::unknown);
  std::printf("\nfleet-wide: CPE=%zu, within-ISP=%zu, unknown=%zu, intercepted=%zu\n", cpe, isp,
              unknown, cpe + isp + unknown);
  std::printf("paper: CPE=49 of 220; interception is close to the client (CPE or ISP)\n");
  std::printf("       in the majority of cases.\n");

  bool close_majority = cpe + isp > unknown;
  bool cpe_sizable = cpe * 5 >= cpe + isp + unknown;  // "a sizable fraction"
  std::printf("\nshape checks: close-to-client majority: %s; CPE sizable (>=20%%): %s\n",
              close_majority ? "pass" : "FAIL", cpe_sizable ? "pass" : "FAIL");
  return close_majority && cpe_sizable ? 0 : 1;
}
