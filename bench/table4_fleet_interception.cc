// Table 4: number of intercepted probes per public resolver, IPv4 and IPv6,
// over the full simulated fleet — plus the §4.1.1 pattern census (all four /
// one intercepted / one allowed).
#include "bench_util.h"
#include "report/aggregate.h"
#include "report/stats.h"

using namespace dnslocate;

int main() {
  auto run = bench::measured_fleet();

  bench::heading("Table 4: number of intercepted probes per public resolver");
  std::fputs(report::render_table4(run).render().c_str(), stdout);

  std::printf("\npaper (IMC'21): Cloudflare 165/9619, Google 160/9655, Quad9 156/9616,\n");
  std::printf("                OpenDNS 156/9666, All Intercepted 108/9537 (v4);\n");
  std::printf("                v6 interception 11-15 per resolver, all-four 0/3691.\n");

  bench::heading("§4.1.1 pattern census (v4)");
  auto v4 = report::pattern_census(run, netbase::IpFamily::v4);
  std::printf("all four intercepted : %zu\n", v4.all_four);
  std::printf("one intercepted      : %zu\n", v4.one_intercepted);
  std::printf("one allowed (3 of 4) : %zu\n", v4.one_allowed);
  std::printf("other patterns       : %zu\n", v4.other);

  bench::heading("§4.1.1 pattern census (v6)");
  auto v6 = report::pattern_census(run, netbase::IpFamily::v6);
  std::printf("all four intercepted : %zu   (paper: 0)\n", v6.all_four);
  std::printf("partial              : %zu\n", v6.one_intercepted + v6.one_allowed + v6.other);

  std::printf("\ntotal intercepted probes: %zu (paper: 220)\n", run.intercepted_count());

  bench::heading("interception proportions (Wilson 95% intervals)");
  auto all_rows = report::table4_rows(run);
  for (const auto& row : all_rows) {
    auto ci_v4 = report::wilson_interval(row.intercepted_v4, row.total_v4);
    auto ci_v6 = report::wilson_interval(row.intercepted_v6, row.total_v6);
    std::printf("%-16s v4 %s   v6 %s\n", row.resolver.c_str(), ci_v4.to_string().c_str(),
                ci_v6.to_string().c_str());
    if (row.resolver != "All Intercepted") {
      // The paper's v4-vs-v6 contrast must be statistically unambiguous.
      if (!report::clearly_different(ci_v4, ci_v6))
        std::printf("  (warning: v4 and v6 intervals overlap for %s)\n",
                    row.resolver.c_str());
    }
  }

  // Shape checks: majority all-four, v6 an order of magnitude rarer.
  auto rows = report::table4_rows(run);
  bool shape_ok = true;
  for (const auto& row : rows) {
    if (row.resolver == "All Intercepted") continue;
    shape_ok = shape_ok && row.intercepted_v4 > 10 * row.intercepted_v6;
  }
  shape_ok = shape_ok && v4.all_four > v4.one_intercepted && v4.all_four > v4.one_allowed;
  shape_ok = shape_ok && v6.all_four == 0;
  std::printf("shape checks (v4 >> v6, all-four majority, no all-four v6): %s\n",
              shape_ok ? "pass" : "FAIL");
  return shape_ok ? 0 : 1;
}
