// Ablation A3: TTL-based hop localization — the §6 future-work idea RIPE
// Atlas could not support. With a transport that sets the IP TTL, the
// interceptor's hop distance is the smallest TTL that still draws a DNS
// response. We sweep four deployments and show the hop counts separate
// cleanly: CPE (hop 1) < ISP (hop 3) < transit interceptor < real resolver.
#include "atlas/scenario.h"
#include "bench_util.h"
#include "core/path_probe.h"
#include "core/ttl_probe.h"
#include "report/table.h"

using namespace dnslocate;

int main() {
  bench::heading("Ablation A3: TTL sweep towards 8.8.8.8 (version.bind)");

  struct Case {
    std::string label;
    atlas::ScenarioConfig config;
  };
  std::vector<Case> cases(4);
  cases[0].label = "no interception (real resolver answers)";
  cases[1].label = "CPE interceptor (XB6 bug)";
  cases[1].config.cpe.kind = atlas::CpeStyle::Kind::xb6_buggy;
  cases[2].label = "ISP interceptor (middlebox at access router)";
  cases[2].config.isp_policy.middlebox_enabled = true;
  cases[3].label = "interceptor beyond the AS (transit)";
  cases[3].config.external_interceptor = true;

  const auto& google = resolvers::PublicResolverSpec::get(resolvers::PublicResolverKind::google);
  netbase::Endpoint target{google.service_v4[0], netbase::kDnsPort};

  report::TextTable table({"Deployment", "Responder hop", "Sweep (TTL 1..12: X=answered)"});
  std::vector<std::optional<std::uint8_t>> hops;
  for (auto& c : cases) {
    atlas::Scenario scenario(c.config);
    core::TtlLocalizer::Config ttl_config;
    ttl_config.max_ttl = 12;
    core::TtlLocalizer localizer(ttl_config);
    auto sweep = localizer.sweep(scenario.transport(), target);
    hops.push_back(sweep.responder_hop);

    std::string bars;
    for (bool answered : sweep.answered) bars += answered ? 'X' : '.';
    table.add_row({c.label, sweep.responder_hop ? std::to_string(*sweep.responder_hop) : "-",
                   bars});
  }
  std::fputs(table.render().c_str(), stdout);

  bool ok = hops[1] && hops[2] && hops[3] && hops[0] &&   // everything answers eventually
            *hops[1] < *hops[2] && *hops[2] < *hops[3] && // CPE < ISP < transit
            *hops[3] <= *hops[0];                         // interceptor not beyond the resolver
  std::printf("\nhop ordering CPE < ISP < transit <= real resolver: %s\n", ok ? "pass" : "FAIL");

  // With ICMP Time Exceeded modelled, the probe can also *name* the hops —
  // a full DNS traceroute towards the intercepted resolver.
  bench::heading("DNS traceroute with ICMP hop identification (ISP interceptor)");
  {
    atlas::ScenarioConfig config;
    config.isp_policy.middlebox_enabled = true;
    atlas::Scenario scenario(config);
    core::PathProber prober;
    auto path = prober.trace(scenario.transport(), target);
    std::fputs(path.to_string().c_str(), stdout);
    std::printf("the DNS response appears %zu hop(s) before the real resolver site —\n",
                static_cast<std::size_t>(5 - path.responder_hop.value_or(5)));
    std::printf("the responder is inside the ISP, matching the bogon verdict.\n");
    ok = ok && path.responder_hop == std::optional<std::uint8_t>(3);
  }

  std::printf("\n(the paper's version.bind/bogon pipeline needs no TTL control; this\n");
  std::printf("extension adds per-hop resolution where the transport allows it.)\n");
  return ok ? 0 : 1;
}
