// Ablation A5: complementary interception signals — query replication
// (observed by Liu et al. and discussed in §3.1) and DNS-0x20 case echo —
// compared against the paper's version.bind technique across deployments.
// The point the table makes: each auxiliary signal sees only one interceptor
// class, while the location-query + version.bind pipeline covers them all.
#include "atlas/scenario.h"
#include "bench_util.h"
#include "core/dns0x20.h"
#include "core/pipeline.h"
#include "core/replication.h"
#include "report/table.h"

using namespace dnslocate;

namespace {

struct Row {
  std::string deployment;
  std::string replication;
  std::string echo;
  std::string pipeline;
};

}  // namespace

int main() {
  bench::heading("Ablation A5: replication & DNS-0x20 signals vs the pipeline");

  struct Case {
    std::string label;
    atlas::ScenarioConfig config;
    bool lowercasing_forwarder = false;
  };
  std::vector<Case> cases(5);
  cases[0].label = "no interception";
  cases[1].label = "DNAT middlebox (ISP)";
  cases[1].config.isp_policy.middlebox_enabled = true;
  cases[2].label = "replicating middlebox (ISP)";
  cases[2].config.isp_policy.middlebox_enabled = true;
  cases[2].config.isp_policy.replicate = true;
  cases[3].label = "proxying CPE (case-preserving)";
  cases[3].config.cpe.kind = atlas::CpeStyle::Kind::intercept_dnsmasq;
  cases[4].label = "proxying CPE (lowercasing)";
  cases[4].config.cpe.kind = atlas::CpeStyle::Kind::intercept_dnsmasq;
  cases[4].lowercasing_forwarder = true;

  report::TextTable table({"Deployment", "Replication seen", "0x20 case echo",
                           "Pipeline verdict"});
  std::vector<Row> rows;
  for (auto& c : cases) {
    atlas::Scenario scenario(c.config);
    std::shared_ptr<resolvers::DnsForwarderApp> quirky;
    if (c.lowercasing_forwarder && scenario.cpe_handles().forwarder) {
      resolvers::ForwarderConfig fc = scenario.cpe_handles().forwarder->config();
      fc.lowercases_queries = true;
      quirky = std::make_shared<resolvers::DnsForwarderApp>(fc);
      quirky->attach(*scenario.cpe_handles().device);
    }

    core::ReplicationProber replication;
    auto replication_report = replication.run(scenario.transport());
    core::Dns0x20Prober echo;
    auto echo_report = echo.run(scenario.transport());
    core::LocalizationPipeline pipeline(scenario.pipeline_config());
    auto verdict = pipeline.run(scenario.transport());

    auto echo_summary = [&] {
      for (const auto& [kind, result] : echo_report.per_resolver)
        if (result == core::CaseEchoResult::rewritten) return std::string("rewritten");
      return std::string("preserved");
    }();
    table.add_row({c.label, replication_report.any_replicated() ? "yes" : "no", echo_summary,
                   std::string(to_string(verdict.location))});
    rows.push_back({c.label, replication_report.any_replicated() ? "yes" : "no", echo_summary,
                    std::string(to_string(verdict.location))});
  }
  std::fputs(table.render().c_str(), stdout);

  bool ok = rows[0].replication == "no" && rows[0].echo == "preserved" &&
            rows[1].replication == "no" && rows[1].echo == "preserved" &&
            rows[1].pipeline == "within ISP" &&          // 0x20 blind, pipeline not
            rows[2].replication == "yes" &&              // replication visible
            rows[3].echo == "preserved" && rows[3].pipeline == "CPE" &&  // 0x20 blind again
            rows[4].echo == "rewritten";                 // only the quirky proxy trips 0x20
  std::printf("\neach auxiliary signal covers one interceptor class; the version.bind\n");
  std::printf("pipeline localizes all of them: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
