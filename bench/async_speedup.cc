// Async engine speedup: the batched UdpEngine vs the blocking UdpTransport
// over real loopback sockets, with identical verdicts as the gate.
//
// The setup reproduces the paper's worst realistic conditions for a
// sequential prober: every query pays a round-trip delay, every answered
// query then sits through the duplicate-collection window (replication
// detection, §3.1), and a content-keyed ~5% burst loss makes a few queries
// time out through their whole retry budget. The blocking engine pays those
// costs as a SUM (one query at a time); the batched engine pays the MAX per
// stage (all of a stage's queries in flight together), so the probe's wall
// clock drops by roughly (queries per probe / pipeline stages).
//
// The gate is twofold:
//   1. Byte-identical evidence: the full describe() trail, the location, the
//      skipped-stage mask, and the transport telemetry counts must agree
//      between engines on every round. (RTTs are wall-clock and excluded.)
//      Loss is keyed on the case-folded question name + server — invariant
//      across retry re-randomization — so both engines lose exactly the
//      same queries.
//   2. >= 4x wall-clock reduction (full mode only; --smoke exercises the
//      path in CI without gating on a shared runner's scheduling noise).
//
// Usage: async_speedup [--smoke] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/describe.h"
#include "core/mapped_transport.h"
#include "core/pipeline.h"
#include "jsonio/json.h"
#include "netbase/bogon.h"
#include "sockets/loopback_server.h"
#include "sockets/udp_engine.h"
#include "sockets/udp_transport.h"

using namespace dnslocate;

namespace {

using Clock = std::chrono::steady_clock;
using resolvers::PublicResolverKind;

/// Deterministic content-keyed burst loss: a query is a victim iff the FNV
/// hash of (case-folded qname, qtype, server address) lands under the loss
/// threshold. Every retry of a victim hashes identically (re-randomization
/// only changes the transaction ID and the 0x20 case bits), so a victim
/// times out through its whole budget — correlated "burst" loss — and both
/// engines see exactly the same outcome for every query.
class LossyResponder final : public resolvers::DnsResponder {
 public:
  LossyResponder(std::shared_ptr<resolvers::DnsResponder> inner, unsigned loss_percent,
                 std::uint64_t seed)
      : inner_(std::move(inner)), loss_percent_(loss_percent), seed_(seed) {}

  std::optional<dnswire::Message> respond(const dnswire::Message& query,
                                          const resolvers::QueryContext& context) override {
    if (const dnswire::Question* question = query.question()) {
      std::uint64_t h = 0xcbf29ce484222325ull ^ seed_;
      auto mix = [&h](unsigned char byte) { h = (h ^ byte) * 0x100000001b3ull; };
      for (char c : question->name.to_lower().to_string()) mix(static_cast<unsigned char>(c));
      mix(static_cast<unsigned char>(question->type));
      for (char c : context.server_ip.to_string()) mix(static_cast<unsigned char>(c));
      if (h % 100 < loss_percent_) {
        ++dropped_;
        return std::nullopt;  // silence: the client times out and retries
      }
    }
    return inner_->respond(query, context);
  }

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::shared_ptr<resolvers::DnsResponder> inner_;
  unsigned loss_percent_;
  std::uint64_t seed_;
  std::uint64_t dropped_ = 0;
};

/// Everything the equality gate compares — the full evidence trail minus
/// wall-clock artifacts (RTTs, elapsed times).
std::string verdict_signature(const core::ProbeVerdict& verdict) {
  std::string signature = core::describe(verdict);
  signature += "\nlocation=" + std::string(core::to_string(verdict.location));
  signature += " skipped=" + std::to_string(verdict.skipped_stages);
  signature += " queries=" + std::to_string(verdict.telemetry.queries);
  signature += " attempts=" + std::to_string(verdict.telemetry.attempts);
  signature += " retries=" + std::to_string(verdict.telemetry.retries);
  signature += " timeouts=" + std::to_string(verdict.telemetry.timeouts);
  signature += " answered=" + std::to_string(verdict.telemetry.answered);
  return signature;
}

using bench::median;

core::PipelineConfig bench_config(const netbase::IpAddress& cpe_ip) {
  core::PipelineConfig config;
  config.cpe_public_ip = cpe_ip;
  // Short timeouts keep the bench brisk; the ratios are what matter. The
  // retry policy gives every lost query a second (re-randomized) attempt.
  core::RetryPolicy retry;
  retry.max_attempts = 2;
  retry.initial_backoff = std::chrono::milliseconds(50);
  config.apply_retry_policy(retry);
  core::QueryOptions query;
  query.timeout = std::chrono::milliseconds(250);
  query.retry = retry;
  config.detection.query = query;
  config.cpe_check.query = query;
  config.bogon.query = query;
  config.bogon.test_v6 = false;  // the loopback world is v4-only
  config.transparency.query = query;
  config.replication.query = query;
  config.detect_replication = true;
  return config;
}

/// Map every address the pipeline can target at the interceptor: all four
/// resolvers' primary + secondary v4 and v6 service addresses, the CPE's
/// public IP, and the default bogon probe — the socket-level equivalent of
/// a CPE that DNATs all of port 53.
template <typename Mapped>
void map_world(Mapped& transport, const netbase::Endpoint& target,
               const netbase::IpAddress& cpe_ip) {
  for (PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    for (const auto& address : spec.service_v4) transport.map_address(address, target);
    for (const auto& address : spec.service_v6) transport.map_address(address, target);
  }
  transport.map_address(cpe_ip, target);
  transport.map_address(netbase::BogonCatalog::default_probe_v4(), target);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  constexpr unsigned kLossPercent = 5;
  // Chosen so the distinct (qname, qtype) keys this world produces include
  // a victim at 5% — the loss path is exercised, not just configured. (One
  // resolver's location-query name is the victim: its probes burn their full
  // retry budget, and the verdict still localizes to the CPE off the rest.)
  constexpr std::uint64_t kLossSeed = 11;
  const auto response_delay = std::chrono::milliseconds(smoke ? 10 : 30);
  const int rounds = smoke ? 1 : 3;

  bench::heading("Async engine speedup: batched UdpEngine vs blocking UdpTransport");

  // One loopback interceptor plays the CPE-DNAT world: it answers every
  // resolver address, the CPE's public IP, and the bogon, as a dnsmasq
  // forwarder would — behind the configured per-answer delay and loss.
  resolvers::ResolverConfig alternate;
  alternate.software = resolvers::dnsmasq("2.78");
  alternate.egress_v4 = *netbase::IpAddress::parse("127.0.0.1");
  auto lossy = std::make_shared<LossyResponder>(
      std::make_shared<resolvers::ResolverBehavior>(alternate), kLossPercent, kLossSeed);
  sockets::LoopbackDnsServer interceptor(lossy, /*serve_tcp=*/false, response_delay);

  auto cpe_ip = *netbase::IpAddress::parse("203.0.113.7");
  core::PipelineConfig config = bench_config(cpe_ip);

  sockets::UdpTransport udp;
  core::MappedTransport blocking(udp);
  map_world(blocking, interceptor.endpoint(), cpe_ip);

  sockets::UdpEngine engine;
  core::MappedBatchTransport async(engine);
  map_world(async, interceptor.endpoint(), cpe_ip);

  std::printf("[world] delay=%lldms, burst loss=%u%%, retry=2 attempts, %d round(s)%s\n",
              static_cast<long long>(response_delay.count()), kLossPercent, rounds,
              smoke ? " (smoke)" : "");

  std::vector<double> blocking_ms, async_ms;
  std::vector<std::string> signatures;
  for (int round = 0; round < rounds; ++round) {
    // Alternate the order so machine drift cancels instead of compounding.
    for (int leg = 0; leg < 2; ++leg) {
      bool run_blocking = (round + leg) % 2 == 0;
      core::LocalizationPipeline pipeline(config);
      auto start = Clock::now();
      // MappedBatchTransport serves both engine interfaces; the cast picks
      // its batched side (the blocking leg uses the plain MappedTransport).
      core::ProbeVerdict verdict =
          run_blocking ? pipeline.run(blocking)
                       : pipeline.run(static_cast<core::AsyncQueryTransport&>(async));
      double ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
      (run_blocking ? blocking_ms : async_ms).push_back(ms);
      signatures.push_back((run_blocking ? "blocking\n" : "async\n") +
                           verdict_signature(verdict));
      std::printf("  %-8s %7.1f ms  (%s, %llu queries)\n",
                  run_blocking ? "blocking" : "async", ms,
                  core::to_string(verdict.location).data(),
                  static_cast<unsigned long long>(verdict.telemetry.queries));
    }
  }

  bench::heading("checks");

  // 1. Identical evidence: every signature must match the first of its
  //    engine, and the two engines' signatures must match each other
  //    (modulo the engine tag prefixed above).
  bool identical = true;
  std::string reference;
  for (const std::string& tagged : signatures) {
    std::string body = tagged.substr(tagged.find('\n') + 1);
    if (reference.empty()) reference = body;
    else if (body != reference) identical = false;
  }
  std::printf("identical verdicts and telemetry across engines: %s\n",
              identical ? "pass" : "FAIL");

  // 2. Wall-clock reduction.
  double blocking_median = median(blocking_ms);
  double async_median = median(async_ms);
  double speedup = async_median > 0.0 ? blocking_median / async_median : 0.0;
  std::printf("blocking: %.1f ms (median)\n", blocking_median);
  std::printf("async:    %.1f ms (median)\n", async_median);
  std::printf("speedup:  %.2fx\n", speedup);
  std::printf("server drops (content-keyed burst loss): %llu\n",
              static_cast<unsigned long long>(lossy->dropped()));
  bool fast = speedup >= 4.0;
  std::printf("speedup >= 4x: %s%s\n", fast ? "pass" : "FAIL",
              smoke ? " (not gating in smoke mode)" : "");

  if (json_path != nullptr) {
    jsonio::Object out;
    out["bench"] = std::string("async_speedup");
    out["smoke"] = smoke;
    out["rounds"] = static_cast<std::uint64_t>(rounds);
    out["loss_percent"] = static_cast<std::uint64_t>(kLossPercent);
    out["response_delay_ms"] = static_cast<std::uint64_t>(response_delay.count());
    out["blocking_ms_median"] = blocking_median;
    out["async_ms_median"] = async_median;
    out["speedup"] = speedup;
    out["server_drops"] = lossy->dropped();
    out["check_identical_verdicts"] = identical;
    out["check_speedup_4x"] = fast;
    std::ofstream file(json_path);
    file << jsonio::Value(std::move(out)).dump() << "\n";
    std::printf("wrote %s\n", json_path);
  }

  bool ok = identical && (fast || smoke);
  std::printf("\noverall: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
