// Ablation A3 (ours): localization accuracy under injected last-mile faults.
//
// The paper's technique reads silence as signal (§3.3), so burst loss on the
// access link is its natural adversary: a lost version.bind answer turns a
// CPE verdict into "unknown", a lost bogon answer turns an ISP verdict into
// "unknown". This sweep measures that degradation and shows the adaptive
// retry policy (fresh transaction ID + re-randomized 0x20 casing per
// attempt, exponential backoff) recovering almost all of it — without ever
// flipping a timeout into a false positive.
#include <cinttypes>

#include "bench_util.h"
#include "report/aggregate.h"

using namespace dnslocate;

namespace {

struct SweepPoint {
  double loss = 0.0;
  bool retries = false;
  report::ConfusionMatrix matrix;
  report::LocalizationAccuracy localization;
  report::RetryCensus census;
  simnet::DropCounters drops;
  simnet::FaultPlan::Counters faults;
};

atlas::MeasurementRun run_config(double loss, bool retries, double scale) {
  atlas::FleetConfig config;
  config.scale = scale;
  if (loss > 0.0) {
    config.faults = simnet::FaultProfile::burst_loss(loss);
    // A little realism on top of pure loss: the retry policy must stay
    // correct when the surviving responses are jittered and duplicated too.
    config.faults.duplicate_rate = 0.01;
    config.faults.jitter_max = std::chrono::milliseconds(3);
  }
  config.fault_classes = {"access"};
  if (retries) config.retry = core::RetryPolicy::standard(4);

  auto fleet = atlas::generate_fleet(config);
  atlas::MeasurementOptions options;
  options.threads = 0;  // probes are independent; use every core
  return atlas::run_fleet(fleet, options);
}

SweepPoint measure(double loss, bool retries, double scale) {
  SweepPoint point;
  point.loss = loss;
  point.retries = retries;
  auto run = run_config(loss, retries, scale);
  point.matrix = report::accuracy_matrix(run);
  point.localization = report::localization_accuracy(run);
  point.census = report::retry_census(run);
  for (const auto& record : run.records) {
    point.drops += record.drops;
    point.faults.burst_drops += record.faults.burst_drops;
    point.faults.random_drops += record.faults.random_drops;
    point.faults.reordered += record.faults.reordered;
    point.faults.duplicated += record.faults.duplicated;
    point.faults.truncated += record.faults.truncated;
    point.faults.jittered += record.faults.jittered;
  }
  return point;
}

bool same_matrix(const report::ConfusionMatrix& a, const report::ConfusionMatrix& b) {
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      if (a.cells[i][j] != b.cells[i][j]) return false;
  return true;
}

}  // namespace

int main() {
  constexpr double kScale = 0.25;
  constexpr double kLossRates[] = {0.0, 0.02, 0.05, 0.10};

  bench::heading("Ablation A3: accuracy under access-link faults, retries off vs on");

  std::vector<SweepPoint> sweep;
  for (double loss : kLossRates)
    for (bool retries : {false, true}) {
      if (loss == 0.0 && retries) continue;  // no faults: retries never fire
      std::printf("[run] burst loss %.0f%%, retries %s\n", loss * 100.0,
                  retries ? "on" : "off");
      sweep.push_back(measure(loss, retries, kScale));
    }

  std::printf("\n%-12s %-8s %-10s %-14s %-10s %-10s %-10s\n", "burst loss", "retries",
              "accuracy", "localization", "attempts", "timeouts", "drops");
  for (const SweepPoint& point : sweep) {
    char loss_label[16], local_label[24];
    std::snprintf(loss_label, sizeof loss_label, "%.0f%%", point.loss * 100.0);
    std::snprintf(local_label, sizeof local_label, "%zu/%zu", point.localization.correct,
                  point.localization.intercepted_truth);
    std::printf("%-12s %-8s %-10.4f %-14s %-10" PRIu64 " %-10zu %-10" PRIu64 "\n",
                loss_label, point.retries ? "on" : "off", point.matrix.accuracy(),
                local_label, point.census.totals.attempts,
                static_cast<std::size_t>(point.census.totals.timeouts),
                point.faults.drops());
  }

  const SweepPoint& baseline = sweep[0];
  const SweepPoint* off_at_5 = nullptr;
  const SweepPoint* on_at_5 = nullptr;
  for (const SweepPoint& point : sweep) {
    if (point.loss == 0.05 && !point.retries) off_at_5 = &point;
    if (point.loss == 0.05 && point.retries) on_at_5 = &point;
  }

  bench::heading("confusion at 5% burst loss, retries off");
  std::fputs(report::render_confusion(off_at_5->matrix).render().c_str(), stdout);
  bench::heading("confusion at 5% burst loss, retries on");
  std::fputs(report::render_confusion(on_at_5->matrix).render().c_str(), stdout);
  bench::heading("retry census at 5% burst loss, retries on");
  std::fputs(report::render_retry_census(on_at_5->census).render().c_str(), stdout);

  std::printf("\nper-cause drops at 5%% loss (retries on): burst=%" PRIu64
              " random=%" PRIu64 " hook=%" PRIu64 " no_route=%" PRIu64
              " no_listener=%" PRIu64 "\n",
              on_at_5->drops.fault_burst, on_at_5->drops.fault_random,
              on_at_5->drops.by_hook, on_at_5->drops.no_route,
              on_at_5->drops.no_listener);
  std::printf("injected faults: duplicated=%" PRIu64 " jittered=%" PRIu64
              " reordered=%" PRIu64 " truncated=%" PRIu64 "\n",
              on_at_5->faults.duplicated, on_at_5->faults.jittered,
              on_at_5->faults.reordered, on_at_5->faults.truncated);

  bench::heading("checks");

  // 1. Determinism: the same configuration replays bit-identically.
  SweepPoint replay = measure(0.05, true, kScale);
  bool deterministic = same_matrix(replay.matrix, on_at_5->matrix) &&
                       replay.census.totals.attempts == on_at_5->census.totals.attempts &&
                       replay.faults.drops() == on_at_5->faults.drops();
  std::printf("deterministic replay of the 5%%/retries run: %s\n",
              deterministic ? "pass" : "FAIL");
  if (!deterministic) {
    std::printf("  matrix match=%d attempts %" PRIu64 " vs %" PRIu64 " fault drops %" PRIu64
                " vs %" PRIu64 "\n",
                same_matrix(replay.matrix, on_at_5->matrix) ? 1 : 0,
                replay.census.totals.attempts, on_at_5->census.totals.attempts,
                replay.faults.drops(), on_at_5->faults.drops());
  }

  // 2. With retries, 5% burst loss costs at most 2 points of localization
  //    accuracy vs the zero-fault baseline.
  double base_acc = baseline.localization.accuracy();
  double on_acc = on_at_5->localization.accuracy();
  double off_acc = off_at_5->localization.accuracy();
  std::printf("localization accuracy: baseline=%.4f retries-on@5%%=%.4f "
              "retries-off@5%%=%.4f\n",
              base_acc, on_acc, off_acc);
  bool resilient = on_acc >= base_acc - 0.02;
  std::printf("retries hold within 2 points of the zero-fault baseline: %s\n",
              resilient ? "pass" : "FAIL");

  // 3. The no-retry baseline measurably degrades (otherwise the ablation
  //    would not be exercising anything).
  bool degrades = off_acc < on_acc && off_acc < base_acc - 0.02;
  std::printf("single-shot queries measurably degrade under loss: %s\n",
              degrades ? "pass" : "FAIL");

  // 4. Safety: loss must never manufacture interception. Probes that are
  //    truly clean may time out, but a timeout is conservatively "not
  //    intercepted" — so the not-intercepted row must stay diagonal.
  const auto& cells = on_at_5->matrix.cells;
  bool no_false_positives = cells[0][1] == 0 && cells[0][2] == 0 && cells[0][3] == 0;
  std::printf("no fault-induced false interception verdicts: %s\n",
              no_false_positives ? "pass" : "FAIL");

  bool ok = deterministic && resilient && degrades && no_false_positives;
  std::printf("\noverall: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
