// Ablation A1 (Appendix A): why the CPE check needs version.bind rather
// than an ordinary A-record query. We implement the naive variant — compare
// answers for example.com from the CPE's public IP and from the public
// resolvers — and show it misclassifies a benign open-port CPE behind an
// ISP interceptor, while the version.bind comparison does not.
#include "atlas/scenario.h"
#include "bench_util.h"
#include "dnswire/debug_queries.h"
#include "report/table.h"

using namespace dnslocate;

namespace {

/// The naive Appendix-A strawman: "CPE is the interceptor if the A-record
/// answer from the CPE's public IP equals the answer from the resolver."
bool naive_arecord_says_cpe(core::QueryTransport& transport,
                            const netbase::IpAddress& cpe_public_ip) {
  auto example = *dnswire::DnsName::parse("example.com");
  auto ask = [&](const netbase::Endpoint& server) -> std::optional<netbase::IpAddress> {
    auto query = dnswire::make_query(0x7a7a, example, dnswire::RecordType::A);
    auto result = transport.query(server, query);
    if (!result.answered()) return std::nullopt;
    return result.response->first_address();
  };

  auto from_cpe = ask({cpe_public_ip, netbase::kDnsPort});
  if (!from_cpe) return false;
  const auto& spec = resolvers::PublicResolverSpec::get(resolvers::PublicResolverKind::google);
  auto from_resolver = ask({spec.service_v4[0], netbase::kDnsPort});
  return from_resolver && *from_cpe == *from_resolver;
}

struct Row {
  std::string scenario;
  std::string truth;
  bool naive_cpe;
  bool versionbind_cpe;
  bool truth_cpe;
};

}  // namespace

int main() {
  bench::heading("Ablation A1: A-record comparison vs version.bind comparison");

  std::vector<Row> rows;
  struct Case {
    std::string label;
    atlas::CpeStyle::Kind cpe;
    bool middlebox;
  };
  const Case cases[] = {
      {"benign open-port CPE + ISP interceptor", atlas::CpeStyle::Kind::benign_open_dnsmasq,
       true},
      {"intercepting CPE (dnsmasq DNAT)", atlas::CpeStyle::Kind::intercept_dnsmasq, false},
      {"benign open-port CPE, no interception", atlas::CpeStyle::Kind::benign_open_dnsmasq,
       false},
      {"XB6 with the XDNS bug", atlas::CpeStyle::Kind::xb6_buggy, false},
  };

  bool versionbind_all_correct = true;
  bool naive_made_the_appendix_a_error = false;

  for (const Case& c : cases) {
    atlas::ScenarioConfig config;
    config.cpe.kind = c.cpe;
    config.isp_policy.middlebox_enabled = c.middlebox;
    atlas::Scenario scenario(config);

    bool naive = naive_arecord_says_cpe(scenario.transport(), scenario.cpe_wan_v4());

    core::LocalizationPipeline pipeline(scenario.pipeline_config());
    auto verdict = pipeline.run(scenario.transport());
    bool vb = verdict.location == core::InterceptorLocation::cpe;

    bool truth_cpe = scenario.ground_truth().cpe_intercepts;
    if (vb != truth_cpe &&
        scenario.ground_truth().expected != core::InterceptorLocation::not_intercepted)
      versionbind_all_correct = false;
    if (c.middlebox && c.cpe == atlas::CpeStyle::Kind::benign_open_dnsmasq && naive)
      naive_made_the_appendix_a_error = true;

    rows.push_back(Row{c.label, std::string(to_string(scenario.ground_truth().expected)), naive,
                       vb, truth_cpe});
  }

  report::TextTable table(
      {"Scenario", "Ground truth", "A-record method says CPE", "version.bind method says CPE"});
  auto mark = [](bool said_cpe, bool truth_cpe) {
    std::string cell = said_cpe ? "yes" : "no";
    if (said_cpe != truth_cpe) cell += " (wrong)";
    return cell;
  };
  for (const Row& row : rows)
    table.add_row({row.scenario, row.truth, mark(row.naive_cpe, row.truth_cpe),
                   mark(row.versionbind_cpe, row.truth_cpe)});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nAppendix A reproduced: the A-record variant blames the CPE for ISP\n");
  std::printf("interception behind an open port 53 (%s), the version.bind variant\n",
              naive_made_the_appendix_a_error ? "it does" : "NOT REPRODUCED");
  std::printf("stays correct on every case (%s).\n",
              versionbind_all_correct ? "it does" : "NOT REPRODUCED");
  return naive_made_the_appendix_a_error && versionbind_all_correct ? 0 : 1;
}
