// Table 1: location queries and examples of expected responses from each
// resolver. Regenerated from the resolver models, then cross-checked
// against the core classifiers (every modelled answer must classify as
// "standard", from every anycast site).
#include "bench_util.h"
#include "core/classify.h"
#include "report/table.h"
#include "resolvers/public_resolver.h"

using namespace dnslocate;

int main() {
  bench::heading("Table 1: location queries and expected responses");

  report::TextTable table({"Public Resolver", "Type", "Location Query", "Example Response"});
  for (auto kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    resolvers::PublicResolverBehavior behavior(kind, /*site iad*/ 0, /*instance*/ 4);
    std::string type = spec.location_query.klass == dnswire::RecordClass::CH ? "CHAOS TXT"
                                                                             : "TXT";
    table.add_row({std::string(to_string(kind)), type, spec.location_query.name.to_string(),
                   behavior.expected_location_answer()});
  }
  std::fputs(table.render().c_str(), stdout);

  bench::heading("classifier cross-check (every site, every resolver)");
  std::size_t checked = 0, standard = 0;
  for (auto kind : resolvers::all_public_resolvers()) {
    for (std::size_t site = 0; site < resolvers::anycast_sites().size(); ++site) {
      for (unsigned instance = 0; instance < 4; ++instance) {
        resolvers::PublicResolverBehavior behavior(kind, site, instance);
        std::string answer = behavior.expected_location_answer();
        bool ok = false;
        switch (kind) {
          case resolvers::PublicResolverKind::cloudflare:
            ok = core::is_cloudflare_standard(answer);
            break;
          case resolvers::PublicResolverKind::google:
            ok = core::is_google_standard(answer);
            break;
          case resolvers::PublicResolverKind::quad9:
            ok = core::is_quad9_standard(answer);
            break;
          case resolvers::PublicResolverKind::opendns:
            ok = core::is_opendns_standard(answer);
            break;
        }
        ++checked;
        if (ok) ++standard;
      }
    }
  }
  std::printf("%zu/%zu modelled answers classify as standard\n", standard, checked);
  return standard == checked ? 0 : 1;
}
