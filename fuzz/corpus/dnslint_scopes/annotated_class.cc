class Service {
 public:
  void submit() DNSLOCATE_EXCLUDES(mutex_);

 private:
  mutable netbase::Mutex mutex_;
  std::mutex raw_;
  std::uint64_t count_ DNSLOCATE_GUARDED_BY(mutex_) = 0;
  std::uint64_t bare_ = 0;
  std::condition_variable cv_;
};
