void f(std::mutex& m) {
  std::lock_guard<std::mutex> lock(m);
  } } }
  { { auto g = std::unique_lock(m);
#define WEIRD {
  ::poll(nullptr, 0, -1);
