void f(std::mutex& m) {
  std::lock_guard<std::mutex> lock(m);
  auto task = [&lock](int fd) -> int {
    ::fsync(fd);
    return 0;
  };
  auto nested = [cb = [&] { ::write(1, "x", 1); }] { cb(); };
  (void)task;
  (void)nested;
}
