std::mutex mutex_;
std::mutex mutex;

void f() {
  std::lock_guard<std::mutex> a(mutex);
  std::lock_guard<std::mutex> b(mutex_);
  std::scoped_lock both(mutex_, mutex);
}
