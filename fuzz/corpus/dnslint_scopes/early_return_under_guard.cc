bool f(std::mutex& m, bool flag) {
  std::unique_lock<std::mutex> lock(m);
  if (flag) return true;
  lock.unlock();
  ::fsync(3);
  return false;
}
