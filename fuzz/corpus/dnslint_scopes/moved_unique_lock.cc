void f(std::mutex& m) {
  std::unique_lock<std::mutex> lock(m, std::defer_lock);
  lock.lock();
  {
    auto inner = std::move(lock);
  }
  ::fsync(3);
}
