// libFuzzer harness for the DNS wire decoder — the parser XDRI showed is
// the soft underbelly of residential-router DNS. Properties enforced:
//
//  1. decode_message never crashes, overreads, or hangs on arbitrary bytes
//     (asan/ubsan catch the former; pointer-loop caps bound the latter).
//  2. Anything that decodes re-encodes, and the re-encoded bytes decode
//     again (round-trip closure, with and without name compression).
//  3. Re-encoding the re-decoded message is byte-stable (encoder is a
//     function of the parsed value, not of the original byte quirks).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "dnswire/decoder.h"
#include "dnswire/encoder.h"

using dnslocate::dnswire::DecodeError;
using dnslocate::dnswire::DecodeOptions;
using dnslocate::dnswire::EncodeOptions;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::span<const std::uint8_t> wire(data, size);

  DecodeError error;
  auto lax = dnslocate::dnswire::decode_message(wire, &error, DecodeOptions{});
  // Strict mode must agree with lax mode on everything but trailing bytes.
  auto strict =
      dnslocate::dnswire::decode_message(wire, nullptr, DecodeOptions{.reject_trailing_bytes = true});
  if (strict.has_value() && !lax.has_value()) {
    std::fprintf(stderr, "strict decode accepted what lax decode rejected\n");
    std::abort();
  }
  if (!lax.has_value()) return 0;

  for (bool compress : {false, true}) {
    dnslocate::dnswire::WireBuffer encoded =
        dnslocate::dnswire::encode_message(*lax, EncodeOptions{.compress_names = compress});
    DecodeError rt_error;
    auto redecoded = dnslocate::dnswire::decode_message(encoded, &rt_error, DecodeOptions{});
    if (!redecoded.has_value()) {
      std::fprintf(stderr, "round-trip decode failed (compress=%d): %s\n", compress,
                   rt_error.to_string().c_str());
      std::abort();
    }
    dnslocate::dnswire::WireBuffer re_encoded =
        dnslocate::dnswire::encode_message(*redecoded, EncodeOptions{.compress_names = compress});
    if (re_encoded != encoded) {
      std::fprintf(stderr, "encode(decode(encode(m))) not byte-stable (compress=%d)\n",
                   compress);
      std::abort();
    }
  }
  return 0;
}
