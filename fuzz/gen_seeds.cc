// Regenerates the checked-in seed corpora under fuzz/corpus/ from the same
// vectors the unit tests exercise: valid queries/responses across every
// RDATA type, truncations, compression-pointer pathologies, and journal
// files that are intact, truncated mid-line, and bit-flipped.
//
//   gen_seeds <corpus-root>     # writes <root>/dnswire/* and <root>/journal/*
#include <cstdio>
#include <filesystem>
#include <span>
#include <fstream>
#include <string>
#include <vector>

#include "atlas/journal.h"
#include "dnswire/encoder.h"
#include "dnswire/message.h"
#include "dnswire/record.h"
#include "netbase/ipv4.h"
#include "netbase/ipv6.h"

namespace fs = std::filesystem;
using namespace dnslocate;  // tool-only TU; keeps the vector table readable

namespace {

void write_bytes(const fs::path& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void write_text(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

dnswire::DnsName name(const char* text) { return *dnswire::DnsName::parse(text); }

dnswire::WireBuffer query_example() {
  dnswire::Message m;
  m.id = 0x1234;
  m.questions.push_back({name("whoami.akamai.net"), dnswire::RecordType::A,
                         dnswire::RecordClass::IN});
  return dnswire::encode_message(m);
}

dnswire::WireBuffer response_all_types(bool compress) {
  dnswire::Message m;
  m.id = 0xbeef;
  m.flags.qr = true;
  m.flags.ra = true;
  m.questions.push_back({name("o-o.myaddr.l.google.com"), dnswire::RecordType::TXT,
                         dnswire::RecordClass::IN});
  m.answers.push_back(dnswire::make_txt(name("o-o.myaddr.l.google.com"), "192.0.2.33"));
  m.answers.push_back(dnswire::make_a(name("example.com"), netbase::Ipv4Address(192, 0, 2, 1)));
  m.answers.push_back(dnswire::make_cname(name("www.example.com"), name("example.com")));
  dnswire::SoaRecord soa{name("ns1.example.com"), name("hostmaster.example.com"),
                         2021, 7200, 900, 1209600, 300};
  m.authorities.push_back({name("example.com"), dnswire::RecordType::SOA,
                           dnswire::RecordClass::IN, 3600, soa});
  dnswire::MxRecord mx{10, name("mail.example.com")};
  m.additionals.push_back({name("example.com"), dnswire::RecordType::MX,
                           dnswire::RecordClass::IN, 3600, mx});
  dnswire::SrvRecord srv{0, 5, 853, name("dot.example.com")};
  m.additionals.push_back({name("_dns._tcp.example.com"), dnswire::RecordType::SRV,
                           dnswire::RecordClass::IN, 300, srv});
  dnswire::OptRecord opt;
  opt.udp_payload_size = 4096;
  m.additionals.push_back({name("."), dnswire::RecordType::OPT, dnswire::RecordClass::IN,
                           0, opt});
  return dnswire::encode_message(m, {.compress_names = compress});
}

/// Hand-crafted header + QNAME whose compression pointer points at itself.
std::vector<std::uint8_t> pointer_loop() {
  std::vector<std::uint8_t> wire = {0xab, 0xcd, 0x01, 0x00, 0x00, 0x01,
                                    0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  wire.push_back(0xc0);  // pointer ...
  wire.push_back(0x0c);  // ... to itself (offset 12)
  wire.push_back(0x00);  // qtype/qclass
  wire.push_back(0x01);
  wire.push_back(0x00);
  wire.push_back(0x01);
  return wire;
}

/// QNAME with reserved label bits (01) — the bad_label path.
std::vector<std::uint8_t> reserved_label_bits() {
  std::vector<std::uint8_t> wire = {0x00, 0x02, 0x00, 0x00, 0x00, 0x01,
                                    0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  wire.push_back(0x40);  // label type 01: reserved
  wire.push_back('x');
  wire.push_back(0x00);
  return wire;
}

// --- adversary-shaped wire (simnet/adversary.h's observable outputs) -----
// What the DPI personalities and spoofing injectors actually put on the
// wire, so the decoder's fuzz corpus covers the same ambiguities the
// arbitration layer has to survive: case-folded echoes, EDNS-stripped
// queries, self-contradictory TC responses, and forged racing answers.

/// A mixed-case 0x20 query carrying an OPT record — the input a DPI box
/// case-folds and/or EDNS-strips.
dnswire::Message query_mixed_case_edns() {
  dnswire::Message m;
  m.id = 0x2020;
  m.questions.push_back({name("WhOaMi.AkAmAi.NeT"), dnswire::RecordType::A,
                         dnswire::RecordClass::IN});
  dnswire::OptRecord opt;
  opt.udp_payload_size = 1232;
  m.additionals.push_back({name("."), dnswire::RecordType::OPT, dnswire::RecordClass::IN,
                           0, opt});
  return m;
}

/// The same query after dpi_foldix + dpi_optstrip mangling: question
/// lowercased, OPT gone (a 512-byte ceiling the client never asked for).
dnswire::WireBuffer adversary_folded_stripped() {
  dnswire::Message m = query_mixed_case_edns();
  m.questions.front().name = name("whoami.akamai.net");
  m.additionals.clear();
  return dnswire::encode_message(m);
}

/// dpi_truncor's output: TC set while the answer section is intact — a
/// self-contradictory message no real server emits.
dnswire::WireBuffer adversary_tc_with_answers() {
  dnswire::Message m;
  m.id = 0x7c7c;
  m.flags.qr = true;
  m.flags.ra = true;
  m.flags.tc = true;
  m.questions.push_back({name("whoami.akamai.net"), dnswire::RecordType::A,
                         dnswire::RecordClass::IN});
  m.answers.push_back(dnswire::make_a(name("whoami.akamai.net"),
                                      netbase::Ipv4Address(192, 0, 2, 33)));
  return dnswire::encode_message(m);
}

/// An on-path spoofer's forged location answer: copied ID and casing (it
/// passes RFC 5452 and must be caught by arbitration), payload that matches
/// no resolver's catalogue.
dnswire::WireBuffer adversary_spoofed_txt() {
  dnswire::Message m;
  m.id = 0x2020;
  m.flags.qr = true;
  m.flags.ra = true;
  m.questions.push_back({name("WhOaMi.AkAmAi.NeT"), dnswire::RecordType::TXT,
                         dnswire::RecordClass::IN});
  m.answers.push_back(dnswire::make_txt(name("WhOaMi.AkAmAi.NeT"), "SPOOFED"));
  return dnswire::encode_message(m);
}

std::string journal_text() {
  atlas::JournalHeader header;
  header.fingerprint = 0x0123456789abcdefull;
  header.fleet_size = 3;
  fs::path tmp = fs::temp_directory_path() / "dnslocate_gen_seeds_journal.jsonl";
  {
    atlas::JournalWriter writer(tmp.string(), header);
    atlas::ProbeRecord ok;
    ok.probe_id = 1;
    ok.org.asn = 7922;
    ok.tested_v6 = true;
    ok.elapsed = std::chrono::microseconds(4242);
    writer.append(ok);
    atlas::ProbeRecord failed;
    failed.probe_id = 2;
    failed.outcome = atlas::ProbeOutcome::failed;
    failed.error = "transport exploded";
    writer.append(failed);
    atlas::ProbeRecord late;
    late.probe_id = 3;
    late.outcome = atlas::ProbeOutcome::deadline_exceeded;
    late.verdict.skipped_stages = 0x18;  // replication + transparency bits
    writer.append(late);
    writer.sync();
  }
  std::ifstream in(tmp, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  fs::remove(tmp);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: gen_seeds <corpus-root>\n");
    return 2;
  }
  fs::path root(argv[1]);
  fs::create_directories(root / "dnswire");
  fs::create_directories(root / "journal");

  // --- dnswire seeds -------------------------------------------------------
  write_bytes(root / "dnswire" / "query_a.bin", query_example());
  write_bytes(root / "dnswire" / "response_compressed.bin", response_all_types(true));
  write_bytes(root / "dnswire" / "response_uncompressed.bin", response_all_types(false));
  dnswire::WireBuffer truncated = response_all_types(true);
  truncated.resize(truncated.size() * 3 / 5);
  write_bytes(root / "dnswire" / "response_truncated.bin", truncated);
  write_bytes(root / "dnswire" / "pointer_loop.bin", pointer_loop());
  write_bytes(root / "dnswire" / "reserved_label.bin", reserved_label_bits());
  dnswire::WireBuffer trailing = query_example();
  trailing.insert(trailing.end(), {0xde, 0xad, 0xbe, 0xef});
  write_bytes(root / "dnswire" / "query_trailing_bytes.bin", trailing);
  const std::vector<std::uint8_t> header_only = {0x00, 0x01, 0x80, 0x00, 0x00, 0x00,
                                                 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  write_bytes(root / "dnswire" / "header_only.bin", header_only);
  write_bytes(root / "dnswire" / "adversary_query_mixed_case_edns.bin",
              dnswire::encode_message(query_mixed_case_edns()));
  write_bytes(root / "dnswire" / "adversary_query_folded_stripped.bin",
              adversary_folded_stripped());
  write_bytes(root / "dnswire" / "adversary_tc_with_answers.bin", adversary_tc_with_answers());
  write_bytes(root / "dnswire" / "adversary_spoofed_txt.bin", adversary_spoofed_txt());

  // --- journal seeds -------------------------------------------------------
  std::string intact = journal_text();
  write_text(root / "journal" / "intact.jsonl", intact);
  write_text(root / "journal" / "truncated_tail.jsonl",
             intact.substr(0, intact.size() - intact.size() / 4));
  std::string flipped = intact;
  flipped[intact.size() / 2] ^= 0x20;  // corrupt one record body mid-file
  write_text(root / "journal" / "bitflip_body.jsonl", flipped);
  std::string bad_header = intact;
  bad_header[10] ^= 0x01;  // corrupt the header line
  write_text(root / "journal" / "bitflip_header.jsonl", bad_header);
  write_text(root / "journal" / "header_only.jsonl",
             intact.substr(0, intact.find('\n') + 1));

  std::printf("gen_seeds: corpora written under %s\n", root.string().c_str());
  return 0;
}
