// Corpus-replay driver used when the toolchain has no libFuzzer (GCC).
// Mirrors libFuzzer's file-replay CLI shape: every non-flag argument is a
// corpus file or directory, flags (-runs=0, -max_total_time=30, ...) are
// ignored, and each input is fed once to LLVMFuzzerTestOneInput. With
// -mutate=N (also understood, and harmlessly warned about, by libFuzzer)
// each input is additionally replayed N times with deterministic splitmix64
// bit flips — a seedable smoke approximation of a short fuzzing run.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  long mutations = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') {
      if (std::strncmp(argv[i], "-mutate=", 8) == 0) mutations = std::atol(argv[i] + 8);
      continue;  // ignore libFuzzer-style flags
    }
    std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p))
        if (entry.is_regular_file()) inputs.push_back(entry.path());
    } else {
      inputs.push_back(p);
    }
  }
  std::sort(inputs.begin(), inputs.end());  // deterministic replay order

  std::size_t executed = 0;
  for (const auto& path : inputs) {
    std::vector<std::uint8_t> bytes = read_file(path);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++executed;
    // Deterministic neighbourhood: flip 1-4 bits per round, seeded only by
    // the input length and round index so runs are reproducible everywhere.
    for (long round = 0; round < mutations; ++round) {
      std::vector<std::uint8_t> mutated = bytes;
      if (mutated.empty()) break;
      std::uint64_t state = 0x6a09e667f3bcc908ull ^ (mutated.size() * 0x10001u) ^
                            static_cast<std::uint64_t>(round);
      std::uint64_t flips = 1 + (splitmix64(state) & 3);
      for (std::uint64_t f = 0; f < flips; ++f) {
        std::uint64_t r = splitmix64(state);
        mutated[r % mutated.size()] ^= static_cast<std::uint8_t>(1u << ((r >> 32) & 7));
      }
      LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
      ++executed;
    }
  }
  std::printf("standalone fuzz driver: executed %zu input(s) from %zu file(s)\n", executed,
              inputs.size());
  return 0;
}
