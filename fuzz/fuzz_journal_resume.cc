// libFuzzer harness for journal salvage/resume — the crash-tolerance layer
// must never fabricate evidence, whatever bytes a crash left on disk.
// Properties enforced:
//
//  1. parse_journal never crashes or overreads on arbitrary journal text;
//     damaged lines are dropped with warnings, never invented.
//  2. Every record it salvages round-trips: dump -> parse -> from_json ->
//     dump is byte-identical, and journal_record_dump agrees byte-for-byte
//     with journal_record_to_json(...).dump() — the checksum covers exactly
//     those bytes, so any divergence silently breaks crash recovery.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "atlas/journal.h"
#include "jsonio/json.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  dnslocate::atlas::JournalLoadResult result = dnslocate::atlas::parse_journal(text);
  if (!result.ok()) return 0;

  for (const dnslocate::atlas::ProbeRecord& record : result.records) {
    std::string dump = dnslocate::atlas::journal_record_dump(record);
    std::string tree_dump = dnslocate::atlas::journal_record_to_json(record).dump();
    if (dump != tree_dump) {
      std::fprintf(stderr, "journal_record_dump diverges from the jsonio tree dump\n");
      std::abort();
    }
    auto parsed = dnslocate::jsonio::parse(dump);
    if (!parsed) {
      std::fprintf(stderr, "salvaged record dump is not valid JSON\n");
      std::abort();
    }
    auto restored = dnslocate::atlas::journal_record_from_json(*parsed);
    if (!restored) {
      std::fprintf(stderr, "salvaged record does not re-parse\n");
      std::abort();
    }
    if (dnslocate::atlas::journal_record_dump(*restored) != dump) {
      std::fprintf(stderr, "record round-trip is not byte-stable\n");
      std::abort();
    }
  }
  return 0;
}
