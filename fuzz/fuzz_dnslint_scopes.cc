// libFuzzer harness for dnslint's scope-aware lock engine (R7-R9). The
// tracker walks a token stream with a hand-rolled brace/lambda/guard model,
// which is exactly the kind of code where a weird-but-legal input shape
// (unbalanced braces from a macro, a lambda in a default argument, a moved
// unique_lock) can desynchronise a stack. Properties enforced:
//
//  1. lint_file never crashes, overreads, or hangs on arbitrary "source":
//     the engine must be total over byte strings, not just over C++.
//  2. Findings are well-formed: every finding names a known rule, a
//     non-zero line no greater than the input's line count, and a
//     non-empty message.
//  3. The engine is deterministic: linting the same bytes twice (with and
//     without a declared lock order) yields identical findings.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "dnslint/lint.h"

namespace {

std::size_t count_lines(std::string_view text) {
  std::size_t lines = 1;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

bool same(const std::vector<dnslocate::lint::Finding>& a,
          const std::vector<dnslocate::lint::Finding>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].path != b[i].path || a[i].line != b[i].line ||
        a[i].rule != b[i].rule || a[i].message != b[i].message) {
      return false;
    }
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::string source(reinterpret_cast<const char*>(data), size);
  // src/service/ paths run every engine: R1-R6, the scope tracker, and
  // annotation coverage.
  const std::string path = "src/service/fuzz.cc";

  auto findings = dnslocate::lint::lint_file(path, source);
  const std::size_t lines = count_lines(source);
  for (const auto& f : findings) {
    if (f.line == 0 || f.line > lines) {
      std::fprintf(stderr, "finding line %zu out of range (input has %zu lines)\n",
                   f.line, lines);
      std::abort();
    }
    if (f.rule.empty() || f.message.empty() || f.path != path) {
      std::fprintf(stderr, "malformed finding: rule/message empty or path rewritten\n");
      std::abort();
    }
  }

  if (!same(findings, dnslocate::lint::lint_file(path, source))) {
    std::fprintf(stderr, "lint_file is not deterministic\n");
    std::abort();
  }

  // A declared lock order may add lock-order findings but must never
  // destabilise the walk.
  dnslocate::lint::LockOrder order;
  order.labels = {"mutex_", "mutex"};
  auto ordered_a = dnslocate::lint::lint_file(path, source, order);
  auto ordered_b = dnslocate::lint::lint_file(path, source, order);
  if (!same(ordered_a, ordered_b)) {
    std::fprintf(stderr, "lint_file with a lock order is not deterministic\n");
    std::abort();
  }
  return 0;
}
