#include "jsonio/json.h"

#include <algorithm>
#include <charconv>
#include <cmath>

namespace dnslocate::jsonio {

const Value& Value::operator[](const std::string& key) const {
  static const Value null_value;
  const Object* object = std::get_if<Object>(&storage_);
  if (object == nullptr) return null_value;
  auto it = object->find(key);
  return it == object->end() ? null_value : it->second;
}

std::string escape(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out += "\"";
  return out;
}

namespace {

void dump_value(const Value& value, std::string& out);

void dump_number(double d, std::string& out) {
  // Integers print without a fractional part; everything else shortest-ish.
  if (std::nearbyint(d) == d && std::abs(d) < 1e15) {
    char buffer[32];
    auto [p, ec] = std::to_chars(buffer, buffer + sizeof buffer,
                                 static_cast<std::int64_t>(d));
    (void)ec;
    out.append(buffer, p);
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", d);
  out += buffer;
}

void dump_value(const Value& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    dump_number(value.as_number(), out);
  } else if (value.is_string()) {
    out += escape(value.as_string());
  } else if (value.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Value& element : value.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_value(element, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, element] : value.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      out += escape(key);
      out.push_back(':');
      dump_value(element, out);
    }
    out.push_back('}');
  }
}

class Parser {
 public:
  Parser(std::string_view text, ParseError* error) : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_whitespace();
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters");
      return std::nullopt;
    }
    return value;
  }

 private:
  void fail(std::string message) {
    if (error_ && !failed_) {
      ParseError out;
      out.offset = pos_;
      out.message = std::move(message);
      *error_ = std::move(out);
    }
    failed_ = true;
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Value> parse_value() {
    if (depth_ > 128) {
      fail("nesting too deep");
      return std::nullopt;
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Value(std::move(*s));
    }
    if (consume_word("true")) return Value(true);
    if (consume_word("false")) return Value(false);
    if (consume_word("null")) return Value(nullptr);
    return parse_number();
  }

  std::optional<Value> parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) {
      fail("expected a value");
      return std::nullopt;
    }
    double out = 0;
    auto [p, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc{} || p != text_.data() + pos_) {
      pos_ = start;
      fail("bad number");
      return std::nullopt;
    }
    return Value(out);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("bad \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          auto [p, ec] =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc{} || p != text_.data() + pos_ + 4) {
            fail("bad \\u escape");
            return std::nullopt;
          }
          pos_ += 4;
          // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parse_array() {
    ++depth_;
    consume('[');
    Array out;
    skip_whitespace();
    if (consume(']')) {
      --depth_;
      return Value(std::move(out));
    }
    while (true) {
      skip_whitespace();
      auto element = parse_value();
      if (!element) return std::nullopt;
      out.push_back(std::move(*element));
      skip_whitespace();
      if (consume(']')) break;
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
    --depth_;
    return Value(std::move(out));
  }

  std::optional<Value> parse_object() {
    ++depth_;
    consume('{');
    Object out;
    skip_whitespace();
    if (consume('}')) {
      --depth_;
      return Value(std::move(out));
    }
    while (true) {
      skip_whitespace();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      skip_whitespace();
      auto element = parse_value();
      if (!element) return std::nullopt;
      out.emplace(std::move(*key), std::move(*element));
      skip_whitespace();
      if (consume('}')) break;
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
    --depth_;
    return Value(std::move(out));
  }

  std::string_view text_;
  ParseError* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  bool failed_ = false;
};

/// Fill line/column/context for an error whose offset is already set. The
/// context window shows ~24 bytes either side of the failure with `-->`
/// marking the position, whitespace folded to single spaces so the snippet
/// stays one line no matter how the document was formatted.
void annotate(ParseError& error, std::string_view text) {
  std::size_t offset = std::min(error.offset, text.size());
  error.line = 1;
  std::size_t line_start = 0;
  for (std::size_t i = 0; i < offset; ++i) {
    if (text[i] == '\n') {
      ++error.line;
      line_start = i + 1;
    }
  }
  error.column = offset - line_start + 1;

  constexpr std::size_t kRadius = 24;
  std::size_t begin = offset > kRadius ? offset - kRadius : 0;
  std::size_t end = std::min(text.size(), offset + kRadius);
  auto fold = [&](std::size_t from, std::size_t to, std::string& out) {
    bool in_ws = false;
    for (std::size_t i = from; i < to; ++i) {
      char c = text[i];
      bool ws = c == ' ' || c == '\t' || c == '\n' || c == '\r';
      if (ws && in_ws) continue;
      out.push_back(ws ? ' ' : c);
      in_ws = ws;
    }
  };
  error.context.clear();
  if (begin > 0) error.context += "...";
  fold(begin, offset, error.context);
  error.context += "-->";
  fold(offset, end, error.context);
  if (end < text.size()) error.context += "...";
}

}  // namespace

std::string describe(const ParseError& error) {
  std::string out = "line " + std::to_string(error.line) + ", column " +
                    std::to_string(error.column) + " (byte " + std::to_string(error.offset) +
                    "): " + error.message;
  if (!error.context.empty()) out += " near `" + error.context + "`";
  return out;
}

std::string Value::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::optional<Value> parse(std::string_view text, ParseError* error) {
  auto value = Parser(text, error).run();
  if (!value && error != nullptr) annotate(*error, text);
  return value;
}

}  // namespace dnslocate::jsonio
