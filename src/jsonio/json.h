// Minimal JSON: a value type, a strict parser, and a serializer. Used for
// exporting measurement runs as JSONL and reloading them for offline
// aggregation. No external dependencies; UTF-8 passed through verbatim.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dnslocate::jsonio {

class Value;

using Array = std::vector<Value>;
/// std::map keeps key order deterministic for byte-stable output.
using Object = std::map<std::string, Value>;

/// A JSON value.
class Value {
 public:
  Value() : storage_(nullptr) {}
  Value(std::nullptr_t) : storage_(nullptr) {}          // NOLINT
  Value(bool b) : storage_(b) {}                        // NOLINT
  Value(double d) : storage_(d) {}                      // NOLINT
  Value(int i) : storage_(static_cast<double>(i)) {}    // NOLINT
  Value(std::int64_t i) : storage_(static_cast<double>(i)) {}  // NOLINT
  Value(std::uint64_t u) : storage_(static_cast<double>(u)) {} // NOLINT
  Value(const char* s) : storage_(std::string(s)) {}    // NOLINT
  Value(std::string s) : storage_(std::move(s)) {}      // NOLINT
  Value(std::string_view s) : storage_(std::string(s)) {}  // NOLINT
  Value(Array a) : storage_(std::move(a)) {}            // NOLINT
  Value(Object o) : storage_(std::move(o)) {}           // NOLINT

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(storage_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(storage_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(storage_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(storage_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(storage_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(storage_); }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    const bool* b = std::get_if<bool>(&storage_);
    return b ? *b : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0) const {
    const double* d = std::get_if<double>(&storage_);
    return d ? *d : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    const double* d = std::get_if<double>(&storage_);
    return d ? static_cast<std::int64_t>(*d) : fallback;
  }
  [[nodiscard]] const std::string& as_string() const {
    static const std::string empty;
    const std::string* s = std::get_if<std::string>(&storage_);
    return s ? *s : empty;
  }
  [[nodiscard]] const Array& as_array() const {
    static const Array empty;
    const Array* a = std::get_if<Array>(&storage_);
    return a ? *a : empty;
  }
  [[nodiscard]] const Object& as_object() const {
    static const Object empty;
    const Object* o = std::get_if<Object>(&storage_);
    return o ? *o : empty;
  }

  /// Object member access; null Value for missing keys / non-objects.
  [[nodiscard]] const Value& operator[](const std::string& key) const;

  /// Compact serialization (no whitespace), deterministic member order.
  [[nodiscard]] std::string dump() const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> storage_;
};

/// Escape a string into a JSON string literal (with quotes).
std::string escape(std::string_view text);

/// Parse errors carry the byte offset of the problem plus enough context
/// (line, column, a snippet of the surrounding text) that an API layer can
/// point the caller at the offending field instead of saying "parse error".
struct ParseError {
  std::size_t offset = 0;
  std::size_t line = 1;    // 1-based line containing `offset`
  std::size_t column = 1;  // 1-based byte column within that line
  std::string message;
  /// Up to ~48 bytes of the document around the offset, whitespace folded,
  /// with `-->` marking the failure position and ellipses where clipped.
  std::string context;
};

/// One-line rendering: "line 2, column 9 (byte 14): expected ':' near
/// `{"probes" -->,}`". Stable enough to surface in API error bodies.
std::string describe(const ParseError& error);

/// Strict parse of a complete JSON document (trailing whitespace allowed).
/// On failure `error` (when given) carries offset, line/column, and context.
std::optional<Value> parse(std::string_view text, ParseError* error = nullptr);

}  // namespace dnslocate::jsonio
