#include "resolvers/software.h"

namespace dnslocate::resolvers {

SoftwareProfile dnsmasq(const std::string& version) {
  SoftwareProfile p;
  p.name = "dnsmasq-" + version;
  p.version_bind = "dnsmasq-" + version;
  // Dnsmasq answers *.bind but not id.server.
  p.id_server = std::nullopt;
  p.id_server_rcode = dnswire::Rcode::REFUSED;
  return p;
}

SoftwareProfile pihole(const std::string& version) {
  SoftwareProfile p;
  p.name = "dnsmasq-pi-hole-" + version;
  p.version_bind = "dnsmasq-pi-hole-" + version;
  p.id_server_rcode = dnswire::Rcode::REFUSED;
  return p;
}

SoftwareProfile unbound(const std::string& version, std::optional<std::string> identity) {
  SoftwareProfile p;
  p.name = "unbound " + version;
  p.version_bind = "unbound " + version;
  p.id_server = std::move(identity);
  p.id_server_rcode = dnswire::Rcode::REFUSED;
  return p;
}

SoftwareProfile bind9(const std::string& version_string, std::optional<std::string> hostname) {
  SoftwareProfile p;
  p.name = version_string;
  p.version_bind = version_string;
  p.id_server = std::move(hostname);
  p.id_server_rcode = dnswire::Rcode::SERVFAIL;
  return p;
}

SoftwareProfile powerdns(const std::string& version) {
  SoftwareProfile p;
  p.name = "PowerDNS Recursor " + version;
  p.version_bind = "PowerDNS Recursor " + version;
  p.id_server = std::nullopt;
  p.id_server_rcode = dnswire::Rcode::REFUSED;
  return p;
}

SoftwareProfile windows_dns(const std::string& label) {
  SoftwareProfile p;
  p.name = label;
  p.version_bind = label;
  p.id_server_rcode = dnswire::Rcode::NOTIMP;
  return p;
}

SoftwareProfile xdns(const std::string& dnsmasq_version) {
  // §5: XDNS "also implements a response to version.bind". RDK-B's DNS
  // forwarder is dnsmasq-based, so the string looks like a dnsmasq string.
  SoftwareProfile p = dnsmasq(dnsmasq_version);
  p.name = "XDNS (dnsmasq-" + dnsmasq_version + ")";
  return p;
}

SoftwareProfile custom_string(const std::string& value) {
  SoftwareProfile p;
  p.name = value;
  p.version_bind = value;
  p.id_server_rcode = dnswire::Rcode::REFUSED;
  return p;
}

SoftwareProfile chaos_refuser(const std::string& name, dnswire::Rcode rcode) {
  SoftwareProfile p;
  p.name = name;
  p.version_bind = std::nullopt;
  p.version_bind_rcode = rcode;
  p.id_server = std::nullopt;
  p.id_server_rcode = rcode;
  return p;
}

SoftwareProfile chaos_nxdomain(const std::string& name) {
  return chaos_refuser(name, dnswire::Rcode::NXDOMAIN);
}

SoftwareProfile chaos_forwarder(const std::string& name) {
  SoftwareProfile p = chaos_refuser(name, dnswire::Rcode::REFUSED);
  p.forwards_unknown_chaos = true;
  return p;
}

}  // namespace dnslocate::resolvers
