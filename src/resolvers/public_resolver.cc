#include "resolvers/public_resolver.h"

#include <cassert>

#include "dnswire/debug_queries.h"
#include "resolvers/special_names.h"

namespace dnslocate::resolvers {
namespace {

netbase::IpAddress ip(const char* text) {
  auto parsed = netbase::IpAddress::parse(text);
  assert(parsed.has_value());
  return *parsed;
}

netbase::Prefix prefix(const char* text) {
  auto parsed = netbase::Prefix::parse(text);
  assert(parsed.has_value());
  return *parsed;
}

constexpr std::array<PublicResolverKind, 4> kAllKinds = {
    PublicResolverKind::cloudflare, PublicResolverKind::google, PublicResolverKind::quad9,
    PublicResolverKind::opendns};

constexpr std::array<std::string_view, 40> kSites = {
    "iad", "sfo", "lax", "ord", "fra", "ams", "lhr", "cdg", "nrt", "syd",
    "gru", "sin", "hkg", "yyz", "dfw", "sea", "mia", "bom", "del", "mad",
    "arn", "waw", "jnb", "mex", "scl", "eze", "bog", "icn", "kix", "muc",
    "zrh", "vie", "prg", "bud", "hel", "osl", "cph", "dub", "mxp", "bcn"};

std::string upper(std::string_view text) {
  std::string out(text);
  for (char& c : out)
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  return out;
}

}  // namespace

std::span<const PublicResolverKind> all_public_resolvers() { return kAllKinds; }

std::string_view to_string(PublicResolverKind kind) {
  switch (kind) {
    case PublicResolverKind::cloudflare: return "Cloudflare DNS";
    case PublicResolverKind::google: return "Google DNS";
    case PublicResolverKind::quad9: return "Quad9";
    case PublicResolverKind::opendns: return "OpenDNS";
  }
  return "?";
}

std::span<const std::string_view> anycast_sites() { return kSites; }

bool is_known_site(std::string_view code) {
  if (code.size() != 3) return false;
  std::string lower;
  for (char c : code)
    lower.push_back((c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c);
  for (auto site : kSites)
    if (site == lower) return true;
  return false;
}

const PublicResolverSpec& PublicResolverSpec::get(PublicResolverKind kind) {
  static const PublicResolverSpec cloudflare = [] {
    PublicResolverSpec s;
    s.kind = PublicResolverKind::cloudflare;
    s.display_name = "Cloudflare DNS";
    s.service_v4 = {ip("1.1.1.1"), ip("1.0.0.1")};
    s.service_v6 = {ip("2606:4700:4700::1111"), ip("2606:4700:4700::1001")};
    s.location_query = {dnswire::id_server(), dnswire::RecordType::TXT,
                        dnswire::RecordClass::CH};
    s.egress_prefixes = {prefix("162.158.0.0/15"), prefix("172.68.0.0/16"),
                         prefix("2400:cb00::/32")};
    return s;
  }();
  static const PublicResolverSpec google = [] {
    PublicResolverSpec s;
    s.kind = PublicResolverKind::google;
    s.display_name = "Google DNS";
    s.service_v4 = {ip("8.8.8.8"), ip("8.8.4.4")};
    s.service_v6 = {ip("2001:4860:4860::8888"), ip("2001:4860:4860::8844")};
    s.location_query = {google_myaddr(), dnswire::RecordType::TXT, dnswire::RecordClass::IN};
    s.egress_prefixes = {prefix("172.253.0.0/16"), prefix("172.217.32.0/20"),
                         prefix("74.125.40.0/21"), prefix("2404:6800:4000::/36")};
    return s;
  }();
  static const PublicResolverSpec quad9 = [] {
    PublicResolverSpec s;
    s.kind = PublicResolverKind::quad9;
    s.display_name = "Quad9";
    s.service_v4 = {ip("9.9.9.9"), ip("149.112.112.112")};
    s.service_v6 = {ip("2620:fe::fe"), ip("2620:fe::9")};
    s.location_query = {dnswire::id_server(), dnswire::RecordType::TXT,
                        dnswire::RecordClass::CH};
    s.egress_prefixes = {prefix("74.63.16.0/20"), prefix("199.249.24.0/24"),
                         prefix("2620:171::/48")};
    return s;
  }();
  static const PublicResolverSpec opendns = [] {
    PublicResolverSpec s;
    s.kind = PublicResolverKind::opendns;
    s.display_name = "OpenDNS";
    s.service_v4 = {ip("208.67.222.222"), ip("208.67.220.220")};
    s.service_v6 = {ip("2620:119:35::35"), ip("2620:119:53::53")};
    s.location_query = {opendns_debug(), dnswire::RecordType::TXT, dnswire::RecordClass::IN};
    s.egress_prefixes = {prefix("146.112.0.0/16"), prefix("2620:119:fc::/47")};
    return s;
  }();
  switch (kind) {
    case PublicResolverKind::cloudflare: return cloudflare;
    case PublicResolverKind::google: return google;
    case PublicResolverKind::quad9: return quad9;
    case PublicResolverKind::opendns: return opendns;
  }
  return cloudflare;  // unreachable
}

ResolverConfig PublicResolverBehavior::build_config(PublicResolverKind kind,
                                                    std::size_t site_index, unsigned instance,
                                                    std::shared_ptr<const ZoneStore> zones) {
  const PublicResolverSpec& spec = PublicResolverSpec::get(kind);
  ResolverConfig config;
  config.zones = std::move(zones);

  switch (kind) {
    case PublicResolverKind::quad9:
      config.software = custom_string("Q9-P-9.16.15");
      break;
    case PublicResolverKind::google:
      config.software = chaos_refuser("google", dnswire::Rcode::NOTIMP);
      break;
    default:
      config.software = chaos_refuser(std::string(to_string(kind)), dnswire::Rcode::REFUSED);
      break;
  }

  // Synthesize per-site egress addresses inside the spec's first v4/v6
  // egress prefix: base + site*256 + instance.
  for (const auto& p : spec.egress_prefixes) {
    if (p.family() == netbase::IpFamily::v4 && !config.egress_v4) {
      std::uint32_t base = p.address().v4().value();
      config.egress_v4 = netbase::IpAddress(netbase::Ipv4Address(
          base + static_cast<std::uint32_t>(site_index) * 256u + instance + 1u));
    } else if (p.family() == netbase::IpFamily::v6 && !config.egress_v6) {
      auto bytes = p.address().v6().bytes();
      bytes[13] = static_cast<std::uint8_t>(site_index);
      bytes[15] = static_cast<std::uint8_t>(instance + 1);
      config.egress_v6 = netbase::IpAddress(netbase::Ipv6Address(bytes));
    }
  }
  return config;
}

PublicResolverBehavior::PublicResolverBehavior(PublicResolverKind kind, std::size_t site_index,
                                               unsigned instance,
                                               std::shared_ptr<const ZoneStore> zones)
    : ResolverBehavior(build_config(kind, site_index, instance, std::move(zones))),
      kind_(kind),
      site_(kSites[site_index % kSites.size()]),
      instance_(instance) {}

std::string PublicResolverBehavior::expected_location_answer() const {
  switch (kind_) {
    case PublicResolverKind::cloudflare:
      return upper(site_);
    case PublicResolverKind::google:
      // The answer is the egress address string; family depends on the
      // service address queried, so report the v4 form (tests cover v6).
      return egress(netbase::IpFamily::v4)->to_string();
    case PublicResolverKind::quad9:
      return "res" + std::to_string(100 + instance_) + "." + site_ + ".rrdns.pch.net";
    case PublicResolverKind::opendns:
      return "server m" + std::to_string(80 + instance_) + "." + site_;
  }
  return {};
}

dnswire::Message PublicResolverBehavior::respond_chaos(const dnswire::Message& query,
                                                       const dnswire::Question& question,
                                                       const QueryContext& context) {
  if (question.name.equals_ignore_case(dnswire::id_server()) ||
      question.name.equals_ignore_case(dnswire::hostname_bind())) {
    switch (kind_) {
      case PublicResolverKind::cloudflare:
        return dnswire::make_txt_response(query, upper(site_));
      case PublicResolverKind::quad9:
        return dnswire::make_txt_response(
            query, "res" + std::to_string(100 + instance_) + "." + site_ + ".rrdns.pch.net");
      default:
        break;  // Google/OpenDNS fall through to the software profile
    }
  }
  return ResolverBehavior::respond_chaos(query, question, context);
}

std::optional<dnswire::Message> PublicResolverBehavior::respond_special(
    const dnswire::Message& query, const dnswire::Question& question,
    const QueryContext& context) {
  // debug.opendns.com answers only when resolved *through* OpenDNS
  // (Table 1); via any other resolver it is NXDOMAIN.
  if (question.name.equals_ignore_case(opendns_debug())) {
    if (kind_ == PublicResolverKind::opendns && question.type == dnswire::RecordType::TXT) {
      return dnswire::make_txt_response(
          query, "server m" + std::to_string(80 + instance_) + "." + site_);
    }
    return dnswire::make_response(query, dnswire::Rcode::NXDOMAIN);
  }
  return ResolverBehavior::respond_special(query, question, context);
}

}  // namespace dnslocate::resolvers
