// A flat zone store: the simulation's stand-in for the global DNS.
//
// Full recursion is not simulated — resolvers answer directly from a shared
// ZoneStore (see DESIGN.md §2). Dynamic names whose answers depend on *who*
// resolved them (whoami.akamai.com, o-o.myaddr.l.google.com) are handled by
// the resolver behaviours, not here.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dnswire/message.h"

namespace dnslocate::resolvers {

/// Maps (name, type) to record sets; CNAMEs are followed by lookup().
class ZoneStore {
 public:
  /// Add a record. Name matching is case-insensitive.
  void add(dnswire::ResourceRecord record);

  /// Result of a lookup.
  struct Result {
    dnswire::Rcode rcode = dnswire::Rcode::NXDOMAIN;
    dnswire::RecordSection answers;  // includes CNAME chain
  };

  /// Look up `name`/`type` (IN class), following up to 8 CNAMEs.
  /// NOERROR with empty answers = NODATA (name exists, no such type).
  [[nodiscard]] Result lookup(const dnswire::DnsName& name, dnswire::RecordType type) const;

  /// True if any record exists at `name`.
  [[nodiscard]] bool has_name(const dnswire::DnsName& name) const;

  [[nodiscard]] std::size_t record_count() const { return record_count_; }

  /// The default "global Internet" zone used across experiments: a handful
  /// of ordinary domains plus the bogon-probe domain.
  static std::shared_ptr<const ZoneStore> global_internet();

 private:
  struct NameEntry {
    std::vector<dnswire::ResourceRecord> records;
  };
  std::unordered_map<dnswire::DnsName, NameEntry, dnswire::DnsNameCaseHash,
                     dnswire::DnsNameCaseEq>
      names_;
  std::size_t record_count_ = 0;
};

}  // namespace dnslocate::resolvers
