#include "resolvers/special_names.h"

namespace dnslocate::resolvers {

const dnswire::DnsName& whoami_akamai() {
  static const dnswire::DnsName name = *dnswire::DnsName::parse("whoami.akamai.com");
  return name;
}

const dnswire::DnsName& google_myaddr() {
  static const dnswire::DnsName name = *dnswire::DnsName::parse("o-o.myaddr.l.google.com");
  return name;
}

const dnswire::DnsName& opendns_debug() {
  static const dnswire::DnsName name = *dnswire::DnsName::parse("debug.opendns.com");
  return name;
}

const dnswire::DnsName& bogon_probe_domain() {
  static const dnswire::DnsName name = *dnswire::DnsName::parse("probe.dnslocate.example");
  return name;
}

}  // namespace dnslocate::resolvers
