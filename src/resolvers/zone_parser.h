// A master-file (RFC 1035 §5) parser for loading ZoneStore contents from
// text — the format operators actually write zones in. Supported subset:
// $ORIGIN / $TTL directives, comments, blank lines, @, relative names,
// per-record TTL and class, and the record types this library models
// (A, AAAA, CNAME, NS, PTR, TXT with quoted strings, single-line SOA).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "resolvers/zone.h"

namespace dnslocate::resolvers {

/// One parse problem (the parser recovers and continues).
struct ZoneParseError {
  std::size_t line = 0;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return "line " + std::to_string(line) + ": " + message;
  }
};

struct ZoneParseResult {
  std::size_t records_added = 0;
  std::vector<ZoneParseError> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Parse `text` into `store`. `origin` seeds $ORIGIN (may be overridden by
/// a directive); relative names are appended to the current origin.
ZoneParseResult parse_master_file(std::string_view text, ZoneStore& store,
                                  const dnswire::DnsName& origin = dnswire::DnsName{});

}  // namespace dnslocate::resolvers
