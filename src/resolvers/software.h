// Resolver-software personalities: how a given piece of DNS software
// answers the CHAOS-class debugging queries. These determine the strings
// in the paper's Table 3 / Table 5 and drive the §3.2 comparison.
#pragma once

#include <optional>
#include <string>

#include "dnswire/types.h"

namespace dnslocate::resolvers {

/// How one piece of resolver software responds to version.bind / id.server.
struct SoftwareProfile {
  /// Display name for reports, e.g. "dnsmasq-2.85".
  std::string name;

  /// TXT string answered to CH TXT version.bind; nullopt means the software
  /// answers with `version_bind_rcode` instead.
  std::optional<std::string> version_bind;
  dnswire::Rcode version_bind_rcode = dnswire::Rcode::REFUSED;

  /// TXT string answered to CH TXT id.server (and hostname.bind).
  std::optional<std::string> id_server;
  dnswire::Rcode id_server_rcode = dnswire::Rcode::NOTIMP;

  /// §6 limitation case: a forwarder that does not implement the CHAOS
  /// queries and *forwards them upstream* instead of answering. This is the
  /// configuration that can make the technique misclassify a benign
  /// open-port CPE as an interceptor.
  bool forwards_unknown_chaos = false;
};

// --- catalog of the software the paper observed (Table 5) ---

/// Dnsmasq: "explicitly designed to run on CPE" — the dominant CPE string.
SoftwareProfile dnsmasq(const std::string& version = "2.85");

/// Pi-hole's dnsmasq fork ("dnsmasq-pi-hole-2.87").
SoftwareProfile pihole(const std::string& version = "2.87");

/// Unbound ("unbound 1.9.0"); id_server configurable (often a hostname).
SoftwareProfile unbound(const std::string& version = "1.9.0",
                        std::optional<std::string> identity = std::nullopt);

/// BIND; version strings like "9.16.15" or "9.11.4-P2-RedHat-9.11.4".
SoftwareProfile bind9(const std::string& version_string = "9.16.15",
                      std::optional<std::string> hostname = std::nullopt);

/// PowerDNS Recursor.
SoftwareProfile powerdns(const std::string& version = "4.1.11");

/// Windows Server DNS; returns operator-styled strings ("Windows NS").
SoftwareProfile windows_dns(const std::string& label = "Windows NS");

/// XDNS — the RDK-B/XB6 resolver component (§5). Built on dnsmasq, so its
/// version.bind string is a dnsmasq string.
SoftwareProfile xdns(const std::string& dnsmasq_version = "2.78");

/// An operator-configured custom string ("none", "huuh?", ...).
SoftwareProfile custom_string(const std::string& value);

/// A closed-lipped resolver: refuses all CHAOS queries.
SoftwareProfile chaos_refuser(const std::string& name, dnswire::Rcode rcode);

/// A cheap CPE forwarder that answers every CHAOS query with NXDOMAIN
/// (the probe-11992 CPE in the paper's Table 3).
SoftwareProfile chaos_nxdomain(const std::string& name);

/// A forwarder that punts CHAOS queries upstream (§6 misclassification).
SoftwareProfile chaos_forwarder(const std::string& name);

}  // namespace dnslocate::resolvers
