#include "resolvers/zone_parser.h"

#include <charconv>

namespace dnslocate::resolvers {
namespace {

/// Split a line into tokens; quoted strings stay single tokens (quotes
/// stripped); ';' starts a comment.
std::vector<std::string> tokenize(std::string_view line, bool& bad_quote) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  bad_quote = false;
  while (i < line.size()) {
    char c = line[i];
    if (c == ';') break;
    if (c == ' ' || c == '\t') {
      ++i;
      continue;
    }
    if (c == '"') {
      std::size_t close = line.find('"', i + 1);
      if (close == std::string_view::npos) {
        bad_quote = true;
        return tokens;
      }
      tokens.emplace_back(line.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    std::size_t end = i;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' && line[end] != ';')
      ++end;
    tokens.emplace_back(line.substr(i, end - i));
    i = end;
  }
  return tokens;
}

bool parse_u32(const std::string& text, std::uint32_t& out) {
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && p == text.data() + text.size();
}

/// Resolve a possibly-relative owner/target name against the origin.
std::optional<dnswire::DnsName> resolve_name(const std::string& token,
                                             const dnswire::DnsName& origin) {
  if (token == "@") return origin;
  if (!token.empty() && token.back() == '.') return dnswire::DnsName::parse(token);
  auto relative = dnswire::DnsName::parse(token);
  if (!relative) return std::nullopt;
  std::vector<std::string> labels = relative->labels();
  for (const auto& label : origin.labels()) labels.push_back(label);
  return dnswire::DnsName::from_labels(std::move(labels));
}

}  // namespace

namespace {

/// Pre-pass implementing RFC 1035 §5.1 parentheses: newlines between '(' and
/// ')' are soft, so multi-line records (the usual SOA layout) join into one
/// logical line. Parentheses inside quotes and comments are ignored.
std::string join_parenthesized_lines(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  int depth = 0;
  bool in_quote = false;
  bool in_comment = false;
  for (char c : text) {
    if (c == '\n') {
      in_comment = false;
      if (depth > 0) {
        out.push_back(' ');  // soft newline inside parentheses
        continue;
      }
      out.push_back('\n');
      continue;
    }
    if (in_comment) {
      // Dropped, but the line-ending logic above still runs.
      out.push_back(' ');
      continue;
    }
    if (c == '"') in_quote = !in_quote;
    if (!in_quote) {
      if (c == ';') {
        in_comment = true;
        out.push_back(' ');
        continue;
      }
      if (c == '(') {
        ++depth;
        out.push_back(' ');
        continue;
      }
      if (c == ')') {
        if (depth > 0) --depth;
        out.push_back(' ');
        continue;
      }
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

ZoneParseResult parse_master_file(std::string_view raw_text, ZoneStore& store,
                                  const dnswire::DnsName& origin_in) {
  ZoneParseResult result;
  std::string joined = join_parenthesized_lines(raw_text);
  std::string_view text = joined;
  dnswire::DnsName origin = origin_in;
  std::uint32_t default_ttl = 3600;
  dnswire::DnsName last_owner = origin;
  std::size_t line_number = 0;

  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t newline = text.find('\n', start);
    std::string_view line = newline == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, newline - start);
    ++line_number;
    start = newline == std::string_view::npos ? text.size() + 1 : newline + 1;

    bool bad_quote = false;
    std::vector<std::string> tokens = tokenize(line, bad_quote);
    if (bad_quote) {
      result.errors.push_back({line_number, "unterminated quoted string"});
      continue;
    }
    if (tokens.empty()) continue;

    auto fail = [&](std::string message) {
      result.errors.push_back({line_number, std::move(message)});
    };

    // Directives.
    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2) {
        fail("$ORIGIN needs exactly one argument");
        continue;
      }
      auto parsed = dnswire::DnsName::parse(tokens[1]);
      if (!parsed) {
        fail("bad $ORIGIN name");
        continue;
      }
      origin = *parsed;
      continue;
    }
    if (tokens[0] == "$TTL") {
      if (tokens.size() != 2 || !parse_u32(tokens[1], default_ttl)) {
        fail("bad $TTL");
      }
      continue;
    }

    // Record line: [owner] [ttl] [IN] TYPE rdata...
    std::size_t cursor = 0;
    dnswire::DnsName owner = last_owner;
    // Leading whitespace (stripped by the tokenizer) normally signals owner
    // reuse; detect it from the raw line instead.
    bool has_owner = !line.empty() && line[0] != ' ' && line[0] != '\t';
    if (has_owner) {
      auto resolved = resolve_name(tokens[0], origin);
      if (!resolved) {
        fail("bad owner name '" + tokens[0] + "'");
        continue;
      }
      owner = *resolved;
      ++cursor;
    }
    last_owner = owner;

    std::uint32_t ttl = default_ttl;
    if (cursor < tokens.size() && parse_u32(tokens[cursor], ttl)) ++cursor;
    if (cursor < tokens.size() && (tokens[cursor] == "IN" || tokens[cursor] == "in")) ++cursor;
    if (cursor >= tokens.size()) {
      fail("missing record type");
      continue;
    }
    std::string type = tokens[cursor++];
    std::vector<std::string> rdata(tokens.begin() + static_cast<long>(cursor), tokens.end());

    auto need = [&](std::size_t count) {
      if (rdata.size() == count) return true;
      fail(type + " expects " + std::to_string(count) + " rdata field(s)");
      return false;
    };

    if (type == "A") {
      if (!need(1)) continue;
      auto addr = netbase::Ipv4Address::parse(rdata[0]);
      if (!addr) {
        fail("bad IPv4 address '" + rdata[0] + "'");
        continue;
      }
      store.add(dnswire::make_a(owner, *addr, ttl));
    } else if (type == "AAAA") {
      if (!need(1)) continue;
      auto addr = netbase::Ipv6Address::parse(rdata[0]);
      if (!addr) {
        fail("bad IPv6 address '" + rdata[0] + "'");
        continue;
      }
      store.add(dnswire::make_aaaa(owner, *addr, ttl));
    } else if (type == "CNAME" || type == "NS" || type == "PTR") {
      if (!need(1)) continue;
      auto target = resolve_name(rdata[0], origin);
      if (!target) {
        fail("bad target name '" + rdata[0] + "'");
        continue;
      }
      if (type == "CNAME") {
        store.add(dnswire::make_cname(owner, *target, ttl));
      } else {
        dnswire::ResourceRecord rr;
        rr.name = owner;
        rr.klass = dnswire::RecordClass::IN;
        rr.ttl = ttl;
        if (type == "NS") {
          rr.type = dnswire::RecordType::NS;
          rr.rdata = dnswire::NsRecord{*target};
        } else {
          rr.type = dnswire::RecordType::PTR;
          rr.rdata = dnswire::PtrRecord{*target};
        }
        store.add(std::move(rr));
      }
    } else if (type == "TXT") {
      if (rdata.empty()) {
        fail("TXT needs at least one string");
        continue;
      }
      dnswire::TxtRecord txt;
      txt.strings = rdata;
      store.add(dnswire::ResourceRecord{owner, dnswire::RecordType::TXT,
                                        dnswire::RecordClass::IN, ttl, std::move(txt)});
    } else if (type == "MX") {
      if (!need(2)) continue;
      dnswire::MxRecord mx;
      auto exchange = resolve_name(rdata[1], origin);
      std::uint32_t preference = 0;
      if (!parse_u32(rdata[0], preference) || preference > 0xffff || !exchange) {
        fail("bad MX rdata");
        continue;
      }
      mx.preference = static_cast<std::uint16_t>(preference);
      mx.exchange = *exchange;
      store.add(dnswire::ResourceRecord{owner, dnswire::RecordType::MX,
                                        dnswire::RecordClass::IN, ttl, std::move(mx)});
    } else if (type == "SRV") {
      if (!need(4)) continue;
      dnswire::SrvRecord srv;
      std::uint32_t priority = 0, weight = 0, port = 0;
      auto target = resolve_name(rdata[3], origin);
      if (!parse_u32(rdata[0], priority) || !parse_u32(rdata[1], weight) ||
          !parse_u32(rdata[2], port) || priority > 0xffff || weight > 0xffff ||
          port > 0xffff || !target) {
        fail("bad SRV rdata");
        continue;
      }
      srv.priority = static_cast<std::uint16_t>(priority);
      srv.weight = static_cast<std::uint16_t>(weight);
      srv.port = static_cast<std::uint16_t>(port);
      srv.target = *target;
      store.add(dnswire::ResourceRecord{owner, dnswire::RecordType::SRV,
                                        dnswire::RecordClass::IN, ttl, std::move(srv)});
    } else if (type == "SOA") {
      if (!need(7)) continue;
      auto mname = resolve_name(rdata[0], origin);
      auto rname = resolve_name(rdata[1], origin);
      dnswire::SoaRecord soa;
      if (!mname || !rname || !parse_u32(rdata[2], soa.serial) ||
          !parse_u32(rdata[3], soa.refresh) || !parse_u32(rdata[4], soa.retry) ||
          !parse_u32(rdata[5], soa.expire) || !parse_u32(rdata[6], soa.minimum)) {
        fail("bad SOA rdata");
        continue;
      }
      soa.mname = *mname;
      soa.rname = *rname;
      store.add(dnswire::ResourceRecord{owner, dnswire::RecordType::SOA,
                                        dnswire::RecordClass::IN, ttl, std::move(soa)});
    } else {
      fail("unsupported record type '" + type + "'");
      continue;
    }
    ++result.records_added;
  }
  return result;
}

}  // namespace dnslocate::resolvers
