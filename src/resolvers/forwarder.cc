#include "resolvers/forwarder.h"

#include "dnswire/debug_queries.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "simnet/simulator.h"

namespace dnslocate::resolvers {

void DnsForwarderApp::attach(simnet::Device& device) {
  device.bind_udp(netbase::kDnsPort, this);
  if (config_.serve_dot) device.bind_udp(netbase::kDotPort, this);
  device.bind_udp(config_.upstream_port, this);
}

void DnsForwarderApp::on_datagram(simnet::Simulator& sim, simnet::Device& self,
                                  const simnet::UdpPacket& packet) {
  // Strict-DoT certificate validation (see DnsServerApp::on_datagram).
  if (packet.channel == simnet::Channel::dot_strict && packet.tls_expected_peer &&
      !self.has_local_ip(*packet.tls_expected_peer))
    return;
  auto message = dnswire::decode_message(packet.payload);
  if (!message) return;
  if (packet.dport == config_.upstream_port && message->is_response()) {
    handle_upstream_reply(sim, self, packet, std::move(*message));
    return;
  }
  bool service_port = packet.dport == netbase::kDnsPort ||
                      (config_.serve_dot && packet.dport == netbase::kDotPort);
  if (service_port && !message->is_response()) {
    handle_client_query(sim, self, packet, *message);
  }
}

void DnsForwarderApp::handle_client_query(simnet::Simulator& sim, simnet::Device& self,
                                          const simnet::UdpPacket& packet,
                                          const dnswire::Message& query) {
  Pending direct{packet.src,  packet.sport, packet.dst, query.id,
                 sim.now(),   packet.dport, packet.channel, false, {}};
  const dnswire::Question* question = query.question();
  if (!question) {
    reply_to_client(sim, self, direct, dnswire::make_response(query, dnswire::Rcode::FORMERR));
    return;
  }

  // CHAOS queries: answer locally from the software profile, unless this
  // software punts them upstream (§6 misclassification configuration).
  if (question->klass == dnswire::RecordClass::CH) {
    if (config_.software.forwards_unknown_chaos) {
      forward_upstream(sim, self, packet, query);
      return;
    }
    std::optional<dnswire::Message> answer;
    if (question->type == dnswire::RecordType::TXT) {
      if (question->name.equals_ignore_case(dnswire::version_bind())) {
        answer = config_.software.version_bind
                     ? dnswire::make_txt_response(query, *config_.software.version_bind)
                     : dnswire::make_response(query, config_.software.version_bind_rcode);
      } else if (question->name.equals_ignore_case(dnswire::id_server()) ||
                 question->name.equals_ignore_case(dnswire::hostname_bind())) {
        answer = config_.software.id_server
                     ? dnswire::make_txt_response(query, *config_.software.id_server)
                     : dnswire::make_response(query, config_.software.id_server_rcode);
      }
    }
    if (!answer) answer = dnswire::make_response(query, dnswire::Rcode::REFUSED);
    ++chaos_answered_;
    reply_to_client(sim, self, direct, *answer);
    return;
  }

  // Cache lookup for ordinary IN queries.
  if (config_.cache_enabled && question->klass == dnswire::RecordClass::IN) {
    if (auto cached = cache_lookup(sim.now(), *question)) {
      cached->id = query.id;
      reply_to_client(sim, self, direct, *cached);
      return;
    }
  }

  forward_upstream(sim, self, packet, query);
}

std::optional<dnswire::Message> DnsForwarderApp::cache_lookup(
    simnet::SimTime now, const dnswire::Question& question) {
  CacheKey key{question.name.to_lower().to_string(), question.type};
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++cache_misses_;
    return std::nullopt;
  }
  CacheEntry& entry = it->second;
  auto age_s = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(now - entry.stored_at).count());
  if (age_s >= entry.lifetime_s) {
    lru_.erase(entry.lru_position);
    cache_.erase(it);
    ++cache_misses_;
    return std::nullopt;
  }
  // Refresh LRU position.
  lru_.erase(entry.lru_position);
  lru_.push_front(key);
  entry.lru_position = lru_.begin();
  ++cache_hits_;

  dnswire::Message response = entry.response;
  for (auto* section : {&response.answers, &response.authorities, &response.additionals})
    for (auto& rr : *section)
      rr.ttl -= std::min<std::uint32_t>(rr.ttl, static_cast<std::uint32_t>(age_s));
  return response;
}

void DnsForwarderApp::cache_store(simnet::SimTime now, const dnswire::Message& response) {
  const dnswire::Question* question = response.question();
  if (!question || question->klass != dnswire::RecordClass::IN) return;
  if (response.rcode() != dnswire::Rcode::NOERROR &&
      response.rcode() != dnswire::Rcode::NXDOMAIN)
    return;

  std::uint32_t lifetime = 0;
  if (response.answers.empty()) {
    lifetime = 60;  // negative/NODATA TTL (we carry no SOA minimum)
  } else {
    lifetime = response.answers.front().ttl;
    for (const auto& rr : response.answers) lifetime = std::min(lifetime, rr.ttl);
  }
  if (lifetime == 0) return;

  CacheKey key{question->name.to_lower().to_string(), question->type};
  if (auto it = cache_.find(key); it != cache_.end()) {
    lru_.erase(it->second.lru_position);
    cache_.erase(it);
  }
  while (cache_.size() >= config_.cache_capacity && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  CacheEntry entry;
  entry.response = response;
  entry.response.id = 0;
  entry.stored_at = now;
  entry.lifetime_s = lifetime;
  entry.lru_position = lru_.begin();
  cache_.emplace(std::move(key), std::move(entry));
}

void DnsForwarderApp::forward_upstream(simnet::Simulator& sim, simnet::Device& self,
                                       const simnet::UdpPacket& packet,
                                       const dnswire::Message& query) {
  const netbase::Endpoint* upstream = &config_.upstream_v4;
  if (packet.dst.is_v6() && config_.upstream_v6) upstream = &*config_.upstream_v6;

  std::uint16_t upstream_id = next_upstream_id_++;
  if (next_upstream_id_ == 0) next_upstream_id_ = 1;
  pending_[upstream_id] = Pending{packet.src,
                                  packet.sport,
                                  packet.dst,
                                  query.id,
                                  sim.now() + config_.pending_timeout,
                                  packet.dport,
                                  packet.channel,
                                  false,
                                  {}};

  dnswire::Message upstream_query = query;
  upstream_query.id = upstream_id;
  if (config_.lowercases_queries)
    for (auto& question : upstream_query.questions) question.name = question.name.to_lower();
  dnswire::WireBuffer upstream_payload = dnswire::encode_message(upstream_query);
  if (config_.upstream_fallback_v4 && upstream->address.is_v4())
    pending_[upstream_id].retry_payload = upstream_payload;

  simnet::UdpPacket out;
  const auto& wan_source = upstream->address.is_v4() ? config_.wan_source_v4
                                                     : config_.wan_source_v6;
  if (wan_source) {
    out.src = *wan_source;
  } else if (auto local = self.local_ip(upstream->address.family())) {
    out.src = *local;
  } else {
    pending_.erase(upstream_id);
    return;  // no usable source address for this family
  }
  out.dst = upstream->address;
  out.sport = config_.upstream_port;
  out.dport = upstream->port;
  out.payload = std::move(upstream_payload);
  out.trace_id = packet.trace_id;
  netbase::IpAddress upstream_source = out.src;
  ++forwarded_upstream_;
  self.send_local(sim, std::move(out));

  // Failover: if the primary stays silent, re-issue to the secondary.
  if (config_.upstream_fallback_v4 && upstream->address.is_v4()) {
    simnet::Device* device = &self;
    sim.schedule(config_.failover_after, [this, &sim, device, upstream_id, upstream_source]() {
      auto pending_it = pending_.find(upstream_id);
      if (pending_it == pending_.end() || pending_it->second.failed_over) return;
      pending_it->second.failed_over = true;
      ++failovers_;
      simnet::UdpPacket retry;
      retry.src = upstream_source;
      retry.dst = config_.upstream_fallback_v4->address;
      retry.sport = config_.upstream_port;
      retry.dport = config_.upstream_fallback_v4->port;
      retry.payload = pending_it->second.retry_payload;
      device->send_local(sim, std::move(retry));
    });
  }

  // Expire the pending entry so the table cannot grow without bound.
  sim.schedule(config_.pending_timeout, [this, upstream_id, deadline = pending_[upstream_id].deadline]() {
    auto it = pending_.find(upstream_id);
    if (it != pending_.end() && it->second.deadline <= deadline) pending_.erase(it);
  });
}

void DnsForwarderApp::handle_upstream_reply(simnet::Simulator& sim, simnet::Device& self,
                                            const simnet::UdpPacket&, dnswire::Message reply) {
  auto it = pending_.find(reply.id);
  if (it == pending_.end()) return;
  Pending pending = it->second;
  pending_.erase(it);
  reply.id = pending.original_id;
  ++replies_relayed_;
  if (config_.cache_enabled) cache_store(sim.now(), reply);
  reply_to_client(sim, self, pending, reply);
}

void DnsForwarderApp::reply_to_client(simnet::Simulator& sim, simnet::Device& self,
                                      const Pending& pending, const dnswire::Message& response) {
  simnet::UdpPacket out;
  out.src = pending.queried_ip;  // the address the client addressed; NAT may
                                 // further restore a DNAT'd destination
  out.dst = pending.client;
  out.sport = pending.service_port;
  out.dport = pending.client_port;
  out.channel = pending.channel;
  out.payload = dnswire::encode_message(response);
  self.send_local(sim, std::move(out));
}

}  // namespace dnslocate::resolvers
