#include "resolvers/zone.h"

#include "resolvers/special_names.h"

namespace dnslocate::resolvers {

void ZoneStore::add(dnswire::ResourceRecord record) {
  names_[record.name].records.push_back(std::move(record));
  ++record_count_;
}

ZoneStore::Result ZoneStore::lookup(const dnswire::DnsName& name,
                                    dnswire::RecordType type) const {
  Result result;
  dnswire::DnsName current = name;
  for (int depth = 0; depth < 8; ++depth) {
    auto it = names_.find(current);
    if (it == names_.end()) {
      result.rcode = result.answers.empty() ? dnswire::Rcode::NXDOMAIN : dnswire::Rcode::NOERROR;
      return result;
    }
    // Exact type match?
    bool found = false;
    for (const auto& rr : it->second.records) {
      if (rr.type == type || type == dnswire::RecordType::ANY) {
        result.answers.push_back(rr);
        found = true;
      }
    }
    if (found) {
      result.rcode = dnswire::Rcode::NOERROR;
      return result;
    }
    // CNAME at this name?
    for (const auto& rr : it->second.records) {
      if (rr.type == dnswire::RecordType::CNAME) {
        result.answers.push_back(rr);
        current = std::get<dnswire::CnameRecord>(rr.rdata).target;
        found = true;
        break;
      }
    }
    if (!found) {
      // NODATA: the name exists but has no records of this type.
      result.rcode = dnswire::Rcode::NOERROR;
      return result;
    }
  }
  result.rcode = dnswire::Rcode::SERVFAIL;  // CNAME chain too deep
  return result;
}

bool ZoneStore::has_name(const dnswire::DnsName& name) const { return names_.contains(name); }

std::shared_ptr<const ZoneStore> ZoneStore::global_internet() {
  static const std::shared_ptr<const ZoneStore> store = [] {
    auto zones = std::make_shared<ZoneStore>();
    auto name = [](const char* text) { return *dnswire::DnsName::parse(text); };
    auto v4 = [](const char* text) { return *netbase::Ipv4Address::parse(text); };
    auto v6 = [](const char* text) { return *netbase::Ipv6Address::parse(text); };

    zones->add(dnswire::make_a(name("example.com"), v4("93.184.216.34")));
    zones->add(dnswire::make_aaaa(name("example.com"), v6("2606:2800:220:1:248:1893:25c8:1946")));
    zones->add(dnswire::make_a(name("www.example.com"), v4("93.184.216.34")));
    zones->add(dnswire::make_a(name("dnslocate.example"), v4("198.51.100.53")));
    zones->add(dnswire::make_a(bogon_probe_domain(), v4("198.51.100.77")));
    zones->add(dnswire::make_aaaa(bogon_probe_domain(), v6("2001:db8:77::77")));
    zones->add(dnswire::make_cname(name("alias.example.com"), name("example.com")));
    zones->add(dnswire::make_txt(name("txt.example.com"), "hello from the zone store"));
    zones->add(dnswire::make_a(name("cdn.example.net"), v4("203.0.113.10")));
    zones->add(dnswire::make_a(name("mail.example.org"), v4("203.0.113.25")));
    return zones;
  }();
  return store;
}

}  // namespace dnslocate::resolvers
