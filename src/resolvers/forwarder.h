// The CPE DNS forwarder (dnsmasq, XDNS, Pi-hole, ...): answers CHAOS
// debugging queries itself from its software profile and proxies ordinary
// queries to its pre-configured upstream resolver.
//
// This is the component that "switches roles" in §3.2: when interception
// DNAT rewrites a query's destination to the CPE, this app answers it, and
// conntrack restores the original destination on the way out — producing
// the spoofed response the client cannot distinguish from the real one.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "dnswire/encoder.h"
#include "dnswire/message.h"
#include "netbase/endpoint.h"
#include "resolvers/software.h"
#include "simnet/device.h"
#include "simnet/time.h"

namespace dnslocate::resolvers {

/// Forwarder configuration.
struct ForwarderConfig {
  SoftwareProfile software;
  /// Upstream recursive resolver (usually the ISP's).
  netbase::Endpoint upstream_v4;
  std::optional<netbase::Endpoint> upstream_v6;
  /// Secondary upstream tried when the primary stays silent past
  /// `failover_after` (dnsmasq's server-failover behaviour).
  std::optional<netbase::Endpoint> upstream_fallback_v4;
  simnet::SimDuration failover_after = std::chrono::milliseconds(500);
  /// Source port for upstream queries; the app binds it on the device.
  std::uint16_t upstream_port = 5353;
  /// How long to remember a pending query before giving up silently.
  simnet::SimDuration pending_timeout = std::chrono::seconds(3);
  /// Which local address to source upstream queries from (the WAN address);
  /// if unset, the device's first address of the upstream's family is used.
  std::optional<netbase::IpAddress> wan_source_v4;
  std::optional<netbase::IpAddress> wan_source_v6;
  /// Also serve DNS over TLS on port 853 (modelled at the policy level).
  bool serve_dot = false;
  /// Re-encode upstream queries with a lowercased name (some proxy
  /// implementations do), destroying DNS-0x20 case patterns. Detected by
  /// core::Dns0x20Prober.
  bool lowercases_queries = false;
  /// TTL-honouring positive/negative cache for IN-class answers, like
  /// dnsmasq's. CHAOS queries are never cached.
  bool cache_enabled = false;
  std::size_t cache_capacity = 150;  // dnsmasq's default cache size
};

/// UDP app implementing the forwarder. Bind it on port 53 (client side);
/// it binds `upstream_port` itself when attached via `attach()`.
class DnsForwarderApp : public simnet::UdpApp {
 public:
  explicit DnsForwarderApp(ForwarderConfig config) : config_(std::move(config)) {}

  /// Bind both the service port (53) and the upstream port on `device`.
  void attach(simnet::Device& device);

  void on_datagram(simnet::Simulator& sim, simnet::Device& self,
                   const simnet::UdpPacket& packet) override;

  [[nodiscard]] const ForwarderConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t chaos_answered() const { return chaos_answered_; }
  [[nodiscard]] std::uint64_t forwarded_upstream() const { return forwarded_upstream_; }
  [[nodiscard]] std::uint64_t replies_relayed() const { return replies_relayed_; }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_misses_; }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

 private:
  struct Pending {
    netbase::IpAddress client;
    std::uint16_t client_port = 0;
    netbase::IpAddress queried_ip;  // address the client originally targeted
    std::uint16_t original_id = 0;
    simnet::SimTime deadline{};
    std::uint16_t service_port = netbase::kDnsPort;  // 53 or 853
    simnet::Channel channel = simnet::Channel::udp;
    bool failed_over = false;
    dnswire::WireBuffer retry_payload;  // upstream query bytes for failover
  };

  void handle_client_query(simnet::Simulator& sim, simnet::Device& self,
                           const simnet::UdpPacket& packet, const dnswire::Message& query);
  void handle_upstream_reply(simnet::Simulator& sim, simnet::Device& self,
                             const simnet::UdpPacket& packet, dnswire::Message reply);
  void reply_to_client(simnet::Simulator& sim, simnet::Device& self, const Pending& pending,
                       const dnswire::Message& response);
  void forward_upstream(simnet::Simulator& sim, simnet::Device& self,
                        const simnet::UdpPacket& packet, const dnswire::Message& query);

  // --- cache ---
  struct CacheKey {
    std::string lower_name;
    dnswire::RecordType type{};
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const noexcept {
      return std::hash<std::string>{}(key.lower_name) ^
             (static_cast<std::size_t>(key.type) << 24);
    }
  };
  struct CacheEntry {
    dnswire::Message response;      // id 0; answers carry original TTLs
    simnet::SimTime stored_at{};
    std::uint32_t lifetime_s = 0;   // min TTL across records (or negative TTL)
    std::list<CacheKey>::iterator lru_position;
  };
  /// Cached response with TTLs aged by the entry's residence time, or
  /// nullopt on miss/expiry.
  std::optional<dnswire::Message> cache_lookup(simnet::SimTime now,
                                               const dnswire::Question& question);
  void cache_store(simnet::SimTime now, const dnswire::Message& response);

  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::list<CacheKey> lru_;  // front = most recent
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t failovers_ = 0;

  ForwarderConfig config_;
  std::unordered_map<std::uint16_t, Pending> pending_;  // upstream id -> origin
  std::uint16_t next_upstream_id_ = 1;
  std::uint64_t chaos_answered_ = 0;
  std::uint64_t forwarded_upstream_ = 0;
  std::uint64_t replies_relayed_ = 0;
};

}  // namespace dnslocate::resolvers
