#include "resolvers/resolver_behavior.h"

#include "dnswire/debug_queries.h"
#include "resolvers/special_names.h"

namespace dnslocate::resolvers {

ResolverBehavior::ResolverBehavior(ResolverConfig config) : config_(std::move(config)) {
  if (!config_.zones) config_.zones = ZoneStore::global_internet();
}

std::optional<netbase::IpAddress> ResolverBehavior::egress(netbase::IpFamily family) const {
  const auto& primary = family == netbase::IpFamily::v4 ? config_.egress_v4 : config_.egress_v6;
  if (primary) return primary;
  return family == netbase::IpFamily::v4 ? config_.egress_v6 : config_.egress_v4;
}

dnswire::Message ResolverBehavior::respond_chaos(const dnswire::Message& query,
                                                 const dnswire::Question& question,
                                                 const QueryContext&) {
  const SoftwareProfile& software = config_.software;
  if (question.name.equals_ignore_case(dnswire::version_bind())) {
    if (software.version_bind)
      return dnswire::make_txt_response(query, *software.version_bind);
    return dnswire::make_response(query, software.version_bind_rcode);
  }
  if (question.name.equals_ignore_case(dnswire::id_server()) ||
      question.name.equals_ignore_case(dnswire::hostname_bind())) {
    if (software.id_server) return dnswire::make_txt_response(query, *software.id_server);
    return dnswire::make_response(query, software.id_server_rcode);
  }
  return dnswire::make_response(query, dnswire::Rcode::REFUSED);
}

std::optional<dnswire::Message> ResolverBehavior::respond_special(
    const dnswire::Message& query, const dnswire::Question& question,
    const QueryContext& context) {
  // o-o.myaddr.l.google.com: Google's authoritative echoes the address of
  // whichever resolver asked. Any resolver that can recurse gets an answer
  // containing *its own* egress — the key to Table 2's Google column.
  if (question.type == dnswire::RecordType::TXT &&
      question.name.equals_ignore_case(google_myaddr())) {
    auto addr = egress(context.server_ip.family());
    if (!addr) return dnswire::make_response(query, dnswire::Rcode::SERVFAIL);
    return dnswire::make_txt_response(query, addr->to_string(), 60);
  }
  // whoami.akamai.com behaves the same way for A/AAAA (§4.1.2).
  if (question.name.equals_ignore_case(whoami_akamai())) {
    if (question.type == dnswire::RecordType::A) {
      if (config_.egress_v4 && config_.egress_v4->is_v4()) {
        auto response = dnswire::make_response(query);
        response.answers.push_back(
            dnswire::make_a(question.name, config_.egress_v4->v4(), 60));
        return response;
      }
      return dnswire::make_response(query);  // NODATA
    }
    if (question.type == dnswire::RecordType::AAAA) {
      if (config_.egress_v6 && config_.egress_v6->is_v6()) {
        auto response = dnswire::make_response(query);
        response.answers.push_back(
            dnswire::make_aaaa(question.name, config_.egress_v6->v6(), 60));
        return response;
      }
      return dnswire::make_response(query);  // NODATA
    }
  }
  return std::nullopt;
}

std::optional<dnswire::Message> ResolverBehavior::respond(const dnswire::Message& query,
                                                          const QueryContext& context) {
  if (query.flags.opcode != dnswire::Opcode::QUERY)
    return dnswire::make_response(query, dnswire::Rcode::NOTIMP);
  const dnswire::Question* question = query.question();
  if (!question) return dnswire::make_response(query, dnswire::Rcode::FORMERR);

  if (question->klass == dnswire::RecordClass::CH) {
    if (question->type == dnswire::RecordType::TXT)
      return respond_chaos(query, *question, context);
    return dnswire::make_response(query, dnswire::Rcode::REFUSED);
  }
  if (question->klass != dnswire::RecordClass::IN)
    return dnswire::make_response(query, dnswire::Rcode::REFUSED);

  // Filtering resolvers refuse ordinary resolution wholesale, including the
  // dynamic whoami/myaddr names — that refusal is exactly the
  // "Status Modified" signal of §4.1.2.
  if (config_.block_all_rcode)
    return dnswire::make_response(query, *config_.block_all_rcode);

  if (auto special = respond_special(query, *question, context)) return special;

  ZoneStore::Result result = config_.zones->lookup(question->name, question->type);
  dnswire::Message response = dnswire::make_response(query, result.rcode);
  response.answers = std::move(result.answers);
  return response;
}

}  // namespace dnslocate::resolvers
