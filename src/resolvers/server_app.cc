#include "resolvers/server_app.h"

#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "simnet/simulator.h"

namespace dnslocate::resolvers {

std::size_t DnsServerApp::udp_payload_limit(const dnswire::Message& query) {
  for (const auto& rr : query.additionals) {
    if (rr.type != dnswire::RecordType::OPT) continue;
    if (const auto* opt = std::get_if<dnswire::OptRecord>(&rr.rdata))
      return std::max<std::size_t>(512, opt->udp_payload_size);
  }
  return 512;
}

bool DnsServerApp::truncate_to_fit(dnswire::Message& response, std::size_t limit) {
  if (dnswire::encode_message(response).size() <= limit) return false;
  // RFC 2181 §9: set TC and let the client retry over TCP (not modelled);
  // conservative servers strip the answer sections entirely.
  response.answers.clear();
  response.authorities.clear();
  response.flags.tc = true;
  return true;
}

void DnsServerApp::on_datagram(simnet::Simulator& sim, simnet::Device& self,
                               const simnet::UdpPacket& packet) {
  // Strict-profile DoT: the client validates the certificate against the
  // address it dialled. A diverted connection lands on a server that cannot
  // present that identity — the handshake fails and the client hears
  // nothing. This is why strict DoT defeats DNAT interception (§6).
  if (packet.channel == simnet::Channel::dot_strict && packet.tls_expected_peer &&
      !self.has_local_ip(*packet.tls_expected_peer)) {
    ++tls_rejected_;
    return;
  }
  ++queries_seen_;
  auto query = dnswire::decode_message(packet.payload);
  if (!query || query->is_response()) {
    ++malformed_dropped_;
    return;
  }
  QueryContext context{packet.src, packet.dst, sim.now()};
  std::optional<dnswire::Message> response = responder_->respond(*query, context);
  if (!response) return;
  // RFC 6891 §6.1.1: an EDNS-aware server answers an OPT-bearing query with
  // an OPT record of its own. The echo doubles as a middlebox canary — a
  // DPI device that strips EDNS from queries leaves the response bare (see
  // simnet/adversary.h), which the fingerprint probe detects.
  if (response->is_response()) {
    bool query_has_opt = false;
    for (const auto& rr : query->additionals)
      if (rr.type == dnswire::RecordType::OPT) query_has_opt = true;
    bool response_has_opt = false;
    for (const auto& rr : response->additionals)
      if (rr.type == dnswire::RecordType::OPT) response_has_opt = true;
    if (query_has_opt && !response_has_opt) {
      dnswire::ResourceRecord opt;
      opt.name = dnswire::DnsName();  // root
      opt.type = dnswire::RecordType::OPT;
      opt.rdata = dnswire::OptRecord{};
      response->additionals.push_back(std::move(opt));
    }
  }
  // DoT is stream-based; size limits apply to plain UDP only.
  if (packet.channel == simnet::Channel::udp &&
      truncate_to_fit(*response, udp_payload_limit(*query)))
    ++truncated_;

  simnet::UdpPacket reply;
  reply.src = packet.dst;  // answer from the address the client targeted
  reply.dst = packet.src;
  reply.sport = packet.dport;
  reply.dport = packet.sport;
  reply.channel = packet.channel;
  reply.payload = dnswire::encode_message(*response);
  reply.trace_id = packet.trace_id;
  ++responses_sent_;

  simnet::Device* device = &self;
  sim.schedule(processing_delay_, [&sim, device, reply = std::move(reply)]() mutable {
    device->send_local(sim, std::move(reply));
  });
}

}  // namespace dnslocate::resolvers
