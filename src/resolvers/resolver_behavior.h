// Generic recursive-resolver behaviour: ISP resolvers, alternate resolvers
// behind interceptors, and the base for the four public-resolver models.
#pragma once

#include <memory>
#include <optional>

#include "resolvers/server_app.h"
#include "resolvers/software.h"
#include "resolvers/zone.h"

namespace dnslocate::resolvers {

/// Configuration shared by all recursive resolvers.
struct ResolverConfig {
  SoftwareProfile software;
  /// Egress addresses used toward authoritatives; these are what
  /// whoami.akamai.com / o-o.myaddr.l.google.com reveal.
  std::optional<netbase::IpAddress> egress_v4;
  std::optional<netbase::IpAddress> egress_v6;
  std::shared_ptr<const ZoneStore> zones;
  /// Filtering resolver: answer every ordinary IN query with this error
  /// instead of resolving (the paper's "Status Modified" interceptors).
  std::optional<dnswire::Rcode> block_all_rcode;
};

class ResolverBehavior : public DnsResponder {
 public:
  explicit ResolverBehavior(ResolverConfig config);

  std::optional<dnswire::Message> respond(const dnswire::Message& query,
                                          const QueryContext& context) override;

 protected:
  [[nodiscard]] const ResolverConfig& config() const { return config_; }

  /// Egress address of the given family, falling back to the other family.
  [[nodiscard]] std::optional<netbase::IpAddress> egress(netbase::IpFamily family) const;

  /// CHAOS TXT handling (version.bind, id.server, hostname.bind).
  /// Override to specialize (e.g. Cloudflare's IATA id.server).
  virtual dnswire::Message respond_chaos(const dnswire::Message& query,
                                         const dnswire::Question& question,
                                         const QueryContext& context);

  /// Dynamic IN-class names (whoami.akamai.com, o-o.myaddr.l.google.com).
  /// Return nullopt to fall through to zone resolution.
  virtual std::optional<dnswire::Message> respond_special(const dnswire::Message& query,
                                                          const dnswire::Question& question,
                                                          const QueryContext& context);

 private:
  ResolverConfig config_;
};

}  // namespace dnslocate::resolvers
