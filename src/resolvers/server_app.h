// DnsServerApp: binds a DnsResponder to a device's UDP port 53.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "dnswire/message.h"
#include "netbase/ip_address.h"
#include "simnet/device.h"
#include "simnet/time.h"

namespace dnslocate::resolvers {

/// Context passed to responders with each query.
struct QueryContext {
  netbase::IpAddress client;     // source address of the query as received
  netbase::IpAddress server_ip;  // the local address the query was sent to
  simnet::SimTime now{};
};

/// Answer policy for a DNS server. Return nullopt to stay silent (the
/// client sees a timeout).
class DnsResponder {
 public:
  virtual ~DnsResponder() = default;
  virtual std::optional<dnswire::Message> respond(const dnswire::Message& query,
                                                  const QueryContext& context) = 0;
};

/// UDP app that decodes queries, consults a responder, and sends replies
/// sourced from the address the query was addressed to. Responses larger
/// than the client's advertised EDNS payload size (512 octets without an
/// OPT record, RFC 1035/6891) are truncated: answers stripped, TC set.
class DnsServerApp : public simnet::UdpApp {
 public:
  explicit DnsServerApp(std::shared_ptr<DnsResponder> responder)
      : responder_(std::move(responder)) {}

  /// Size limit for a query: the OPT payload size, clamped to >= 512.
  static std::size_t udp_payload_limit(const dnswire::Message& query);

  /// Apply RFC 2181 §9 truncation if `response` exceeds `limit` when
  /// encoded. Returns true if truncation happened.
  static bool truncate_to_fit(dnswire::Message& response, std::size_t limit);

  void on_datagram(simnet::Simulator& sim, simnet::Device& self,
                   const simnet::UdpPacket& packet) override;

  /// Artificial processing delay before the response leaves (models resolver
  /// work; keeps interceptor-vs-origin response races realistic).
  void set_processing_delay(simnet::SimDuration delay) { processing_delay_ = delay; }

  [[nodiscard]] std::uint64_t queries_seen() const { return queries_seen_; }
  [[nodiscard]] std::uint64_t responses_sent() const { return responses_sent_; }
  [[nodiscard]] std::uint64_t malformed_dropped() const { return malformed_dropped_; }
  [[nodiscard]] std::uint64_t truncated() const { return truncated_; }
  /// Strict-DoT handshakes refused because this server cannot present the
  /// identity the client validates (i.e. the flow was diverted here).
  [[nodiscard]] std::uint64_t tls_rejected() const { return tls_rejected_; }

 private:
  std::shared_ptr<DnsResponder> responder_;
  simnet::SimDuration processing_delay_ = std::chrono::microseconds(200);
  std::uint64_t queries_seen_ = 0;
  std::uint64_t responses_sent_ = 0;
  std::uint64_t malformed_dropped_ = 0;
  std::uint64_t tls_rejected_ = 0;
  std::uint64_t truncated_ = 0;
};

}  // namespace dnslocate::resolvers
