// The special query names the localization technique sends (paper Table 1
// and §4.1.2), plus the generic probe domain used for bogon queries.
#pragma once

#include "dnswire/name.h"

namespace dnslocate::resolvers {

/// "whoami.akamai.com" — Akamai's resolver-identification name; answers with
/// the address of the resolver that asked the authoritative (§4.1.2).
const dnswire::DnsName& whoami_akamai();

/// "o-o.myaddr.l.google.com" — Google's equivalent (Table 1, Google DNS
/// location query); TXT answer contains the asking resolver's address.
const dnswire::DnsName& google_myaddr();

/// "debug.opendns.com" — OpenDNS's diagnostic name (Table 1); answers
/// "server mNN.XXX" only when resolved through OpenDNS.
const dnswire::DnsName& opendns_debug();

/// "probe.dnslocate.example" — the "generic domain we control" used for the
/// §3.3 bogon queries. Present in the default zone store.
const dnswire::DnsName& bogon_probe_domain();

}  // namespace dnslocate::resolvers
