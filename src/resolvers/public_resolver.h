// Behavioural models of the four public resolvers the paper probes
// (Table 1): service addresses, anycast sites, location-query formats, and
// egress ranges. The formats here are the single source of truth shared by
// the simulated resolvers and the core classifiers, mirroring how the paper
// validated formats directly with the resolver operators.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "netbase/prefix.h"
#include "resolvers/resolver_behavior.h"

namespace dnslocate::resolvers {

enum class PublicResolverKind { cloudflare, google, quad9, opendns };

/// All four kinds, in the paper's table order.
std::span<const PublicResolverKind> all_public_resolvers();

std::string_view to_string(PublicResolverKind kind);

/// The location query a resolver implements (paper Table 1).
struct LocationQuerySpec {
  dnswire::DnsName name;
  dnswire::RecordType type = dnswire::RecordType::TXT;
  dnswire::RecordClass klass = dnswire::RecordClass::IN;
};

/// Static description of one public resolver service.
struct PublicResolverSpec {
  PublicResolverKind kind{};
  std::string display_name;  // "Cloudflare DNS"
  std::array<netbase::IpAddress, 2> service_v4;  // primary, secondary
  std::array<netbase::IpAddress, 2> service_v6;
  LocationQuerySpec location_query;
  /// Prefixes the resolver's recursive egress traffic comes from; the
  /// transparency test (§4.1.2) checks whoami answers against these.
  std::vector<netbase::Prefix> egress_prefixes;

  [[nodiscard]] std::span<const netbase::IpAddress> service_addrs(
      netbase::IpFamily family) const {
    return family == netbase::IpFamily::v4 ? service_v4 : service_v6;
  }

  /// Spec for a given resolver. The returned reference is static.
  static const PublicResolverSpec& get(PublicResolverKind kind);
};

/// Anycast site catalog: lowercase IATA codes used worldwide by all four
/// services in this model.
std::span<const std::string_view> anycast_sites();

/// True if `code` (any case) is a known anycast site IATA code.
bool is_known_site(std::string_view code);

/// A public resolver instance at one anycast site.
class PublicResolverBehavior : public ResolverBehavior {
 public:
  /// `site_index` selects the anycast site; `instance` differentiates
  /// servers within a site (appears in Quad9/OpenDNS response strings).
  PublicResolverBehavior(PublicResolverKind kind, std::size_t site_index, unsigned instance,
                         std::shared_ptr<const ZoneStore> zones = nullptr);

  [[nodiscard]] PublicResolverKind kind() const { return kind_; }
  [[nodiscard]] const std::string& site() const { return site_; }

  /// The exact string this instance answers to its own location query —
  /// what the paper calls the "standard response".
  [[nodiscard]] std::string expected_location_answer() const;

 protected:
  dnswire::Message respond_chaos(const dnswire::Message& query,
                                 const dnswire::Question& question,
                                 const QueryContext& context) override;
  std::optional<dnswire::Message> respond_special(const dnswire::Message& query,
                                                  const dnswire::Question& question,
                                                  const QueryContext& context) override;

 private:
  static ResolverConfig build_config(PublicResolverKind kind, std::size_t site_index,
                                     unsigned instance, std::shared_ptr<const ZoneStore> zones);

  PublicResolverKind kind_;
  std::string site_;      // lowercase IATA
  unsigned instance_;
};

}  // namespace dnslocate::resolvers
