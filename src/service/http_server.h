// Poll-driven embedded HTTP/1.1 server for the measurement service's
// control plane. One event-loop thread multiplexes the listener and every
// connection over a single poll() with a finite tick; sockets are
// non-blocking throughout, so a slow or stalled client can never wedge the
// daemon. Handlers run on the event thread and must return promptly; a
// streaming response registers a puller the loop pumps on each tick (see
// HttpResponse::stream in service/http.h), which is how verdict NDJSON
// follows a live run without a thread per subscriber.
//
// http_server.cc is the accept-loop seam: the only file outside
// src/sockets/ allowed to own raw socket fds (see the dnslint raii-sockets
// rule), and every fd it creates is closed by the owning Connection /
// server destructor.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "service/http.h"

namespace dnslocate::service {

class HttpServer {
 public:
  /// Request handler: runs on the event thread; must not block.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Config {
    /// TCP port on 127.0.0.1; 0 = OS-assigned (read it back via port()).
    std::uint16_t port = 0;
    int backlog = 64;
    /// Accept no more than this many concurrent connections; excess
    /// connections are accepted and immediately answered 503.
    std::size_t max_connections = 128;
    /// Event-loop tick: poll() timeout, stream-pump cadence, and the
    /// granularity of idle-connection reaping. Finite by construction.
    std::chrono::milliseconds tick{50};
    /// Connections idle (no bytes read, nothing to write) longer than this
    /// are closed. Streams are exempt while their puller is live.
    std::chrono::milliseconds idle_timeout{10000};
  };

  /// Binds 127.0.0.1:port, listens, and starts the event thread. Throws
  /// std::runtime_error when the socket cannot be created or bound.
  HttpServer(Config config, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the OS choice when Config::port was 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stop the event loop, close every connection, join the thread.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] std::uint64_t requests_served() const { return requests_served_.load(); }

 private:
  struct Connection;

  void run();

  Config config_;
  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread thread_;
};

}  // namespace dnslocate::service
