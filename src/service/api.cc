#include "service/api.h"

#include <charconv>
#include <memory>
#include <system_error>
#include <utility>

#include "obs/export.h"

namespace dnslocate::service {

namespace {

HttpResponse json_response(int status, jsonio::Value body) {
  HttpResponse response;
  response.status = status;
  response.body = body.dump() + "\n";
  return response;
}

HttpResponse error_response(int status, const std::string& message,
                            jsonio::Value detail = jsonio::Value()) {
  jsonio::Object error;
  error["message"] = message;
  if (!detail.is_null()) error["detail"] = std::move(detail);
  jsonio::Object body;
  body["error"] = jsonio::Value(std::move(error));
  return json_response(status, jsonio::Value(std::move(body)));
}

HttpResponse method_not_allowed(const std::string& allowed) {
  return error_response(405, "method not allowed; use " + allowed);
}

jsonio::Value status_to_json(const RunStatus& status) {
  jsonio::Object out;
  out["id"] = status.id;
  out["tenant"] = status.tenant;
  out["state"] = std::string(to_string(status.state));
  out["recovered"] = status.recovered;
  out["probes_total"] = static_cast<std::uint64_t>(status.probes_total);
  out["probes_done"] = static_cast<std::uint64_t>(status.probes_done);
  out["not_run"] = static_cast<std::uint64_t>(status.not_run);
  if (!status.error.empty()) out["error"] = status.error;
  if (!status.census.is_null()) out["census"] = status.census;
  return jsonio::Value(std::move(out));
}

HttpResponse handle_submit(MeasurementService& service, const HttpRequest& request) {
  SubmitResult result = service.submit(request.body);
  if (result.status != 202) return error_response(result.status, result.error, result.detail);
  auto status = service.status(result.id);
  jsonio::Object body;
  body["id"] = result.id;
  body["status"] = status ? status_to_json(*status) : jsonio::Value();
  return json_response(202, jsonio::Value(std::move(body)));
}

HttpResponse handle_verdicts(MeasurementService& service, const std::string& id,
                             const HttpRequest& request) {
  const std::string from_text = request.query_value("from_seq", "0");
  std::size_t from_seq = 0;
  const auto [end, ec] =
      std::from_chars(from_text.data(), from_text.data() + from_text.size(), from_seq);
  if (ec != std::errc() || end != from_text.data() + from_text.size())
    return error_response(400, "from_seq must be a non-negative integer, got '" +
                                   from_text + "'");
  if (!service.status(id)) return error_response(404, "unknown run '" + id + "'");

  // Chunked NDJSON pulled by the server's event loop: each call drains the
  // lines published since the cursor; nullopt once the run is terminal and
  // everything has been sent. Sequence numbers make a dropped stream
  // resumable: reconnect with ?from_seq=<lines received so far>.
  auto cursor = std::make_shared<std::size_t>(from_seq);
  HttpResponse response;
  response.content_type = "application/x-ndjson";
  response.stream = [&service, id, cursor]() -> std::optional<std::string> {
    auto page = service.verdicts(id, *cursor);
    if (!page) return std::nullopt;  // run vanished (cannot happen today)
    *cursor = page->next_seq;
    if (page->lines.empty()) {
      if (page->finished) return std::nullopt;
      return std::string();  // nothing new yet: ask again next tick
    }
    std::string chunk;
    for (const auto& line : page->lines) {
      chunk += line;
      chunk += '\n';
    }
    return chunk;
  };
  return response;
}

}  // namespace

HttpResponse route_request(MeasurementService& service, const HttpRequest& request) {
  if (request.path == "/healthz") {
    if (request.method != "GET") return method_not_allowed("GET");
    jsonio::Object body;
    body["status"] = "ok";
    body["draining"] = service.draining();
    body["recovered_runs"] = static_cast<std::uint64_t>(service.recovered_runs());
    return json_response(200, jsonio::Value(std::move(body)));
  }

  if (request.path == "/metrics") {
    if (request.method != "GET") return method_not_allowed("GET");
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4";
    response.body = obs::prometheus_text();
    return response;
  }

  if (request.path == "/v1/fleets") {
    if (request.method == "POST") return handle_submit(service, request);
    if (request.method == "GET") {
      jsonio::Array fleets;
      for (const auto& status : service.list()) fleets.push_back(status_to_json(status));
      jsonio::Object body;
      body["fleets"] = jsonio::Value(std::move(fleets));
      return json_response(200, jsonio::Value(std::move(body)));
    }
    return method_not_allowed("GET, POST");
  }

  constexpr std::string_view kPrefix = "/v1/fleets/";
  if (request.path.size() > kPrefix.size() &&
      std::string_view(request.path).substr(0, kPrefix.size()) == kPrefix) {
    std::string rest = request.path.substr(kPrefix.size());
    std::string id = rest;
    std::string action;
    if (std::size_t slash = rest.find('/'); slash != std::string::npos) {
      id = rest.substr(0, slash);
      action = rest.substr(slash + 1);
    }

    if (action.empty()) {
      if (request.method != "GET") return method_not_allowed("GET");
      auto status = service.status(id);
      if (!status) return error_response(404, "unknown run '" + id + "'");
      return json_response(200, status_to_json(*status));
    }
    if (action == "cancel") {
      if (request.method != "POST") return method_not_allowed("POST");
      if (!service.cancel(id)) return error_response(404, "unknown run '" + id + "'");
      auto status = service.status(id);
      jsonio::Object body;
      body["cancelled"] = true;
      body["status"] = status ? status_to_json(*status) : jsonio::Value();
      return json_response(202, jsonio::Value(std::move(body)));
    }
    if (action == "verdicts") {
      if (request.method != "GET") return method_not_allowed("GET");
      return handle_verdicts(service, id, request);
    }
    if (action == "records") {
      if (request.method != "GET") return method_not_allowed("GET");
      if (!service.status(id)) return error_response(404, "unknown run '" + id + "'");
      auto jsonl = service.records_jsonl(id);
      if (!jsonl) return error_response(409, "run '" + id + "' is not terminal yet");
      HttpResponse response;
      response.content_type = "application/x-ndjson";
      response.body = std::move(*jsonl);
      return response;
    }
    return error_response(404, "no such endpoint under /v1/fleets/{id}");
  }

  return error_response(404, "no such endpoint: " + request.path);
}

}  // namespace dnslocate::service
