// The resident measurement service's runtime kernel: multi-tenant fleet
// scheduling on a bounded worker pool, durable run state, graceful drain,
// and crash recovery.
//
// Each submitted fleet becomes a Run with a durable footprint in the state
// directory:
//
//   <id>.manifest.json   written (and fsync'd) at admission: tenant, pacing,
//                        and the fleet plan — everything needed to rebuild
//                        the run after a crash
//   <id>.journal         the supervised runner's checkpoint journal
//                        (atlas/journal.h): one checksummed line per
//                        completed probe
//   <id>.done            written (and fsync'd) only when the run reaches a
//                        terminal state, carrying the final census
//
// A manifest without a .done marker is, by construction, a run the previous
// process never finished — startup recovery re-queues it through
// atlas::resume_fleet, which replays the journal's intact records and runs
// only what is missing, and its status reports `recovered: true`. Because
// report::run_to_jsonl is wall-clock-free, the recovered run's records are
// byte-identical to an uninterrupted run of the same plan (proved in
// tests/test_service_restart.cc).
//
// Graceful drain (the daemon's SIGTERM path) fires every active run's
// CancelToken: in-flight probes finish and are journaled, journals are
// fsync'd, and no .done marker is written — so the next start resumes
// exactly where the drain stopped. A user cancel (POST .../cancel) uses the
// same token but *does* finalize the run (state `cancelled`), because the
// operator asked for it to end, not for the process to move.
//
// This layer knows nothing about HTTP: service/api.h adapts it to the wire.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "atlas/measurement.h"
#include "jsonio/json.h"
#include "netbase/thread_annotations.h"

namespace dnslocate::service {

struct ServiceConfig {
  /// Durable run state (manifests, journals, done markers). Created if
  /// missing; scanned for unfinished runs at startup.
  std::string state_dir;
  /// Worker pool size: how many fleet runs execute concurrently. Queued
  /// runs wait for a worker in submission order.
  unsigned workers = 2;
  /// Per-tenant admission cap on *active* (queued + running) runs; a
  /// submission over the cap is answered 429, never queued.
  std::size_t tenant_cap = 2;
  /// Largest admissible fleet (generated probes); larger plans get 413.
  std::size_t max_probes = 20000;
  /// Threads per fleet run (MeasurementOptions::threads). The pool bounds
  /// cross-run concurrency; this bounds concurrency within one run.
  unsigned run_threads = 1;
  /// Per-probe wall-clock budget forwarded to the supervisor (0 = none).
  std::chrono::milliseconds probe_deadline{0};
  /// How many terminal runs keep their verdict lines / records resident in
  /// memory. Older terminal runs are spilled (their journal and done marker
  /// stay durable on disk) and reloaded on demand, so a long-lived daemon's
  /// memory stays bounded regardless of how many runs it has served.
  std::size_t retain_terminal_runs = 16;
};

/// Lifecycle of one submitted run.
enum class RunState : std::uint8_t {
  queued = 0,     // admitted, waiting for a worker
  running = 1,    // a worker is executing the fleet
  completed = 2,  // ran to the end of the plan
  cancelled = 3,  // drained by POST .../cancel (partial records kept)
  failed = 4,     // the runner itself threw (plan regeneration, I/O)
};

std::string_view to_string(RunState state);

/// Point-in-time public view of a run (what GET /v1/fleets/{id} reports).
struct RunStatus {
  std::string id;
  std::string tenant;
  RunState state = RunState::queued;
  bool recovered = false;       // resumed from a prior process's journal
  std::size_t probes_total = 0;
  std::size_t probes_done = 0;  // records published so far (== verdict seq)
  std::size_t not_run = 0;      // planned but never started (drain/cancel)
  std::string error;            // failed runs: what the runner threw
  /// Final run census (report::run_census) once terminal; null before.
  jsonio::Value census;
};

/// Outcome of MeasurementService::submit — an HTTP-shaped verdict the API
/// layer can serialize directly.
struct SubmitResult {
  int status = 202;      // 202 accepted; else 400/413/429/503
  std::string id;        // set when accepted
  std::string error;     // human-readable reason when rejected
  /// Parse failures: {offset, line, column, context} from jsonio so the
  /// 400 body points at the offending byte (satellite #1).
  jsonio::Value detail;
};

/// One page of the verdict stream: NDJSON lines [from_seq, next_seq).
struct VerdictPage {
  std::vector<std::string> lines;  // one JSON object per line, no newline
  std::size_t next_seq = 0;        // pass as from_seq to continue
  bool finished = false;           // terminal: no further lines will appear
};

class MeasurementService {
 public:
  /// Creates the state directory if needed, scans it for unfinished runs
  /// (manifest without .done), and re-queues each for resumption before any
  /// new submission is accepted. Throws std::runtime_error when the state
  /// directory cannot be created.
  explicit MeasurementService(ServiceConfig config);
  ~MeasurementService();

  MeasurementService(const MeasurementService&) = delete;
  MeasurementService& operator=(const MeasurementService&) = delete;

  /// Admit a fleet submission (the POST /v1/fleets body): a fleet plan in
  /// the atlas/fleet_json schema, optionally extended with service keys
  /// `tenant` (string, default "default") and `pace_ms` (number: sleep this
  /// long before each probe — turns a simulated fleet into a long-lived run
  /// for drain/recovery testing). The manifest is durable (fsync) before
  /// this returns, so an accepted run survives an immediate crash. The
  /// manifest fsync itself runs *outside* mutex_ (see DNSLOCATE_EXCLUDES):
  /// status/list/verdict calls never stall behind disk latency.
  SubmitResult submit(const std::string& body) DNSLOCATE_EXCLUDES(mutex_);

  /// Status snapshot; nullopt for an unknown id.
  [[nodiscard]] std::optional<RunStatus> status(const std::string& id) const
      DNSLOCATE_EXCLUDES(mutex_);

  /// Every known run (including recovered history), ascending by id.
  [[nodiscard]] std::vector<RunStatus> list() const DNSLOCATE_EXCLUDES(mutex_);

  /// Drain one run: fires its CancelToken (in-flight probes finish and are
  /// journaled) and finalizes it as cancelled. False for an unknown id;
  /// true (idempotently) otherwise.
  bool cancel(const std::string& id) DNSLOCATE_EXCLUDES(mutex_);

  /// Verdict lines with sequence >= from_seq. Lines are published in record
  /// completion order as the run executes (on a resumed run, journal-restored
  /// records replay first), so polling with the returned next_seq streams
  /// every verdict exactly once. nullopt for an unknown id.
  [[nodiscard]] std::optional<VerdictPage> verdicts(const std::string& id,
                                                    std::size_t from_seq)
      DNSLOCATE_EXCLUDES(mutex_);

  /// The full fleet-order record set as JSONL (report::run_to_jsonl) for a
  /// terminal run; nullopt while the run is still queued/running or for an
  /// unknown id. This is the byte-identity surface: equal, byte for byte,
  /// to an uninterrupted in-process run of the same plan.
  [[nodiscard]] std::optional<std::string> records_jsonl(const std::string& id)
      DNSLOCATE_EXCLUDES(mutex_);

  /// Graceful drain (SIGTERM): stop admitting (submit answers 503), fire
  /// every active run's cancel token, let in-flight probes finish and their
  /// journals sync, and join the worker pool. Interrupted runs keep their
  /// manifest un-marked so the next start resumes them. Idempotent; the
  /// destructor calls it.
  void drain() DNSLOCATE_EXCLUDES(mutex_);

  [[nodiscard]] bool draining() const;

  /// How many unfinished runs startup recovery re-queued.
  [[nodiscard]] std::size_t recovered_runs() const { return recovered_runs_; }

 private:
  struct Run;

  void worker_loop() DNSLOCATE_EXCLUDES(mutex_);
  void execute(const std::shared_ptr<Run>& run) DNSLOCATE_EXCLUDES(mutex_);
  void recover_state_dir() DNSLOCATE_EXCLUDES(mutex_);
  void finalize(const std::shared_ptr<Run>& run, RunState state)
      DNSLOCATE_EXCLUDES(mutex_);
  [[nodiscard]] std::shared_ptr<Run> find(const std::string& id) const
      DNSLOCATE_EXCLUDES(mutex_);
  [[nodiscard]] RunStatus snapshot(const Run& run) const;
  /// Lazily materialize verdict lines / records for a run completed by a
  /// *previous* process — or spilled by retention (we hold its journal, not
  /// its memory).
  void ensure_history_loaded(Run& run) DNSLOCATE_EXCLUDES(mutex_);
  /// Record `id` as the most recently resident terminal run and spill the
  /// oldest residents beyond ServiceConfig::retain_terminal_runs. Callers
  /// must hold neither mutex_ nor any run mutex (declared lock order:
  /// mutex_ before any Run::mutex, tools/dnslint/lock_order.txt).
  void note_terminal_resident(const std::string& id) DNSLOCATE_EXCLUDES(mutex_);

  // Immutable after the constructor returns (recover_state_dir included).
  ServiceConfig config_;
  std::size_t recovered_runs_ = 0;
  // Owned by the lifecycle thread: the constructor spawns, drain() joins.
  std::vector<std::thread> workers_;
  std::atomic<bool> draining_{false};

  mutable netbase::Mutex mutex_;
  std::condition_variable work_ready_;
  std::map<std::string, std::shared_ptr<Run>> runs_
      DNSLOCATE_GUARDED_BY(mutex_);  // id -> run, ordered
  std::deque<std::shared_ptr<Run>> queue_ DNSLOCATE_GUARDED_BY(mutex_);
  /// Per-tenant count of submissions past the cap check but not yet
  /// registered (their manifest fsync runs outside mutex_).
  std::map<std::string, std::size_t> admitting_ DNSLOCATE_GUARDED_BY(mutex_);
  /// Terminal runs with records resident in memory, oldest first; bounded
  /// by ServiceConfig::retain_terminal_runs via note_terminal_resident.
  std::deque<std::string> terminal_order_ DNSLOCATE_GUARDED_BY(mutex_);
  std::uint64_t next_run_number_ DNSLOCATE_GUARDED_BY(mutex_) = 1;
};

}  // namespace dnslocate::service
