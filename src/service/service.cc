#include "service/service.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "atlas/fleet_json.h"
#include "atlas/journal.h"
#include "report/aggregate.h"
#include "report/results_io.h"

namespace dnslocate::service {

namespace fs = std::filesystem;

namespace {

/// Read a whole file; nullopt when it cannot be opened.
std::optional<std::string> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string text;
  char buffer[16 * 1024];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) text.append(buffer, got);
  std::fclose(file);
  return text;
}

/// Write a file and fsync it — durability before the caller proceeds. The
/// manifest/done markers go through here so an admitted or finalized run
/// survives an immediate crash.
bool write_file_sync(const std::string& path, std::string_view text) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  ok = std::fflush(file) == 0 && ok;
  if (ok) ok = fsync(fileno(file)) == 0;
  return std::fclose(file) == 0 && ok;
}

/// Final census as the status endpoint's JSON. The telemetry block mirrors
/// the registry's transport_* counters field for field, so a scrape of
/// /metrics and this census agree to the digit (asserted in
/// tests/test_service.cc).
jsonio::Value census_to_json(const report::RunCensus& census) {
  jsonio::Object telemetry;
  telemetry["queries"] = census.telemetry.queries;
  telemetry["attempts"] = census.telemetry.attempts;
  telemetry["retries"] = census.telemetry.retries;
  telemetry["timeouts"] = census.telemetry.timeouts;
  telemetry["answered"] = census.telemetry.answered;

  jsonio::Object out;
  out["probes"] = static_cast<std::uint64_t>(census.probes);
  out["ok"] = static_cast<std::uint64_t>(census.ok);
  out["failed"] = static_cast<std::uint64_t>(census.failed);
  out["deadline_exceeded"] = static_cast<std::uint64_t>(census.deadline_exceeded);
  out["partial_verdicts"] = static_cast<std::uint64_t>(census.partial_verdicts);
  out["not_run"] = static_cast<std::uint64_t>(census.not_run);
  out["telemetry"] = jsonio::Value(std::move(telemetry));
  return jsonio::Value(std::move(out));
}

bool valid_tenant(std::string_view tenant) {
  if (tenant.empty() || tenant.size() > 64) return false;
  for (char c : tenant) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

std::optional<RunState> run_state_from(std::string_view name) {
  if (name == "queued") return RunState::queued;
  if (name == "running") return RunState::running;
  if (name == "completed") return RunState::completed;
  if (name == "cancelled") return RunState::cancelled;
  if (name == "failed") return RunState::failed;
  return std::nullopt;
}

}  // namespace

std::string_view to_string(RunState state) {
  switch (state) {
    case RunState::queued: return "queued";
    case RunState::running: return "running";
    case RunState::completed: return "completed";
    case RunState::cancelled: return "cancelled";
    case RunState::failed: return "failed";
  }
  return "unknown";
}

/// Internal run state. The service mutex guards the registry/queue; each
/// run's own mutex guards everything below it, so verdict publication (the
/// fleet's hot path) never contends with unrelated runs. Declared lock
/// order: MeasurementService::mutex_ before any Run::mutex
/// (tools/dnslint/lock_order.txt); the capability annotations make the
/// guard assignments checkable under -Werror=thread-safety.
struct MeasurementService::Run {
  // Immutable once the run is published in runs_ (set during admission /
  // recovery under `mutex` before any other thread can see the Run).
  std::string id;
  std::string tenant;
  std::string plan_json;  // fleet plan document (regenerates the fleet)
  std::chrono::milliseconds pace{0};
  bool recovered = false;          // re-queued for resumption at startup
  std::string manifest_path;
  std::string journal_path;
  std::string done_path;
  core::CancelToken cancel = core::CancelToken::manual();

  mutable netbase::Mutex mutex;
  RunState state DNSLOCATE_GUARDED_BY(mutex) = RunState::queued;
  bool user_cancelled DNSLOCATE_GUARDED_BY(mutex) = false;
  bool stream_finished DNSLOCATE_GUARDED_BY(mutex) = false;
  bool history_loaded DNSLOCATE_GUARDED_BY(mutex) = false;
  bool from_disk_history DNSLOCATE_GUARDED_BY(mutex) = false;  // finished by a previous process
  std::size_t probes_total DNSLOCATE_GUARDED_BY(mutex) = 0;
  std::size_t done_probes_from_marker DNSLOCATE_GUARDED_BY(mutex) = 0;  // historical runs, pre-load
  std::size_t done_not_run_from_marker DNSLOCATE_GUARDED_BY(mutex) = 0;
  std::vector<std::string> verdict_lines
      DNSLOCATE_GUARDED_BY(mutex);  // NDJSON, publication order
  std::optional<atlas::MeasurementRun> result DNSLOCATE_GUARDED_BY(mutex);
  std::string error DNSLOCATE_GUARDED_BY(mutex);
  jsonio::Value census DNSLOCATE_GUARDED_BY(mutex);  // null until terminal
};

MeasurementService::MeasurementService(ServiceConfig config) : config_(std::move(config)) {
  if (config_.state_dir.empty())
    throw std::runtime_error("MeasurementService: state_dir is required");
  std::error_code ec;
  fs::create_directories(config_.state_dir, ec);
  if (ec && !fs::is_directory(config_.state_dir))
    throw std::runtime_error("MeasurementService: cannot create state dir " + config_.state_dir);
  recover_state_dir();
  unsigned workers = std::max(1u, config_.workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

MeasurementService::~MeasurementService() { drain(); }

void MeasurementService::recover_state_dir() {
  // Startup is single-threaded (workers spawn after this returns), but the
  // registry fields are capability-guarded, so take the locks anyway: they
  // are uncontended, and the analysis then needs no startup special case.
  netbase::MutexLock lock(mutex_);
  std::vector<std::shared_ptr<Run>> pending;
  for (const auto& entry : fs::directory_iterator(config_.state_dir)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".manifest.json";
    if (name.size() <= kSuffix.size() ||
        name.substr(name.size() - kSuffix.size()) != kSuffix)
      continue;
    auto text = read_file(entry.path().string());
    if (!text) continue;
    auto manifest = jsonio::parse(*text);
    if (!manifest) continue;  // a torn manifest means admission never finished
    const std::string id = (*manifest)["id"].as_string();
    if (id.substr(0, 4) != "run-") continue;
    std::uint64_t number = std::strtoull(id.c_str() + 4, nullptr, 10);
    next_run_number_ = std::max(next_run_number_, number + 1);

    auto run = std::make_shared<Run>();
    run->id = id;
    run->tenant = (*manifest)["tenant"].as_string();
    if (run->tenant.empty()) run->tenant = "default";
    run->plan_json = (*manifest)["plan"].dump();
    run->pace = std::chrono::milliseconds((*manifest)["pace_ms"].as_int(0));
    run->manifest_path = entry.path().string();
    const std::string base = config_.state_dir + "/" + id;
    run->journal_path = base + ".journal";
    run->done_path = base + ".done";

    netbase::MutexLock run_lock(run->mutex);
    run->probes_total = static_cast<std::size_t>((*manifest)["probes_total"].as_int(0));
    if (fs::exists(run->done_path)) {
      // Finished by a previous process: status comes from the marker,
      // records lazily from the journal (ensure_history_loaded).
      run->from_disk_history = true;
      run->stream_finished = true;
      run->state = RunState::completed;
      if (auto done_text = read_file(run->done_path)) {
        if (auto done = jsonio::parse(*done_text)) {
          if (auto state = run_state_from((*done)["state"].as_string())) run->state = *state;
          run->census = (*done)["census"];
          run->error = (*done)["error"].as_string();
          run->done_probes_from_marker =
              static_cast<std::size_t>((*done)["probes_done"].as_int(0));
          run->done_not_run_from_marker =
              static_cast<std::size_t>((*done)["not_run"].as_int(0));
        }
      }
    } else {
      // Manifest without a done marker: the previous process died (or was
      // drained) mid-run. Resume it.
      run->recovered = true;
      run->state = RunState::queued;
      pending.push_back(run);
    }
    runs_[id] = std::move(run);
  }
  std::sort(pending.begin(), pending.end(),
            [](const auto& a, const auto& b) { return a->id < b->id; });
  recovered_runs_ = pending.size();
  for (auto& run : pending) queue_.push_back(std::move(run));
}

SubmitResult MeasurementService::submit(const std::string& body) {
  SubmitResult out;
  if (draining_.load(std::memory_order_relaxed)) {
    out.status = 503;
    out.error = "service is draining; resubmit after restart";
    return out;
  }

  jsonio::ParseError parse_error;
  auto parsed = jsonio::parse(body, &parse_error);
  if (!parsed) {
    out.status = 400;
    out.error = "invalid JSON: " + jsonio::describe(parse_error);
    jsonio::Object detail;
    detail["offset"] = static_cast<std::uint64_t>(parse_error.offset);
    detail["line"] = static_cast<std::uint64_t>(parse_error.line);
    detail["column"] = static_cast<std::uint64_t>(parse_error.column);
    detail["context"] = parse_error.context;
    out.detail = jsonio::Value(std::move(detail));
    return out;
  }

  auto plan = atlas::fleet_from_json(body);
  if (!plan.ok()) {
    out.status = 400;
    out.error = "invalid fleet plan";
    jsonio::Array errors;
    for (const auto& message : plan.errors) errors.emplace_back(message);
    jsonio::Object detail;
    detail["errors"] = jsonio::Value(std::move(errors));
    out.detail = jsonio::Value(std::move(detail));
    return out;
  }
  const auto fleet = plan.generate();
  if (fleet.empty()) {
    out.status = 400;
    out.error = "fleet plan generates no probes";
    return out;
  }
  if (fleet.size() > config_.max_probes) {
    out.status = 413;
    out.error = "fleet of " + std::to_string(fleet.size()) + " probes exceeds the cap of " +
                std::to_string(config_.max_probes);
    return out;
  }

  std::string tenant = (*parsed)["tenant"].as_string();
  if (tenant.empty()) tenant = "default";
  if (!valid_tenant(tenant)) {
    out.status = 400;
    out.error = "tenant must be 1-64 chars of [A-Za-z0-9_-]";
    return out;
  }
  const std::int64_t pace_ms = (*parsed)["pace_ms"].as_int(0);
  if (pace_ms < 0 || pace_ms > 60000) {
    out.status = 400;
    out.error = "pace_ms must be in [0, 60000]";
    return out;
  }

  // Admission critical section: cap check + id reservation only. The
  // manifest write (fwrite + fsync, milliseconds of disk latency) happens
  // *outside* mutex_ so status/list/verdict calls never stall behind it;
  // admitting_ counts the reservation so a concurrent submit for the same
  // tenant still sees the slot as taken.
  char id_buffer[24];
  {
    netbase::MutexLock lock(mutex_);
    if (draining_.load(std::memory_order_relaxed)) {
      out.status = 503;
      out.error = "service is draining; resubmit after restart";
      return out;
    }
    auto admitting_it = admitting_.find(tenant);
    std::size_t active = admitting_it == admitting_.end() ? 0 : admitting_it->second;
    for (const auto& [id, run] : runs_) {
      if (run->tenant != tenant) continue;  // tenant is immutable: no run lock
      netbase::MutexLock run_lock(run->mutex);
      if (run->state == RunState::queued || run->state == RunState::running) ++active;
    }
    if (active >= config_.tenant_cap) {
      out.status = 429;
      out.error = "tenant '" + tenant + "' already has " + std::to_string(active) +
                  " active runs (cap " + std::to_string(config_.tenant_cap) + ")";
      return out;
    }
    std::snprintf(id_buffer, sizeof id_buffer, "run-%06llu",
                  static_cast<unsigned long long>(next_run_number_++));
    ++admitting_[tenant];
  }
  auto release_admission = [this, &tenant] {
    netbase::MutexLock lock(mutex_);
    auto it = admitting_.find(tenant);
    if (it != admitting_.end() && --it->second == 0) admitting_.erase(it);
  };

  auto run = std::make_shared<Run>();
  run->id = id_buffer;
  run->tenant = tenant;
  run->plan_json = (*parsed).dump();
  run->pace = std::chrono::milliseconds(pace_ms);
  {
    // No other thread can see the Run yet; the lock is uncontended and
    // exists so the capability analysis sees the guarded write.
    netbase::MutexLock run_lock(run->mutex);
    run->probes_total = fleet.size();
  }
  const std::string base = config_.state_dir + "/" + run->id;
  run->manifest_path = base + ".manifest.json";
  run->journal_path = base + ".journal";
  run->done_path = base + ".done";

  jsonio::Object manifest;
  manifest["format"] = "dnslocate-manifest";
  manifest["id"] = run->id;
  manifest["tenant"] = tenant;
  manifest["pace_ms"] = static_cast<std::int64_t>(pace_ms);
  manifest["probes_total"] = static_cast<std::uint64_t>(fleet.size());
  manifest["plan"] = *parsed;
  if (!write_file_sync(run->manifest_path, jsonio::Value(std::move(manifest)).dump() + "\n")) {
    release_admission();
    out.status = 500;
    out.error = "cannot persist run manifest in " + config_.state_dir;
    return out;
  }

  out.id = run->id;
  {
    netbase::MutexLock lock(mutex_);
    auto it = admitting_.find(tenant);
    if (it != admitting_.end() && --it->second == 0) admitting_.erase(it);
    runs_[run->id] = run;
    if (draining_.load(std::memory_order_relaxed)) {
      // Drain won the race between reservation and registration: the
      // manifest is durable, so the next start resumes this run; close its
      // stream now because no worker in this process will touch it.
      netbase::MutexLock run_lock(run->mutex);
      run->stream_finished = true;
    } else {
      queue_.push_back(std::move(run));
    }
  }
  work_ready_.notify_one();
  return out;
}

void MeasurementService::worker_loop() {
  for (;;) {
    std::shared_ptr<Run> run;
    {
      netbase::MutexLock lock(mutex_);
      // An explicit predicate loop (not the wait(lock, pred) overload):
      // the predicate reads queue_, and inside a lambda the analysis could
      // not see that mutex_ is held across the wait.
      while (!draining_.load(std::memory_order_relaxed) && queue_.empty())
        work_ready_.wait(lock.native());
      // On drain, leave queued runs untouched: their manifests carry no
      // done marker, so the next start resumes them.
      if (draining_.load(std::memory_order_relaxed)) return;
      run = queue_.front();
      queue_.pop_front();
    }
    execute(run);
  }
}

void MeasurementService::execute(const std::shared_ptr<Run>& run) {
  {
    netbase::MutexLock lock(run->mutex);
    run->state = RunState::running;
  }

  atlas::MeasurementRun measured;
  try {
    auto plan = atlas::fleet_from_json(run->plan_json);
    if (!plan.ok()) throw std::runtime_error("manifest plan no longer parses: " + plan.errors[0]);
    const auto fleet = plan.generate();
    {
      netbase::MutexLock lock(run->mutex);
      run->probes_total = fleet.size();
    }

    atlas::MeasurementOptions options;
    options.strip_raw_responses = true;
    options.threads = std::max(1u, config_.run_threads);
    options.probe_deadline = config_.probe_deadline;
    options.journal_path = run->journal_path;
    options.cancel = run->cancel;
    options.on_record = [run](const atlas::ProbeRecord& record) {
      netbase::MutexLock lock(run->mutex);
      run->verdict_lines.push_back(report::probe_to_json(record).dump());
    };
    if (run->pace.count() > 0) {
      // Pacing spreads a simulated fleet over wall-clock time (drain and
      // kill-mid-run testing). The sleep is cancel-aware so a drain is
      // never stuck behind it.
      const auto pace = run->pace;
      const auto drain_token = run->cancel;
      options.runner = [pace, drain_token](const atlas::ProbeSpec& spec,
                                           const core::CancelToken& token) {
        std::chrono::milliseconds waited{0};
        while (waited < pace && !token.cancelled() && !drain_token.cancelled()) {
          const auto slice = std::min(pace - waited, std::chrono::milliseconds(5));
          std::this_thread::sleep_for(slice);
          waited += slice;
        }
        return atlas::run_probe(spec, token, /*strip_raw_responses=*/true,
                                atlas::QueryEngine::async);
      };
    }

    if (run->recovered) {
      atlas::ResumeReport report;
      measured = atlas::resume_fleet(run->journal_path, fleet, options, &report);
    } else {
      measured = atlas::run_fleet(fleet, options);
    }
  } catch (const std::exception& e) {
    {
      netbase::MutexLock lock(run->mutex);
      run->error = e.what();
    }
    finalize(run, RunState::failed);
    return;
  }

  bool user_cancelled = false;
  bool stopped_early = measured.stopped_early();
  {
    netbase::MutexLock lock(run->mutex);
    run->result = std::move(measured);
    user_cancelled = run->user_cancelled;
  }
  if (user_cancelled) {
    finalize(run, RunState::cancelled);
    return;
  }
  if (draining_.load(std::memory_order_relaxed) && stopped_early) {
    // Interrupted by process drain, not by the operator: keep the manifest
    // un-marked so the next start resumes this run where the journal ends.
    netbase::MutexLock lock(run->mutex);
    run->stream_finished = true;
    return;
  }
  finalize(run, RunState::completed);
}

void MeasurementService::finalize(const std::shared_ptr<Run>& run, RunState state) {
  jsonio::Object done;
  done["format"] = "dnslocate-done";
  done["id"] = run->id;
  done["state"] = std::string(to_string(state));
  {
    netbase::MutexLock lock(run->mutex);
    run->state = state;
    run->stream_finished = true;
    std::size_t not_run = 0;
    if (run->result) {
      run->census = census_to_json(report::run_census(*run->result));
      not_run = run->result->not_run;
    }
    if (!run->error.empty()) done["error"] = run->error;
    done["census"] = run->census;
    done["probes_done"] = static_cast<std::uint64_t>(run->verdict_lines.size());
    done["not_run"] = static_cast<std::uint64_t>(not_run);
  }
  write_file_sync(run->done_path, jsonio::Value(std::move(done)).dump() + "\n");
  note_terminal_resident(run->id);
}

void MeasurementService::note_terminal_resident(const std::string& id) {
  std::vector<std::shared_ptr<Run>> victims;
  {
    netbase::MutexLock lock(mutex_);
    std::erase(terminal_order_, id);  // refresh: most recent goes to the back
    terminal_order_.push_back(id);
    while (terminal_order_.size() > std::max<std::size_t>(1, config_.retain_terminal_runs)) {
      auto it = runs_.find(terminal_order_.front());
      terminal_order_.pop_front();
      if (it != runs_.end()) victims.push_back(it->second);
    }
  }
  // Spill outside mutex_: the victims' records are durable (journal + done
  // marker), so drop the in-memory copies and flip them to the lazy-reload
  // path a historical run already takes.
  for (const auto& victim : victims) {
    netbase::MutexLock run_lock(victim->mutex);
    if (victim->state == RunState::queued || victim->state == RunState::running)
      continue;  // raced with a resubmit of the same id: never spill live runs
    victim->done_probes_from_marker = victim->verdict_lines.size();
    if (victim->result) victim->done_not_run_from_marker = victim->result->not_run;
    victim->verdict_lines.clear();
    victim->verdict_lines.shrink_to_fit();
    victim->result.reset();
    victim->from_disk_history = true;
    victim->history_loaded = false;
  }
}

std::shared_ptr<MeasurementService::Run> MeasurementService::find(const std::string& id) const {
  netbase::MutexLock lock(mutex_);
  auto it = runs_.find(id);
  return it == runs_.end() ? nullptr : it->second;
}

RunStatus MeasurementService::snapshot(const Run& run) const {
  netbase::MutexLock lock(run.mutex);
  RunStatus status;
  status.id = run.id;
  status.tenant = run.tenant;
  status.state = run.state;
  status.recovered = run.recovered;
  status.probes_total = run.probes_total;
  status.probes_done = (run.from_disk_history && !run.history_loaded)
                           ? run.done_probes_from_marker
                           : run.verdict_lines.size();
  status.not_run = run.result ? run.result->not_run : run.done_not_run_from_marker;
  status.error = run.error;
  status.census = run.census;
  return status;
}

std::optional<RunStatus> MeasurementService::status(const std::string& id) const {
  auto run = find(id);
  if (!run) return std::nullopt;
  return snapshot(*run);
}

std::vector<RunStatus> MeasurementService::list() const {
  std::vector<std::shared_ptr<Run>> all;
  {
    netbase::MutexLock lock(mutex_);
    all.reserve(runs_.size());
    for (const auto& [id, run] : runs_) all.push_back(run);
  }
  std::vector<RunStatus> out;
  out.reserve(all.size());
  for (const auto& run : all) out.push_back(snapshot(*run));
  return out;
}

bool MeasurementService::cancel(const std::string& id) {
  auto run = find(id);
  if (!run) return false;
  {
    netbase::MutexLock lock(run->mutex);
    if (run->state == RunState::completed || run->state == RunState::cancelled ||
        run->state == RunState::failed)
      return true;  // already terminal: cancel is idempotent
    run->user_cancelled = true;
  }
  run->cancel.cancel();
  return true;
}

void MeasurementService::ensure_history_loaded(Run& run) {
  bool resident = false;
  {
    netbase::MutexLock lock(run.mutex);
    if (!run.from_disk_history) return;
    if (run.history_loaded) {
      resident = true;  // refresh retention order below
    } else {
      run.history_loaded = true;
      resident = true;

      // Rebuild the fleet from the manifest plan so records come back in
      // fleet order — the same order run_to_jsonl would have used in the
      // process that measured them.
      auto plan = atlas::fleet_from_json(run.plan_json);
      if (plan.ok()) {
        const auto fleet = plan.generate();
        auto journal = atlas::load_journal(run.journal_path);
        std::unordered_map<std::uint32_t, const atlas::ProbeRecord*> by_id;
        by_id.reserve(journal.records.size());
        for (const auto& record : journal.records) by_id[record.probe_id] = &record;

        atlas::MeasurementRun result;
        result.records.reserve(journal.records.size());
        for (const auto& spec : fleet) {
          auto it = by_id.find(spec.probe_id);
          if (it != by_id.end()) result.records.push_back(*it->second);
        }
        result.not_run = fleet.size() - result.records.size();
        run.verdict_lines.clear();
        run.verdict_lines.reserve(result.records.size());
        for (const auto& record : result.records)
          run.verdict_lines.push_back(report::probe_to_json(record).dump());
        run.result = std::move(result);
      }
    }
  }
  // Reloaded records are resident again: re-enter the retention order (with
  // no lock held — note_terminal_resident takes mutex_ then run mutexes).
  if (resident) note_terminal_resident(run.id);
}

std::optional<VerdictPage> MeasurementService::verdicts(const std::string& id,
                                                        std::size_t from_seq) {
  auto run = find(id);
  if (!run) return std::nullopt;
  ensure_history_loaded(*run);  // no-op unless spilled/historical (checks under the run lock)
  netbase::MutexLock lock(run->mutex);
  VerdictPage page;
  for (std::size_t seq = from_seq; seq < run->verdict_lines.size(); ++seq)
    page.lines.push_back(run->verdict_lines[seq]);
  page.next_seq = run->verdict_lines.size();
  page.finished = run->stream_finished;
  return page;
}

std::optional<std::string> MeasurementService::records_jsonl(const std::string& id) {
  auto run = find(id);
  if (!run) return std::nullopt;
  ensure_history_loaded(*run);  // no-op unless spilled/historical (checks under the run lock)
  netbase::MutexLock lock(run->mutex);
  const bool terminal = run->state == RunState::completed ||
                        run->state == RunState::cancelled || run->state == RunState::failed;
  if (!terminal || !run->result) return std::nullopt;
  return report::run_to_jsonl(*run->result);
}

bool MeasurementService::draining() const {
  return draining_.load(std::memory_order_relaxed);
}

void MeasurementService::drain() {
  {
    netbase::MutexLock lock(mutex_);
    if (draining_.exchange(true)) {
      // Second call: workers are already stopping (or stopped).
    }
    for (const auto& [id, run] : runs_) {
      netbase::MutexLock run_lock(run->mutex);
      if (run->state == RunState::queued || run->state == RunState::running)
        run->cancel.cancel();
    }
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Runs still queued were never started: close their streams so a client
  // polling the verdict endpoint sees the end of the stream.
  netbase::MutexLock lock(mutex_);
  for (const auto& [id, run] : runs_) {
    netbase::MutexLock run_lock(run->mutex);
    if (run->state == RunState::queued) run->stream_finished = true;
  }
}

}  // namespace dnslocate::service
