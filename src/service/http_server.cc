// The accept-loop seam: the one file outside src/sockets/ that owns raw
// socket fds (allowlisted by the dnslint raii-sockets rule — see
// tools/dnslint/lint.cc for the reasoning). Every fd lives in an RAII
// owner: the server's listener is closed in stop(), each accepted fd is
// closed by its Connection destructor, and every poll() carries the finite
// Config::tick timeout, so nothing here can hang or leak.
#include "service/http_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace dnslocate::service {

namespace {

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// One accepted connection: owns its fd, accumulates request bytes through
/// the incremental parser, then drains the serialized response (and, for a
/// streaming response, pumps the puller) before closing.
struct HttpServer::Connection {
  explicit Connection(int socket_fd) : fd(socket_fd) {}
  ~Connection() {
    if (fd >= 0) close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd = -1;
  RequestParser parser;
  std::string out;               // bytes awaiting write
  std::size_t out_sent = 0;      // prefix of `out` already written
  std::function<std::optional<std::string>()> stream;  // live puller, if any
  bool responded = false;        // head+body handed to `out`
  bool stream_finished = false;  // final chunk queued
  std::chrono::steady_clock::time_point last_activity = std::chrono::steady_clock::now();

  [[nodiscard]] bool wants_write() const { return out_sent < out.size(); }
  [[nodiscard]] bool done() const {
    return responded && !wants_write() && (!stream || stream_finished);
  }
};

HttpServer::HttpServer(Config config, Handler handler)
    : config_(config), handler_(std::move(handler)) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("HttpServer: socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: bind(127.0.0.1:" + std::to_string(config_.port) +
                             ") failed: " + std::strerror(errno));
  }
  if (listen(listen_fd_, config_.backlog) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: listen() failed");
  }
  socklen_t addr_len = sizeof addr;
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  thread_ = std::thread([this] { run(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  bool was_running = running_.exchange(false);
  if (thread_.joinable()) thread_.join();
  if (was_running && listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::run() {
  std::vector<std::unique_ptr<Connection>> connections;
  const int tick_ms = static_cast<int>(config_.tick.count());

  auto respond = [this](Connection& conn, HttpResponse response) {
    conn.out += serialize_head(response);
    conn.stream = std::move(response.stream);
    if (conn.stream) {
      // A non-empty body before a stream becomes the first chunk (the
      // verdict endpoints use this for the backlog snapshot).
      if (!response.body.empty()) conn.out += encode_chunk(response.body);
    } else {
      conn.out += response.body;
    }
    conn.responded = true;
    requests_served_.fetch_add(1);
  };

  while (running_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.reserve(connections.size() + 1);
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& conn : connections) {
      int events = 0;
      if (!conn->responded) events |= POLLIN;
      if (conn->wants_write()) events |= POLLOUT;
      fds.push_back(pollfd{conn->fd, static_cast<short>(events), 0});
    }
    // Finite tick: wakes the loop to pump streams and honour stop().
    poll(fds.data(), fds.size(), tick_ms);
    auto now = std::chrono::steady_clock::now();

    // Connections polled this tick; anything accepted below has no pollfd
    // entry yet and must be treated as revents == 0 until the next tick.
    const std::size_t polled = connections.size();

    // Accept every pending connection (non-blocking listener).
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (connections.size() >= config_.max_connections) {
          // Over cap: best-effort 503 and close immediately — never track
          // the connection, so a connect flood cannot grow the set (or the
          // open-fd count) past max_connections.
          HttpResponse busy;
          busy.status = 503;
          busy.body = R"({"error":{"message":"connection limit reached"}})";
          const std::string wire = serialize_head(busy) + busy.body;
          send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
          close(fd);
          continue;
        }
        set_nonblocking(fd);
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        connections.push_back(std::make_unique<Connection>(fd));
      }
    }

    for (std::size_t i = 0; i < connections.size(); ++i) {
      Connection& conn = *connections[i];
      const short revents = i < polled ? fds[i + 1].revents : 0;

      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && !conn.wants_write()) {
        conn.responded = true;
        conn.stream = nullptr;
        conn.stream_finished = true;
        continue;
      }

      if (!conn.responded && (revents & POLLIN) != 0) {
        char buffer[16 * 1024];
        for (;;) {
          ssize_t got = recv(conn.fd, buffer, sizeof buffer, 0);
          if (got > 0) {
            conn.last_activity = now;
            auto state = conn.parser.feed(
                std::string_view(buffer, static_cast<std::size_t>(got)));
            if (state == RequestParser::State::done) {
              respond(conn, handler_(conn.parser.request()));
              break;
            }
            if (state == RequestParser::State::bad) {
              HttpResponse bad;
              bad.status = 400;
              bad.body = R"({"error":{"message":")" + conn.parser.error() + R"("}})";
              respond(conn, std::move(bad));
              break;
            }
          } else if (got == 0) {
            // Peer closed before completing a request: drop silently.
            conn.responded = true;
            conn.stream_finished = true;
            break;
          } else {
            break;  // EAGAIN (or a transient error): wait for the next tick
          }
        }
      }

      // Pump a live stream when the outbox has drained.
      if (conn.responded && conn.stream && !conn.stream_finished && !conn.wants_write()) {
        std::optional<std::string> chunk = conn.stream();
        if (!chunk.has_value()) {
          conn.out += final_chunk();
          conn.stream_finished = true;
        } else if (!chunk->empty()) {
          conn.out += encode_chunk(*chunk);
        }
      }

      if (conn.wants_write()) {
        ssize_t sent = send(conn.fd, conn.out.data() + conn.out_sent,
                            conn.out.size() - conn.out_sent, MSG_NOSIGNAL);
        if (sent > 0) {
          conn.out_sent += static_cast<std::size_t>(sent);
          conn.last_activity = now;
          if (conn.out_sent == conn.out.size() && !conn.stream) {
            // Fully drained non-streaming response: reclaim the buffer.
            conn.out.clear();
            conn.out_sent = 0;
          }
        } else if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          conn.stream = nullptr;  // broken pipe: give up on this client
          conn.stream_finished = true;
          conn.out_sent = conn.out.size();
          conn.responded = true;
        }
      }
    }

    // Reap: completed responses, and idle connections that never finished a
    // request (streams stay open while their puller is live).
    std::erase_if(connections, [&](const std::unique_ptr<Connection>& conn) {
      if (conn->done()) return true;
      if (!conn->responded && now - conn->last_activity > config_.idle_timeout) return true;
      return false;
    });
  }
}

}  // namespace dnslocate::service
