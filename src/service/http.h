// Minimal HTTP/1.1 message layer for the resident measurement service: a
// request type, an incremental request parser, and response serialization
// with chunked transfer encoding for streaming bodies. No sockets here —
// the parser consumes bytes the event loop (http_server.h) hands it, and
// handlers produce HttpResponse values; only http_server.cc touches fds.
//
// Deliberately small: one request per connection (the server always answers
// `Connection: close`), no request chunked bodies, no multipart. That is
// everything the JSON control plane needs, with nothing to audit beyond it.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace dnslocate::service {

/// One parsed HTTP request.
struct HttpRequest {
  std::string method;  // upper-case ("GET", "POST")
  std::string target;  // raw request target ("/v1/fleets/run-1?from_seq=3")
  std::string path;    // target up to '?', percent-decoded
  std::map<std::string, std::string> query;    // decoded query parameters
  std::map<std::string, std::string> headers;  // keys lower-cased
  std::string body;

  /// Query parameter lookup with a fallback.
  [[nodiscard]] std::string query_value(const std::string& key,
                                        std::string fallback = "") const {
    auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
  }
};

/// A handler's answer. When `stream` is set the body is sent with chunked
/// transfer encoding: the server repeatedly calls the puller from its event
/// loop — a non-empty return becomes one chunk on the wire, an empty string
/// means "nothing new yet, ask again next tick", and nullopt terminates the
/// stream (final chunk, connection close). Pullers run on the server's event
/// thread and must never block (see the dnslint `http-blocking` rule).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::function<std::optional<std::string>()> stream;
};

/// Canonical reason phrase for the status codes the service uses.
[[nodiscard]] std::string_view status_text(int status);

/// Serialize the response head (status line + headers + blank line). A
/// streaming response advertises `Transfer-Encoding: chunked` and carries no
/// Content-Length; a plain one carries Content-Length over `body`.
[[nodiscard]] std::string serialize_head(const HttpResponse& response);

/// Frame one chunk for chunked transfer encoding (hex size, CRLFs).
[[nodiscard]] std::string encode_chunk(std::string_view data);

/// The terminating zero-length chunk.
[[nodiscard]] std::string final_chunk();

/// Incremental request parser. Feed it bytes as they arrive; it accumulates
/// until a full head (+ Content-Length body) is present. Bounded: heads over
/// 16 KiB or bodies over 8 MiB are rejected rather than buffered.
class RequestParser {
 public:
  enum class State {
    need_more,  // keep feeding
    done,       // request() is valid
    bad,        // protocol error; error() says why — answer 400 and close
  };

  State feed(std::string_view bytes);

  [[nodiscard]] const HttpRequest& request() const { return request_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  static constexpr std::size_t kMaxHeadBytes = 16 * 1024;
  static constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

 private:
  State fail(std::string message);
  State parse_head(std::string_view head);
  State check_body();

  std::string buffer_;
  std::size_t body_needed_ = 0;
  bool head_done_ = false;
  HttpRequest request_;
  std::string error_;
  State state_ = State::need_more;
};

/// Percent-decode a URL component ('+' becomes space, %XX becomes the byte;
/// malformed escapes pass through verbatim).
[[nodiscard]] std::string url_decode(std::string_view text);

/// Split `target` into path + decoded query parameters.
void split_target(std::string_view target, std::string& path,
                  std::map<std::string, std::string>& query);

}  // namespace dnslocate::service
