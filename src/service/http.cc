#include "service/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace dnslocate::service {
namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' || text.back() == '\r'))
    text.remove_suffix(1);
  return text;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string serialize_head(const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     std::string(status_text(response.status)) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  if (response.stream) {
    head += "Transfer-Encoding: chunked\r\n";
  } else {
    head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  head += "Connection: close\r\n\r\n";
  return head;
}

std::string encode_chunk(std::string_view data) {
  char size_hex[16];
  auto [end, ec] = std::to_chars(size_hex, size_hex + sizeof size_hex, data.size(), 16);
  std::string chunk(size_hex, end);
  chunk += "\r\n";
  chunk += data;
  chunk += "\r\n";
  return chunk;
}

std::string final_chunk() { return "0\r\n\r\n"; }

std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size() && hex_digit(text[i + 1]) >= 0 &&
               hex_digit(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(hex_digit(text[i + 1]) * 16 + hex_digit(text[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void split_target(std::string_view target, std::string& path,
                  std::map<std::string, std::string>& query) {
  std::size_t mark = target.find('?');
  path = url_decode(target.substr(0, mark));
  if (mark == std::string_view::npos) return;
  std::string_view rest = target.substr(mark + 1);
  while (!rest.empty()) {
    std::size_t amp = rest.find('&');
    std::string_view pair = rest.substr(0, amp);
    std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (!pair.empty()) query[url_decode(pair)] = "";
    } else {
      query[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    rest.remove_prefix(amp + 1);
  }
}

RequestParser::State RequestParser::fail(std::string message) {
  error_ = std::move(message);
  state_ = State::bad;
  return state_;
}

RequestParser::State RequestParser::feed(std::string_view bytes) {
  if (state_ != State::need_more) return state_;
  buffer_.append(bytes.data(), bytes.size());
  if (!head_done_) {
    std::size_t head_end = buffer_.find("\r\n\r\n");
    std::size_t sep = 4;
    if (head_end == std::string::npos) {
      // Tolerate bare-LF clients.
      head_end = buffer_.find("\n\n");
      sep = 2;
    }
    if (head_end == std::string::npos) {
      if (buffer_.size() > kMaxHeadBytes) return fail("request head exceeds 16 KiB");
      return State::need_more;
    }
    if (head_end > kMaxHeadBytes) return fail("request head exceeds 16 KiB");
    State parsed = parse_head(std::string_view(buffer_).substr(0, head_end));
    if (parsed == State::bad) return parsed;
    buffer_.erase(0, head_end + sep);
    head_done_ = true;
  }
  return check_body();
}

RequestParser::State RequestParser::parse_head(std::string_view head) {
  std::size_t line_end = head.find('\n');
  std::string_view request_line = trim(head.substr(0, line_end));
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1)
    return fail("malformed request line");
  request_.method = std::string(request_line.substr(0, sp1));
  request_.target = std::string(trim(request_line.substr(sp1 + 1, sp2 - sp1 - 1)));
  std::string_view version = request_line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") return fail("not an HTTP request");
  if (request_.method.empty() || request_.target.empty() || request_.target[0] != '/')
    return fail("malformed request target");
  split_target(request_.target, request_.path, request_.query);

  std::string_view rest = line_end == std::string_view::npos ? std::string_view{}
                                                             : head.substr(line_end + 1);
  while (!rest.empty()) {
    std::size_t nl = rest.find('\n');
    std::string_view line = trim(rest.substr(0, nl));
    rest = nl == std::string_view::npos ? std::string_view{} : rest.substr(nl + 1);
    if (line.empty()) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return fail("malformed header line");
    request_.headers[to_lower(trim(line.substr(0, colon)))] =
        std::string(trim(line.substr(colon + 1)));
  }

  if (request_.headers.count("transfer-encoding") != 0)
    return fail("chunked request bodies are not supported");
  auto length = request_.headers.find("content-length");
  if (length != request_.headers.end()) {
    std::size_t value = 0;
    auto text = length->second;
    auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size())
      return fail("malformed Content-Length");
    if (value > kMaxBodyBytes) return fail("request body exceeds 8 MiB");
    body_needed_ = value;
  }
  return State::need_more;
}

RequestParser::State RequestParser::check_body() {
  if (buffer_.size() < body_needed_) return State::need_more;
  request_.body = buffer_.substr(0, body_needed_);
  buffer_.clear();
  state_ = State::done;
  return state_;
}

}  // namespace dnslocate::service
