// The measurement service's JSON control plane: routes parsed HTTP requests
// (service/http.h) to MeasurementService calls and shapes the answers.
//
//   POST /v1/fleets                   submit a fleet plan (202 + run id)
//   GET  /v1/fleets                   list every known run
//   GET  /v1/fleets/{id}              one run's status (+ census when done)
//   GET  /v1/fleets/{id}/verdicts     NDJSON verdict stream (chunked); the
//                                     ?from_seq=N cursor resumes a dropped
//                                     stream without replaying earlier lines
//   GET  /v1/fleets/{id}/records      full fleet-order record set as JSONL
//                                     (terminal runs only; the byte-identity
//                                     surface)
//   POST /v1/fleets/{id}/cancel       drain the run (in-flight probes finish)
//   GET  /metrics                     live Prometheus text exposition
//   GET  /healthz                     {"status":"ok", "draining":...}
//
// Errors are JSON: {"error": {"message": ..., "detail": {...}}}; a body
// that fails to parse gets the jsonio offset/line/column/context in
// `detail` so the caller can point at the offending byte.
//
// This layer never touches sockets and never blocks: everything it calls
// either returns immediately or hands back a pull-closure the server pumps
// from its event loop.
#pragma once

#include "service/http.h"
#include "service/service.h"

namespace dnslocate::service {

/// Route one request. `service` must outlive the returned response's stream
/// closure (the daemon keeps both alive for the process lifetime).
HttpResponse route_request(MeasurementService& service, const HttpRequest& request);

}  // namespace dnslocate::service
