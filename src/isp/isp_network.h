// The ISP: access router (where middlebox interception lives), border
// router (where bogons die), and the ISP's recursive resolver — plus an
// optional filtering resolver for the "Status Modified" behaviours.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "netbase/prefix.h"
#include "resolvers/public_resolver.h"
#include "resolvers/resolver_behavior.h"
#include "resolvers/server_app.h"
#include "simnet/nat.h"
#include "simnet/simulator.h"

namespace dnslocate::isp {

/// What the middlebox does with queries to one target resolver.
enum class TargetAction {
  pass,          // leave them alone
  divert,        // DNAT to the ISP resolver (transparent interception)
  divert_block,  // DNAT to a filtering resolver that errors ordinary queries
};

/// What the middlebox does with DNS-over-TLS (port 853) flows (§6).
enum class DotAction {
  pass,    // TLS passes untouched (DoT escapes the interceptor)
  divert,  // DNAT like UDP/53: strict clients fail their handshake and go
           // silent; opportunistic-profile clients are hijacked
  block,   // drop port 853 outright, forcing clients back to UDP/53
};

/// ISP-level DNS interception policy.
struct IspPolicy {
  bool middlebox_enabled = false;
  /// true: match every UDP/53 flow crossing the access router (the common
  /// transparent-proxy deployment; this is what answers bogon queries).
  /// false: match only the public resolvers listed in target_actions.
  bool intercept_all_port53 = true;
  /// Per-public-resolver overrides ("one allowed", "one intercepted",
  /// "block Quad9 but pass the rest", ...).
  std::map<resolvers::PublicResolverKind, TargetAction> target_actions;
  /// IPv6-specific per-target diversions (the rare v6 interception of
  /// §4.1.1 is always partial in the wild — never all four resolvers).
  std::map<resolvers::PublicResolverKind, TargetAction> target_actions_v6;
  /// Scoped interceptors whose proxy still answers queries to unroutable
  /// addresses (makes §3.3 succeed even when the policy lists targets).
  bool scoped_answers_bogons = false;
  TargetAction default_action = TargetAction::divert;
  bool intercept_v4 = true;
  bool intercept_v6 = false;  // §4.1.1: v6 interception is rare
  /// "the interceptor discards queries to unroutable addresses" (§3.3):
  /// if true, bogon-addressed queries are not intercepted and simply die.
  bool ignore_bogon_queries = false;
  /// Port-853 policy (only meaningful with middlebox_enabled).
  DotAction dot_action = DotAction::pass;
  bool replicate = false;
};

/// Static description of one ISP.
struct IspConfig {
  std::string name = "isp";
  std::uint32_t asn = 64500;
  /// Public space the ISP hands to customers (CPE WAN addresses).
  netbase::Prefix customer_prefix_v4 = *netbase::Prefix::parse("203.0.113.0/24");
  std::optional<netbase::Prefix> customer_prefix_v6;
  /// ISP resolver service + egress address.
  netbase::IpAddress resolver_v4 = *netbase::IpAddress::parse("198.51.100.2");
  std::optional<netbase::IpAddress> resolver_v6;
  resolvers::SoftwareProfile resolver_software = resolvers::bind9();
  /// Rcode the filtering resolver uses for divert_block targets.
  dnswire::Rcode blocking_rcode = dnswire::Rcode::REFUSED;
  IspPolicy policy;
  std::shared_ptr<const resolvers::ZoneStore> zones;  // defaults to global
};

/// Live pieces of a built ISP.
struct IspHandles {
  simnet::Device* access = nullptr;   // CPEs attach here
  simnet::Device* border = nullptr;   // towards transit; drops bogons
  simnet::Device* resolver = nullptr;
  simnet::Device* blocking_resolver = nullptr;       // only when needed
  std::shared_ptr<simnet::NatHook> middlebox;        // null when disabled
  std::shared_ptr<resolvers::DnsServerApp> resolver_app;
  std::shared_ptr<resolvers::DnsServerApp> blocking_app;
  netbase::IpAddress resolver_address_v4;
  std::optional<netbase::IpAddress> resolver_address_v6;
  std::optional<netbase::IpAddress> blocking_address_v4;
};

/// Build the ISP inside `sim` and attach its border to `transit_core`,
/// installing the return routes for the ISP's prefixes on the core.
IspHandles build_isp(simnet::Simulator& sim, const IspConfig& config,
                     simnet::Device& transit_core);

}  // namespace dnslocate::isp
