#include "isp/backbone.h"

namespace dnslocate::isp {

using resolvers::PublicResolverKind;
using resolvers::PublicResolverSpec;

BackboneHandles build_backbone(simnet::Simulator& sim, const BackboneConfig& config) {
  BackboneHandles handles;
  auto zones = config.zones ? config.zones : resolvers::ZoneStore::global_internet();

  auto& core = sim.add_device<simnet::Device>("transit-core");
  core.set_forwarding(true);
  // Interface address so transit hops appear in traceroutes.
  core.add_local_ip(*netbase::IpAddress::parse("62.115.0.1"));
  handles.core = &core;

  for (PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const PublicResolverSpec& spec = PublicResolverSpec::get(kind);
    auto& device = sim.add_device<simnet::Device>(std::string(to_string(kind)) + "-site");
    for (const auto& addr : spec.service_v4) device.add_local_ip(addr);
    for (const auto& addr : spec.service_v6) device.add_local_ip(addr);

    auto [uplink, core_port] =
        sim.connect(device, core,
                    {.latency = std::chrono::milliseconds(6), .fault_class = "transit"});
    device.set_default_route(uplink);
    for (const auto& addr : spec.service_v4)
      core.add_route(netbase::Prefix(addr, 32), core_port);
    for (const auto& addr : spec.service_v6)
      core.add_route(netbase::Prefix(addr, 128), core_port);

    auto behavior = std::make_shared<resolvers::PublicResolverBehavior>(
        kind, config.site_index, config.instance, zones);
    auto app = std::make_shared<resolvers::DnsServerApp>(behavior);
    device.bind_udp(netbase::kDnsPort, app.get());
    // All four public resolvers offer DNS over TLS.
    device.bind_udp(netbase::kDotPort, app.get());

    handles.resolver_devices[kind] = &device;
    handles.behaviors[kind] = behavior;
    handles.apps.push_back(std::move(app));
  }

  if (config.external_interceptor) {
    // An alternate resolver somewhere in transit, fed by a DNAT rule on the
    // core. Bogon queries never reach it (the ISP border dropped them), so
    // the technique correctly reports "unknown" for this deployment.
    handles.external_alt_address = *netbase::IpAddress::parse("66.77.88.99");
    auto& alt = sim.add_device<simnet::Device>("transit-interceptor-resolver");
    alt.add_local_ip(handles.external_alt_address);
    auto [alt_uplink, core_to_alt] =
        sim.connect(alt, core,
                    {.latency = std::chrono::milliseconds(3), .fault_class = "transit"});
    alt.set_default_route(alt_uplink);
    core.add_route(netbase::Prefix(handles.external_alt_address, 32), core_to_alt);
    handles.external_alt_resolver = &alt;

    resolvers::ResolverConfig alt_config;
    alt_config.software = resolvers::powerdns("4.3.1");
    alt_config.egress_v4 = handles.external_alt_address;
    alt_config.zones = zones;
    auto app = std::make_shared<resolvers::DnsServerApp>(
        std::make_shared<resolvers::ResolverBehavior>(alt_config));
    alt.bind_udp(netbase::kDnsPort, app.get());
    alt.bind_udp(netbase::kDotPort, app.get());
    handles.apps.push_back(std::move(app));

    auto interceptor = std::make_shared<simnet::NatHook>();
    simnet::DnatRule rule;
    rule.match_dport = netbase::kDnsPort;
    rule.new_dst_v4 = handles.external_alt_address;
    rule.exempt_dsts.push_back(handles.external_alt_address);
    interceptor->add_dnat_rule(rule);
    core.add_hook(interceptor);
    handles.external_interceptor = interceptor;
  }

  return handles;
}

}  // namespace dnslocate::isp
