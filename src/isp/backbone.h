// The simulated Internet core: a transit router, the four public-resolver
// anycast deployments, and (optionally) an interceptor *beyond* the client's
// ISP — the case §3.3 can only label "unknown".
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "resolvers/public_resolver.h"
#include "resolvers/server_app.h"
#include "simnet/nat.h"
#include "simnet/simulator.h"

namespace dnslocate::isp {

struct BackboneConfig {
  /// Anycast site the probe's region maps to (index into anycast_sites()).
  std::size_t site_index = 0;
  /// Server instance within the site (varies Quad9/OpenDNS strings).
  unsigned instance = 0;
  /// Install a transit-level interceptor diverting all UDP/53 to an
  /// alternate resolver outside the client's AS.
  bool external_interceptor = false;
  std::shared_ptr<const resolvers::ZoneStore> zones;  // defaults to global
};

struct BackboneHandles {
  simnet::Device* core = nullptr;
  std::map<resolvers::PublicResolverKind, simnet::Device*> resolver_devices;
  std::map<resolvers::PublicResolverKind, std::shared_ptr<resolvers::PublicResolverBehavior>>
      behaviors;
  std::vector<std::shared_ptr<resolvers::DnsServerApp>> apps;  // keep-alive
  std::shared_ptr<simnet::NatHook> external_interceptor;       // null unless enabled
  simnet::Device* external_alt_resolver = nullptr;
  netbase::IpAddress external_alt_address;
};

/// Build the core and the four public resolver services.
BackboneHandles build_backbone(simnet::Simulator& sim, const BackboneConfig& config);

}  // namespace dnslocate::isp
