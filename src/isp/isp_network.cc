#include "isp/isp_network.h"

namespace dnslocate::isp {
namespace {

using resolvers::PublicResolverKind;
using resolvers::PublicResolverSpec;

/// The filtering resolver lives next to the main one at address+1.
netbase::IpAddress offset_address(const netbase::IpAddress& addr, std::uint32_t offset) {
  if (addr.is_v4()) return netbase::Ipv4Address(addr.v4().value() + offset);
  auto bytes = addr.v6().bytes();
  bytes[15] = static_cast<std::uint8_t>(bytes[15] + offset);
  return netbase::Ipv6Address(bytes);
}

/// Collect the service addresses of one public resolver, filtered by the
/// families the policy intercepts.
void append_service_addrs(std::vector<netbase::IpAddress>& out, PublicResolverKind kind,
                          const IspPolicy& policy) {
  const PublicResolverSpec& spec = PublicResolverSpec::get(kind);
  if (policy.intercept_v4)
    for (const auto& addr : spec.service_v4) out.push_back(addr);
  if (policy.intercept_v6)
    for (const auto& addr : spec.service_v6) out.push_back(addr);
}

/// Drops every forwarded packet to the given UDP port (the "block port
/// 853" middlebox policy).
struct PortBlockHook : simnet::PacketHook {
  explicit PortBlockHook(std::uint16_t port) : blocked_port(port) {}
  simnet::HookVerdict prerouting(simnet::Simulator&, simnet::Device&, simnet::UdpPacket& packet,
                                 std::optional<simnet::PortId> in_port) override {
    if (in_port.has_value() && packet.dport == blocked_port) return simnet::HookVerdict::drop;
    return simnet::HookVerdict::accept;
  }
  std::uint16_t blocked_port;
};

}  // namespace

IspHandles build_isp(simnet::Simulator& sim, const IspConfig& config,
                     simnet::Device& transit_core) {
  IspHandles handles;
  auto zones = config.zones ? config.zones : resolvers::ZoneStore::global_internet();

  auto& access = sim.add_device<simnet::Device>(config.name + "-access");
  auto& border = sim.add_device<simnet::Device>(config.name + "-border");
  access.set_forwarding(true);
  border.set_forwarding(true);
  // Router interface addresses (x.y.0.1 / x.y.0.2) let the routers source
  // ICMP Time Exceeded errors for the traceroute-style prober.
  access.add_local_ip(offset_address(config.customer_prefix_v4.address(), 1));
  border.add_local_ip(offset_address(config.customer_prefix_v4.address(), 2));
  // Bogon destinations have no route beyond the ISP; the border enforces it
  // (this is the ground truth behind the §3.3 inference).
  border.set_drop_bogon_destinations(true);
  handles.access = &access;
  handles.border = &border;

  auto [access_to_border, border_to_access] =
      sim.connect(access, border,
                  {.latency = std::chrono::milliseconds(2), .fault_class = "isp"});
  auto [border_to_core, core_to_border] =
      sim.connect(border, transit_core,
                  {.latency = std::chrono::milliseconds(8), .fault_class = "transit"});

  // --- ISP resolver ---
  auto& resolver = sim.add_device<simnet::Device>(config.name + "-resolver");
  resolver.add_local_ip(config.resolver_v4);
  if (config.resolver_v6) resolver.add_local_ip(*config.resolver_v6);
  auto [resolver_uplink, access_to_resolver] =
      sim.connect(resolver, access,
                  {.latency = std::chrono::milliseconds(1), .fault_class = "isp"});
  resolver.set_default_route(resolver_uplink);
  handles.resolver = &resolver;
  handles.resolver_address_v4 = config.resolver_v4;
  handles.resolver_address_v6 = config.resolver_v6;

  resolvers::ResolverConfig resolver_config;
  resolver_config.software = config.resolver_software;
  resolver_config.egress_v4 = config.resolver_v4;
  resolver_config.egress_v6 = config.resolver_v6;
  resolver_config.zones = zones;
  handles.resolver_app = std::make_shared<resolvers::DnsServerApp>(
      std::make_shared<resolvers::ResolverBehavior>(resolver_config));
  resolver.bind_udp(netbase::kDnsPort, handles.resolver_app.get());
  resolver.bind_udp(netbase::kDotPort, handles.resolver_app.get());

  // --- optional filtering resolver (divert_block targets) ---
  bool needs_blocking = false;
  for (const auto& [kind, action] : config.policy.target_actions)
    if (action == TargetAction::divert_block) needs_blocking = true;
  if (config.policy.middlebox_enabled && config.policy.intercept_all_port53 &&
      config.policy.default_action == TargetAction::divert_block)
    needs_blocking = true;

  netbase::IpAddress blocking_v4 = offset_address(config.resolver_v4, 1);
  if (needs_blocking) {
    auto& blocker = sim.add_device<simnet::Device>(config.name + "-filter");
    blocker.add_local_ip(blocking_v4);
    auto [blocker_uplink, access_to_blocker] =
        sim.connect(blocker, access,
                    {.latency = std::chrono::milliseconds(1), .fault_class = "isp"});
    blocker.set_default_route(blocker_uplink);
    handles.blocking_resolver = &blocker;
    handles.blocking_address_v4 = blocking_v4;

    resolvers::ResolverConfig blocking_config;
    blocking_config.software =
        resolvers::chaos_refuser(config.name + "-filter", dnswire::Rcode::NOTIMP);
    blocking_config.egress_v4 = blocking_v4;
    blocking_config.zones = zones;
    blocking_config.block_all_rcode = config.blocking_rcode;
    handles.blocking_app = std::make_shared<resolvers::DnsServerApp>(
        std::make_shared<resolvers::ResolverBehavior>(blocking_config));
    blocker.bind_udp(netbase::kDnsPort, handles.blocking_app.get());

    access.add_route(netbase::Prefix(blocking_v4, 32), access_to_blocker);
    border.add_route(netbase::Prefix(blocking_v4, 32), border_to_access);
    transit_core.add_route(netbase::Prefix(blocking_v4, 32), core_to_border);
  }

  // --- routing ---
  access.add_route(netbase::Prefix(config.resolver_v4, 32), access_to_resolver);
  if (config.resolver_v6)
    access.add_route(netbase::Prefix(*config.resolver_v6, 128), access_to_resolver);
  access.set_default_route(access_to_border);

  border.add_route(config.customer_prefix_v4, border_to_access);
  if (config.customer_prefix_v6) border.add_route(*config.customer_prefix_v6, border_to_access);
  border.add_route(netbase::Prefix(config.resolver_v4, 32), border_to_access);
  if (config.resolver_v6)
    border.add_route(netbase::Prefix(*config.resolver_v6, 128), border_to_access);
  border.set_default_route(border_to_core);

  transit_core.add_route(config.customer_prefix_v4, core_to_border);
  if (config.customer_prefix_v6)
    transit_core.add_route(*config.customer_prefix_v6, core_to_border);
  transit_core.add_route(netbase::Prefix(config.resolver_v4, 32), core_to_border);
  if (config.resolver_v6)
    transit_core.add_route(netbase::Prefix(*config.resolver_v6, 128), core_to_border);

  // --- middlebox interception ---
  if (config.policy.middlebox_enabled) {
    auto middlebox = std::make_shared<simnet::NatHook>();
    handles.middlebox = middlebox;
    const IspPolicy& policy = config.policy;

    auto make_rule = [&](TargetAction action, netbase::IpFamily family) {
      simnet::DnatRule rule;
      rule.match_dport = netbase::kDnsPort;
      rule.family = family;
      rule.replicate = policy.replicate;
      rule.exempt_bogon_dsts = policy.ignore_bogon_queries;
      if (family == netbase::IpFamily::v4) {
        rule.new_dst_v4 =
            action == TargetAction::divert_block ? blocking_v4 : config.resolver_v4;
      } else if (config.resolver_v6 && action != TargetAction::divert_block) {
        // v6 diversion needs a v6 resolver; blocking is modelled v4-only.
        rule.new_dst_v6 = *config.resolver_v6;
      }
      return rule;
    };

    auto add_target_rules = [&](const std::map<resolvers::PublicResolverKind, TargetAction>&
                                    actions,
                                netbase::IpFamily family) {
      for (const auto& [kind, action] : actions) {
        if (action == TargetAction::pass) continue;
        simnet::DnatRule rule = make_rule(action, family);
        const PublicResolverSpec& spec = PublicResolverSpec::get(kind);
        for (const auto& addr : spec.service_addrs(family)) rule.match_dsts.push_back(addr);
        if (!rule.match_dsts.empty()) middlebox->add_dnat_rule(rule);
      }
    };

    // Specific per-target rules first (rule order is match order).
    if (policy.intercept_v4) add_target_rules(policy.target_actions, netbase::IpFamily::v4);
    add_target_rules(policy.target_actions_v6, netbase::IpFamily::v6);

    // General catch-all rule.
    if (policy.intercept_all_port53 && policy.default_action != TargetAction::pass) {
      for (netbase::IpFamily family : {netbase::IpFamily::v4, netbase::IpFamily::v6}) {
        if (family == netbase::IpFamily::v4 && !policy.intercept_v4) continue;
        if (family == netbase::IpFamily::v6 && !policy.intercept_v6) continue;
        simnet::DnatRule rule = make_rule(policy.default_action, family);
        rule.exempt_dsts.push_back(config.resolver_v4);
        if (config.resolver_v6) rule.exempt_dsts.push_back(*config.resolver_v6);
        if (needs_blocking) rule.exempt_dsts.push_back(blocking_v4);
        for (const auto& [kind, action] : policy.target_actions)
          if (action == TargetAction::pass) append_service_addrs(rule.exempt_dsts, kind, policy);
        middlebox->add_dnat_rule(rule);
      }
    } else if (policy.scoped_answers_bogons) {
      // The proxy behind a scoped policy still answers whatever reaches it,
      // including bogon-addressed queries.
      simnet::DnatRule rule = make_rule(TargetAction::divert, netbase::IpFamily::v4);
      rule.match_bogons_only = true;
      middlebox->add_dnat_rule(rule);
    }

    // Port-853 policy.
    if (policy.dot_action == DotAction::divert) {
      simnet::DnatRule dot_rule = make_rule(TargetAction::divert, netbase::IpFamily::v4);
      dot_rule.match_dport = netbase::kDotPort;
      dot_rule.exempt_dsts.push_back(config.resolver_v4);
      middlebox->add_dnat_rule(dot_rule);
    } else if (policy.dot_action == DotAction::block) {
      access.add_hook(std::make_shared<PortBlockHook>(netbase::kDotPort));
    }

    access.add_hook(middlebox);
  }

  return handles;
}

}  // namespace dnslocate::isp
