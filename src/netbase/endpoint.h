// Transport endpoint: (IP address, UDP/TCP port).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ip_address.h"

namespace dnslocate::netbase {

/// The well-known DNS port.
inline constexpr std::uint16_t kDnsPort = 53;

/// DNS over TLS (RFC 7858).
inline constexpr std::uint16_t kDotPort = 853;

/// An (address, port) pair. Formats as "1.2.3.4:53" / "[2001:db8::1]:53".
struct Endpoint {
  IpAddress address;
  std::uint16_t port = 0;

  Endpoint() = default;
  Endpoint(IpAddress addr, std::uint16_t p) : address(std::move(addr)), port(p) {}

  /// Parse "addr:port" (v4) or "[addr]:port" (v6).
  static std::optional<Endpoint> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

}  // namespace dnslocate::netbase

template <>
struct std::hash<dnslocate::netbase::Endpoint> {
  std::size_t operator()(const dnslocate::netbase::Endpoint& e) const noexcept {
    std::size_t h = std::hash<dnslocate::netbase::IpAddress>{}(e.address);
    return h ^ (static_cast<std::size_t>(e.port) + 0x9e3779b9u + (h << 6) + (h >> 2));
  }
};
