#include "netbase/arena.h"

#include <new>

namespace dnslocate::netbase {
namespace {

/// splitmix64: the same mixer simnet::Rng uses for seeding, reproduced here
/// so netbase stays dependency-free. Drives only the poison byte stream.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ByteArena::ByteArena(std::uint64_t seed, bool poison)
    : seed_(seed), poison_(poison), poison_state_(seed) {}

ByteArena::~ByteArena() { trim(); }

std::size_t ByteArena::class_of(std::size_t bytes) {
  std::size_t capacity = kMinBlock;
  std::size_t index = 0;
  while (capacity < bytes) {
    capacity <<= 1;
    ++index;
  }
  return index;  // callers guarantee bytes <= kMaxBlock
}

std::size_t ByteArena::block_capacity(std::size_t bytes) {
  if (bytes > kMaxBlock) return bytes;
  return kMinBlock << class_of(bytes);
}

void* ByteArena::acquire(std::size_t bytes) {
  if (bytes > kMaxBlock) {
    ++stats_.oversize;
    ++stats_.fresh;
    return ::operator new(bytes);
  }
  std::size_t index = class_of(bytes);
  std::vector<void*>& list = free_lists_[index];
  if (!list.empty()) {
    void* block = list.back();
    list.pop_back();
    ++stats_.reused;
    --stats_.parked;
    stats_.parked_bytes -= kMinBlock << index;
    return block;
  }
  ++stats_.fresh;
  return ::operator new(kMinBlock << index);
}

void ByteArena::release(void* block, std::size_t bytes) noexcept {
  if (block == nullptr) return;
  if (bytes > kMaxBlock) {
    ::operator delete(block);
    return;
  }
  std::size_t index = class_of(bytes);
  std::vector<void*>& list = free_lists_[index];
  if (list.size() >= kMaxParkedPerClass) {
    ::operator delete(block);
    return;
  }
  if (poison_) poison_block(block, kMinBlock << index);
  list.push_back(block);
  ++stats_.released;
  ++stats_.parked;
  stats_.parked_bytes += kMinBlock << index;
}

void ByteArena::poison_block(void* block, std::size_t capacity) noexcept {
  auto* bytes = static_cast<std::uint8_t*>(block);
  std::size_t offset = 0;
  while (offset < capacity) {
    std::uint64_t word = splitmix64(poison_state_);
    for (std::size_t i = 0; i < 8 && offset < capacity; ++i, ++offset)
      bytes[offset] = static_cast<std::uint8_t>(word >> (i * 8));
  }
}

void ByteArena::trim() noexcept {
  for (std::vector<void*>& list : free_lists_) {
    for (void* block : list) ::operator delete(block);
    list.clear();
  }
  stats_.parked = 0;
  stats_.parked_bytes = 0;
}

namespace {

/// The installed arena for this thread (null = use the shared default).
thread_local ByteArena* t_arena = nullptr;

}  // namespace

ByteArena& this_thread_arena() {
  if (t_arena != nullptr) return *t_arena;
  // Leaked on purpose: buffers owned by objects with static storage release
  // during shutdown, after thread_local destructors have already run.
  thread_local ByteArena* fallback = new ByteArena();
  return *fallback;
}

ScopedArena::ScopedArena(ByteArena& arena) : previous_(t_arena) { t_arena = &arena; }

ScopedArena::~ScopedArena() { t_arena = previous_; }

}  // namespace dnslocate::netbase
