#include "netbase/ip_address.h"

namespace dnslocate::netbase {

std::string_view to_string(IpFamily family) {
  return family == IpFamily::v4 ? "v4" : "v6";
}

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (auto v4 = Ipv4Address::parse(text)) return IpAddress(*v4);
  if (auto v6 = Ipv6Address::parse(text)) return IpAddress(*v6);
  return std::nullopt;
}

std::string IpAddress::to_string() const {
  return is_v4() ? v4().to_string() : v6().to_string();
}

bool IpAddress::is_bogon() const { return is_v4() ? v4().is_bogon() : v6().is_bogon(); }

bool IpAddress::is_loopback() const { return is_v4() ? v4().is_loopback() : v6().is_loopback(); }

bool IpAddress::is_unspecified() const {
  return is_v4() ? v4().is_unspecified() : v6().is_unspecified();
}

}  // namespace dnslocate::netbase
