// Pool allocation for the per-packet hot path.
//
// Every simulated packet carries a payload buffer and every DNS encode
// produces one; at fleet scale those vectors dominate the allocator
// profile. ByteArena recycles byte blocks through size-class free lists so
// steady-state packet traffic performs no heap allocation at all, and
// PoolAllocator adapts the arena to std::vector so existing buffer code
// keeps its shape (see ByteBuffer).
//
// Arenas are strictly thread-local: each fleet shard worker owns one
// (installed with ScopedArena), so acquire/release never synchronize.
// Blocks are plain ::operator new memory and may outlive the arena that
// handed them out — a buffer released on another thread simply parks in
// that thread's free lists. Pool reuse is content-independent, so recycling
// can never perturb a deterministic simulation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnslocate::netbase {

/// Size-class pool of byte blocks with LIFO free lists.
class ByteArena {
 public:
  /// Allocation counters (advisory: cross-thread releases land in the
  /// releasing thread's arena, so `live` can go negative there in spirit —
  /// it is tracked as acquire minus release on *this* arena).
  struct Stats {
    std::uint64_t fresh = 0;     // served by ::operator new
    std::uint64_t reused = 0;    // served from a free list
    std::uint64_t released = 0;  // returned to a free list
    std::uint64_t oversize = 0;  // beyond the largest class: heap passthrough
    std::uint64_t parked = 0;    // blocks currently in free lists
    std::uint64_t parked_bytes = 0;
  };

  /// `seed` drives the poison byte stream stamped over released blocks when
  /// `poison` is on (tests use it to prove released memory is never read);
  /// sharded fleet workers derive it from the fleet seed + shard index so
  /// shard-local scratch stays reproducible. Poisoning is off on the hot
  /// path — it costs a memset per release.
  explicit ByteArena(std::uint64_t seed = 0, bool poison = false);
  ~ByteArena();

  ByteArena(const ByteArena&) = delete;
  ByteArena& operator=(const ByteArena&) = delete;

  /// A usable block of at least `bytes` bytes (never null; zero-size
  /// requests get the smallest class). Throws std::bad_alloc on exhaustion.
  void* acquire(std::size_t bytes);
  /// Return a block obtained from acquire(bytes) on any arena.
  void release(void* block, std::size_t bytes) noexcept;

  /// The capacity actually backing a request of `bytes` (its size class),
  /// or `bytes` itself beyond the largest class. Exposed for tests.
  static std::size_t block_capacity(std::size_t bytes);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Release every parked block back to the heap (free lists stay usable).
  void trim() noexcept;

 private:
  // 64B..4KB in powers of two covers every DNS payload (EDNS advertises
  // 1232 here); larger requests pass through to the heap.
  static constexpr std::size_t kClassCount = 7;
  static constexpr std::size_t kMinBlock = 64;
  static constexpr std::size_t kMaxBlock = kMinBlock << (kClassCount - 1);
  /// Per-class cap on parked blocks; overflow goes back to the heap so an
  /// allocation burst cannot pin memory forever.
  static constexpr std::size_t kMaxParkedPerClass = 4096;

  static std::size_t class_of(std::size_t bytes);
  void poison_block(void* block, std::size_t capacity) noexcept;

  std::uint64_t seed_;
  bool poison_;
  std::uint64_t poison_state_;
  std::array<std::vector<void*>, kClassCount> free_lists_;
  Stats stats_;
};

/// The calling thread's arena. Worker threads that want a dedicated arena
/// install one with ScopedArena; everything else shares a lazily created
/// per-thread default. The default is intentionally leaked at thread exit
/// so buffers owned by statics can still release during shutdown.
ByteArena& this_thread_arena();

/// Install `arena` as the calling thread's arena for the current scope.
class ScopedArena {
 public:
  explicit ScopedArena(ByteArena& arena);
  ~ScopedArena();

  ScopedArena(const ScopedArena&) = delete;
  ScopedArena& operator=(const ScopedArena&) = delete;

 private:
  ByteArena* previous_;
};

/// RAII ownership of one arena block (the direct-use face of the pool;
/// PoolAllocator is the std-container face).
class ArenaBuffer {
 public:
  ArenaBuffer() = default;
  ArenaBuffer(ByteArena& arena, std::size_t bytes)
      : arena_(&arena), data_(arena.acquire(bytes)), size_(bytes) {}
  ~ArenaBuffer() { reset(); }

  ArenaBuffer(ArenaBuffer&& other) noexcept
      : arena_(other.arena_), data_(other.data_), size_(other.size_) {
    other.arena_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      arena_ = other.arena_;
      data_ = other.data_;
      size_ = other.size_;
      other.arena_ = nullptr;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  [[nodiscard]] std::uint8_t* data() { return static_cast<std::uint8_t*>(data_); }
  [[nodiscard]] const std::uint8_t* data() const {
    return static_cast<const std::uint8_t*>(data_);
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return data_ == nullptr; }

  void reset() {
    if (data_ != nullptr) arena_->release(data_, size_);
    arena_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }

 private:
  ByteArena* arena_ = nullptr;
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Minimal std allocator over the calling thread's arena. Stateless: any
/// instance can deallocate any other instance's memory (the block just
/// parks in the releasing thread's arena).
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    return static_cast<T*>(this_thread_arena().acquire(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    this_thread_arena().release(p, n * sizeof(T));
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) { return true; }
};

/// The pooled byte buffer used for packet payloads (simnet) and encoded DNS
/// messages (dnswire::WireBuffer): std::vector semantics, arena-backed
/// storage.
using ByteBuffer = std::vector<std::uint8_t, PoolAllocator<std::uint8_t>>;

}  // namespace dnslocate::netbase
