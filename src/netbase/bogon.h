// Bogon catalog: the set of address space that must never be routed on the
// public Internet. The paper's §3.3 "bogon queries" rely on this property:
// a DNS query addressed to a bogon cannot leave the client's AS, so any
// answer implies an interceptor inside the AS.
#pragma once

#include <string>
#include <vector>

#include "netbase/lpm.h"
#include "netbase/prefix.h"

namespace dnslocate::netbase {

/// One special-purpose registry entry (RFC 6890 style).
struct BogonEntry {
  Prefix prefix;
  std::string name;  // e.g. "RFC 1918 private-use"
};

/// Catalog of unroutable prefixes, preloaded with the RFC 6890 / IANA
/// special-purpose registries for both families. Additional entries (e.g.
/// team-cymru "fullbogons" — allocated-but-unannounced space) can be added.
class BogonCatalog {
 public:
  /// Catalog preloaded with the standard special-purpose registries.
  static BogonCatalog standard();

  /// Empty catalog (for tests and custom route policies).
  BogonCatalog() = default;

  void add(const Prefix& prefix, std::string name);

  /// True if `addr` falls inside any catalog entry.
  [[nodiscard]] bool is_bogon(const IpAddress& addr) const;

  /// Name of the registry entry covering `addr`, or empty string.
  [[nodiscard]] std::string classify(const IpAddress& addr) const;

  [[nodiscard]] const std::vector<BogonEntry>& entries() const { return entries_; }

  /// Well-known probe targets used by the localization technique: addresses
  /// guaranteed unroutable yet syntactically ordinary. The paper used one
  /// IPv4 and one IPv6 bogon; these are our equivalents.
  static IpAddress default_probe_v4();  // 240.9.9.9   (class E, RFC 1112 reserved)
  static IpAddress default_probe_v6();  // 100::9      (RFC 6666 discard-only)

 private:
  LpmTable<std::size_t> table_;  // prefix -> index into entries_
  std::vector<BogonEntry> entries_;
};

}  // namespace dnslocate::netbase
