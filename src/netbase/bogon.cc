#include "netbase/bogon.h"

#include <cassert>

namespace dnslocate::netbase {
namespace {

Prefix mustparse(std::string_view text) {
  auto p = Prefix::parse(text);
  assert(p.has_value());
  return *p;
}

}  // namespace

BogonCatalog BogonCatalog::standard() {
  BogonCatalog catalog;
  // IPv4 special-purpose registry (RFC 6890 and successors).
  catalog.add(mustparse("0.0.0.0/8"), "this-network (RFC 791)");
  catalog.add(mustparse("10.0.0.0/8"), "private-use (RFC 1918)");
  catalog.add(mustparse("100.64.0.0/10"), "shared CGN space (RFC 6598)");
  catalog.add(mustparse("127.0.0.0/8"), "loopback (RFC 1122)");
  catalog.add(mustparse("169.254.0.0/16"), "link-local (RFC 3927)");
  catalog.add(mustparse("172.16.0.0/12"), "private-use (RFC 1918)");
  catalog.add(mustparse("192.0.0.0/24"), "IETF protocol assignments (RFC 6890)");
  catalog.add(mustparse("192.0.2.0/24"), "TEST-NET-1 (RFC 5737)");
  catalog.add(mustparse("192.168.0.0/16"), "private-use (RFC 1918)");
  catalog.add(mustparse("198.18.0.0/15"), "benchmarking (RFC 2544)");
  catalog.add(mustparse("198.51.100.0/24"), "TEST-NET-2 (RFC 5737)");
  catalog.add(mustparse("203.0.113.0/24"), "TEST-NET-3 (RFC 5737)");
  catalog.add(mustparse("224.0.0.0/4"), "multicast (RFC 5771)");
  catalog.add(mustparse("240.0.0.0/4"), "reserved class E (RFC 1112)");
  catalog.add(mustparse("255.255.255.255/32"), "limited broadcast (RFC 919)");
  // IPv6 special-purpose registry.
  catalog.add(mustparse("::/128"), "unspecified (RFC 4291)");
  catalog.add(mustparse("::1/128"), "loopback (RFC 4291)");
  catalog.add(mustparse("::ffff:0:0/96"), "IPv4-mapped (RFC 4291)");
  catalog.add(mustparse("100::/64"), "discard-only (RFC 6666)");
  catalog.add(mustparse("2001:db8::/32"), "documentation (RFC 3849)");
  catalog.add(mustparse("fc00::/7"), "unique-local (RFC 4193)");
  catalog.add(mustparse("fe80::/10"), "link-local (RFC 4291)");
  catalog.add(mustparse("ff00::/8"), "multicast (RFC 4291)");
  return catalog;
}

void BogonCatalog::add(const Prefix& prefix, std::string name) {
  table_.insert(prefix, entries_.size());
  entries_.push_back(BogonEntry{prefix, std::move(name)});
}

bool BogonCatalog::is_bogon(const IpAddress& addr) const {
  return table_.lookup(addr) != nullptr;
}

std::string BogonCatalog::classify(const IpAddress& addr) const {
  const std::size_t* idx = table_.lookup(addr);
  return idx ? entries_[*idx].name : std::string{};
}

IpAddress BogonCatalog::default_probe_v4() { return Ipv4Address(240, 9, 9, 9); }

IpAddress BogonCatalog::default_probe_v6() {
  return *Ipv6Address::parse("100::9");
}

}  // namespace dnslocate::netbase
