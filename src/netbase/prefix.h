// CIDR prefixes over IpAddress, with containment tests and parsing.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <utility>
#include <string>
#include <string_view>

#include "netbase/ip_address.h"

namespace dnslocate::netbase {

/// A CIDR prefix such as 192.0.2.0/24 or 2001:db8::/32. The stored address
/// is always masked to the prefix length at construction.
class Prefix {
 public:
  /// Builds a prefix; host bits of `address` beyond `length` are cleared.
  /// Throws std::invalid_argument if length exceeds the family maximum.
  Prefix(IpAddress address, unsigned length);

  /// Parse "address/length". A bare address parses as a host prefix
  /// (/32 or /128).
  static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] const IpAddress& address() const { return address_; }
  [[nodiscard]] unsigned length() const { return length_; }
  [[nodiscard]] IpFamily family() const { return address_.family(); }

  /// True iff `addr` is of the same family and within this prefix.
  [[nodiscard]] bool contains(const IpAddress& addr) const;

  /// True iff `other` is fully contained in this prefix.
  [[nodiscard]] bool contains(const Prefix& other) const;

  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  IpAddress address_;
  unsigned length_ = 0;
};

/// Number of leading bits shared by two same-family addresses
/// (0..32 or 0..128). Returns 0 for mixed families.
unsigned common_prefix_length(const IpAddress& a, const IpAddress& b);

/// The two halves of `prefix` at length+1 (subnetting). Host prefixes
/// (/32, /128) cannot split.
std::optional<std::pair<Prefix, Prefix>> split(const Prefix& prefix);

/// The nth address within `prefix` (n counted from the network address).
/// Supports offsets up to 2^64-1; returns nullopt when n falls outside the
/// prefix.
std::optional<IpAddress> nth_address(const Prefix& prefix, std::uint64_t n);

/// Number of addresses in the prefix, saturated at 2^64-1 (v6 prefixes
/// shorter than /64 saturate).
std::uint64_t address_count(const Prefix& prefix);

}  // namespace dnslocate::netbase
