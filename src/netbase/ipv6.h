// IPv6 address value type.
//
// 128-bit address with RFC 4291 parsing (:: compression, embedded IPv4) and
// RFC 5952 canonical formatting, plus the classification helpers needed by
// the bogon catalog and the simulator.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ipv4.h"

namespace dnslocate::netbase {

/// An IPv6 address, stored as 16 bytes in network order.
class Ipv6Address {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  /// The unspecified address ::.
  constexpr Ipv6Address() = default;

  constexpr explicit Ipv6Address(const Bytes& bytes) : bytes_(bytes) {}

  /// Construct from eight 16-bit hextets in the order they are written,
  /// e.g. Ipv6Address::from_hextets({0x2001, 0xdb8, 0,0,0,0,0, 1}).
  static constexpr Ipv6Address from_hextets(const std::array<std::uint16_t, 8>& h) {
    Bytes b{};
    for (std::size_t i = 0; i < 8; ++i) {
      b[2 * i] = static_cast<std::uint8_t>(h[i] >> 8);
      b[2 * i + 1] = static_cast<std::uint8_t>(h[i] & 0xff);
    }
    return Ipv6Address(b);
  }

  /// Parse RFC 4291 text: full form, "::" compression, and trailing embedded
  /// IPv4 ("::ffff:192.0.2.1"). Returns nullopt on any malformation.
  static std::optional<Ipv6Address> parse(std::string_view text);

  /// An IPv4-mapped IPv6 address ::ffff:a.b.c.d.
  static Ipv6Address mapped_v4(Ipv4Address v4);

  [[nodiscard]] constexpr const Bytes& bytes() const { return bytes_; }
  [[nodiscard]] constexpr std::uint16_t hextet(std::size_t i) const {
    return static_cast<std::uint16_t>((std::uint16_t{bytes_[2 * i]} << 8) | bytes_[2 * i + 1]);
  }

  /// RFC 5952 canonical text: lowercase hex, longest zero run compressed
  /// (ties broken leftward), no compression of a single zero hextet.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr bool is_unspecified() const {
    for (auto b : bytes_)
      if (b != 0) return false;
    return true;
  }
  [[nodiscard]] bool is_loopback() const;                    // ::1
  [[nodiscard]] constexpr bool is_link_local() const {       // fe80::/10
    return bytes_[0] == 0xfe && (bytes_[1] & 0xc0) == 0x80;
  }
  [[nodiscard]] constexpr bool is_unique_local() const {     // fc00::/7
    return (bytes_[0] & 0xfe) == 0xfc;
  }
  [[nodiscard]] constexpr bool is_multicast() const { return bytes_[0] == 0xff; }
  [[nodiscard]] constexpr bool is_documentation() const {    // 2001:db8::/32
    return bytes_[0] == 0x20 && bytes_[1] == 0x01 && bytes_[2] == 0x0d && bytes_[3] == 0xb8;
  }
  [[nodiscard]] constexpr bool is_discard_only() const {     // RFC 6666 100::/64
    return bytes_[0] == 0x01 && bytes_[1] == 0x00 && bytes_[2] == 0 && bytes_[3] == 0 &&
           bytes_[4] == 0 && bytes_[5] == 0 && bytes_[6] == 0 && bytes_[7] == 0;
  }
  [[nodiscard]] bool is_v4_mapped() const;                   // ::ffff:0:0/96

  /// Union of the special-purpose ranges that must not be routed globally.
  [[nodiscard]] bool is_bogon() const;

  friend constexpr auto operator<=>(const Ipv6Address&, const Ipv6Address&) = default;

 private:
  Bytes bytes_{};
};

}  // namespace dnslocate::netbase
