#include "netbase/prefix.h"

#include <bit>
#include <charconv>
#include <stdexcept>

namespace dnslocate::netbase {
namespace {

Ipv4Address mask_v4(Ipv4Address a, unsigned length) {
  if (length == 0) return Ipv4Address{};
  std::uint32_t mask = length >= 32 ? 0xffffffffu : ~(0xffffffffu >> length);
  return Ipv4Address(a.value() & mask);
}

Ipv6Address mask_v6(const Ipv6Address& a, unsigned length) {
  Ipv6Address::Bytes b = a.bytes();
  for (std::size_t i = 0; i < 16; ++i) {
    unsigned bit_offset = static_cast<unsigned>(i) * 8;
    if (bit_offset + 8 <= length) continue;
    if (bit_offset >= length) {
      b[i] = 0;
    } else {
      unsigned keep = length - bit_offset;
      b[i] = static_cast<std::uint8_t>(b[i] & (0xffu << (8 - keep)));
    }
  }
  return Ipv6Address(b);
}

}  // namespace

Prefix::Prefix(IpAddress address, unsigned length) : length_(length) {
  unsigned max = address.is_v4() ? 32u : 128u;
  if (length > max) throw std::invalid_argument("prefix length out of range");
  address_ = address.is_v4() ? IpAddress(mask_v4(address.v4(), length))
                             : IpAddress(mask_v6(address.v6(), length));
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    auto addr = IpAddress::parse(text);
    if (!addr) return std::nullopt;
    return Prefix(*addr, addr->is_v4() ? 32u : 128u);
  }
  auto addr = IpAddress::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  unsigned length = 0;
  auto [next, ec] = std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size()) return std::nullopt;
  if (length > (addr->is_v4() ? 32u : 128u)) return std::nullopt;
  return Prefix(*addr, length);
}

bool Prefix::contains(const IpAddress& addr) const {
  if (addr.family() != family()) return false;
  return common_prefix_length(address_, addr) >= length_;
}

bool Prefix::contains(const Prefix& other) const {
  return other.family() == family() && other.length() >= length_ &&
         contains(other.address());
}

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

std::optional<std::pair<Prefix, Prefix>> split(const Prefix& prefix) {
  unsigned max = prefix.family() == IpFamily::v4 ? 32u : 128u;
  if (prefix.length() >= max) return std::nullopt;
  unsigned child_length = prefix.length() + 1;
  Prefix low(prefix.address(), child_length);
  // Set the bit at position `prefix.length()` for the high half.
  if (prefix.family() == IpFamily::v4) {
    std::uint32_t bit = 1u << (31 - prefix.length());
    Prefix high(IpAddress(Ipv4Address(prefix.address().v4().value() | bit)), child_length);
    return std::make_pair(low, high);
  }
  auto bytes = prefix.address().v6().bytes();
  bytes[prefix.length() / 8] |= static_cast<std::uint8_t>(0x80u >> (prefix.length() % 8));
  Prefix high(IpAddress(Ipv6Address(bytes)), child_length);
  return std::make_pair(low, high);
}

std::uint64_t address_count(const Prefix& prefix) {
  unsigned max = prefix.family() == IpFamily::v4 ? 32u : 128u;
  unsigned host_bits = max - prefix.length();
  if (host_bits >= 64) return ~0ull;
  return 1ull << host_bits;
}

std::optional<IpAddress> nth_address(const Prefix& prefix, std::uint64_t n) {
  unsigned max = prefix.family() == IpFamily::v4 ? 32u : 128u;
  unsigned host_bits = max - prefix.length();
  if (host_bits < 64 && n >= (1ull << host_bits)) return std::nullopt;
  if (prefix.family() == IpFamily::v4)
    return IpAddress(Ipv4Address(prefix.address().v4().value() + static_cast<std::uint32_t>(n)));
  // Add n into the low 64 bits (sufficient for any /64-or-longer, and for
  // shorter prefixes the offsets this library uses stay within 64 bits).
  auto bytes = prefix.address().v6().bytes();
  std::uint64_t low = 0;
  for (std::size_t i = 8; i < 16; ++i) low = low << 8 | bytes[i];
  low += n;  // callers stay within the prefix per the check above
  for (std::size_t i = 0; i < 8; ++i)
    bytes[15 - i] = static_cast<std::uint8_t>(low >> (8 * i));
  return IpAddress(Ipv6Address(bytes));
}

unsigned common_prefix_length(const IpAddress& a, const IpAddress& b) {
  if (a.family() != b.family()) return 0;
  if (a.is_v4()) {
    std::uint32_t diff = a.v4().value() ^ b.v4().value();
    return diff == 0 ? 32u : static_cast<unsigned>(std::countl_zero(diff));
  }
  const auto& ab = a.v6().bytes();
  const auto& bb = b.v6().bytes();
  unsigned bits = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    std::uint8_t diff = static_cast<std::uint8_t>(ab[i] ^ bb[i]);
    if (diff == 0) {
      bits += 8;
      continue;
    }
    bits += static_cast<unsigned>(std::countl_zero(diff));  // width of uint8_t: 0..8
    break;
  }
  return bits;
}

}  // namespace dnslocate::netbase
