#include "netbase/endpoint.h"

#include <charconv>

namespace dnslocate::netbase {

std::optional<Endpoint> Endpoint::parse(std::string_view text) {
  std::string_view addr_text;
  std::string_view port_text;
  if (!text.empty() && text.front() == '[') {
    std::size_t close = text.find(']');
    if (close == std::string_view::npos || close + 1 >= text.size() || text[close + 1] != ':')
      return std::nullopt;
    addr_text = text.substr(1, close - 1);
    port_text = text.substr(close + 2);
  } else {
    std::size_t colon = text.rfind(':');
    if (colon == std::string_view::npos) return std::nullopt;
    // Bare-v6-with-port is ambiguous without brackets; require brackets.
    if (text.find(':') != colon) return std::nullopt;
    addr_text = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  auto addr = IpAddress::parse(addr_text);
  if (!addr) return std::nullopt;
  unsigned port = 0;
  auto [next, ec] = std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc{} || next != port_text.data() + port_text.size() || port > 65535)
    return std::nullopt;
  return Endpoint(*addr, static_cast<std::uint16_t>(port));
}

std::string Endpoint::to_string() const {
  if (address.is_v6()) return "[" + address.to_string() + "]:" + std::to_string(port);
  return address.to_string() + ":" + std::to_string(port);
}

}  // namespace dnslocate::netbase
