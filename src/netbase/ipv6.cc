#include "netbase/ipv6.h"

#include <charconv>
#include <vector>

namespace dnslocate::netbase {
namespace {

std::optional<std::uint16_t> parse_hextet(std::string_view text) {
  if (text.empty() || text.size() > 4) return std::nullopt;
  std::uint16_t value = 0;
  auto [next, ec] = std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc{} || next != text.data() + text.size()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  if (text.size() < 2) return std::nullopt;

  // Split off an embedded IPv4 suffix if the last group contains a dot.
  std::optional<Ipv4Address> embedded_v4;
  if (auto last_colon = text.rfind(':'); last_colon != std::string_view::npos) {
    std::string_view tail = text.substr(last_colon + 1);
    if (tail.find('.') != std::string_view::npos) {
      embedded_v4 = Ipv4Address::parse(tail);
      if (!embedded_v4) return std::nullopt;
      text = text.substr(0, last_colon + 1);  // keep the ':' so "::" cases work
    }
  }

  // Locate the "::" compression marker, if any.
  std::size_t compress = text.find("::");
  if (compress != std::string_view::npos && text.find("::", compress + 1) != std::string_view::npos)
    return std::nullopt;  // at most one "::"

  auto split_groups = [](std::string_view s) -> std::optional<std::vector<std::uint16_t>> {
    std::vector<std::uint16_t> groups;
    if (s.empty()) return groups;
    std::size_t start = 0;
    while (true) {
      std::size_t colon = s.find(':', start);
      std::string_view piece =
          colon == std::string_view::npos ? s.substr(start) : s.substr(start, colon - start);
      auto h = parse_hextet(piece);
      if (!h) return std::nullopt;
      groups.push_back(*h);
      if (colon == std::string_view::npos) break;
      start = colon + 1;
    }
    return groups;
  };

  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  if (compress == std::string_view::npos) {
    // No "::". If we consumed an IPv4 tail the remaining text ends in ':';
    // strip it before splitting.
    std::string_view body = text;
    if (embedded_v4 && !body.empty() && body.back() == ':') body.remove_suffix(1);
    auto groups = split_groups(body);
    if (!groups) return std::nullopt;
    head = std::move(*groups);
  } else {
    std::string_view left = text.substr(0, compress);
    std::string_view right = text.substr(compress + 2);
    if (embedded_v4 && !right.empty() && right.back() == ':') right.remove_suffix(1);
    auto lg = split_groups(left);
    auto rg = split_groups(right);
    if (!lg || !rg) return std::nullopt;
    head = std::move(*lg);
    tail = std::move(*rg);
  }

  std::size_t v4_groups = embedded_v4 ? 2 : 0;
  std::size_t total = head.size() + tail.size() + v4_groups;
  if (compress == std::string_view::npos) {
    if (total != 8) return std::nullopt;
  } else {
    if (total >= 8) return std::nullopt;  // "::" must stand for >= 1 group
  }

  std::array<std::uint16_t, 8> hextets{};
  std::size_t idx = 0;
  for (auto h : head) hextets[idx++] = h;
  idx = 8 - tail.size() - v4_groups;
  for (auto h : tail) hextets[idx++] = h;
  if (embedded_v4) {
    std::uint32_t v = embedded_v4->value();
    hextets[6] = static_cast<std::uint16_t>(v >> 16);
    hextets[7] = static_cast<std::uint16_t>(v & 0xffff);
  }
  return from_hextets(hextets);
}

Ipv6Address Ipv6Address::mapped_v4(Ipv4Address v4) {
  std::array<std::uint16_t, 8> h{};
  h[5] = 0xffff;
  h[6] = static_cast<std::uint16_t>(v4.value() >> 16);
  h[7] = static_cast<std::uint16_t>(v4.value() & 0xffff);
  return from_hextets(h);
}

std::string Ipv6Address::to_string() const {
  // RFC 5952: find the longest run of >= 2 zero hextets (leftmost on tie).
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (hextet(static_cast<std::size_t>(i)) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && hextet(static_cast<std::size_t>(j)) == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  out.reserve(39);
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    auto [p, ec] = std::to_chars(buf, buf + sizeof buf, hextet(static_cast<std::size_t>(i)), 16);
    (void)ec;
    out.append(buf, p);
    ++i;
  }
  return out;
}

bool Ipv6Address::is_loopback() const {
  for (std::size_t i = 0; i < 15; ++i)
    if (bytes_[i] != 0) return false;
  return bytes_[15] == 1;
}

bool Ipv6Address::is_v4_mapped() const {
  for (std::size_t i = 0; i < 10; ++i)
    if (bytes_[i] != 0) return false;
  return bytes_[10] == 0xff && bytes_[11] == 0xff;
}

bool Ipv6Address::is_bogon() const {
  return is_unspecified() || is_loopback() || is_link_local() || is_unique_local() ||
         is_multicast() || is_documentation() || is_discard_only() || is_v4_mapped();
}

}  // namespace dnslocate::netbase
