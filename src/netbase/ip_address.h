// Protocol-agnostic IP address: a tagged union of Ipv4Address / Ipv6Address.
#pragma once

#include <compare>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "netbase/ipv4.h"
#include "netbase/ipv6.h"

namespace dnslocate::netbase {

enum class IpFamily { v4, v6 };

/// Text form ("v4"/"v6"), for logs and table headers.
std::string_view to_string(IpFamily family);

/// Either an Ipv4Address or an Ipv6Address. Comparable (v4 sorts before v6)
/// and hashable, so it can key maps of resolvers, NAT bindings, and routes.
class IpAddress {
 public:
  IpAddress() : storage_(Ipv4Address{}) {}
  IpAddress(Ipv4Address v4) : storage_(v4) {}            // NOLINT(google-explicit-constructor)
  IpAddress(Ipv6Address v6) : storage_(std::move(v6)) {} // NOLINT(google-explicit-constructor)

  /// Parse either family; tries IPv4 dotted-quad first, then IPv6.
  static std::optional<IpAddress> parse(std::string_view text);

  [[nodiscard]] IpFamily family() const {
    return std::holds_alternative<Ipv4Address>(storage_) ? IpFamily::v4 : IpFamily::v6;
  }
  [[nodiscard]] bool is_v4() const { return family() == IpFamily::v4; }
  [[nodiscard]] bool is_v6() const { return family() == IpFamily::v6; }

  /// Unchecked accessors; call only after checking family().
  [[nodiscard]] const Ipv4Address& v4() const { return std::get<Ipv4Address>(storage_); }
  [[nodiscard]] const Ipv6Address& v6() const { return std::get<Ipv6Address>(storage_); }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool is_bogon() const;
  [[nodiscard]] bool is_loopback() const;
  [[nodiscard]] bool is_unspecified() const;

  friend auto operator<=>(const IpAddress&, const IpAddress&) = default;

 private:
  std::variant<Ipv4Address, Ipv6Address> storage_;
};

}  // namespace dnslocate::netbase

template <>
struct std::hash<dnslocate::netbase::IpAddress> {
  std::size_t operator()(const dnslocate::netbase::IpAddress& a) const noexcept {
    if (a.is_v4()) return std::hash<std::uint32_t>{}(a.v4().value());
    std::size_t h = 0x9e3779b97f4a7c15ull;
    for (auto b : a.v6().bytes()) h = (h ^ b) * 0x100000001b3ull;
    return h;
  }
};
