// Longest-prefix-match table (binary radix trie), generic over the value
// attached to each route. Used for routing tables, bogon catalogs with
// custom entries, and resolver anycast catchments.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "netbase/prefix.h"

namespace dnslocate::netbase {

/// A binary trie keyed by address bits. Insert Prefix -> Value; lookup(addr)
/// returns the value of the longest matching prefix, or nullopt.
/// v4 and v6 live in separate tries, so families never collide.
template <typename Value>
class LpmTable {
 public:
  LpmTable() = default;

  /// Insert or replace the value for `prefix`.
  void insert(const Prefix& prefix, Value value) {
    Node* node = &root(prefix.family());
    for_each_bit(prefix.address(), prefix.length(), [&](bool bit) {
      auto& child = bit ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    });
    node->value = std::move(value);
    ++size_;
    if (node->had_value) --size_;  // replacement, not growth
    node->had_value = true;
  }

  /// Longest-prefix match. Returns a pointer into the table (stable until
  /// the next insert/clear), or nullptr if nothing matches.
  [[nodiscard]] const Value* lookup(const IpAddress& addr) const {
    const Node* node = &root(addr.family());
    const Value* best = node->had_value ? &*node->value : nullptr;
    unsigned max_bits = addr.is_v4() ? 32u : 128u;
    for_each_bit(addr, max_bits, [&](bool bit) {
      if (!node) return;
      const auto& child = bit ? node->one : node->zero;
      node = child.get();
      if (node && node->had_value) best = &*node->value;
    });
    return best;
  }

  /// Exact-match lookup of a previously inserted prefix.
  [[nodiscard]] const Value* lookup_exact(const Prefix& prefix) const {
    const Node* node = &root(prefix.family());
    for_each_bit(prefix.address(), prefix.length(), [&](bool bit) {
      if (!node) return;
      node = (bit ? node->one : node->zero).get();
    });
    return node && node->had_value ? &*node->value : nullptr;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    v4_root_ = Node{};
    v6_root_ = Node{};
    size_ = 0;
  }

 private:
  struct Node {
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
    std::optional<Value> value;
    bool had_value = false;
  };

  Node& root(IpFamily family) { return family == IpFamily::v4 ? v4_root_ : v6_root_; }
  const Node& root(IpFamily family) const {
    return family == IpFamily::v4 ? v4_root_ : v6_root_;
  }

  template <typename Fn>
  static void for_each_bit(const IpAddress& addr, unsigned bits, Fn&& fn) {
    if (addr.is_v4()) {
      std::uint32_t v = addr.v4().value();
      for (unsigned i = 0; i < bits && i < 32; ++i) fn((v >> (31 - i)) & 1u);
    } else {
      const auto& b = addr.v6().bytes();
      for (unsigned i = 0; i < bits && i < 128; ++i)
        fn((b[i / 8] >> (7 - i % 8)) & 1u);
    }
  }

  Node v4_root_;
  Node v6_root_;
  std::size_t size_ = 0;
};

}  // namespace dnslocate::netbase
