// IPv4 address value type.
//
// A small, trivially-copyable wrapper around a host-order 32-bit value with
// dotted-quad parsing/formatting and the RFC 6890 classification helpers the
// rest of the library needs (private, loopback, reserved, ...).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dnslocate::netbase {

/// An IPv4 address. Stored in host byte order; use to_bytes()/from_bytes()
/// for wire (network order) representation.
class Ipv4Address {
 public:
  /// The unspecified address 0.0.0.0.
  constexpr Ipv4Address() = default;

  /// Construct from a host-order 32-bit value, e.g. 0x7f000001 == 127.0.0.1.
  constexpr explicit Ipv4Address(std::uint32_t host_order) : value_(host_order) {}

  /// Construct from the four dotted-quad octets: Ipv4Address(127, 0, 0, 1).
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parse a dotted-quad string ("192.0.2.1"). Rejects leading zeros
  /// ("01.2.3.4"), out-of-range octets, and trailing garbage.
  static std::optional<Ipv4Address> parse(std::string_view text);

  /// Wire (network byte order) bytes.
  static constexpr Ipv4Address from_bytes(const std::array<std::uint8_t, 4>& b) {
    return Ipv4Address(b[0], b[1], b[2], b[3]);
  }
  [[nodiscard]] constexpr std::array<std::uint8_t, 4> to_bytes() const {
    return {static_cast<std::uint8_t>(value_ >> 24), static_cast<std::uint8_t>(value_ >> 16),
            static_cast<std::uint8_t>(value_ >> 8), static_cast<std::uint8_t>(value_)};
  }

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// Dotted-quad text form.
  [[nodiscard]] std::string to_string() const;

  // RFC 6890 (and friends) classification.
  [[nodiscard]] constexpr bool is_unspecified() const { return value_ == 0; }
  [[nodiscard]] constexpr bool is_loopback() const { return (value_ >> 24) == 127; }
  [[nodiscard]] constexpr bool is_private() const {  // RFC 1918
    return (value_ >> 24) == 10 || (value_ >> 20) == 0xac1 ||  // 172.16/12
           (value_ >> 16) == 0xc0a8;                           // 192.168/16
  }
  [[nodiscard]] constexpr bool is_link_local() const {  // 169.254/16
    return (value_ >> 16) == 0xa9fe;
  }
  [[nodiscard]] constexpr bool is_shared_cgn() const {  // RFC 6598 100.64/10
    return (value_ >> 22) == (0x64400000u >> 22);
  }
  [[nodiscard]] constexpr bool is_test_net() const {  // RFC 5737
    return (value_ >> 8) == 0xc00002 ||                // 192.0.2/24
           (value_ >> 8) == 0xc63364 ||                // 198.51.100/24
           (value_ >> 8) == 0xcb0071;                  // 203.0.113/24
  }
  [[nodiscard]] constexpr bool is_reserved_class_e() const {  // 240/4
    return (value_ >> 28) == 0xf;
  }
  [[nodiscard]] constexpr bool is_multicast() const {  // 224/4
    return (value_ >> 28) == 0xe;
  }
  [[nodiscard]] constexpr bool is_broadcast() const { return value_ == 0xffffffffu; }

  /// True for any address that must not appear as a source/destination on the
  /// public Internet (the "bogon" union of the above).
  [[nodiscard]] constexpr bool is_bogon() const {
    return is_unspecified() || is_loopback() || is_private() || is_link_local() ||
           is_shared_cgn() || is_test_net() || is_reserved_class_e() || is_multicast() ||
           is_broadcast() || (value_ >> 24) == 0 ||  // 0/8
           (value_ >> 8) == 0xc00000 ||              // 192.0.0/24 (IETF proto)
           (value_ >> 17) == (0xc6120000u >> 17);    // 198.18/15 (benchmarking)
  }

  friend constexpr auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace dnslocate::netbase
