// A vector with inline storage for the first N elements. DNS messages are
// overwhelmingly one question and a handful of records (§4 of the paper: the
// probe queries carry exactly one question; interception verdicts hinge on
// responses with 0–3 answers), so the record sections of dnswire::Message fit
// inline and a decoded message costs zero section allocations on the hot path.
// Spills to the heap transparently past N — no operation ever fails for size.
#pragma once

#include <algorithm>
#include <compare>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dnslocate::netbase {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be at least one element");

 public:
  using value_type = T;
  using size_type = std::size_t;
  using reference = T&;
  using const_reference = const T&;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() noexcept = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) unchecked_emplace(v);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    for (const T& v : other) unchecked_emplace(v);
  }

  SmallVector(SmallVector&& other) noexcept { steal_from(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (const T& v : other) unchecked_emplace(v);
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    destroy_all();
    release_heap();
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
    steal_from(other);
    return *this;
  }

  ~SmallVector() {
    destroy_all();
    release_heap();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// True while elements live in the inline buffer (no heap spill yet).
  [[nodiscard]] bool is_inline() const noexcept { return data_ == inline_data(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }

  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator cbegin() const noexcept { return begin(); }
  [[nodiscard]] const_iterator cend() const noexcept { return end(); }

  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& front() { return data_[0]; }
  [[nodiscard]] const T& front() const { return data_[0]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }

  void reserve(std::size_t wanted) {
    if (wanted <= capacity_) return;
    grow_to(wanted);
  }

  void clear() noexcept {
    destroy_all();
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow_to(capacity_ * 2);
    return unchecked_emplace(std::forward<Args>(args)...);
  }

  void pop_back() {
    --size_;
    std::destroy_at(data_ + size_);
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

  friend auto operator<=>(const SmallVector& a, const SmallVector& b) {
    return std::lexicographical_compare_three_way(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T* inline_data() noexcept { return reinterpret_cast<T*>(inline_storage_); }
  const T* inline_data() const noexcept {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  template <typename... Args>
  T& unchecked_emplace(Args&&... args) {
    T* slot = data_ + size_;
    std::construct_at(slot, std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void grow_to(std::size_t wanted) {
    std::size_t next = std::max(wanted, capacity_ * 2);
    T* fresh = static_cast<T*>(
        ::operator new(next * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      std::construct_at(fresh + i, std::move(data_[i]));
      std::destroy_at(data_ + i);
    }
    release_heap();
    data_ = fresh;
    capacity_ = next;
  }

  /// Move-construct from `other`, leaving it empty. Inline payloads move
  /// element-by-element; heap payloads transfer ownership of the buffer.
  void steal_from(SmallVector& other) noexcept {
    if (other.is_inline()) {
      for (std::size_t i = 0; i < other.size_; ++i) {
        std::construct_at(inline_data() + i, std::move(other.data_[i]));
        std::destroy_at(other.data_ + i);
      }
      size_ = other.size_;
      other.size_ = 0;
      return;
    }
    data_ = other.data_;
    capacity_ = other.capacity_;
    size_ = other.size_;
    other.data_ = other.inline_data();
    other.capacity_ = N;
    other.size_ = 0;
  }

  void destroy_all() noexcept {
    for (std::size_t i = 0; i < size_; ++i) std::destroy_at(data_ + i);
  }

  void release_heap() noexcept {
    if (!is_inline())
      ::operator delete(static_cast<void*>(data_), std::align_val_t{alignof(T)});
  }

  alignas(T) std::byte inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace dnslocate::netbase
