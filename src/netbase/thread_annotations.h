// Clang Thread Safety Analysis capabilities for the dnslocate tree.
//
// Engine 1 of the concurrency-discipline pass (engine 2 is dnslint's
// scope-aware lock rules, tools/dnslint/lint.h R7-R9): every mutex in an
// annotated subsystem is a DNSLOCATE_CAPABILITY wrapper, every field it
// guards carries DNSLOCATE_GUARDED_BY, and the `thread-safety` CMake preset
// compiles the whole tree with clang's -Werror=thread-safety so a read of a
// guarded field without the lock — or a lock released on one path and held
// on another — is a build error, not a review comment.
//
// The macros expand to clang attributes under clang and to nothing
// elsewhere, so GCC builds (the default preset) see plain std::mutex
// behaviour with zero overhead beyond std::unique_lock in MutexLock.
//
// Conventions enforced by dnslint rule R9 (annotation-coverage):
//   - annotated subsystems never declare a raw std::mutex / std::shared_mutex
//     member: the capability wrapper below is the only mutex member type, so
//     the analysis (and the lint rules) can see every lock in the tree;
//   - fields declared *after* a Mutex member in a class body are the mutable
//     state it guards and must carry DNSLOCATE_GUARDED_BY (std::atomic,
//     condition variables, and further Mutex members are exempt);
//   - fields declared *before* the Mutex member are immutable after
//     construction (or single-thread-owned) by convention — keep them there
//     deliberately, with a comment saying who owns them.
#pragma once

#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define DNSLOCATE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DNSLOCATE_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Type is a lockable capability ("mutex" names the capability kind).
#define DNSLOCATE_CAPABILITY(x) DNSLOCATE_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor.
#define DNSLOCATE_SCOPED_CAPABILITY DNSLOCATE_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read/written while holding the named capability.
#define DNSLOCATE_GUARDED_BY(x) DNSLOCATE_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field whose *pointee* is guarded by the named capability.
#define DNSLOCATE_PT_GUARDED_BY(x) DNSLOCATE_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability to be held on entry (and keeps it held).
#define DNSLOCATE_REQUIRES(...) \
  DNSLOCATE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (it acquires it).
#define DNSLOCATE_EXCLUDES(...) DNSLOCATE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function acquires the capability and returns holding it.
#define DNSLOCATE_ACQUIRE(...) \
  DNSLOCATE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases a held capability.
#define DNSLOCATE_RELEASE(...) \
  DNSLOCATE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function tries to acquire; first argument is the success return value.
#define DNSLOCATE_TRY_ACQUIRE(...) \
  DNSLOCATE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Assert (at runtime) that the capability is held; teaches the analysis
/// about invariants it cannot derive (e.g. single-threaded startup).
#define DNSLOCATE_ASSERT_CAPABILITY(x) \
  DNSLOCATE_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the named capability.
#define DNSLOCATE_RETURN_CAPABILITY(x) DNSLOCATE_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: skip analysis for one function. Every use needs a comment
/// explaining why the invariant holds anyway.
#define DNSLOCATE_NO_THREAD_SAFETY_ANALYSIS \
  DNSLOCATE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dnslocate::netbase {

/// std::mutex as a clang capability. The underlying std::mutex is reachable
/// through native() so std::condition_variable (which insists on
/// std::unique_lock<std::mutex>) keeps working via MutexLock::native().
class DNSLOCATE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DNSLOCATE_ACQUIRE() { impl_.lock(); }
  void unlock() DNSLOCATE_RELEASE() { impl_.unlock(); }
  bool try_lock() DNSLOCATE_TRY_ACQUIRE(true) { return impl_.try_lock(); }

  /// The wrapped mutex, for std::condition_variable plumbing only. Lock it
  /// through this class (or MutexLock), never directly.
  [[nodiscard]] std::mutex& native() { return impl_; }

 private:
  // dnslint: allow(annotation-coverage): the wrapper's own raw mutex member
  std::mutex impl_;
};

/// RAII guard over a Mutex — the tree's annotated replacement for
/// std::lock_guard / std::unique_lock on capability mutexes (the std guards
/// carry no annotations, so clang cannot see through them). Internally a
/// std::unique_lock so condition variables can wait on native(): the wait
/// unlocks and relocks underneath, which preserves the capability's
/// held-on-return contract the analysis assumes.
class DNSLOCATE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DNSLOCATE_ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~MutexLock() DNSLOCATE_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For std::condition_variable::wait only; the capability stays held
  /// across the wait as far as callers (and the analysis) are concerned.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace dnslocate::netbase
