#include "netbase/ipv4.h"

#include <charconv>

namespace dnslocate::netbase {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::array<std::uint8_t, 4> octets{};
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
    if (p == end || *p < '0' || *p > '9') return std::nullopt;
    // Reject leading zeros ("01") which some parsers treat as octal.
    if (*p == '0' && p + 1 != end && p[1] >= '0' && p[1] <= '9') return std::nullopt;
    unsigned value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
    p = next;
  }
  if (p != end) return std::nullopt;
  return Ipv4Address(octets[0], octets[1], octets[2], octets[3]);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  const auto bytes = to_bytes();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(bytes[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace dnslocate::netbase
