// Sharded fleet execution: partitioning probes across worker shards and the
// journal-segment naming that lets an interrupted sharded run resume — even
// under a different shard count.
//
// Shard assignment is a pure function of the probe id (a stable hash, not the
// fleet index), so adding or removing probes from a plan moves only the
// affected probes between shards. Nothing observable may depend on which
// shard a probe lands on: each probe owns its simulator, seeded from its own
// ScenarioConfig, so per-probe verdicts are byte-identical at any shard count
// (proved in tests/test_fleet_sharding.cc). The shard seed feeds only
// shard-local scratch state (the worker's byte arena) that cannot influence
// results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atlas/fleet.h"

namespace dnslocate::atlas {

/// Stable shard assignment for a probe: splitmix64 of the probe id, reduced
/// modulo the shard count. Independent of fleet order and fleet size.
[[nodiscard]] unsigned shard_of(std::uint32_t probe_id, unsigned shards);

/// Seed for shard-local scratch state (the worker's arena), derived from the
/// fleet fingerprint and the shard index. Deliberately *not* fed to anything
/// a probe can observe — that would break shard-count invariance.
[[nodiscard]] std::uint64_t shard_seed(std::uint64_t fleet_fingerprint, unsigned shard_index);

/// Partition fleet indices into `shards` buckets by shard_of(probe_id).
/// Within each bucket, indices keep fleet order.
[[nodiscard]] std::vector<std::vector<std::size_t>> partition_fleet(
    const std::vector<ProbeSpec>& fleet, unsigned shards);

/// Journal segment path for one shard of a sharded run:
/// "<base>.shard-<k>-of-<n>". Segments carry the same header (fingerprint,
/// fleet size) as the base journal.
[[nodiscard]] std::string shard_segment_path(const std::string& base, unsigned shard,
                                             unsigned shards);

/// Every shard segment file next to `base`, sorted by path. Matches any
/// shard count — a resumed run absorbs segments left by a run that used a
/// different number of shards.
[[nodiscard]] std::vector<std::string> find_shard_segments(const std::string& base);

}  // namespace dnslocate::atlas
