#include "atlas/fleet_json.h"

namespace dnslocate::atlas {
namespace {

using jsonio::Value;

int int_field(const Value& object, const char* key) {
  return static_cast<int>(object[key].as_int());
}

}  // namespace

FleetJsonResult fleet_from_json(std::string_view text) {
  FleetJsonResult result;
  jsonio::ParseError parse_error;
  auto document = jsonio::parse(text, &parse_error);
  if (!document || !document->is_object()) {
    result.errors.push_back(document ? "top level must be an object"
                                     : "parse error: " + jsonio::describe(parse_error));
    return result;
  }

  if ((*document)["seed"].is_number())
    result.config.seed = static_cast<std::uint64_t>((*document)["seed"].as_int());
  if ((*document)["scale"].is_number()) result.config.scale = (*document)["scale"].as_number();
  if ((*document)["ipv6_fraction"].is_number())
    result.config.ipv6_fraction = (*document)["ipv6_fraction"].as_number();
  if (result.config.scale <= 0 || result.config.scale > 1)
    result.errors.push_back("scale must be in (0, 1]");
  if (result.config.ipv6_fraction < 0 || result.config.ipv6_fraction > 1)
    result.errors.push_back("ipv6_fraction must be in [0, 1]");

  const auto& orgs = (*document)["orgs"];
  if (!orgs.is_array() || orgs.as_array().empty()) {
    result.errors.push_back("\"orgs\" must be a non-empty array");
    return result;
  }

  std::size_t index = 0;
  for (const Value& entry : orgs.as_array()) {
    ++index;
    auto where = "orgs[" + std::to_string(index - 1) + "]";
    if (!entry.is_object()) {
      result.errors.push_back(where + " is not an object");
      continue;
    }
    OrgQuota quota;
    quota.org = entry["org"].as_string();
    if (quota.org.empty()) {
      result.errors.push_back(where + " is missing \"org\"");
      continue;
    }
    quota.asn = static_cast<std::uint32_t>(entry["asn"].as_int(64500));
    quota.country = entry["country"].is_string() ? entry["country"].as_string() : "--";
    quota.probes = int_field(entry, "probes");
    quota.cpe_xb6 = int_field(entry, "cpe_xb6");
    quota.cpe_dnsmasq = int_field(entry, "cpe_dnsmasq");
    quota.cpe_pihole = int_field(entry, "cpe_pihole");
    quota.cpe_unbound = int_field(entry, "cpe_unbound");
    quota.cpe_redhat = int_field(entry, "cpe_redhat");
    if (entry["cpe_custom"].is_string()) quota.cpe_custom = entry["cpe_custom"].as_string();
    quota.isp_allfour = int_field(entry, "isp_allfour");
    quota.isp_allfour_nobogon = int_field(entry, "isp_allfour_nobogon");
    quota.isp_block = int_field(entry, "isp_block");
    quota.isp_both = int_field(entry, "isp_both");
    quota.external = int_field(entry, "external");
    quota.one_intercepted = int_field(entry, "one_intercepted");
    quota.one_allowed = int_field(entry, "one_allowed");
    quota.v6_intercept = int_field(entry, "v6_intercept");

    if (quota.probes < 0) {
      result.errors.push_back(where + ": probes must be >= 0");
      continue;
    }
    int negatives = quota.cpe_xb6 | quota.cpe_dnsmasq | quota.cpe_pihole | quota.cpe_unbound |
                    quota.cpe_redhat | quota.isp_allfour | quota.isp_allfour_nobogon |
                    quota.isp_block | quota.isp_both | quota.external |
                    quota.one_intercepted | quota.one_allowed | quota.v6_intercept;
    if (negatives < 0) {
      result.errors.push_back(where + ": quotas must be >= 0");
      continue;
    }
    result.plan.push_back(std::move(quota));
  }
  return result;
}

std::string fleet_to_json(const std::vector<OrgQuota>& plan, const FleetConfig& config) {
  jsonio::Object document;
  document["seed"] = static_cast<std::uint64_t>(config.seed);
  document["scale"] = config.scale;
  document["ipv6_fraction"] = config.ipv6_fraction;
  jsonio::Array orgs;
  for (const OrgQuota& quota : plan) {
    jsonio::Object entry;
    entry["org"] = quota.org;
    entry["asn"] = static_cast<std::uint64_t>(quota.asn);
    entry["country"] = quota.country;
    entry["probes"] = quota.probes;
    auto set_if = [&entry](const char* key, int value) {
      if (value != 0) entry[key] = value;
    };
    set_if("cpe_xb6", quota.cpe_xb6);
    set_if("cpe_dnsmasq", quota.cpe_dnsmasq);
    set_if("cpe_pihole", quota.cpe_pihole);
    set_if("cpe_unbound", quota.cpe_unbound);
    set_if("cpe_redhat", quota.cpe_redhat);
    if (quota.cpe_custom) entry["cpe_custom"] = *quota.cpe_custom;
    set_if("isp_allfour", quota.isp_allfour);
    set_if("isp_allfour_nobogon", quota.isp_allfour_nobogon);
    set_if("isp_block", quota.isp_block);
    set_if("isp_both", quota.isp_both);
    set_if("external", quota.external);
    set_if("one_intercepted", quota.one_intercepted);
    set_if("one_allowed", quota.one_allowed);
    set_if("v6_intercept", quota.v6_intercept);
    orgs.push_back(jsonio::Value(std::move(entry)));
  }
  document["orgs"] = std::move(orgs);
  return jsonio::Value(std::move(document)).dump();
}

}  // namespace dnslocate::atlas
