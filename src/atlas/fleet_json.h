// Loading fleet plans from JSON — custom measurement studies without
// recompiling. Schema (all quota fields optional, defaulting to 0):
//
//   {
//     "seed": 2021, "scale": 1.0, "ipv6_fraction": 0.39,
//     "orgs": [
//       {"org": "Example ISP", "asn": 64501, "country": "US", "probes": 500,
//        "cpe_xb6": 2, "isp_allfour": 1, "one_intercepted": 3,
//        "cpe_custom": "weird-string", ...}
//     ]
//   }
#pragma once

#include <string>
#include <vector>

#include "atlas/fleet.h"
#include "jsonio/json.h"

namespace dnslocate::atlas {

struct FleetJsonResult {
  FleetConfig config;
  std::vector<OrgQuota> plan;
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }

  /// Convenience: generate the fleet this JSON describes.
  [[nodiscard]] std::vector<ProbeSpec> generate() const {
    return generate_fleet_from_plan(plan, config);
  }
};

/// Parse a JSON fleet plan. Unknown keys are ignored; missing/invalid
/// required fields (org, probes) produce errors.
FleetJsonResult fleet_from_json(std::string_view text);

/// Serialize a plan back to JSON (round-trips through fleet_from_json).
std::string fleet_to_json(const std::vector<OrgQuota>& plan, const FleetConfig& config);

}  // namespace dnslocate::atlas
