// The simulated RIPE Atlas fleet: ~9,650 probes across countries and
// organizations, with CPE populations, ISP policies, and IPv6 availability
// calibrated so the pilot-study artefacts (Table 4, Table 5, Figure 3,
// Figure 4) reproduce the paper's shape. See DESIGN.md §2 for why this
// substitution preserves the technique's code paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atlas/scenario.h"

namespace dnslocate::atlas {

/// Who operates the probe's network.
struct OrgInfo {
  std::string org;      // "Comcast (AS7922)"
  std::uint32_t asn = 0;
  std::string country;  // ISO 3166-1 alpha-2
};

/// One probe to measure.
struct ProbeSpec {
  std::uint32_t probe_id = 0;
  OrgInfo org;
  ScenarioConfig scenario;
};

/// Fleet generation knobs.
struct FleetConfig {
  std::uint64_t seed = 2021;
  /// Scale factor on per-org probe counts (0.1 gives a ~1k-probe fleet for
  /// quick runs; interception quotas are never scaled below their full
  /// value so the interesting population survives downscaling).
  double scale = 1.0;
  /// Fraction of homes with working IPv6 (Table 4: ~3.7k of ~9.6k).
  double ipv6_fraction = 0.39;
  /// Fault profile copied into every probe's scenario (inactive by
  /// default); applies to the scenario's `fault_classes` links.
  simnet::FaultProfile faults;
  std::vector<std::string> fault_classes = {"access"};
  /// Retry policy copied into every probe's scenario (single-shot default).
  core::RetryPolicy retry;
  /// Adversaries copied into every probe's scenario (inactive by default) —
  /// the knob bench/ablation_adversary sweeps.
  AdversaryConfig adversary;
  /// Run the pipeline's active fingerprint stage on every probe
  /// (core/fingerprint.h) — how the ablation names the DPI personalities.
  bool run_fingerprint = false;
};

/// Per-organization plan row: population size plus explicit interception
/// quotas (the public form of the built-in calibration table; see
/// fleet.cc for how each column maps to scenarios).
struct OrgQuota {
  std::string org;
  std::uint32_t asn = 64500;
  std::string country = "--";
  int probes = 0;
  // CPE interceptor quotas (Table 5 string classes).
  int cpe_xb6 = 0;
  int cpe_dnsmasq = 0;
  int cpe_pihole = 0;
  int cpe_unbound = 0;
  int cpe_redhat = 0;
  std::optional<std::string> cpe_custom;  // one-off version.bind string
  // ISP middlebox quotas.
  int isp_allfour = 0;
  int isp_allfour_nobogon = 0;
  int isp_block = 0;
  int isp_both = 0;
  int external = 0;
  // Partial patterns.
  int one_intercepted = 0;
  int one_allowed = 0;
  int v6_intercept = 0;
};

/// The built-in plan calibrated to the paper's pilot study.
const std::vector<OrgQuota>& builtin_fleet_plan();

/// Generate a fleet from an arbitrary plan (custom studies; see
/// atlas/fleet_json.h for loading plans from JSON).
std::vector<ProbeSpec> generate_fleet_from_plan(const std::vector<OrgQuota>& plan,
                                                const FleetConfig& config = {});

/// Deterministically generate the built-in fleet.
std::vector<ProbeSpec> generate_fleet(const FleetConfig& config = {});

/// The anycast site a country's probes are served by.
std::size_t site_index_for_country(const std::string& country);

}  // namespace dnslocate::atlas
