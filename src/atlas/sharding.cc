#include "atlas/sharding.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

namespace dnslocate::atlas {
namespace {

/// splitmix64 finalizer — the same mixer simnet::Rng and the fleet planner
/// use for seed derivation. A plain modulo over the raw id would put probe
/// ids (which are assigned sequentially) into round-robin shards; hashing
/// first keeps the assignment stable under fleet edits instead of positional.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

unsigned shard_of(std::uint32_t probe_id, unsigned shards) {
  if (shards <= 1) return 0;
  return static_cast<unsigned>(mix(probe_id) % shards);
}

std::uint64_t shard_seed(std::uint64_t fleet_fingerprint, unsigned shard_index) {
  return mix(fleet_fingerprint ^ (0x5ca1ab1e00000000ull | shard_index));
}

std::vector<std::vector<std::size_t>> partition_fleet(const std::vector<ProbeSpec>& fleet,
                                                      unsigned shards) {
  if (shards == 0) shards = 1;
  std::vector<std::vector<std::size_t>> parts(shards);
  for (std::size_t i = 0; i < fleet.size(); ++i)
    parts[shard_of(fleet[i].probe_id, shards)].push_back(i);
  return parts;
}

std::string shard_segment_path(const std::string& base, unsigned shard, unsigned shards) {
  return base + ".shard-" + std::to_string(shard) + "-of-" + std::to_string(shards);
}

std::vector<std::string> find_shard_segments(const std::string& base) {
  namespace fs = std::filesystem;
  std::vector<std::string> segments;
  fs::path base_path(base);
  fs::path dir = base_path.parent_path();
  if (dir.empty()) dir = ".";
  std::string prefix = base_path.filename().string() + ".shard-";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) segments.push_back(entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace dnslocate::atlas
