// One probe's world: a measurement host behind a CPE, inside an ISP, wired
// to the simulated Internet core and the four public resolvers — plus the
// ground truth of where (if anywhere) interception actually happens, so
// experiments can score the technique against reality.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/pipeline.h"
#include "core/sim_transport.h"
#include "cpe/cpe_device.h"
#include "cpe/presets.h"
#include "isp/backbone.h"
#include "isp/isp_network.h"
#include "simnet/adversary.h"

namespace dnslocate::atlas {

/// Which CPE population a probe's home router belongs to.
struct CpeStyle {
  enum class Kind {
    benign_closed,
    benign_open_dnsmasq,
    benign_open_chaos_forwarder,  // §6 misclassification case
    benign_open_chaos_nxdomain,
    xb6_healthy,
    xb6_buggy,  // §5 case study
    pihole,
    intercept_dnsmasq,
    intercept_unbound,
    intercept_custom,
    intercept_to_resolver,
  };
  Kind kind = Kind::benign_closed;
  std::string version = "2.85";           // dnsmasq/pihole/unbound version
  std::optional<std::string> identity;    // unbound id.server string
  resolvers::SoftwareProfile custom;      // for intercept_custom

  /// Whether this style diverts LAN DNS (the DNAT rule exists).
  [[nodiscard]] bool intercepts() const;
  /// Whether port 53 answers on the CPE at all.
  [[nodiscard]] bool port53_open() const { return kind != Kind::benign_closed; }
};

/// Adversaries layered onto the probe's world (all inactive by default;
/// see simnet/adversary.h for the models).
struct AdversaryConfig {
  /// Spoofing injector installed on the transit core: races every answer
  /// that crosses the backbone. Queries intercepted at the CPE or ISP never
  /// reach the core, so localization of *real* interceptors is unaffected —
  /// exactly the invariant bench/ablation_adversary pins.
  std::optional<simnet::SpooferConfig> transit_spoofer;
  /// DPI personality on the ISP access router (the whole home's uplink).
  std::optional<simnet::DpiPersonality> isp_dpi;
  /// DPI personality on the CPE itself.
  std::optional<simnet::DpiPersonality> cpe_dpi;

  [[nodiscard]] bool active() const {
    return transit_spoofer.has_value() || isp_dpi.has_value() || cpe_dpi.has_value();
  }
};

/// Everything that varies between probes.
struct ScenarioConfig {
  std::uint64_t seed = 1;
  std::string isp_name = "isp";
  std::uint32_t asn = 64500;
  std::uint16_t home_index = 1;  // which customer address this home gets
  CpeStyle cpe;
  isp::IspPolicy isp_policy;
  resolvers::SoftwareProfile isp_resolver_software = resolvers::bind9("9.11.3");
  dnswire::Rcode blocking_rcode = dnswire::Rcode::REFUSED;
  bool external_interceptor = false;
  bool home_ipv6 = false;
  std::size_t site_index = 0;  // anycast site the probe's region maps to
  unsigned instance = 0;

  /// Link-fault injection (inactive by default). The profile applies to the
  /// link classes named in `fault_classes`; an empty list applies it to
  /// every link in the world.
  simnet::FaultProfile faults;
  std::vector<std::string> fault_classes = {"access"};  // the last mile
  /// Seed for the fault plan's independent stream; 0 derives it from
  /// `seed` so existing scenarios stay bit-identical.
  std::uint64_t fault_seed = 0;
  /// Retry policy stamped onto every pipeline step's QueryOptions
  /// (single-shot by default, matching the paper).
  core::RetryPolicy retry;
  /// Adversarial interceptors layered onto the world (inactive by default).
  AdversaryConfig adversary;
  /// Run the pipeline's active fingerprint stage (core/fingerprint.h).
  bool run_fingerprint = false;
};

/// What is *actually* happening, independent of what the technique infers.
struct GroundTruth {
  bool cpe_intercepts = false;
  bool isp_intercepts_v4 = false;
  bool isp_intercepts_v6 = false;
  bool external_intercepts = false;
  bool isp_answers_bogons = false;
  /// The verdict a perfect run of the paper's technique should produce.
  core::InterceptorLocation expected = core::InterceptorLocation::not_intercepted;
};

/// A fully built probe world. Owns the simulator and every device in it.
class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  [[nodiscard]] simnet::Simulator& sim() { return sim_; }
  [[nodiscard]] simnet::FaultPlan& fault_plan() { return fault_plan_; }
  [[nodiscard]] core::SimTransport& transport() { return *transport_; }
  [[nodiscard]] simnet::Device& host() { return *host_; }
  [[nodiscard]] cpe::CpeHandles& cpe_handles() { return cpe_; }
  [[nodiscard]] isp::IspHandles& isp_handles() { return isp_; }
  [[nodiscard]] isp::BackboneHandles& backbone() { return backbone_; }

  [[nodiscard]] const netbase::IpAddress& cpe_wan_v4() const { return cpe_wan_v4_; }
  [[nodiscard]] const GroundTruth& ground_truth() const { return ground_truth_; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }

  /// Installed adversary hooks (null when the knob is off) — tests read
  /// their observation counters.
  [[nodiscard]] simnet::SpooferHook* spoofer() { return spoofer_.get(); }
  [[nodiscard]] simnet::DpiHook* isp_dpi() { return isp_dpi_.get(); }
  [[nodiscard]] simnet::DpiHook* cpe_dpi() { return cpe_dpi_.get(); }

  /// Pipeline configuration matching this probe (CPE public IP filled in).
  [[nodiscard]] core::PipelineConfig pipeline_config() const;

 private:
  static GroundTruth compute_ground_truth(const ScenarioConfig& config);

  ScenarioConfig config_;
  simnet::Simulator sim_;
  simnet::FaultPlan fault_plan_;
  isp::BackboneHandles backbone_;
  isp::IspHandles isp_;
  simnet::Device* host_ = nullptr;
  cpe::CpeHandles cpe_;
  netbase::IpAddress cpe_wan_v4_;
  std::optional<netbase::IpAddress> cpe_wan_v6_;
  std::unique_ptr<core::SimTransport> transport_;
  std::shared_ptr<simnet::SpooferHook> spoofer_;
  std::shared_ptr<simnet::DpiHook> isp_dpi_;
  std::shared_ptr<simnet::DpiHook> cpe_dpi_;
  GroundTruth ground_truth_;
};

/// Deterministic per-ASN addressing helpers (shared with the fleet).
netbase::Prefix customer_prefix_v4(std::uint32_t asn);
netbase::Prefix customer_prefix_v6(std::uint32_t asn);
netbase::IpAddress customer_address_v4(std::uint32_t asn, std::uint16_t home_index);
netbase::IpAddress customer_address_v6(std::uint32_t asn, std::uint16_t home_index);
netbase::IpAddress isp_resolver_v4(std::uint32_t asn);
netbase::IpAddress isp_resolver_v6(std::uint32_t asn);

}  // namespace dnslocate::atlas
