#include "atlas/journal.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "resolvers/public_resolver.h"

namespace dnslocate::atlas {
namespace {

/// fsync the journal file, timing the call. Durability syncs are the one
/// genuinely slow operation on the checkpoint path, so their latency gets
/// its own histogram and span.
void fsync_journal(std::FILE* file) {
  obs::Span fsync_span("journal/fsync");
  if (obs::metrics_enabled()) {
    static obs::Counter& fsyncs = obs::registry().counter("journal_fsyncs_total");
    static obs::Histogram& fsync_us = obs::registry().histogram("journal_fsync_us");
    std::uint64_t start = obs::now_ns();
    ::fsync(::fileno(file));
    fsync_us.record_always((obs::now_ns() - start) / 1000);
    fsyncs.add_always(1);
    return;
  }
  ::fsync(::fileno(file));
}

using jsonio::Object;
using jsonio::Value;

constexpr std::string_view kFormatName = "dnslocate-journal";
constexpr std::uint32_t kFormatVersion = 1;

constexpr std::string_view kLocationNames[] = {"not_intercepted", "cpe", "isp", "unknown",
                                               "contested"};
constexpr std::string_view kTransparencyNames[] = {"transparent", "status_modified", "both",
                                                   "indeterminate"};

std::uint64_t fnv1a(std::string_view text, std::uint64_t h = 0xcbf29ce484222325ull) {
  for (char c : text) h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ull;
  return h;
}

std::string to_hex(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(value));
  return buffer;
}

std::optional<std::uint64_t> from_hex(const std::string& text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  return value;
}

/// Field folding for the fleet fingerprint.
struct Fold {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void operator()(std::string_view s) {
    h = fnv1a(s, h);
    h = (h ^ 0x1f) * 0x100000001b3ull;  // delimit, so ("ab","c") != ("a","bc")
  }
  void operator()(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) h = (h ^ ((v >> (8 * i)) & 0xff)) * 0x100000001b3ull;
  }
  void operator()(double d) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof d);
    std::memcpy(&bits, &d, sizeof bits);
    (*this)(bits);
  }
  void operator()(bool b) { (*this)(static_cast<std::uint64_t>(b)); }
};

Object telemetry_to_json(const core::TransportTelemetry& t) {
  Object out;
  out["answered"] = t.answered;
  out["attempts"] = t.attempts;
  out["queries"] = t.queries;
  out["retries"] = t.retries;
  out["timeouts"] = t.timeouts;
  return out;
}

core::TransportTelemetry telemetry_from_json(const Value& value) {
  core::TransportTelemetry t;
  t.answered = static_cast<std::uint64_t>(value["answered"].as_int());
  t.attempts = static_cast<std::uint64_t>(value["attempts"].as_int());
  t.queries = static_cast<std::uint64_t>(value["queries"].as_int());
  t.retries = static_cast<std::uint64_t>(value["retries"].as_int());
  t.timeouts = static_cast<std::uint64_t>(value["timeouts"].as_int());
  return t;
}

Object drops_to_json(const simnet::DropCounters& d) {
  Object out;
  out["by_hook"] = d.by_hook;
  out["fault_burst"] = d.fault_burst;
  out["fault_random"] = d.fault_random;
  out["link_loss"] = d.link_loss;
  out["no_listener"] = d.no_listener;
  out["no_route"] = d.no_route;
  out["queue_overflow"] = d.queue_overflow;
  out["ttl_expired"] = d.ttl_expired;
  return out;
}

simnet::DropCounters drops_from_json(const Value& value) {
  simnet::DropCounters d;
  d.by_hook = static_cast<std::uint64_t>(value["by_hook"].as_int());
  d.fault_burst = static_cast<std::uint64_t>(value["fault_burst"].as_int());
  d.fault_random = static_cast<std::uint64_t>(value["fault_random"].as_int());
  d.link_loss = static_cast<std::uint64_t>(value["link_loss"].as_int());
  d.no_listener = static_cast<std::uint64_t>(value["no_listener"].as_int());
  d.no_route = static_cast<std::uint64_t>(value["no_route"].as_int());
  d.queue_overflow = static_cast<std::uint64_t>(value["queue_overflow"].as_int());
  d.ttl_expired = static_cast<std::uint64_t>(value["ttl_expired"].as_int());
  return d;
}

Object faults_to_json(const simnet::FaultPlan::Counters& f) {
  Object out;
  out["burst_drops"] = f.burst_drops;
  out["duplicated"] = f.duplicated;
  out["jittered"] = f.jittered;
  out["random_drops"] = f.random_drops;
  out["reordered"] = f.reordered;
  out["truncated"] = f.truncated;
  return out;
}

simnet::FaultPlan::Counters faults_from_json(const Value& value) {
  simnet::FaultPlan::Counters f;
  f.burst_drops = static_cast<std::uint64_t>(value["burst_drops"].as_int());
  f.duplicated = static_cast<std::uint64_t>(value["duplicated"].as_int());
  f.jittered = static_cast<std::uint64_t>(value["jittered"].as_int());
  f.random_drops = static_cast<std::uint64_t>(value["random_drops"].as_int());
  f.reordered = static_cast<std::uint64_t>(value["reordered"].as_int());
  f.truncated = static_cast<std::uint64_t>(value["truncated"].as_int());
  return f;
}

std::optional<core::InterceptorLocation> location_from(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kLocationNames); ++i)
    if (kLocationNames[i] == name) return static_cast<core::InterceptorLocation>(i);
  return std::nullopt;
}

Value header_to_json(const JournalHeader& header) {
  Object out;
  out["fingerprint"] = to_hex(header.fingerprint);
  out["fleet_size"] = header.fleet_size;
  out["format"] = std::string(kFormatName);
  out["version"] = static_cast<std::uint64_t>(header.version);
  return Value(std::move(out));
}

}  // namespace

std::uint64_t fleet_fingerprint(const std::vector<ProbeSpec>& fleet) {
  Fold fold;
  fold(static_cast<std::uint64_t>(fleet.size()));
  for (const ProbeSpec& spec : fleet) {
    fold(static_cast<std::uint64_t>(spec.probe_id));
    fold(spec.org.org);
    fold(static_cast<std::uint64_t>(spec.org.asn));
    fold(spec.org.country);
    const ScenarioConfig& sc = spec.scenario;
    fold(sc.seed);
    fold(sc.isp_name);
    fold(static_cast<std::uint64_t>(sc.asn));
    fold(static_cast<std::uint64_t>(sc.home_index));
    fold(static_cast<std::uint64_t>(sc.cpe.kind));
    fold(sc.cpe.version);
    fold(sc.cpe.identity ? *sc.cpe.identity : std::string_view("\x01"));
    fold(sc.isp_policy.middlebox_enabled);
    fold(sc.isp_policy.intercept_all_port53);
    fold(static_cast<std::uint64_t>(sc.isp_policy.target_actions.size()));
    for (const auto& [kind, action] : sc.isp_policy.target_actions) {
      fold(static_cast<std::uint64_t>(kind));
      fold(static_cast<std::uint64_t>(action));
    }
    fold(static_cast<std::uint64_t>(sc.isp_policy.target_actions_v6.size()));
    for (const auto& [kind, action] : sc.isp_policy.target_actions_v6) {
      fold(static_cast<std::uint64_t>(kind));
      fold(static_cast<std::uint64_t>(action));
    }
    fold(sc.isp_policy.scoped_answers_bogons);
    fold(sc.isp_policy.intercept_v4);
    fold(sc.isp_policy.intercept_v6);
    fold(sc.isp_policy.ignore_bogon_queries);
    fold(static_cast<std::uint64_t>(sc.blocking_rcode));
    fold(sc.external_interceptor);
    fold(sc.home_ipv6);
    fold(static_cast<std::uint64_t>(sc.site_index));
    fold(static_cast<std::uint64_t>(sc.instance));
    fold(sc.faults.p_good_to_bad);
    fold(sc.faults.p_bad_to_good);
    fold(sc.faults.loss_good);
    fold(sc.faults.loss_bad);
    fold(sc.faults.reorder_rate);
    fold(sc.faults.duplicate_rate);
    fold(sc.faults.truncate_rate);
    fold(static_cast<std::uint64_t>(sc.faults.jitter_max.count()));
    fold(static_cast<std::uint64_t>(sc.fault_classes.size()));
    for (const std::string& fault_class : sc.fault_classes) fold(fault_class);
    fold(sc.fault_seed);
    fold(static_cast<std::uint64_t>(sc.retry.max_attempts));
    fold(static_cast<std::uint64_t>(sc.retry.initial_backoff.count()));
    fold(sc.retry.backoff_multiplier);
    fold(static_cast<std::uint64_t>(sc.retry.max_backoff.count()));
    fold(sc.retry.fresh_id_per_attempt);
    fold(sc.retry.rerandomize_0x20);
  }
  return fold.h;
}

Value journal_record_to_json(const ProbeRecord& record) {
  Object out;
  out["probe_id"] = static_cast<std::uint64_t>(record.probe_id);
  out["org"] = record.org.org;
  out["asn"] = static_cast<std::uint64_t>(record.org.asn);
  out["country"] = record.org.country;
  out["tested_v6"] = record.tested_v6;
  out["outcome"] = std::string(to_string(record.outcome));
  if (!record.error.empty()) out["error"] = record.error;
  out["elapsed_us"] = static_cast<std::uint64_t>(record.elapsed.count());
  out["location"] =
      std::string(kLocationNames[static_cast<std::size_t>(record.verdict.location)]);
  if (record.verdict.skipped_stages != 0)
    out["skipped_stages"] = static_cast<std::uint64_t>(record.verdict.skipped_stages);

  Object detection;
  for (const auto& summary : record.verdict.detection.per_resolver) {
    Object entry;
    entry["intercepted_v4"] = summary.intercepted_v4;
    entry["intercepted_v6"] = summary.intercepted_v6;
    entry["tested_v4"] = summary.tested_v4;
    entry["tested_v6"] = summary.tested_v6;
    entry["unreachable_v4"] = summary.unreachable_v4;
    entry["unreachable_v6"] = summary.unreachable_v6;
    detection[std::string(to_string(summary.kind))] = std::move(entry);
  }
  out["detection"] = std::move(detection);

  if (record.verdict.transparency) {
    out["transparency"] = std::string(
        kTransparencyNames[static_cast<std::size_t>(record.verdict.transparency->overall)]);
  }
  if (record.verdict.cpe_check && record.verdict.cpe_check->cpe.has_string()) {
    out["cpe_version_bind"] = *record.verdict.cpe_check->cpe.txt;
    out["cpe_is_interceptor"] = record.verdict.cpe_check->cpe_is_interceptor;
  }
  if (record.verdict.bogon) out["bogon_answered"] = record.verdict.bogon->within_isp();

  Object truth;
  truth["cpe_intercepts"] = record.truth.cpe_intercepts;
  truth["external_intercepts"] = record.truth.external_intercepts;
  truth["isp_answers_bogons"] = record.truth.isp_answers_bogons;
  truth["isp_intercepts_v4"] = record.truth.isp_intercepts_v4;
  truth["isp_intercepts_v6"] = record.truth.isp_intercepts_v6;
  truth["expected"] =
      std::string(kLocationNames[static_cast<std::size_t>(record.truth.expected)]);
  out["truth"] = std::move(truth);

  out["telemetry"] = telemetry_to_json(record.verdict.telemetry);
  out["drops"] = drops_to_json(record.drops);
  out["faults"] = faults_to_json(record.faults);
  return Value(std::move(out));
}

namespace {

// Direct-emission helpers for journal_record_dump. Keys must be appended in
// sorted order within each object to match jsonio's std::map-backed dump.
void emit_key(std::string& out, std::string_view name) {
  out.push_back('"');
  out.append(name);
  out.append("\":");
}

void emit_uint(std::string& out, std::string_view name, std::uint64_t value) {
  emit_key(out, name);
  char buffer[24];
  auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  (void)ec;
  out.append(buffer, end);
}

void emit_bool(std::string& out, std::string_view name, bool value) {
  emit_key(out, name);
  out.append(value ? "true" : "false");
}

void emit_string(std::string& out, std::string_view name, std::string_view value) {
  emit_key(out, name);
  out.append(jsonio::escape(value));
}

}  // namespace

std::string journal_record_dump(const ProbeRecord& record) {
  std::string out;
  out.reserve(1400);
  out.push_back('{');
  emit_uint(out, "asn", record.org.asn);
  out.push_back(',');
  if (record.verdict.bogon) {
    emit_bool(out, "bogon_answered", record.verdict.bogon->within_isp());
    out.push_back(',');
  }
  emit_string(out, "country", record.org.country);
  out.push_back(',');
  if (record.verdict.cpe_check && record.verdict.cpe_check->cpe.has_string()) {
    emit_bool(out, "cpe_is_interceptor", record.verdict.cpe_check->cpe_is_interceptor);
    out.push_back(',');
    emit_string(out, "cpe_version_bind", *record.verdict.cpe_check->cpe.txt);
    out.push_back(',');
  }

  out.append("\"detection\":{");
  std::array<std::pair<std::string_view, const core::ResolverInterception*>,
             std::tuple_size_v<decltype(core::DetectionReport::per_resolver)>>
      resolvers_by_name;
  std::size_t count = 0;
  for (const auto& summary : record.verdict.detection.per_resolver)
    resolvers_by_name[count++] = {to_string(summary.kind), &summary};
  std::stable_sort(resolvers_by_name.begin(),
                   resolvers_by_name.begin() + static_cast<long>(count),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  bool first_resolver = true;
  for (std::size_t i = 0; i < count; ++i) {
    // std::map semantics: duplicate display names (possible on default-
    // constructed failed records) collapse, with the last insertion winning.
    if (i + 1 < count && resolvers_by_name[i].first == resolvers_by_name[i + 1].first)
      continue;
    if (!first_resolver) out.push_back(',');
    first_resolver = false;
    emit_key(out, resolvers_by_name[i].first);
    const auto& summary = *resolvers_by_name[i].second;
    out.push_back('{');
    emit_bool(out, "intercepted_v4", summary.intercepted_v4);
    out.push_back(',');
    emit_bool(out, "intercepted_v6", summary.intercepted_v6);
    out.push_back(',');
    emit_bool(out, "tested_v4", summary.tested_v4);
    out.push_back(',');
    emit_bool(out, "tested_v6", summary.tested_v6);
    out.push_back(',');
    emit_bool(out, "unreachable_v4", summary.unreachable_v4);
    out.push_back(',');
    emit_bool(out, "unreachable_v6", summary.unreachable_v6);
    out.push_back('}');
  }
  out.append("},");

  out.append("\"drops\":{");
  emit_uint(out, "by_hook", record.drops.by_hook);
  out.push_back(',');
  emit_uint(out, "fault_burst", record.drops.fault_burst);
  out.push_back(',');
  emit_uint(out, "fault_random", record.drops.fault_random);
  out.push_back(',');
  emit_uint(out, "link_loss", record.drops.link_loss);
  out.push_back(',');
  emit_uint(out, "no_listener", record.drops.no_listener);
  out.push_back(',');
  emit_uint(out, "no_route", record.drops.no_route);
  out.push_back(',');
  emit_uint(out, "queue_overflow", record.drops.queue_overflow);
  out.push_back(',');
  emit_uint(out, "ttl_expired", record.drops.ttl_expired);
  out.append("},");

  emit_uint(out, "elapsed_us", static_cast<std::uint64_t>(record.elapsed.count()));
  out.push_back(',');
  if (!record.error.empty()) {
    emit_string(out, "error", record.error);
    out.push_back(',');
  }

  out.append("\"faults\":{");
  emit_uint(out, "burst_drops", record.faults.burst_drops);
  out.push_back(',');
  emit_uint(out, "duplicated", record.faults.duplicated);
  out.push_back(',');
  emit_uint(out, "jittered", record.faults.jittered);
  out.push_back(',');
  emit_uint(out, "random_drops", record.faults.random_drops);
  out.push_back(',');
  emit_uint(out, "reordered", record.faults.reordered);
  out.push_back(',');
  emit_uint(out, "truncated", record.faults.truncated);
  out.append("},");

  emit_string(out, "location",
              kLocationNames[static_cast<std::size_t>(record.verdict.location)]);
  out.push_back(',');
  emit_string(out, "org", record.org.org);
  out.push_back(',');
  emit_string(out, "outcome", to_string(record.outcome));
  out.push_back(',');
  emit_uint(out, "probe_id", record.probe_id);
  out.push_back(',');
  if (record.verdict.skipped_stages != 0) {
    emit_uint(out, "skipped_stages", record.verdict.skipped_stages);
    out.push_back(',');
  }

  out.append("\"telemetry\":{");
  emit_uint(out, "answered", record.verdict.telemetry.answered);
  out.push_back(',');
  emit_uint(out, "attempts", record.verdict.telemetry.attempts);
  out.push_back(',');
  emit_uint(out, "queries", record.verdict.telemetry.queries);
  out.push_back(',');
  emit_uint(out, "retries", record.verdict.telemetry.retries);
  out.push_back(',');
  emit_uint(out, "timeouts", record.verdict.telemetry.timeouts);
  out.append("},");

  emit_bool(out, "tested_v6", record.tested_v6);
  out.push_back(',');
  if (record.verdict.transparency) {
    emit_string(
        out, "transparency",
        kTransparencyNames[static_cast<std::size_t>(record.verdict.transparency->overall)]);
    out.push_back(',');
  }

  out.append("\"truth\":{");
  emit_bool(out, "cpe_intercepts", record.truth.cpe_intercepts);
  out.push_back(',');
  emit_string(out, "expected",
              kLocationNames[static_cast<std::size_t>(record.truth.expected)]);
  out.push_back(',');
  emit_bool(out, "external_intercepts", record.truth.external_intercepts);
  out.push_back(',');
  emit_bool(out, "isp_answers_bogons", record.truth.isp_answers_bogons);
  out.push_back(',');
  emit_bool(out, "isp_intercepts_v4", record.truth.isp_intercepts_v4);
  out.push_back(',');
  emit_bool(out, "isp_intercepts_v6", record.truth.isp_intercepts_v6);
  out.append("}}");
  return out;
}

std::optional<ProbeRecord> journal_record_from_json(const Value& value) {
  if (!value.is_object()) return std::nullopt;
  ProbeRecord record;
  record.probe_id = static_cast<std::uint32_t>(value["probe_id"].as_int());
  record.org.org = value["org"].as_string();
  record.org.asn = static_cast<std::uint32_t>(value["asn"].as_int());
  record.org.country = value["country"].as_string();
  record.tested_v6 = value["tested_v6"].as_bool();

  auto outcome = probe_outcome_from(value["outcome"].as_string());
  if (!outcome) return std::nullopt;
  record.outcome = *outcome;
  record.error = value["error"].as_string();
  record.elapsed = std::chrono::microseconds(value["elapsed_us"].as_int());

  auto location = location_from(value["location"].as_string());
  if (!location) return std::nullopt;
  record.verdict.location = *location;
  record.verdict.skipped_stages =
      static_cast<std::uint8_t>(value["skipped_stages"].as_int());

  const Value& detection = value["detection"];
  for (auto kind : resolvers::all_public_resolvers()) {
    const Value& entry = detection[std::string(to_string(kind))];
    auto& summary = record.verdict.detection.per_resolver[static_cast<std::size_t>(kind)];
    summary.kind = kind;
    summary.intercepted_v4 = entry["intercepted_v4"].as_bool();
    summary.intercepted_v6 = entry["intercepted_v6"].as_bool();
    summary.tested_v4 = entry["tested_v4"].as_bool();
    summary.tested_v6 = entry["tested_v6"].as_bool();
    summary.unreachable_v4 = entry["unreachable_v4"].as_bool();
    summary.unreachable_v6 = entry["unreachable_v6"].as_bool();
  }

  if (value["transparency"].is_string()) {
    const std::string& name = value["transparency"].as_string();
    for (std::size_t i = 0; i < 4; ++i) {
      if (kTransparencyNames[i] == name) {
        core::TransparencyReport report;
        report.overall = static_cast<core::TransparencyClass>(i);
        record.verdict.transparency = std::move(report);
        break;
      }
    }
  }
  if (value["cpe_version_bind"].is_string()) {
    core::CpeCheckReport check;
    check.cpe.answered = true;
    check.cpe.txt = value["cpe_version_bind"].as_string();
    check.cpe.display = *check.cpe.txt;
    check.cpe_is_interceptor = value["cpe_is_interceptor"].as_bool();
    record.verdict.cpe_check = std::move(check);
  }
  if (value["bogon_answered"].is_bool()) {
    core::BogonReport bogon;
    bogon.v4.tested = true;
    if (value["bogon_answered"].as_bool())
      bogon.v4.a_query.status = core::QueryResult::Status::answered;
    record.verdict.bogon = std::move(bogon);
  }

  const Value& truth = value["truth"];
  record.truth.cpe_intercepts = truth["cpe_intercepts"].as_bool();
  record.truth.external_intercepts = truth["external_intercepts"].as_bool();
  record.truth.isp_answers_bogons = truth["isp_answers_bogons"].as_bool();
  record.truth.isp_intercepts_v4 = truth["isp_intercepts_v4"].as_bool();
  record.truth.isp_intercepts_v6 = truth["isp_intercepts_v6"].as_bool();
  if (auto expected = location_from(truth["expected"].as_string()))
    record.truth.expected = *expected;

  record.verdict.telemetry = telemetry_from_json(value["telemetry"]);
  record.drops = drops_from_json(value["drops"]);
  record.faults = faults_from_json(value["faults"]);
  return record;
}

JournalWriter::JournalWriter(const std::string& path, const JournalHeader& header,
                             std::chrono::milliseconds sync_interval)
    : sync_interval_(sync_interval) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) return;
  std::string line = header_to_json(header).dump() + "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  sync();
}

JournalWriter::~JournalWriter() {
  netbase::MutexLock lock(mutex_);
  if (file_ != nullptr) {
    std::fflush(file_);
    fsync_journal(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

namespace {

void append_record_line(std::string& lines, const ProbeRecord& record) {
  std::string inner = journal_record_dump(record);
  lines.append("{\"crc\":");
  lines.append(jsonio::escape(to_hex(fnv1a(inner))));
  lines.append(",\"record\":");
  lines.append(inner);
  lines.append("}\n");
}

}  // namespace

void JournalWriter::append(const ProbeRecord& record) {
  append_batch({&record});
}

void JournalWriter::append_batch(const std::vector<const ProbeRecord*>& batch) {
  if (batch.empty()) return;
  obs::Span append_span("journal/append_batch");
  std::string lines;
  lines.reserve(batch.size() * 1400);
  for (const ProbeRecord* record : batch) append_record_line(lines, *record);
  netbase::MutexLock lock(mutex_);
  if (file_ == nullptr) return;
  if (obs::metrics_enabled()) {
    static obs::Counter& records = obs::registry().counter("journal_records_total");
    static obs::Counter& bytes = obs::registry().counter("journal_bytes_total");
    records.add_always(batch.size());
    bytes.add_always(lines.size());
  }
  std::fwrite(lines.data(), 1, lines.size(), file_);
  // Hand the batch to the OS right away: page cache survives a killed
  // process, so a crash of *this* program loses at most one partial line
  // beyond whatever the caller had not yet appended. The fsync below only
  // bounds loss on power failure / kernel panic, so it can run on a much
  // coarser, time-based cadence without weakening crash tolerance.
  std::fflush(file_);
  written_ += batch.size();
  auto now = std::chrono::steady_clock::now();
  if (now - last_sync_ >= sync_interval_) {
    fsync_journal(file_);
    last_sync_ = now;
  }
}

void JournalWriter::sync() {
  netbase::MutexLock lock(mutex_);
  if (file_ == nullptr) return;
  std::fflush(file_);
  fsync_journal(file_);
  last_sync_ = std::chrono::steady_clock::now();
}

bool JournalWriter::ok() const {
  netbase::MutexLock lock(mutex_);
  return file_ != nullptr;
}

std::size_t JournalWriter::written() const {
  netbase::MutexLock lock(mutex_);
  return written_;
}

JournalLoadResult parse_journal(std::string_view text) {
  JournalLoadResult result;
  if (text.empty()) {
    result.error = "empty journal";
    return result;
  }

  std::size_t line_number = 0;
  std::size_t start = 0;
  bool saw_header = false;
  while (start < text.size()) {
    std::size_t newline = text.find('\n', start);
    bool complete = newline != std::string_view::npos;
    std::string_view line =
        complete ? text.substr(start, newline - start) : text.substr(start);
    start = complete ? newline + 1 : text.size();
    ++line_number;
    if (line.empty()) continue;

    if (!complete) {
      // A crash mid-append leaves at most one partial line, always the last.
      result.warnings.push_back("line " + std::to_string(line_number) +
                                ": truncated final line dropped");
      ++result.damaged;
      break;
    }

    jsonio::ParseError parse_error;
    auto value = jsonio::parse(line, &parse_error);
    if (!saw_header) {
      saw_header = true;
      if (!value || !value->is_object() ||
          (*value)["format"].as_string() != kFormatName) {
        result.error = "line 1: not a journal header";
        return result;
      }
      if ((*value)["version"].as_int() != kFormatVersion) {
        result.error = "line 1: unsupported journal version " +
                       std::to_string((*value)["version"].as_int());
        return result;
      }
      result.header.version =
          static_cast<std::uint32_t>((*value)["version"].as_int());
      auto fingerprint = from_hex((*value)["fingerprint"].as_string());
      if (!fingerprint) {
        result.error = "line 1: bad fingerprint";
        return result;
      }
      result.header.fingerprint = *fingerprint;
      result.header.fleet_size =
          static_cast<std::uint64_t>((*value)["fleet_size"].as_int());
      continue;
    }

    if (!value || !value->is_object()) {
      result.warnings.push_back("line " + std::to_string(line_number) +
                                ": unparseable record dropped");
      ++result.damaged;
      continue;
    }
    auto crc = from_hex((*value)["crc"].as_string());
    const Value& record_json = (*value)["record"];
    if (!crc || !record_json.is_object() || fnv1a(record_json.dump()) != *crc) {
      result.warnings.push_back("line " + std::to_string(line_number) +
                                ": checksum mismatch, record dropped");
      ++result.damaged;
      continue;
    }
    auto record = journal_record_from_json(record_json);
    if (!record) {
      result.warnings.push_back("line " + std::to_string(line_number) +
                                ": malformed record dropped");
      ++result.damaged;
      continue;
    }
    result.records.push_back(std::move(*record));
  }

  if (!saw_header) result.error = "no journal header";
  return result;
}

JournalLoadResult load_journal(const std::string& path) {
  std::ifstream input(path, std::ios::binary);
  if (!input) {
    JournalLoadResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::stringstream buffer;
  buffer << input.rdbuf();
  return parse_journal(buffer.str());
}

}  // namespace dnslocate::atlas
