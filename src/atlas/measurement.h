// Running the localization pipeline over a probe fleet and collecting the
// per-probe records the report layer aggregates into the paper's artefacts.
//
// Fleet runs are *supervised*: each probe executes under a try/catch and a
// wall-clock deadline, so one bad probe records a failure instead of taking
// down the campaign, and an optional append-only journal checkpoints every
// completed probe so an interrupted run resumes without repeating work (see
// atlas/journal.h and docs/ARCHITECTURE.md, "Fleet supervision and
// checkpointing").
#pragma once

#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "atlas/fleet.h"
#include "core/cancellation.h"
#include "core/pipeline.h"

namespace dnslocate::atlas {

/// How one supervised probe execution ended.
enum class ProbeOutcome : std::uint8_t {
  ok = 0,                 // the probe ran to completion
  failed = 1,             // an exception escaped the probe (see error)
  deadline_exceeded = 2,  // the probe blew its wall-clock budget
};

std::string_view to_string(ProbeOutcome outcome);
std::optional<ProbeOutcome> probe_outcome_from(std::string_view name);

/// Which engine executes each probe's per-stage query batches.
enum class QueryEngine : std::uint8_t {
  blocking = 0,  // historical sequential loop: one blocking query at a time
  async = 1,     // batched fan-out (identical verdicts; see query_batch.h)
};

std::string_view to_string(QueryEngine engine);
std::optional<QueryEngine> query_engine_from(std::string_view name);

/// Everything measured (and known) about one probe.
struct ProbeRecord {
  std::uint32_t probe_id = 0;
  OrgInfo org;
  bool tested_v6 = false;
  core::ProbeVerdict verdict;
  GroundTruth truth;
  /// Per-cause drop tallies from the probe's simulator (world-wide, not just
  /// the measurement path) and the fault plan's injection counters.
  simnet::DropCounters drops;
  simnet::FaultPlan::Counters faults;
  /// Supervision: how the execution ended, what it threw (failed only), and
  /// how much wall clock it spent. A deadline_exceeded probe keeps whatever
  /// stages completed — its verdict is partial, never fabricated.
  ProbeOutcome outcome = ProbeOutcome::ok;
  std::string error;
  std::chrono::microseconds elapsed{0};
};

/// Fleet-level results.
struct MeasurementRun {
  std::vector<ProbeRecord> records;
  /// Probes planned but never started because the run stopped early
  /// (MeasurementOptions::max_failures). Resume from the journal to finish.
  std::size_t not_run = 0;

  [[nodiscard]] std::size_t intercepted_count() const;
  [[nodiscard]] std::size_t count_location(core::InterceptorLocation location) const;
  [[nodiscard]] std::size_t count_outcome(ProbeOutcome outcome) const;
  [[nodiscard]] bool stopped_early() const { return not_run > 0; }
};

struct MeasurementOptions {
  /// Drop bulky raw responses after classification, keeping displays and
  /// verdicts (recommended for full-fleet runs).
  bool strip_raw_responses = true;
  /// Worker threads. Probes are fully independent (each owns its
  /// simulator), so the fleet parallelizes perfectly; 0 = use the hardware
  /// concurrency, 1 = sequential. Ignored when `shards` > 1 (each shard is
  /// one worker thread).
  unsigned threads = 1;
  /// Shard the fleet across this many worker shards, one thread per shard.
  /// Probes are assigned by a stable hash of their probe id
  /// (atlas/sharding.h), each shard journals to its own segment file, and
  /// per-probe results are byte-identical at any shard count — 1 (the
  /// default, unsharded) behaves exactly like the work-stealing pool.
  /// 0 = one shard per hardware thread.
  unsigned shards = 1;
  /// Called after each probe completes (progress reporting). Invoked under
  /// a mutex when threads > 1.
  std::function<void(std::size_t done, std::size_t total)> progress;
  /// Per-probe wall-clock budget; zero = unlimited. A probe over budget is
  /// cancelled cooperatively (pipeline stage checkpoints, transport waits)
  /// and recorded as deadline_exceeded with a partial verdict.
  std::chrono::milliseconds probe_deadline{0};
  /// Stop dispatching new probes once this many have failed or exceeded
  /// their deadline (zero = never stop). The run returns cleanly with the
  /// completed records, `not_run` set, and the journal intact.
  std::size_t max_failures = 0;
  /// Run-level cancellation: once this token fires, workers stop dispatching
  /// new probes — in-flight probes finish normally and are journaled, the run
  /// returns cleanly with `not_run` covering everything never started, and
  /// the journal is fsync'd. This is the graceful-drain primitive shared by
  /// the daemon's SIGTERM path and the examples' Ctrl-C handler; a drained
  /// run resumes through resume_fleet exactly like a crashed one.
  core::CancelToken cancel;
  /// Observer for completed records: called once per probe after supervision
  /// (outcome, elapsed) is applied, in completion order. On resume, records
  /// restored from the journal are replayed through this first (fleet order,
  /// before any fresh probe runs), so a subscriber sees every record of the
  /// run exactly once. Invoked under an internal mutex when the run is
  /// concurrent; keep it cheap — it is on the fleet's critical path.
  std::function<void(const ProbeRecord&)> on_record;
  /// Append-only checkpoint journal (one checksummed JSONL record per
  /// completed probe); empty = no journal. See atlas/journal.h.
  std::string journal_path;
  /// fsync the journal at most this often (and at close). Every append
  /// still reaches the OS immediately; this only bounds power-failure loss.
  std::chrono::milliseconds journal_sync_interval = std::chrono::seconds(1);
  /// Query engine for each probe's stage batches. Both engines produce
  /// identical verdicts over the simulator (proved in
  /// tests/test_engine_equivalence.cc); async is the default everywhere.
  QueryEngine engine = QueryEngine::async;
  /// In-flight query cap for batched engines that fan out over real sockets
  /// (sockets::UdpEngine). Simulated probes deliver batches in one
  /// deterministic cascade and ignore this.
  std::size_t max_inflight = 64;
  /// Test hook: replaces run_probe as the probe executor. The supervisor
  /// still applies the try/catch, deadline token, and journaling around it.
  std::function<ProbeRecord(const ProbeSpec&, const core::CancelToken&)> runner;
};

/// Run every probe through the pipeline. Each probe lives in its own
/// deterministic simulator; results are reproducible from the fleet seed.
/// Exceptions and deadline overruns are captured per probe (ProbeRecord::
/// outcome) — they never abort the fleet.
MeasurementRun run_fleet(const std::vector<ProbeSpec>& fleet,
                         const MeasurementOptions& options = {});

/// What resume_fleet found in (and did with) the journal.
struct ResumeReport {
  /// The journal existed and its header parsed and matched the fleet.
  bool journal_matched = false;
  std::size_t reused = 0;        // ok records restored without re-running
  std::size_t rerun_failed = 0;  // journaled failed/deadline probes re-executed
  std::size_t damaged = 0;       // journal lines dropped (truncation, checksum)
  std::vector<std::string> warnings;
};

/// Resume an interrupted journaled run: validate the journal header against
/// `fleet` (fingerprint covers seed, scale, and per-probe configuration),
/// reuse every intact `ok` record, and run only what is missing — failed and
/// deadline-exceeded probes get a fresh attempt. The result is byte-identical
/// (via report::run_to_jsonl / report::html_report) to an uninterrupted run
/// of the same fleet. Damaged journal lines are salvaged around and a
/// mismatched header falls back to a full re-run; both are reported in
/// `report`. The journal at `journal_path` is rewritten (header + reused
/// records) and then extended as the remaining probes complete, so a resumed
/// run can itself be resumed.
MeasurementRun resume_fleet(const std::string& journal_path,
                            const std::vector<ProbeSpec>& fleet,
                            const MeasurementOptions& options = {},
                            ResumeReport* report = nullptr);

/// Run a single probe (used by tests and the example programs).
ProbeRecord run_probe(const ProbeSpec& spec, bool strip_raw_responses = false);

/// Run a single probe under a cancellation token: the token reaches the
/// pipeline's stage checkpoints and the transport waits.
ProbeRecord run_probe(const ProbeSpec& spec, const core::CancelToken& cancel,
                      bool strip_raw_responses = false,
                      QueryEngine engine = QueryEngine::async);

}  // namespace dnslocate::atlas
