// Running the localization pipeline over a probe fleet and collecting the
// per-probe records the report layer aggregates into the paper's artefacts.
#pragma once

#include <functional>
#include <vector>

#include "atlas/fleet.h"
#include "core/pipeline.h"

namespace dnslocate::atlas {

/// Everything measured (and known) about one probe.
struct ProbeRecord {
  std::uint32_t probe_id = 0;
  OrgInfo org;
  bool tested_v6 = false;
  core::ProbeVerdict verdict;
  GroundTruth truth;
  /// Per-cause drop tallies from the probe's simulator (world-wide, not just
  /// the measurement path) and the fault plan's injection counters.
  simnet::DropCounters drops;
  simnet::FaultPlan::Counters faults;
};

/// Fleet-level results.
struct MeasurementRun {
  std::vector<ProbeRecord> records;

  [[nodiscard]] std::size_t intercepted_count() const;
  [[nodiscard]] std::size_t count_location(core::InterceptorLocation location) const;
};

struct MeasurementOptions {
  /// Drop bulky raw responses after classification, keeping displays and
  /// verdicts (recommended for full-fleet runs).
  bool strip_raw_responses = true;
  /// Worker threads. Probes are fully independent (each owns its
  /// simulator), so the fleet parallelizes perfectly; 0 = use the hardware
  /// concurrency, 1 = sequential.
  unsigned threads = 1;
  /// Called after each probe completes (progress reporting). Invoked under
  /// a mutex when threads > 1.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Run every probe through the pipeline. Each probe lives in its own
/// deterministic simulator; results are reproducible from the fleet seed.
MeasurementRun run_fleet(const std::vector<ProbeSpec>& fleet,
                         const MeasurementOptions& options = {});

/// Run a single probe (used by tests and the example programs).
ProbeRecord run_probe(const ProbeSpec& spec, bool strip_raw_responses = false);

}  // namespace dnslocate::atlas
