#include "atlas/longitudinal.h"

namespace dnslocate::atlas {

std::vector<LongitudinalRound> run_longitudinal(Scenario& scenario, std::size_t rounds,
                                                const WorldMutator& between) {
  std::vector<LongitudinalRound> results;
  results.reserve(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    core::LocalizationPipeline pipeline(scenario.pipeline_config());
    LongitudinalRound entry;
    entry.round = round;
    entry.verdict = pipeline.run(
        static_cast<core::AsyncQueryTransport&>(scenario.transport()));
    entry.changed =
        !results.empty() && entry.verdict.location != results.back().verdict.location;
    results.push_back(std::move(entry));
    if (between && round + 1 < rounds) between(scenario, round);
  }
  return results;
}

std::vector<std::size_t> change_points(const std::vector<LongitudinalRound>& rounds) {
  std::vector<std::size_t> points;
  for (const auto& entry : rounds)
    if (entry.changed) points.push_back(entry.round);
  return points;
}

}  // namespace dnslocate::atlas
