// Crash-tolerant checkpoint journal for fleet runs.
//
// Format: JSONL. The first line is a header naming the format, version, and
// a fingerprint of the fleet being measured; every following line is one
// completed probe wrapped with an FNV-1a checksum:
//
//   {"fingerprint":"<16 hex>","probes":9650,"format":"dnslocate-journal","version":1}
//   {"crc":"<16 hex of record dump>","record":{...full probe record...}}
//
// Every append reaches the OS before it returns and the file is fsync'd
// at most once a second; the fleet runner hands completed records to the
// writer in small batches, so a crash loses at most the last batch plus
// one partial line. The loader
// salvages every intact record: a truncated final line, a corrupted
// checksum, or an unparseable line each drop only that line (with a
// warning), and a header that does not match the fleet invalidates the
// journal as a whole — resume then re-runs everything rather than mixing
// records from a different study.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "atlas/measurement.h"
#include "jsonio/json.h"
#include "netbase/thread_annotations.h"

namespace dnslocate::atlas {

/// Journal file header (line 1).
struct JournalHeader {
  std::uint32_t version = 1;
  /// Fingerprint of the fleet: folds every probe's id, organization, and
  /// scenario configuration, so it pins seed, scale, and per-probe knobs.
  std::uint64_t fingerprint = 0;
  std::uint64_t fleet_size = 0;
};

/// Deterministic fingerprint over the full fleet specification.
std::uint64_t fleet_fingerprint(const std::vector<ProbeSpec>& fleet);

/// Serialize one record to the journal's JSON form. Round-trips everything
/// the report layer aggregates: verdict summaries, ground truth, transport
/// telemetry, drop/fault counters, and the supervision outcome.
jsonio::Value journal_record_to_json(const ProbeRecord& record);

/// Parse a journal record; nullopt when structurally invalid.
std::optional<ProbeRecord> journal_record_from_json(const jsonio::Value& value);

/// Serialize one record straight to its journal JSON text: byte-identical to
/// journal_record_to_json(record).dump() — the checksum covers exactly these
/// bytes — but without building the value tree, so checkpointing stays
/// cheap on the fleet's hot path (JournalWriter uses this form).
std::string journal_record_dump(const ProbeRecord& record);

/// Append-only journal writer. Thread-safe; every append reaches the OS
/// before it returns (surviving a crash of this process), and the file is
/// fsync'd at most once per `sync_interval` and on close (bounding loss on
/// power failure without an fsync per record).
class JournalWriter {
 public:
  /// Opens `path` truncating any previous contents and writes the header.
  /// Check ok() — a writer that failed to open drops appends silently.
  JournalWriter(const std::string& path, const JournalHeader& header,
                std::chrono::milliseconds sync_interval = std::chrono::seconds(1));
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void append(const ProbeRecord& record) DNSLOCATE_EXCLUDES(mutex_);
  /// Append a batch of records with a single write to the OS: the cheap way
  /// to checkpoint from a hot loop (one syscall per batch, not per record).
  void append_batch(const std::vector<const ProbeRecord*>& batch) DNSLOCATE_EXCLUDES(mutex_);
  /// Flush buffered lines and fsync.
  void sync() DNSLOCATE_EXCLUDES(mutex_);

  [[nodiscard]] bool ok() const DNSLOCATE_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t written() const DNSLOCATE_EXCLUDES(mutex_);

 private:
  // Immutable after construction.
  std::chrono::milliseconds sync_interval_;

  // The writer lock serializes appends from concurrent shard workers onto
  // the single file. It is a *leaf* capability (tools/dnslint/lock_order.txt):
  // nothing else is ever acquired under it, which is why holding it across
  // the fwrite/fflush (and the coarse time-based fsync) is safe — unlike
  // the service-wide mutex, it guards exactly the blocking resource itself.
  mutable netbase::Mutex mutex_;
  std::FILE* file_ DNSLOCATE_GUARDED_BY(mutex_) = nullptr;
  std::chrono::steady_clock::time_point last_sync_ DNSLOCATE_GUARDED_BY(mutex_){};
  std::size_t written_ DNSLOCATE_GUARDED_BY(mutex_) = 0;
};

/// Result of reading a journal back.
struct JournalLoadResult {
  JournalHeader header;
  std::vector<ProbeRecord> records;    // intact records, journal order
  std::vector<std::string> warnings;   // salvage notes (damaged lines)
  std::size_t damaged = 0;             // lines dropped by salvage
  std::string error;                   // fatal: unreadable / bad header

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parse journal text (tests feed doctored journals through this).
JournalLoadResult parse_journal(std::string_view text);

/// Read and parse a journal file.
JournalLoadResult load_journal(const std::string& path);

}  // namespace dnslocate::atlas
