// Longitudinal measurement: re-run the localization pipeline on the same
// simulated vantage repeatedly, mutating the world between rounds — the
// §5 story (an XB6 firmware update silently switching interception on) as
// a first-class workflow, and the simulated twin of
// examples/interception_monitor.cpp.
#pragma once

#include <functional>
#include <vector>

#include "atlas/scenario.h"

namespace dnslocate::atlas {

/// One measurement round.
struct LongitudinalRound {
  std::size_t round = 0;
  core::ProbeVerdict verdict;
  /// True when the location verdict differs from the previous round's —
  /// the "alert" a monitoring deployment would raise.
  bool changed = false;
};

/// Called between rounds (after round `completed_round` finished) to mutate
/// the world: flip a DNAT rule on, change ISP policy, etc.
using WorldMutator = std::function<void(Scenario& scenario, std::size_t completed_round)>;

/// Run `rounds` measurements of `scenario`, invoking `between` after each
/// non-final round. The scenario's simulator keeps its state (conntrack,
/// caches) across rounds, as a long-lived home network would.
std::vector<LongitudinalRound> run_longitudinal(Scenario& scenario, std::size_t rounds,
                                                const WorldMutator& between = {});

/// Indices of rounds whose verdict changed.
std::vector<std::size_t> change_points(const std::vector<LongitudinalRound>& rounds);

}  // namespace dnslocate::atlas
