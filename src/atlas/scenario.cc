#include "atlas/scenario.h"

#include <stdexcept>

namespace dnslocate::atlas {

bool CpeStyle::intercepts() const {
  switch (kind) {
    case Kind::xb6_buggy:
    case Kind::pihole:
    case Kind::intercept_dnsmasq:
    case Kind::intercept_unbound:
    case Kind::intercept_custom:
    case Kind::intercept_to_resolver:
      return true;
    default:
      return false;
  }
}

netbase::Prefix customer_prefix_v4(std::uint32_t asn) {
  return netbase::Prefix(
      netbase::IpAddress(netbase::Ipv4Address(37, static_cast<std::uint8_t>(asn % 251), 0, 0)),
      16);
}

netbase::Prefix customer_prefix_v6(std::uint32_t asn) {
  return netbase::Prefix(
      netbase::IpAddress(netbase::Ipv6Address::from_hextets(
          {0x2a00, static_cast<std::uint16_t>(asn & 0xffff), 0, 0, 0, 0, 0, 0})),
      32);
}

netbase::IpAddress customer_address_v4(std::uint32_t asn, std::uint16_t home_index) {
  // Skip the .0.x block, which holds the ISP's own infrastructure.
  std::uint32_t base = customer_prefix_v4(asn).address().v4().value();
  return netbase::Ipv4Address(base + 256u + home_index);
}

netbase::IpAddress customer_address_v6(std::uint32_t asn, std::uint16_t home_index) {
  auto bytes = customer_prefix_v6(asn).address().v6().bytes();
  bytes[12] = static_cast<std::uint8_t>(home_index >> 8);
  bytes[13] = static_cast<std::uint8_t>(home_index & 0xff);
  bytes[15] = 1;
  return netbase::Ipv6Address(bytes);
}

netbase::IpAddress isp_resolver_v4(std::uint32_t asn) {
  std::uint32_t base = customer_prefix_v4(asn).address().v4().value();
  return netbase::Ipv4Address(base + 53u);
}

netbase::IpAddress isp_resolver_v6(std::uint32_t asn) {
  auto bytes = customer_prefix_v6(asn).address().v6().bytes();
  bytes[15] = 0x53;
  return netbase::Ipv6Address(bytes);
}

namespace {

cpe::CpeConfig build_cpe_config(const ScenarioConfig& config,
                                const cpe::HomeAddressing& home) {
  using Kind = CpeStyle::Kind;
  const CpeStyle& style = config.cpe;
  switch (style.kind) {
    case Kind::benign_closed: return cpe::benign_closed(home);
    case Kind::benign_open_dnsmasq: return cpe::benign_open_dnsmasq(home, style.version);
    case Kind::benign_open_chaos_forwarder: return cpe::benign_open_chaos_forwarder(home);
    case Kind::benign_open_chaos_nxdomain: return cpe::benign_open_chaos_nxdomain(home);
    case Kind::xb6_healthy: return cpe::xb6_healthy(home);
    case Kind::xb6_buggy: return cpe::xb6_buggy(home);
    case Kind::pihole: return cpe::pihole(home, style.version);
    case Kind::intercept_dnsmasq: return cpe::intercepting_dnsmasq(home, style.version);
    case Kind::intercept_unbound:
      return cpe::intercepting_unbound(home, style.version, style.identity);
    case Kind::intercept_custom: return cpe::intercepting_custom(home, style.custom);
    case Kind::intercept_to_resolver: return cpe::intercepting_to_resolver(home);
  }
  return cpe::benign_closed(home);
}

bool policy_intercepts_any_target(const isp::IspPolicy& policy, netbase::IpFamily family) {
  if (!policy.middlebox_enabled) return false;
  const auto& actions = family == netbase::IpFamily::v4 ? policy.target_actions
                                                        : policy.target_actions_v6;
  for (const auto& [kind, action] : actions)
    if (action != isp::TargetAction::pass) return true;
  if (family == netbase::IpFamily::v4 && policy.intercept_all_port53 &&
      policy.default_action != isp::TargetAction::pass && policy.intercept_v4)
    return true;
  if (family == netbase::IpFamily::v6 && policy.intercept_all_port53 &&
      policy.default_action != isp::TargetAction::pass && policy.intercept_v6)
    return true;
  return false;
}

}  // namespace

GroundTruth Scenario::compute_ground_truth(const ScenarioConfig& config) {
  GroundTruth truth;
  truth.cpe_intercepts = config.cpe.intercepts();
  truth.isp_intercepts_v4 = policy_intercepts_any_target(config.isp_policy,
                                                         netbase::IpFamily::v4);
  truth.isp_intercepts_v6 =
      config.home_ipv6 &&
      policy_intercepts_any_target(config.isp_policy, netbase::IpFamily::v6);
  truth.external_intercepts = config.external_interceptor;

  const isp::IspPolicy& policy = config.isp_policy;
  truth.isp_answers_bogons =
      policy.middlebox_enabled &&
      ((policy.intercept_all_port53 && policy.default_action != isp::TargetAction::pass &&
        policy.intercept_v4 && !policy.ignore_bogon_queries) ||
       policy.scoped_answers_bogons);

  if (truth.cpe_intercepts) {
    truth.expected = core::InterceptorLocation::cpe;
  } else if (truth.isp_intercepts_v4 || truth.isp_intercepts_v6) {
    truth.expected = truth.isp_answers_bogons ? core::InterceptorLocation::isp
                                              : core::InterceptorLocation::unknown;
  } else if (truth.external_intercepts) {
    truth.expected = core::InterceptorLocation::unknown;
  } else {
    truth.expected = core::InterceptorLocation::not_intercepted;
  }
  return truth;
}

Scenario::Scenario(const ScenarioConfig& config)
    : config_(config),
      sim_(config.seed),
      fault_plan_(config.fault_seed != 0 ? config.fault_seed
                                         : config.seed ^ 0xfa0175eedull),
      cpe_wan_v4_(customer_address_v4(config.asn, config.home_index)),
      ground_truth_(compute_ground_truth(config)) {
  // Home addresses are 1-based; index 0 would land the CPE on the boundary
  // of the ISP's infrastructure block (see customer_address_v4).
  if (config.home_index == 0)
    throw std::invalid_argument("ScenarioConfig::home_index must be >= 1");

  // --- faults: attach the plan before any link carries traffic ---
  if (config.faults.active()) {
    if (config.fault_classes.empty()) {
      fault_plan_.set_default_profile(config.faults);
    } else {
      for (const std::string& fault_class : config.fault_classes)
        fault_plan_.set_class_profile(fault_class, config.faults);
    }
    sim_.set_fault_plan(&fault_plan_);
  }

  // --- backbone: transit core + public resolvers (+ external interceptor) ---
  isp::BackboneConfig backbone_config;
  backbone_config.site_index = config.site_index;
  backbone_config.instance = config.instance;
  backbone_config.external_interceptor = config.external_interceptor;
  backbone_ = isp::build_backbone(sim_, backbone_config);

  // --- adversaries: spoofer on the transit core ---
  // Installed right after the backbone so the hook sees queries exactly as
  // the core forwards them (after any external-interceptor DNAT).
  if (config.adversary.transit_spoofer) {
    spoofer_ = std::make_shared<simnet::SpooferHook>(*config.adversary.transit_spoofer);
    backbone_.core->add_hook(spoofer_);
  }

  // --- the probe's ISP ---
  isp::IspConfig isp_config;
  isp_config.name = config.isp_name;
  isp_config.asn = config.asn;
  isp_config.customer_prefix_v4 = customer_prefix_v4(config.asn);
  isp_config.resolver_v4 = isp_resolver_v4(config.asn);
  isp_config.resolver_software = config.isp_resolver_software;
  isp_config.blocking_rcode = config.blocking_rcode;
  isp_config.policy = config.isp_policy;
  if (config.home_ipv6) {
    isp_config.customer_prefix_v6 = customer_prefix_v6(config.asn);
    isp_config.resolver_v6 = isp_resolver_v6(config.asn);
  }
  isp_ = isp::build_isp(sim_, isp_config, *backbone_.core);

  // --- adversaries: DPI middlebox on the home's uplink ---
  if (config.adversary.isp_dpi && config.adversary.isp_dpi->active()) {
    isp_dpi_ = std::make_shared<simnet::DpiHook>(*config.adversary.isp_dpi);
    isp_.access->add_hook(isp_dpi_);
  }

  // --- the home: measurement host behind the CPE ---
  auto& host = sim_.add_device<simnet::Device>("probe-host");
  host_ = &host;
  host.add_local_ip(*netbase::IpAddress::parse("192.168.1.10"));
  if (config.home_ipv6) host.add_local_ip(*netbase::IpAddress::parse("fd00:1::10"));

  cpe::HomeAddressing home;
  home.wan_v4 = cpe_wan_v4_;
  if (config.home_ipv6) {
    cpe_wan_v6_ = customer_address_v6(config.asn, config.home_index);
    home.wan_v6 = cpe_wan_v6_;
  }
  home.isp_resolver_v4 = netbase::Endpoint{isp_config.resolver_v4, netbase::kDnsPort};
  if (isp_config.resolver_v6)
    home.isp_resolver_v6 = netbase::Endpoint{*isp_config.resolver_v6, netbase::kDnsPort};

  cpe::CpeConfig cpe_config = build_cpe_config(config, home);
  cpe_ = cpe::build_cpe(sim_, cpe_config, host, *isp_.access);
  host.set_default_route(cpe_.lan_peer_port);

  // --- adversaries: DPI personality on the CPE itself ---
  if (config.adversary.cpe_dpi && config.adversary.cpe_dpi->active()) {
    cpe_dpi_ = std::make_shared<simnet::DpiHook>(*config.adversary.cpe_dpi);
    cpe_.device->add_hook(cpe_dpi_);
  }

  // The access router needs the return route to this home.
  isp_.access->add_route(netbase::Prefix(cpe_wan_v4_, 32), cpe_.wan_peer_port);
  if (cpe_wan_v6_) isp_.access->add_route(netbase::Prefix(*cpe_wan_v6_, 128), cpe_.wan_peer_port);

  transport_ = std::make_unique<core::SimTransport>(sim_, host);
}

core::PipelineConfig Scenario::pipeline_config() const {
  core::PipelineConfig pipeline;
  pipeline.cpe_public_ip = cpe_wan_v4_;
  pipeline.detection.test_v6 = true;  // SimTransport reports v6 support itself
  pipeline.run_fingerprint = config_.run_fingerprint;
  if (config_.retry.enabled()) pipeline.apply_retry_policy(config_.retry);
  // Transaction IDs come from this probe's own seeded stream: hard to spoof
  // (unpredictable to an off-path attacker), yet bit-reproducible per seed.
  pipeline.query_id_seed = simnet::Rng(config_.seed ^ 0x1d5eed1d5eedULL).next_u64();
  return pipeline;
}

}  // namespace dnslocate::atlas
