#include "atlas/fleet.h"

#include "simnet/rng.h"

namespace dnslocate::atlas {
namespace {

using resolvers::PublicResolverKind;

/// Per-organization plan: population size plus explicit interception quotas.
/// The quota columns are calibrated so the fleet-wide totals land on the
/// paper's Table 4 / Table 5 / Figure 3 / Figure 4 shapes:
///   CPE interceptors: 49 (dnsmasq 23 incl. XB6, pihole 8, unbound 6,
///                         RedHat BIND 2, ten one-off strings)
///   all-four ISP interception: 62 spread over transparent / no-bogon /
///                         blocking / mixed / beyond-AS flavours
///   "one intercepted": 60, "one allowed": 46
struct OrgPlan {
  const char* org;
  std::uint32_t asn;
  const char* country;
  int probes;
  // CPE interceptor quotas (Table 5 string classes).
  int cpe_xb6 = 0;       // dnsmasq-2.78 strings via XDNS (§5)
  int cpe_dnsmasq = 0;   // generic intercepting dnsmasq
  int cpe_pihole = 0;
  int cpe_unbound = 0;
  int cpe_redhat = 0;
  const char* cpe_custom = nullptr;  // one-off version.bind string
  // ISP middlebox quotas (probes whose ISP intercepts all four resolvers).
  int isp_allfour = 0;          // transparent, answers bogons -> "within ISP"
  int isp_allfour_nobogon = 0;  // transparent, discards bogons -> "unknown"
  int isp_block = 0;            // filtering resolver -> "Status Modified"
  int isp_both = 0;             // mixed divert/block -> "Both"
  int external = 0;             // interceptor beyond the AS -> "unknown"
  // Partial-interception quotas (§4.1.1's minority patterns).
  int one_intercepted = 0;
  int one_allowed = 0;
  // Of the all-four ISP probes, how many also see (partial) v6 interception.
  int v6_intercept = 0;
};

constexpr OrgPlan kPlans[] = {
    {"Comcast", 7922, "US", 850, /*xb6*/ 10, 0, 0, 0, 0, nullptr,
     /*allfour*/ 5, /*nobogon*/ 2, /*block*/ 1, /*both*/ 0, /*ext*/ 0,
     /*one_int*/ 0, /*one_allow*/ 0, /*v6*/ 3},
    {"AT&T", 7018, "US", 280, 0, 0, 2, 0, 0, nullptr, 0, 0, 0, 0, 0, 0, 4, 0},
    {"Charter", 20115, "US", 260, 0, 0, 0, 0, 0, "Windows NS", 2, 0, 1, 0, 0, 0, 3, 1},
    {"Verizon", 701, "US", 240, 0, 0, 0, 0, 0, nullptr, 0, 0, 0, 0, 0, 0, 4, 0},
    {"Deutsche Telekom", 3320, "DE", 700, 0, 2, 1, 0, 0, nullptr, 2, 0, 1, 0, 0, 4, 3, 2},
    {"Vodafone DE", 3209, "DE", 380, 3, 0, 0, 0, 0, nullptr, 0, 0, 0, 0, 0, 0, 3, 0},
    {"Orange FR", 3215, "FR", 520, 0, 1, 0, 0, 0, nullptr, 2, 0, 0, 1, 0, 4, 2, 2},
    {"Free SAS", 12322, "FR", 420, 0, 0, 0, 2, 0, nullptr, 0, 0, 0, 0, 0, 3, 2, 0},
    {"BT", 2856, "GB", 420, 0, 1, 0, 0, 0, nullptr, 1, 0, 1, 1, 0, 4, 2, 0},
    {"Sky", 5607, "GB", 260, 0, 0, 1, 0, 0, nullptr, 0, 0, 0, 0, 0, 3, 0, 0},
    {"Virgin Media", 5089, "GB", 230, 0, 0, 0, 0, 0, nullptr, 0, 1, 0, 0, 0, 3, 0, 0},
    {"KPN", 1136, "NL", 330, 0, 1, 0, 0, 0, "9.16.1-Debian", 0, 0, 0, 0, 0, 3, 2, 0},
    {"Ziggo", 33915, "NL", 300, 0, 0, 1, 0, 0, nullptr, 0, 0, 0, 0, 0, 3, 2, 0},
    {"Telecom Italia", 3269, "IT", 280, 0, 0, 0, 0, 1, nullptr, 1, 0, 1, 0, 0, 3, 2, 1},
    {"Telefonica", 3352, "ES", 260, 0, 0, 0, 0, 1, nullptr, 1, 1, 0, 0, 0, 3, 2, 0},
    {"Telia", 3301, "SE", 240, 0, 1, 1, 0, 0, nullptr, 0, 0, 0, 0, 0, 3, 2, 0},
    {"Swisscom", 3303, "CH", 220, 0, 0, 1, 0, 0, nullptr, 0, 0, 0, 0, 0, 2, 2, 0},
    {"A1 Telekom", 8447, "AT", 180, 0, 0, 0, 0, 0, "9.16.15", 0, 0, 0, 0, 0, 2, 0, 0},
    {"Proximus", 5432, "BE", 170, 0, 0, 0, 0, 0, "PowerDNS Recursor 4.1.11", 0, 0, 0, 0, 0,
     2, 0, 0},
    {"Shaw", 6327, "CA", 300, 4, 0, 0, 0, 0, nullptr, 1, 0, 0, 0, 0, 2, 2, 1},
    {"Bell Canada", 577, "CA", 180, 0, 0, 0, 1, 0, nullptr, 0, 0, 0, 0, 0, 2, 1, 0},
    {"Rostelecom", 12389, "RU", 330, 0, 0, 0, 1, 0, nullptr, 3, 2, 1, 0, 1, 1, 2, 3},
    {"Orange PL", 5617, "PL", 210, 0, 0, 0, 1, 0, nullptr, 1, 1, 0, 0, 0, 2, 1, 0},
    {"O2 CZ", 5610, "CZ", 160, 0, 0, 0, 1, 0, nullptr, 0, 0, 0, 0, 0, 2, 1, 0},
    {"NTT", 4713, "JP", 230, 0, 0, 0, 0, 0, "Q9-P-9.16.15", 1, 0, 0, 0, 0, 2, 1, 0},
    {"Telstra", 1221, "AU", 210, 0, 0, 1, 0, 0, nullptr, 1, 0, 0, 0, 0, 2, 1, 0},
    {"Claro BR", 28573, "BR", 190, 0, 0, 0, 0, 0, "new", 1, 0, 0, 1, 1, 2, 1, 0},
    {"Airtel", 24560, "IN", 160, 0, 0, 0, 0, 0, "unknown", 1, 1, 0, 0, 1, 1, 0, 0},
    {"Telkom ZA", 37457, "ZA", 90, 0, 0, 0, 0, 0, nullptr, 0, 0, 0, 0, 0, 1, 0, 0},
    {"Turk Telekom", 9121, "TR", 250, 0, 0, 0, 0, 0, "none", 3, 2, 2, 1, 1, 0, 1, 3},
    {"Telkomsel", 7713, "ID", 120, 0, 0, 0, 0, 0, "huuh?", 1, 1, 0, 0, 1, 0, 0, 0},
    {"China Telecom", 4134, "CN", 100, 0, 0, 0, 0, 0, nullptr, 2, 0, 1, 1, 2, 0, 0, 2},
    {"Telmex", 8151, "MX", 130, 0, 0, 0, 0, 0, "Microsoft", 1, 0, 0, 0, 0, 1, 1, 0},
    {"Other networks", 64512, "--", 450, 0, 0, 0, 0, 0, nullptr, 0, 0, 0, 0, 0, 0, 0, 0},
};

/// Cycled assignment of which resolver a scoped policy touches; the weights
/// reflect the paper's observation that Google and Cloudflare are
/// intercepted (and allowed) most often.
constexpr PublicResolverKind kOneInterceptedCycle[] = {
    PublicResolverKind::cloudflare, PublicResolverKind::google, PublicResolverKind::cloudflare,
    PublicResolverKind::quad9,      PublicResolverKind::google, PublicResolverKind::opendns,
    PublicResolverKind::cloudflare, PublicResolverKind::quad9,  PublicResolverKind::google,
    PublicResolverKind::opendns};
constexpr PublicResolverKind kOneAllowedCycle[] = {
    PublicResolverKind::google, PublicResolverKind::quad9, PublicResolverKind::opendns,
    PublicResolverKind::cloudflare, PublicResolverKind::google, PublicResolverKind::quad9,
    PublicResolverKind::opendns, PublicResolverKind::google, PublicResolverKind::quad9,
    PublicResolverKind::opendns};

/// v6 partial-interception patterns (never all four — Table 4's v6 row).
const std::vector<std::vector<PublicResolverKind>>& v6_patterns() {
  static const std::vector<std::vector<PublicResolverKind>> patterns = {
      {PublicResolverKind::google, PublicResolverKind::cloudflare},
      {PublicResolverKind::google, PublicResolverKind::quad9, PublicResolverKind::opendns},
      {PublicResolverKind::cloudflare, PublicResolverKind::opendns, PublicResolverKind::quad9},
      {PublicResolverKind::google, PublicResolverKind::quad9},
  };
  return patterns;
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : text) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  return h;
}

/// Unbound identities seen on CPE (Table 2's "routing.v2.pw" included).
constexpr const char* kUnboundIdentities[] = {"routing.v2.pw", "ns.home.arpa", "gw.local",
                                              "resolver1",     "cache01",      "unbound-fw"};
constexpr const char* kDnsmasqVersions[] = {"2.80", "2.85", "2.86", "2.87"};
constexpr const char* kPiholeVersions[] = {"2.87", "2.86"};

resolvers::SoftwareProfile isp_resolver_software(std::uint32_t asn) {
  switch (asn % 3) {
    case 0: return resolvers::bind9("9.11.3");
    case 1: return resolvers::unbound("1.13.1");
    default: return resolvers::powerdns("4.4.0");
  }
}

}  // namespace

const std::vector<OrgQuota>& builtin_fleet_plan() {
  static const std::vector<OrgQuota> plan = [] {
    std::vector<OrgQuota> out;
    for (const OrgPlan& p : kPlans) {
      OrgQuota q;
      q.org = p.org;
      q.asn = p.asn;
      q.country = p.country;
      q.probes = p.probes;
      q.cpe_xb6 = p.cpe_xb6;
      q.cpe_dnsmasq = p.cpe_dnsmasq;
      q.cpe_pihole = p.cpe_pihole;
      q.cpe_unbound = p.cpe_unbound;
      q.cpe_redhat = p.cpe_redhat;
      if (p.cpe_custom != nullptr) q.cpe_custom = p.cpe_custom;
      q.isp_allfour = p.isp_allfour;
      q.isp_allfour_nobogon = p.isp_allfour_nobogon;
      q.isp_block = p.isp_block;
      q.isp_both = p.isp_both;
      q.external = p.external;
      q.one_intercepted = p.one_intercepted;
      q.one_allowed = p.one_allowed;
      q.v6_intercept = p.v6_intercept;
      out.push_back(std::move(q));
    }
    return out;
  }();
  return plan;
}

std::size_t site_index_for_country(const std::string& country) {
  return static_cast<std::size_t>(fnv1a(country) % resolvers::anycast_sites().size());
}

std::vector<ProbeSpec> generate_fleet(const FleetConfig& config) {
  return generate_fleet_from_plan(builtin_fleet_plan(), config);
}

std::vector<ProbeSpec> generate_fleet_from_plan(const std::vector<OrgQuota>& plans,
                                                const FleetConfig& config) {
  std::vector<ProbeSpec> fleet;
  simnet::Rng rng(config.seed);
  std::uint32_t probe_id = 1000;
  int global_one_intercepted = 0;
  int global_one_allowed = 0;
  int global_unbound = 0;
  int global_dnsmasq = 0;
  int global_pihole = 0;
  int global_v6 = 0;

  for (const OrgQuota& plan : plans) {
    OrgInfo org{plan.org + " (AS" + std::to_string(plan.asn) + ")", plan.asn, plan.country};
    int quota_total = plan.cpe_xb6 + plan.cpe_dnsmasq + plan.cpe_pihole + plan.cpe_unbound +
                      plan.cpe_redhat + (plan.cpe_custom ? 1 : 0) + plan.isp_allfour +
                      plan.isp_allfour_nobogon + plan.isp_block + plan.isp_both + plan.external +
                      plan.one_intercepted + plan.one_allowed;
    int scaled = static_cast<int>(static_cast<double>(plan.probes) * config.scale);
    int total = std::max(scaled, quota_total);

    // Remaining quota counters for this org, consumed probe by probe.
    int xb6 = plan.cpe_xb6, dnsmasq_q = plan.cpe_dnsmasq, pihole_q = plan.cpe_pihole;
    int unbound_q = plan.cpe_unbound, redhat_q = plan.cpe_redhat;
    bool custom_q = plan.cpe_custom.has_value();
    int allfour = plan.isp_allfour, nobogon = plan.isp_allfour_nobogon;
    int block = plan.isp_block, both = plan.isp_both, external = plan.external;
    int one_int = plan.one_intercepted, one_allow = plan.one_allowed;
    int v6_int = plan.v6_intercept;
    bool first_allfour_in_org = true;

    for (int i = 0; i < total; ++i) {
      simnet::Rng probe_rng = rng.fork();
      ProbeSpec spec;
      spec.probe_id = probe_id++;
      spec.org = org;
      ScenarioConfig& sc = spec.scenario;
      sc.seed = probe_rng.next_u64() | 1;
      sc.isp_name = "as" + std::to_string(plan.asn);
      sc.asn = plan.asn;
      sc.home_index = static_cast<std::uint16_t>(i + 1);
      sc.site_index = site_index_for_country(plan.country);
      sc.instance = static_cast<unsigned>(probe_rng.uniform(4));
      sc.home_ipv6 = probe_rng.bernoulli(config.ipv6_fraction);
      sc.isp_resolver_software = isp_resolver_software(plan.asn);
      sc.faults = config.faults;
      sc.fault_classes = config.fault_classes;
      sc.retry = config.retry;
      sc.adversary = config.adversary;
      sc.run_fingerprint = config.run_fingerprint;

      // `allow_chaos_forwarder` is false for homes whose ISP intercepts:
      // pairing the two creates the (deliberately quota'd) §6
      // misclassification, so the random mix must not add more of them.
      auto benign_cpe = [&](bool allow_chaos_forwarder) {
        double roll = probe_rng.uniform01();
        CpeStyle style;
        if (roll < 0.52) {
          style.kind = CpeStyle::Kind::benign_closed;
        } else if (roll < 0.80) {
          style.kind = CpeStyle::Kind::benign_open_dnsmasq;
          style.version = kDnsmasqVersions[probe_rng.uniform(4)];
        } else if (roll < 0.90) {
          style.kind = CpeStyle::Kind::xb6_healthy;
        } else if (roll < 0.95 || !allow_chaos_forwarder) {
          style.kind = CpeStyle::Kind::benign_open_chaos_nxdomain;
        } else {
          style.kind = CpeStyle::Kind::benign_open_chaos_forwarder;
        }
        return style;
      };

      // --- consume quotas in a fixed order ---
      if (xb6 > 0) {
        --xb6;
        sc.cpe.kind = CpeStyle::Kind::xb6_buggy;
      } else if (dnsmasq_q > 0) {
        --dnsmasq_q;
        sc.cpe.kind = CpeStyle::Kind::intercept_dnsmasq;
        sc.cpe.version = kDnsmasqVersions[static_cast<std::size_t>(global_dnsmasq++) % 4];
      } else if (pihole_q > 0) {
        --pihole_q;
        sc.cpe.kind = CpeStyle::Kind::pihole;
        sc.cpe.version = kPiholeVersions[static_cast<std::size_t>(global_pihole++) % 2];
      } else if (unbound_q > 0) {
        --unbound_q;
        sc.cpe.kind = CpeStyle::Kind::intercept_unbound;
        sc.cpe.version = "1.9.0";
        sc.cpe.identity = kUnboundIdentities[static_cast<std::size_t>(global_unbound++) % 6];
      } else if (redhat_q > 0) {
        --redhat_q;
        sc.cpe.kind = CpeStyle::Kind::intercept_custom;
        sc.cpe.custom = resolvers::bind9("9.11.4-P2-RedHat-9.11.4-26.P2.el7_9.3");
      } else if (custom_q) {
        custom_q = false;
        sc.cpe.kind = CpeStyle::Kind::intercept_custom;
        sc.cpe.custom = resolvers::custom_string(*plan.cpe_custom);
      } else if (allfour > 0 || nobogon > 0 || block > 0 || both > 0) {
        // ISP middlebox intercepting every resolver.
        sc.isp_policy.middlebox_enabled = true;
        sc.isp_policy.intercept_all_port53 = true;
        if (allfour > 0) {
          --allfour;
        } else if (nobogon > 0) {
          --nobogon;
          sc.isp_policy.ignore_bogon_queries = true;
        } else if (block > 0) {
          --block;
          sc.isp_policy.default_action = isp::TargetAction::divert_block;
        } else {
          --both;
          sc.isp_policy.target_actions[PublicResolverKind::quad9] =
              isp::TargetAction::divert_block;
        }
        // A few of these homes run the §6 misclassification CPE.
        if (first_allfour_in_org && plan.isp_allfour >= 3) {
          sc.cpe.kind = CpeStyle::Kind::benign_open_chaos_forwarder;
        } else {
          sc.cpe = benign_cpe(false);
        }
        first_allfour_in_org = false;
        // Partial v6 interception for the quota'd subset.
        if (v6_int > 0) {
          --v6_int;
          sc.home_ipv6 = true;
          const auto& pattern =
              v6_patterns()[static_cast<std::size_t>(global_v6++) % v6_patterns().size()];
          for (PublicResolverKind kind : pattern)
            sc.isp_policy.target_actions_v6[kind] = isp::TargetAction::divert;
        }
      } else if (external > 0) {
        --external;
        sc.external_interceptor = true;
        sc.cpe = benign_cpe(false);
      } else if (one_int > 0) {
        --one_int;
        sc.isp_policy.middlebox_enabled = true;
        sc.isp_policy.intercept_all_port53 = false;
        PublicResolverKind kind =
            kOneInterceptedCycle[static_cast<std::size_t>(global_one_intercepted++) % 10];
        sc.isp_policy.target_actions[kind] = isp::TargetAction::divert;
        // Roughly two thirds of scoped proxies still answer bogons.
        sc.isp_policy.scoped_answers_bogons = (global_one_intercepted % 3) != 0;
        sc.cpe = benign_cpe(false);
      } else if (one_allow > 0) {
        --one_allow;
        sc.isp_policy.middlebox_enabled = true;
        sc.isp_policy.intercept_all_port53 = true;
        PublicResolverKind kind =
            kOneAllowedCycle[static_cast<std::size_t>(global_one_allowed++) % 10];
        sc.isp_policy.target_actions[kind] = isp::TargetAction::pass;
        sc.cpe = benign_cpe(false);
      } else {
        sc.cpe = benign_cpe(true);
      }

      fleet.push_back(std::move(spec));
    }
  }
  return fleet;
}

}  // namespace dnslocate::atlas
