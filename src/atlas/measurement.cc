#include "atlas/measurement.h"

#include <atomic>
#include <mutex>
#include <thread>

namespace dnslocate::atlas {
namespace {

void strip_result(core::QueryResult& result) {
  result.all_responses.clear();
  result.all_responses.shrink_to_fit();
}

void strip_verdict(core::ProbeVerdict& verdict) {
  for (auto& probe : verdict.detection.probes) strip_result(probe.result);
  if (verdict.bogon) {
    strip_result(verdict.bogon->v4.a_query);
    strip_result(verdict.bogon->v4.version_query);
    strip_result(verdict.bogon->v6.a_query);
    strip_result(verdict.bogon->v6.version_query);
  }
}

}  // namespace

std::size_t MeasurementRun::intercepted_count() const {
  std::size_t count = 0;
  for (const auto& record : records)
    if (record.verdict.intercepted()) ++count;
  return count;
}

std::size_t MeasurementRun::count_location(core::InterceptorLocation location) const {
  std::size_t count = 0;
  for (const auto& record : records)
    if (record.verdict.location == location) ++count;
  return count;
}

ProbeRecord run_probe(const ProbeSpec& spec, bool strip_raw_responses) {
  ProbeRecord record;
  record.probe_id = spec.probe_id;
  record.org = spec.org;
  record.tested_v6 = spec.scenario.home_ipv6;
  record.truth = GroundTruth{};

  Scenario scenario(spec.scenario);
  record.truth = scenario.ground_truth();
  core::LocalizationPipeline pipeline(scenario.pipeline_config());
  record.verdict = pipeline.run(scenario.transport());
  record.drops = scenario.sim().drops();
  record.faults = scenario.fault_plan().counters();
  if (strip_raw_responses) strip_verdict(record.verdict);
  return record;
}

MeasurementRun run_fleet(const std::vector<ProbeSpec>& fleet,
                         const MeasurementOptions& options) {
  MeasurementRun run;
  run.records.resize(fleet.size());

  unsigned threads = options.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, static_cast<unsigned>(std::max<std::size_t>(
                                            1, fleet.size())));

  if (threads <= 1) {
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      run.records[i] = run_probe(fleet[i], options.strip_raw_responses);
      if (options.progress) options.progress(i + 1, fleet.size());
    }
    return run;
  }

  // Each probe owns its simulator, so workers share nothing but the output
  // slots (disjoint) and the progress counter.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;
  auto worker = [&] {
    while (true) {
      std::size_t i = next.fetch_add(1);
      if (i >= fleet.size()) return;
      run.records[i] = run_probe(fleet[i], options.strip_raw_responses);
      std::size_t completed = done.fetch_add(1) + 1;
      if (options.progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        options.progress(completed, fleet.size());
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  return run;
}

}  // namespace dnslocate::atlas
