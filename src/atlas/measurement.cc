#include "atlas/measurement.h"

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>

#include <filesystem>

#include "atlas/journal.h"
#include "atlas/sharding.h"
#include "netbase/arena.h"
#include "netbase/thread_annotations.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace dnslocate::atlas {
namespace {

/// Observability clock driven by the probe's simulator: every span and
/// histogram recorded while the probe runs carries simulated nanoseconds,
/// so two runs of the same scenario export identical traces.
class SimulatorClock final : public obs::ClockSource {
 public:
  explicit SimulatorClock(const simnet::Simulator& sim) : sim_(sim) {}
  [[nodiscard]] std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(sim_.now().count());
  }

 private:
  const simnet::Simulator& sim_;
};

/// Mirror a completed probe's drop and fault counters into the metrics
/// registry. This is the single seam through which simulated-network drops
/// reach the registry, so registry totals agree exactly with the sums the
/// census computes from the same per-record structs.
void note_probe_metrics(const ProbeRecord& record) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& no_route = obs::registry().counter("sim_drop_no_route_total");
  static obs::Counter& ttl_expired = obs::registry().counter("sim_drop_ttl_expired_total");
  static obs::Counter& no_listener = obs::registry().counter("sim_drop_no_listener_total");
  static obs::Counter& by_hook = obs::registry().counter("sim_drop_by_hook_total");
  static obs::Counter& link_loss = obs::registry().counter("sim_drop_link_loss_total");
  static obs::Counter& queue_overflow =
      obs::registry().counter("sim_drop_queue_overflow_total");
  static obs::Counter& fault_burst = obs::registry().counter("sim_drop_fault_burst_total");
  static obs::Counter& fault_random = obs::registry().counter("sim_drop_fault_random_total");
  no_route.add_always(record.drops.no_route);
  ttl_expired.add_always(record.drops.ttl_expired);
  no_listener.add_always(record.drops.no_listener);
  by_hook.add_always(record.drops.by_hook);
  link_loss.add_always(record.drops.link_loss);
  queue_overflow.add_always(record.drops.queue_overflow);
  fault_burst.add_always(record.drops.fault_burst);
  fault_random.add_always(record.drops.fault_random);

  static obs::Counter& f_burst = obs::registry().counter("fault_burst_drops_total");
  static obs::Counter& f_random = obs::registry().counter("fault_random_drops_total");
  static obs::Counter& f_reordered = obs::registry().counter("fault_reordered_total");
  static obs::Counter& f_duplicated = obs::registry().counter("fault_duplicated_total");
  static obs::Counter& f_truncated = obs::registry().counter("fault_truncated_total");
  static obs::Counter& f_jittered = obs::registry().counter("fault_jittered_total");
  f_burst.add_always(record.faults.burst_drops);
  f_random.add_always(record.faults.random_drops);
  f_reordered.add_always(record.faults.reordered);
  f_duplicated.add_always(record.faults.duplicated);
  f_truncated.add_always(record.faults.truncated);
  f_jittered.add_always(record.faults.jittered);
}

void strip_result(core::QueryResult& result) {
  result.all_responses.clear();
  result.all_responses.shrink_to_fit();
}

void strip_verdict(core::ProbeVerdict& verdict) {
  for (auto& probe : verdict.detection.probes) strip_result(probe.result);
  if (verdict.bogon) {
    strip_result(verdict.bogon->v4.a_query);
    strip_result(verdict.bogon->v4.version_query);
    strip_result(verdict.bogon->v6.a_query);
    strip_result(verdict.bogon->v6.version_query);
  }
}

/// Run one probe under supervision: a cancellation token enforcing the
/// wall-clock budget, and a try/catch turning escaped exceptions into a
/// failed record instead of std::terminate in a worker thread.
ProbeRecord supervised_run(const ProbeSpec& spec, const MeasurementOptions& options) {
  auto start = std::chrono::steady_clock::now();
  core::CancelToken token =
      options.probe_deadline.count() > 0
          ? core::CancelToken::with_deadline(start + options.probe_deadline)
          : core::CancelToken{};
  ProbeRecord record;
  try {
    record = options.runner
                 ? options.runner(spec, token)
                 : run_probe(spec, token, options.strip_raw_responses, options.engine);
    record.outcome = ProbeOutcome::ok;
  } catch (const std::exception& e) {
    record = ProbeRecord{};
    record.outcome = ProbeOutcome::failed;
    record.error = e.what();
  } catch (...) {
    record = ProbeRecord{};
    record.outcome = ProbeOutcome::failed;
    record.error = "unknown exception";
  }
  // Identity fields survive even when the probe never got to fill them.
  record.probe_id = spec.probe_id;
  record.org = spec.org;
  record.tested_v6 = spec.scenario.home_ipv6;
  if (record.outcome == ProbeOutcome::ok && token.deadline_exceeded()) {
    // Budget blown: completed stages are kept (the verdict is partial, per
    // the pipeline's skip flags) but the probe is accounted as over
    // deadline — graceful degradation, never a fabricated verdict.
    record.outcome = ProbeOutcome::deadline_exceeded;
    record.error = "probe exceeded its deadline of " +
                   std::to_string(options.probe_deadline.count()) + "ms";
  }
  record.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  if (obs::metrics_enabled()) {
    static obs::Counter& ok = obs::registry().counter("probe_ok_total");
    static obs::Counter& failed = obs::registry().counter("probe_failed_total");
    static obs::Counter& deadline = obs::registry().counter("probe_deadline_total");
    static obs::Counter& partial = obs::registry().counter("probe_partial_total");
    static obs::Histogram& wall = obs::registry().histogram("probe_wall_us");
    switch (record.outcome) {
      case ProbeOutcome::ok: ok.add_always(1); break;
      case ProbeOutcome::failed: failed.add_always(1); break;
      case ProbeOutcome::deadline_exceeded: deadline.add_always(1); break;
    }
    if (record.verdict.skipped_stages != 0) partial.add_always(1);
    wall.record_always(static_cast<std::uint64_t>(record.elapsed.count()));
  }
  return record;
}

/// Shared implementation of run_fleet and resume_fleet. `preloaded` maps
/// fleet indices to records restored from a journal; those probes are not
/// re-executed.
MeasurementRun run_fleet_supervised(
    const std::vector<ProbeSpec>& fleet, const MeasurementOptions& options,
    const std::unordered_map<std::size_t, ProbeRecord>* preloaded) {
  std::vector<ProbeRecord> records(fleet.size());
  std::vector<char> completed(fleet.size(), 0);
  std::size_t preloaded_count = 0;
  if (preloaded != nullptr) {
    for (const auto& [index, record] : *preloaded) {
      records[index] = record;
      completed[index] = 1;
      ++preloaded_count;
    }
  }

  std::unique_ptr<JournalWriter> journal;
  if (!options.journal_path.empty()) {
    JournalHeader header;
    header.fingerprint = fleet_fingerprint(fleet);
    header.fleet_size = fleet.size();
    journal = std::make_unique<JournalWriter>(options.journal_path, header,
                                              options.journal_sync_interval);
    // Re-journal the reused records so the journal stays self-contained and
    // a resumed run can itself be resumed.
    std::vector<const ProbeRecord*> reused;
    for (std::size_t i = 0; i < fleet.size(); ++i)
      if (completed[i]) reused.push_back(&records[i]);
    journal->append_batch(reused);
  }

  // Replay restored records to the observer before any fresh probe runs:
  // subscribers (the service's verdict stream) see every record of the run
  // exactly once, journal-restored ones first in fleet order.
  if (options.on_record != nullptr)
    for (std::size_t i = 0; i < fleet.size(); ++i)
      if (completed[i]) options.on_record(records[i]);

  unsigned threads = options.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, static_cast<unsigned>(std::max<std::size_t>(
                                            1, fleet.size())));

  // Completed records are serialized to the journal in small batches rather
  // than one by one: each probe evicts the serializer's working set from
  // cache, so per-record appends pay a cold-start an order of magnitude
  // above the serializer's steady-state cost. Batching keeps checkpointing
  // in the noise while a crash still loses at most the last batch.
  constexpr std::size_t kJournalBatch = 32;

  unsigned shards = options.shards;
  if (shards == 0) shards = std::max(1u, std::thread::hardware_concurrency());
  shards = std::min<unsigned>(shards,
                              static_cast<unsigned>(std::max<std::size_t>(1, fleet.size())));

  if (shards > 1) {
    // Sharded executor: probes partition by a stable hash of their id
    // (atlas/sharding.h); each shard is one worker thread running its
    // probes in fleet order and journaling to its own segment file. Every
    // probe owns its simulator, seeded from its own ScenarioConfig, so the
    // records a sharded run produces are byte-identical to a 1-shard run —
    // the shard only decides *where* a probe executes, never *how*.
    std::vector<std::vector<std::size_t>> parts = partition_fleet(fleet, shards);
    std::uint64_t fingerprint = fleet_fingerprint(fleet);

    std::atomic<std::size_t> done{preloaded_count};
    std::atomic<std::size_t> failures{0};
    std::atomic<bool> stop{false};
    netbase::Mutex progress_mutex;

    auto shard_worker = [&](unsigned shard) {
      // Shard-local byte arena, seeded from the fleet fingerprint and shard
      // index. The seed cannot influence probe results (anything observable
      // would break shard-count invariance); it drives only arena-internal
      // state and reserves the seam for future shard-local scratch.
      netbase::ByteArena arena(shard_seed(fingerprint, shard));
      netbase::ScopedArena scoped(arena);

      std::unique_ptr<JournalWriter> segment;
      if (!options.journal_path.empty()) {
        JournalHeader header;
        header.fingerprint = fingerprint;
        header.fleet_size = fleet.size();
        segment = std::make_unique<JournalWriter>(
            shard_segment_path(options.journal_path, shard, shards), header,
            options.journal_sync_interval);
      }
      std::vector<const ProbeRecord*> batch;

      for (std::size_t i : parts[shard]) {
        if (stop.load(std::memory_order_relaxed) || options.cancel.cancelled()) break;
        if (completed[i]) continue;  // restored from the journal
        records[i] = supervised_run(fleet[i], options);
        completed[i] = 1;
        if (segment) {
          batch.push_back(&records[i]);
          if (batch.size() >= kJournalBatch) {
            segment->append_batch(batch);
            batch.clear();
          }
        }
        if (records[i].outcome != ProbeOutcome::ok && options.max_failures > 0 &&
            failures.fetch_add(1) + 1 >= options.max_failures)
          stop.store(true, std::memory_order_relaxed);
        std::size_t finished = done.fetch_add(1) + 1;
        if (options.on_record || options.progress) {
          netbase::MutexLock lock(progress_mutex);
          if (options.on_record) options.on_record(records[i]);
          if (options.progress) options.progress(finished, fleet.size());
        }
      }
      if (segment) {
        segment->append_batch(batch);
        segment->sync();
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(shards);
    for (unsigned shard = 0; shard < shards; ++shard) pool.emplace_back(shard_worker, shard);
    for (auto& thread : pool) thread.join();

    bool all_completed = true;
    for (std::size_t i = 0; i < fleet.size(); ++i)
      if (!completed[i]) all_completed = false;

    if (journal) {
      if (all_completed) {
        // Clean completion: consolidate into the base journal (reused
        // records are already there; append the newly run ones in fleet
        // order) and drop the segments, so the on-disk state is exactly what
        // an unsharded run leaves. An interrupted run skips this, leaving
        // the segments for resume_fleet to merge.
        std::vector<const ProbeRecord*> fresh;
        for (std::size_t i = 0; i < fleet.size(); ++i)
          if (completed[i] && (preloaded == nullptr || preloaded->find(i) == preloaded->end()))
            fresh.push_back(&records[i]);
        journal->append_batch(fresh);
        journal->sync();
        // Remove every segment of this base path, not just this run's
        // shard count: a resumed run may leave stale segments from the
        // interrupted run's (different) shard count behind otherwise.
        for (const std::string& segment : find_shard_segments(options.journal_path)) {
          std::error_code ec;
          std::filesystem::remove(segment, ec);
        }
      } else {
        journal->sync();
      }
    }

    MeasurementRun run;
    run.records.reserve(fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (completed[i])
        run.records.push_back(std::move(records[i]));
      else
        ++run.not_run;
    }
    return run;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{preloaded_count};
  std::atomic<std::size_t> failures{0};
  std::atomic<bool> stop{false};
  netbase::Mutex progress_mutex;

  netbase::Mutex pending_mutex;
  std::vector<std::size_t> pending;
  auto journal_record = [&](std::size_t i) {
    std::vector<std::size_t> batch;
    {
      netbase::MutexLock lock(pending_mutex);
      pending.push_back(i);
      if (pending.size() >= kJournalBatch) batch.swap(pending);
    }
    if (batch.empty()) return;
    std::vector<const ProbeRecord*> refs;
    refs.reserve(batch.size());
    for (std::size_t j : batch) refs.push_back(&records[j]);
    journal->append_batch(refs);
  };

  auto worker = [&] {
    while (!stop.load(std::memory_order_relaxed) && !options.cancel.cancelled()) {
      std::size_t i = next.fetch_add(1);
      if (i >= fleet.size()) return;
      if (completed[i]) continue;  // restored from the journal
      records[i] = supervised_run(fleet[i], options);
      completed[i] = 1;
      if (journal) journal_record(i);
      if (records[i].outcome != ProbeOutcome::ok && options.max_failures > 0 &&
          failures.fetch_add(1) + 1 >= options.max_failures)
        stop.store(true, std::memory_order_relaxed);
      std::size_t finished = done.fetch_add(1) + 1;
      if (options.on_record || options.progress) {
        netbase::MutexLock lock(progress_mutex);
        if (options.on_record) options.on_record(records[i]);
        if (options.progress) options.progress(finished, fleet.size());
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    // Each probe owns its simulator, so workers share nothing but the output
    // slots (disjoint) and the shared counters.
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  if (journal) {
    std::vector<const ProbeRecord*> refs;
    refs.reserve(pending.size());
    for (std::size_t j : pending) refs.push_back(&records[j]);
    journal->append_batch(refs);
    pending.clear();
    journal->sync();
  }

  MeasurementRun run;
  run.records.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (completed[i])
      run.records.push_back(std::move(records[i]));
    else
      ++run.not_run;
  }
  return run;
}

}  // namespace

std::string_view to_string(ProbeOutcome outcome) {
  switch (outcome) {
    case ProbeOutcome::ok: return "ok";
    case ProbeOutcome::failed: return "failed";
    case ProbeOutcome::deadline_exceeded: return "deadline_exceeded";
  }
  return "ok";
}

std::optional<ProbeOutcome> probe_outcome_from(std::string_view name) {
  if (name == "ok") return ProbeOutcome::ok;
  if (name == "failed") return ProbeOutcome::failed;
  if (name == "deadline_exceeded") return ProbeOutcome::deadline_exceeded;
  return std::nullopt;
}

std::string_view to_string(QueryEngine engine) {
  switch (engine) {
    case QueryEngine::blocking: return "blocking";
    case QueryEngine::async: return "async";
  }
  return "async";
}

std::optional<QueryEngine> query_engine_from(std::string_view name) {
  if (name == "blocking") return QueryEngine::blocking;
  if (name == "async") return QueryEngine::async;
  return std::nullopt;
}

std::size_t MeasurementRun::intercepted_count() const {
  std::size_t count = 0;
  for (const auto& record : records)
    if (record.verdict.intercepted()) ++count;
  return count;
}

std::size_t MeasurementRun::count_location(core::InterceptorLocation location) const {
  std::size_t count = 0;
  for (const auto& record : records)
    if (record.verdict.location == location) ++count;
  return count;
}

std::size_t MeasurementRun::count_outcome(ProbeOutcome outcome) const {
  std::size_t count = 0;
  for (const auto& record : records)
    if (record.outcome == outcome) ++count;
  return count;
}

ProbeRecord run_probe(const ProbeSpec& spec, bool strip_raw_responses) {
  return run_probe(spec, core::CancelToken{}, strip_raw_responses);
}

ProbeRecord run_probe(const ProbeSpec& spec, const core::CancelToken& cancel,
                      bool strip_raw_responses, QueryEngine engine) {
  ProbeRecord record;
  record.probe_id = spec.probe_id;
  record.org = spec.org;
  record.tested_v6 = spec.scenario.home_ipv6;
  record.truth = GroundTruth{};

  Scenario scenario(spec.scenario);
  // Everything inside this probe reads simulated time and is attributed to
  // this probe id: spans land in the per-probe trace lane, deterministically.
  SimulatorClock clock(scenario.sim());
  obs::ScopedClock clock_scope(&clock);
  obs::ScopedProbe probe_scope(spec.probe_id);
  obs::Span probe_span("probe/run");
  record.truth = scenario.ground_truth();
  core::LocalizationPipeline pipeline(scenario.pipeline_config());
  // SimTransport serves both engine interfaces; the cast selects whether the
  // pipeline fans out per-stage batches or replays the historical
  // one-query-at-a-time loop. Both yield byte-identical verdicts.
  record.verdict =
      engine == QueryEngine::async
          ? pipeline.run(static_cast<core::AsyncQueryTransport&>(scenario.transport()),
                         cancel)
          : pipeline.run(static_cast<core::QueryTransport&>(scenario.transport()), cancel);
  record.drops = scenario.sim().drops();
  record.faults = scenario.fault_plan().counters();
  note_probe_metrics(record);
  if (strip_raw_responses) strip_verdict(record.verdict);
  return record;
}

MeasurementRun run_fleet(const std::vector<ProbeSpec>& fleet,
                         const MeasurementOptions& options) {
  return run_fleet_supervised(fleet, options, nullptr);
}

MeasurementRun resume_fleet(const std::string& journal_path,
                            const std::vector<ProbeSpec>& fleet,
                            const MeasurementOptions& options, ResumeReport* report) {
  ResumeReport local;
  ResumeReport& out = report != nullptr ? *report : local;
  out = ResumeReport{};

  MeasurementOptions resumed = options;
  resumed.journal_path = journal_path;  // keep checkpointing where we resumed

  std::uint64_t fingerprint = fleet_fingerprint(fleet);
  std::unordered_map<std::uint32_t, std::size_t> index_of;
  index_of.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) index_of[fleet[i].probe_id] = i;

  std::unordered_map<std::size_t, ProbeRecord> preloaded;
  auto absorb = [&](JournalLoadResult& loaded, const std::string& source) {
    out.damaged += loaded.damaged;
    for (auto& warning : loaded.warnings) out.warnings.push_back(std::move(warning));
    if (!loaded.ok()) {
      out.warnings.push_back(source + " unusable (" + loaded.error + ")");
      return;
    }
    if (loaded.header.fingerprint != fingerprint || loaded.header.fleet_size != fleet.size()) {
      out.warnings.push_back(
          source +
          " fingerprint does not match this fleet "
          "(different seed, scale, or configuration); ignoring " +
          std::to_string(loaded.records.size()) + " journaled records");
      return;
    }
    out.journal_matched = true;
    for (auto& record : loaded.records) {
      auto it = index_of.find(record.probe_id);
      if (it == index_of.end()) {
        out.warnings.push_back("journaled probe " + std::to_string(record.probe_id) +
                               " is not in the fleet; dropped");
        continue;
      }
      if (record.outcome != ProbeOutcome::ok) {
        // Failures get a fresh attempt on resume: transient faults heal, and
        // deterministic ones reproduce the same record.
        ++out.rerun_failed;
        continue;
      }
      // Last record wins if a probe was journaled twice (rewrite + append).
      preloaded[it->second] = std::move(record);
    }
  };

  auto loaded = load_journal(journal_path);
  absorb(loaded, "journal");

  // A sharded run that was interrupted leaves per-shard segment files next
  // to the base journal (a clean completion consolidates and removes them).
  // Absorb every segment with a matching header — the shard count that wrote
  // them is irrelevant, and this resume may itself use a different one.
  for (const std::string& segment_path : find_shard_segments(journal_path)) {
    auto segment = load_journal(segment_path);
    absorb(segment, "journal segment " + segment_path);
  }

  out.reused = preloaded.size();
  return run_fleet_supervised(fleet, resumed, &preloaded);
}

}  // namespace dnslocate::atlas
