// Exporters for the observability subsystem:
//
//  - chrome_trace_json: Chrome trace-event format ("traceEvents" array of
//    complete "ph":"X" events), loadable in about:tracing and Perfetto.
//    Probe-attributed spans get their own lane (pid 2, tid = probe id,
//    simulated-clock timestamps — deterministic); unattributed spans are
//    laid out per OS thread (pid 1, tid = thread ordinal, wall clock).
//    Events are emitted sorted by (pid, tid, ts), so ts is monotone within
//    every lane.
//  - prometheus_text: Prometheus-style text exposition (# TYPE lines,
//    histograms as cumulative _bucket{le=...}/_sum/_count). A dump, not a
//    scrape endpoint: only occupied buckets are listed, plus +Inf.
//  - metrics_json: the same snapshot as a jsonio tree, for embedding into
//    the HTML report.
//
// All three are deterministic for a deterministic input (name-ordered
// metrics, stable event ordering).
#pragma once

#include <string>
#include <vector>

#include "jsonio/json.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace dnslocate::obs {

/// Render span events as Chrome trace-event JSON.
std::string chrome_trace_json(const std::vector<SpanEvent>& events);
/// Convenience: export everything currently in the process collector.
std::string chrome_trace_json();

/// Render a metrics snapshot as Prometheus text exposition.
std::string prometheus_text(const MetricsSnapshot& snapshot);
/// Convenience: export the process registry.
std::string prometheus_text();

/// Metrics snapshot as a JSON tree (counters/gauges as numbers, histograms
/// as {count, sum, buckets: [[lower_bound, count], ...]}).
jsonio::Value metrics_json(const MetricsSnapshot& snapshot);

}  // namespace dnslocate::obs
