#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace dnslocate::obs {
namespace {

/// Trace lanes: probe-attributed spans live in their own per-probe rows
/// under one synthetic process; everything else is laid out per OS thread.
constexpr int kThreadPid = 1;
constexpr int kProbePid = 2;

struct Lane {
  int pid = kThreadPid;
  std::uint32_t tid = 0;
  friend bool operator==(const Lane&, const Lane&) = default;
  friend auto operator<=>(const Lane&, const Lane&) = default;
};

Lane lane_of(const SpanEvent& event) {
  if (event.probe != 0) return Lane{kProbePid, event.probe - 1};
  return Lane{kThreadPid, event.thread};
}

void append_ts_us(std::string& out, std::uint64_t ns) {
  // Microseconds with fixed 3-decimal nanosecond remainder: precise,
  // locale-independent, and byte-stable across hosts.
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64 ".%03" PRIu64, ns / 1000, ns % 1000);
  out += buffer;
}

void append_metadata(std::string& out, int pid, std::uint32_t tid, const char* kind,
                     const std::string& label, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += R"({"name":")";
  out += kind;
  out += R"(","ph":"M","pid":)";
  out += std::to_string(pid);
  out += R"(,"tid":)";
  out += std::to_string(tid);
  out += R"(,"args":{"name":)";
  out += jsonio::escape(label);
  out += "}}";
}

}  // namespace

std::string chrome_trace_json(const std::vector<SpanEvent>& events) {
  std::vector<SpanEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(), [](const SpanEvent& a, const SpanEvent& b) {
    Lane la = lane_of(a), lb = lane_of(b);
    if (la != lb) return la < lb;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.depth < b.depth;  // outer span first at equal start
  });

  std::string out;
  out.reserve(sorted.size() * 140 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // Name the synthetic processes and each lane that appears.
  append_metadata(out, kThreadPid, 0, "process_name", "dnslocate threads (wall clock)", first);
  append_metadata(out, kProbePid, 0, "process_name", "dnslocate probes (sim clock)", first);
  Lane last_lane{-1, 0};
  for (const SpanEvent& event : sorted) {
    Lane lane = lane_of(event);
    if (lane == last_lane) continue;
    last_lane = lane;
    std::string label = lane.pid == kProbePid ? "probe " + std::to_string(lane.tid)
                                              : "thread " + std::to_string(lane.tid);
    append_metadata(out, lane.pid, lane.tid, "thread_name", label, first);
  }

  for (const SpanEvent& event : sorted) {
    Lane lane = lane_of(event);
    std::uint64_t duration = event.end_ns >= event.start_ns ? event.end_ns - event.start_ns : 0;
    if (!first) out += ",\n";
    first = false;
    out += R"({"name":)";
    out += jsonio::escape(event.name != nullptr ? event.name : "?");
    out += R"(,"cat":"dnslocate","ph":"X","ts":)";
    append_ts_us(out, event.start_ns);
    out += R"(,"dur":)";
    append_ts_us(out, duration);
    out += R"(,"pid":)";
    out += std::to_string(lane.pid);
    out += R"(,"tid":)";
    out += std::to_string(lane.tid);
    out += R"(,"args":{"depth":)";
    out += std::to_string(event.depth);
    out += R"(,"clock":")";
    out += event.sim_clock ? "sim" : "steady";
    out += "\"}}";
  }
  out += "\n]}\n";
  return out;
}

std::string chrome_trace_json() { return chrome_trace_json(collector().gather()); }

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [index, count] : histogram.buckets) {
      cumulative += count;
      // The upper bound of bucket `index` is the lower bound of the next.
      out += name + "_bucket{le=\"" +
             std::to_string(Histogram::bucket_lower_bound(index + 1)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(histogram.count) + "\n";
    out += name + "_sum " + std::to_string(histogram.sum) + "\n";
    out += name + "_count " + std::to_string(histogram.count) + "\n";
  }
  return out;
}

std::string prometheus_text() { return prometheus_text(registry().snapshot()); }

jsonio::Value metrics_json(const MetricsSnapshot& snapshot) {
  jsonio::Object root;
  jsonio::Object counters;
  for (const auto& [name, value] : snapshot.counters) counters[name] = value;
  root["counters"] = std::move(counters);
  jsonio::Object gauges;
  for (const auto& [name, value] : snapshot.gauges) gauges[name] = value;
  root["gauges"] = std::move(gauges);
  jsonio::Object histograms;
  for (const auto& [name, histogram] : snapshot.histograms) {
    jsonio::Object h;
    h["count"] = histogram.count;
    h["sum"] = histogram.sum;
    jsonio::Array buckets;
    for (const auto& [index, count] : histogram.buckets) {
      jsonio::Array pair;
      pair.emplace_back(Histogram::bucket_lower_bound(index));
      pair.emplace_back(count);
      buckets.push_back(std::move(pair));
    }
    h["buckets"] = std::move(buckets);
    histograms[name] = std::move(h);
  }
  root["histograms"] = std::move(histograms);
  return root;
}

}  // namespace dnslocate::obs
